module tunable

go 1.22
