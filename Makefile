# Standard entry points; `make ci` is the gate run before merging.

GO ?= go

.PHONY: all build bin vet lint test race ci bench

all: build

build:
	$(GO) build ./...

# Install the deployable binaries into bin/ (the cluster trio plus the
# profiling/figure tools).
BINARIES = avis-coord avis-server avis-client avis-edge avis-adapt avis-load avis-mix avis-figures avis-profile tunable-spec

bin:
	$(GO) build -o bin/ $(addprefix ./cmd/,$(BINARIES))

vet:
	$(GO) vet ./...

# vet plus staticcheck when installed; CI always installs it, local runs
# degrade gracefully so the gate never needs network access.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "== staticcheck ./..."; \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci:
	./scripts/ci.sh

# Quick gate: race suite minus the slow wall-clock tests.
ci-short:
	./scripts/ci.sh -short

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
