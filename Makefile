# Standard entry points; `make ci` is the gate run before merging.

GO ?= go

.PHONY: all build bin vet test race ci bench

all: build

build:
	$(GO) build ./...

# Install the deployable binaries into bin/ (the cluster trio plus the
# profiling/figure tools).
BINARIES = avis-coord avis-server avis-client avis-adapt avis-figures avis-profile tunable-spec

bin:
	$(GO) build -o bin/ $(addprefix ./cmd/,$(BINARIES))

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci:
	./scripts/ci.sh

# Quick gate: race suite minus the slow wall-clock tests.
ci-short:
	./scripts/ci.sh -short

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
