# Standard entry points; `make ci` is the gate run before merging.

GO ?= go

.PHONY: all build vet test race ci bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci:
	./scripts/ci.sh

# Quick gate: race suite minus the slow wall-clock tests.
ci-short:
	./scripts/ci.sh -short

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
