// Visualization: the paper's evaluation application under the full
// framework, condensed. A client downloads ten wavelet-pyramid images from
// a server over a link whose bandwidth collapses mid-run; the framework
// profiles both compression methods in the virtual testbed, then switches
// the application from LZW to BZW when the monitoring agent detects the
// drop — Experiment 1 of the paper as a runnable program.
//
// Run: go run ./examples/visualization
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tunable/internal/expt"
)

func main() {
	fmt.Println("profiling lzw and bzw configurations in the virtual testbed...")
	start := time.Now()
	db, err := expt.Fig6aDB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("performance database: %d records for %d configurations (%.1fs real time)\n\n",
		db.Len(), len(db.Configs()), time.Since(start).Seconds())

	fmt.Println("running Experiment 1: bandwidth 500 KB/s -> 50 KB/s mid-run")
	e, err := expt.Experiment1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nframework decision log:")
	for _, ev := range e.Adaptive.Events {
		fmt.Printf("  %-14v %-12s %s\n", ev.At, ev.Kind, ev.Detail)
	}
	fmt.Println("\nper-image transmission times (seconds, by completion time):")
	if err := e.Fig.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive finished in %.1fs; holding LZW throughout would have taken %.1fs, holding BZW %.1fs\n",
		e.Adaptive.Total.Seconds(), e.StaticA.Total.Seconds(), e.StaticB.Total.Seconds())
}
