// Videostream: the motivating example from the paper's introduction — "a
// distributed application conveying a video stream from a server to a
// client machine can respond to network bandwidth reduction by compressing
// the stream or selectively dropping frames."
//
// This example builds that application from the framework's public pieces:
// a server pushes frames over a shaped link; the knobs are the frame rate
// (fps: drop frames) and per-frame quality (bytes per frame: compress
// harder). The QoS metrics are delivered frame rate and stream lag. The
// performance database is profiled in the virtual testbed, and the
// framework keeps the stream within its lag budget as the link degrades.
//
// Run: go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"time"

	"tunable/internal/core"
	"tunable/internal/monitor"
	"tunable/internal/netem"
	"tunable/internal/perfdb"
	"tunable/internal/profiler"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/steering"
	"tunable/internal/vtime"
)

// videoSpec declares the stream's tunability.
var videoSpec = spec.MustParse(`
app videostream;
control_parameters {
    int fps in {10, 15, 30};
    enum q in {low, high};      // per-frame quality (encoding bitrate)
}
execution_env {
    host client;
    host server;
    link net from client to server;
}
qos_metric {
    scalar frame_rate maximize;
    duration lag minimize;      // stream time behind real time after 5 s
}
`)

// frameBytes returns the encoded size of one frame at quality q.
func frameBytes(q string) int {
	if q == "high" {
		return 24_000
	}
	return 8_000
}

// streamFor runs a 5-second stream at the given configuration over a link
// with the given bandwidth and reports the QoS metrics: achieved frame
// rate and accumulated lag (how far the stream fell behind real time).
func streamFor(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
	fps := cfg["fps"].I
	q := cfg["q"].S
	sim := vtime.NewSim()
	link := netem.NewLink(sim, "net", res.Get(resource.Bandwidth, 100e3))
	const streamSeconds = 5
	frames := fps * streamSeconds
	sim.Spawn("server", func(p *vtime.Proc) {
		payload := make([]byte, frameBytes(q))
		for i := 0; i < frames; i++ {
			// Pace frames at the nominal rate, but never ahead of the link.
			p.SleepUntil(time.Duration(i) * time.Second / time.Duration(fps))
			link.A().Send(p, payload)
		}
	})
	var delivered int
	var lastArrival time.Duration
	sim.Spawn("client", func(p *vtime.Proc) {
		for i := 0; i < frames; i++ {
			if _, ok := link.B().Recv(p); !ok {
				return
			}
			delivered++
			lastArrival = p.Now()
		}
	})
	if err := sim.Run(); err != nil {
		return nil, err
	}
	lag := lastArrival - streamSeconds*time.Second
	if lag < 0 {
		lag = 0
	}
	return spec.Metrics{
		"frame_rate": float64(delivered) / float64(streamSeconds),
		"lag":        lag.Seconds(),
	}, nil
}

func main() {
	// Profile every configuration across the bandwidth range in the
	// virtual testbed.
	db := perfdb.New(videoSpec)
	grid := resource.NewGrid(resource.Axis{
		Kind:   resource.Bandwidth,
		Points: []float64{50e3, 100e3, 200e3, 400e3, 800e3},
	})
	driver, err := profiler.New(db, grid, streamFor)
	if err != nil {
		log.Fatal(err)
	}
	if err := driver.Populate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d configurations x %d bandwidths\n\n", len(db.Configs()), grid.Size())

	// The live world: server streams continuously; the framework adapts.
	sim := vtime.NewSim()
	serverHost := sandbox.NewHost(sim, "server", 450e6)
	if _, err := serverHost.NewSandbox("encoder", 0.9, 0); err != nil {
		log.Fatal(err)
	}
	link := netem.NewLink(sim, "net", 800e3)
	mon := monitor.New(sim, "monitor", monitor.WithHysteresis(4))
	mon.AddProbe(monitor.NewBandwidthProbe("net", link.A()))
	steer, err := steering.New(sim, videoSpec,
		spec.Config{"fps": spec.Int(30), "q": spec.Enum("high")})
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(sim, core.Config{
		App: videoSpec,
		DB:  db,
		Preferences: []scheduler.Preference{
			{
				Name:        "smooth",
				Constraints: []scheduler.Constraint{scheduler.AtMost("lag", 0.25)},
				Objective:   "frame_rate",
			},
			{Name: "best-effort", Objective: "frame_rate"},
		},
		Monitor:    mon,
		Steering:   steer,
		Components: core.Components{resource.Bandwidth: "net"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fw.SelectInitial(resource.Vector{resource.Bandwidth: 800e3}); err != nil {
		log.Fatal(err)
	}
	fw.Start()
	mon.Start()

	sim.Spawn("server", func(p *vtime.Proc) {
		frame := 0
		for p.Now() < 30*time.Second {
			cfg, switched := steer.MaybeApply(p)
			if switched {
				fmt.Printf("[%6.2fs] stream reconfigured: %s\n", p.Now().Seconds(), cfg.Key())
			}
			fps, q := cfg["fps"].I, cfg["q"].S
			link.A().Send(p, make([]byte, frameBytes(q)))
			frame++
			p.Sleep(time.Second / time.Duration(fps))
		}
		fw.Stop()
		mon.Stop()
		link.A().Close()
		fmt.Printf("[%6.2fs] stream ended after %d frames\n", p.Now().Seconds(), frame)
	})
	sim.Spawn("client", func(p *vtime.Proc) {
		n := 0
		for {
			if _, ok := link.B().Recv(p); !ok {
				fmt.Printf("[%6.2fs] client received %d frames\n", p.Now().Seconds(), n)
				return
			}
			n++
		}
	})
	sim.After(10*time.Second, func() {
		fmt.Println("[ 10.00s] *** link degrades to 100 KB/s ***")
		_ = link.SetBandwidth(100e3)
	})
	sim.After(22*time.Second, func() {
		fmt.Println("[ 22.00s] *** link restored to 800 KB/s ***")
		_ = link.SetBandwidth(800e3)
	})
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframework switches: %d, final config: %s\n",
		steer.Switches(), steer.Current().Key())
}
