// Videostream: the motivating example from the paper's introduction — "a
// distributed application conveying a video stream from a server to a
// client machine can respond to network bandwidth reduction by compressing
// the stream or selectively dropping frames."
//
// The stream itself is no longer built inline here: it was promoted to a
// first-class tunable workload in internal/apps (apps.Video), the same
// implementation the mixed-workload harness and cmd/avis-mix drive. This
// example wires that promoted application into the full adaptation loop —
// spec, profiled performance database, preferences, monitor, scheduler,
// steering — and watches the framework hold the lag budget as the link
// degrades mid-stream.
//
// Run: go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"time"

	"tunable/internal/apps"
	"tunable/internal/core"
	"tunable/internal/monitor"
	"tunable/internal/netem"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/steering"
	"tunable/internal/vtime"
)

func main() {
	v := apps.NewVideo()
	v.StreamSeconds = 30

	// The performance database is profiled in the virtual testbed across
	// the app's bandwidth x CPU grid (and cached per process, so the mixed
	// harness and this example share one profiling pass).
	db, err := v.DB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d configurations across the resource grid\n\n", len(db.Configs()))

	// The live world: dedicated client and server sandboxes, a shaped
	// link, and the adaptation loop from internal/core driving the
	// steering agent that the promoted app reads at frame boundaries.
	sim := vtime.NewSim()
	clientHost := sandbox.NewHost(sim, "client-host", 450e6)
	serverHost := sandbox.NewHost(sim, "server-host", 450e6)
	csb, err := clientHost.NewSandbox("decoder", 0.2, 0)
	if err != nil {
		log.Fatal(err)
	}
	ssb, err := serverHost.NewSandbox("encoder", 0.2, 0)
	if err != nil {
		log.Fatal(err)
	}
	link := netem.NewLink(sim, "net", 800e3)

	mon := monitor.New(sim, "monitor", monitor.WithHysteresis(4))
	mon.AddProbe(monitor.NewBandwidthProbe("net", link.A()))
	mon.AddProbe(monitor.NewCPUProbe("client", csb))

	// Automatic configuration: ask the scheduler for the best starting
	// point under the initial resource conditions, and boot the steering
	// agent directly onto it.
	initialRes := resource.Vector{resource.Bandwidth: 800e3, resource.CPU: 0.2}
	sched, err := scheduler.New(v.Spec(), db, v.Preferences())
	if err != nil {
		log.Fatal(err)
	}
	d, err := sched.Select(initialRes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial configuration: %s (preference %q)\n\n", d.Config.Key(), d.PrefName)
	steer, err := steering.New(sim, v.Spec(), d.Config)
	if err != nil {
		log.Fatal(err)
	}
	steer.OnApply(func(old, cfg spec.Config, _ map[resource.Kind][2]float64) {
		fmt.Printf("          stream reconfigured: %s -> %s\n", old.Key(), cfg.Key())
	})
	fw, err := core.New(sim, core.Config{
		App:         v.Spec(),
		DB:          db,
		Preferences: v.Preferences(),
		Monitor:     mon,
		Steering:    steer,
		Components:  core.Components{resource.Bandwidth: "net", resource.CPU: "client"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fw.SelectInitial(initialRes); err != nil {
		log.Fatal(err)
	}
	fw.Start()
	mon.Start()

	env := &apps.SessionEnv{
		Sim:    sim,
		Link:   link,
		Client: csb,
		Server: ssb,
		Steer:  steer,
		Seed:   1,
	}
	sim.Spawn("video-session", func(p *vtime.Proc) {
		m, err := v.Run(p, env)
		fw.Stop()
		mon.Stop()
		if err != nil {
			log.Fatal(err)
		}
		q := v.Verdict(m)
		verdict := "PASS"
		if !q.Pass {
			verdict = "FAIL (" + q.Reason + ")"
		}
		fmt.Printf("[%6.2fs] stream ended: frame_rate %.1f/s, lag %.2fs — %s\n",
			p.Now().Seconds(), m["frame_rate"], m["lag"], verdict)
	})

	sim.After(10*time.Second, func() {
		fmt.Println("[ 10.00s] *** link degrades to 96 KB/s ***")
		_ = link.SetBandwidth(96e3)
	})
	sim.After(22*time.Second, func() {
		fmt.Println("[ 22.00s] *** link restored to 800 KB/s ***")
		_ = link.SetBandwidth(800e3)
	})

	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nframework decision log:")
	for _, e := range fw.Events() {
		fmt.Printf("  [%6.2fs] %-11s %s\n", e.At.Seconds(), e.Kind, e.Detail)
	}
	fmt.Printf("\nframework switches: %d, final config: %s\n",
		steer.Switches(), steer.Current().Key())
}
