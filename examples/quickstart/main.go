// Quickstart: the adaptation framework end to end in ~100 lines.
//
// A toy "renderer" application has one knob — its quality level n — and
// one QoS metric, the time to render a batch (t = n/cpu seconds). The user
// wants the highest quality whose batch time stays under 4 s. We declare
// the tunability spec, fill the performance database analytically, wire up
// the monitoring agent / scheduler / steering agent, and watch the
// framework downgrade quality when the CPU share drops and restore it when
// the share recovers.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tunable/internal/core"
	"tunable/internal/monitor"
	"tunable/internal/perfdb"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/steering"
	"tunable/internal/vtime"
)

func main() {
	// 1. The tunability specification, in the paper's annotation language.
	app := spec.MustParse(`
app renderer;
control_parameters { int n in {1, 2, 3}; }
execution_env { host client; }
qos_metric {
    duration batch_time minimize;
    scalar quality maximize;
}
`)

	// 2. The performance database. Real applications profile themselves in
	// the virtual testbed (see cmd/avis-profile); this toy's behaviour is
	// analytic: a batch at quality n under CPU share s takes n/s seconds.
	db := perfdb.New(app)
	for n := 1; n <= 3; n++ {
		for _, cpu := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			err := db.Add(spec.Config{"n": spec.Int(n)},
				resource.Vector{resource.CPU: cpu},
				spec.Metrics{"batch_time": float64(n) / cpu, "quality": float64(n)})
			if err != nil {
				log.Fatal(err)
			}
		}
	}

	// 3. A simulated world: one host, one sandboxed application.
	sim := vtime.NewSim()
	host := sandbox.NewHost(sim, "client", 100e6)
	sb, err := host.NewSandbox("renderer", 1.0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The run-time subsystem: monitor + scheduler + steering.
	mon := monitor.New(sim, "monitor")
	mon.AddProbe(monitor.NewCPUProbe("client", sb))
	steer, err := steering.New(sim, app, spec.Config{"n": spec.Int(3)})
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(sim, core.Config{
		App: app,
		DB:  db,
		Preferences: []scheduler.Preference{{
			Name:        "smooth",
			Constraints: []scheduler.Constraint{scheduler.AtMost("batch_time", 4)},
			Objective:   "quality",
		}},
		Monitor:    mon,
		Steering:   steer,
		Components: core.Components{resource.CPU: "client"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fw.SelectInitial(resource.Vector{resource.CPU: 1.0}); err != nil {
		log.Fatal(err)
	}
	fw.Start()
	mon.Start()

	// 5. The application loop: render batches, poll the steering agent at
	// each batch boundary (the transition point).
	sim.Spawn("renderer", func(p *vtime.Proc) {
		for batch := 0; batch < 12; batch++ {
			cfg, switched := steer.MaybeApply(p)
			if switched {
				fmt.Printf("[%6.2fs] steering applied: quality -> %s\n",
					p.Now().Seconds(), cfg.Key())
			}
			n := cfg["n"].I
			start := p.Now()
			sb.Compute(p, float64(n)*100e6) // n CPU-seconds of work
			fmt.Printf("[%6.2fs] batch %2d at quality %d took %.2fs\n",
				p.Now().Seconds(), batch, n, (p.Now() - start).Seconds())
		}
		fw.Stop()
		mon.Stop()
	})

	// 6. Perturb the world: the CPU share collapses at t=8 s and recovers
	// at t=20 s.
	sim.After(8*time.Second, func() {
		fmt.Println("[  8.00s] *** CPU share drops to 40% ***")
		_ = sb.SetCPUShare(0.4)
	})
	sim.After(20*time.Second, func() {
		fmt.Println("[ 20.00s] *** CPU share restored to 100% ***")
		_ = sb.SetCPUShare(1.0)
	})

	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframework made %d configuration switches; final config: %s\n",
		steer.Switches(), steer.Current().Key())
}
