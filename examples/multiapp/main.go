// Multiapp: cross-application contention under one arbitrating scheduler
// (Section 6.2 of the paper) — "multiple such execution environments can
// operate on the same physical machine with negligible overhead, [so] we
// can reserve a specific CPU share ... with simple admission control."
//
// The single-host sandbox demo this example used to be was promoted into
// the first-class workload layer in internal/apps. This example now shows
// the two pieces that layer adds on top of plain admission control:
//
//  1. The cross-class arbiter (internal/scheduler.Arbiter): work-conserving
//     borrowing over a shared resource pool that structurally cannot starve
//     another class's guarantee — a greedy video class is cut off while
//     idle foveal capacity remains claimable.
//  2. The mixed-workload harness (apps.RunMix): video and foveal sessions
//     sharing sandbox hosts and one link pool under admission control, in
//     deterministic virtual time, reported per class.
//
// Run: go run ./examples/multiapp
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"tunable/internal/apps"
	"tunable/internal/resource"
	"tunable/internal/scheduler"
)

func main() {
	// --- Part 1: guarantee-protected arbitration -----------------------
	// One 1 MB/s link pool split between two equal-weight classes. Video
	// grabs 100 KB/s bites until the arbiter refuses; the refusal arrives
	// while half the pool is still free, because that half is foveal's
	// guarantee — which foveal can then claim in full.
	pool := resource.Vector{resource.Bandwidth: 1e6}
	arb, err := scheduler.NewArbiter(pool, []scheduler.ClassShare{
		{Class: "video", Weight: 1},
		{Class: "foveal", Weight: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	bite := resource.Vector{resource.Bandwidth: 100e3}
	for i := 0; ; i++ {
		if _, err := arb.Acquire("video", bite); err != nil {
			fmt.Printf("video refused after %d x 100 KB/s: %v\n", i, err)
			break
		}
	}
	guarantee, err := arb.Guarantee("foveal")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := arb.Acquire("foveal", guarantee); err != nil {
		log.Fatalf("foveal guarantee must always be claimable: %v", err)
	}
	fmt.Printf("foveal claimed its full %.0f KB/s guarantee (pool contended: %v)\n\n",
		guarantee[resource.Bandwidth]/1e3, arb.Contended())

	// --- Part 2: the mixed workload end to end -------------------------
	// A seeded video+foveal mix on four shared hosts: per-class admission,
	// placement, initial configuration, periodic retuning (derated while
	// the classes contend), and per-class QoS verdicts — the same harness
	// cmd/avis-mix exposes as a CLI.
	rep, err := apps.RunMix(apps.HarnessConfig{
		Seed:  7,
		Hosts: 4,
		Classes: []apps.ClassConfig{
			{App: apps.NewVideo(), Sessions: 6, ArrivalEvery: 300 * time.Millisecond},
			{App: apps.NewFoveal(), Sessions: 3, ArrivalEvery: 600 * time.Millisecond},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed run: %.2f virtual seconds, contended: %v\n",
		rep.VirtualSeconds, rep.Contended)
	for _, c := range rep.Classes {
		fmt.Printf("  %-7s requested %d admitted %d rejected %d passed %d/%d (switches %d, derated plans %d)\n",
			c.Class, c.Requested, c.Admitted, c.Rejected, c.Passed, c.Completed,
			c.Switches, c.DeratedPlans)
		names := make([]string, 0, len(c.Metrics))
		for name := range c.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := c.Metrics[name]
			fmt.Printf("          %-14s mean %8.3f  p95 %8.3f\n", name, m.Mean, m.P95)
		}
	}
}
