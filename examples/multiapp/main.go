// Multiapp: the resource-constrained execution environment as a
// reservation substrate (Section 6.2 of the paper) — "multiple such
// execution environments can operate on the same physical machine with
// negligible overhead, [so] we can reserve a specific CPU share ... with
// simple admission control."
//
// Three applications ask for CPU reservations on one host; admission
// control rejects the request that would oversubscribe the machine, the
// admitted sandboxes each receive exactly their share without interfering,
// and a fourth application is admitted the moment one of the others
// releases its reservation.
//
// Run: go run ./examples/multiapp
package main

import (
	"fmt"
	"log"
	"time"

	"tunable/internal/sandbox"
	"tunable/internal/vtime"
)

func main() {
	sim := vtime.NewSim()
	host := sandbox.NewHost(sim, "shared-host", 450e6)

	// Admission control: the third request oversubscribes and is refused.
	a, err := host.NewSandbox("app-a", 0.5, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("app-a admitted with 50%% (reserved %.0f%%)\n", 100*host.Reserved())
	b, err := host.NewSandbox("app-b", 0.3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("app-b admitted with 30%% (reserved %.0f%%)\n", 100*host.Reserved())
	if _, err := host.NewSandbox("app-c", 0.4, 0); err != nil {
		fmt.Printf("app-c asking for 40%% refused: %v\n", err)
	}

	// Both admitted applications run the same one-CPU-second workload;
	// each finishes in exactly (1 second / share), proving isolation.
	const work = 450e6
	run := func(name string, sb *sandbox.Sandbox, done func(*vtime.Proc)) {
		sim.Spawn(name, func(p *vtime.Proc) {
			start := p.Now()
			sb.Compute(p, work)
			fmt.Printf("[%6.2fs] %s finished 1 CPU-second of work in %.2fs (share %.0f%%)\n",
				p.Now().Seconds(), name, (p.Now() - start).Seconds(), 100*sb.CPUShare())
			if done != nil {
				done(p)
			}
		})
	}
	run("app-a", a, func(p *vtime.Proc) {
		// app-a departs; its reservation frees capacity for app-c.
		host.Release(a)
		fmt.Printf("[%6.2fs] app-a released its reservation (reserved %.0f%%)\n",
			p.Now().Seconds(), 100*host.Reserved())
		c, err := host.NewSandbox("app-c", 0.4, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%6.2fs] app-c admitted with 40%% (reserved %.0f%%)\n",
			p.Now().Seconds(), 100*host.Reserved())
		run("app-c", c, nil)
	})
	run("app-b", b, nil)

	// A sandbox is also a policing mechanism: sampling app-b's achieved
	// share confirms it never exceeds its reservation even while the host
	// has idle capacity.
	sim.Spawn("auditor", func(p *vtime.Proc) {
		var prevCPU, prevActive time.Duration
		for i := 0; i < 6; i++ {
			p.Sleep(500 * time.Millisecond)
			cpu, active := b.CPUTime(), b.ActiveTime()
			dCPU, dActive := cpu-prevCPU, active-prevActive
			prevCPU, prevActive = cpu, active
			if dActive > 0 {
				fmt.Printf("[%6.2fs] auditor: app-b achieved share %.3f\n",
					p.Now().Seconds(), float64(dCPU)/float64(dActive))
			}
		}
	})

	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
}
