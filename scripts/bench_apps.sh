#!/usr/bin/env sh
# bench_apps.sh — run the workload-layer benchmarks (the mixed
# video+foveal harness end to end with sessions/sec and per-class p95
# QoS, the cross-class arbiter acquire/release hot path, and a single
# video session) and record BENCH_apps.json at the repo root. A thin
# retargeting of scripts/bench.sh; extra go-test flags pass through.
set -eu

cd "$(dirname "$0")/.."

BENCH_FILTER='BenchmarkApps' \
BENCH_PKG=./internal/apps \
BENCH_OUT="${BENCH_OUT:-BENCH_apps.json}" \
	./scripts/bench.sh "$@"
