#!/usr/bin/env sh
# bench_edge.sh — run the edge-tier micro-benchmarks (cache key, cache
# hit, eviction churn, fovea-tracker step) and record BENCH_edge.json at
# the repo root. A thin retargeting of scripts/bench.sh; extra go-test
# flags pass through.
set -eu

cd "$(dirname "$0")/.."

BENCH_FILTER='BenchmarkEdge' \
BENCH_PKG=./internal/edge \
BENCH_OUT="${BENCH_OUT:-BENCH_edge.json}" \
	./scripts/bench.sh "$@"
