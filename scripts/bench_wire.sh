#!/usr/bin/env sh
# bench_wire.sh — run the wire-protocol micro-benchmarks (frame
# write/read under v1 and v2 framing, schema vs JSON control bodies for
# the heartbeat and resolve messages) and record BENCH_wire.json at the
# repo root. A thin retargeting of scripts/bench.sh; extra go-test flags
# pass through.
set -eu

cd "$(dirname "$0")/.."

BENCH_FILTER='BenchmarkWire' \
BENCH_PKG=./internal/wire \
BENCH_OUT="${BENCH_OUT:-BENCH_wire.json}" \
	./scripts/bench.sh "$@"
