#!/usr/bin/env sh
# bench_control.sh — refresh the control-plane baseline, BENCH_control.json.
# Two parts land in one file:
#
#   - the micro-benchmarks from internal/cluster: the JSON-vs-delta
#     heartbeat pair (whose ns/op ratio is the registry ops/sec speedup
#     over the single-mutex baseline), the placement decision at 10k
#     nodes, and the three-way volatile-counter harness
#     (atomic / batch / vsa);
#   - a "swarm" block from an avis-load run — 100k virtual-time client
#     sessions against 10k nodes — recording end-to-end registry ops/sec
#     and placement latency percentiles.
#
# scripts/bench_check.sh gates only the Benchmark* entries (its extractor
# ignores the swarm block); the swarm numbers are recorded for humans.
# Run on a quiet machine. AVIS_LOAD_FLAGS overrides the swarm shape.
set -eu

cd "$(dirname "$0")/.."

BENCH_OUT=BENCH_control.json \
	BENCH_FILTER='BenchmarkControl|BenchmarkCounter' \
	BENCH_PKG=./internal/cluster \
	./scripts/bench.sh "$@"

SWARM=$(mktemp)
trap 'rm -f "$SWARM"' EXIT INT TERM
# shellcheck disable=SC2086 — flag splitting is the point
go run ./cmd/avis-load ${AVIS_LOAD_FLAGS:-} -out "$SWARM"

# Splice the swarm summary in as a trailing "swarm" key.
awk -v swarm="$SWARM" '
	/^}$/ {
		printf ",\n  \"swarm\": "
		first = 1
		while ((getline line < swarm) > 0) {
			if (!first) printf "\n  "
			printf "%s", line
			first = 0
		}
		print ""
	}
	{ print }
' BENCH_control.json >BENCH_control.json.tmp && mv BENCH_control.json.tmp BENCH_control.json
echo "wrote BENCH_control.json (with swarm summary)"
