#!/usr/bin/env sh
# ci.sh — the full local gate: build everything, vet everything, run the
# whole test suite under the race detector. Pass -short to skip the
# slow real-time tests (forwarded to go test).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== make lint (vet + staticcheck when installed)"
make lint

# Fast fail on the cluster control plane, the edge cache tier, and the
# live performance store: the failover e2e test, the avis
# drain/concurrency tests, the edge-tier smoke (its seeded chaos schedule
# drives an origin reset plus a lossy window through one edge node), and
# the perfstore's concurrent ingest/predict/eviction tests are the most
# concurrency-heavy spots in the repo, so run them under -race before
# committing to the long full-suite run below.
echo "== go test -race ./internal/cluster ./internal/avis ./internal/edge ./internal/perfstore (quick gate)"
go test -race -timeout 5m ./internal/cluster ./internal/avis ./internal/edge ./internal/perfstore

# Swarm smoke: a small avis-load run (1k virtual-time sessions, with a
# mid-run kill and failover re-placement) end-to-ends the sharded
# registry, delta batching, death detection, and drain accounting in a
# couple of seconds. The driver exits nonzero on any missed or spurious
# death or an unfinished session.
echo "== avis-load smoke (1k virtual sessions)"
go run ./cmd/avis-load -nodes 200 -sessions 1000 -ramp 10s -hold 15s -step 100ms -kill 0.1

# Mixed-version wire conformance: every v1/v2 pairing of server, client,
# coordinator, and agent must negotiate (or fall back) cleanly and
# produce byte-identical session output — the rolling-upgrade guarantee.
echo "== scripts/wire_conformance.sh (mixed-version matrix)"
./scripts/wire_conformance.sh

# The race detector slows the channel-heavy virtual-time experiments well
# past the default 10m per-package test timeout, so raise it; wall-clock
# cost is still dominated by internal/expt (skippable with -short).
echo "== go test -race -timeout 45m ./... $*"
go test -race -timeout 45m "$@" ./...

# Benchmark smoke: one iteration of every benchmark in every package
# catches harness rot (a bench that no longer compiles or fatals on its
# first iteration) without paying for real measurement runs.
echo "== go test -bench=. -benchtime=1x -short ./... (smoke)"
go test -run '^$' -bench . -benchtime 1x -short -timeout 45m ./...

# Perf gate: re-measure the data-plane kernels and the edge cache tier
# against the committed baselines. BENCH_CHECK=0 skips it; BENCH_TOLERANCE
# loosens it on noisy shared runners (CI uses 0.60, local default 0.20).
if [ "${BENCH_CHECK:-1}" = "1" ]; then
	echo "== scripts/bench_check.sh (tolerance ${BENCH_TOLERANCE:-0.20})"
	./scripts/bench_check.sh
else
	echo "== bench_check skipped (BENCH_CHECK=0)"
fi

echo "CI gate passed."
