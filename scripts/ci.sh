#!/usr/bin/env sh
# ci.sh — the CI gate, runnable whole or in stages. With no stage it runs
# everything in order (the full local gate); with a stage name it runs
# just that slice, which is how the staged GitHub workflow splits the
# pipeline across jobs:
#
#   scripts/ci.sh            # full gate (lint, unit, smoke, bench)
#   scripts/ci.sh lint       # build + vet + staticcheck
#   scripts/ci.sh unit       # race-detector test suite (quick gate first)
#   scripts/ci.sh smoke      # chaos, conformance, swarm, and mix smokes
#   scripts/ci.sh bench      # bench smoke + perf gate vs baselines
#   scripts/ci.sh -short     # full gate, skipping slow real-time tests
#
# Flags after the stage (or in place of it) are forwarded to go test.
set -eu

cd "$(dirname "$0")/.."

STAGE=all
case "${1:-}" in
lint | unit | smoke | bench | all)
	STAGE=$1
	shift
	;;
esac

run_lint() {
	echo "== go build ./..."
	go build ./...

	echo "== make lint (vet + staticcheck when installed)"
	make lint
}

run_unit() {
	# Fast fail on the cluster control plane, the edge cache tier, the
	# live performance store, and the workload layer: the failover e2e
	# test, the avis drain/concurrency tests, the edge-tier smoke, the
	# perfstore's concurrent ingest/predict/eviction tests, and the
	# mixed-workload determinism e2e are the most concurrency-heavy spots
	# in the repo, so run them under -race before committing to the long
	# full-suite run below.
	echo "== go test -race ./internal/cluster ./internal/avis ./internal/edge ./internal/perfstore ./internal/apps (quick gate)"
	go test -race -timeout 10m ./internal/cluster ./internal/avis ./internal/edge ./internal/perfstore ./internal/apps

	# The race detector slows the channel-heavy virtual-time experiments
	# well past the default 10m per-package test timeout, so raise it;
	# wall-clock cost is still dominated by internal/expt (skippable with
	# -short).
	echo "== go test -race -timeout 45m ./... $*"
	go test -race -timeout 45m "$@" ./...
}

run_smoke() {
	# Swarm smoke: a small avis-load run (1k virtual-time sessions, with
	# a mid-run kill and failover re-placement) end-to-ends the sharded
	# registry, delta batching, death detection, and drain accounting in
	# a couple of seconds. The driver exits nonzero on any missed or
	# spurious death or an unfinished session.
	echo "== avis-load smoke (1k virtual sessions)"
	go run ./cmd/avis-load -nodes 200 -sessions 1000 -ramp 10s -hold 15s -step 100ms -kill 0.1

	# Mixed-version wire conformance: every v1/v2 pairing of server,
	# client, coordinator, and agent must negotiate (or fall back)
	# cleanly and produce byte-identical session output — the
	# rolling-upgrade guarantee.
	echo "== scripts/wire_conformance.sh (mixed-version matrix)"
	./scripts/wire_conformance.sh

	# Mixed-workload smoke: a seeded video+foveal mix under a replayed
	# chaos schedule, run twice — the per-class QoS reports must be
	# byte-identical (the avis-mix determinism guarantee).
	echo "== avis-mix smoke (seeded mix, chaos replay, byte-identical)"
	MIX_A=$(mktemp) MIX_B=$(mktemp)
	trap 'rm -f "$MIX_A" "$MIX_B"' EXIT INT TERM
	go run ./cmd/avis-mix -seed 42 -video 4 -foveal 2 -chaos -out "$MIX_A"
	go run ./cmd/avis-mix -seed 42 -video 4 -foveal 2 -chaos -out "$MIX_B"
	cmp "$MIX_A" "$MIX_B" || {
		echo "avis-mix: same seed produced different reports" >&2
		exit 1
	}
	rm -f "$MIX_A" "$MIX_B"
}

run_bench() {
	# Benchmark smoke: one iteration of every benchmark in every package
	# catches harness rot (a bench that no longer compiles or fatals on
	# its first iteration) without paying for real measurement runs. The
	# figure-regeneration benchmarks hide behind -short, which is what
	# lets the timeout sit at minutes instead of the 45m the full figure
	# sweep needs.
	echo "== go test -bench=. -benchtime=1x -short ./... (smoke)"
	go test -run '^$' -bench . -benchtime 1x -short -timeout 10m ./...

	# Perf gate: re-measure the benchmarked hot paths against the six
	# committed baselines. BENCH_CHECK=0 skips it; BENCH_TOLERANCE
	# loosens it on noisy shared runners (CI uses 0.60, local default
	# 0.20).
	if [ "${BENCH_CHECK:-1}" = "1" ]; then
		echo "== scripts/bench_check.sh (tolerance ${BENCH_TOLERANCE:-0.20})"
		./scripts/bench_check.sh
	else
		echo "== bench_check skipped (BENCH_CHECK=0)"
	fi
}

case "$STAGE" in
lint) run_lint ;;
unit) run_unit "$@" ;;
smoke) run_smoke ;;
bench) run_bench ;;
all)
	run_lint
	run_unit "$@"
	run_smoke
	run_bench
	;;
esac

echo "CI gate passed ($STAGE)."
