#!/usr/bin/env sh
# bench.sh — run a micro-benchmark suite and record the results as JSON
# at the repo root. With no overrides it measures the data-plane kernels
# into BENCH_kernels.json; BENCH_FILTER/BENCH_PKG/BENCH_OUT retarget it
# at another suite (see scripts/bench_edge.sh). Pass extra go-test flags
# through, e.g. `scripts/bench.sh -benchtime 5s`.
#
# The JSON maps each benchmark to its ns/op, MB/s (when reported),
# B/op, and allocs/op, so successive runs can be diffed for regressions.
# Custom units emitted via b.ReportMetric (e.g. sessions/sec, p95 scores)
# are captured too, under the unit name with non-alphanumerics mapped
# to "_".
set -eu

cd "$(dirname "$0")/.."

BENCHES="${BENCH_FILTER:-BenchmarkLZWEncode|BenchmarkLZWDecode|BenchmarkBZWEncode|BenchmarkBZWDecode|BenchmarkChunkExtract|BenchmarkHaarDecompose}"
PKG="${BENCH_PKG:-.}"
OUT="${BENCH_OUT:-BENCH_kernels.json}"

echo "== go test -bench '$BENCHES' -benchmem $* $PKG"
go test -run '^$' -bench "$BENCHES" -benchmem -benchtime "${BENCHTIME:-2s}" "$@" "$PKG" |
	tee /dev/stderr |
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		nsop = ""; mbs = ""; bop = ""; allocs = ""; extras = ""
		for (i = 3; i <= NF; i++) {
			v = $(i - 1)
			if (v !~ /^-?[0-9.][0-9.eE+-]*$/) continue
			if ($i == "ns/op") nsop = v
			else if ($i == "MB/s") mbs = v
			else if ($i == "B/op") bop = v
			else if ($i == "allocs/op") allocs = v
			else if ($i ~ /^[A-Za-z][A-Za-z0-9\/%_.-]*$/) {
				u = $i
				gsub(/[^A-Za-z0-9]/, "_", u)
				extras = extras ", \"" u "\": " v
			}
		}
		line = "  \"" name "\": {\"ns_op\": " nsop
		if (mbs != "") line = line ", \"mb_s\": " mbs
		if (bop != "") line = line ", \"b_op\": " bop
		if (allocs != "") line = line ", \"allocs_op\": " allocs
		line = line extras "}"
		lines[n++] = line
	}
	END {
		print "{"
		for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "")
		print "}"
	}' >"$OUT"

echo "wrote $OUT"
