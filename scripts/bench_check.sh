#!/usr/bin/env sh
# bench_check.sh — guard the data-plane kernels against performance
# regression: re-run the kernel micro-benchmarks and compare ns/op
# against the committed baseline BENCH_kernels.json. Any kernel more than
# BENCH_TOLERANCE (default 0.20 = 20%) slower than its baseline fails the
# check with a nonzero exit.
#
#   scripts/bench_check.sh                        # compare at +20%
#   BENCH_TOLERANCE=0.60 scripts/bench_check.sh   # looser, for noisy CI
#   BENCHTIME=2s scripts/bench_check.sh           # steadier measurement
#
# Refresh the baseline after an intentional perf change with
# scripts/bench.sh (run on a quiet machine).
set -eu

cd "$(dirname "$0")/.."

BASELINE=BENCH_kernels.json
TOL="${BENCH_TOLERANCE:-0.20}"
if [ ! -f "$BASELINE" ]; then
	echo "bench_check: no $BASELINE baseline; run scripts/bench.sh first" >&2
	exit 2
fi

CUR=$(mktemp)
trap 'rm -f "$CUR" "$CUR.base" "$CUR.now"' EXIT INT TERM
BENCH_OUT="$CUR" BENCHTIME="${BENCHTIME:-1s}" ./scripts/bench.sh >/dev/null 2>&1

# Pull "name ns_op" pairs out of the one-entry-per-line JSON bench.sh
# writes.
extract() {
	sed -n 's/^ *"\(Benchmark[^"]*\)": {"ns_op": \([0-9.e+]*\).*/\1 \2/p' "$1" | sort
}

extract "$BASELINE" >"$CUR.base"
extract "$CUR" >"$CUR.now"

join "$CUR.base" "$CUR.now" | awk -v tol="$TOL" '
{
	name = $1; base = $2; now = $3
	limit = base * (1 + tol)
	bad += (now > limit)
	printf "%-24s base %10.1f ns/op   now %10.1f ns/op   limit %10.1f   %s\n", \
		name, base, now, limit, (now > limit ? "REGRESSION" : "ok")
}
END {
	if (NR == 0) { print "bench_check: no comparable benchmarks found"; exit 2 }
	if (bad > 0) { printf "bench_check: %d kernel(s) regressed beyond +%.0f%%\n", bad, tol * 100; exit 1 }
	printf "bench_check: %d kernel(s) within +%.0f%% of baseline\n", NR, tol * 100
}'
