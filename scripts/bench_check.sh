#!/usr/bin/env sh
# bench_check.sh — guard the benchmarked hot paths against performance
# regression: re-run each committed benchmark suite and compare ns/op
# against its baseline JSON. Any benchmark more than BENCH_TOLERANCE
# (default 0.20 = 20%) slower than its baseline fails the check with a
# nonzero exit. Six suites are gated: the data-plane kernels
# (BENCH_kernels.json), the edge cache tier (BENCH_edge.json), the
# control plane (BENCH_control.json — heartbeat dispatch, placement, and
# the counter-commit harness; its trailing "swarm" block is informational
# and ignored here), the live performance store (BENCH_perfstore.json —
# cached vs uncached profile lookup and sample ingest), the wire
# protocol (BENCH_wire.json — v1/v2 framing and schema-vs-JSON control
# bodies), and the workload layer (BENCH_apps.json — the mixed
# video+foveal harness, arbiter acquire/release, and a single video
# session; only ns/op is gated, the sessions/sec and p95-QoS fields are
# informational).
#
#   scripts/bench_check.sh                        # compare at +20%
#   BENCH_TOLERANCE=0.60 scripts/bench_check.sh   # looser, for noisy CI
#   BENCHTIME=2s scripts/bench_check.sh           # steadier measurement
#
# Refresh a baseline after an intentional perf change with
# scripts/bench.sh / scripts/bench_edge.sh (run on a quiet machine).
set -eu

cd "$(dirname "$0")/.."

TOL="${BENCH_TOLERANCE:-0.20}"

# Pull "name ns_op" pairs out of the one-entry-per-line JSON bench.sh
# writes.
extract() {
	sed -n 's/^ *"\(Benchmark[^"]*\)": {"ns_op": \([0-9.e+]*\).*/\1 \2/p' "$1" | sort
}

# check_one BASELINE FILTER PKG — re-measure one suite and diff it
# against its committed baseline.
check_one() {
	baseline=$1 filter=$2 pkg=$3
	if [ ! -f "$baseline" ]; then
		echo "bench_check: no $baseline baseline; run the matching bench script first" >&2
		exit 2
	fi
	echo "== $baseline ($pkg)"

	CUR=$(mktemp)
	trap 'rm -f "$CUR" "$CUR.base" "$CUR.now"' EXIT INT TERM
	BENCH_OUT="$CUR" BENCH_FILTER="$filter" BENCH_PKG="$pkg" \
		BENCHTIME="${BENCHTIME:-1s}" ./scripts/bench.sh >/dev/null 2>&1

	extract "$baseline" >"$CUR.base"
	extract "$CUR" >"$CUR.now"

	join "$CUR.base" "$CUR.now" | awk -v tol="$TOL" '
	{
		name = $1; base = $2; now = $3
		limit = base * (1 + tol)
		bad += (now > limit)
		printf "%-28s base %10.1f ns/op   now %10.1f ns/op   limit %10.1f   %s\n", \
			name, base, now, limit, (now > limit ? "REGRESSION" : "ok")
	}
	END {
		if (NR == 0) { print "bench_check: no comparable benchmarks found"; exit 2 }
		if (bad > 0) { printf "bench_check: %d benchmark(s) regressed beyond +%.0f%%\n", bad, tol * 100; exit 1 }
		printf "bench_check: %d benchmark(s) within +%.0f%% of baseline\n", NR, tol * 100
	}'
	rm -f "$CUR" "$CUR.base" "$CUR.now"
}

check_one BENCH_kernels.json \
	'BenchmarkLZWEncode|BenchmarkLZWDecode|BenchmarkBZWEncode|BenchmarkBZWDecode|BenchmarkChunkExtract|BenchmarkHaarDecompose' \
	.
check_one BENCH_edge.json 'BenchmarkEdge' ./internal/edge
check_one BENCH_control.json 'BenchmarkControl|BenchmarkCounter' ./internal/cluster
check_one BENCH_perfstore.json 'BenchmarkPerfstore' ./internal/perfstore
check_one BENCH_wire.json 'BenchmarkWire' ./internal/wire
check_one BENCH_apps.json 'BenchmarkApps' ./internal/apps
