#!/usr/bin/env sh
# wire_conformance.sh — mixed-version wire-protocol smoke: prove that a
# rolling upgrade cannot corrupt the data plane. Runs every pairing of a
# v2 and a v1-pinned (-wirev1, speaking what a pre-v2 build spoke)
# avis-server and avis-client, dumps each session's reconstructed pixels
# (float64 LE), and requires all four dumps byte-identical. Then repeats
# the mix on the control plane: a coordinator and an agent in each
# version pairing must still register, heartbeat, and place a session
# whose dump matches the same baseline.
#
#   scripts/wire_conformance.sh            # full matrix (~15s)
#   KEEP_TMP=1 scripts/wire_conformance.sh # leave dumps behind on failure
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
cleanup() {
	[ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
	[ -n "${COORD_PID:-}" ] && kill "$COORD_PID" 2>/dev/null || true
	wait 2>/dev/null || true
	[ "${KEEP_TMP:-0}" = "1" ] || rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$TMP/avis-server" ./cmd/avis-server
go build -o "$TMP/avis-client" ./cmd/avis-client
go build -o "$TMP/avis-coord" ./cmd/avis-coord
go build -o "$TMP/portprobe" ./scripts/internal/portprobe

SIDE=256 LEVELS=4 IMAGES=2
SRV_ADDR=127.0.0.1:7471
COORD_ADDR=127.0.0.1:7671

# wait_port HOST:PORT — poll until something listens there.
wait_port() {
	i=0
	while ! "$TMP/portprobe" "$1" 2>/dev/null; do
		i=$((i + 1))
		[ $i -ge 50 ] && { echo "timeout waiting for $1" >&2; exit 1; }
		sleep 0.1
	done
}

# session SRVFLAGS CLIFLAGS OUT — one direct data-plane session.
session() {
	"$TMP/avis-server" -addr $SRV_ADDR -side $SIDE -levels $LEVELS -images $IMAGES $1 &
	SRV_PID=$!
	wait_port $SRV_ADDR
	"$TMP/avis-client" -addr $SRV_ADDR -n $IMAGES -level $LEVELS $2 -dump "$3" >/dev/null
	kill $SRV_PID
	wait $SRV_PID 2>/dev/null || true
	SRV_PID=
}

echo "== data plane: version matrix"
session ""        ""        "$TMP/v2v2.bin"
session ""        "-wirev1" "$TMP/v2v1.bin"
session "-wirev1" ""        "$TMP/v1v2.bin"
session "-wirev1" "-wirev1" "$TMP/v1v1.bin"

for f in v2v1 v1v2 v1v1; do
	cmp "$TMP/v2v2.bin" "$TMP/$f.bin" || {
		echo "wire_conformance: data plane $f differs from v2v2" >&2
		exit 1
	}
done
echo "   4/4 sessions byte-identical ($(wc -c <"$TMP/v2v2.bin") bytes each)"

# coord_session COORDFLAGS SRVFLAGS CLIFLAGS OUT — a placed session
# through a coordinator, mixing control-plane versions.
coord_session() {
	"$TMP/avis-coord" -addr $COORD_ADDR $1 &
	COORD_PID=$!
	wait_port $COORD_ADDR
	"$TMP/avis-server" -addr $SRV_ADDR -side $SIDE -levels $LEVELS -images $IMAGES \
		-coord $COORD_ADDR -heartbeat 200ms $2 &
	SRV_PID=$!
	wait_port $SRV_ADDR
	sleep 0.5 # let registration land
	"$TMP/avis-client" -coord $COORD_ADDR -n $IMAGES -level $LEVELS $3 -dump "$4" >/dev/null
	kill $SRV_PID $COORD_PID
	wait $SRV_PID $COORD_PID 2>/dev/null || true
	SRV_PID= COORD_PID=
}

echo "== control plane: version matrix"
coord_session ""        "-wirev1" ""        "$TMP/c2a1.bin" # v2 coordinator, v1 agent
coord_session "-wirev1" ""        "-wirev1" "$TMP/c1a2.bin" # v1 coordinator, v2 agent
for f in c2a1 c1a2; do
	cmp "$TMP/v2v2.bin" "$TMP/$f.bin" || {
		echo "wire_conformance: control plane $f differs from baseline" >&2
		exit 1
	}
done
echo "   2/2 placed sessions byte-identical"

echo "wire_conformance: OK"
