#!/usr/bin/env sh
# bench_perfstore.sh — run the live performance-store micro-benchmarks
# (cached vs uncached profile lookup, sustained sample ingest) and record
# BENCH_perfstore.json at the repo root. A thin retargeting of
# scripts/bench.sh; extra go-test flags pass through.
set -eu

cd "$(dirname "$0")/.."

BENCH_FILTER='BenchmarkPerfstore' \
BENCH_PKG=./internal/perfstore \
BENCH_OUT="${BENCH_OUT:-BENCH_perfstore.json}" \
	./scripts/bench.sh "$@"
