// Command portprobe exits 0 if something accepts a TCP connection at
// the given address, nonzero otherwise. scripts/wire_conformance.sh
// builds it once and polls with it while waiting for daemons to come
// up, since the CI image carries no netcat.
package main

import (
	"fmt"
	"net"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: portprobe host:port")
		os.Exit(2)
	}
	c, err := net.DialTimeout("tcp", os.Args[1], 500*time.Millisecond)
	if err != nil {
		os.Exit(1)
	}
	c.Close()
}
