// Package tunable is a from-scratch Go reproduction of "Automatic
// Configuration and Run-time Adaptation of Distributed Applications"
// (Chang & Karamcheti, HPDC 2000): a framework that lets distributed
// applications adapt their behaviour to changing resource availability by
// combining programmer-specified alternate configurations with automatic
// profiling, monitoring, scheduling, and steering.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory); runnable entry points are the tools in cmd/ and the programs
// in examples/. The benchmark harness in bench_test.go regenerates every
// figure of the paper's evaluation.
package tunable
