// Command avis-profile populates the performance database of the active
// visualization application by sweeping its configurations through the
// virtual testbed, exactly as the paper's driver program does (Section 5),
// and writes the result as JSON.
//
// With -merge the sweep is additionally folded into a persisted live
// performance store (the write-ahead log a coordinator hosts): existing
// refined records are weight-averaged with the sweep's, new lattice
// points are added, so a re-profiled testbed updates a deployed store
// without discarding what live telemetry already taught it.
//
// Usage:
//
//	avis-profile -out perf.json -figure all
//	avis-profile -out fig6a.json -figure 6a -refine 0.5
//	avis-profile -figure 6b -merge /var/lib/avis/perfwal
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tunable/internal/expt"
	"tunable/internal/perfdb"
	"tunable/internal/perfstore"
	"tunable/internal/profiler"
	"tunable/internal/resource"
)

func main() {
	out := flag.String("out", "perf.json", "output database path")
	figure := flag.String("figure", "all", "which profile to build: 5, 6a, 6b, or all")
	refine := flag.Float64("refine", 0, "sensitivity threshold for refinement sampling (0 disables)")
	merge := flag.String("merge", "", "also fold the sweep into the persisted performance store (WAL directory) at this path")
	flag.Parse()

	var dbs []*perfdb.DB
	add := func(name string, f func() (*perfdb.DB, error)) {
		fmt.Printf("profiling %s configurations in the virtual testbed...\n", name)
		db, err := f()
		if err != nil {
			log.Fatalf("avis-profile: %s: %v", name, err)
		}
		fmt.Printf("  %d records across %d configurations\n", db.Len(), len(db.Configs()))
		dbs = append(dbs, db)
	}
	switch *figure {
	case "5":
		add("figure-5 (fovea sizes)", expt.Fig5DB)
	case "6a":
		add("figure-6a (codecs)", expt.Fig6aDB)
	case "6b":
		add("figure-6b (resolutions)", expt.Fig6bDB)
	case "all":
		add("figure-5 (fovea sizes)", expt.Fig5DB)
		add("figure-6a (codecs)", expt.Fig6aDB)
		add("figure-6b (resolutions)", expt.Fig6bDB)
	default:
		log.Fatalf("avis-profile: unknown figure %q", *figure)
	}
	// Merge into one database for storage.
	merged := dbs[0]
	for _, db := range dbs[1:] {
		for _, cfg := range db.Configs() {
			for _, rec := range db.Records(cfg) {
				if err := merged.Add(cfg, rec.Resources, rec.Metrics); err != nil {
					log.Fatalf("avis-profile: merge: %v", err)
				}
			}
		}
	}
	if *refine > 0 {
		// Sensitivity-guided refinement: add samples where metrics change
		// steeply between adjacent grid points (the paper's sensitivity
		// analysis tool, Section 5).
		grid := resource.NewGrid() // the driver reuses the lattice inferred per config
		d, err := profiler.New(merged, grid, expt.AvisRunFunc(500e3))
		if err != nil {
			log.Fatalf("avis-profile: refine: %v", err)
		}
		added, err := d.Refine(*refine, 3, 32)
		if err != nil {
			log.Fatalf("avis-profile: refine: %v", err)
		}
		fmt.Printf("sensitivity refinement added %d samples (threshold %.2f)\n", added, *refine)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("avis-profile: %v", err)
	}
	defer f.Close()
	if err := merged.Save(f); err != nil {
		log.Fatalf("avis-profile: save: %v", err)
	}
	fmt.Printf("wrote %d records to %s\n", merged.Len(), *out)
	if *merge != "" {
		wal, err := perfstore.OpenWAL(*merge, perfstore.WALOptions{})
		if err != nil {
			log.Fatalf("avis-profile: merge: %v", err)
		}
		stats, err := perfstore.MergeSweep(wal, merged)
		if err != nil {
			log.Fatalf("avis-profile: merge: %v", err)
		}
		if err := wal.Close(); err != nil {
			log.Fatalf("avis-profile: merge: %v", err)
		}
		fmt.Printf("merged sweep into %s: %d configurations, %d records refined, %d added\n",
			*merge, stats.Configs, stats.Merged, stats.Added)
	}
}
