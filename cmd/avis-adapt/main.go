// Command avis-adapt runs the paper's three run-time adaptation
// experiments (Section 7) end to end on the virtual-time testbed: the full
// framework — monitoring agent, performance database, resource scheduler,
// steering agent — drives the visualization application through a mid-run
// resource change, alongside the two non-adaptive baselines the paper
// plots.
//
// The drift experiment closes the adaptation loop on live telemetry: the
// same run is driven twice through a mid-run bandwidth dip the offline
// database was never profiled for — once reading the stale database only
// (it stays stuck), once with achieved image metrics folding back into a
// live performance store (it re-converges under the deadline). With
// -perfstore-dir the online run's refined model persists to a write-ahead
// log and survives the process.
//
// Usage:
//
//	avis-adapt -exp 1      # codec adaptation to a bandwidth drop
//	avis-adapt -exp 2      # resolution adaptation to a CPU drop
//	avis-adapt -exp 3      # fovea adaptation to a CPU drop
//	avis-adapt -exp drift  # online store vs stale offline database
//	avis-adapt -exp drift -seed 7 -perfstore-dir /tmp/perfwal
//	avis-adapt -exp all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tunable/internal/expt"
	"tunable/internal/perfstore"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: 1, 2, 3, drift, or all")
	events := flag.Bool("events", false, "print the framework's decision log")
	seed := flag.Uint64("seed", 42, "fault-schedule seed for the drift experiment")
	perfDir := flag.String("perfstore-dir", "", "persist the drift experiment's online store to a write-ahead log in this directory")
	flag.Parse()

	run := func(id string, f func() (*expt.ExperimentResult, error)) {
		e, err := f()
		if err != nil {
			log.Fatalf("avis-adapt: experiment %s: %v", id, err)
		}
		if err := e.Fig.Render(os.Stdout); err != nil {
			log.Fatalf("avis-adapt: %v", err)
		}
		if id == "3" {
			if err := expt.Figure7d(e).Render(os.Stdout); err != nil {
				log.Fatalf("avis-adapt: %v", err)
			}
		}
		fmt.Printf("summary %s: adaptive %.2fs (%d switches, final %s) | %s %.2fs | %s %.2fs\n\n",
			id, e.Adaptive.Total.Seconds(), e.Adaptive.Switches, e.Adaptive.Final.Key(),
			e.StaticA.Label, e.StaticA.Total.Seconds(),
			e.StaticB.Label, e.StaticB.Total.Seconds())
		if *events {
			for _, ev := range e.Adaptive.Events {
				fmt.Printf("  %-12v %-12s %s\n", ev.At, ev.Kind, ev.Detail)
			}
			fmt.Println()
		}
	}
	runDrift := func() {
		backend := perfstore.Store(perfstore.NewMemStore())
		if *perfDir != "" {
			wal, err := perfstore.OpenWAL(*perfDir, perfstore.WALOptions{})
			if err != nil {
				log.Fatalf("avis-adapt: perfstore: %v", err)
			}
			backend = wal
		}
		fig, offline, online, err := expt.DriftWith(*seed, backend)
		if err != nil {
			log.Fatalf("avis-adapt: drift: %v", err)
		}
		if err := fig.Render(os.Stdout); err != nil {
			log.Fatalf("avis-adapt: %v", err)
		}
		offHits, offPost := expt.DeadlineHits(offline)
		onHits, onPost := expt.DeadlineHits(online)
		fmt.Printf("summary drift: offline %.2fs (%d switches, final %s, %d/%d in deadline) | online %.2fs (%d switches, final %s, %d/%d in deadline)\n\n",
			offline.Total.Seconds(), offline.Switches, offline.Final.Key(), offHits, offPost,
			online.Total.Seconds(), online.Switches, online.Final.Key(), onHits, onPost)
		if *events {
			for _, ev := range online.Events {
				fmt.Printf("  %-12v %-12s %s\n", ev.At, ev.Kind, ev.Detail)
			}
			fmt.Println()
		}
	}
	switch *exp {
	case "1":
		run("1", expt.Experiment1)
	case "2":
		run("2", expt.Experiment2)
	case "3":
		run("3", expt.Experiment3)
	case "drift":
		runDrift()
	case "all":
		run("1", expt.Experiment1)
		run("2", expt.Experiment2)
		run("3", expt.Experiment3)
		runDrift()
	default:
		log.Fatalf("avis-adapt: unknown experiment %q", *exp)
	}
}
