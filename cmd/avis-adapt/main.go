// Command avis-adapt runs the paper's three run-time adaptation
// experiments (Section 7) end to end on the virtual-time testbed: the full
// framework — monitoring agent, performance database, resource scheduler,
// steering agent — drives the visualization application through a mid-run
// resource change, alongside the two non-adaptive baselines the paper
// plots.
//
// Usage:
//
//	avis-adapt -exp 1     # codec adaptation to a bandwidth drop
//	avis-adapt -exp 2     # resolution adaptation to a CPU drop
//	avis-adapt -exp 3     # fovea adaptation to a CPU drop
//	avis-adapt -exp all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tunable/internal/expt"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: 1, 2, 3, or all")
	events := flag.Bool("events", false, "print the framework's decision log")
	flag.Parse()

	run := func(id string, f func() (*expt.ExperimentResult, error)) {
		e, err := f()
		if err != nil {
			log.Fatalf("avis-adapt: experiment %s: %v", id, err)
		}
		if err := e.Fig.Render(os.Stdout); err != nil {
			log.Fatalf("avis-adapt: %v", err)
		}
		if id == "3" {
			if err := expt.Figure7d(e).Render(os.Stdout); err != nil {
				log.Fatalf("avis-adapt: %v", err)
			}
		}
		fmt.Printf("summary %s: adaptive %.2fs (%d switches, final %s) | %s %.2fs | %s %.2fs\n\n",
			id, e.Adaptive.Total.Seconds(), e.Adaptive.Switches, e.Adaptive.Final.Key(),
			e.StaticA.Label, e.StaticA.Total.Seconds(),
			e.StaticB.Label, e.StaticB.Total.Seconds())
		if *events {
			for _, ev := range e.Adaptive.Events {
				fmt.Printf("  %-12v %-12s %s\n", ev.At, ev.Kind, ev.Detail)
			}
			fmt.Println()
		}
	}
	switch *exp {
	case "1":
		run("1", expt.Experiment1)
	case "2":
		run("2", expt.Experiment2)
	case "3":
		run("3", expt.Experiment3)
	case "all":
		run("1", expt.Experiment1)
		run("2", expt.Experiment2)
		run("3", expt.Experiment3)
	default:
		log.Fatalf("avis-adapt: unknown experiment %q", *exp)
	}
}
