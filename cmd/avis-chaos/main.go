// Command avis-chaos runs a self-contained chaos experiment: it boots a
// coordinator and a small cluster of avis servers in one process, wires
// every connection — heartbeats, resolves, and the data plane — through
// the fault-injection layer, and then downloads the same image twice:
// once fault-free as a reference, once under a seeded schedule of
// partition, loss, connection reset, and a slow node. The run passes when
// the chaos download finishes byte-identical to the reference and the
// resilience counters (round retries, failovers, heartbeat failures)
// actually moved.
//
// The fault schedule is a pure function of -seed and the shape flags, so
// a failing run replays exactly: re-run with the same seed and the same
// faults fire in the same order.
//
// Usage:
//
//	avis-chaos -seed 42 -nodes 3 -partition 2s -loss 0.1 -slow 10ms
//	avis-chaos -seed 42 -metrics-addr localhost:7700 -v
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"reflect"
	"time"

	"tunable/internal/avis"
	"tunable/internal/cluster"
	"tunable/internal/faults"
	"tunable/internal/imagery"
	"tunable/internal/metrics"
	"tunable/internal/wavelet"
)

func main() {
	seed := flag.Uint64("seed", 1, "fault schedule seed (same seed, same fault sequence)")
	nodes := flag.Int("nodes", 3, "cluster size (the last node is the slow one)")
	images := flag.Int("images", 1, "images to download under chaos")
	partition := flag.Duration("partition", 2*time.Second, "asymmetric control-plane partition length (0 = none)")
	loss := flag.Float64("loss", 0.10, "data-plane loss rate during the loss window (0 = none)")
	lossWindow := flag.Duration("loss-window", 400*time.Millisecond, "length of the data-plane loss window")
	slowDelay := flag.Duration("slow", 10*time.Millisecond, "per-read latency injected on the slow node (0 = none)")
	reset := flag.Bool("reset", true, "script a connection reset on the session's data conn")
	dr := flag.Int("dr", 32, "incremental fovea size")
	codec := flag.String("codec", "lzw", "compression method: lzw, bzw, or raw")
	level := flag.Int("level", 4, "resolution level")
	side := flag.Int("side", 256, "image side length")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics on this address (empty = disabled)")
	verbose := flag.Bool("v", false, "print every injected fault")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("avis-chaos: ")

	if *nodes < 2 {
		log.Fatal("need at least 2 nodes to fail over between")
	}
	sched := buildSchedule(*seed, *nodes, *partition, *loss, *lossWindow, *slowDelay, *reset)
	fmt.Printf("seed %d: %d scripted fault event(s) over %v\n", *seed, len(sched.Events), sched.Horizon())
	for _, e := range sched.Events {
		fmt.Printf("  %s\n", e)
	}

	reg := metrics.New()
	if *metricsAddr != "" {
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", msrv.Addr)
	}

	injector, err := faults.New(sched)
	if err != nil {
		log.Fatal(err)
	}
	injector.EnableMetrics(reg)

	ok, err := run(reg, injector, sched, *seed, *nodes, *images, *partition,
		avis.Params{DR: *dr, Codec: *codec, Level: *level}, *side, *verbose)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		os.Exit(1)
	}
}

// buildSchedule derives the fault script from the shape flags. The reset
// and loss window start after the partition heals, so session failovers
// re-resolve against nodes the coordinator has already revived.
func buildSchedule(seed uint64, nodes int, partition time.Duration, loss float64, lossWindow, slowDelay time.Duration, reset bool) faults.Schedule {
	var events []faults.Event
	if partition > 0 {
		events = append(events, faults.Event{
			At: 0, Duration: partition, Kind: faults.Partition, Target: "ctrl:node-",
		})
	}
	if slowDelay > 0 {
		events = append(events, faults.Event{
			At: 0, Duration: partition + 10*time.Second, Kind: faults.Latency,
			Target: fmt.Sprintf("data:node-%d", nodes-1), Delay: slowDelay,
		})
	}
	if reset {
		events = append(events, faults.Event{
			At: partition + 500*time.Millisecond, Kind: faults.Reset, Target: "data:",
		})
	}
	if loss > 0 {
		events = append(events, faults.Event{
			At: partition + 800*time.Millisecond, Duration: lossWindow,
			Kind: faults.Drop, Target: "data:", Rate: loss,
		})
	}
	return faults.NewSchedule(seed, events...)
}

func run(reg *metrics.Registry, injector *faults.Injector, sched faults.Schedule,
	seed uint64, nodes, images int, partition time.Duration,
	params avis.Params, side int, verbose bool) (bool, error) {

	coord := cluster.NewCoordinator(cluster.Config{
		SuspectAfter: 500 * time.Millisecond,
		// Longer than the partition: silenced nodes go suspect, not dead.
		DeadAfter: partition + 10*time.Second,
	})
	coord.EnableMetrics(reg)
	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return false, err
	}
	go coord.Serve(cl)
	defer coord.Shutdown(time.Second)
	defer coord.StartTicker(50 * time.Millisecond)()

	for i := 0; i < nodes; i++ {
		id := fmt.Sprintf("node-%d", i)
		srv, err := avis.NewRealServer(side, params.Level, []int64{1, 2}, avis.SharedStore())
		if err != nil {
			return false, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return false, err
		}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Shutdown(0)
		agent := cluster.NewAgent(cl.Addr().String(), cluster.NodeInfo{
			ID: id, Addr: ln.Addr().String(),
			CPU: 1.0, MemBytes: 256 << 20,
			Side: side, Levels: params.Level, Seeds: []int64{1, 2},
		}, 15*time.Millisecond, func() cluster.Load {
			return cluster.Load{ActiveSessions: srv.ActiveSessions()}
		})
		agent.EnableMetrics(reg)
		agent.SetRetryPolicy(2, cluster.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2}, nil)
		agent.SetDialer(func(network, addr string, timeout time.Duration) (net.Conn, error) {
			return injector.Dial("ctrl:"+id, network, addr, timeout)
		})
		if err := agent.Start(); err != nil {
			return false, err
		}
		defer agent.Close(false)
	}

	r := cluster.NewResolver(cl.Addr().String(), time.Second)
	defer r.Close()
	r.EnableMetrics(reg)
	r.SetDialer(func(network, addr string, timeout time.Duration) (net.Conn, error) {
		return injector.Dial("ctrl:client", network, addr, timeout)
	})

	fc, err := cluster.DialFailover(r, params,
		cluster.WithIOTimeout(400*time.Millisecond),
		cluster.WithFailoverBackoff(cluster.Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2, Jitter: 0.5}),
		cluster.WithRetryBudget(cluster.NewRetryBudget(20, 0)),
		cluster.WithMaxFailovers(2*nodes),
		cluster.WithRoundHook(func(img, round int) {
			// Stretch each fetch so the scripted instants land mid-stream.
			if injector.Started() && (round == 1 || round == 3) {
				time.Sleep(300 * time.Millisecond)
			}
		}),
		cluster.WithDialer(func(nodeID, addr string, timeout time.Duration) (net.Conn, error) {
			return injector.Dial("data:"+nodeID, "tcp", addr, timeout)
		}))
	if err != nil {
		return false, err
	}
	defer fc.Close()
	fc.EnableMetrics(reg)

	geom := fc.Geometry()
	refs := make([]*imagery.Image, images)
	for i := 0; i < images; i++ {
		img, err := fetchReconstructed(fc, i%geom.NumImages, side, params.Level)
		if err != nil {
			return false, fmt.Errorf("reference fetch %d: %w", i, err)
		}
		refs[i] = img
	}
	fmt.Printf("reference: %d image(s) downloaded fault-free from node %s\n", images, fc.Node())

	injector.Start()
	if partition > 0 {
		fmt.Printf("partition up for %v: heartbeats failing, nodes going suspect...\n", partition)
		time.Sleep(partition + 300*time.Millisecond)
	}

	failed := false
	for i := 0; i < images; i++ {
		img, err := fetchReconstructed(fc, i%geom.NumImages, side, params.Level)
		if err != nil {
			fmt.Printf("FAIL: chaos fetch %d: %v\n", i, err)
			failed = true
			break
		}
		if !reflect.DeepEqual(refs[i].Pix, img.Pix) {
			fmt.Printf("FAIL: image %d differs from the fault-free reference\n", i)
			failed = true
		}
	}

	lg := injector.Log()
	if verbose {
		for _, inj := range lg {
			fmt.Printf("  %s\n", inj)
		}
	}
	fmt.Printf("faults injected: %d; round retries: %d; failovers: %d; final node: %s\n",
		len(lg), fc.Retries(), fc.Failovers(), fc.Node())
	if failed {
		return false, nil
	}
	if len(lg) == 0 && len(sched.Events) > 0 {
		fmt.Println("FAIL: the schedule fired no faults (fetches too short? raise -loss or -partition)")
		return false, nil
	}
	fmt.Println("OK: chaos output byte-identical to the fault-free reference")
	return true, nil
}

// fetchReconstructed downloads one image and reconstructs it client-side.
func fetchReconstructed(fc *cluster.FailoverClient, img, side, level int) (*imagery.Image, error) {
	canvas, err := wavelet.NewCanvas(side, level)
	if err != nil {
		return nil, err
	}
	if _, err := fc.FetchImage(img, canvas); err != nil {
		return nil, err
	}
	return canvas.Reconstruct(level)
}
