// Command avis-client downloads images from a running avis-server over
// real TCP, optionally through a token-bucket-shaped link, and reports the
// QoS metrics of the paper (transmission time, average round response
// time, resolution) for each image.
//
// With -metrics-addr it exposes the client-side avis_* metric families at
// /metrics (Prometheus text format; ?format=json for JSON) plus /healthz.
// With -io-timeout a dead or wedged server surfaces as a clean timeout
// error instead of a hang.
//
// Usage:
//
//	avis-client -addr localhost:7465 -dr 320 -codec lzw -level 4 -n 3 -bw 500000
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"tunable/internal/avis"
	"tunable/internal/metrics"
	"tunable/internal/wavelet"
)

func main() {
	addr := flag.String("addr", "localhost:7465", "server address")
	dr := flag.Int("dr", 320, "incremental fovea size")
	codec := flag.String("codec", "lzw", "compression method: lzw, bzw, or raw")
	level := flag.Int("level", 4, "resolution level")
	n := flag.Int("n", 1, "number of images to download")
	bw := flag.Float64("bw", 0, "shape the connection to this many bytes/second (0 = unshaped)")
	verify := flag.Bool("verify", false, "reconstruct images client-side and report integrity")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = disabled)")
	ioTimeout := flag.Duration("io-timeout", 0, "fail a frame read/write that makes no progress for this long (0 = wait forever)")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("avis-client: %v", err)
	}
	shaped := avis.Shape(conn, *bw)
	client, err := avis.NewRealClient(shaped, avis.Params{
		DR: *dr, Codec: *codec, Level: *level,
	})
	if err != nil {
		log.Fatalf("avis-client: %v", err)
	}
	client.SetIOTimeout(*ioTimeout)
	if *metricsAddr != "" {
		start := time.Now()
		reg := metrics.New(metrics.WithNow(func() time.Duration { return time.Since(start) }))
		client.EnableMetrics(reg)
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("avis-client: %v", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", msrv.Addr)
	}
	defer client.Close()
	if err := client.Connect(); err != nil {
		fatalFetch("connect", err)
	}
	geom := client.Geometry()
	fmt.Printf("connected: %d images, %d² pixels, %d levels\n",
		geom.NumImages, geom.Side, geom.Levels)

	fmt.Println("image\ttransmit(s)\tresponse(s)\trounds\traw(B)\twire(B)")
	for i := 0; i < *n; i++ {
		img := i % geom.NumImages
		var canvas *wavelet.Canvas
		if *verify {
			var err error
			canvas, err = wavelet.NewCanvas(geom.Side, geom.Levels)
			if err != nil {
				log.Fatalf("avis-client: %v", err)
			}
		}
		st, err := client.FetchImage(img, canvas)
		if err != nil {
			fatalFetch(fmt.Sprintf("fetch %d", img), err)
		}
		fmt.Printf("%d\t%.3f\t%.3f\t%d\t%d\t%d\n",
			img, st.TransmitTime.Seconds(), st.AvgResponse.Seconds(),
			st.Rounds, st.RawBytes, st.WireBytes)
		if canvas != nil {
			if _, err := canvas.Reconstruct(*level); err != nil {
				log.Fatalf("avis-client: reconstruction failed: %v", err)
			}
			fmt.Printf("  image %d reconstructed at level %d\n", img, *level)
		}
	}
}

// fatalFetch exits with a clean one-line diagnosis, distinguishing a dead
// peer (typed I/O timeout) from protocol failures.
func fatalFetch(op string, err error) {
	var te *avis.TimeoutError
	if errors.As(err, &te) {
		log.Fatalf("avis-client: %s: server made no progress within %v (%s stalled) — is the peer alive? Raise -io-timeout for slow links.",
			op, te.After, te.Op)
	}
	log.Fatalf("avis-client: %s: %v", op, err)
}
