// Command avis-client downloads images from a running avis-server over
// real TCP, optionally through a token-bucket-shaped link, and reports the
// QoS metrics of the paper (transmission time, average round response
// time, resolution) for each image.
//
// With -coord it resolves its server through the avis-coord coordinator
// instead of -addr: the coordinator places the session on the
// least-loaded node that admits the session's resource demand, and if
// that node dies mid-stream the client fails over to a replacement and
// the progressive transmission continues where it stopped.
//
// With -metrics-addr it exposes the client-side avis_* metric families at
// /metrics (Prometheus text format; ?format=json for JSON) plus /healthz.
// With -io-timeout a dead or wedged server surfaces as a clean timeout
// error instead of a hang (and, under -coord, triggers failover).
//
// Usage:
//
//	avis-client -addr localhost:7465 -dr 320 -codec lzw -level 4 -n 3 -bw 500000
//	avis-client -coord localhost:7600 -io-timeout 3s -dr 320 -codec lzw -n 3
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"tunable/internal/avis"
	"tunable/internal/cluster"
	"tunable/internal/metrics"
	"tunable/internal/wavelet"
)

// fetcher is the part of the client the download loop needs; satisfied by
// both avis.RealClient (direct) and cluster.FailoverClient (coordinated).
type fetcher interface {
	FetchImage(img int, canvas *wavelet.Canvas) (avis.ImageStat, error)
	Geometry() avis.Geometry
	Close() error
}

func main() {
	addr := flag.String("addr", "localhost:7465", "server address (ignored with -coord)")
	coord := flag.String("coord", "", "resolve the server through the coordinator at this address")
	dr := flag.Int("dr", 320, "incremental fovea size")
	codec := flag.String("codec", "lzw", "compression method: lzw, bzw, or raw")
	level := flag.Int("level", 4, "resolution level")
	n := flag.Int("n", 1, "number of images to download")
	bw := flag.Float64("bw", 0, "shape the connection to this many bytes/second (0 = unshaped)")
	verify := flag.Bool("verify", false, "reconstruct images client-side and report integrity")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = disabled)")
	ioTimeout := flag.Duration("io-timeout", 0, "fail a frame read/write that makes no progress for this long (0 = wait forever)")
	sessCPU := flag.Float64("session-cpu", 0, "CPU share demanded from cluster admission control (0 = coordinator default)")
	preferEdge := flag.Bool("prefer-edge", false, "place the session on an edge cache node when one fronts the store (with -coord)")
	maxFailovers := flag.Int("max-failovers", 3, "node failures one image fetch survives before giving up (with -coord)")
	failoverBackoff := flag.Duration("failover-backoff", 100*time.Millisecond, "base of the jittered exponential backoff between failover attempts (with -coord)")
	retryBudget := flag.Int("retry-budget", 0, "total retry tokens for the session, 0 = unlimited (with -coord)")
	retryBudgetRate := flag.Float64("retry-budget-rate", 0, "retry tokens refilled per second (with -retry-budget)")
	wireV1 := flag.Bool("wirev1", false, "speak v1 framing and JSON control bodies, as a pre-v2 build would (mixed-version rollouts)")
	dump := flag.String("dump", "", "append each reconstructed image's pixels (float64 LE) to this file (implies client-side reconstruction)")
	flag.Parse()

	var reg *metrics.Registry
	if *metricsAddr != "" {
		start := time.Now()
		reg = metrics.New(metrics.WithNow(func() time.Duration { return time.Since(start) }))
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("avis-client: %v", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", msrv.Addr)
	}

	params := avis.Params{DR: *dr, Codec: *codec, Level: *level}
	var client fetcher
	if *coord != "" {
		resolver := cluster.NewResolver(*coord, 0)
		resolver.SetWireV1(*wireV1)
		defer resolver.Close()
		opts := []cluster.FailoverOption{
			cluster.WithBandwidth(*bw),
			cluster.WithSessionDemand(*sessCPU, 0),
			cluster.WithMaxFailovers(*maxFailovers),
			cluster.WithFailoverBackoff(cluster.Backoff{
				Base: *failoverBackoff, Max: 20 * *failoverBackoff, Factor: 2, Jitter: 0.5,
			}),
		}
		if *preferEdge {
			opts = append(opts, cluster.WithPreferEdge())
		}
		if *ioTimeout > 0 {
			opts = append(opts, cluster.WithIOTimeout(*ioTimeout))
		}
		if *retryBudget > 0 {
			opts = append(opts, cluster.WithRetryBudget(cluster.NewRetryBudget(*retryBudget, *retryBudgetRate)))
		}
		fc, err := cluster.DialFailover(resolver, params, opts...)
		if err != nil {
			log.Fatalf("avis-client: %v", err)
		}
		if reg != nil {
			fc.EnableMetrics(reg)
		}
		fmt.Printf("placed on node %s\n", fc.Node())
		client = fc
	} else {
		conn, err := net.Dial("tcp", *addr)
		if err != nil {
			log.Fatalf("avis-client: %v", err)
		}
		rc, err := avis.NewRealClient(avis.Shape(conn, *bw), params)
		if err != nil {
			log.Fatalf("avis-client: %v", err)
		}
		rc.SetWireV1(*wireV1)
		rc.SetIOTimeout(*ioTimeout)
		if reg != nil {
			rc.EnableMetrics(reg)
		}
		if err := rc.Connect(); err != nil {
			fatalFetch("connect", err)
		}
		client = rc
	}
	defer client.Close()
	geom := client.Geometry()
	fmt.Printf("connected: %d images, %d² pixels, %d levels\n",
		geom.NumImages, geom.Side, geom.Levels)

	var dumpFile *os.File
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatalf("avis-client: %v", err)
		}
		defer f.Close()
		dumpFile = f
	}

	fmt.Println("image\ttransmit(s)\tresponse(s)\trounds\traw(B)\twire(B)")
	for i := 0; i < *n; i++ {
		img := i % geom.NumImages
		var canvas *wavelet.Canvas
		if *verify || dumpFile != nil {
			var err error
			canvas, err = wavelet.NewCanvas(geom.Side, geom.Levels)
			if err != nil {
				log.Fatalf("avis-client: %v", err)
			}
		}
		st, err := client.FetchImage(img, canvas)
		if err != nil {
			fatalFetch(fmt.Sprintf("fetch %d", img), err)
		}
		fmt.Printf("%d\t%.3f\t%.3f\t%d\t%d\t%d\n",
			img, st.TransmitTime.Seconds(), st.AvgResponse.Seconds(),
			st.Rounds, st.RawBytes, st.WireBytes)
		if canvas != nil {
			rec, err := canvas.Reconstruct(*level)
			if err != nil {
				log.Fatalf("avis-client: reconstruction failed: %v", err)
			}
			if *verify {
				fmt.Printf("  image %d reconstructed at level %d\n", img, *level)
			}
			if dumpFile != nil {
				if err := binary.Write(dumpFile, binary.LittleEndian, rec.Pix); err != nil {
					log.Fatalf("avis-client: dump: %v", err)
				}
			}
		}
	}
	if fc, ok := client.(*cluster.FailoverClient); ok && fc.Failovers() > 0 {
		fmt.Printf("survived %d failover(s); finished on node %s\n", fc.Failovers(), fc.Node())
	}
}

// fatalFetch exits with a clean one-line diagnosis, distinguishing a dead
// peer (typed I/O timeout) from protocol failures.
func fatalFetch(op string, err error) {
	var te *avis.TimeoutError
	if errors.As(err, &te) {
		log.Fatalf("avis-client: %s: server made no progress within %v (%s stalled) — is the peer alive? Raise -io-timeout for slow links.",
			op, te.After, te.Op)
	}
	log.Fatalf("avis-client: %s: %v", op, err)
}
