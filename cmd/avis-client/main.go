// Command avis-client downloads images from a running avis-server over
// real TCP, optionally through a token-bucket-shaped link, and reports the
// QoS metrics of the paper (transmission time, average round response
// time, resolution) for each image.
//
// Usage:
//
//	avis-client -addr localhost:7465 -dr 320 -codec lzw -level 4 -n 3 -bw 500000
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"tunable/internal/avis"
	"tunable/internal/wavelet"
)

func main() {
	addr := flag.String("addr", "localhost:7465", "server address")
	dr := flag.Int("dr", 320, "incremental fovea size")
	codec := flag.String("codec", "lzw", "compression method: lzw, bzw, or raw")
	level := flag.Int("level", 4, "resolution level")
	n := flag.Int("n", 1, "number of images to download")
	bw := flag.Float64("bw", 0, "shape the connection to this many bytes/second (0 = unshaped)")
	verify := flag.Bool("verify", false, "reconstruct images client-side and report integrity")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("avis-client: %v", err)
	}
	client, err := avis.NewRealClient(avis.Shape(conn, *bw), avis.Params{
		DR: *dr, Codec: *codec, Level: *level,
	})
	if err != nil {
		log.Fatalf("avis-client: %v", err)
	}
	defer client.Close()
	if err := client.Connect(); err != nil {
		log.Fatalf("avis-client: connect: %v", err)
	}
	geom := client.Geometry()
	fmt.Printf("connected: %d images, %d² pixels, %d levels\n",
		geom.NumImages, geom.Side, geom.Levels)

	fmt.Println("image\ttransmit(s)\tresponse(s)\trounds\traw(B)\twire(B)")
	for i := 0; i < *n; i++ {
		img := i % geom.NumImages
		var canvas *wavelet.Canvas
		if *verify {
			var err error
			canvas, err = wavelet.NewCanvas(geom.Side, geom.Levels)
			if err != nil {
				log.Fatalf("avis-client: %v", err)
			}
		}
		st, err := client.FetchImage(img, canvas)
		if err != nil {
			log.Fatalf("avis-client: fetch %d: %v", img, err)
		}
		fmt.Printf("%d\t%.3f\t%.3f\t%d\t%d\t%d\n",
			img, st.TransmitTime.Seconds(), st.AvgResponse.Seconds(),
			st.Rounds, st.RawBytes, st.WireBytes)
		if canvas != nil {
			if _, err := canvas.Reconstruct(*level); err != nil {
				log.Fatalf("avis-client: reconstruction failed: %v", err)
			}
			fmt.Printf("  image %d reconstructed at level %d\n", img, *level)
		}
	}
}
