// Command avis-figures regenerates the paper's figures as text tables and
// time series, running every underlying experiment on the deterministic
// virtual-time testbed.
//
// Usage:
//
//	avis-figures            # all figures
//	avis-figures -fig 6a    # one figure
package main

import (
	"flag"
	"log"
	"os"

	"tunable/internal/expt"
)

func main() {
	fig := flag.String("fig", "all", "figure id: 3a 3b 4a 4b 5a 5b 6a 6b 7a 7b 7c 7d, or all")
	flag.Parse()

	type genFunc func() (*expt.FigResult, error)
	gens := map[string]genFunc{
		"3a": expt.Figure3a,
		"3b": expt.Figure3b,
		"4a": expt.Figure4a,
		"4b": expt.Figure4b,
		"5a": expt.Figure5a,
		"5b": expt.Figure5b,
		"6a": expt.Figure6a,
		"6b": expt.Figure6b,
		"7a": func() (*expt.FigResult, error) {
			e, err := expt.Experiment1()
			if err != nil {
				return nil, err
			}
			return e.Fig, nil
		},
		"7b": func() (*expt.FigResult, error) {
			e, err := expt.Experiment2()
			if err != nil {
				return nil, err
			}
			return e.Fig, nil
		},
	}
	// 7c and 7d share one experiment run.
	run7cd := func() (*expt.FigResult, *expt.FigResult, error) {
		e, err := expt.Experiment3()
		if err != nil {
			return nil, nil, err
		}
		return e.Fig, expt.Figure7d(e), nil
	}

	order := []string{"3a", "3b", "4a", "4b", "5a", "5b", "6a", "6b", "7a", "7b", "7c", "7d"}
	valid := map[string]bool{}
	for _, id := range order {
		valid[id] = true
	}
	want := map[string]bool{}
	if *fig == "all" {
		want = valid
	} else {
		if !valid[*fig] {
			log.Fatalf("avis-figures: unknown figure %q (want one of %v or all)", *fig, order)
		}
		want[*fig] = true
	}

	var f7c, f7d *expt.FigResult
	for _, id := range order {
		if !want[id] {
			continue
		}
		var res *expt.FigResult
		var err error
		switch id {
		case "7c", "7d":
			if f7c == nil {
				f7c, f7d, err = run7cd()
				if err != nil {
					log.Fatalf("avis-figures: %s: %v", id, err)
				}
			}
			if id == "7c" {
				res = f7c
			} else {
				res = f7d
			}
		default:
			gen, ok := gens[id]
			if !ok {
				log.Fatalf("avis-figures: unknown figure %q", id)
			}
			res, err = gen()
			if err != nil {
				log.Fatalf("avis-figures: %s: %v", id, err)
			}
		}
		if err := res.Render(os.Stdout); err != nil {
			log.Fatalf("avis-figures: render %s: %v", id, err)
		}
	}
}
