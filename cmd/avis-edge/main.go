// Command avis-edge runs the edge cache tier over real TCP: a proxy that
// speaks the avis frame protocol on both sides, serving coarse pyramid
// levels from a bounded LRU+TTL chunk cache keyed by (store signature,
// image, level, region) while fine levels stream through from the origin
// server. Concurrent cache misses for one chunk collapse into a single
// origin round, and -prewarm predicts the client's next foveal region by
// linear trajectory extrapolation and fetches its coarse chunks early.
//
// With -coord it joins the cluster as an edge node (role=edge, announcing
// the origin's store signature): the coordinator then prefers it for
// coarse-level sessions (cluster.WithPreferEdge) and falls back to the
// origin when the edge fails.
//
// With -metrics-addr it exposes the edge_cache_* and edge_* metric
// families on /metrics (Prometheus text; append ?format=json for JSON).
//
// Usage:
//
//	avis-edge -addr :7470 -origin localhost:7465 -sig $(store signature) \
//	          -prewarm -coord localhost:7600 -metrics-addr :9091
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tunable/internal/cluster"
	"tunable/internal/edge"
	"tunable/internal/metrics"
)

func main() {
	addr := flag.String("addr", ":7470", "client-facing listen address")
	origin := flag.String("origin", "localhost:7465", "origin avis-server address")
	originCodec := flag.String("origin-codec", edge.DefaultOriginCodec, "codec on the origin leg")
	sig := flag.String("sig", "", "origin store signature for cache keys and cluster registration")
	entries := flag.Int("cache-entries", edge.DefaultCacheEntries, "cache bound: live chunks (<0 = unbounded)")
	bytes := flag.Int64("cache-bytes", edge.DefaultCacheBytes, "cache bound: summed payload bytes (<0 = unbounded)")
	ttl := flag.Duration("ttl", edge.DefaultTTL, "cached chunk lifetime")
	coarseMax := flag.Int("coarse-max", 0, "largest pyramid level served from cache (0 = all below full resolution, <0 = cache nothing)")
	prewarm := flag.Bool("prewarm", false, "prefetch predicted fovea regions (linear trajectory extrapolation)")
	segBytes := flag.Int("seg-bytes", 0, "client-facing reply segment size (0 = protocol default)")
	ioTimeout := flag.Duration("io-timeout", 0, "drop a connection whose frame I/O makes no progress for this long (0 = wait forever)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = disabled)")
	coord := flag.String("coord", "", "register with the avis-coord coordinator at this address (empty = standalone)")
	nodeID := flag.String("node-id", "", "cluster node name (default: the advertised address)")
	advertise := flag.String("advertise", "", "data-plane address to announce to the coordinator (default: the listen address)")
	cpu := flag.Float64("cpu", 1.0, "CPU share capacity declared to cluster admission control (0,1]")
	mem := flag.Int64("mem", 512<<20, "memory capacity in bytes declared to cluster admission control")
	heartbeat := flag.Duration("heartbeat", cluster.DefaultHeartbeat, "cluster heartbeat interval")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain bound for in-flight sessions")
	flag.Parse()

	p, err := edge.New(edge.Config{
		OriginAddr:   *origin,
		OriginCodec:  *originCodec,
		Sig:          *sig,
		CacheEntries: *entries,
		CacheBytes:   *bytes,
		TTL:          *ttl,
		CoarseMax:    *coarseMax,
		SegBytes:     *segBytes,
		IOTimeout:    *ioTimeout,
		Prewarm:      *prewarm,
	})
	if err != nil {
		log.Fatalf("avis-edge: %v", err)
	}
	if *metricsAddr != "" {
		start := time.Now()
		reg := metrics.New(metrics.WithNow(func() time.Duration { return time.Since(start) }))
		p.EnableMetrics(reg)
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("avis-edge: %v", err)
		}
		fmt.Printf("avis-edge: metrics on http://%s/metrics\n", msrv.Addr)
	}
	if err := p.Start(); err != nil {
		log.Fatalf("avis-edge: %v", err)
	}
	geom := p.Geometry()
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("avis-edge: %v", err)
	}
	fmt.Printf("avis-edge: fronting %s (%d images, %d², %d levels) on %s\n",
		*origin, geom.NumImages, geom.Side, geom.Levels, l.Addr())

	var agent *cluster.Agent
	if *coord != "" {
		dataAddr := *advertise
		if dataAddr == "" {
			dataAddr = l.Addr().String()
		}
		id := *nodeID
		if id == "" {
			id = dataAddr
		}
		agent = cluster.NewAgent(*coord, cluster.NodeInfo{
			ID: id, Addr: dataAddr, Role: cluster.RoleEdge,
			CPU: *cpu, MemBytes: *mem,
			Side: geom.Side, Levels: geom.Levels, Sig: *sig,
		}, *heartbeat, func() cluster.Load {
			return cluster.Load{ActiveSessions: p.ActiveSessions()}
		})
		if err := agent.Start(); err != nil {
			log.Fatalf("avis-edge: join cluster: %v", err)
		}
		fmt.Printf("avis-edge: joined cluster at %s as %q (heartbeat %v)\n", *coord, id, *heartbeat)
	}

	sig2 := make(chan os.Signal, 1)
	signal.Notify(sig2, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- p.Serve(l) }()
	select {
	case s := <-sig2:
		fmt.Printf("avis-edge: %v, draining (bound %v)\n", s, *drain)
		if agent != nil {
			agent.Close(true)
		}
		if forced := p.Shutdown(*drain); forced > 0 {
			fmt.Printf("avis-edge: cut %d session(s) still open after drain\n", forced)
		}
	case err := <-errc:
		log.Fatalf("avis-edge: %v", err)
	}
}
