// Command avis-server runs the active visualization server over real TCP:
// it generates a synthetic image set, stores it as wavelet pyramids, and
// answers progressive foveal requests with the codec each client announces.
//
// With -metrics-addr it also exposes live telemetry: /metrics serves the
// avis_* metric families in Prometheus text exposition format (append
// ?format=json for JSON) and /healthz answers liveness probes.
//
// Usage:
//
//	avis-server -addr :7465 -side 1024 -levels 4 -images 3 -metrics-addr :9090
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"tunable/internal/avis"
	"tunable/internal/metrics"
)

func main() {
	addr := flag.String("addr", ":7465", "listen address")
	side := flag.Int("side", 1024, "image side in pixels (divisible by 2^levels)")
	levels := flag.Int("levels", 4, "wavelet decomposition depth")
	images := flag.Int("images", 3, "number of synthetic images to serve")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = disabled)")
	ioTimeout := flag.Duration("io-timeout", 0, "drop a connection whose frame I/O makes no progress for this long (0 = wait forever)")
	flag.Parse()

	seeds := make([]int64, *images)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	srv, err := avis.NewRealServer(*side, *levels, seeds, avis.SharedStore())
	if err != nil {
		log.Fatalf("avis-server: %v", err)
	}
	srv.SetIOTimeout(*ioTimeout)
	if *metricsAddr != "" {
		start := time.Now()
		reg := metrics.New(metrics.WithNow(func() time.Duration { return time.Since(start) }))
		srv.EnableMetrics(reg)
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("avis-server: %v", err)
		}
		fmt.Printf("avis-server: metrics on http://%s/metrics\n", msrv.Addr)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("avis-server: %v", err)
	}
	fmt.Printf("avis-server: serving %d images (%d², %d levels) on %s\n",
		*images, *side, *levels, l.Addr())
	if err := srv.Serve(l); err != nil {
		log.Fatalf("avis-server: %v", err)
	}
}
