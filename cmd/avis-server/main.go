// Command avis-server runs the active visualization server over real TCP:
// it generates a synthetic image set, stores it as wavelet pyramids, and
// answers progressive foveal requests with the codec each client announces.
//
// With -coord it joins a cluster: the server registers with the avis-coord
// coordinator (address, image-store contents, declared capacity) and renews
// the registration with heartbeats carrying its live session count, so the
// coordinator can place and fail over client sessions.
//
// With -metrics-addr it also exposes live telemetry: /metrics serves the
// avis_* metric families in Prometheus text exposition format (append
// ?format=json for JSON) and /healthz answers liveness probes.
//
// SIGINT/SIGTERM shut it down gracefully: the listener closes, the node
// deregisters from the coordinator (so sessions fail over immediately),
// and in-flight sessions drain for up to -drain before being cut.
//
// Usage:
//
//	avis-server -addr :7465 -side 1024 -levels 4 -images 3 \
//	            -coord localhost:7600 -node-id node-a -metrics-addr :9090
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tunable/internal/avis"
	"tunable/internal/cluster"
	"tunable/internal/metrics"
)

func main() {
	addr := flag.String("addr", ":7465", "listen address")
	side := flag.Int("side", 1024, "image side in pixels (divisible by 2^levels)")
	levels := flag.Int("levels", 4, "wavelet decomposition depth")
	images := flag.Int("images", 3, "number of synthetic images to serve")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = disabled)")
	ioTimeout := flag.Duration("io-timeout", 0, "drop a connection whose frame I/O makes no progress for this long (0 = wait forever)")
	coord := flag.String("coord", "", "register with the avis-coord coordinator at this address (empty = standalone)")
	nodeID := flag.String("node-id", "", "cluster node name (default: the advertised address)")
	advertise := flag.String("advertise", "", "data-plane address to announce to the coordinator (default: the listen address)")
	cpu := flag.Float64("cpu", 1.0, "CPU share capacity declared to cluster admission control (0,1]")
	mem := flag.Int64("mem", 512<<20, "memory capacity in bytes declared to cluster admission control")
	heartbeat := flag.Duration("heartbeat", cluster.DefaultHeartbeat, "cluster heartbeat interval")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain bound for in-flight sessions")
	wireV1 := flag.Bool("wirev1", false, "speak v1 framing and JSON control bodies, as a pre-v2 build would (mixed-version rollouts)")
	flag.Parse()

	seeds := make([]int64, *images)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	srv, err := avis.NewRealServer(*side, *levels, seeds, avis.SharedStore())
	if err != nil {
		log.Fatalf("avis-server: %v", err)
	}
	srv.SetIOTimeout(*ioTimeout)
	srv.SetWireV1(*wireV1)
	if *metricsAddr != "" {
		start := time.Now()
		reg := metrics.New(metrics.WithNow(func() time.Duration { return time.Since(start) }))
		srv.EnableMetrics(reg)
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("avis-server: %v", err)
		}
		fmt.Printf("avis-server: metrics on http://%s/metrics\n", msrv.Addr)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("avis-server: %v", err)
	}
	// The store signature is what edge caches announce to front this
	// store (avis-edge -sig) and what failover pins sessions to.
	fmt.Printf("avis-server: serving %d images (%d², %d levels) on %s (store signature %s)\n",
		*images, *side, *levels, l.Addr(),
		cluster.NodeInfo{Side: *side, Levels: *levels, Seeds: seeds}.StoreSig())

	var agent *cluster.Agent
	if *coord != "" {
		dataAddr := *advertise
		if dataAddr == "" {
			dataAddr = l.Addr().String()
		}
		id := *nodeID
		if id == "" {
			id = dataAddr
		}
		agent = cluster.NewAgent(*coord, cluster.NodeInfo{
			ID: id, Addr: dataAddr,
			CPU: *cpu, MemBytes: *mem,
			Side: *side, Levels: *levels, Seeds: seeds,
		}, *heartbeat, func() cluster.Load {
			return cluster.Load{ActiveSessions: srv.ActiveSessions()}
		})
		agent.SetWireV1(*wireV1)
		if err := agent.Start(); err != nil {
			log.Fatalf("avis-server: join cluster: %v", err)
		}
		fmt.Printf("avis-server: joined cluster at %s as %q (heartbeat %v)\n", *coord, id, *heartbeat)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case s := <-sig:
		fmt.Printf("avis-server: %v, draining (bound %v)\n", s, *drain)
		if agent != nil {
			agent.Close(true) // deregister so the coordinator fails sessions over now
		}
		if forced := srv.Shutdown(*drain); forced > 0 {
			fmt.Printf("avis-server: cut %d session(s) still open after drain\n", forced)
		}
	case err := <-errc:
		log.Fatalf("avis-server: %v", err)
	}
}
