// Command avis-load is the control-plane swarm driver: it runs a large
// population of client sessions (100k+ by default) against an in-process
// sharded coordinator on a shared virtual clock, with per-node delta
// batches standing in for the agents, and reports registry throughput and
// placement-decision latency. Time is virtual — session arrivals, holds,
// heartbeat flushes, and the failure-detector deadlines all advance on
// vtime.SharedClock steps — but the work is real and truly concurrent:
// every resolve, delta apply, and end-session runs on the coordinator's
// sharded core from parallel workers, which is what makes the run
// meaningful under -race.
//
// Mid-run it kills a fraction of the fleet (-kill) and verifies the death
// protocol end to end: every killed node is declared dead (no misses), no
// live node is (no spurious deaths), and every session the dead nodes
// carried is re-placed (failover) and still completes.
//
// Usage:
//
//	avis-load                                  # 10k nodes, 100k sessions
//	avis-load -nodes 200 -sessions 1000        # smoke
//	go run -race ./cmd/avis-load               # the acceptance run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tunable/internal/cluster"
	"tunable/internal/metrics"
	"tunable/internal/vtime"
)

func nodeID(i int) string { return fmt.Sprintf("node-%05d", i) }

func nodeIndex(id string) int {
	n, err := strconv.Atoi(id[len("node-"):])
	if err != nil {
		panic("avis-load: foreign node id " + id)
	}
	return n
}

// summary is the machine-readable run report (-out).
type summary struct {
	Nodes      int     `json:"nodes"`
	Sessions   int     `json:"sessions"`
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	Killed     int     `json:"killed"`
	Failovers  int     `json:"failovers"`
	VirtualSec float64 `json:"virtual_sec"`
	WallSec    float64 `json:"wall_sec"`

	RegistryOps    int64   `json:"registry_ops"`
	RegistryOpsSec float64 `json:"registry_ops_per_sec"`
	HeartbeatOps   int64   `json:"heartbeat_entries"`
	DeltaBatches   int64   `json:"delta_batches"`

	PlaceP50us float64 `json:"placement_p50_us"`
	PlaceP95us float64 `json:"placement_p95_us"`
	PlaceP99us float64 `json:"placement_p99_us"`
}

func main() {
	nodes := flag.Int("nodes", 10000, "simulated nodes in the registry")
	sessions := flag.Int("sessions", 100000, "client sessions to run to completion")
	shards := flag.Int("shards", 0, "coordinator shard count (0 = default)")
	workers := flag.Int("workers", 8, "concurrent driver workers")
	step := flag.Duration("step", 200*time.Millisecond, "virtual time per driver step")
	ramp := flag.Duration("ramp", time.Minute, "virtual arrival window for all sessions")
	hold := flag.Duration("hold", 20*time.Second, "mean virtual session hold time (uniform ±50%)")
	heartbeat := flag.Duration("heartbeat", time.Second, "virtual delta-flush cadence per node")
	batch := flag.Int("batch", 128, "delta entries per batch")
	suspect := flag.Duration("suspect", cluster.DefaultSuspectAfter, "detector suspect deadline")
	dead := flag.Duration("dead", cluster.DefaultDeadAfter, "detector death deadline")
	kill := flag.Float64("kill", 0.01, "fraction of nodes killed mid-ramp")
	sessionCPU := flag.Float64("session-cpu", 0.001, "per-session CPU share for admission")
	seed := flag.Int64("seed", 1, "prng seed for session hold times and the kill set")
	out := flag.String("out", "", "write a JSON run summary here")
	flag.Parse()

	clk := &vtime.SharedClock{}
	coord := cluster.NewCoordinator(cluster.Config{
		SuspectAfter: *suspect,
		DeadAfter:    *dead,
		Now:          clk.Now,
		Shards:       *shards,
	})
	reg := metrics.New(metrics.WithNow(clk.Now))
	coord.EnableMetrics(reg)
	placeHist := reg.Histogram("cluster_placement_latency_seconds",
		"Wall time per placement decision (Resolve).")

	wallStart := time.Now()
	var ops atomic.Int64 // registry ops applied: registers, delta entries, resolves, ends

	// Register the fleet from parallel workers.
	runParallel(*workers, *nodes, func(w, i int) {
		info := cluster.NodeInfo{
			ID: nodeID(i), Addr: fmt.Sprintf("10.0.%d.%d:7000", i/256, i%256),
			CPU: 1, Side: 8, Levels: 1, Seeds: []int64{42},
		}
		if err := coord.Register(info); err != nil {
			log.Fatalf("avis-load: register %s: %v", info.ID, err)
		}
		ops.Add(1)
	})
	fmt.Printf("avis-load: %d nodes registered in %d shards\n", *nodes, coord.Shards())

	rng := rand.New(rand.NewSource(*seed))
	nKill := int(float64(*nodes) * *kill)
	killSet := make(map[int]bool, nKill)
	for len(killSet) < nKill {
		killSet[rng.Intn(*nodes)] = true
	}

	// Per-session record: the node currently serving it (written by the
	// worker that placed it, re-written on failover).
	sessNode := make([]atomic.Int32, *sessions)
	// Net session delta per node since its last flush.
	nodeDelta := make([]atomic.Int32, *nodes)
	var deltaBatches, hbEntries, failovers atomic.Int64

	resolve := func(sid int, exclude []string) {
		t0 := time.Now()
		grant, err := coord.Resolve(cluster.ResolveRequest{
			SID: "s-" + strconv.Itoa(sid), CPU: *sessionCPU, Exclude: exclude,
		})
		placeHist.Observe(time.Since(t0).Seconds())
		if err != nil {
			log.Fatalf("avis-load: resolve session %d: %v", sid, err)
		}
		ni := nodeIndex(grant.NodeID)
		sessNode[sid].Store(int32(ni))
		nodeDelta[ni].Add(1)
		ops.Add(1)
		if len(exclude) > 0 {
			if !grant.Failover {
				log.Fatalf("avis-load: re-resolve of session %d not flagged as failover", sid)
			}
			failovers.Add(1)
		}
	}
	end := func(sid int) {
		coord.EndSession("s-" + strconv.Itoa(sid))
		nodeDelta[sessNode[sid].Load()].Add(-1)
		ops.Add(1)
	}
	// flushDeltas plays the agents' role for the worker's node range:
	// swap out each live node's pending delta and apply them in batches.
	flushDeltas := func(w int, killedLive bool) {
		entries := make([]cluster.DeltaEntry, 0, *batch)
		apply := func() {
			if len(entries) == 0 {
				return
			}
			if unknown := coord.ApplyDeltas(entries); len(unknown) != 0 {
				log.Fatalf("avis-load: live node refused delta: %v", unknown[0])
			}
			ops.Add(int64(len(entries)))
			hbEntries.Add(int64(len(entries)))
			deltaBatches.Add(1)
			entries = entries[:0]
		}
		for i := w; i < *nodes; i += *workers {
			if !killedLive && killSet[i] {
				continue // a killed node's agent is gone
			}
			entries = append(entries, cluster.DeltaEntry{ID: nodeID(i), Sessions: nodeDelta[i].Swap(0)})
			if len(entries) == *batch {
				apply()
			}
		}
		apply()
	}

	// The driver: one goroutine schedules virtual steps; the swarm work of
	// each step (arrivals, expiries, heartbeat flushes) runs on parallel
	// workers before the clock advances to the next step.
	endBuckets := make(map[int64][]int)
	var (
		t            time.Duration
		started      int
		endedCount   int
		nextHB       time.Duration
		killAt       = *ramp / 2
		deadCheckAt  = killAt + *dead + 2**step
		nodesKilled  = false
		failoverDone = false
	)
	if nKill == 0 {
		nodesKilled, failoverDone = true, true
	}
	for started < *sessions || endedCount < *sessions || !failoverDone {
		t += *step
		clk.Advance(*step)
		stepIdx := int64(t / *step)

		// Schedule this step's arrivals and look up its expiries.
		var startIDs []int
		target := *sessions
		if t < *ramp {
			target = int(float64(*sessions) * (float64(t) / float64(*ramp)))
		}
		for ; started < target; started++ {
			startIDs = append(startIDs, started)
			holdD := time.Duration(float64(*hold) * (0.5 + rng.Float64()))
			bucket := int64((t+holdD)/(*step)) + 1
			endBuckets[bucket] = append(endBuckets[bucket], started)
		}
		endIDs := endBuckets[stepIdx]
		delete(endBuckets, stepIdx)

		doHB := t >= nextHB
		if doHB {
			nextHB = t + *heartbeat
		}

		var wg sync.WaitGroup
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < len(startIDs); j += *workers {
					resolve(startIDs[j], nil)
				}
				for j := w; j < len(endIDs); j += *workers {
					end(endIDs[j])
				}
				if doHB {
					flushDeltas(w, !nodesKilled)
				}
			}(w)
		}
		wg.Wait()
		endedCount += len(endIDs)

		if !nodesKilled && t >= killAt {
			nodesKilled = true
			fmt.Printf("avis-load: t=%v: killing %d nodes\n", t, nKill)
		}
		coord.Tick()

		if !failoverDone && t >= deadCheckAt {
			failoverDone = true
			deadNodes := 0
			for _, st := range coord.Nodes() {
				isKilled := killSet[nodeIndex(st.ID)]
				if st.State == "dead" {
					deadNodes++
				}
				if isKilled != (st.State == "dead") {
					log.Fatalf("avis-load: node %s killed=%v but state=%s", st.ID, isKilled, st.State)
				}
			}
			if deadNodes != nKill {
				log.Fatalf("avis-load: %d nodes dead, killed %d", deadNodes, nKill)
			}
			// Fail the orphaned sessions over, in parallel.
			var orphans []int
			for _, ids := range endBuckets {
				for _, sid := range ids {
					if killSet[int(sessNode[sid].Load())] {
						orphans = append(orphans, sid)
					}
				}
			}
			runParallel(*workers, len(orphans), func(w, j int) {
				sid := orphans[j]
				resolve(sid, []string{nodeID(int(sessNode[sid].Load()))})
			})
			fmt.Printf("avis-load: t=%v: %d deaths confirmed, %d sessions failed over\n",
				t, deadNodes, len(orphans))
		}
	}

	wall := time.Since(wallStart)
	// End-of-run validation: the swarm drained completely and the death
	// accounting matches exactly.
	if g := reg.Gauge("cluster_sessions", "Sessions currently placed or awaiting failover.").Value(); g != 0 {
		log.Fatalf("avis-load: %v sessions still registered after drain", g)
	}
	if d := reg.Counter("cluster_node_deaths_total", "Nodes declared dead by the failure detector.").Value(); int(d) != nKill {
		log.Fatalf("avis-load: deaths counter %v, killed %d", d, nKill)
	}

	s := summary{
		Nodes: *nodes, Sessions: *sessions, Shards: coord.Shards(), Workers: *workers,
		Killed: nKill, Failovers: int(failovers.Load()),
		VirtualSec: t.Seconds(), WallSec: wall.Seconds(),
		RegistryOps:    ops.Load(),
		RegistryOpsSec: float64(ops.Load()) / wall.Seconds(),
		HeartbeatOps:   hbEntries.Load(),
		DeltaBatches:   deltaBatches.Load(),
		PlaceP50us:     placeHist.Quantile(0.50) * 1e6,
		PlaceP95us:     placeHist.Quantile(0.95) * 1e6,
		PlaceP99us:     placeHist.Quantile(0.99) * 1e6,
	}
	fmt.Printf("avis-load: %d sessions completed on %d nodes (%d killed, %d failovers)\n",
		*sessions, *nodes, nKill, s.Failovers)
	fmt.Printf("avis-load: %.1fs virtual in %.1fs wall; %d registry ops (%.0f ops/sec)\n",
		s.VirtualSec, s.WallSec, s.RegistryOps, s.RegistryOpsSec)
	fmt.Printf("avis-load: placement latency p50 %.1fµs  p95 %.1fµs  p99 %.1fµs\n",
		s.PlaceP50us, s.PlaceP95us, s.PlaceP99us)
	if *out != "" {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("avis-load: %v", err)
		}
		fmt.Printf("avis-load: wrote %s\n", *out)
	}
}

// runParallel splits n items across w workers and waits.
func runParallel(w, n int, fn func(worker, i int)) {
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := k; i < n; i += w {
				fn(k, i)
			}
		}(k)
	}
	wg.Wait()
}
