// Command avis-coord runs the cluster coordinator: the registry avis
// servers join, the heartbeat failure detector that marks them suspect
// and dead, and the admission-controlled placement layer avis clients
// resolve their sessions through.
//
// With -perfstore-dir (or -perfstore-mem) it also hosts the cluster's
// shared live performance store: nodes publish achieved-performance
// samples over the control plane, the coordinator folds them into
// refined per-configuration profiles (over the -perfdb prior, when
// given), and clients fetch the overlays back. The WAL directory
// survives restarts — a recovering coordinator resumes the refined
// model it had learned.
//
// With -metrics-addr it exposes the cluster_* metric families (nodes by
// state, node deaths, failovers, heartbeat gaps, sessions) plus the
// sched_admission_* reservation counters — and the perfstore_* families
// when the store is hosted — at /metrics, and /healthz for liveness
// probes.
//
// SIGINT/SIGTERM shut it down gracefully: the control listener closes,
// open control connections are torn down, and the process exits once the
// handlers drain (bounded by -drain).
//
// Usage:
//
//	avis-coord -addr :7600 -suspect 3s -dead 10s -metrics-addr :9091
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tunable/internal/avis"
	"tunable/internal/cluster"
	"tunable/internal/metrics"
	"tunable/internal/perfdb"
	"tunable/internal/perfstore"
)

func main() {
	addr := flag.String("addr", ":7600", "control-plane listen address")
	suspect := flag.Duration("suspect", cluster.DefaultSuspectAfter, "mark a node suspect after this long without a heartbeat")
	dead := flag.Duration("dead", cluster.DefaultDeadAfter, "declare a node dead after this long without a heartbeat")
	tick := flag.Duration("tick", 500*time.Millisecond, "failure-detector evaluation interval")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain bound")
	shards := flag.Int("shards", 0, "registry/session shard count, rounded up to a power of two (0 = scaled to GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = disabled)")
	perfDir := flag.String("perfstore-dir", "", "host the shared live performance store, persisting refined profiles to a write-ahead log in this directory")
	perfMem := flag.Bool("perfstore-mem", false, "host the shared performance store in memory (no persistence)")
	perfPrior := flag.String("perfdb", "", "profiled prior database (JSON, from avis-profile) the live store refines")
	wireV1 := flag.Bool("wirev1", false, "speak v1 framing and JSON control bodies, as a pre-v2 build would (mixed-version rollouts)")
	flag.Parse()

	coord := cluster.NewCoordinator(cluster.Config{
		SuspectAfter: *suspect,
		DeadAfter:    *dead,
		Shards:       *shards,
		WireV1:       *wireV1,
	})
	var perf *perfstore.PerfStore
	if *perfDir != "" || *perfMem {
		var backend perfstore.Store
		if *perfDir != "" {
			wal, err := perfstore.OpenWAL(*perfDir, perfstore.WALOptions{})
			if err != nil {
				log.Fatalf("avis-coord: perfstore: %v", err)
			}
			backend = wal
			fmt.Printf("avis-coord: perfstore WAL in %s (version %d)\n", *perfDir, wal.Version())
		} else {
			backend = perfstore.NewMemStore()
		}
		var prior *perfdb.DB
		if *perfPrior != "" {
			prior = perfdb.New(avis.Spec())
			f, err := os.Open(*perfPrior)
			if err != nil {
				log.Fatalf("avis-coord: perfdb: %v", err)
			}
			if err := prior.Load(f); err != nil {
				log.Fatalf("avis-coord: perfdb: %v", err)
			}
			f.Close()
			fmt.Printf("avis-coord: prior %s: %d records\n", *perfPrior, prior.Len())
		}
		var err error
		perf, err = perfstore.New(avis.Spec(), prior, backend, perfstore.Options{})
		if err != nil {
			log.Fatalf("avis-coord: perfstore: %v", err)
		}
		coord.SetPerfStore(perf)
	}
	if *metricsAddr != "" {
		start := time.Now()
		reg := metrics.New(metrics.WithNow(func() time.Duration { return time.Since(start) }))
		coord.EnableMetrics(reg)
		if perf != nil {
			perf.EnableMetrics(reg)
		}
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("avis-coord: %v", err)
		}
		fmt.Printf("avis-coord: metrics on http://%s/metrics\n", msrv.Addr)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("avis-coord: %v", err)
	}
	stopTicker := coord.StartTicker(*tick)
	fmt.Printf("avis-coord: coordinating on %s (suspect %v, dead %v, %d shards)\n",
		l.Addr(), *suspect, *dead, coord.Shards())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- coord.Serve(l) }()
	select {
	case s := <-sig:
		fmt.Printf("avis-coord: %v, shutting down\n", s)
		stopTicker()
		coord.Shutdown(*drain)
		if perf != nil {
			if err := perf.Close(); err != nil {
				log.Printf("avis-coord: perfstore close: %v", err)
			}
		}
	case err := <-errc:
		log.Fatalf("avis-coord: %v", err)
	}
}
