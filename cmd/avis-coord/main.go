// Command avis-coord runs the cluster coordinator: the registry avis
// servers join, the heartbeat failure detector that marks them suspect
// and dead, and the admission-controlled placement layer avis clients
// resolve their sessions through.
//
// With -metrics-addr it exposes the cluster_* metric families (nodes by
// state, node deaths, failovers, heartbeat gaps, sessions) plus the
// sched_admission_* reservation counters at /metrics, and /healthz for
// liveness probes.
//
// SIGINT/SIGTERM shut it down gracefully: the control listener closes,
// open control connections are torn down, and the process exits once the
// handlers drain (bounded by -drain).
//
// Usage:
//
//	avis-coord -addr :7600 -suspect 3s -dead 10s -metrics-addr :9091
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tunable/internal/cluster"
	"tunable/internal/metrics"
)

func main() {
	addr := flag.String("addr", ":7600", "control-plane listen address")
	suspect := flag.Duration("suspect", cluster.DefaultSuspectAfter, "mark a node suspect after this long without a heartbeat")
	dead := flag.Duration("dead", cluster.DefaultDeadAfter, "declare a node dead after this long without a heartbeat")
	tick := flag.Duration("tick", 500*time.Millisecond, "failure-detector evaluation interval")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain bound")
	shards := flag.Int("shards", 0, "registry/session shard count, rounded up to a power of two (0 = scaled to GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = disabled)")
	flag.Parse()

	coord := cluster.NewCoordinator(cluster.Config{
		SuspectAfter: *suspect,
		DeadAfter:    *dead,
		Shards:       *shards,
	})
	if *metricsAddr != "" {
		start := time.Now()
		reg := metrics.New(metrics.WithNow(func() time.Duration { return time.Since(start) }))
		coord.EnableMetrics(reg)
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("avis-coord: %v", err)
		}
		fmt.Printf("avis-coord: metrics on http://%s/metrics\n", msrv.Addr)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("avis-coord: %v", err)
	}
	stopTicker := coord.StartTicker(*tick)
	fmt.Printf("avis-coord: coordinating on %s (suspect %v, dead %v, %d shards)\n",
		l.Addr(), *suspect, *dead, coord.Shards())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- coord.Serve(l) }()
	select {
	case s := <-sig:
		fmt.Printf("avis-coord: %v, shutting down\n", s)
		stopTicker()
		coord.Shutdown(*drain)
	case err := <-errc:
		log.Fatalf("avis-coord: %v", err)
	}
}
