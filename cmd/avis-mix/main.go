// Command avis-mix runs a seeded mixed workload — frame-rate-adaptive
// video streams and foveal image sessions — on one shared sandbox pool in
// virtual time, with per-class tuning agents planning through the
// cross-class arbiter and an optional chaos schedule replayed against the
// session links. The per-class QoS report is deterministic: two runs with
// the same seed and shape emit byte-identical JSON, chaos included.
//
// Usage:
//
//	avis-mix -seed 42                          # default mix, report to stdout
//	avis-mix -seed 42 -chaos                   # same mix under injected faults
//	avis-mix -video 12 -foveal 6 -hosts 6      # a bigger mix
//	avis-mix -seed 42 -out mix.json            # write the report to a file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tunable/internal/apps"
)

func main() {
	seed := flag.Uint64("seed", 1, "deterministic seed for arrivals, session streams, and chaos")
	video := flag.Int("video", 8, "video-stream sessions")
	foveal := flag.Int("foveal", 4, "foveal image sessions")
	hosts := flag.Int("hosts", 4, "sandbox hosts in the shared pool")
	linkPool := flag.Float64("link-pool", 1.5e6, "total link bandwidth pool, bytes/s")
	videoWeight := flag.Float64("video-weight", 1, "video class arbitration weight")
	fovealWeight := flag.Float64("foveal-weight", 1, "foveal class arbitration weight")
	arrival := flag.Duration("arrival", 400*time.Millisecond, "mean inter-arrival gap per class")
	retune := flag.Duration("retune", 500*time.Millisecond, "tuning-agent re-plan period")
	chaos := flag.Bool("chaos", false, "replay a seeded chaos schedule against the session links")
	chaosHorizon := flag.Duration("chaos-horizon", 20*time.Second, "window the chaos schedule covers")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	flag.Parse()

	cfg := apps.HarnessConfig{
		Seed:     *seed,
		Hosts:    *hosts,
		LinkPool: *linkPool,
		Classes: []apps.ClassConfig{
			{App: apps.NewVideo(), Sessions: *video, ArrivalEvery: *arrival, Weight: *videoWeight},
			{App: apps.NewFoveal(), Sessions: *foveal, ArrivalEvery: *arrival, Weight: *fovealWeight},
		},
		RetunePeriod: *retune,
	}
	if *chaos {
		sched := apps.MixChaos(*seed, *chaosHorizon)
		cfg.Chaos = &sched
	}

	rep, err := apps.RunMix(cfg)
	if err != nil {
		log.Fatalf("avis-mix: %v", err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("avis-mix: encoding report: %v", err)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatalf("avis-mix: %v", err)
		}
		fmt.Fprintf(os.Stderr, "avis-mix: report written to %s\n", *out)
		return
	}
	os.Stdout.Write(buf)
}
