// Command tunable-spec works with tunability specifications in the
// paper's annotation language (Figure 2): it validates a specification,
// pretty-prints it, enumerates its configuration space, and lists the task
// execution order.
//
// Usage:
//
//	tunable-spec -in app.spec            # validate and summarize
//	tunable-spec -in app.spec -format    # reformat to canonical form
//	tunable-spec -in app.spec -enumerate # list every configuration
//	cat app.spec | tunable-spec          # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"tunable/internal/spec"
)

func main() {
	in := flag.String("in", "-", "specification file (- for stdin)")
	format := flag.Bool("format", false, "print the canonical formatting")
	enumerate := flag.Bool("enumerate", false, "list every configuration (guard-filtered)")
	flag.Parse()

	var src []byte
	var err error
	if *in == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*in)
	}
	if err != nil {
		log.Fatalf("tunable-spec: %v", err)
	}
	app, err := spec.Parse(string(src))
	if err != nil {
		log.Fatalf("tunable-spec: %v", err)
	}
	if *format {
		fmt.Print(app.Format())
		return
	}
	if *enumerate {
		for _, cfg := range app.RunnableConfigs() {
			fmt.Println(cfg.Key())
		}
		return
	}
	fmt.Printf("application %q: valid\n", app.Name)
	fmt.Printf("  parameters:      %d (%v)\n", len(app.Params), app.ParamNames())
	all := app.Enumerate()
	runnable := app.RunnableConfigs()
	fmt.Printf("  configurations:  %d total, %d satisfy all task guards\n", len(all), len(runnable))
	fmt.Printf("  hosts/links:     %d/%d\n", len(app.Env.Hosts), len(app.Env.Links))
	fmt.Printf("  QoS metrics:     %d\n", len(app.Metrics))
	if order, err := app.TaskOrder(); err == nil && len(order) > 0 {
		fmt.Printf("  task order:      %v\n", order)
	}
	fmt.Printf("  transitions:     %d\n", len(app.Transitions))
}
