// Benchmark harness: one benchmark per table/figure of the paper plus the
// ablations called out in DESIGN.md §5 and micro-benchmarks of the hot
// substrates. Figure benchmarks regenerate the corresponding experiment
// end to end on the virtual-time testbed; custom metrics report the
// figure's headline numbers so `go test -bench` output doubles as a
// results table.
package tunable_test

import (
	"testing"
	"time"

	"tunable/internal/avis"
	"tunable/internal/bufpool"
	"tunable/internal/compress"
	"tunable/internal/expt"
	"tunable/internal/imagery"
	"tunable/internal/monitor"
	"tunable/internal/perfdb"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/vtime"
	"tunable/internal/wavelet"
)

// ---- Figure benchmarks ----

// skipInShort keeps the figure regenerations (minutes each, end-to-end
// experiment reruns) out of -short bench smokes; CI measures them only in
// the nightly full pass.
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("figure experiment skipped in -short mode")
	}
}

func BenchmarkFig3a(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		fig, err := expt.Figure3a()
		if err != nil {
			b.Fatal(err)
		}
		s, _ := fig.Rec.Get("achieved-share")
		b.ReportMetric(s.Mean(), "mean-share")
	}
}

func BenchmarkFig3b(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := expt.Figure3b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4a(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := expt.Figure4a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4b(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := expt.Figure4b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := expt.Figure5a(); err != nil {
			b.Fatal(err)
		}
		if _, err := expt.Figure5b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6a(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := expt.Figure6a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := expt.Figure6b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		e, err := expt.Experiment1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(e.Adaptive.Total.Seconds(), "adaptive-s")
		b.ReportMetric(e.StaticA.Total.Seconds(), "lzw-only-s")
		b.ReportMetric(e.StaticB.Total.Seconds(), "bzw-only-s")
	}
}

func BenchmarkFig7b(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		e, err := expt.Experiment2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(e.Adaptive.Switches), "switches")
	}
}

func BenchmarkFig7c(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		e, err := expt.Experiment3()
		if err != nil {
			b.Fatal(err)
		}
		last := e.Adaptive.Stats[len(e.Adaptive.Stats)-1]
		b.ReportMetric(last.AvgResponse.Seconds(), "final-response-s")
	}
}

func BenchmarkFig7d(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		e, err := expt.Experiment3()
		if err != nil {
			b.Fatal(err)
		}
		fig := expt.Figure7d(e)
		if fig == nil {
			b.Fatal("no figure")
		}
		b.ReportMetric(e.Adaptive.Total.Seconds(), "adaptive-s")
	}
}

// ---- Ablation benchmarks (DESIGN.md §5) ----

// analytic database for the scheduler-side ablations.
func ablationDB(b *testing.B, configs int) (*perfdb.DB, *spec.App) {
	b.Helper()
	app := &spec.App{
		Name: "ablate",
		Params: []spec.Param{{
			Name: "n", Kind: spec.IntValue,
			Domain: func() []spec.Value {
				out := make([]spec.Value, configs)
				for i := range out {
					out[i] = spec.Int(i + 1)
				}
				return out
			}(),
		}},
		Metrics: []spec.MetricDecl{
			{Name: "t", Unit: "s", Better: spec.LowerIsBetter},
			{Name: "q", Better: spec.HigherIsBetter},
		},
	}
	db := perfdb.New(app)
	for n := 1; n <= configs; n++ {
		// The upper half of the configuration space delivers the same
		// quality as the lower half at a higher cost, so it is dominated —
		// the population Prune() is meant to eliminate (footnote 1).
		q := float64((n-1)%((configs+1)/2) + 1)
		for _, cpu := range resource.Linspace(0.1, 1.0, 10) {
			err := db.Add(spec.Config{"n": spec.Int(n)},
				resource.Vector{resource.CPU: cpu},
				spec.Metrics{"t": float64(n) / cpu, "q": q})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	return db, app
}

// BenchmarkAblationInterp compares interpolated prediction against the
// paper's implemented discrete best-match lookup (Section 7.1): decision
// time plus how often the two modes disagree on the chosen configuration.
func BenchmarkAblationInterp(b *testing.B) {
	db, app := ablationDB(b, 8)
	prefs := []scheduler.Preference{{
		Name:        "deadline",
		Constraints: []scheduler.Constraint{scheduler.AtMost("t", 4)},
		Objective:   "q",
	}}
	queries := resource.Linspace(0.13, 0.97, 29)
	for _, mode := range []struct {
		name string
		m    perfdb.PredictMode
	}{{"interpolate", perfdb.Interpolate}, {"nearest", perfdb.NearestOnly}} {
		b.Run(mode.name, func(b *testing.B) {
			db.SetMode(mode.m)
			s, err := scheduler.New(app, db, prefs)
			if err != nil {
				b.Fatal(err)
			}
			violations := 0
			decisions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, cpu := range queries {
					d, err := s.Select(resource.Vector{resource.CPU: cpu})
					if err != nil {
						continue
					}
					decisions++
					// Ground truth: does the chosen n actually meet the
					// deadline at this exact cpu?
					if float64(d.Config["n"].I)/cpu > 4 {
						violations++
					}
				}
			}
			if decisions > 0 {
				b.ReportMetric(100*float64(violations)/float64(decisions), "bad-decisions-%")
			}
		})
	}
}

// BenchmarkAblationMonitor compares the estimating monitor (inferring
// availability from progress shortfall) against an oracle that reads the
// ground truth directly: time per detection plus the detection latency.
func BenchmarkAblationMonitor(b *testing.B) {
	run := func(b *testing.B, oracle bool) {
		var totalLatency time.Duration
		for i := 0; i < b.N; i++ {
			sim := vtime.NewSim()
			host := sandbox.NewHost(sim, "h", 100e6, sandbox.WithOSLoad(0))
			sb, err := host.NewSandbox("app", 0.9, 0)
			if err != nil {
				b.Fatal(err)
			}
			agent := monitor.New(sim, "mon", monitor.WithHysteresis(3),
				monitor.WithWindow(100*time.Millisecond))
			share := 0.9
			if oracle {
				agent.AddProbe(&monitor.OracleProbe{Comp: "client", K: resource.CPU,
					Fn: func(time.Duration) (float64, bool) { return share, true }})
			} else {
				agent.AddProbe(monitor.NewCPUProbe("client", sb))
			}
			agent.SetValidRange("client", resource.CPU, 0.6, 1.0)
			agent.Start()
			sim.Spawn("app", func(p *vtime.Proc) { sb.Compute(p, 1e9) })
			const dropAt = 2 * time.Second
			sim.After(dropAt, func() {
				share = 0.4
				_ = sb.SetCPUShare(0.4)
			})
			var detected time.Duration
			sim.Spawn("listener", func(p *vtime.Proc) {
				trig, ok, ready := agent.Triggers().RecvTimeout(p, 20*time.Second)
				if ok && ready {
					detected = trig.At
				}
				agent.Stop()
				sim.Stop()
			})
			if err := sim.Run(); err != nil && err != vtime.ErrStopped {
				b.Fatal(err)
			}
			if detected == 0 {
				b.Fatal("drop not detected")
			}
			totalLatency += detected - dropAt
		}
		b.ReportMetric(float64(totalLatency.Milliseconds())/float64(b.N), "detect-ms")
	}
	b.Run("estimating", func(b *testing.B) { run(b, false) })
	b.Run("oracle", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationHysteresis measures how the trigger hysteresis damps
// reconfiguration thrashing under a noisy resource signal (Section 7.5).
func BenchmarkAblationHysteresis(b *testing.B) {
	for _, h := range []int{1, 3, 5} {
		b.Run(map[int]string{1: "h1", 3: "h3", 5: "h5"}[h], func(b *testing.B) {
			var triggers int64
			for i := 0; i < b.N; i++ {
				sim := vtime.NewSim()
				agent := monitor.New(sim, "mon",
					monitor.WithHysteresis(h),
					monitor.WithWindow(10*time.Millisecond))
				tick := 0
				agent.AddProbe(&monitor.OracleProbe{Comp: "c", K: resource.CPU,
					Fn: func(time.Duration) (float64, bool) {
						tick++
						if tick%9 == 0 { // periodic single-sample dips
							return 0.02, true
						}
						return 0.9, true
					}})
				agent.SetValidRange("c", resource.CPU, 0.5, 1.0)
				agent.Start()
				sim.Spawn("driver", func(p *vtime.Proc) {
					p.Sleep(5 * time.Second)
					agent.Stop()
				})
				if err := sim.Run(); err != nil {
					b.Fatal(err)
				}
				for {
					if _, _, ready := agent.Triggers().TryRecv(); !ready {
						break
					}
					triggers++
				}
			}
			b.ReportMetric(float64(triggers)/float64(b.N), "triggers")
		})
	}
}

// BenchmarkAblationPruning measures scheduling cost and candidate-set size
// with and without dominated-configuration pruning (footnote 1).
func BenchmarkAblationPruning(b *testing.B) {
	prefs := []scheduler.Preference{{Name: "fast", Objective: "t"}}
	for _, prune := range []bool{false, true} {
		name := "unpruned"
		if prune {
			name = "pruned"
		}
		b.Run(name, func(b *testing.B) {
			db, app := ablationDB(b, 32)
			if prune {
				db.Prune()
			}
			s, err := scheduler.New(app, db, prefs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Select(resource.Vector{resource.CPU: 0.55}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(s.Candidates())), "candidates")
		})
	}
}

// ---- Micro-benchmarks of the substrates ----

func benchChunk(b *testing.B) []byte {
	b.Helper()
	pyr, err := avis.SharedStore().Pyramid(512, 4, 99)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := pyr.ExtractRegion(4, 256, 256, 256, 0)
	if err != nil {
		b.Fatal(err)
	}
	return ch.Encode()
}

func BenchmarkLZWEncode(b *testing.B) {
	data := benchChunk(b)
	codec, _ := compress.Lookup("lzw")
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bufpool.Put(codec.Encode(data))
	}
}

func BenchmarkBZWEncode(b *testing.B) {
	data := benchChunk(b)
	codec, _ := compress.Lookup("bzw")
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bufpool.Put(codec.Encode(data))
	}
}

func BenchmarkLZWDecode(b *testing.B) {
	data := benchChunk(b)
	codec, _ := compress.Lookup("lzw")
	enc := codec.Encode(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := codec.Decode(enc)
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(out)
	}
}

func BenchmarkBZWDecode(b *testing.B) {
	data := benchChunk(b)
	codec, _ := compress.Lookup("bzw")
	enc := codec.Encode(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := codec.Decode(enc)
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(out)
	}
}

func BenchmarkHaarDecompose(b *testing.B) {
	im := imagery.Generate(512, 7)
	b.SetBytes(int64(len(im.Pix) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.Decompose(im, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkExtract(b *testing.B) {
	pyr, err := avis.SharedStore().Pyramid(512, 4, 98)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := pyr.ExtractRegion(4, 256, 256, 256, 0)
		if err != nil {
			b.Fatal(err)
		}
		ch.Release()
	}
}

func BenchmarkVtimeChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := vtime.NewSim()
		ch := vtime.NewChan[int](sim, 0)
		const msgs = 1000
		sim.Spawn("sender", func(p *vtime.Proc) {
			for k := 0; k < msgs; k++ {
				ch.Send(p, k)
			}
		})
		sim.Spawn("receiver", func(p *vtime.Proc) {
			for k := 0; k < msgs; k++ {
				ch.Recv(p)
			}
		})
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSandboxCompute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := vtime.NewSim()
		host := sandbox.NewHost(sim, "h", 450e6)
		sb, err := host.NewSandbox("app", 0.5, 0)
		if err != nil {
			b.Fatal(err)
		}
		sim.Spawn("app", func(p *vtime.Proc) { sb.Compute(p, 450e6) })
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImageFetchSimulated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := avis.NewWorld(avis.WorldConfig{
			Side:   512,
			Seeds:  []int64{99},
			Params: avis.Params{DR: 128, Codec: "lzw", Level: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.RunSequence(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSmoothing compares the window-mean estimator against
// EWMA smoothing: detection latency for a genuine step change.
func BenchmarkAblationSmoothing(b *testing.B) {
	run := func(b *testing.B, mode monitor.Smoothing) {
		var totalLatency time.Duration
		for i := 0; i < b.N; i++ {
			sim := vtime.NewSim()
			agent := monitor.New(sim, "mon",
				monitor.WithHysteresis(3),
				monitor.WithWindow(200*time.Millisecond),
				monitor.WithSmoothing(mode, 0.1))
			share := 0.9
			agent.AddProbe(&monitor.OracleProbe{Comp: "c", K: resource.CPU,
				Fn: func(time.Duration) (float64, bool) { return share, true }})
			agent.SetValidRange("c", resource.CPU, 0.6, 1.0)
			agent.Start()
			const dropAt = time.Second
			sim.After(dropAt, func() { share = 0.4 })
			var detected time.Duration
			sim.Spawn("listener", func(p *vtime.Proc) {
				trig, ok, ready := agent.Triggers().RecvTimeout(p, 20*time.Second)
				if ok && ready {
					detected = trig.At
				}
				agent.Stop()
				sim.Stop()
			})
			if err := sim.Run(); err != nil && err != vtime.ErrStopped {
				b.Fatal(err)
			}
			if detected == 0 {
				b.Fatal("step not detected")
			}
			totalLatency += detected - dropAt
		}
		b.ReportMetric(float64(totalLatency.Milliseconds())/float64(b.N), "detect-ms")
	}
	b.Run("window", func(b *testing.B) { run(b, monitor.WindowMean) })
	b.Run("ewma", func(b *testing.B) { run(b, monitor.EWMA) })
}
