package cluster

import (
	"net"
	"strings"
	"testing"
	"time"
)

// fakeClock drives a Coordinator's injected Now from test code.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) fn() func() time.Duration { return func() time.Duration { return f.now } }

func testNode(id string, cpu float64) NodeInfo {
	return NodeInfo{
		ID: id, Addr: id + ":7465",
		CPU: cpu, MemBytes: 256 << 20,
		Side: 256, Levels: 4, Seeds: []int64{1, 2},
	}
}

func newTestCoord(clk *fakeClock) *Coordinator {
	return NewCoordinator(Config{
		SuspectAfter: 100 * time.Millisecond,
		DeadAfter:    300 * time.Millisecond,
		Now:          clk.fn(),
	})
}

func TestCoordinatorPlacementSpread(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoord(clk)
	for _, id := range []string{"a", "b"} {
		if err := c.Register(testNode(id, 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	// Equal reservations: ties break by ID, then the loaded node loses.
	g1, err := c.Resolve(ResolveRequest{SID: "s1", CPU: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if g1.NodeID != "a" || g1.Failover {
		t.Fatalf("grant %+v", g1)
	}
	g2, err := c.Resolve(ResolveRequest{SID: "s2", CPU: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeID != "b" {
		t.Fatalf("second session not spread: %+v", g2)
	}
	ns := c.Nodes()
	if len(ns) != 2 || ns[0].Sessions != 1 || ns[1].Sessions != 1 {
		t.Fatalf("nodes %+v", ns)
	}
	if ns[0].ReservedCPU < 0.29 || ns[0].ReservedCPU > 0.31 {
		t.Fatalf("reserved %v", ns[0].ReservedCPU)
	}
	// Ending a session frees its share.
	c.EndSession("s1")
	if r := c.Nodes()[0].ReservedCPU; r > 1e-9 {
		t.Fatalf("reservation not released: %v", r)
	}
}

func TestCoordinatorAdmissionGate(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoord(clk)
	// A node declaring 0.5 CPU admits one 0.4-share session, not two.
	if err := c.Register(testNode("small", 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(ResolveRequest{SID: "s1", CPU: 0.4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(ResolveRequest{SID: "s2", CPU: 0.4}); err == nil {
		t.Fatal("oversubscription admitted")
	} else if !strings.Contains(err.Error(), "admit") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A roomier node joins: the refused demand now lands there.
	if err := c.Register(testNode("big", 1.0)); err != nil {
		t.Fatal(err)
	}
	g, err := c.Resolve(ResolveRequest{SID: "s2", CPU: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeID != "big" {
		t.Fatalf("grant %+v", g)
	}
	// s2 was never successfully placed before, so this is not a failover.
	if g.Failover {
		t.Fatal("unplaced retry counted as failover")
	}
}

func TestCoordinatorSigPinning(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoord(clk)
	same := testNode("same", 1.0)
	other := testNode("other", 1.0)
	other.Seeds = []int64{9, 9} // different image store
	if err := c.Register(same); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(other); err != nil {
		t.Fatal(err)
	}
	if same.StoreSig() == other.StoreSig() {
		t.Fatal("store signatures collide")
	}
	g, err := c.Resolve(ResolveRequest{SID: "s1", Sig: same.StoreSig()})
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeID != "same" || g.Sig != same.StoreSig() {
		t.Fatalf("grant %+v", g)
	}
	// Exclude the only matching node: nothing compatible remains.
	if _, err := c.Resolve(ResolveRequest{SID: "s1", Sig: same.StoreSig(), Exclude: []string{"same"}}); err == nil {
		t.Fatal("resolved onto an incompatible store")
	}
}

func TestCoordinatorDeathFailover(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoord(clk)
	if err := c.Register(testNode("a", 1.0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(testNode("b", 1.0)); err != nil {
		t.Fatal(err)
	}
	g, err := c.Resolve(ResolveRequest{SID: "s1", CPU: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	victim, survivor := g.NodeID, "b"
	if victim == "b" {
		survivor = "a"
	}

	// The survivor heartbeats; the victim goes silent past the deadline.
	clk.now = 200 * time.Millisecond
	if !c.Heartbeat(survivor, Load{ActiveSessions: 1}) {
		t.Fatal("survivor heartbeat refused")
	}
	c.Tick() // victim → suspect
	clk.now = 400 * time.Millisecond
	if !c.Heartbeat(survivor, Load{}) {
		t.Fatal("survivor heartbeat refused")
	}
	c.Tick() // victim → dead

	st := map[string]string{}
	for _, n := range c.Nodes() {
		st[n.ID] = n.State
	}
	if st[victim] != "dead" || st[survivor] != "alive" {
		t.Fatalf("states %v", st)
	}
	// The dead node refuses heartbeats (agent must re-register).
	if c.Heartbeat(victim, Load{}) {
		t.Fatal("dead node accepted heartbeat")
	}

	// The session's reservation was released with the death; re-resolving
	// lands on the survivor and is reported as a failover.
	g2, err := c.Resolve(ResolveRequest{SID: "s1", Exclude: []string{victim}, CPU: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeID != survivor || !g2.Failover {
		t.Fatalf("failover grant %+v", g2)
	}

	// Rejoin: a fresh registration resurrects the dead node.
	if err := c.Register(testNode(victim, 1.0)); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if n.ID == victim {
			if n.State != "alive" || n.Incarnation != 2 {
				t.Fatalf("rejoined node %+v", n)
			}
		}
	}
}

func TestCoordinatorRegisterValidation(t *testing.T) {
	c := newTestCoord(&fakeClock{})
	if err := c.Register(NodeInfo{Addr: "x:1", CPU: 1}); err == nil {
		t.Fatal("registered without ID")
	}
	if err := c.Register(NodeInfo{ID: "x", Addr: "x:1", CPU: 1.5}); err == nil {
		t.Fatal("registered with CPU > 1")
	}
	if c.Heartbeat("ghost", Load{}) {
		t.Fatal("unknown node accepted heartbeat")
	}
	if _, err := c.Resolve(ResolveRequest{}); err == nil {
		t.Fatal("resolved without session id")
	}
}

// TestClusterTCP exercises the whole control plane over loopback TCP:
// agent registration and heartbeats, resolver placement, clean
// deregistration on agent close.
func TestClusterTCP(t *testing.T) {
	c := NewCoordinator(Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(l)
	defer c.Shutdown(time.Second)

	node := testNode("n1", 1.0)
	node.Addr = "127.0.0.1:7465"
	ag := NewAgent(l.Addr().String(), node, 10*time.Millisecond, func() Load {
		return Load{ActiveSessions: 2}
	})
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}

	r := NewResolver(l.Addr().String(), time.Second)
	defer r.Close()
	ns, err := r.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].ID != "n1" || ns[0].State != "alive" {
		t.Fatalf("nodes %+v", ns)
	}

	g, err := r.Resolve(ResolveRequest{SID: "sess-tcp", CPU: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeID != "n1" || g.Addr != node.Addr || g.Sig != node.StoreSig() {
		t.Fatalf("grant %+v", g)
	}
	// Heartbeats keep flowing while the session runs; wait for the load
	// report to arrive.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ns, err = r.Nodes()
		if err != nil {
			t.Fatal(err)
		}
		if ns[0].Load.ActiveSessions == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("load never reported: %+v", ns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.EndSession("sess-tcp"); err != nil {
		t.Fatal(err)
	}

	// Graceful shutdown deregisters the node.
	ag.Close(true)
	ns, err = r.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Fatalf("node still registered after deregister: %+v", ns)
	}
}
