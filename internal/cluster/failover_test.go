package cluster

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tunable/internal/avis"
	"tunable/internal/metrics"
	"tunable/internal/wavelet"
)

// clusterNode is one avis server joined to a test cluster.
type clusterNode struct {
	id    string
	srv   *avis.RealServer
	ln    net.Listener
	agent *Agent
}

// kill simulates a node crash: the data plane drops every connection and
// the heartbeats stop, but nothing deregisters — the coordinator must
// notice the silence on its own.
func (n *clusterNode) kill() {
	n.agent.Close(false)
	n.srv.Shutdown(0)
}

// startClusterNode boots an avis server on loopback and joins it to the
// coordinator at coordAddr with fast heartbeats.
func startClusterNode(t *testing.T, coordAddr, id string) *clusterNode {
	t.Helper()
	srv, err := avis.NewRealServer(256, 4, []int64{1, 2}, avis.SharedStore())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	agent := NewAgent(coordAddr, NodeInfo{
		ID: id, Addr: ln.Addr().String(),
		CPU: 1.0, MemBytes: 256 << 20,
		Side: 256, Levels: 4, Seeds: []int64{1, 2},
	}, 15*time.Millisecond, func() Load {
		return Load{ActiveSessions: srv.ActiveSessions()}
	})
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	return &clusterNode{id: id, srv: srv, ln: ln, agent: agent}
}

// TestFailoverEndToEnd is the acceptance test for the cluster control
// plane: a coordinator and two servers, the session's server killed
// mid-stream, the client's progressive transmission finishing on the
// survivor, and the coordinator's /metrics reporting the node death and
// the failover.
func TestFailoverEndToEnd(t *testing.T) {
	coord := NewCoordinator(Config{
		SuspectAfter: 60 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
	})
	reg := metrics.New()
	coord.EnableMetrics(reg)
	msrv, err := metrics.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer msrv.Close()

	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(cl)
	defer coord.Shutdown(time.Second)
	stopTicker := coord.StartTicker(20 * time.Millisecond)
	defer stopTicker()

	nodes := map[string]*clusterNode{}
	for _, id := range []string{"node-a", "node-b"} {
		n := startClusterNode(t, cl.Addr().String(), id)
		nodes[id] = n
		defer n.srv.Shutdown(0)
		defer n.agent.Close(false)
	}

	r := NewResolver(cl.Addr().String(), time.Second)
	defer r.Close()

	// Kill the serving node just before round 3 of 8 — mid-stream, with
	// increments already delivered and more outstanding.
	var fc *FailoverClient
	var killOnce sync.Once
	hook := func(img, round int) {
		if round == 3 {
			killOnce.Do(func() { nodes[fc.Node()].kill() })
		}
	}
	fc, err = DialFailover(r, avis.Params{DR: 32, Codec: "lzw", Level: 4},
		WithIOTimeout(2*time.Second), WithRoundHook(hook),
		WithSessionDemand(0.2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	fc.EnableMetrics(reg)
	victim := fc.Node()

	canvas, err := wavelet.NewCanvas(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := fc.FetchImage(0, canvas)
	if err != nil {
		t.Fatalf("fetch across failover: %v", err)
	}
	if st.Rounds != 8 {
		t.Fatalf("rounds %d, want 8", st.Rounds)
	}
	if fc.Failovers() != 1 {
		t.Fatalf("failovers %d, want 1", fc.Failovers())
	}
	if fc.Node() == victim {
		t.Fatalf("still on the dead node %s", victim)
	}
	// The replayed stream must still assemble a coherent pyramid.
	if _, err := canvas.Reconstruct(4); err != nil {
		t.Fatalf("reconstruction after failover: %v", err)
	}

	// A second image fetch on the surviving connection needs no failover.
	if _, err := fc.FetchImage(1, nil); err != nil {
		t.Fatal(err)
	}
	if fc.Failovers() != 1 {
		t.Fatalf("failovers %d after healthy fetch", fc.Failovers())
	}

	// The coordinator's exported telemetry must report the death (once the
	// detector's deadline passes) and the failover.
	url := fmt.Sprintf("http://%s/metrics", msrv.Addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := httpGet(t, url)
		if strings.Contains(body, "cluster_node_deaths_total 1") &&
			strings.Contains(body, "cluster_failovers_total 1") &&
			strings.Contains(body, `cluster_nodes{state="dead"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never reported the failure:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The client's own counter agrees.
	if !strings.Contains(httpGet(t, url), "avis_failovers_total 1") {
		t.Fatal("client failover counter missing")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFailoverExhaustsCluster verifies the bounded-retry path: with every
// node dead, the fetch fails with a placement error instead of hanging.
func TestFailoverExhaustsCluster(t *testing.T) {
	coord := NewCoordinator(Config{
		SuspectAfter: 60 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
	})
	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(cl)
	defer coord.Shutdown(time.Second)

	n := startClusterNode(t, cl.Addr().String(), "only")
	defer n.srv.Shutdown(0)
	defer n.agent.Close(false)

	r := NewResolver(cl.Addr().String(), time.Second)
	defer r.Close()

	var fc *FailoverClient
	var killOnce sync.Once
	fc, err = DialFailover(r, avis.Params{DR: 32, Codec: "lzw", Level: 4},
		WithIOTimeout(time.Second),
		WithRoundHook(func(img, round int) {
			if round == 2 {
				killOnce.Do(func() { n.kill() })
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	if _, err := fc.FetchImage(0, nil); err == nil {
		t.Fatal("fetch succeeded with the whole cluster dead")
	} else if !strings.Contains(err.Error(), "failover") {
		t.Fatalf("unexpected error: %v", err)
	}
}
