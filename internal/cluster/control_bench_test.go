package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tunable/internal/bufpool"
	"tunable/internal/metrics"
)

// Control-plane benchmarks behind BENCH_control.json. The pair to compare
// is HeartbeatJSON (the pre-shard design: one JSON frame per node per
// interval, dispatched into a single-shard registry — the single-mutex
// baseline) against HeartbeatDelta (batched binary deltas applied to the
// sharded registry): ns/op is per logical heartbeat in both, so
// baseline/delta is the registry ops/sec speedup. Resolve measures the
// placement decision (grant + teardown) at 10k registered nodes.

const benchNodes = 10000

func benchCoordinator(b *testing.B, shards int) (*Coordinator, []string) {
	b.Helper()
	var vnow atomic.Int64
	now := func() time.Duration { return time.Duration(vnow.Load()) }
	c := NewCoordinator(Config{
		SuspectAfter: time.Second,
		DeadAfter:    3 * time.Second,
		Now:          now,
		Shards:       shards,
	})
	c.EnableMetrics(metrics.New(metrics.WithNow(now)))
	ids := make([]string, benchNodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%05d", i)
		info := NodeInfo{
			ID: ids[i], Addr: "10.0.0.1:1", CPU: 1,
			Side: 8, Levels: 1, Seeds: []int64{42},
		}
		if err := c.Register(info); err != nil {
			b.Fatal(err)
		}
	}
	return c, ids
}

// BenchmarkControlHeartbeatJSON is the single-mutex baseline: per-node
// JSON heartbeat frames dispatched one at a time into a 1-shard registry,
// ack encoded per frame — what every heartbeat cost before this change.
func BenchmarkControlHeartbeatJSON(b *testing.B) {
	c, ids := benchCoordinator(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := encodeCtrl(ctagHeartbeat, heartbeatMsg{ID: ids[i%benchNodes], Load: Load{ActiveSessions: i & 7}})
		ack := c.dispatch(frame)
		if !ack.OK || !ack.Known {
			b.Fatalf("heartbeat refused: %+v", ack)
		}
		_ = encodeCtrl(ctagAck, ack)
	}
}

// BenchmarkControlHeartbeatDelta is the new wire path: binary delta
// batches of 128 entries against the sharded registry; ns/op is still per
// logical heartbeat (one entry), with the frame encode, dispatch, and ack
// encode amortized over the batch exactly as on the wire.
func BenchmarkControlHeartbeatDelta(b *testing.B) {
	const batch = 128
	c, ids := benchCoordinator(b, 16)
	entries := make([]DeltaEntry, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries = append(entries, DeltaEntry{ID: ids[i%benchNodes], Sessions: int32(i & 1)})
		if len(entries) == batch || i == b.N-1 {
			frame, err := EncodeDeltaBatch(entries)
			if err != nil {
				b.Fatal(err)
			}
			ack := c.dispatch(frame)
			bufpool.Put(frame)
			if !ack.OK || len(ack.Unknown) != 0 {
				b.Fatalf("delta refused: %+v", ack)
			}
			_ = encodeCtrl(ctagAck, ack)
			entries = entries[:0]
		}
	}
}

// BenchmarkControlResolve measures one placement decision round trip
// (resolve + end-session) with 10k registered nodes in 16 shards.
func BenchmarkControlResolve(b *testing.B) {
	c, _ := benchCoordinator(b, 16)
	sids := make([]string, 512)
	for i := range sids {
		sids[i] = fmt.Sprintf("sess-%04d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sid := sids[i%len(sids)]
		if _, err := c.Resolve(ResolveRequest{SID: sid, CPU: 0.001}); err != nil {
			b.Fatal(err)
		}
		c.EndSession(sid)
	}
}
