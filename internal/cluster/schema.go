package cluster

import (
	"sort"

	"tunable/internal/perfstore"
	"tunable/internal/wire"
)

// Schema-coded control messages: the wire.CapSchemaCtrl encoding of every
// control-plane body. Each message keeps its ctag* tag byte; only the
// body changes from JSON to the runtime-interpreted binary schemas below.
// Field tags are append-only — a new field gets the next tag and old
// decoders skip it by wire type — which is the forward-compatibility
// contract that lets mixed-version control planes talk during rolling
// upgrades (the same property JSON gave us, at a fraction of the cost:
// see BENCH_wire.json).
//
// Maps (sample resources/metrics) are encoded as repeated {k, v}
// sub-messages with keys sorted, so equal messages encode to equal bytes.

var (
	schKV = wire.NewSchema("kv",
		wire.Field{Name: "k", Tag: 1, Kind: wire.String, Required: true},
		wire.Field{Name: "v", Tag: 2, Kind: wire.F64, Required: true},
	)

	schNodeInfo = wire.NewSchema("node_info",
		wire.Field{Name: "id", Tag: 1, Kind: wire.String, Required: true},
		wire.Field{Name: "addr", Tag: 2, Kind: wire.String, Required: true},
		wire.Field{Name: "role", Tag: 3, Kind: wire.String},
		wire.Field{Name: "cpu", Tag: 4, Kind: wire.F64},
		wire.Field{Name: "mem", Tag: 5, Kind: wire.Sint},
		wire.Field{Name: "side", Tag: 6, Kind: wire.Uint},
		wire.Field{Name: "levels", Tag: 7, Kind: wire.Uint},
		wire.Field{Name: "seed", Tag: 8, Kind: wire.Sint}, // repeated
		wire.Field{Name: "sig", Tag: 9, Kind: wire.String},
	)

	schHeartbeat = wire.NewSchema("heartbeat",
		wire.Field{Name: "id", Tag: 1, Kind: wire.String, Required: true},
		wire.Field{Name: "active", Tag: 2, Kind: wire.Uint},
	)

	schNodeID = wire.NewSchema("node_id",
		wire.Field{Name: "id", Tag: 1, Kind: wire.String, Required: true},
	)

	schSession = wire.NewSchema("session",
		wire.Field{Name: "sid", Tag: 1, Kind: wire.String, Required: true},
	)

	schResolve = wire.NewSchema("resolve",
		wire.Field{Name: "sid", Tag: 1, Kind: wire.String, Required: true},
		wire.Field{Name: "exclude", Tag: 2, Kind: wire.String}, // repeated
		wire.Field{Name: "cpu", Tag: 3, Kind: wire.F64},
		wire.Field{Name: "mem", Tag: 4, Kind: wire.Sint},
		wire.Field{Name: "sig", Tag: 5, Kind: wire.String},
		wire.Field{Name: "coarse", Tag: 6, Kind: wire.Bool},
	)

	schGrant = wire.NewSchema("grant",
		wire.Field{Name: "node", Tag: 1, Kind: wire.String},
		wire.Field{Name: "addr", Tag: 2, Kind: wire.String},
		wire.Field{Name: "sig", Tag: 3, Kind: wire.String},
		wire.Field{Name: "failover", Tag: 4, Kind: wire.Bool},
	)

	schNodeStatus = wire.NewSchema("node_status",
		wire.Field{Name: "id", Tag: 1, Kind: wire.String, Required: true},
		wire.Field{Name: "addr", Tag: 2, Kind: wire.String},
		wire.Field{Name: "role", Tag: 3, Kind: wire.String},
		wire.Field{Name: "state", Tag: 4, Kind: wire.String},
		wire.Field{Name: "sig", Tag: 5, Kind: wire.String},
		wire.Field{Name: "active", Tag: 6, Kind: wire.Uint},
		wire.Field{Name: "cpu", Tag: 7, Kind: wire.F64},
		wire.Field{Name: "reserved_cpu", Tag: 8, Kind: wire.F64},
		wire.Field{Name: "sessions", Tag: 9, Kind: wire.Uint},
		wire.Field{Name: "incarnation", Tag: 10, Kind: wire.Uint},
	)

	schSample = wire.NewSchema("sample",
		wire.Field{Name: "config", Tag: 1, Kind: wire.String, Required: true},
		wire.Field{Name: "resource", Tag: 2, Kind: wire.Msg}, // repeated kv
		wire.Field{Name: "metric", Tag: 3, Kind: wire.Msg},   // repeated kv
		wire.Field{Name: "at", Tag: 4, Kind: wire.Sint},
		wire.Field{Name: "source", Tag: 5, Kind: wire.String},
	)

	schPerfIngest = wire.NewSchema("perf_ingest",
		wire.Field{Name: "sample", Tag: 1, Kind: wire.Msg}, // repeated
	)

	schPerfProfile = wire.NewSchema("perf_profile",
		wire.Field{Name: "config", Tag: 1, Kind: wire.String},
	)

	schRecord = wire.NewSchema("profile_record",
		wire.Field{Name: "resource", Tag: 1, Kind: wire.Msg}, // repeated kv
		wire.Field{Name: "metric", Tag: 2, Kind: wire.Msg},   // repeated kv
		wire.Field{Name: "weight", Tag: 3, Kind: wire.F64},
		wire.Field{Name: "samples", Tag: 4, Kind: wire.Sint},
	)

	schProfile = wire.NewSchema("profile",
		wire.Field{Name: "config", Tag: 1, Kind: wire.String},
		wire.Field{Name: "version", Tag: 2, Kind: wire.Uint},
		wire.Field{Name: "record", Tag: 3, Kind: wire.Msg}, // repeated
	)

	schAck = wire.NewSchema("ack",
		wire.Field{Name: "ok", Tag: 1, Kind: wire.Bool},
		wire.Field{Name: "err", Tag: 2, Kind: wire.String},
		wire.Field{Name: "known", Tag: 3, Kind: wire.Bool},
		wire.Field{Name: "grant", Tag: 4, Kind: wire.Msg},
		wire.Field{Name: "node", Tag: 5, Kind: wire.Msg},       // repeated NodeStatus
		wire.Field{Name: "unknown", Tag: 6, Kind: wire.String}, // repeated
		wire.Field{Name: "accepted", Tag: 7, Kind: wire.Uint},
		wire.Field{Name: "profile", Tag: 8, Kind: wire.Msg},
	)
)

// encMap appends a string→float64 map as repeated kv sub-messages under
// field, keys sorted for a deterministic encoding.
func encMap(e *wire.Encoder, field string, m map[string]float64) error {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		k := k
		if err := e.Msg(field, schKV, func(e *wire.Encoder) {
			e.Str("k", k)
			e.F64("v", m[k])
		}); err != nil {
			return err
		}
	}
	return nil
}

// decKV decodes one kv sub-message.
func decKV(body []byte) (string, float64, error) {
	var d wire.Decoder
	d.Init(schKV, body)
	var k string
	var v float64
	for d.Next() {
		switch d.Field().Name {
		case "k":
			k = d.Str()
		case "v":
			v = d.F64()
		}
	}
	return k, v, d.Err()
}

func decMapField(d *wire.Decoder, m map[string]float64) (map[string]float64, error) {
	k, v, err := decKV(d.MsgBytes())
	if err != nil {
		return m, err
	}
	if m == nil {
		m = make(map[string]float64, 4)
	}
	m[k] = v
	return m, nil
}

// Every encodeXV2 appends tag + schema body to buf (usually a pooled
// buffer sliced to [:0]) and returns it; every decodeXV2 parses a body
// (the frame after its tag byte).

func encodeRegisterV2(buf []byte, info NodeInfo) ([]byte, error) {
	var e wire.Encoder
	e.Init(schNodeInfo, append(buf, ctagRegister))
	e.Str("id", info.ID)
	e.Str("addr", info.Addr)
	if info.Role != "" {
		e.Str("role", info.Role)
	}
	e.F64("cpu", info.CPU)
	e.Sint("mem", info.MemBytes)
	e.Uint("side", uint64(info.Side))
	e.Uint("levels", uint64(info.Levels))
	for _, s := range info.Seeds {
		e.Sint("seed", s)
	}
	if info.Sig != "" {
		e.Str("sig", info.Sig)
	}
	return e.Finish()
}

func decodeRegisterV2(body []byte) (NodeInfo, error) {
	var d wire.Decoder
	d.Init(schNodeInfo, body)
	var info NodeInfo
	for d.Next() {
		switch d.Field().Name {
		case "id":
			info.ID = d.Str()
		case "addr":
			info.Addr = d.Str()
		case "role":
			info.Role = d.Str()
		case "cpu":
			info.CPU = d.F64()
		case "mem":
			info.MemBytes = d.Sint()
		case "side":
			info.Side = int(d.Uint())
		case "levels":
			info.Levels = int(d.Uint())
		case "seed":
			info.Seeds = append(info.Seeds, d.Sint())
		case "sig":
			info.Sig = d.Str()
		}
	}
	return info, d.Err()
}

func encodeHeartbeatV2(buf []byte, hb heartbeatMsg) ([]byte, error) {
	var e wire.Encoder
	e.Init(schHeartbeat, append(buf, ctagHeartbeat))
	e.Str("id", hb.ID)
	e.Uint("active", uint64(hb.Load.ActiveSessions))
	return e.Finish()
}

func decodeHeartbeatV2(body []byte) (heartbeatMsg, error) {
	var d wire.Decoder
	d.Init(schHeartbeat, body)
	var hb heartbeatMsg
	for d.Next() {
		switch d.Field().Name {
		case "id":
			hb.ID = d.Str()
		case "active":
			hb.Load.ActiveSessions = int(d.Uint())
		}
	}
	return hb, d.Err()
}

func encodeNodeIDV2(buf []byte, tag byte, id string) ([]byte, error) {
	var e wire.Encoder
	e.Init(schNodeID, append(buf, tag))
	e.Str("id", id)
	return e.Finish()
}

func decodeNodeIDV2(body []byte) (nodeIDMsg, error) {
	var d wire.Decoder
	d.Init(schNodeID, body)
	var m nodeIDMsg
	for d.Next() {
		if d.Field().Name == "id" {
			m.ID = d.Str()
		}
	}
	return m, d.Err()
}

func encodeSessionV2(buf []byte, sid string) ([]byte, error) {
	var e wire.Encoder
	e.Init(schSession, append(buf, ctagEndSession))
	e.Str("sid", sid)
	return e.Finish()
}

func decodeSessionV2(body []byte) (sessionMsg, error) {
	var d wire.Decoder
	d.Init(schSession, body)
	var m sessionMsg
	for d.Next() {
		if d.Field().Name == "sid" {
			m.SID = d.Str()
		}
	}
	return m, d.Err()
}

func encodeResolveV2(buf []byte, req ResolveRequest) ([]byte, error) {
	var e wire.Encoder
	e.Init(schResolve, append(buf, ctagResolve))
	e.Str("sid", req.SID)
	for _, x := range req.Exclude {
		e.Str("exclude", x)
	}
	if req.CPU != 0 {
		e.F64("cpu", req.CPU)
	}
	if req.MemBytes != 0 {
		e.Sint("mem", req.MemBytes)
	}
	if req.Sig != "" {
		e.Str("sig", req.Sig)
	}
	if req.Coarse {
		e.Bool("coarse", true)
	}
	return e.Finish()
}

func decodeResolveV2(body []byte) (ResolveRequest, error) {
	var d wire.Decoder
	d.Init(schResolve, body)
	var req ResolveRequest
	for d.Next() {
		switch d.Field().Name {
		case "sid":
			req.SID = d.Str()
		case "exclude":
			req.Exclude = append(req.Exclude, d.Str())
		case "cpu":
			req.CPU = d.F64()
		case "mem":
			req.MemBytes = d.Sint()
		case "sig":
			req.Sig = d.Str()
		case "coarse":
			req.Coarse = d.Bool()
		}
	}
	return req, d.Err()
}

func encodeNodesV2(buf []byte) ([]byte, error) {
	// A node-listing request has no body fields (yet).
	return append(buf, ctagNodes), nil
}

func encodeSampleBody(e *wire.Encoder, s *perfstore.WireSample) error {
	e.Str("config", s.Config)
	if err := encMap(e, "resource", s.Resources); err != nil {
		return err
	}
	if err := encMap(e, "metric", s.Metrics); err != nil {
		return err
	}
	if s.AtNanos != 0 {
		e.Sint("at", s.AtNanos)
	}
	if s.Source != "" {
		e.Str("source", s.Source)
	}
	return nil
}

func decodeSampleV2(body []byte) (perfstore.WireSample, error) {
	var d wire.Decoder
	d.Init(schSample, body)
	var s perfstore.WireSample
	var err error
	for d.Next() {
		switch d.Field().Name {
		case "config":
			s.Config = d.Str()
		case "resource":
			if s.Resources, err = decMapField(&d, s.Resources); err != nil {
				return s, err
			}
		case "metric":
			if s.Metrics, err = decMapField(&d, s.Metrics); err != nil {
				return s, err
			}
		case "at":
			s.AtNanos = d.Sint()
		case "source":
			s.Source = d.Str()
		}
	}
	return s, d.Err()
}

func encodePerfIngestV2(buf []byte, samples []perfstore.WireSample) ([]byte, error) {
	var e wire.Encoder
	e.Init(schPerfIngest, append(buf, ctagPerfIngest))
	for i := range samples {
		s := &samples[i]
		var serr error
		if err := e.Msg("sample", schSample, func(e *wire.Encoder) {
			serr = encodeSampleBody(e, s)
		}); err != nil {
			return nil, err
		} else if serr != nil {
			return nil, serr
		}
	}
	return e.Finish()
}

func decodePerfIngestV2(body []byte) (perfIngestMsg, error) {
	var d wire.Decoder
	d.Init(schPerfIngest, body)
	var m perfIngestMsg
	for d.Next() {
		if d.Field().Name == "sample" {
			s, err := decodeSampleV2(d.MsgBytes())
			if err != nil {
				return m, err
			}
			m.Samples = append(m.Samples, s)
		}
	}
	return m, d.Err()
}

func encodePerfProfileV2(buf []byte, configKey string) ([]byte, error) {
	var e wire.Encoder
	e.Init(schPerfProfile, append(buf, ctagPerfProfile))
	e.Str("config", configKey)
	return e.Finish()
}

func decodePerfProfileV2(body []byte) (perfProfileMsg, error) {
	var d wire.Decoder
	d.Init(schPerfProfile, body)
	var m perfProfileMsg
	for d.Next() {
		if d.Field().Name == "config" {
			m.ConfigKey = d.Str()
		}
	}
	return m, d.Err()
}

func encodeGrantBody(e *wire.Encoder, g ResolveGrant) {
	if g.NodeID != "" {
		e.Str("node", g.NodeID)
	}
	if g.Addr != "" {
		e.Str("addr", g.Addr)
	}
	if g.Sig != "" {
		e.Str("sig", g.Sig)
	}
	if g.Failover {
		e.Bool("failover", true)
	}
}

func decodeGrantV2(body []byte) (ResolveGrant, error) {
	var d wire.Decoder
	d.Init(schGrant, body)
	var g ResolveGrant
	for d.Next() {
		switch d.Field().Name {
		case "node":
			g.NodeID = d.Str()
		case "addr":
			g.Addr = d.Str()
		case "sig":
			g.Sig = d.Str()
		case "failover":
			g.Failover = d.Bool()
		}
	}
	return g, d.Err()
}

func encodeNodeStatusBody(e *wire.Encoder, n *NodeStatus) {
	e.Str("id", n.ID)
	e.Str("addr", n.Addr)
	if n.Role != "" {
		e.Str("role", n.Role)
	}
	e.Str("state", n.State)
	e.Str("sig", n.Sig)
	e.Uint("active", uint64(n.Load.ActiveSessions))
	e.F64("cpu", n.CPU)
	e.F64("reserved_cpu", n.ReservedCPU)
	e.Uint("sessions", uint64(n.Sessions))
	e.Uint("incarnation", n.Incarnation)
}

func decodeNodeStatusV2(body []byte) (NodeStatus, error) {
	var d wire.Decoder
	d.Init(schNodeStatus, body)
	var n NodeStatus
	for d.Next() {
		switch d.Field().Name {
		case "id":
			n.ID = d.Str()
		case "addr":
			n.Addr = d.Str()
		case "role":
			n.Role = d.Str()
		case "state":
			n.State = d.Str()
		case "sig":
			n.Sig = d.Str()
		case "active":
			n.Load.ActiveSessions = int(d.Uint())
		case "cpu":
			n.CPU = d.F64()
		case "reserved_cpu":
			n.ReservedCPU = d.F64()
		case "sessions":
			n.Sessions = int(d.Uint())
		case "incarnation":
			n.Incarnation = d.Uint()
		}
	}
	return n, d.Err()
}

func encodeRecordBody(e *wire.Encoder, r *perfstore.ProfileRecord) error {
	if err := encMap(e, "resource", r.Resources); err != nil {
		return err
	}
	if err := encMap(e, "metric", r.Metrics); err != nil {
		return err
	}
	e.F64("weight", r.Weight)
	e.Sint("samples", r.Samples)
	return nil
}

func decodeRecordV2(body []byte) (perfstore.ProfileRecord, error) {
	var d wire.Decoder
	d.Init(schRecord, body)
	var r perfstore.ProfileRecord
	var err error
	for d.Next() {
		switch d.Field().Name {
		case "resource":
			if r.Resources, err = decMapField(&d, r.Resources); err != nil {
				return r, err
			}
		case "metric":
			if r.Metrics, err = decMapField(&d, r.Metrics); err != nil {
				return r, err
			}
		case "weight":
			r.Weight = d.F64()
		case "samples":
			r.Samples = d.Sint()
		}
	}
	return r, d.Err()
}

func encodeProfileBody(e *wire.Encoder, p *perfstore.Profile) error {
	e.Str("config", p.ConfigKey)
	e.Uint("version", p.Version)
	for i := range p.Records {
		r := &p.Records[i]
		var rerr error
		if err := e.Msg("record", schRecord, func(e *wire.Encoder) {
			rerr = encodeRecordBody(e, r)
		}); err != nil {
			return err
		} else if rerr != nil {
			return rerr
		}
	}
	return nil
}

func decodeProfileV2(body []byte) (*perfstore.Profile, error) {
	var d wire.Decoder
	d.Init(schProfile, body)
	p := &perfstore.Profile{}
	for d.Next() {
		switch d.Field().Name {
		case "config":
			p.ConfigKey = d.Str()
		case "version":
			p.Version = d.Uint()
		case "record":
			r, err := decodeRecordV2(d.MsgBytes())
			if err != nil {
				return nil, err
			}
			p.Records = append(p.Records, r)
		}
	}
	return p, d.Err()
}

// encodeAckV2 renders the coordinator's reply in schema form (tag +
// body), appending to buf.
func encodeAckV2(buf []byte, ack *ackMsg) ([]byte, error) {
	var e wire.Encoder
	e.Init(schAck, append(buf, ctagAck))
	e.Bool("ok", ack.OK)
	if ack.Err != "" {
		e.Str("err", ack.Err)
	}
	if ack.Known {
		e.Bool("known", true)
	}
	if ack.Grant != (ResolveGrant{}) {
		g := ack.Grant
		if err := e.Msg("grant", schGrant, func(e *wire.Encoder) {
			encodeGrantBody(e, g)
		}); err != nil {
			return nil, err
		}
	}
	for i := range ack.Nodes {
		n := &ack.Nodes[i]
		if err := e.Msg("node", schNodeStatus, func(e *wire.Encoder) {
			encodeNodeStatusBody(e, n)
		}); err != nil {
			return nil, err
		}
	}
	for _, u := range ack.Unknown {
		e.Str("unknown", u)
	}
	if ack.Accepted != 0 {
		e.Uint("accepted", uint64(ack.Accepted))
	}
	if ack.Profile != nil {
		p := ack.Profile
		var perr error
		if err := e.Msg("profile", schProfile, func(e *wire.Encoder) {
			perr = encodeProfileBody(e, p)
		}); err != nil {
			return nil, err
		} else if perr != nil {
			return nil, perr
		}
	}
	return e.Finish()
}

// decodeAckV2 parses a schema-coded ack body.
func decodeAckV2(body []byte) (ackMsg, error) {
	var d wire.Decoder
	d.Init(schAck, body)
	var ack ackMsg
	for d.Next() {
		switch d.Field().Name {
		case "ok":
			ack.OK = d.Bool()
		case "err":
			ack.Err = d.Str()
		case "known":
			ack.Known = d.Bool()
		case "grant":
			g, err := decodeGrantV2(d.MsgBytes())
			if err != nil {
				return ack, err
			}
			ack.Grant = g
		case "node":
			n, err := decodeNodeStatusV2(d.MsgBytes())
			if err != nil {
				return ack, err
			}
			ack.Nodes = append(ack.Nodes, n)
		case "unknown":
			ack.Unknown = append(ack.Unknown, d.Str())
		case "accepted":
			ack.Accepted = int(d.Uint())
		case "profile":
			p, err := decodeProfileV2(d.MsgBytes())
			if err != nil {
				return ack, err
			}
			ack.Profile = p
		}
	}
	return ack, d.Err()
}
