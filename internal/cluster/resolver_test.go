package cluster

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"tunable/internal/metrics"
)

// quickRetry is a near-instant retry policy so failure tests stay fast.
func quickRetry() Backoff {
	return Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Factor: 2}
}

var errInjectedDial = errors.New("injected dial failure")

func TestResolverDeadCoordinatorFailsBounded(t *testing.T) {
	// A listener that is closed immediately: the port exists but nothing
	// answers, so every dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	r := NewResolver(addr, 100*time.Millisecond)
	defer r.Close()
	r.SetRetryPolicy(3, quickRetry(), nil)
	reg := metrics.New()
	r.EnableMetrics(reg)

	start := time.Now()
	_, err = r.Resolve(ResolveRequest{SID: "s1"})
	if err == nil {
		t.Fatal("resolve against a dead coordinator succeeded")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("resolve took %v, want bounded failure", took)
	}
	ctr := reg.Counter("cluster_ctrl_retries_total", "", metrics.L("role", "resolver"))
	if got := ctr.Value(); got != 2 {
		t.Fatalf("retries counter = %v, want 2 (3 attempts)", got)
	}
}

func TestResolverTransientDialFailureRetriesThenRecovers(t *testing.T) {
	// The first dial fails (injected through the fault seam); the resolver
	// must retry transparently and the caller must never see the transient
	// failure.
	coord := NewCoordinator(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go coord.Serve(ln)
	defer coord.Shutdown(time.Second)
	if err := coord.Register(NodeInfo{ID: "n1", Addr: "127.0.0.1:9", CPU: 1, Side: 256, Levels: 4}); err != nil {
		t.Fatal(err)
	}

	r := NewResolver(ln.Addr().String(), time.Second)
	defer r.Close()
	r.SetRetryPolicy(3, quickRetry(), nil)
	reg := metrics.New()
	r.EnableMetrics(reg)
	var calls int
	r.SetDialer(func(network, addr string, timeout time.Duration) (net.Conn, error) {
		calls++
		if calls == 1 {
			return nil, errInjectedDial
		}
		return net.DialTimeout(network, addr, timeout)
	})

	grant, err := r.Resolve(ResolveRequest{SID: "s1"})
	if err != nil {
		t.Fatalf("resolve did not survive a transient connection failure: %v", err)
	}
	if grant.NodeID != "n1" {
		t.Fatalf("grant %+v, want node n1", grant)
	}
	ctr := reg.Counter("cluster_ctrl_retries_total", "", metrics.L("role", "resolver"))
	if got := ctr.Value(); got < 1 {
		t.Fatalf("retries counter = %v, want ≥ 1", got)
	}
}

func TestResolverRefusalNotRetried(t *testing.T) {
	// An empty cluster refuses placement; the refusal must surface
	// immediately rather than being retried (a replacement attempt would
	// be refused identically).
	coord := NewCoordinator(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go coord.Serve(ln)
	defer coord.Shutdown(time.Second)

	r := NewResolver(ln.Addr().String(), time.Second)
	defer r.Close()
	r.SetRetryPolicy(5, quickRetry(), nil)
	reg := metrics.New()
	r.EnableMetrics(reg)

	_, err = r.Resolve(ResolveRequest{SID: "s1"})
	if err == nil {
		t.Fatal("resolve on an empty cluster succeeded")
	}
	if !strings.Contains(err.Error(), "refused") {
		t.Fatalf("error %v, want a coordinator refusal", err)
	}
	ctr := reg.Counter("cluster_ctrl_retries_total", "", metrics.L("role", "resolver"))
	if got := ctr.Value(); got != 0 {
		t.Fatalf("refusal was retried %v times, want 0", got)
	}
}

func TestResolverRetryBudgetBoundsAttempts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	r := NewResolver(addr, 100*time.Millisecond)
	defer r.Close()
	// 10 attempts allowed by policy, but only 1 retry token.
	r.SetRetryPolicy(10, quickRetry(), NewRetryBudget(1, 0))
	reg := metrics.New()
	r.EnableMetrics(reg)

	if _, err := r.Resolve(ResolveRequest{SID: "s1"}); err == nil {
		t.Fatal("resolve against a dead coordinator succeeded")
	}
	ctr := reg.Counter("cluster_ctrl_retries_total", "", metrics.L("role", "resolver"))
	if got := ctr.Value(); got != 1 {
		t.Fatalf("retries counter = %v, want exactly the budgeted 1", got)
	}
}
