package cluster

import (
	"time"
)

// Detector is the heartbeat failure detector: a deadline detector in the
// spirit of the phi-accrual family, kept deterministic by an injected
// clock (every method takes an explicit now, a duration on the caller's
// timeline) so the state machine is testable without real sleeps. A node
// whose last heartbeat is older than suspectAfter becomes suspect — still
// registered, excluded from new placements — and older than deadAfter
// becomes dead, which the coordinator treats as permanent until the node
// re-registers (rejoin, with a bumped incarnation).
//
// Deadlines are tracked on a hashed timer wheel so Tick touches only the
// entries whose next possible verdict falls inside the advanced window,
// instead of scanning every registered node. At 10k nodes with second-scale
// deadlines and sub-second ticks that is the difference between O(nodes)
// and O(due) per tick. Each entry is scheduled at the earliest time it
// could cross its next deadline (last+suspectAfter while alive,
// last+deadAfter while suspect); a heartbeat re-arms the entry.
//
// The detector is a pure state machine: no goroutines, no locks — each
// coordinator shard serializes access under its own shard lock.
type Detector struct {
	suspectAfter time.Duration
	deadAfter    time.Duration
	entries      map[string]*detEntry

	// Timer wheel: slot i holds entries whose deadline quantizes (rounded
	// up) into granule i mod len(slots). wheelTime is the next granule
	// boundary Tick has not yet processed; entries are always scheduled
	// at or ahead of it, so a slot visit sees every due entry.
	gran      time.Duration
	slots     []map[string]*detEntry
	wheelTime time.Duration
}

type detEntry struct {
	last  time.Duration // timestamp of the most recent heartbeat
	state NodeState
	inc   uint64        // incarnation, bumped on each (re-)registration
	next  time.Duration // scheduled deadline check
	slot  int           // wheel slot holding the entry; -1 when unscheduled
}

// Transition is one state change reported by Tick.
type Transition struct {
	ID       string
	From, To NodeState
}

// NewDetector creates a detector with the given deadlines; deadAfter must
// exceed suspectAfter.
func NewDetector(suspectAfter, deadAfter time.Duration) *Detector {
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	if deadAfter <= suspectAfter {
		deadAfter = 2 * suspectAfter
	}
	// Granule: a quarter of the suspect deadline bounds verdict lateness at
	// 25% of the tightest threshold; the slot count must cover the longest
	// reschedule horizon (deadAfter) plus slack so a deadline never wraps
	// onto a slot the current lap still has to visit.
	gran := suspectAfter / 4
	if gran < time.Millisecond {
		gran = time.Millisecond
	}
	// Cap the wheel size: with a tiny suspect deadline under a huge death
	// deadline, coarsen the granule rather than allocate thousands of slots.
	const maxSlots = 4096
	if deadAfter/gran > maxSlots-3 {
		gran = deadAfter / (maxSlots - 3)
	}
	nslots := int(deadAfter/gran) + 3
	slots := make([]map[string]*detEntry, nslots)
	for i := range slots {
		slots[i] = make(map[string]*detEntry)
	}
	return &Detector{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		entries:      make(map[string]*detEntry),
		gran:         gran,
		slots:        slots,
	}
}

// schedule (re-)arms the entry's deadline check at time at. Slots are
// assigned by rounding up to the next granule boundary, so when the wheel
// visits a slot every entry in it with next ≤ now is genuinely due.
func (d *Detector) schedule(id string, e *detEntry, at time.Duration) {
	if e.slot >= 0 {
		delete(d.slots[e.slot], id)
	}
	e.next = at
	s := int((at+d.gran-1)/d.gran) % len(d.slots)
	e.slot = s
	d.slots[s][id] = e
}

func (d *Detector) unschedule(id string, e *detEntry) {
	if e.slot >= 0 {
		delete(d.slots[e.slot], id)
		e.slot = -1
	}
}

// Register (re-)announces a node at time now: its state becomes alive and
// its incarnation is bumped. This is the only way out of StateDead.
func (d *Detector) Register(id string, now time.Duration) uint64 {
	e := d.entries[id]
	if e == nil {
		e = &detEntry{slot: -1}
		d.entries[id] = e
	}
	e.last = now
	e.state = StateAlive
	e.inc++
	d.schedule(id, e, now+d.suspectAfter)
	return e.inc
}

// Observe records a heartbeat at time now. It returns the gap since the
// previous observation, the state the node held before the beat, and
// whether the heartbeat was accepted: heartbeats from unknown or dead
// nodes are refused (ok=false), telling the agent to re-register. A
// heartbeat from a suspect node revives it to alive.
func (d *Detector) Observe(id string, now time.Duration) (gap time.Duration, prev NodeState, ok bool) {
	e := d.entries[id]
	if e == nil || e.state == StateDead {
		return 0, StateDead, false
	}
	gap = now - e.last
	prev = e.state
	e.last = now
	e.state = StateAlive
	d.schedule(id, e, now+d.suspectAfter)
	return gap, prev, true
}

// Tick advances the detector to time now, returning the transitions that
// fired (suspect and death verdicts). Ordering between nodes is
// unspecified; callers must not depend on it.
func (d *Detector) Tick(now time.Duration) []Transition {
	var out []Transition
	n := len(d.slots)
	if now >= d.wheelTime && int((now-d.wheelTime)/d.gran)+1 >= n {
		// The clock jumped a full lap or more (a wedged coordinator, or a
		// test skipping far ahead): every slot may hold due entries.
		for s := 0; s < n; s++ {
			out = d.sweep(s, now, out)
		}
		d.wheelTime = (now/d.gran + 1) * d.gran
		return out
	}
	for d.wheelTime <= now {
		out = d.sweep(int(d.wheelTime/d.gran)%n, now, out)
		d.wheelTime += d.gran
	}
	return out
}

// sweep applies verdicts to the due entries of one slot. Entries scheduled
// for a later lap (next > now) stay put; live entries are re-armed at the
// earliest time they could cross their next deadline.
func (d *Detector) sweep(slot int, now time.Duration, out []Transition) []Transition {
	for id, e := range d.slots[slot] {
		if e.next > now {
			continue // a future lap of the wheel
		}
		age := now - e.last
		var next NodeState
		switch {
		case age >= d.deadAfter:
			next = StateDead
		case age >= d.suspectAfter:
			next = StateSuspect
		default:
			next = StateAlive
		}
		// Tick never revives: only Observe/Register move a node back to
		// alive, and only Register resurrects the dead.
		if next > e.state {
			out = append(out, Transition{ID: id, From: e.state, To: next})
			e.state = next
		}
		if e.state == StateDead {
			d.unschedule(id, e)
			continue
		}
		if e.state == StateAlive {
			d.schedule(id, e, e.last+d.suspectAfter)
		} else {
			d.schedule(id, e, e.last+d.deadAfter)
		}
	}
	return out
}

// State reports a node's current verdict.
func (d *Detector) State(id string) (NodeState, bool) {
	e := d.entries[id]
	if e == nil {
		return 0, false
	}
	return e.state, true
}

// Incarnation reports how many times the node has registered.
func (d *Detector) Incarnation(id string) uint64 {
	if e := d.entries[id]; e != nil {
		return e.inc
	}
	return 0
}

// Remove forgets a node (clean deregistration), reporting the state it
// held so callers can settle per-state accounting.
func (d *Detector) Remove(id string) (NodeState, bool) {
	e := d.entries[id]
	if e == nil {
		return 0, false
	}
	d.unschedule(id, e)
	delete(d.entries, id)
	return e.state, true
}
