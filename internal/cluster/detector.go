package cluster

import (
	"time"
)

// Detector is the heartbeat failure detector: a deadline detector in the
// spirit of the phi-accrual family, kept deterministic by an injected
// clock (every method takes an explicit now, a duration on the caller's
// timeline) so the state machine is testable without real sleeps. A node
// whose last heartbeat is older than suspectAfter becomes suspect — still
// registered, excluded from new placements — and older than deadAfter
// becomes dead, which the coordinator treats as permanent until the node
// re-registers (rejoin, with a bumped incarnation).
//
// The detector is a pure state machine: no goroutines, no locks — the
// coordinator serializes access under its own mutex.
type Detector struct {
	suspectAfter time.Duration
	deadAfter    time.Duration
	entries      map[string]*detEntry
}

type detEntry struct {
	last  time.Duration // timestamp of the most recent heartbeat
	state NodeState
	inc   uint64 // incarnation, bumped on each (re-)registration
}

// Transition is one state change reported by Tick.
type Transition struct {
	ID       string
	From, To NodeState
}

// NewDetector creates a detector with the given deadlines; deadAfter must
// exceed suspectAfter.
func NewDetector(suspectAfter, deadAfter time.Duration) *Detector {
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	if deadAfter <= suspectAfter {
		deadAfter = 2 * suspectAfter
	}
	return &Detector{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		entries:      make(map[string]*detEntry),
	}
}

// Register (re-)announces a node at time now: its state becomes alive and
// its incarnation is bumped. This is the only way out of StateDead.
func (d *Detector) Register(id string, now time.Duration) uint64 {
	e := d.entries[id]
	if e == nil {
		e = &detEntry{}
		d.entries[id] = e
	}
	e.last = now
	e.state = StateAlive
	e.inc++
	return e.inc
}

// Observe records a heartbeat at time now. It returns the gap since the
// previous observation and whether the heartbeat was accepted: heartbeats
// from unknown or dead nodes are refused (ok=false), telling the agent to
// re-register. A heartbeat from a suspect node revives it to alive.
func (d *Detector) Observe(id string, now time.Duration) (gap time.Duration, ok bool) {
	e := d.entries[id]
	if e == nil || e.state == StateDead {
		return 0, false
	}
	gap = now - e.last
	e.last = now
	e.state = StateAlive
	return gap, true
}

// Tick advances the detector to time now, returning the transitions that
// fired (suspect and death verdicts). Ordering between nodes is
// unspecified; callers must not depend on it.
func (d *Detector) Tick(now time.Duration) []Transition {
	var out []Transition
	for id, e := range d.entries {
		age := now - e.last
		var next NodeState
		switch {
		case age >= d.deadAfter:
			next = StateDead
		case age >= d.suspectAfter:
			next = StateSuspect
		default:
			next = StateAlive
		}
		// Tick never revives: only Observe/Register move a node back to
		// alive, and only Register resurrects the dead.
		if next > e.state {
			out = append(out, Transition{ID: id, From: e.state, To: next})
			e.state = next
		}
	}
	return out
}

// State reports a node's current verdict.
func (d *Detector) State(id string) (NodeState, bool) {
	e := d.entries[id]
	if e == nil {
		return 0, false
	}
	return e.state, true
}

// Incarnation reports how many times the node has registered.
func (d *Detector) Incarnation(id string) uint64 {
	if e := d.entries[id]; e != nil {
		return e.inc
	}
	return 0
}

// Remove forgets a node (clean deregistration).
func (d *Detector) Remove(id string) { delete(d.entries, id) }
