package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"tunable/internal/avis"
	"tunable/internal/metrics"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/vtime"
)

// Config tunes a Coordinator.
type Config struct {
	// SuspectAfter / DeadAfter are the failure detector's deadlines
	// (defaults DefaultSuspectAfter / DefaultDeadAfter).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Now is the injected clock (monotone duration on any epoch); defaults
	// to wall time since construction. Tests drive it directly.
	Now func() time.Duration
	// IOTimeout is the per-frame progress deadline on control
	// connections; 0 (the default) waits forever, since heartbeat
	// connections are idle between beats.
	IOTimeout time.Duration
}

// node is one registry entry.
type node struct {
	info NodeInfo
	sig  string
	load Load
	host *sandbox.Host
}

// session is one placed client session.
type session struct {
	id     string
	nodeID string // "" while orphaned (its node died, awaiting failover)
	res    *scheduler.Reservation
	placed bool // ever successfully placed; a later re-place is a failover
}

// Coordinator owns the cluster registry, failure detector, and
// admission-controlled placement. All state is guarded by mu; the network
// front end (Serve) and the detector pump (Tick) are thin shells over the
// locked core, so the coordinator can also be driven entirely in-process
// by tests.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	det      *Detector
	adm      *scheduler.Admission
	sim      *vtime.Sim // host factory bookkeeping only; never run
	nodes    map[string]*node
	sessions map[string]*session

	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	listeners []net.Listener
	closed    bool
	wg        sync.WaitGroup

	// telemetry instruments; nil (no-op) unless EnableMetrics ran
	mNodesAlive    *metrics.Gauge
	mNodesSuspect  *metrics.Gauge
	mNodesDead     *metrics.Gauge
	mSessions      *metrics.Gauge
	mRegistrations *metrics.Counter
	mHeartbeats    *metrics.Counter
	mHeartbeatGap  *metrics.Histogram
	mNodeDeaths    *metrics.Counter
	mFailovers     *metrics.Counter
	mResolves      *metrics.Counter
	mNoCapacity    *metrics.Counter
}

// NewCoordinator creates an empty coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	return &Coordinator{
		cfg:      cfg,
		det:      NewDetector(cfg.SuspectAfter, cfg.DeadAfter),
		adm:      scheduler.NewAdmission(),
		sim:      vtime.NewSim(),
		nodes:    make(map[string]*node),
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
	}
}

// EnableMetrics instruments the coordinator. Metric families:
// cluster_nodes (gauge, labeled state=alive|suspect|dead),
// cluster_sessions, cluster_registrations_total,
// cluster_heartbeats_total, cluster_heartbeat_gap_seconds (inter-arrival
// gap per heartbeat — the quantity the deadline detector thresholds),
// cluster_node_deaths_total, cluster_failovers_total (sessions re-placed
// after their node failed), cluster_resolves_total, and
// cluster_no_capacity_total; plus the scheduler's sched_admission_*
// families for the underlying reservations.
func (c *Coordinator) EnableMetrics(reg *metrics.Registry) {
	c.mNodesAlive = reg.Gauge("cluster_nodes", "Registered nodes by detector state.", metrics.L("state", "alive"))
	c.mNodesSuspect = reg.Gauge("cluster_nodes", "Registered nodes by detector state.", metrics.L("state", "suspect"))
	c.mNodesDead = reg.Gauge("cluster_nodes", "Registered nodes by detector state.", metrics.L("state", "dead"))
	c.mSessions = reg.Gauge("cluster_sessions", "Sessions currently placed or awaiting failover.")
	c.mRegistrations = reg.Counter("cluster_registrations_total", "Node registrations accepted (including rejoins).")
	c.mHeartbeats = reg.Counter("cluster_heartbeats_total", "Heartbeats accepted.")
	c.mHeartbeatGap = reg.Histogram("cluster_heartbeat_gap_seconds",
		"Gap between successive heartbeats of a node.")
	c.mNodeDeaths = reg.Counter("cluster_node_deaths_total", "Nodes declared dead by the failure detector.")
	c.mFailovers = reg.Counter("cluster_failovers_total", "Sessions re-placed onto a replacement node.")
	c.mResolves = reg.Counter("cluster_resolves_total", "Session placement requests served.")
	c.mNoCapacity = reg.Counter("cluster_no_capacity_total", "Placements refused for lack of admissible capacity.")
	c.adm.EnableMetrics(reg)
}

// updateStateGauges recomputes the per-state node gauges; callers hold mu.
func (c *Coordinator) updateStateGauges() {
	var alive, suspect, dead float64
	for id := range c.nodes {
		switch st, _ := c.det.State(id); st {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		}
	}
	c.mNodesAlive.Set(alive)
	c.mNodesSuspect.Set(suspect)
	c.mNodesDead.Set(dead)
}

// Register admits a node into the registry (or re-admits a restarted or
// previously dead one — the rejoin path). Re-registration orphans any
// sessions still placed on the node: their reservations are released and
// their next resolve is treated as a failover.
func (c *Coordinator) Register(info NodeInfo) error {
	if info.ID == "" || info.Addr == "" {
		return fmt.Errorf("cluster: registration needs id and addr")
	}
	if info.CPU <= 0 || info.CPU > 1 {
		return fmt.Errorf("cluster: node %q declares CPU share %g outside (0,1]", info.ID, info.CPU)
	}
	mem := info.MemBytes
	if mem <= 0 {
		mem = 512 << 20
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.nodes[info.ID]; old != nil {
		c.orphanSessionsLocked(info.ID)
		c.adm.RemoveHost(info.ID)
	}
	host := sandbox.NewHost(c.sim, info.ID, 1e9, sandbox.WithMemory(mem))
	if err := c.adm.AddHost(host); err != nil {
		return err
	}
	// The sandbox layer always admits up to MaxReservable (1.0); a node
	// declaring less carries a placeholder reservation for the difference.
	if info.CPU < sandbox.MaxReservable {
		if _, err := host.NewSandbox("!capacity", sandbox.MaxReservable-info.CPU, 0); err != nil {
			c.adm.RemoveHost(info.ID)
			return fmt.Errorf("cluster: capacity placeholder: %w", err)
		}
	}
	c.nodes[info.ID] = &node{info: info, sig: info.StoreSig(), host: host}
	c.det.Register(info.ID, c.cfg.Now())
	c.mRegistrations.Inc()
	c.mSessions.Set(float64(len(c.sessions)))
	c.updateStateGauges()
	return nil
}

// Heartbeat renews a node's lease and records its load. It reports
// whether the coordinator knows the node: false tells the agent to
// re-register (the coordinator restarted, or the node was declared dead).
func (c *Coordinator) Heartbeat(id string, load Load) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[id]
	if n == nil {
		return false
	}
	gap, ok := c.det.Observe(id, c.cfg.Now())
	if !ok {
		return false
	}
	n.load = load
	c.mHeartbeats.Inc()
	c.mHeartbeatGap.Observe(gap.Seconds())
	c.updateStateGauges()
	return true
}

// Deregister removes a node cleanly (graceful shutdown): its sessions are
// orphaned for failover, but no death is counted.
func (c *Coordinator) Deregister(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes[id] == nil {
		return
	}
	c.orphanSessionsLocked(id)
	c.adm.RemoveHost(id)
	c.det.Remove(id)
	delete(c.nodes, id)
	c.updateStateGauges()
}

// orphanSessionsLocked releases the reservations of every session placed
// on nodeID and marks them for failover; callers hold mu.
func (c *Coordinator) orphanSessionsLocked(nodeID string) {
	for _, s := range c.sessions {
		if s.nodeID == nodeID {
			if s.res != nil {
				s.res.Release()
				s.res = nil
			}
			s.nodeID = ""
		}
	}
}

// Tick advances the failure detector to Now(), applying suspect and death
// verdicts: dead nodes keep their registry entry (so the death is
// observable) but lose their host and sessions.
func (c *Coordinator) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tr := range c.det.Tick(c.cfg.Now()) {
		if tr.To != StateDead {
			continue
		}
		c.mNodeDeaths.Inc()
		c.orphanSessionsLocked(tr.ID)
		c.adm.RemoveHost(tr.ID)
	}
	c.updateStateGauges()
}

// StartTicker pumps Tick every interval on a background goroutine until
// the returned stop function is called.
func (c *Coordinator) StartTicker(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Resolve places (or re-places) a session onto an alive node: candidates
// matching the requested store signature are tried least-reserved-share
// first, and the first node whose admission control accepts the session's
// demand wins — all-or-nothing per Section 6.2, so an over-committed node
// never silently absorbs a session it cannot police. A request for a
// session the coordinator has already seen counts as a failover.
func (c *Coordinator) Resolve(req ResolveRequest) (ResolveGrant, error) {
	if req.SID == "" {
		return ResolveGrant{}, fmt.Errorf("cluster: resolve needs a session id")
	}
	share := req.CPU
	if share <= 0 {
		share = DefaultSessionShare
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mResolves.Inc()

	sess := c.sessions[req.SID]
	failover := false
	if sess != nil {
		failover = sess.placed
		if sess.res != nil {
			sess.res.Release()
			sess.res = nil
		}
		sess.nodeID = ""
	} else {
		sess = &session{id: req.SID}
		c.sessions[req.SID] = sess
	}

	excluded := make(map[string]bool, len(req.Exclude))
	for _, id := range req.Exclude {
		excluded[id] = true
	}
	type cand struct {
		id       string
		edge     bool
		reserved float64
		sessions int
	}
	var cands []cand
	for id, n := range c.nodes {
		if st, _ := c.det.State(id); st != StateAlive {
			continue
		}
		if excluded[id] || (req.Sig != "" && n.sig != req.Sig) {
			continue
		}
		edge := n.info.Role == RoleEdge
		if edge && !req.Coarse {
			// Fine-level traffic streams through an edge uncached; keep it
			// off the cache tier entirely.
			continue
		}
		cands = append(cands, cand{id: id, edge: edge, reserved: n.host.Reserved() / n.info.CPU, sessions: n.load.ActiveSessions})
	}
	sort.Slice(cands, func(i, j int) bool {
		// Coarse sessions prefer any warm edge over any origin; when the
		// edges are excluded (failed) or absent, origins still serve, so a
		// cache-tier outage degrades to direct delivery, never to refusal.
		if cands[i].edge != cands[j].edge {
			return cands[i].edge
		}
		if cands[i].reserved != cands[j].reserved {
			return cands[i].reserved < cands[j].reserved
		}
		if cands[i].sessions != cands[j].sessions {
			return cands[i].sessions < cands[j].sessions
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) == 0 {
		c.mNoCapacity.Inc()
		c.mSessions.Set(float64(len(c.sessions)))
		return ResolveGrant{}, fmt.Errorf("cluster: no alive node matches the request")
	}
	want := resource.Vector{resource.CPU: share}
	if req.MemBytes > 0 {
		want[resource.Memory] = float64(req.MemBytes)
	}
	for _, cd := range cands {
		res, err := c.adm.ReservePlaced("sess:"+req.SID, []scheduler.Placement{
			{Component: "avis", Host: cd.id, Want: want},
		})
		if err != nil {
			continue
		}
		sess.nodeID = cd.id
		sess.res = res
		sess.placed = true
		if failover {
			c.mFailovers.Inc()
		}
		c.mSessions.Set(float64(len(c.sessions)))
		n := c.nodes[cd.id]
		return ResolveGrant{NodeID: cd.id, Addr: n.info.Addr, Sig: n.sig, Failover: failover}, nil
	}
	c.mNoCapacity.Inc()
	c.mSessions.Set(float64(len(c.sessions)))
	return ResolveGrant{}, fmt.Errorf("cluster: no node admits the session demand (cpu %.2f)", share)
}

// EndSession releases a session's reservation (client hung up cleanly).
func (c *Coordinator) EndSession(sid string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sessions[sid]; s != nil {
		if s.res != nil {
			s.res.Release()
		}
		delete(c.sessions, sid)
	}
	c.mSessions.Set(float64(len(c.sessions)))
}

// Nodes lists the registry, sorted by node ID.
func (c *Coordinator) Nodes() []NodeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStatus, 0, len(c.nodes))
	for id, n := range c.nodes {
		st, _ := c.det.State(id)
		sessions := 0
		for _, s := range c.sessions {
			if s.nodeID == id {
				sessions++
			}
		}
		reserved := 0.0
		if st != StateDead {
			reserved = n.host.Reserved() - (sandbox.MaxReservable - n.info.CPU)
			if reserved < 0 {
				reserved = 0
			}
		}
		out = append(out, NodeStatus{
			ID:          id,
			Addr:        n.info.Addr,
			Role:        n.info.Role,
			State:       st.String(),
			Sig:         n.sig,
			Load:        n.load,
			CPU:         n.info.CPU,
			ReservedCPU: reserved,
			Sessions:    sessions,
			Incarnation: c.det.Incarnation(id),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Serve accepts control connections until the listener closes, handling
// each in its own goroutine. After Shutdown it returns net.ErrClosed.
func (c *Coordinator) Serve(l net.Listener) error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return net.ErrClosed
	}
	c.listeners = append(c.listeners, l)
	c.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		c.connMu.Lock()
		if c.closed {
			c.connMu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.connMu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				c.connMu.Lock()
				delete(c.conns, conn)
				c.connMu.Unlock()
				c.wg.Done()
			}()
			c.handle(conn)
		}()
	}
}

// handle services one control connection: a loop of request frames, each
// answered with an ack frame.
func (c *Coordinator) handle(conn net.Conn) {
	rw := avis.NewDeadlineRW(conn, c.cfg.IOTimeout)
	r := bufio.NewReaderSize(rw, 4<<10)
	w := bufio.NewWriterSize(rw, 4<<10)
	for {
		msg, err := avis.ReadFrame(r)
		if err != nil {
			return
		}
		ack := c.dispatch(msg)
		if err := avis.WriteFrame(w, encodeCtrl(ctagAck, ack)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch decodes one request and applies it to the registry core.
func (c *Coordinator) dispatch(msg []byte) ackMsg {
	refuse := func(err error) ackMsg { return ackMsg{Err: err.Error()} }
	if len(msg) == 0 {
		return refuse(fmt.Errorf("empty frame"))
	}
	switch msg[0] {
	case ctagRegister:
		var info NodeInfo
		if err := decodeCtrl(msg, &info); err != nil {
			return refuse(err)
		}
		if err := c.Register(info); err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true}
	case ctagHeartbeat:
		var hb heartbeatMsg
		if err := decodeCtrl(msg, &hb); err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Known: c.Heartbeat(hb.ID, hb.Load)}
	case ctagDeregister:
		var m nodeIDMsg
		if err := decodeCtrl(msg, &m); err != nil {
			return refuse(err)
		}
		c.Deregister(m.ID)
		return ackMsg{OK: true}
	case ctagResolve:
		var req ResolveRequest
		if err := decodeCtrl(msg, &req); err != nil {
			return refuse(err)
		}
		grant, err := c.Resolve(req)
		if err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Grant: grant}
	case ctagEndSession:
		var m sessionMsg
		if err := decodeCtrl(msg, &m); err != nil {
			return refuse(err)
		}
		c.EndSession(m.SID)
		return ackMsg{OK: true}
	case ctagNodes:
		return ackMsg{OK: true, Nodes: c.Nodes()}
	default:
		return refuse(fmt.Errorf("unknown control tag %q", msg[0]))
	}
}

// Shutdown stops the control plane: it closes every listener passed to
// Serve and every open control connection, then waits up to timeout for
// the handlers to unwind.
func (c *Coordinator) Shutdown(timeout time.Duration) {
	c.connMu.Lock()
	c.closed = true
	for _, l := range c.listeners {
		_ = l.Close()
	}
	c.listeners = nil
	for conn := range c.conns {
		_ = conn.Close()
	}
	c.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
}
