package cluster

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tunable/internal/bufpool"
	"tunable/internal/metrics"
	"tunable/internal/perfstore"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/vtime"
	"tunable/internal/wire"
)

// Config tunes a Coordinator.
type Config struct {
	// SuspectAfter / DeadAfter are the failure detector's deadlines
	// (defaults DefaultSuspectAfter / DefaultDeadAfter).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Now is the injected clock (monotone duration on any epoch); defaults
	// to wall time since construction. Tests drive it directly.
	Now func() time.Duration
	// IOTimeout is the per-frame progress deadline on control
	// connections; 0 (the default) waits forever, since heartbeat
	// connections are idle between beats.
	IOTimeout time.Duration
	// Shards is the number of registry/session shards (rounded up to a
	// power of two; 0 picks a default scaled to GOMAXPROCS). Node and
	// session state is partitioned by fnv-1a hash of the ID, each shard
	// with its own lock, failure-detector timer wheel, and admission
	// state, so control-plane ops on different shards never contend.
	Shards int
	// WireV1 pins the control plane to v1 framing and JSON bodies:
	// version probes get the refusal a pre-v2 build sends, so every
	// caller falls back. For mixed-version conformance tests and staged
	// rollouts.
	WireV1 bool
}

const (
	// commitThreshold is the net-delta commit threshold for hot shard-local
	// counters: per-op telemetry increments accumulate unshared under the
	// shard lock and commit to the shared counter only when the pending net
	// delta reaches this many ops (or on the next detector tick, which
	// flushes the remainder). The VSA-vs-atomic-vs-batching harness in
	// counter_bench_test.go measures why: see BENCH_control.json.
	commitThreshold = 64
	// placeSample bounds how many candidates a placement gathers before
	// sorting: at fleet scale scanning every node per resolve would make
	// placement O(nodes). Small clusters are always scanned completely (the
	// sample covers them), and a sampled placement that finds no admissible
	// node falls back to one exhaustive scan before refusing.
	placeSample = 64
)

// pending is a thresholded net-delta commit accumulator (the "VSA" design
// from the counter harness): adds coalesce into a local float under the
// owning shard's lock and flush into the shared counter in one Add.
type pending struct {
	n    float64
	sink *metrics.Counter
}

func (p *pending) add(n float64) {
	p.n += n
	if p.n >= commitThreshold {
		p.flush()
	}
}

func (p *pending) flush() {
	if p.n != 0 {
		p.sink.Add(p.n)
		p.n = 0
	}
}

// node is one registry entry.
type node struct {
	info NodeInfo
	sig  string
	load Load
	host *sandbox.Host
	// resv indexes the reservations placed on this node by session ID —
	// the shard-local inverse of the session table, so orphaning a dead
	// node's sessions is O(its sessions), not O(all sessions).
	resv map[string]*scheduler.Reservation
}

// session is one placed client session.
type session struct {
	id     string
	nodeID string // "" while orphaned (its node died, awaiting failover)
	res    *scheduler.Reservation
	placed bool // ever successfully placed; a later re-place is a failover
}

// orphanRef records a reservation released while tearing down a node; the
// owning session record (in a different shard) is detached afterwards.
type orphanRef struct {
	sid string
	res *scheduler.Reservation
}

// nodeShard is one partition of the registry: nodes whose ID hashes here,
// their failure-detector timer wheel, and the admission state for their
// hosts. All fields are guarded by mu; read-heavy paths (candidate scans,
// registry listings) take it shared.
type nodeShard struct {
	mu    sync.RWMutex
	det   *Detector
	adm   *scheduler.Admission
	nodes map[string]*node

	// Hot-path telemetry under thresholded net-delta commits (flushed by
	// Tick); guarded by mu like the rest of the shard.
	pendBeats  pending // cluster_heartbeats_total
	pendBeatOp pending // cluster_shard_ops_total{op="heartbeat"}
}

// sessionShard is one partition of the session table.
type sessionShard struct {
	mu       sync.Mutex
	sessions map[string]*session
}

// Coordinator owns the cluster registry, failure detector, and
// admission-controlled placement. State is partitioned into power-of-two
// shards (nodes and sessions hashed separately), each with its own lock,
// so registry ops scale with cores instead of serializing on one mutex;
// the network front end (Serve) and the detector pump (Tick) are thin
// shells over the sharded core, so the coordinator can also be driven
// entirely in-process by tests and by cmd/avis-load.
//
// Lock order: a session shard's lock may be held while taking a node
// shard's lock (placement, release), never the reverse — node-side
// teardown collects orphaned reservations under the node lock and
// detaches the session records after releasing it.
type Coordinator struct {
	cfg  Config
	mask uint32

	nshards []*nodeShard
	sshards []*sessionShard

	sim       *vtime.Sim   // host factory bookkeeping only; never run
	nSessions atomic.Int64 // session count across shards
	rot       atomic.Uint32

	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	listeners []net.Listener
	closed    bool
	wg        sync.WaitGroup

	// perfMu guards perf, the optional shared performance store nodes feed
	// telemetry into and clients fetch refined profiles from.
	perfMu sync.RWMutex
	perf   *perfstore.PerfStore

	// telemetry instruments; nil (no-op) unless EnableMetrics ran
	mNodesAlive    *metrics.Gauge
	mNodesSuspect  *metrics.Gauge
	mNodesDead     *metrics.Gauge
	mSessions      *metrics.Gauge
	mRegistrations *metrics.Counter
	mHeartbeats    *metrics.Counter
	mHeartbeatGap  *metrics.Histogram
	mNodeDeaths    *metrics.Counter
	mFailovers     *metrics.Counter
	mResolves      *metrics.Counter
	mNoCapacity    *metrics.Counter

	mOpRegister   *metrics.Counter
	mOpDeregister *metrics.Counter
	mOpResolve    *metrics.Counter
	mOpEndSession *metrics.Counter
	mOpDeltaBatch *metrics.Counter
	mBatchSize    *metrics.Histogram
	mPlaceLatency *metrics.Histogram
	wInst         wire.Instruments
}

// defaultShards picks the shard count for Config.Shards == 0: enough
// partitions that independent cores rarely collide (4× GOMAXPROCS), at
// least 8 so single-core builds still exercise the sharded paths.
func defaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fnvHash is FNV-1a over the ID, the shard key.
func fnvHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func fnvHashBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// NewCoordinator creates an empty coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards()
	}
	n = ceilPow2(n)
	if n > 1024 {
		n = 1024
	}
	c := &Coordinator{
		cfg:     cfg,
		mask:    uint32(n - 1),
		nshards: make([]*nodeShard, n),
		sshards: make([]*sessionShard, n),
		sim:     vtime.NewSim(),
		conns:   make(map[net.Conn]struct{}),
	}
	for i := range c.nshards {
		c.nshards[i] = &nodeShard{
			det:   NewDetector(cfg.SuspectAfter, cfg.DeadAfter),
			adm:   scheduler.NewAdmission(),
			nodes: make(map[string]*node),
		}
		c.sshards[i] = &sessionShard{sessions: make(map[string]*session)}
	}
	return c
}

func (c *Coordinator) nodeShardFor(id string) *nodeShard {
	return c.nshards[fnvHash(id)&c.mask]
}

func (c *Coordinator) sessionShardFor(sid string) *sessionShard {
	return c.sshards[fnvHash(sid)&c.mask]
}

// Shards reports the coordinator's shard count.
func (c *Coordinator) Shards() int { return len(c.nshards) }

// EnableMetrics instruments the coordinator. Metric families:
// cluster_nodes (gauge, labeled state=alive|suspect|dead),
// cluster_sessions, cluster_registrations_total,
// cluster_heartbeats_total, cluster_heartbeat_gap_seconds (inter-arrival
// gap per heartbeat — the quantity the deadline detector thresholds),
// cluster_node_deaths_total, cluster_failovers_total (sessions re-placed
// after their node failed), cluster_resolves_total,
// cluster_no_capacity_total, cluster_shard_ops_total (labeled by op —
// register|heartbeat|deregister|resolve|end_session|delta_batch, a closed
// set), cluster_delta_batch_size (entries per delta frame), and
// cluster_placement_latency_seconds (wall time per placement decision);
// plus the scheduler's sched_admission_* families for the underlying
// reservations.
func (c *Coordinator) EnableMetrics(reg *metrics.Registry) {
	c.mNodesAlive = reg.Gauge("cluster_nodes", "Registered nodes by detector state.", metrics.L("state", "alive"))
	c.mNodesSuspect = reg.Gauge("cluster_nodes", "Registered nodes by detector state.", metrics.L("state", "suspect"))
	c.mNodesDead = reg.Gauge("cluster_nodes", "Registered nodes by detector state.", metrics.L("state", "dead"))
	c.mSessions = reg.Gauge("cluster_sessions", "Sessions currently placed or awaiting failover.")
	c.mRegistrations = reg.Counter("cluster_registrations_total", "Node registrations accepted (including rejoins).")
	c.mHeartbeats = reg.Counter("cluster_heartbeats_total", "Heartbeats accepted.")
	c.mHeartbeatGap = reg.Histogram("cluster_heartbeat_gap_seconds",
		"Gap between successive heartbeats of a node.")
	c.mNodeDeaths = reg.Counter("cluster_node_deaths_total", "Nodes declared dead by the failure detector.")
	c.mFailovers = reg.Counter("cluster_failovers_total", "Sessions re-placed onto a replacement node.")
	c.mResolves = reg.Counter("cluster_resolves_total", "Session placement requests served.")
	c.mNoCapacity = reg.Counter("cluster_no_capacity_total", "Placements refused for lack of admissible capacity.")
	const opsHelp = "Registry operations applied, by op (shard-local)."
	c.mOpRegister = reg.Counter("cluster_shard_ops_total", opsHelp, metrics.L("op", "register"))
	c.mOpDeregister = reg.Counter("cluster_shard_ops_total", opsHelp, metrics.L("op", "deregister"))
	c.mOpResolve = reg.Counter("cluster_shard_ops_total", opsHelp, metrics.L("op", "resolve"))
	c.mOpEndSession = reg.Counter("cluster_shard_ops_total", opsHelp, metrics.L("op", "end_session"))
	c.mOpDeltaBatch = reg.Counter("cluster_shard_ops_total", opsHelp, metrics.L("op", "delta_batch"))
	heartbeatOps := reg.Counter("cluster_shard_ops_total", opsHelp, metrics.L("op", "heartbeat"))
	c.mBatchSize = reg.Histogram("cluster_delta_batch_size", "Entries per heartbeat delta batch.")
	c.mPlaceLatency = reg.Histogram("cluster_placement_latency_seconds",
		"Wall time per placement decision (Resolve).")
	c.wInst = wire.NewInstruments(reg)
	// Per-state gauges are maintained incrementally from here on; seed them
	// (and the hot-counter sinks) with the current registry contents.
	var alive, suspect, dead float64
	for _, ns := range c.nshards {
		ns.mu.Lock()
		for id := range ns.nodes {
			switch st, _ := ns.det.State(id); st {
			case StateAlive:
				alive++
			case StateSuspect:
				suspect++
			case StateDead:
				dead++
			}
		}
		ns.pendBeats = pending{sink: c.mHeartbeats}
		ns.pendBeatOp = pending{sink: heartbeatOps}
		ns.adm.EnableMetrics(reg)
		ns.mu.Unlock()
	}
	c.mNodesAlive.Set(alive)
	c.mNodesSuspect.Set(suspect)
	c.mNodesDead.Set(dead)
	c.mSessions.Set(float64(c.nSessions.Load()))
}

// gaugeFor maps a detector state to its cluster_nodes gauge.
func (c *Coordinator) gaugeFor(st NodeState) *metrics.Gauge {
	switch st {
	case StateAlive:
		return c.mNodesAlive
	case StateSuspect:
		return c.mNodesSuspect
	default:
		return c.mNodesDead
	}
}

// releaseNodeLocked releases every reservation placed on n and returns
// the orphan refs so the caller can detach the session records once the
// shard lock is dropped; callers hold the node shard's lock.
func releaseNodeLocked(n *node) []orphanRef {
	if len(n.resv) == 0 {
		return nil
	}
	orphans := make([]orphanRef, 0, len(n.resv))
	for sid, res := range n.resv {
		res.Release()
		orphans = append(orphans, orphanRef{sid: sid, res: res})
	}
	n.resv = make(map[string]*scheduler.Reservation)
	return orphans
}

// detachSessions marks orphaned sessions for failover. Called with no
// locks held; each session record is detached only if it still points at
// the released reservation, so a placement that already moved the session
// elsewhere is left alone.
func (c *Coordinator) detachSessions(orphans []orphanRef) {
	for _, o := range orphans {
		ss := c.sessionShardFor(o.sid)
		ss.mu.Lock()
		if s := ss.sessions[o.sid]; s != nil && s.res == o.res {
			s.res = nil
			s.nodeID = ""
		}
		ss.mu.Unlock()
	}
}

// Register admits a node into the registry (or re-admits a restarted or
// previously dead one — the rejoin path). Re-registration orphans any
// sessions still placed on the node: their reservations are released and
// their next resolve is treated as a failover.
func (c *Coordinator) Register(info NodeInfo) error {
	if info.ID == "" || info.Addr == "" {
		return fmt.Errorf("cluster: registration needs id and addr")
	}
	if info.CPU <= 0 || info.CPU > 1 {
		return fmt.Errorf("cluster: node %q declares CPU share %g outside (0,1]", info.ID, info.CPU)
	}
	mem := info.MemBytes
	if mem <= 0 {
		mem = 512 << 20
	}
	ns := c.nodeShardFor(info.ID)
	var orphans []orphanRef
	ns.mu.Lock()
	if old := ns.nodes[info.ID]; old != nil {
		orphans = releaseNodeLocked(old)
		ns.adm.RemoveHost(info.ID)
		if st, ok := ns.det.State(info.ID); ok {
			c.gaugeFor(st).Add(-1)
		}
		delete(ns.nodes, info.ID)
	}
	host := sandbox.NewHost(c.sim, info.ID, 1e9, sandbox.WithMemory(mem))
	if err := ns.adm.AddHost(host); err != nil {
		ns.mu.Unlock()
		c.detachSessions(orphans)
		return err
	}
	// The sandbox layer always admits up to MaxReservable (1.0); a node
	// declaring less carries a placeholder reservation for the difference.
	if info.CPU < sandbox.MaxReservable {
		if _, err := host.NewSandbox("!capacity", sandbox.MaxReservable-info.CPU, 0); err != nil {
			ns.adm.RemoveHost(info.ID)
			ns.mu.Unlock()
			c.detachSessions(orphans)
			return fmt.Errorf("cluster: capacity placeholder: %w", err)
		}
	}
	ns.nodes[info.ID] = &node{
		info: info, sig: info.StoreSig(), host: host,
		resv: make(map[string]*scheduler.Reservation),
	}
	ns.det.Register(info.ID, c.cfg.Now())
	ns.mu.Unlock()
	c.mNodesAlive.Add(1)
	c.mRegistrations.Inc()
	c.mOpRegister.Inc()
	c.detachSessions(orphans)
	return nil
}

// observeLocked applies one liveness observation (a heartbeat or a delta
// entry) to a node in ns; callers hold ns.mu. It settles the per-state
// gauges when the beat revives a suspect.
func (c *Coordinator) observeLocked(ns *nodeShard, id string) bool {
	gap, prev, ok := ns.det.Observe(id, c.cfg.Now())
	if !ok {
		return false
	}
	if prev == StateSuspect {
		c.mNodesSuspect.Add(-1)
		c.mNodesAlive.Add(1)
	}
	ns.pendBeats.add(1)
	ns.pendBeatOp.add(1)
	c.mHeartbeatGap.Observe(gap.Seconds())
	return true
}

// Heartbeat renews a node's lease and records its load. It reports
// whether the coordinator knows the node: false tells the agent to
// re-register (the coordinator restarted, or the node was declared dead).
func (c *Coordinator) Heartbeat(id string, load Load) bool {
	ns := c.nodeShardFor(id)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n := ns.nodes[id]
	if n == nil || !c.observeLocked(ns, id) {
		return false
	}
	n.load = load
	return true
}

// ApplyDeltas applies one batch of coalesced heartbeat deltas: each entry
// renews its node's lease and folds the net session change into the
// node's load, shard-locally. It returns the IDs the coordinator refused
// (unknown or dead nodes) so the agent re-registers them and resends an
// absolute count. This is the in-process twin of the ctagDelta wire path
// — cmd/avis-load drives it directly.
func (c *Coordinator) ApplyDeltas(entries []DeltaEntry) (unknown []string) {
	var cur *nodeShard
	for _, e := range entries {
		ns := c.nodeShardFor(e.ID)
		if ns != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			ns.mu.Lock()
			cur = ns
		}
		if !c.applyDeltaLocked(ns, e.ID, e.Sessions) {
			unknown = append(unknown, e.ID)
		}
	}
	if cur != nil {
		cur.mu.Unlock()
	}
	c.mOpDeltaBatch.Inc()
	c.mBatchSize.Observe(float64(len(entries)))
	return unknown
}

// applyDeltaFrame is the wire twin of ApplyDeltas: it walks the binary
// frame without allocating (IDs index the registry map directly from the
// frame bytes) and answers with the refused IDs.
func (c *Coordinator) applyDeltaFrame(msg []byte) (ackMsg, error) {
	var unknown []string
	var cur *nodeShard
	count := 0
	err := forEachDelta(msg, func(id []byte, sessions int32) {
		count++
		ns := c.nshards[fnvHashBytes(id)&c.mask]
		if ns != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			ns.mu.Lock()
			cur = ns
		}
		if !c.applyDeltaLocked(ns, string(id), sessions) {
			unknown = append(unknown, string(id))
		}
	})
	if cur != nil {
		cur.mu.Unlock()
	}
	if err != nil {
		return ackMsg{}, err
	}
	c.mOpDeltaBatch.Inc()
	c.mBatchSize.Observe(float64(count))
	return ackMsg{OK: true, Unknown: unknown}, nil
}

// applyDeltaLocked applies one delta entry; callers hold ns.mu. The id is
// only used as a map key, so the zero-alloc string(bytes) lookup in the
// frame path stays zero-alloc.
func (c *Coordinator) applyDeltaLocked(ns *nodeShard, id string, sessions int32) bool {
	n := ns.nodes[id]
	if n == nil || !c.observeLocked(ns, id) {
		return false
	}
	n.load.ActiveSessions += int(sessions)
	if n.load.ActiveSessions < 0 {
		n.load.ActiveSessions = 0
	}
	return true
}

// Deregister removes a node cleanly (graceful shutdown): its sessions are
// orphaned for failover, but no death is counted.
func (c *Coordinator) Deregister(id string) {
	ns := c.nodeShardFor(id)
	ns.mu.Lock()
	n := ns.nodes[id]
	if n == nil {
		ns.mu.Unlock()
		return
	}
	orphans := releaseNodeLocked(n)
	ns.adm.RemoveHost(id)
	if st, ok := ns.det.Remove(id); ok {
		c.gaugeFor(st).Add(-1)
	}
	delete(ns.nodes, id)
	ns.mu.Unlock()
	c.mOpDeregister.Inc()
	c.detachSessions(orphans)
}

// Tick advances every shard's failure detector to Now(), applying suspect
// and death verdicts: dead nodes keep their registry entry (so the death
// is observable) but lose their host and sessions. Tick also flushes the
// shards' pending counter commits.
func (c *Coordinator) Tick() {
	now := c.cfg.Now()
	deaths := 0
	var orphans []orphanRef
	for _, ns := range c.nshards {
		ns.mu.Lock()
		for _, tr := range ns.det.Tick(now) {
			c.gaugeFor(tr.From).Add(-1)
			c.gaugeFor(tr.To).Add(1)
			if tr.To != StateDead {
				continue
			}
			deaths++
			if n := ns.nodes[tr.ID]; n != nil {
				orphans = append(orphans, releaseNodeLocked(n)...)
			}
			ns.adm.RemoveHost(tr.ID)
		}
		ns.pendBeats.flush()
		ns.pendBeatOp.flush()
		ns.mu.Unlock()
	}
	if deaths > 0 {
		c.mNodeDeaths.Add(float64(deaths))
	}
	c.detachSessions(orphans)
}

// StartTicker pumps Tick every interval on a background goroutine until
// the returned stop function is called.
func (c *Coordinator) StartTicker(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// cand is one placement candidate gathered under a shard read lock.
type cand struct {
	id       string
	shard    int
	edge     bool
	reserved float64
	sessions int
}

// gatherCandidates collects alive nodes matching the request under shard
// read locks. With limit > 0 the scan stops once limit candidates are
// collected, starting from a rotating shard so the sample is not biased
// toward low shards; complete reports whether every node was considered
// (always true for clusters that fit inside the limit).
func (c *Coordinator) gatherCandidates(req *ResolveRequest, excluded map[string]bool, limit int) (cands []cand, complete bool) {
	n := len(c.nshards)
	start := int(c.rot.Add(1)) % n
	complete = true
	for i := 0; i < n; i++ {
		si := (start + i) % n
		ns := c.nshards[si]
		ns.mu.RLock()
		for id, nd := range ns.nodes {
			if st, _ := ns.det.State(id); st != StateAlive {
				continue
			}
			if excluded[id] || (req.Sig != "" && nd.sig != req.Sig) {
				continue
			}
			edge := nd.info.Role == RoleEdge
			if edge && !req.Coarse {
				// Fine-level traffic streams through an edge uncached; keep it
				// off the cache tier entirely.
				continue
			}
			cands = append(cands, cand{
				id: id, shard: si, edge: edge,
				reserved: nd.host.Reserved() / nd.info.CPU,
				sessions: nd.load.ActiveSessions,
			})
			if limit > 0 && len(cands) >= limit {
				complete = false
				break
			}
		}
		ns.mu.RUnlock()
		if limit > 0 && len(cands) >= limit {
			// Unvisited shards (or the rest of this one) may hold better
			// candidates; the caller knows the sample is partial.
			break
		}
	}
	return cands, complete
}

// sortCands orders candidates best-first. Coarse sessions prefer any warm
// edge over any origin; when the edges are excluded (failed) or absent,
// origins still serve, so a cache-tier outage degrades to direct
// delivery, never to refusal.
func sortCands(cands []cand) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].edge != cands[j].edge {
			return cands[i].edge
		}
		if cands[i].reserved != cands[j].reserved {
			return cands[i].reserved < cands[j].reserved
		}
		if cands[i].sessions != cands[j].sessions {
			return cands[i].sessions < cands[j].sessions
		}
		return cands[i].id < cands[j].id
	})
}

// tryPlace attempts the admission reservation on one candidate,
// re-verifying under the node shard's write lock that the node is still
// present and alive (the candidate was gathered under a read lock that
// has since been dropped).
func (c *Coordinator) tryPlace(cd *cand, sid string, want resource.Vector) (ResolveGrant, *scheduler.Reservation, bool) {
	ns := c.nshards[cd.shard]
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n := ns.nodes[cd.id]
	if n == nil {
		return ResolveGrant{}, nil, false
	}
	if st, _ := ns.det.State(cd.id); st != StateAlive {
		return ResolveGrant{}, nil, false
	}
	res, err := ns.adm.ReservePlaced("sess:"+sid, []scheduler.Placement{
		{Component: "avis", Host: cd.id, Want: want},
	})
	if err != nil {
		return ResolveGrant{}, nil, false
	}
	n.resv[sid] = res
	return ResolveGrant{NodeID: cd.id, Addr: n.info.Addr, Sig: n.sig}, res, true
}

// releasePlacement drops a session's reservation under its node's shard
// lock (reservation state lives on the node's host, which that lock
// owns). The node may already be gone or re-registered; the release is
// idempotent and stale resv entries are left for the new owner.
func (c *Coordinator) releasePlacement(nodeID, sid string, res *scheduler.Reservation) {
	ns := c.nodeShardFor(nodeID)
	ns.mu.Lock()
	if n := ns.nodes[nodeID]; n != nil && n.resv[sid] == res {
		delete(n.resv, sid)
	}
	res.Release()
	ns.mu.Unlock()
}

// Resolve places (or re-places) a session onto an alive node: candidates
// matching the requested store signature are tried least-reserved-share
// first, and the first node whose admission control accepts the session's
// demand wins — all-or-nothing per Section 6.2, so an over-committed node
// never silently absorbs a session it cannot police. A request for a
// session the coordinator has already seen counts as a failover.
//
// The session shard's lock is held for the whole placement (serializing
// same-session resolves); node shards are only touched briefly — shared
// for the candidate scan, exclusive per admission attempt.
func (c *Coordinator) Resolve(req ResolveRequest) (ResolveGrant, error) {
	if req.SID == "" {
		return ResolveGrant{}, fmt.Errorf("cluster: resolve needs a session id")
	}
	share := req.CPU
	if share <= 0 {
		share = DefaultSessionShare
	}
	start := time.Now()
	defer func() {
		c.mPlaceLatency.Observe(time.Since(start).Seconds())
	}()
	c.mResolves.Inc()
	c.mOpResolve.Inc()

	ss := c.sessionShardFor(req.SID)
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sess := ss.sessions[req.SID]
	failover := false
	if sess != nil {
		failover = sess.placed
		if sess.res != nil {
			c.releasePlacement(sess.nodeID, req.SID, sess.res)
			sess.res = nil
		}
		sess.nodeID = ""
	} else {
		sess = &session{id: req.SID}
		ss.sessions[req.SID] = sess
		c.mSessions.Set(float64(c.nSessions.Add(1)))
	}

	excluded := make(map[string]bool, len(req.Exclude))
	for _, id := range req.Exclude {
		excluded[id] = true
	}
	want := resource.Vector{resource.CPU: share}
	if req.MemBytes > 0 {
		want[resource.Memory] = float64(req.MemBytes)
	}

	sawAny := false
	limit := placeSample
	for {
		cands, complete := c.gatherCandidates(&req, excluded, limit)
		sawAny = sawAny || len(cands) > 0
		sortCands(cands)
		for i := range cands {
			grant, res, ok := c.tryPlace(&cands[i], req.SID, want)
			if !ok {
				continue
			}
			sess.nodeID = grant.NodeID
			sess.res = res
			sess.placed = true
			if failover {
				c.mFailovers.Inc()
			}
			grant.Failover = failover
			return grant, nil
		}
		if complete {
			break
		}
		limit = 0 // sampled scan found nothing admissible: one exhaustive pass
	}
	c.mNoCapacity.Inc()
	if !sawAny {
		return ResolveGrant{}, fmt.Errorf("cluster: no alive node matches the request")
	}
	return ResolveGrant{}, fmt.Errorf("cluster: no node admits the session demand (cpu %.2f)", share)
}

// EndSession releases a session's reservation (client hung up cleanly).
func (c *Coordinator) EndSession(sid string) {
	ss := c.sessionShardFor(sid)
	ss.mu.Lock()
	if s := ss.sessions[sid]; s != nil {
		if s.res != nil {
			c.releasePlacement(s.nodeID, sid, s.res)
		}
		delete(ss.sessions, sid)
		c.mSessions.Set(float64(c.nSessions.Add(-1)))
	}
	ss.mu.Unlock()
	c.mOpEndSession.Inc()
}

// Nodes lists the registry, sorted by node ID. Shards are read-locked one
// at a time, so the listing is per-shard consistent, not a global
// snapshot — the price of not stopping the world at fleet scale.
func (c *Coordinator) Nodes() []NodeStatus {
	var out []NodeStatus
	for _, ns := range c.nshards {
		ns.mu.RLock()
		for id, n := range ns.nodes {
			st, _ := ns.det.State(id)
			reserved := 0.0
			if st != StateDead {
				reserved = n.host.Reserved() - (sandbox.MaxReservable - n.info.CPU)
				if reserved < 0 {
					reserved = 0
				}
			}
			out = append(out, NodeStatus{
				ID:          id,
				Addr:        n.info.Addr,
				Role:        n.info.Role,
				State:       st.String(),
				Sig:         n.sig,
				Load:        n.load,
				CPU:         n.info.CPU,
				ReservedCPU: reserved,
				Sessions:    len(n.resv),
				Incarnation: ns.det.Incarnation(id),
			})
		}
		ns.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetPerfStore installs the shared live performance store: nodes push
// telemetry samples over the control plane, the coordinator folds them
// into refined per-configuration profiles, and clients fetch those
// overlays to correct their local models. Nil uninstalls (perf requests
// are refused). The coordinator owns folding but not the store's
// lifetime — the caller closes it after Shutdown.
func (c *Coordinator) SetPerfStore(ps *perfstore.PerfStore) {
	c.perfMu.Lock()
	c.perf = ps
	c.perfMu.Unlock()
}

// PerfStore returns the installed shared performance store (nil if none).
func (c *Coordinator) PerfStore() *perfstore.PerfStore {
	c.perfMu.RLock()
	defer c.perfMu.RUnlock()
	return c.perf
}

// IngestSamples feeds a batch of wire-format telemetry samples into the
// shared performance store, returning how many parsed and were queued.
// Samples that fail to parse (unknown configuration, bad metric names)
// are skipped, not fatal: one misbehaving node must not poison a batch.
func (c *Coordinator) IngestSamples(samples []perfstore.WireSample) (int, error) {
	ps := c.PerfStore()
	if ps == nil {
		return 0, fmt.Errorf("no performance store installed")
	}
	n := 0
	for i := range samples {
		s, err := perfstore.FromWire(ps.App(), samples[i])
		if err != nil {
			continue
		}
		ps.Offer(s)
		n++
	}
	return n, nil
}

// PerfProfile returns the refined overlay for a configuration key from
// the shared performance store. Pending samples are flushed first so a
// fetch right after an ingest observes its own writes.
func (c *Coordinator) PerfProfile(configKey string) (*perfstore.Profile, error) {
	ps := c.PerfStore()
	if ps == nil {
		return nil, fmt.Errorf("no performance store installed")
	}
	ps.Flush()
	p, err := ps.Store().Load(configKey)
	if err == perfstore.ErrNotFound {
		return nil, fmt.Errorf("no refined profile for %q", configKey)
	}
	return p, err
}

// Serve accepts control connections until the listener closes, handling
// each in its own goroutine. After Shutdown it returns net.ErrClosed.
func (c *Coordinator) Serve(l net.Listener) error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return net.ErrClosed
	}
	c.listeners = append(c.listeners, l)
	c.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		c.connMu.Lock()
		if c.closed {
			c.connMu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.connMu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				c.connMu.Lock()
				delete(c.conns, conn)
				c.connMu.Unlock()
				c.wg.Done()
			}()
			c.handle(conn)
		}()
	}
}

// handle services one control connection: a loop of request frames, each
// answered with an ack frame. A version probe upgrades the connection to
// v2 framing with schema-coded bodies (unless Config.WireV1 pins it, in
// which case the probe falls into dispatch's unknown-tag refusal — the
// pre-v2 behavior callers key their fallback on).
func (c *Coordinator) handle(conn net.Conn) {
	wc := wire.NewConn(conn, c.cfg.IOTimeout)
	wc.SetInstruments(c.wInst)
	for {
		msg, err := wc.ReadMsg()
		if err != nil {
			return
		}
		if wire.IsNegotiate(msg) && !c.cfg.WireV1 {
			err := wc.AcceptV2(msg, wire.CapSchemaCtrl)
			bufpool.Put(msg)
			if err != nil {
				return
			}
			continue
		}
		schema := wc.Caps()&wire.CapSchemaCtrl != 0
		var ack ackMsg
		if schema {
			ack = c.dispatchV2(msg)
		} else {
			ack = c.dispatch(msg)
		}
		bufpool.Put(msg)
		var reply []byte
		if schema {
			reply, err = encodeAckV2(bufpool.Get(512)[:0], &ack)
			if err != nil {
				bufpool.Put(reply)
				return
			}
		} else {
			reply = encodeCtrl(ctagAck, ack)
		}
		werr := wc.WriteMsg(reply)
		if schema {
			bufpool.Put(reply)
		}
		if werr != nil {
			return
		}
	}
}

// dispatchV2 is dispatch for schema-coded bodies: the same tag switch
// and registry calls, decoding with the runtime-interpreted schemas.
// The binary delta batch is shared between modes.
func (c *Coordinator) dispatchV2(msg []byte) ackMsg {
	refuse := func(err error) ackMsg { return ackMsg{Err: err.Error()} }
	if len(msg) == 0 {
		return refuse(fmt.Errorf("empty frame"))
	}
	body := msg[1:]
	switch msg[0] {
	case ctagRegister:
		info, err := decodeRegisterV2(body)
		if err != nil {
			return refuse(err)
		}
		if err := c.Register(info); err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true}
	case ctagHeartbeat:
		hb, err := decodeHeartbeatV2(body)
		if err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Known: c.Heartbeat(hb.ID, hb.Load)}
	case ctagDelta:
		ack, err := c.applyDeltaFrame(msg)
		if err != nil {
			return refuse(err)
		}
		return ack
	case ctagDeregister:
		m, err := decodeNodeIDV2(body)
		if err != nil {
			return refuse(err)
		}
		c.Deregister(m.ID)
		return ackMsg{OK: true}
	case ctagResolve:
		req, err := decodeResolveV2(body)
		if err != nil {
			return refuse(err)
		}
		grant, err := c.Resolve(req)
		if err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Grant: grant}
	case ctagEndSession:
		m, err := decodeSessionV2(body)
		if err != nil {
			return refuse(err)
		}
		c.EndSession(m.SID)
		return ackMsg{OK: true}
	case ctagNodes:
		return ackMsg{OK: true, Nodes: c.Nodes()}
	case ctagPerfIngest:
		m, err := decodePerfIngestV2(body)
		if err != nil {
			return refuse(err)
		}
		n, err := c.IngestSamples(m.Samples)
		if err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Accepted: n}
	case ctagPerfProfile:
		m, err := decodePerfProfileV2(body)
		if err != nil {
			return refuse(err)
		}
		p, err := c.PerfProfile(m.ConfigKey)
		if err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Profile: p}
	default:
		return refuse(fmt.Errorf("unknown control tag %q", msg[0]))
	}
}

// dispatch decodes one request and applies it to the registry core.
func (c *Coordinator) dispatch(msg []byte) ackMsg {
	refuse := func(err error) ackMsg { return ackMsg{Err: err.Error()} }
	if len(msg) == 0 {
		return refuse(fmt.Errorf("empty frame"))
	}
	switch msg[0] {
	case ctagRegister:
		var info NodeInfo
		if err := decodeCtrl(msg, &info); err != nil {
			return refuse(err)
		}
		if err := c.Register(info); err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true}
	case ctagHeartbeat:
		var hb heartbeatMsg
		if err := decodeCtrl(msg, &hb); err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Known: c.Heartbeat(hb.ID, hb.Load)}
	case ctagDelta:
		ack, err := c.applyDeltaFrame(msg)
		if err != nil {
			return refuse(err)
		}
		return ack
	case ctagDeregister:
		var m nodeIDMsg
		if err := decodeCtrl(msg, &m); err != nil {
			return refuse(err)
		}
		c.Deregister(m.ID)
		return ackMsg{OK: true}
	case ctagResolve:
		var req ResolveRequest
		if err := decodeCtrl(msg, &req); err != nil {
			return refuse(err)
		}
		grant, err := c.Resolve(req)
		if err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Grant: grant}
	case ctagEndSession:
		var m sessionMsg
		if err := decodeCtrl(msg, &m); err != nil {
			return refuse(err)
		}
		c.EndSession(m.SID)
		return ackMsg{OK: true}
	case ctagNodes:
		return ackMsg{OK: true, Nodes: c.Nodes()}
	case ctagPerfIngest:
		var m perfIngestMsg
		if err := decodeCtrl(msg, &m); err != nil {
			return refuse(err)
		}
		n, err := c.IngestSamples(m.Samples)
		if err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Accepted: n}
	case ctagPerfProfile:
		var m perfProfileMsg
		if err := decodeCtrl(msg, &m); err != nil {
			return refuse(err)
		}
		p, err := c.PerfProfile(m.ConfigKey)
		if err != nil {
			return refuse(err)
		}
		return ackMsg{OK: true, Profile: p}
	default:
		return refuse(fmt.Errorf("unknown control tag %q", msg[0]))
	}
}

// Shutdown stops the control plane: it closes every listener passed to
// Serve and every open control connection, then waits up to timeout for
// the handlers to unwind.
func (c *Coordinator) Shutdown(timeout time.Duration) {
	c.connMu.Lock()
	c.closed = true
	for _, l := range c.listeners {
		_ = l.Close()
	}
	c.listeners = nil
	for conn := range c.conns {
		_ = conn.Close()
	}
	c.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
}
