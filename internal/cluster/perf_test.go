package cluster

import (
	"net"
	"strings"
	"testing"
	"time"

	"tunable/internal/avis"
	"tunable/internal/perfstore"
)

// TestCoordinatorSharedPerfStore drives the telemetry loop over the
// control plane: a node publishes wire samples, the coordinator folds
// them into its shared performance store, and a client fetches the
// refined overlay back.
func TestCoordinatorSharedPerfStore(t *testing.T) {
	coord := NewCoordinator(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go coord.Serve(ln)
	defer coord.Shutdown(time.Second)

	r := NewResolver(ln.Addr().String(), time.Second)
	defer r.Close()

	sample := func(key string, transmit float64) perfstore.WireSample {
		return perfstore.WireSample{
			Config:    key,
			Resources: map[string]float64{"cpu": 0.5, "bandwidth": 100e3},
			Metrics:   map[string]float64{"transmit_time": transmit},
			Source:    "test-node",
		}
	}

	// Without an installed store, perf requests are refused outright.
	if _, err := r.PublishSamples([]perfstore.WireSample{sample("c=bzw,dR=320,l=2", 3)}); err == nil ||
		!strings.Contains(err.Error(), "no performance store") {
		t.Fatalf("publish without a store: err = %v, want refusal", err)
	}

	ps, err := perfstore.New(avis.Spec(), nil, perfstore.NewMemStore(), perfstore.Options{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	coord.SetPerfStore(ps)

	// A batch with one malformed sample: the good ones land, the bad one
	// is skipped without poisoning the batch.
	n, err := r.PublishSamples([]perfstore.WireSample{
		sample("c=bzw,dR=320,l=2", 3),
		sample("c=zzz,dR=320,l=2", 3), // unknown codec symbol
		sample("c=bzw,dR=320,l=2", 3.4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("accepted %d samples, want 2", n)
	}

	p, err := r.FetchProfile("c=bzw,dR=320,l=2")
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || len(p.Records) != 1 {
		t.Fatalf("fetched profile %+v, want one refined record", p)
	}
	rec := p.Records[0]
	if rec.Samples != 2 {
		t.Fatalf("record folded %d samples, want 2", rec.Samples)
	}
	got := rec.Metrics["transmit_time"]
	if got <= 3 || got >= 3.4 {
		t.Fatalf("refined transmit_time %v, want between the two observations", got)
	}

	// A configuration nothing has reported on has no overlay.
	if _, err := r.FetchProfile("c=lzw,dR=80,l=4"); err == nil ||
		!strings.Contains(err.Error(), "no refined profile") {
		t.Fatalf("fetch of unreported config: err = %v, want refusal", err)
	}
}
