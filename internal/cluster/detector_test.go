package cluster

import (
	"testing"
	"time"
)

// The failure-detection state machine, driven entirely by an injected
// clock — no real sleeps anywhere in this file.

func TestDetectorLifecycle(t *testing.T) {
	d := NewDetector(100*time.Millisecond, 300*time.Millisecond)
	now := time.Duration(0)
	inc := d.Register("n1", now)
	if inc != 1 {
		t.Fatalf("first incarnation %d", inc)
	}
	if st, ok := d.State("n1"); !ok || st != StateAlive {
		t.Fatalf("state after register: %v %v", st, ok)
	}

	// Regular heartbeats keep it alive.
	for i := 0; i < 5; i++ {
		now += 50 * time.Millisecond
		if gap, prev, ok := d.Observe("n1", now); !ok || gap != 50*time.Millisecond || prev != StateAlive {
			t.Fatalf("beat %d: gap %v prev %v ok %v", i, gap, prev, ok)
		}
		if trs := d.Tick(now); len(trs) != 0 {
			t.Fatalf("spurious transitions %v", trs)
		}
	}

	// Silence past the suspect deadline.
	now += 150 * time.Millisecond
	trs := d.Tick(now)
	if len(trs) != 1 || trs[0].To != StateSuspect || trs[0].From != StateAlive {
		t.Fatalf("suspect transition %v", trs)
	}
	if st, _ := d.State("n1"); st != StateSuspect {
		t.Fatalf("state %v", st)
	}

	// A heartbeat revives a suspect (and reports the pre-beat state so the
	// coordinator can settle its per-state gauges incrementally).
	if _, prev, ok := d.Observe("n1", now); !ok || prev != StateSuspect {
		t.Fatalf("suspect heartbeat: prev %v ok %v", prev, ok)
	}
	if st, _ := d.State("n1"); st != StateAlive {
		t.Fatal("heartbeat did not revive suspect")
	}

	// Silence past the death deadline: suspect first, then dead.
	now += 120 * time.Millisecond
	d.Tick(now)
	now += 200 * time.Millisecond
	trs = d.Tick(now)
	if len(trs) != 1 || trs[0].To != StateDead || trs[0].From != StateSuspect {
		t.Fatalf("death transition %v", trs)
	}

	// Dead nodes refuse heartbeats — only re-registration resurrects.
	if _, _, ok := d.Observe("n1", now); ok {
		t.Fatal("dead node accepted a heartbeat")
	}
	if st, _ := d.State("n1"); st != StateDead {
		t.Fatal("heartbeat resurrected the dead")
	}
	if inc := d.Register("n1", now); inc != 2 {
		t.Fatalf("rejoin incarnation %d", inc)
	}
	if st, _ := d.State("n1"); st != StateAlive {
		t.Fatal("rejoin did not revive")
	}
	if d.Incarnation("n1") != 2 {
		t.Fatalf("incarnation %d", d.Incarnation("n1"))
	}
}

func TestDetectorStraightToDead(t *testing.T) {
	// A Tick far past both deadlines jumps alive → dead in one step (the
	// coordinator was wedged, not the node — still a death verdict).
	d := NewDetector(100*time.Millisecond, 300*time.Millisecond)
	d.Register("n1", 0)
	trs := d.Tick(time.Second)
	if len(trs) != 1 || trs[0].To != StateDead || trs[0].From != StateAlive {
		t.Fatalf("transitions %v", trs)
	}
}

func TestDetectorTickNeverRevives(t *testing.T) {
	d := NewDetector(100*time.Millisecond, 300*time.Millisecond)
	d.Register("n1", 0)
	d.Tick(150 * time.Millisecond) // suspect
	// A Tick with a fresh-enough age must not move suspect back to alive.
	if trs := d.Tick(150 * time.Millisecond); len(trs) != 0 {
		t.Fatalf("transitions %v", trs)
	}
	if st, _ := d.State("n1"); st != StateSuspect {
		t.Fatalf("state %v", st)
	}
}

func TestDetectorUnknownAndRemove(t *testing.T) {
	d := NewDetector(0, 0) // defaults kick in
	if _, _, ok := d.Observe("ghost", 0); ok {
		t.Fatal("unknown node accepted")
	}
	if _, ok := d.State("ghost"); ok {
		t.Fatal("unknown node has state")
	}
	d.Register("n1", 0)
	d.Remove("n1")
	if _, ok := d.State("n1"); ok {
		t.Fatal("removed node has state")
	}
	if len(d.Tick(time.Hour)) != 0 {
		t.Fatal("removed node transitioned")
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(50*time.Millisecond, 10*time.Millisecond) // dead ≤ suspect: fixed up
	d.Register("n1", 0)
	trs := d.Tick(75 * time.Millisecond)
	if len(trs) != 1 || trs[0].To != StateSuspect {
		t.Fatalf("transitions %v", trs)
	}
	trs = d.Tick(120 * time.Millisecond) // 2×suspect
	if len(trs) != 1 || trs[0].To != StateDead {
		t.Fatalf("transitions %v", trs)
	}
}
