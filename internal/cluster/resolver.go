package cluster

import (
	"time"

	"tunable/internal/metrics"
	"tunable/internal/perfstore"
)

// Resolver is the client-side stub of the coordinator: it turns a session
// ID into a server address, reporting failed nodes back so re-resolution
// steers around them, and releases the session's reservation on Close.
// Transport failures on control calls are retried transparently with
// jittered backoff (see SetRetryPolicy); coordinator refusals are not.
type Resolver struct {
	cl *client
}

// NewResolver creates a resolver for the coordinator at addr. timeout
// bounds each control call (dial + frame progress); 0 picks 5s.
func NewResolver(addr string, timeout time.Duration) *Resolver {
	return &Resolver{cl: newClient(addr, timeout)}
}

// EnableMetrics instruments the resolver: cluster_ctrl_retries_total
// (role="resolver") counts transparently retried control calls.
func (r *Resolver) EnableMetrics(reg *metrics.Registry) {
	r.cl.mu.Lock()
	defer r.cl.mu.Unlock()
	r.cl.mRetries = reg.Counter("cluster_ctrl_retries_total",
		"Control-plane calls transparently retried after a transport failure.",
		metrics.L("role", "resolver"))
}

// SetRetryPolicy bounds the transparent retries under each control call.
func (r *Resolver) SetRetryPolicy(attempts int, b Backoff, budget *RetryBudget) {
	r.cl.setRetryPolicy(attempts, b, budget)
}

// SetDialer interposes on control-plane dials (fault injection).
func (r *Resolver) SetDialer(dial DialFunc) { r.cl.setDialer(dial) }

// SetWireV1 pins the resolver's control connections to v1 framing and
// JSON bodies, as a pre-v2 build would speak (mixed-version rollouts,
// tests).
func (r *Resolver) SetWireV1(v bool) { r.cl.setWireV1(v) }

// Resolve asks the coordinator to place the session.
func (r *Resolver) Resolve(req ResolveRequest) (ResolveGrant, error) {
	ack, err := r.cl.call(ctrlReq{
		js: func() []byte { return encodeCtrl(ctagResolve, req) },
		v2: func(buf []byte) ([]byte, error) { return encodeResolveV2(buf, req) },
	})
	if err != nil {
		return ResolveGrant{}, err
	}
	return ack.Grant, nil
}

// EndSession releases the session's reservation on the coordinator.
func (r *Resolver) EndSession(sid string) error {
	_, err := r.cl.call(ctrlReq{
		js: func() []byte { return encodeCtrl(ctagEndSession, sessionMsg{SID: sid}) },
		v2: func(buf []byte) ([]byte, error) { return encodeSessionV2(buf, sid) },
	})
	return err
}

// PublishSamples pushes telemetry samples into the coordinator's shared
// performance store, returning how many were accepted for ingest.
func (r *Resolver) PublishSamples(samples []perfstore.WireSample) (int, error) {
	ack, err := r.cl.call(ctrlReq{
		js: func() []byte { return encodeCtrl(ctagPerfIngest, perfIngestMsg{Samples: samples}) },
		v2: func(buf []byte) ([]byte, error) { return encodePerfIngestV2(buf, samples) },
	})
	if err != nil {
		return 0, err
	}
	return ack.Accepted, nil
}

// FetchProfile retrieves the refined overlay for a configuration key from
// the coordinator's shared performance store.
func (r *Resolver) FetchProfile(configKey string) (*perfstore.Profile, error) {
	ack, err := r.cl.call(ctrlReq{
		js: func() []byte { return encodeCtrl(ctagPerfProfile, perfProfileMsg{ConfigKey: configKey}) },
		v2: func(buf []byte) ([]byte, error) { return encodePerfProfileV2(buf, configKey) },
	})
	if err != nil {
		return nil, err
	}
	return ack.Profile, nil
}

// Nodes fetches the coordinator's registry view.
func (r *Resolver) Nodes() ([]NodeStatus, error) {
	ack, err := r.cl.call(ctrlReq{
		js: func() []byte { return encodeCtrl(ctagNodes, struct{}{}) },
		v2: encodeNodesV2,
	})
	if err != nil {
		return nil, err
	}
	return ack.Nodes, nil
}

// Close releases the control connection.
func (r *Resolver) Close() { r.cl.close() }
