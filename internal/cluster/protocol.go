package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tunable/internal/avis"
	"tunable/internal/bufpool"
	"tunable/internal/metrics"
	"tunable/internal/perfstore"
	"tunable/internal/wire"
)

// Control-plane wire protocol: each message is one avis frame whose first
// byte is a type tag and whose remainder is JSON. The control plane runs
// at heartbeat rate, not data rate, so self-describing bodies win over
// hand-packed binary; the framing and timeout discipline stay shared with
// the data plane (a wedged coordinator surfaces as avis.ErrIOTimeout).
const (
	ctagRegister    = 'g' // agent → coord: NodeInfo
	ctagHeartbeat   = 'b' // agent → coord: heartbeatMsg
	ctagDelta       = 'D' // agent → coord: binary delta batch (see delta.go)
	ctagDeregister  = 'd' // agent → coord: nodeIDMsg (clean leave)
	ctagResolve     = 'v' // client → coord: ResolveRequest
	ctagEndSession  = 'e' // client → coord: sessionMsg
	ctagNodes       = 'n' // anyone → coord: registry listing
	ctagPerfIngest  = 'p' // agent/server → coord: perfIngestMsg (telemetry samples)
	ctagPerfProfile = 'q' // anyone → coord: perfProfileMsg (refined profile fetch)
	ctagAck         = 'a' // coord → caller: ackMsg
)

type heartbeatMsg struct {
	ID   string `json:"id"`
	Load Load   `json:"load"`
}

type nodeIDMsg struct {
	ID string `json:"id"`
}

type sessionMsg struct {
	SID string `json:"sid"`
}

// perfIngestMsg carries a batch of live telemetry samples from a node to
// the coordinator's shared performance store.
type perfIngestMsg struct {
	Samples []perfstore.WireSample `json:"samples"`
}

// perfProfileMsg asks for the refined overlay of one configuration.
type perfProfileMsg struct {
	ConfigKey string `json:"config"`
}

// ResolveRequest asks the coordinator to place (or re-place) a session.
type ResolveRequest struct {
	SID     string   `json:"sid"`
	Exclude []string `json:"exclude,omitempty"` // nodes the client saw fail
	// Per-session resource demand for admission control; CPU ≤ 0 takes
	// DefaultSessionShare, MemBytes 0 reserves no explicit memory.
	CPU      float64 `json:"cpu,omitempty"`
	MemBytes int64   `json:"mem,omitempty"`
	// Sig pins the session to nodes serving this image store ("" = any).
	Sig string `json:"sig,omitempty"`
	// Coarse marks a session that mostly fetches coarse pyramid levels —
	// the cache-friendly traffic class. Edge nodes become eligible and are
	// preferred; without it only origin servers are considered.
	Coarse bool `json:"coarse,omitempty"`
}

// ResolveGrant is the coordinator's placement answer.
type ResolveGrant struct {
	NodeID   string `json:"node"`
	Addr     string `json:"addr"`
	Sig      string `json:"sig"`
	Failover bool   `json:"failover"` // true when this re-placed an existing session
}

// ackMsg is the single coordinator reply shape; fields beyond OK/Err are
// populated per request type.
type ackMsg struct {
	OK    bool         `json:"ok"`
	Err   string       `json:"err,omitempty"`
	Known bool         `json:"known,omitempty"` // heartbeat: node is registered and not dead
	Grant ResolveGrant `json:"grant,omitempty"`
	Nodes []NodeStatus `json:"nodes,omitempty"`
	// Unknown echoes the delta-batch entries the coordinator refused
	// (unknown or dead nodes); the agent re-registers them.
	Unknown []string `json:"unknown,omitempty"`
	// Accepted is how many samples of a perf-ingest batch parsed and were
	// queued (the outlier filter runs later, at fold time).
	Accepted int `json:"accepted,omitempty"`
	// Profile is the refined overlay answering a perf-profile fetch.
	Profile *perfstore.Profile `json:"profile,omitempty"`
}

// encodeCtrl renders tag + JSON body. Marshalling these closed types
// cannot fail; a panic here is a programming error, not a runtime case.
func encodeCtrl(tag byte, v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cluster: encode %c: %v", tag, err))
	}
	return append([]byte{tag}, body...)
}

// decodeCtrl unmarshals a frame body (everything after the tag).
func decodeCtrl(msg []byte, v any) error {
	if len(msg) < 1 {
		return fmt.Errorf("cluster: empty control frame")
	}
	if err := json.Unmarshal(msg[1:], v); err != nil {
		return fmt.Errorf("cluster: malformed %c frame: %w", msg[0], err)
	}
	return nil
}

// ctrlReq describes one control request in both wire encodings, so the
// frame is rendered only after a connection — with its negotiated
// capability set — is in hand: raw is a pre-rendered frame valid in
// either mode (the binary delta batch); otherwise js renders the JSON
// form and v2 the schema form (appending to a pooled buffer).
type ctrlReq struct {
	raw []byte
	js  func() []byte
	v2  func(buf []byte) ([]byte, error)
}

// ctrlConn is one request/reply control-plane connection. Calls are
// serialized; both the agent and the resolver keep one alive and redial
// lazily on failure. schema records whether version negotiation granted
// wire.CapSchemaCtrl — the body encoding both sides will use.
type ctrlConn struct {
	conn   net.Conn
	wc     *wire.Conn
	schema bool
}

// newCtrlConn wraps a dialed connection and negotiates the wire version
// (unless pinned to v1). An old coordinator answers the probe with a
// JSON refusal ack; the probe logic consumes it and stays on v1+JSON.
func newCtrlConn(conn net.Conn, timeout time.Duration, wireV1 bool) (*ctrlConn, error) {
	cc := &ctrlConn{conn: conn, wc: wire.NewConn(conn, timeout)}
	if !wireV1 {
		if err := cc.wc.StartClient(wire.CapSchemaCtrl); err != nil {
			_ = conn.Close()
			return nil, avis.WrapTimeout("negotiate", timeout, err)
		}
		cc.schema = cc.wc.Caps()&wire.CapSchemaCtrl != 0
	}
	return cc, nil
}

// dialCtrl connects to the coordinator. timeout bounds the dial and, when
// positive, becomes the per-frame progress deadline of every later call.
func dialCtrl(addr string, timeout time.Duration, wireV1 bool) (*ctrlConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial coordinator %s: %w", addr, err)
	}
	return newCtrlConn(conn, timeout, wireV1)
}

// call renders the request in this connection's negotiated encoding,
// sends it, and decodes the coordinator's ack. An ack with OK=false is
// returned as an error.
func (c *ctrlConn) call(req ctrlReq, timeout time.Duration) (ackMsg, error) {
	frame := req.raw
	if frame == nil {
		if c.schema {
			var err error
			frame, err = req.v2(bufpool.Get(256)[:0])
			if err != nil {
				return ackMsg{}, err
			}
			defer bufpool.Put(frame)
		} else {
			frame = req.js()
		}
	}
	if err := c.wc.WriteMsg(frame); err != nil {
		return ackMsg{}, avis.WrapTimeout("write", timeout, err)
	}
	msg, err := c.wc.ReadMsg()
	if err != nil {
		return ackMsg{}, avis.WrapTimeout("read", timeout, err)
	}
	defer bufpool.Put(msg)
	if len(msg) < 1 || msg[0] != ctagAck {
		return ackMsg{}, fmt.Errorf("cluster: unexpected reply frame")
	}
	var ack ackMsg
	if c.schema {
		if ack, err = decodeAckV2(msg[1:]); err != nil {
			return ackMsg{}, err
		}
	} else if err := decodeCtrl(msg, &ack); err != nil {
		return ackMsg{}, err
	}
	if !ack.OK {
		return ack, fmt.Errorf("cluster: coordinator refused: %s", ack.Err)
	}
	return ack, nil
}

func (c *ctrlConn) close() {
	if c != nil {
		_ = c.conn.Close()
	}
}

// DialFunc dials the coordinator's control port; injectable so the fault
// layer (or a test) can interpose on every control-plane connection.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// maxIdleCtrl bounds how many idle control connections a client keeps
// pooled between calls.
const maxIdleCtrl = 8

// client is the shared retry loop under Agent and Resolver: a bounded
// pool of persistent connections, re-established with jittered
// exponential backoff under a retry budget when calls fail in transport.
// Application-level refusals (the coordinator answered, but said no) are
// never retried — a replacement attempt would be refused identically.
//
// mu guards only the pool and the policy fields, never a network round
// trip: concurrent callers check out separate connections (dialing fresh
// ones past the idle pool) and run their calls in parallel, so one slow
// control call no longer serializes every other caller of the same stub.
type client struct {
	addr    string
	timeout time.Duration

	mu       sync.Mutex
	idle     []*ctrlConn
	closed   bool
	dial     DialFunc
	wireV1   bool // pin new connections to v1 framing + JSON bodies
	attempts int  // per-call cap, including the first try
	backoff  Backoff
	budget   *RetryBudget
	mRetries *metrics.Counter
}

func newClient(addr string, timeout time.Duration) *client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &client{
		addr:     addr,
		timeout:  timeout,
		attempts: 2, // one transparent retry by default, as before
		backoff:  DefaultBackoff(),
	}
}

// setRetryPolicy reconfigures the per-call retry loop. attempts includes
// the first try; values below 1 are clamped to 1 (no retries).
func (c *client) setRetryPolicy(attempts int, b Backoff, budget *RetryBudget) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	c.attempts = attempts
	c.backoff = b
	c.budget = budget
}

func (c *client) setDialer(dial DialFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dial = dial
}

// setWireV1 pins every future connection to v1 framing and JSON bodies
// (no version probe on dial), speaking as a pre-v2 build would. Existing
// pooled connections are left as negotiated.
func (c *client) setWireV1(v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wireV1 = v
}

// acquire checks a connection out of the idle pool, dialing a fresh one
// when the pool is empty. The dial runs outside mu.
func (c *client) acquire(dial DialFunc, wireV1 bool) (*ctrlConn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	if dial == nil {
		return dialCtrl(c.addr, c.timeout, wireV1)
	}
	conn, err := dial("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial coordinator %s: %w", c.addr, err)
	}
	return newCtrlConn(conn, c.timeout, wireV1)
}

// release returns a healthy connection to the pool (or closes it when the
// pool is full or the client is closed).
func (c *client) release(cc *ctrlConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < maxIdleCtrl {
		c.idle = append(c.idle, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.close()
}

// call issues one request, retrying transport failures (broken pooled
// connections, failed dials, timed-out frames) under the retry policy.
// Each attempt already carries its own deadline (the dial timeout plus
// the per-frame progress deadline), so the whole call is bounded by
// attempts·(timeout+backoff).
func (c *client) call(req ctrlReq) (ackMsg, error) {
	c.mu.Lock()
	attempts, backoff, budget := c.attempts, c.backoff, c.budget
	retries, dial, wireV1 := c.mRetries, c.dial, c.wireV1
	c.mu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		cc, err := c.acquire(dial, wireV1)
		if err == nil {
			var ack ackMsg
			ack, err = cc.call(req, c.timeout)
			if err == nil {
				c.release(cc)
				return ack, nil
			}
			if ack.Err != "" {
				// The coordinator refused; the connection is fine.
				c.release(cc)
				return ack, err
			}
			cc.close()
		}
		lastErr = err
		if attempt+1 >= attempts {
			return ackMsg{}, lastErr
		}
		if !budget.Allow() {
			return ackMsg{}, lastErr
		}
		retries.Inc()
		time.Sleep(backoff.Delay(attempt))
	}
}

func (c *client) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.idle {
		cc.close()
	}
	c.idle = nil
}
