package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tunable/internal/avis"
	"tunable/internal/metrics"
	"tunable/internal/perfstore"
)

// Control-plane wire protocol: each message is one avis frame whose first
// byte is a type tag and whose remainder is JSON. The control plane runs
// at heartbeat rate, not data rate, so self-describing bodies win over
// hand-packed binary; the framing and timeout discipline stay shared with
// the data plane (a wedged coordinator surfaces as avis.ErrIOTimeout).
const (
	ctagRegister   = 'g' // agent → coord: NodeInfo
	ctagHeartbeat  = 'b' // agent → coord: heartbeatMsg
	ctagDelta      = 'D' // agent → coord: binary delta batch (see delta.go)
	ctagDeregister = 'd' // agent → coord: nodeIDMsg (clean leave)
	ctagResolve     = 'v' // client → coord: ResolveRequest
	ctagEndSession  = 'e' // client → coord: sessionMsg
	ctagNodes       = 'n' // anyone → coord: registry listing
	ctagPerfIngest  = 'p' // agent/server → coord: perfIngestMsg (telemetry samples)
	ctagPerfProfile = 'q' // anyone → coord: perfProfileMsg (refined profile fetch)
	ctagAck         = 'a' // coord → caller: ackMsg
)

type heartbeatMsg struct {
	ID   string `json:"id"`
	Load Load   `json:"load"`
}

type nodeIDMsg struct {
	ID string `json:"id"`
}

type sessionMsg struct {
	SID string `json:"sid"`
}

// perfIngestMsg carries a batch of live telemetry samples from a node to
// the coordinator's shared performance store.
type perfIngestMsg struct {
	Samples []perfstore.WireSample `json:"samples"`
}

// perfProfileMsg asks for the refined overlay of one configuration.
type perfProfileMsg struct {
	ConfigKey string `json:"config"`
}

// ResolveRequest asks the coordinator to place (or re-place) a session.
type ResolveRequest struct {
	SID     string   `json:"sid"`
	Exclude []string `json:"exclude,omitempty"` // nodes the client saw fail
	// Per-session resource demand for admission control; CPU ≤ 0 takes
	// DefaultSessionShare, MemBytes 0 reserves no explicit memory.
	CPU      float64 `json:"cpu,omitempty"`
	MemBytes int64   `json:"mem,omitempty"`
	// Sig pins the session to nodes serving this image store ("" = any).
	Sig string `json:"sig,omitempty"`
	// Coarse marks a session that mostly fetches coarse pyramid levels —
	// the cache-friendly traffic class. Edge nodes become eligible and are
	// preferred; without it only origin servers are considered.
	Coarse bool `json:"coarse,omitempty"`
}

// ResolveGrant is the coordinator's placement answer.
type ResolveGrant struct {
	NodeID   string `json:"node"`
	Addr     string `json:"addr"`
	Sig      string `json:"sig"`
	Failover bool   `json:"failover"` // true when this re-placed an existing session
}

// ackMsg is the single coordinator reply shape; fields beyond OK/Err are
// populated per request type.
type ackMsg struct {
	OK    bool         `json:"ok"`
	Err   string       `json:"err,omitempty"`
	Known bool         `json:"known,omitempty"` // heartbeat: node is registered and not dead
	Grant ResolveGrant `json:"grant,omitempty"`
	Nodes []NodeStatus `json:"nodes,omitempty"`
	// Unknown echoes the delta-batch entries the coordinator refused
	// (unknown or dead nodes); the agent re-registers them.
	Unknown []string `json:"unknown,omitempty"`
	// Accepted is how many samples of a perf-ingest batch parsed and were
	// queued (the outlier filter runs later, at fold time).
	Accepted int `json:"accepted,omitempty"`
	// Profile is the refined overlay answering a perf-profile fetch.
	Profile *perfstore.Profile `json:"profile,omitempty"`
}

// encodeCtrl renders tag + JSON body. Marshalling these closed types
// cannot fail; a panic here is a programming error, not a runtime case.
func encodeCtrl(tag byte, v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cluster: encode %c: %v", tag, err))
	}
	return append([]byte{tag}, body...)
}

// decodeCtrl unmarshals a frame body (everything after the tag).
func decodeCtrl(msg []byte, v any) error {
	if len(msg) < 1 {
		return fmt.Errorf("cluster: empty control frame")
	}
	if err := json.Unmarshal(msg[1:], v); err != nil {
		return fmt.Errorf("cluster: malformed %c frame: %w", msg[0], err)
	}
	return nil
}

// ctrlConn is one request/reply control-plane connection. Calls are
// serialized; both the agent and the resolver keep one alive and redial
// lazily on failure.
type ctrlConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// dialCtrl connects to the coordinator. timeout bounds the dial and, when
// positive, becomes the per-frame progress deadline of every later call.
func dialCtrl(addr string, timeout time.Duration) (*ctrlConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial coordinator %s: %w", addr, err)
	}
	rw := avis.NewDeadlineRW(conn, timeout)
	return &ctrlConn{
		conn: conn,
		r:    bufio.NewReaderSize(rw, 4<<10),
		w:    bufio.NewWriterSize(rw, 4<<10),
	}, nil
}

// call sends one request frame and decodes the coordinator's ack. An ack
// with OK=false is returned as an error.
func (c *ctrlConn) call(req []byte, timeout time.Duration) (ackMsg, error) {
	if err := avis.WriteFrame(c.w, req); err != nil {
		return ackMsg{}, avis.WrapTimeout("write", timeout, err)
	}
	if err := c.w.Flush(); err != nil {
		return ackMsg{}, avis.WrapTimeout("write", timeout, err)
	}
	msg, err := avis.ReadFrame(c.r)
	if err != nil {
		return ackMsg{}, avis.WrapTimeout("read", timeout, err)
	}
	if len(msg) < 1 || msg[0] != ctagAck {
		return ackMsg{}, fmt.Errorf("cluster: unexpected reply frame")
	}
	var ack ackMsg
	if err := decodeCtrl(msg, &ack); err != nil {
		return ackMsg{}, err
	}
	if !ack.OK {
		return ack, fmt.Errorf("cluster: coordinator refused: %s", ack.Err)
	}
	return ack, nil
}

func (c *ctrlConn) close() {
	if c != nil {
		_ = c.conn.Close()
	}
}

// DialFunc dials the coordinator's control port; injectable so the fault
// layer (or a test) can interpose on every control-plane connection.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// maxIdleCtrl bounds how many idle control connections a client keeps
// pooled between calls.
const maxIdleCtrl = 8

// client is the shared retry loop under Agent and Resolver: a bounded
// pool of persistent connections, re-established with jittered
// exponential backoff under a retry budget when calls fail in transport.
// Application-level refusals (the coordinator answered, but said no) are
// never retried — a replacement attempt would be refused identically.
//
// mu guards only the pool and the policy fields, never a network round
// trip: concurrent callers check out separate connections (dialing fresh
// ones past the idle pool) and run their calls in parallel, so one slow
// control call no longer serializes every other caller of the same stub.
type client struct {
	addr    string
	timeout time.Duration

	mu       sync.Mutex
	idle     []*ctrlConn
	closed   bool
	dial     DialFunc
	attempts int // per-call cap, including the first try
	backoff  Backoff
	budget   *RetryBudget
	mRetries *metrics.Counter
}

func newClient(addr string, timeout time.Duration) *client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &client{
		addr:     addr,
		timeout:  timeout,
		attempts: 2, // one transparent retry by default, as before
		backoff:  DefaultBackoff(),
	}
}

// setRetryPolicy reconfigures the per-call retry loop. attempts includes
// the first try; values below 1 are clamped to 1 (no retries).
func (c *client) setRetryPolicy(attempts int, b Backoff, budget *RetryBudget) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	c.attempts = attempts
	c.backoff = b
	c.budget = budget
}

func (c *client) setDialer(dial DialFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dial = dial
}

// acquire checks a connection out of the idle pool, dialing a fresh one
// when the pool is empty. The dial runs outside mu.
func (c *client) acquire(dial DialFunc) (*ctrlConn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	if dial == nil {
		return dialCtrl(c.addr, c.timeout)
	}
	conn, err := dial("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial coordinator %s: %w", c.addr, err)
	}
	rw := avis.NewDeadlineRW(conn, c.timeout)
	return &ctrlConn{
		conn: conn,
		r:    bufio.NewReaderSize(rw, 4<<10),
		w:    bufio.NewWriterSize(rw, 4<<10),
	}, nil
}

// release returns a healthy connection to the pool (or closes it when the
// pool is full or the client is closed).
func (c *client) release(cc *ctrlConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < maxIdleCtrl {
		c.idle = append(c.idle, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.close()
}

// call issues one request, retrying transport failures (broken pooled
// connections, failed dials, timed-out frames) under the retry policy.
// Each attempt already carries its own deadline (the dial timeout plus
// the per-frame progress deadline), so the whole call is bounded by
// attempts·(timeout+backoff).
func (c *client) call(req []byte) (ackMsg, error) {
	c.mu.Lock()
	attempts, backoff, budget := c.attempts, c.backoff, c.budget
	retries, dial := c.mRetries, c.dial
	c.mu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		cc, err := c.acquire(dial)
		if err == nil {
			var ack ackMsg
			ack, err = cc.call(req, c.timeout)
			if err == nil {
				c.release(cc)
				return ack, nil
			}
			if ack.Err != "" {
				// The coordinator refused; the connection is fine.
				c.release(cc)
				return ack, err
			}
			cc.close()
		}
		lastErr = err
		if attempt+1 >= attempts {
			return ackMsg{}, lastErr
		}
		if !budget.Allow() {
			return ackMsg{}, lastErr
		}
		retries.Inc()
		time.Sleep(backoff.Delay(attempt))
	}
}

func (c *client) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.idle {
		cc.close()
	}
	c.idle = nil
}
