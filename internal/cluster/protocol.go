package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tunable/internal/avis"
	"tunable/internal/metrics"
)

// Control-plane wire protocol: each message is one avis frame whose first
// byte is a type tag and whose remainder is JSON. The control plane runs
// at heartbeat rate, not data rate, so self-describing bodies win over
// hand-packed binary; the framing and timeout discipline stay shared with
// the data plane (a wedged coordinator surfaces as avis.ErrIOTimeout).
const (
	ctagRegister   = 'g' // agent → coord: NodeInfo
	ctagHeartbeat  = 'b' // agent → coord: heartbeatMsg
	ctagDeregister = 'd' // agent → coord: nodeIDMsg (clean leave)
	ctagResolve    = 'v' // client → coord: ResolveRequest
	ctagEndSession = 'e' // client → coord: sessionMsg
	ctagNodes      = 'n' // anyone → coord: registry listing
	ctagAck        = 'a' // coord → caller: ackMsg
)

type heartbeatMsg struct {
	ID   string `json:"id"`
	Load Load   `json:"load"`
}

type nodeIDMsg struct {
	ID string `json:"id"`
}

type sessionMsg struct {
	SID string `json:"sid"`
}

// ResolveRequest asks the coordinator to place (or re-place) a session.
type ResolveRequest struct {
	SID     string   `json:"sid"`
	Exclude []string `json:"exclude,omitempty"` // nodes the client saw fail
	// Per-session resource demand for admission control; CPU ≤ 0 takes
	// DefaultSessionShare, MemBytes 0 reserves no explicit memory.
	CPU      float64 `json:"cpu,omitempty"`
	MemBytes int64   `json:"mem,omitempty"`
	// Sig pins the session to nodes serving this image store ("" = any).
	Sig string `json:"sig,omitempty"`
	// Coarse marks a session that mostly fetches coarse pyramid levels —
	// the cache-friendly traffic class. Edge nodes become eligible and are
	// preferred; without it only origin servers are considered.
	Coarse bool `json:"coarse,omitempty"`
}

// ResolveGrant is the coordinator's placement answer.
type ResolveGrant struct {
	NodeID   string `json:"node"`
	Addr     string `json:"addr"`
	Sig      string `json:"sig"`
	Failover bool   `json:"failover"` // true when this re-placed an existing session
}

// ackMsg is the single coordinator reply shape; fields beyond OK/Err are
// populated per request type.
type ackMsg struct {
	OK    bool         `json:"ok"`
	Err   string       `json:"err,omitempty"`
	Known bool         `json:"known,omitempty"` // heartbeat: node is registered and not dead
	Grant ResolveGrant `json:"grant,omitempty"`
	Nodes []NodeStatus `json:"nodes,omitempty"`
}

// encodeCtrl renders tag + JSON body. Marshalling these closed types
// cannot fail; a panic here is a programming error, not a runtime case.
func encodeCtrl(tag byte, v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cluster: encode %c: %v", tag, err))
	}
	return append([]byte{tag}, body...)
}

// decodeCtrl unmarshals a frame body (everything after the tag).
func decodeCtrl(msg []byte, v any) error {
	if len(msg) < 1 {
		return fmt.Errorf("cluster: empty control frame")
	}
	if err := json.Unmarshal(msg[1:], v); err != nil {
		return fmt.Errorf("cluster: malformed %c frame: %w", msg[0], err)
	}
	return nil
}

// ctrlConn is one request/reply control-plane connection. Calls are
// serialized; both the agent and the resolver keep one alive and redial
// lazily on failure.
type ctrlConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// dialCtrl connects to the coordinator. timeout bounds the dial and, when
// positive, becomes the per-frame progress deadline of every later call.
func dialCtrl(addr string, timeout time.Duration) (*ctrlConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial coordinator %s: %w", addr, err)
	}
	rw := avis.NewDeadlineRW(conn, timeout)
	return &ctrlConn{
		conn: conn,
		r:    bufio.NewReaderSize(rw, 4<<10),
		w:    bufio.NewWriterSize(rw, 4<<10),
	}, nil
}

// call sends one request frame and decodes the coordinator's ack. An ack
// with OK=false is returned as an error.
func (c *ctrlConn) call(req []byte, timeout time.Duration) (ackMsg, error) {
	if err := avis.WriteFrame(c.w, req); err != nil {
		return ackMsg{}, avis.WrapTimeout("write", timeout, err)
	}
	if err := c.w.Flush(); err != nil {
		return ackMsg{}, avis.WrapTimeout("write", timeout, err)
	}
	msg, err := avis.ReadFrame(c.r)
	if err != nil {
		return ackMsg{}, avis.WrapTimeout("read", timeout, err)
	}
	if len(msg) < 1 || msg[0] != ctagAck {
		return ackMsg{}, fmt.Errorf("cluster: unexpected reply frame")
	}
	var ack ackMsg
	if err := decodeCtrl(msg, &ack); err != nil {
		return ackMsg{}, err
	}
	if !ack.OK {
		return ack, fmt.Errorf("cluster: coordinator refused: %s", ack.Err)
	}
	return ack, nil
}

func (c *ctrlConn) close() {
	if c != nil {
		_ = c.conn.Close()
	}
}

// DialFunc dials the coordinator's control port; injectable so the fault
// layer (or a test) can interpose on every control-plane connection.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// client is the shared retry loop under Agent and Resolver: one persistent
// connection, re-established with jittered exponential backoff under a
// retry budget when calls fail in transport. Application-level refusals
// (the coordinator answered, but said no) are never retried — a
// replacement attempt would be refused identically.
type client struct {
	addr    string
	timeout time.Duration

	mu       sync.Mutex
	cc       *ctrlConn
	dial     DialFunc
	attempts int // per-call cap, including the first try
	backoff  Backoff
	budget   *RetryBudget
	mRetries *metrics.Counter
}

func newClient(addr string, timeout time.Duration) *client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &client{
		addr:     addr,
		timeout:  timeout,
		attempts: 2, // one transparent retry by default, as before
		backoff:  DefaultBackoff(),
	}
}

// setRetryPolicy reconfigures the per-call retry loop. attempts includes
// the first try; values below 1 are clamped to 1 (no retries).
func (c *client) setRetryPolicy(attempts int, b Backoff, budget *RetryBudget) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	c.attempts = attempts
	c.backoff = b
	c.budget = budget
}

func (c *client) setDialer(dial DialFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dial = dial
}

func (c *client) dialCtrl() (*ctrlConn, error) {
	if c.dial == nil {
		return dialCtrl(c.addr, c.timeout)
	}
	conn, err := c.dial("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial coordinator %s: %w", c.addr, err)
	}
	rw := avis.NewDeadlineRW(conn, c.timeout)
	return &ctrlConn{
		conn: conn,
		r:    bufio.NewReaderSize(rw, 4<<10),
		w:    bufio.NewWriterSize(rw, 4<<10),
	}, nil
}

// retryAfter decides whether attempt+1 may run, spending budget and
// sleeping the backoff delay if so. Each attempt already carries its own
// deadline (the dial timeout plus the per-frame progress deadline), so the
// whole call is bounded by attempts·(timeout+backoff).
func (c *client) retryAfter(attempt int) bool {
	if attempt+1 >= c.attempts {
		return false
	}
	if !c.budget.Allow() {
		return false
	}
	c.mRetries.Inc()
	time.Sleep(c.backoff.Delay(attempt))
	return true
}

// call issues one request, retrying transport failures (broken cached
// connections, failed dials, timed-out frames) under the retry policy.
func (c *client) call(req []byte) (ackMsg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if c.cc == nil {
			cc, err := c.dialCtrl()
			if err != nil {
				lastErr = err
				if !c.retryAfter(attempt) {
					return ackMsg{}, lastErr
				}
				continue
			}
			c.cc = cc
		}
		ack, err := c.cc.call(req, c.timeout)
		if err == nil {
			return ack, nil
		}
		if ack.Err != "" {
			// The coordinator refused; the connection is fine.
			return ack, err
		}
		c.cc.close()
		c.cc = nil
		lastErr = err
		if !c.retryAfter(attempt) {
			return ackMsg{}, lastErr
		}
	}
}

func (c *client) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cc.close()
	c.cc = nil
}
