package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tunable/internal/metrics"
)

// The failure detector at fleet scale: 10k simulated nodes driven through
// alive → suspect → dead on the injected clock, with delta batches applied
// from concurrent goroutines while the detector ticks and readers list the
// registry — the -race proof that sharding kept the verdict protocol
// exact: no missed deaths, no spurious ones.

const scaleNodes = 10000

func scaleNodeID(i int) string { return fmt.Sprintf("node-%05d", i) }

func registerScaleNodes(t testing.TB, c *Coordinator, n int) {
	t.Helper()
	const workers = 8
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				info := NodeInfo{
					ID: scaleNodeID(i), Addr: fmt.Sprintf("10.0.0.1:%d", i),
					CPU: 1, Side: 8, Levels: 1, Seeds: []int64{42},
				}
				if err := c.Register(info); err != nil {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d registrations failed", failed.Load())
	}
}

// beatEvens applies one delta entry for every even node, split across
// concurrent goroutines in shard-unaligned batches.
func beatHalf(c *Coordinator, n int, keep func(i int) bool) {
	const workers = 8
	const batch = 128
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			entries := make([]DeltaEntry, 0, batch)
			for i := w; i < n; i += workers {
				if !keep(i) {
					continue
				}
				entries = append(entries, DeltaEntry{ID: scaleNodeID(i), Sessions: int32(i % 3)})
				if len(entries) == batch {
					if unknown := c.ApplyDeltas(entries); len(unknown) != 0 {
						panic(fmt.Sprintf("live nodes refused: %v", unknown[:1]))
					}
					entries = entries[:0]
				}
			}
			if len(entries) > 0 {
				if unknown := c.ApplyDeltas(entries); len(unknown) != 0 {
					panic(fmt.Sprintf("live nodes refused: %v", unknown[:1]))
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDetectorScale10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node sweep skipped in -short")
	}
	var vnow atomic.Int64
	now := func() time.Duration { return time.Duration(vnow.Load()) }
	c := NewCoordinator(Config{
		SuspectAfter: time.Second,
		DeadAfter:    3 * time.Second,
		Now:          now,
		Shards:       16,
	})
	reg := metrics.New(metrics.WithNow(now))
	c.EnableMetrics(reg)
	deaths := reg.Counter("cluster_node_deaths_total", "Nodes declared dead by the failure detector.")

	registerScaleNodes(t, c, scaleNodes)
	if got := len(c.Nodes()); got != scaleNodes {
		t.Fatalf("registry lists %d nodes", got)
	}

	even := func(i int) bool { return i%2 == 0 }
	all := func(int) bool { return true }

	// Everyone beats while the clock advances: no transitions anywhere.
	for _, ms := range []int64{400, 800} {
		vnow.Store(ms * int64(time.Millisecond))
		beatHalf(c, scaleNodes, all)
		c.Tick()
	}
	if got := deaths.Value(); got != 0 {
		t.Fatalf("%v deaths among live nodes", got)
	}

	// From t=800ms the odd half falls silent; the even half keeps beating
	// every 400ms while a reader walks the registry concurrently.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
				_ = c.Nodes()
			}
		}
	}()
	sawSuspect := false
	for ms := int64(1200); ms <= 4400; ms += 400 {
		vnow.Store(ms * int64(time.Millisecond))
		beatHalf(c, scaleNodes, even)
		c.Tick()
		if ms == 2000 { // odd nodes are 1.2s silent here: suspect, not dead
			st, _ := c.nodeShardFor(scaleNodeID(1)).det.State(scaleNodeID(1))
			sawSuspect = st == StateSuspect
		}
	}
	close(stopReads)
	readers.Wait()

	if !sawSuspect {
		t.Error("odd node never passed through suspect")
	}
	var alive, dead, wrong int
	for _, st := range c.Nodes() {
		switch {
		case st.State == "alive":
			alive++
		case st.State == "dead":
			dead++
		default:
			wrong++
		}
	}
	if alive != scaleNodes/2 || dead != scaleNodes/2 || wrong != 0 {
		t.Fatalf("alive %d dead %d other %d (want %d/%d/0)", alive, dead, wrong, scaleNodes/2, scaleNodes/2)
	}
	for _, st := range c.Nodes() {
		wantDead := st.ID[len(st.ID)-1]%2 == 1
		if wantDead != (st.State == "dead") {
			t.Fatalf("node %s state %s", st.ID, st.State)
		}
	}
	if got := deaths.Value(); got != scaleNodes/2 {
		t.Fatalf("deaths counter %v, want %d — missed or spurious deaths", got, scaleNodes/2)
	}

	// Dead nodes refuse deltas; rejoin resurrects with a bumped incarnation.
	if unknown := c.ApplyDeltas([]DeltaEntry{{ID: scaleNodeID(1), Sessions: 1}}); len(unknown) != 1 {
		t.Fatalf("dead node accepted a delta: %v", unknown)
	}
	if err := c.Register(NodeInfo{ID: scaleNodeID(1), Addr: "a", CPU: 1, Side: 8, Levels: 1, Seeds: []int64{42}}); err != nil {
		t.Fatal(err)
	}
	if st := stateOf(t, c, scaleNodeID(1)); st != "alive" {
		t.Fatalf("rejoined node state %s", st)
	}
}

// TestShardedResolveChurn exercises placement and teardown across shards
// under concurrency: sessions resolve, move on node death, and end, while
// delta batches churn the load numbers. Run under -race this is the
// lock-order proof for the session-shard → node-shard protocol.
func TestShardedResolveChurn(t *testing.T) {
	var vnow atomic.Int64
	now := func() time.Duration { return time.Duration(vnow.Load()) }
	c := NewCoordinator(Config{
		SuspectAfter: time.Second,
		DeadAfter:    3 * time.Second,
		Now:          now,
		Shards:       8,
	})
	reg := metrics.New(metrics.WithNow(now))
	c.EnableMetrics(reg)
	const nodes = 64
	registerScaleNodes(t, c, nodes)

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	var placeErrs atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sid := fmt.Sprintf("s-%d-%d", w, i)
				if _, err := c.Resolve(ResolveRequest{SID: sid, CPU: 0.001}); err != nil {
					placeErrs.Add(1)
					continue
				}
				if i%3 == 0 {
					c.EndSession(sid)
				}
			}
		}(w)
	}
	// Concurrent churn: deltas, re-registrations, and registry reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			beatHalf(c, nodes, func(int) bool { return true })
			_ = c.Nodes()
			_ = c.Register(NodeInfo{ID: scaleNodeID(i % nodes), Addr: "a", CPU: 1, Side: 8, Levels: 1, Seeds: []int64{42}})
			c.Tick()
		}
	}()
	wg.Wait()
	if placeErrs.Load() != 0 {
		t.Fatalf("%d placements failed", placeErrs.Load())
	}

	// Every surviving session's reservation must sit on exactly the node
	// its record says; ending them all drains the registry to zero.
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			c.EndSession(fmt.Sprintf("s-%d-%d", w, i))
		}
	}
	for _, st := range c.Nodes() {
		if st.Sessions != 0 {
			t.Fatalf("node %s still holds %d sessions after drain", st.ID, st.Sessions)
		}
	}
	if got := reg.Gauge("cluster_sessions", "Sessions currently placed or awaiting failover.").Value(); got != 0 {
		t.Fatalf("cluster_sessions gauge %v after drain", got)
	}
}
