package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes jittered exponential retry delays: attempt n (0-based)
// waits Base·Factor^n, capped at Max, with a uniform jitter of ±Jitter
// fraction so a fleet of clients retrying against one recovered
// coordinator does not stampede it. The zero value is usable and means
// "no delay"; DefaultBackoff returns the tuning the control plane uses.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
	Jitter float64        // fraction of the computed delay randomized, in [0,1]
	Rand   func() float64 // uniform [0,1); nil uses math/rand (seed for determinism)
}

// DefaultBackoff is the control-plane retry tuning: 25ms base, doubling,
// capped at 1s, with ±50% jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 25 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
}

// Delay returns the wait before retry attempt n (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	f := b.Factor
	if f < 1 {
		f = 1
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= f
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		r := b.Rand
		if r == nil {
			r = rand.Float64
		}
		// Spread uniformly across [1-Jitter, 1+Jitter]·d, clamped to Max.
		d *= 1 + b.Jitter*(2*r()-1)
		if b.Max > 0 && d > float64(b.Max) {
			d = float64(b.Max)
		}
	}
	return time.Duration(d)
}

// RetryBudget is a token bucket bounding how many retries a component may
// spend: Burst tokens to start, refilled at Rate tokens/second. A budget
// turns a persistent failure into a bounded amount of retry traffic
// instead of an unbounded storm; Allow reports whether one retry may be
// spent. A nil *RetryBudget allows everything.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

// NewRetryBudget creates a budget of burst tokens refilling at rate
// tokens/second (rate 0 never refills).
func NewRetryBudget(burst int, rate float64) *RetryBudget {
	if burst < 0 {
		burst = 0
	}
	return &RetryBudget{tokens: float64(burst), burst: float64(burst), rate: rate, now: time.Now}
}

// Allow consumes one retry token, reporting false when the budget is
// exhausted.
func (rb *RetryBudget) Allow() bool {
	if rb == nil {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	now := rb.now()
	if !rb.last.IsZero() && rb.rate > 0 {
		rb.tokens += now.Sub(rb.last).Seconds() * rb.rate
		if rb.tokens > rb.burst {
			rb.tokens = rb.burst
		}
	}
	rb.last = now
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// Remaining reports the whole tokens currently available.
func (rb *RetryBudget) Remaining() int {
	if rb == nil {
		return 1 << 30
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return int(rb.tokens)
}
