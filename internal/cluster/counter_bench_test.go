package cluster

import (
	"testing"

	"tunable/internal/metrics"
)

// The volatile-counter trade-off harness, mirroring the vsa benchmark
// suite from SNIPPETS.md Snippet 1: three designs for a hot counter under
// churn, all ending at the same committed total.
//
//   - atomic: commit every op to the shared instrument (per-op
//     persistence — one sharded-CAS Add per logical write).
//   - batch: buffer ops locally, replay them op-by-op at a fixed batch
//     boundary (defers commits, doesn't reduce them: dbCalls ==
//     logicalWrites, just colder).
//   - vsa: accumulate the net delta locally, commit one Add when the
//     pending magnitude crosses the threshold (dbCalls ≈
//     logicalWrites/threshold).
//
// The numbers in BENCH_control.json justify why the coordinator's
// hot-path shard counters use the vsa design (the pending type in
// coord.go) with commitThreshold 64: batching alone buys little, because
// the cost is the shared-memory commit, not the call boundary.

const counterThreshold = 64 // == commitThreshold, the harness default in the snippet

func benchCounter(b *testing.B) *metrics.Counter {
	b.Helper()
	return metrics.New().Counter("bench_ops_total", "Counter harness.")
}

func BenchmarkCounterAtomic(b *testing.B) {
	ctr := benchCounter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Inc()
	}
	if got := ctr.Value(); got != float64(b.N) {
		b.Fatalf("committed %v of %d", got, b.N)
	}
}

func BenchmarkCounterBatch(b *testing.B) {
	ctr := benchCounter(b)
	buf := make([]float64, 0, counterThreshold)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = append(buf, 1)
		if len(buf) == counterThreshold {
			for _, v := range buf {
				ctr.Add(v)
			}
			buf = buf[:0]
		}
	}
	for _, v := range buf {
		ctr.Add(v)
	}
	if got := ctr.Value(); got != float64(b.N) {
		b.Fatalf("committed %v of %d", got, b.N)
	}
}

func BenchmarkCounterVSA(b *testing.B) {
	ctr := benchCounter(b)
	p := pending{sink: ctr}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.add(1)
	}
	p.flush()
	if got := ctr.Value(); got != float64(b.N) {
		b.Fatalf("committed %v of %d", got, b.N)
	}
}
