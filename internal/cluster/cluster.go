// Package cluster is the control plane that pools several avis servers
// behind one client population: a registry where servers announce their
// address, image-store contents, and declared resource capacity; a
// deadline failure detector driven by heartbeats (alive → suspect → dead,
// with rejoin on re-registration); and an admission-controlled placement
// layer that picks a server per client session, least-reserved first,
// gated by the scheduler's all-or-nothing reservations (Section 6.2's
// admission control lifted from one host to a node pool — the shape of
// Dearle et al.'s constraint-based deployment framework).
//
// Four roles speak one wire discipline (the avis frame codec plus the
// same progress-deadline timeout semantics):
//
//   - Coordinator (cmd/avis-coord): owns the registry, detector, and
//     placement; exposes cluster_* metric families.
//   - Agent: runs inside cmd/avis-server; registers the node and renews
//     it with periodic heartbeats carrying the current load.
//   - Resolver: the client-side stub that asks the coordinator for a
//     server, and reports failed nodes back when re-resolving.
//   - FailoverClient: wraps avis.RealClient; when a node dies
//     mid-session it re-resolves through the coordinator and replays the
//     session's fovea/codec state on the replacement server.
package cluster

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Node roles in the delivery tier. An origin node (the zero value) serves
// from its own image store; an edge node fronts an origin through a chunk
// cache, serving coarse pyramid levels from cache and relaying the rest.
const (
	RoleOrigin = ""     // default: a full avis server
	RoleEdge   = "edge" // a caching proxy (internal/edge)
)

// NodeInfo is what a server announces at registration.
type NodeInfo struct {
	ID   string `json:"id"`   // cluster-unique node name
	Addr string `json:"addr"` // data-plane address clients dial

	// Role places the node in the delivery tier (RoleOrigin or RoleEdge).
	// Edge nodes are only eligible for placements that ask for them
	// (ResolveRequest.Coarse) and are preferred for those.
	Role string `json:"role,omitempty"`

	// Declared resource capacity for session admission: CPU is the
	// reservable share in (0, 1]; MemBytes the physical memory
	// (0 defaults to 512 MiB).
	CPU      float64 `json:"cpu"`
	MemBytes int64   `json:"mem"`

	// Image-store contents. Failover replays a session onto a replacement
	// server, so placement only considers nodes serving identical stores.
	Side   int     `json:"side"`
	Levels int     `json:"levels"`
	Seeds  []int64 `json:"seeds"`

	// Sig, when non-empty, overrides the computed store signature. Edge
	// nodes front a store they do not own (they never see its seeds), so
	// they announce the origin's signature verbatim: a session pinned to
	// the origin's store can then land on any edge caching that store.
	Sig string `json:"sig,omitempty"`
}

// StoreSig fingerprints the node's image-store contents; sessions are
// pinned to a signature so every failover target can replay them.
func (n NodeInfo) StoreSig() string {
	if n.Sig != "" {
		return n.Sig
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", n.Side, n.Levels)
	for _, s := range n.Seeds {
		fmt.Fprintf(h, "/%d", s)
	}
	return fmt.Sprintf("%d-%d-%016x", n.Side, n.Levels, h.Sum64())
}

// Load is the node-side utilization report carried by each heartbeat.
type Load struct {
	ActiveSessions int `json:"active"` // currently open data-plane connections
}

// NodeState is the failure detector's verdict on a node.
type NodeState uint8

const (
	StateAlive NodeState = iota
	StateSuspect
	StateDead
)

// String renders the state for logs and metric labels.
func (s NodeState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("NodeState(%d)", uint8(s))
}

// NodeStatus is one row of the coordinator's registry view.
type NodeStatus struct {
	ID          string  `json:"id"`
	Addr        string  `json:"addr"`
	Role        string  `json:"role,omitempty"`
	State       string  `json:"state"`
	Sig         string  `json:"sig"`
	Load        Load    `json:"load"`
	CPU         float64 `json:"cpu"`
	ReservedCPU float64 `json:"reserved_cpu"`
	Sessions    int     `json:"sessions"`
	Incarnation uint64  `json:"incarnation"`
}

// Control-plane defaults; cmd flags override all of them.
const (
	DefaultSuspectAfter = 3 * time.Second
	DefaultDeadAfter    = 10 * time.Second
	DefaultHeartbeat    = time.Second
	// DefaultSessionShare is the CPU share a session reserves when the
	// client does not declare a demand: 1/20th of a node.
	DefaultSessionShare = 0.05
)
