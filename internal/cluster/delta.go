package cluster

import (
	"encoding/binary"
	"fmt"

	"tunable/internal/bufpool"
)

// Batched heartbeat deltas. The per-node JSON heartbeat costs one marshal
// and one unmarshal per node per interval — at fleet scale the coordinator
// spends its time in the codec, not the registry. A delta frame instead
// carries a batch of (node ID, net session delta) pairs in a hand-packed
// binary body that decodes with zero allocations, and one frame renews
// many nodes: the liveness observation is the frame's arrival, the load
// update is the coalesced net delta since the last accepted flush
// (Roy & Mukherjee's multi-agent argument — aggregate at the edge, ship
// deltas, never per-op).
//
// Wire layout (after the ctagDelta tag byte):
//
//	version  uint8   (deltaVersion)
//	count    uint16  little-endian
//	entries  count × { idLen uint8, id [idLen]byte, delta zigzag-uvarint }
//
// The delta is the signed change in active sessions since the node's last
// accepted report; a refused entry (unknown or dead node) is echoed back
// in ackMsg.Unknown so the agent re-registers and resends an absolute
// count.
const (
	deltaVersion    = 1
	maxDeltaEntries = 1 << 16 // count field is uint16
)

// DeltaEntry is one node's coalesced load change inside a delta batch.
type DeltaEntry struct {
	ID       string
	Sessions int32 // net change in active sessions since the last accepted report
}

// EncodeDeltaBatch packs entries into a control frame backed by a bufpool
// buffer; the caller returns it with bufpool.Put once the frame is
// written. Node IDs longer than 255 bytes or batches beyond 65535 entries
// are rejected (both are far outside the protocol's envelope).
func EncodeDeltaBatch(entries []DeltaEntry) ([]byte, error) {
	if len(entries) >= maxDeltaEntries {
		return nil, fmt.Errorf("cluster: delta batch of %d entries exceeds %d", len(entries), maxDeltaEntries-1)
	}
	max := 4
	for _, e := range entries {
		if len(e.ID) == 0 || len(e.ID) > 255 {
			return nil, fmt.Errorf("cluster: delta entry id %q has invalid length", e.ID)
		}
		max += 1 + len(e.ID) + binary.MaxVarintLen32
	}
	buf := bufpool.Get(max)
	buf[0] = ctagDelta
	buf[1] = deltaVersion
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(entries)))
	off := 4
	for _, e := range entries {
		buf[off] = byte(len(e.ID))
		off++
		off += copy(buf[off:], e.ID)
		off += binary.PutUvarint(buf[off:], uint64(zigzag32(e.Sessions)))
	}
	return buf[:off], nil
}

// forEachDelta walks a delta frame without allocating: fn receives the ID
// bytes aliased into msg (valid only for the duration of the call — index
// a map with string(id) to stay allocation-free) and the decoded delta.
func forEachDelta(msg []byte, fn func(id []byte, sessions int32)) error {
	if len(msg) < 4 || msg[0] != ctagDelta {
		return fmt.Errorf("cluster: malformed delta frame")
	}
	if msg[1] != deltaVersion {
		return fmt.Errorf("cluster: delta frame version %d (want %d)", msg[1], deltaVersion)
	}
	count := int(binary.LittleEndian.Uint16(msg[2:]))
	off := 4
	for i := 0; i < count; i++ {
		if off >= len(msg) {
			return fmt.Errorf("cluster: delta frame truncated at entry %d", i)
		}
		idLen := int(msg[off])
		off++
		if idLen == 0 || off+idLen > len(msg) {
			return fmt.Errorf("cluster: delta frame truncated at entry %d", i)
		}
		id := msg[off : off+idLen]
		off += idLen
		raw, n := binary.Uvarint(msg[off:])
		if n <= 0 || raw > (1<<32)-1 {
			return fmt.Errorf("cluster: delta frame truncated at entry %d", i)
		}
		off += n
		fn(id, unzigzag32(uint32(raw)))
	}
	if off != len(msg) {
		return fmt.Errorf("cluster: delta frame has %d trailing bytes", len(msg)-off)
	}
	return nil
}

// zigzag32 maps signed deltas onto small unsigned varints (−1 → 1, 1 → 2).
func zigzag32(v int32) uint32 { return uint32((v << 1) ^ (v >> 31)) }

func unzigzag32(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }
