package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tunable/internal/bufpool"
	"tunable/internal/metrics"
)

func decodeAll(t *testing.T, frame []byte) []DeltaEntry {
	t.Helper()
	var got []DeltaEntry
	if err := forEachDelta(frame, func(id []byte, sessions int32) {
		got = append(got, DeltaEntry{ID: string(id), Sessions: sessions})
	}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestDeltaRoundTrip(t *testing.T) {
	cases := [][]DeltaEntry{
		nil,
		{{ID: "n1", Sessions: 0}},
		{{ID: "n1", Sessions: 1}, {ID: "node-with-a-longer-name", Sessions: -1}},
		{{ID: "a", Sessions: 1 << 20}, {ID: "b", Sessions: -(1 << 20)}, {ID: "c", Sessions: -1}},
	}
	for i, entries := range cases {
		frame, err := EncodeDeltaBatch(entries)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got := decodeAll(t, frame)
		if len(got) != len(entries) {
			t.Fatalf("case %d: %d entries round-tripped to %d", i, len(entries), len(got))
		}
		for j := range entries {
			if got[j] != entries[j] {
				t.Fatalf("case %d entry %d: %+v != %+v", i, j, got[j], entries[j])
			}
		}
		bufpool.Put(frame)
	}
}

func TestDeltaRoundTripLargeBatch(t *testing.T) {
	entries := make([]DeltaEntry, 5000)
	for i := range entries {
		entries[i] = DeltaEntry{ID: fmt.Sprintf("node-%04d", i), Sessions: int32(i - 2500)}
	}
	frame, err := EncodeDeltaBatch(entries)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	defer bufpool.Put(frame)
	got := decodeAll(t, frame)
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestDeltaEncodeRejects(t *testing.T) {
	if _, err := EncodeDeltaBatch([]DeltaEntry{{ID: "", Sessions: 1}}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, err := EncodeDeltaBatch([]DeltaEntry{{ID: strings.Repeat("x", 256), Sessions: 1}}); err == nil {
		t.Fatal("256-byte ID accepted")
	}
	huge := make([]DeltaEntry, maxDeltaEntries)
	for i := range huge {
		huge[i].ID = "n"
	}
	if _, err := EncodeDeltaBatch(huge); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestDeltaDecodeRejectsMalformed(t *testing.T) {
	frame, err := EncodeDeltaBatch([]DeltaEntry{{ID: "n1", Sessions: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer bufpool.Put(frame)
	nop := func([]byte, int32) {}
	if err := forEachDelta(nil, nop); err == nil {
		t.Fatal("nil frame accepted")
	}
	if err := forEachDelta([]byte{ctagHeartbeat, 1, 0, 0}, nop); err == nil {
		t.Fatal("wrong tag accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[1] = deltaVersion + 1
	if err := forEachDelta(bad, nop); err == nil {
		t.Fatal("future version accepted")
	}
	if err := forEachDelta(frame[:len(frame)-1], nop); err == nil {
		t.Fatal("truncated frame accepted")
	}
	trailing := append(append([]byte(nil), frame...), 0xff)
	if err := forEachDelta(trailing, nop); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestApplyDeltas drives the coordinator's delta path in-process: load
// accumulates as net deltas, refused IDs come back as unknown, and a
// suspect node is revived by a delta entry like a classic heartbeat.
func TestApplyDeltas(t *testing.T) {
	var now time.Duration
	c := NewCoordinator(Config{
		SuspectAfter: 100 * time.Millisecond,
		DeadAfter:    300 * time.Millisecond,
		Now:          func() time.Duration { return now },
		Shards:       4,
	})
	reg := metrics.New()
	c.EnableMetrics(reg)
	for i := 0; i < 3; i++ {
		info := NodeInfo{ID: fmt.Sprintf("n%d", i), Addr: "a", CPU: 1, Side: 8, Levels: 1, Seeds: []int64{1}}
		if err := c.Register(info); err != nil {
			t.Fatal(err)
		}
	}

	unknown := c.ApplyDeltas([]DeltaEntry{
		{ID: "n0", Sessions: 5},
		{ID: "n1", Sessions: 2},
		{ID: "ghost", Sessions: 1},
	})
	if len(unknown) != 1 || unknown[0] != "ghost" {
		t.Fatalf("unknown = %v", unknown)
	}
	unknown = c.ApplyDeltas([]DeltaEntry{
		{ID: "n0", Sessions: -2},
		{ID: "n1", Sessions: -7}, // over-decrement clamps at zero
	})
	if len(unknown) != 0 {
		t.Fatalf("unknown = %v", unknown)
	}
	loads := map[string]int{}
	for _, st := range c.Nodes() {
		loads[st.ID] = st.Load.ActiveSessions
	}
	if loads["n0"] != 3 || loads["n1"] != 0 || loads["n2"] != 0 {
		t.Fatalf("loads = %v", loads)
	}

	// A suspect node is revived by a delta entry.
	now = 150 * time.Millisecond
	c.Tick()
	if st := stateOf(t, c, "n0"); st != "suspect" {
		t.Fatalf("n0 state %q", st)
	}
	c.ApplyDeltas([]DeltaEntry{{ID: "n0", Sessions: 0}, {ID: "n1", Sessions: 0}, {ID: "n2", Sessions: 0}})
	if st := stateOf(t, c, "n0"); st != "alive" {
		t.Fatalf("n0 state %q after delta", st)
	}

	// A dead node refuses delta entries (the agent must re-register).
	now = 600 * time.Millisecond
	c.Tick()
	unknown = c.ApplyDeltas([]DeltaEntry{{ID: "n2", Sessions: 1}})
	if len(unknown) != 1 || unknown[0] != "n2" {
		t.Fatalf("dead node delta: unknown = %v", unknown)
	}
}

// TestDeltaFrameDispatch runs the wire path end to end: an encoded frame
// through dispatch, unknown IDs in the ack.
func TestDeltaFrameDispatch(t *testing.T) {
	c := NewCoordinator(Config{Shards: 2})
	if err := c.Register(NodeInfo{ID: "n0", Addr: "a", CPU: 1, Side: 8, Levels: 1, Seeds: []int64{1}}); err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeDeltaBatch([]DeltaEntry{{ID: "n0", Sessions: 4}, {ID: "ghost", Sessions: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer bufpool.Put(frame)
	ack := c.dispatch(frame)
	if !ack.OK {
		t.Fatalf("dispatch refused: %s", ack.Err)
	}
	if len(ack.Unknown) != 1 || ack.Unknown[0] != "ghost" {
		t.Fatalf("ack.Unknown = %v", ack.Unknown)
	}
	if got := c.Nodes()[0].Load.ActiveSessions; got != 4 {
		t.Fatalf("load = %d", got)
	}
	if bad := c.dispatch([]byte{ctagDelta, 9, 9}); bad.OK || bad.Err == "" {
		t.Fatalf("malformed delta frame accepted: %+v", bad)
	}
}

func stateOf(t *testing.T, c *Coordinator, id string) string {
	t.Helper()
	for _, st := range c.Nodes() {
		if st.ID == id {
			return st.State
		}
	}
	t.Fatalf("node %s not listed", id)
	return ""
}
