package cluster

import (
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tunable/internal/avis"
	"tunable/internal/faults"
	"tunable/internal/metrics"
	"tunable/internal/wavelet"
)

// startChaosNode is startClusterNode with the node's control plane routed
// through the fault injector under the label "ctrl:<id>".
func startChaosNode(t *testing.T, in *faults.Injector, coordAddr, id string, reg *metrics.Registry) *clusterNode {
	t.Helper()
	srv, err := avis.NewRealServer(256, 4, []int64{1, 2}, avis.SharedStore())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	agent := NewAgent(coordAddr, NodeInfo{
		ID: id, Addr: ln.Addr().String(),
		CPU: 1.0, MemBytes: 256 << 20,
		Side: 256, Levels: 4, Seeds: []int64{1, 2},
	}, 15*time.Millisecond, func() Load {
		return Load{ActiveSessions: srv.ActiveSessions()}
	})
	agent.EnableMetrics(reg)
	agent.SetRetryPolicy(2, Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2}, nil)
	agent.SetDialer(func(network, addr string, timeout time.Duration) (net.Conn, error) {
		return in.Dial("ctrl:"+id, network, addr, timeout)
	})
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	return &clusterNode{id: id, srv: srv, ln: ln, agent: agent}
}

// chaosSchedule scripts the acceptance scenario: a 2 s asymmetric
// control-plane partition (the coordinator cannot hear any node; the
// client still reaches the coordinator), one slow node, a connection
// reset on the session's data conn once the partition has healed, and a
// 10% loss window right after. The reset and loss instants sit after the
// partition so failover re-resolves land on nodes the detector has
// already revived; the loss window is no longer than the client's
// per-frame progress deadline, so a replacement handshake can never start
// inside the window that killed its predecessor. Pure function of the
// seed — same seed, same fault sequence.
func chaosSchedule(seed uint64) faults.Schedule {
	return faults.NewSchedule(seed,
		faults.Event{At: 0, Duration: 2 * time.Second, Kind: faults.Partition, Target: "ctrl:node-"},
		faults.Event{At: 0, Duration: 6 * time.Second, Kind: faults.Latency, Target: "data:node-c", Delay: 10 * time.Millisecond},
		faults.Event{At: 2500 * time.Millisecond, Kind: faults.Reset, Target: "data:"},
		faults.Event{At: 2800 * time.Millisecond, Duration: 400 * time.Millisecond, Kind: faults.Drop, Target: "data:", Rate: 0.10},
	)
}

// TestChaosFetchSurvivesFaults is the fault-injection acceptance test: a
// seeded schedule of partition + loss + reset + slow node against a live
// cluster, with the progressive image fetch finishing byte-identical to a
// fault-free reference and every resilience counter lighting up.
func TestChaosFetchSurvivesFaults(t *testing.T) {
	const seed = 20260806

	// Same seed, same fault script: the schedule is a pure function of its
	// inputs, so a failing run replays exactly from the seed.
	if !reflect.DeepEqual(chaosSchedule(seed), chaosSchedule(seed)) {
		t.Fatal("chaos schedule is not reproducible from its seed")
	}

	reg := metrics.New()
	coord := NewCoordinator(Config{
		SuspectAfter: 500 * time.Millisecond,
		// Longer than the partition: silenced nodes go suspect, not dead,
		// so the asymmetric partition does not amputate the data plane.
		DeadAfter: 10 * time.Second,
	})
	coord.EnableMetrics(reg)
	msrv, err := metrics.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer msrv.Close()

	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(cl)
	defer coord.Shutdown(time.Second)
	stopTicker := coord.StartTicker(50 * time.Millisecond)
	defer stopTicker()

	// One injector wraps every connection in the test — agents, resolver,
	// and data plane — from the moment each is dialed. It stays inert
	// until Start, so the reference run flows through identical plumbing
	// with no faults.
	injector, err := faults.New(chaosSchedule(seed))
	if err != nil {
		t.Fatal(err)
	}
	injector.EnableMetrics(reg)

	for _, id := range []string{"node-a", "node-b", "node-c"} {
		n := startChaosNode(t, injector, cl.Addr().String(), id, reg)
		defer n.srv.Shutdown(0)
		defer n.agent.Close(false)
	}

	r := NewResolver(cl.Addr().String(), time.Second)
	defer r.Close()
	r.EnableMetrics(reg)
	r.SetRetryPolicy(3, Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2}, nil)
	r.SetDialer(func(network, addr string, timeout time.Duration) (net.Conn, error) {
		return injector.Dial("ctrl:client", network, addr, timeout)
	})

	// The round hook stretches the chaos fetch across the scripted fault
	// instants; during the reference run it does nothing.
	var chaosPhase atomic.Bool
	fc, err := DialFailover(r, avis.Params{DR: 32, Codec: "lzw", Level: 4},
		WithIOTimeout(400*time.Millisecond),
		WithFailoverBackoff(Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2, Jitter: 0.5}),
		WithRetryBudget(NewRetryBudget(20, 0)),
		WithMaxFailovers(4),
		WithRoundHook(func(img, round int) {
			if chaosPhase.Load() && (round == 1 || round == 3) {
				time.Sleep(300 * time.Millisecond)
			}
		}),
		WithDialer(func(nodeID, addr string, timeout time.Duration) (net.Conn, error) {
			return injector.Dial("data:"+nodeID, "tcp", addr, timeout)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	fc.EnableMetrics(reg)

	// Reference run: injector not yet started, no faults.
	refCanvas, err := wavelet.NewCanvas(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.FetchImage(0, refCanvas); err != nil {
		t.Fatalf("reference fetch: %v", err)
	}
	ref, err := refCanvas.Reconstruct(4)
	if err != nil {
		t.Fatal(err)
	}

	// Arm the schedule. The partition silences every node for 2 s
	// (heartbeats fail, the detector marks them suspect); once it heals
	// the heartbeats revive them, and the reset + loss window then hit the
	// in-flight fetch.
	injector.Start()
	time.Sleep(2300 * time.Millisecond) // ride out the partition
	chaosPhase.Store(true)

	chaosCanvas, err := wavelet.NewCanvas(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.FetchImage(0, chaosCanvas); err != nil {
		t.Fatalf("chaos fetch: %v (fault log: %v)", err, injector.Log())
	}
	chaos, err := chaosCanvas.Reconstruct(4)
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identical output: a failed round applies nothing to the canvas,
	// so replayed rounds reproduce the reference exactly.
	if ref.Side != chaos.Side || !reflect.DeepEqual(ref.Pix, chaos.Pix) {
		t.Fatalf("chaos output differs from fault-free reference (faults: %v)", injector.Log())
	}

	// The faults really fired and the resilience paths really ran.
	if len(injector.Log()) == 0 {
		t.Fatal("no faults injected")
	}
	if fc.Retries() == 0 {
		t.Fatalf("no rounds retried under the scripted reset (fault log: %v)", injector.Log())
	}
	if fc.Failovers() == 0 {
		t.Fatalf("session never failed over (fault log: %v)", injector.Log())
	}
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for {
		body = httpGet(t, fmt.Sprintf("http://%s/metrics", msrv.Addr))
		if strings.Contains(body, `faults_injected_total{kind="reset"}`) &&
			strings.Contains(body, "avis_round_retries_total") &&
			strings.Contains(body, "cluster_heartbeat_failures_total") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never exposed the chaos counters:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, metric := range []string{"faults_injected_total", "avis_round_retries_total", "cluster_heartbeat_failures_total"} {
		if !counterNonzero(body, metric) {
			t.Errorf("%s is zero after the chaos run:\n%s", metric, body)
		}
	}
}

// counterNonzero reports whether any sample of the named metric family in
// a /metrics exposition has a value greater than zero.
func counterNonzero(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return true
		}
	}
	return false
}
