package cluster

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"tunable/internal/bufpool"
	"tunable/internal/metrics"
)

// hbJitter is the fraction of the heartbeat interval each beat is
// randomized by (±10%): after a coordinator restart every agent rejoins
// at once, and without jitter their flush timers stay phase-locked,
// hammering the coordinator in synchronized waves forever.
const hbJitter = 0.10

// Agent is the node-side half of the registry: it registers a server with
// the coordinator and renews it with periodic flushes of the node's
// coalesced load delta (a one-entry binary delta batch — the liveness
// signal is the frame itself, the payload is the net session change since
// the last accepted flush, so an idle node's heartbeat costs no JSON and
// no allocation on either side). It survives coordinator restarts — a
// flush answered with its own ID in ack.Unknown (or a broken connection)
// triggers re-registration on the next beat.
type Agent struct {
	cl       *client
	node     NodeInfo
	interval time.Duration
	load     func() Load

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// lastSent is the active-session count last accepted by the
	// coordinator; the next flush carries the net delta from here. Only
	// the run goroutine touches it.
	lastSent int

	// consecutive heartbeat failures; reset on the first beat that lands.
	// Read by tests through MissedBeats.
	missed atomic.Int64

	// telemetry instruments; nil (no-op) unless EnableMetrics ran
	mBeatFailures *metrics.Counter
	mRejoins      *metrics.Counter
}

// NewAgent creates an agent for the given node. load is polled before
// each heartbeat (nil reports zero load); interval defaults to
// DefaultHeartbeat.
func NewAgent(coordAddr string, node NodeInfo, interval time.Duration, load func() Load) *Agent {
	if interval <= 0 {
		interval = DefaultHeartbeat
	}
	if load == nil {
		load = func() Load { return Load{} }
	}
	// A beat must complete well within one interval, or the detector's
	// deadlines drift; cap the per-call timeout at 2 intervals.
	timeout := 2 * interval
	if timeout < time.Second {
		timeout = time.Second
	}
	return &Agent{
		cl:       newClient(coordAddr, timeout),
		node:     node,
		interval: interval,
		load:     load,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// EnableMetrics instruments the agent: cluster_ctrl_retries_total
// (role="agent") counts transparently retried control calls,
// cluster_heartbeat_failures_total counts beats that failed after
// retries, and cluster_rejoins_total counts re-registrations after the
// coordinator forgot (or declared dead) this node.
func (a *Agent) EnableMetrics(reg *metrics.Registry) {
	a.cl.mu.Lock()
	a.cl.mRetries = reg.Counter("cluster_ctrl_retries_total",
		"Control-plane calls transparently retried after a transport failure.",
		metrics.L("role", "agent"))
	a.cl.mu.Unlock()
	a.mBeatFailures = reg.Counter("cluster_heartbeat_failures_total",
		"Heartbeats that failed even after retries.")
	a.mRejoins = reg.Counter("cluster_rejoins_total",
		"Re-registrations after the coordinator lost this node.")
}

// SetRetryPolicy bounds the transparent retries under each control call:
// attempts per call (including the first), backoff between them, and an
// optional shared retry budget.
func (a *Agent) SetRetryPolicy(attempts int, b Backoff, budget *RetryBudget) {
	a.cl.setRetryPolicy(attempts, b, budget)
}

// SetDialer interposes on control-plane dials (fault injection).
func (a *Agent) SetDialer(dial DialFunc) { a.cl.setDialer(dial) }

// SetWireV1 pins the agent's control connections to v1 framing and JSON
// bodies, as a pre-v2 build would speak (mixed-version rollouts, tests).
func (a *Agent) SetWireV1(v bool) { a.cl.setWireV1(v) }

// MissedBeats reports the current run of consecutive failed heartbeats.
func (a *Agent) MissedBeats() int { return int(a.missed.Load()) }

// Start registers the node synchronously — failing fast if the
// coordinator is unreachable or refuses the registration — then begins
// heartbeating in the background.
func (a *Agent) Start() error {
	if err := a.register(); err != nil {
		return err
	}
	go a.run()
	return nil
}

func (a *Agent) register() error {
	_, err := a.cl.call(ctrlReq{
		js: func() []byte { return encodeCtrl(ctagRegister, a.node) },
		v2: func(buf []byte) ([]byte, error) { return encodeRegisterV2(buf, a.node) },
	})
	return err
}

// jittered draws the next beat delay: interval ± hbJitter.
func (a *Agent) jittered() time.Duration {
	return time.Duration(float64(a.interval) * (1 + hbJitter*(2*rand.Float64()-1)))
}

// run is the heartbeat loop: each beat flushes the coalesced load delta
// on a jittered interval.
func (a *Agent) run() {
	defer close(a.done)
	t := time.NewTimer(a.jittered())
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.flush()
			t.Reset(a.jittered())
		}
	}
}

// flush sends one delta frame and handles the rejoin protocol.
func (a *Agent) flush() {
	cur := a.load().ActiveSessions
	frame, err := EncodeDeltaBatch([]DeltaEntry{{ID: a.node.ID, Sessions: int32(cur - a.lastSent)}})
	if err != nil {
		log.Printf("cluster: agent %s: encode delta: %v", a.node.ID, err)
		return
	}
	ack, err := a.cl.call(ctrlReq{raw: frame}) // binary in both wire modes
	bufpool.Put(frame)
	if err != nil {
		// The call layer already retried with backoff; a failure here
		// means the coordinator is unreachable (partition, crash). Keep
		// beating at interval pace — the delta stays accumulated locally,
		// and when the partition heals the next flush carries the whole
		// net change — but log only the first miss of a run so a long
		// partition is one line, not a flood.
		if a.missed.Add(1) == 1 {
			log.Printf("cluster: agent %s: heartbeat: %v", a.node.ID, err)
		}
		a.mBeatFailures.Inc()
		return
	}
	a.missed.Store(0)
	if len(ack.Unknown) > 0 {
		// Coordinator restarted or declared us dead: rejoin. The fresh
		// registration starts from zero load, so the next delta must carry
		// the absolute count.
		if err := a.register(); err != nil {
			log.Printf("cluster: agent %s: re-register: %v", a.node.ID, err)
		} else {
			a.lastSent = 0
			a.mRejoins.Inc()
		}
		return
	}
	a.lastSent = cur
}

// Close stops the heartbeat loop; when deregister is true it also sends a
// best-effort clean deregistration (graceful shutdown) so the coordinator
// fails the node's sessions over immediately instead of waiting out the
// death deadline.
func (a *Agent) Close(deregister bool) {
	a.stopOnce.Do(func() {
		close(a.stop)
		<-a.done
		if deregister {
			if _, err := a.cl.call(ctrlReq{
				js: func() []byte { return encodeCtrl(ctagDeregister, nodeIDMsg{ID: a.node.ID}) },
				v2: func(buf []byte) ([]byte, error) { return encodeNodeIDV2(buf, ctagDeregister, a.node.ID) },
			}); err != nil {
				log.Printf("cluster: agent %s: deregister: %v", a.node.ID, err)
			}
		}
		a.cl.close()
	})
}

// ID returns the agent's node ID.
func (a *Agent) ID() string { return a.node.ID }

// String implements fmt.Stringer for log lines.
func (a *Agent) String() string {
	return fmt.Sprintf("cluster.Agent(%s → %s)", a.node.ID, a.cl.addr)
}
