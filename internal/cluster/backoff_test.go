package cluster

import (
	"testing"
	"time"
)

func TestBackoffExponentialGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if d := b.Delay(i); d != w {
			t.Errorf("attempt %d: delay %v, want %v", i, d, w)
		}
	}
}

func TestBackoffJitterDeterministicWithInjectedRand(t *testing.T) {
	mid := Backoff{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5,
		Rand: func() float64 { return 0.5 }} // multiplier exactly 1
	if d := mid.Delay(0); d != 100*time.Millisecond {
		t.Errorf("centered jitter: delay %v, want 100ms", d)
	}
	lo := Backoff{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5,
		Rand: func() float64 { return 0 }} // multiplier 1-0.5
	if d := lo.Delay(0); d != 50*time.Millisecond {
		t.Errorf("low jitter: delay %v, want 50ms", d)
	}
	hi := Backoff{Base: 100 * time.Millisecond, Max: 120 * time.Millisecond, Factor: 2, Jitter: 0.5,
		Rand: func() float64 { return 1 }} // multiplier 1+0.5, clamped to Max
	if d := hi.Delay(0); d != 120*time.Millisecond {
		t.Errorf("high jitter: delay %v, want clamp to 120ms", d)
	}
}

func TestBackoffZeroValueIsNoDelay(t *testing.T) {
	var b Backoff
	for i := 0; i < 5; i++ {
		if d := b.Delay(i); d != 0 {
			t.Fatalf("zero-value backoff attempt %d: %v, want 0", i, d)
		}
	}
}

func TestRetryBudgetExhaustsAndRefills(t *testing.T) {
	rb := NewRetryBudget(3, 10) // 3 tokens, 10/s refill
	now := time.Unix(1000, 0)
	rb.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !rb.Allow() {
			t.Fatalf("retry %d refused with budget remaining", i)
		}
	}
	if rb.Allow() {
		t.Fatal("retry allowed on an exhausted budget")
	}
	if rb.Remaining() != 0 {
		t.Fatalf("Remaining() = %d, want 0", rb.Remaining())
	}
	// 200ms at 10 tokens/s refills 2 tokens.
	now = now.Add(200 * time.Millisecond)
	if !rb.Allow() || !rb.Allow() {
		t.Fatal("refilled tokens not granted")
	}
	if rb.Allow() {
		t.Fatal("budget granted more than the refill")
	}
	// Refill never exceeds the burst.
	now = now.Add(time.Hour)
	if rb.Remaining() > 3 {
		t.Fatalf("Remaining() = %d after long idle, want ≤ burst 3", rb.Remaining())
	}
}

func TestRetryBudgetNilAllowsEverything(t *testing.T) {
	var rb *RetryBudget
	for i := 0; i < 100; i++ {
		if !rb.Allow() {
			t.Fatal("nil budget refused a retry")
		}
	}
}

func TestRetryBudgetZeroRateNeverRefills(t *testing.T) {
	rb := NewRetryBudget(1, 0)
	now := time.Unix(1000, 0)
	rb.now = func() time.Time { return now }
	if !rb.Allow() {
		t.Fatal("first retry refused")
	}
	now = now.Add(time.Hour)
	if rb.Allow() {
		t.Fatal("zero-rate budget refilled")
	}
}
