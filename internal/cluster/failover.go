package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"tunable/internal/avis"
	"tunable/internal/metrics"
	"tunable/internal/wavelet"
)

// FailoverClient is a cluster-aware avis client: it resolves its server
// through the coordinator and, when the server dies mid-session, dials a
// replacement and replays the session state — the codec announcement
// travels with the reconnect handshake, and the fovea state needs no
// re-transfer because a failed round applies nothing to the canvas, so
// the interrupted round's request is simply re-issued (with a bumped Seq)
// against the new server. Delivered increments are never re-fetched.
type FailoverClient struct {
	resolver *Resolver
	params   avis.Params
	sid      string

	ioTimeout   time.Duration
	dialTimeout time.Duration
	bw          float64
	demandCPU   float64
	demandMem   int64
	preferEdge  bool
	maxFail     int
	backoff     Backoff
	budget      *RetryBudget
	dial        func(nodeID, addr string, timeout time.Duration) (net.Conn, error)
	roundHook   func(img, round int)

	cur     *avis.RealClient
	nodeID  string
	sig     string
	failed  []string
	epoch   time.Time
	stats   []avis.ImageStat
	retries int64

	reg        *metrics.Registry
	mFailovers *metrics.Counter
	mRetries   *metrics.Counter
}

// FailoverOption customizes a FailoverClient.
type FailoverOption func(*FailoverClient)

// WithIOTimeout sets the per-frame progress deadline on data connections.
// Without it a dead server blocks forever and failover never triggers, so
// DialFailover defaults to 5s; pass 0 explicitly to wait forever.
func WithIOTimeout(d time.Duration) FailoverOption {
	return func(f *FailoverClient) { f.ioTimeout = d }
}

// WithBandwidth shapes each data connection to bytesPerSec (0 = unshaped).
func WithBandwidth(bytesPerSec float64) FailoverOption {
	return func(f *FailoverClient) { f.bw = bytesPerSec }
}

// WithSessionDemand declares the per-session resource demand presented to
// admission control (CPU as a share of one node, mem in bytes).
func WithSessionDemand(cpu float64, memBytes int64) FailoverOption {
	return func(f *FailoverClient) { f.demandCPU, f.demandMem = cpu, memBytes }
}

// WithPreferEdge marks the session as coarse-level traffic: placement
// considers edge cache nodes and prefers them over origins. When every
// matching edge has failed (or none is registered) the session lands on
// an origin instead — the fallback WithMaxFailovers already polices.
func WithPreferEdge() FailoverOption {
	return func(f *FailoverClient) { f.preferEdge = true }
}

// WithMaxFailovers bounds how many node failures one image fetch survives
// (default 3).
func WithMaxFailovers(n int) FailoverOption {
	return func(f *FailoverClient) { f.maxFail = n }
}

// WithFailoverBackoff sets the jittered exponential backoff slept between
// failover attempts (default DefaultBackoff). A crashed node's sessions
// all re-resolve at once; the jitter keeps them from stampeding the
// coordinator and the replacement server in lock-step.
func WithFailoverBackoff(b Backoff) FailoverOption {
	return func(f *FailoverClient) { f.backoff = b }
}

// WithRetryBudget caps the total retry spend of the session across all
// fetches (nil, the default, is unlimited). When the budget runs dry the
// next failure surfaces immediately instead of burning more attempts.
func WithRetryBudget(rb *RetryBudget) FailoverOption {
	return func(f *FailoverClient) { f.budget = rb }
}

// WithDialer interposes on data-plane dials — the seam the fault-injection
// layer uses to wrap each per-node connection (nodeID scopes the faults).
func WithDialer(dial func(nodeID, addr string, timeout time.Duration) (net.Conn, error)) FailoverOption {
	return func(f *FailoverClient) { f.dial = dial }
}

// WithRoundHook installs a callback invoked before each round request —
// progress reporting for UIs, and the hook fault-injection tests use to
// kill a server at a chosen point in the stream.
func WithRoundHook(fn func(img, round int)) FailoverOption {
	return func(f *FailoverClient) { f.roundHook = fn }
}

// DialFailover resolves a server through the coordinator and connects.
func DialFailover(r *Resolver, params avis.Params, opts ...FailoverOption) (*FailoverClient, error) {
	var sid [8]byte
	if _, err := rand.Read(sid[:]); err != nil {
		return nil, fmt.Errorf("cluster: session id: %w", err)
	}
	f := &FailoverClient{
		resolver:    r,
		params:      params,
		sid:         hex.EncodeToString(sid[:]),
		ioTimeout:   5 * time.Second,
		dialTimeout: 5 * time.Second,
		maxFail:     3,
		backoff:     DefaultBackoff(),
		epoch:       time.Now(),
	}
	for _, o := range opts {
		o(f)
	}
	if err := f.connect(); err != nil {
		return nil, err
	}
	return f, nil
}

// EnableMetrics instruments the client: avis_failovers_total on top of
// the usual avis_* client families (re-bound to each replacement
// connection).
func (f *FailoverClient) EnableMetrics(reg *metrics.Registry) {
	f.reg = reg
	f.mFailovers = reg.Counter("avis_failovers_total",
		"Sessions re-established on a replacement server after a node failure.")
	f.mRetries = reg.Counter("avis_round_retries_total",
		"Interrupted rounds replayed after a connection failure.")
	if f.cur != nil {
		f.cur.EnableMetrics(reg)
	}
}

// connect resolves and dials the session's current server.
func (f *FailoverClient) connect() error {
	grant, err := f.resolver.Resolve(ResolveRequest{
		SID:      f.sid,
		Exclude:  f.failed,
		CPU:      f.demandCPU,
		MemBytes: f.demandMem,
		Sig:      f.sig,
		Coarse:   f.preferEdge,
	})
	if err != nil {
		return err
	}
	var conn net.Conn
	if f.dial != nil {
		conn, err = f.dial(grant.NodeID, grant.Addr, f.dialTimeout)
	} else {
		conn, err = net.DialTimeout("tcp", grant.Addr, f.dialTimeout)
	}
	if err != nil {
		return fmt.Errorf("cluster: dial node %s (%s): %w", grant.NodeID, grant.Addr, err)
	}
	c, err := avis.NewRealClient(avis.Shape(conn, f.bw), f.params)
	if err != nil {
		conn.Close()
		return err
	}
	c.SetIOTimeout(f.ioTimeout)
	if f.reg != nil {
		c.EnableMetrics(f.reg)
	}
	// Connect replays the session's protocol state onto the new server:
	// the hello handshake plus the codec announcement from params.
	if err := c.Connect(); err != nil {
		conn.Close()
		return err
	}
	f.cur = c
	f.nodeID = grant.NodeID
	if f.sig == "" {
		// Pin the session to this image store so every failover target can
		// replay it.
		f.sig = grant.Sig
	}
	return nil
}

// failover marks the current node failed and reconnects elsewhere.
func (f *FailoverClient) failover() error {
	f.failed = append(f.failed, f.nodeID)
	if f.cur != nil {
		_ = f.cur.Close() // best effort on a dead connection
		f.cur = nil
	}
	if err := f.connect(); err != nil {
		return err
	}
	f.mFailovers.Inc()
	return nil
}

// connFailure distinguishes a dead or unreachable peer (worth a failover)
// from an application-level refusal (not retried: the replacement server
// would refuse identically).
func connFailure(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, avis.ErrIOTimeout) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Geometry returns the current server's announced geometry.
func (f *FailoverClient) Geometry() avis.Geometry { return f.cur.Geometry() }

// Node returns the ID of the node currently serving the session.
func (f *FailoverClient) Node() string { return f.nodeID }

// Failovers returns how many times the session has been re-placed.
func (f *FailoverClient) Failovers() int { return len(f.failed) }

// Retries returns how many interrupted rounds the session has replayed.
func (f *FailoverClient) Retries() int { return int(f.retries) }

// Stats returns per-image statistics.
func (f *FailoverClient) Stats() []avis.ImageStat { return f.stats }

// SetParams updates dR, codec, and level for subsequent fetches.
func (f *FailoverClient) SetParams(p avis.Params) error {
	if err := f.cur.SetParams(p); err != nil {
		return err
	}
	f.params = p
	return nil
}

// FetchImage downloads one image progressively, surviving up to
// WithMaxFailovers node deaths: an interrupted round is replayed on a
// replacement server and the transmission continues where it stopped.
func (f *FailoverClient) FetchImage(img int, canvas *wavelet.Canvas) (avis.ImageStat, error) {
	geom := f.cur.Geometry()
	plan := avis.PlanRounds(geom, f.params, img, 0)
	stat := avis.ImageStat{
		Image: img, Level: f.params.Level, Codec: f.params.Codec, DR: f.params.DR,
		Start: time.Since(f.epoch),
	}
	start := time.Now()
	var respSum time.Duration
	attempts := 0
	for i := 0; i < len(plan); {
		req := plan[i]
		req.Seq = attempts
		if f.roundHook != nil {
			f.roundHook(img, i)
		}
		t0 := time.Now()
		raw, wire, err := f.cur.FetchRound(req, canvas)
		if err != nil {
			if !connFailure(err) {
				return stat, err
			}
			attempts++
			if attempts > f.maxFail {
				return stat, fmt.Errorf("cluster: image %d: giving up after %d failovers: %w", img, f.maxFail, err)
			}
			if !f.budget.Allow() {
				return stat, fmt.Errorf("cluster: image %d: retry budget exhausted: %w", img, err)
			}
			f.retries++
			f.mRetries.Inc()
			// Jittered backoff before re-resolving: every session the dead
			// node carried is doing this at once.
			time.Sleep(f.backoff.Delay(attempts - 1))
			if ferr := f.failover(); ferr != nil {
				return stat, fmt.Errorf("cluster: failover after %v: %w", err, ferr)
			}
			if g := f.cur.Geometry(); g != geom {
				return stat, fmt.Errorf("cluster: replacement node geometry %+v differs from %+v", g, geom)
			}
			continue // replay the interrupted round on the new server
		}
		stat.RawBytes += int64(raw)
		stat.WireBytes += int64(wire)
		stat.Rounds++
		respSum += time.Since(t0)
		i++
	}
	stat.TransmitTime = time.Since(start)
	if stat.Rounds > 0 {
		stat.AvgResponse = respSum / time.Duration(stat.Rounds)
	}
	f.stats = append(f.stats, stat)
	return stat, nil
}

// Close ends the session on both planes: the data connection and the
// coordinator's reservation.
func (f *FailoverClient) Close() error {
	var err error
	if f.cur != nil {
		err = f.cur.Close()
		f.cur = nil
	}
	if eerr := f.resolver.EndSession(f.sid); eerr != nil && err == nil {
		err = eerr
	}
	return err
}
