// Package netem emulates network links with controllable bandwidth,
// latency, and loss. It provides two implementations of the same behaviour:
//
//   - Link, a duplex simulated link running on the vtime kernel, used by
//     the profiling testbed and the adaptation experiments. Bandwidth is
//     enforced by serialization delay at frame granularity, so dynamic
//     SetBandwidth calls take effect within one frame — this is how the
//     experiments in Section 7 drop the client's bandwidth mid-run.
//
//   - ShapedConn, a token-bucket wrapper for real net.Conn connections,
//     used by the cmd/ tools when the application runs over actual TCP
//     (the paper delays sends/receives to enforce the bandwidth an
//     application sees; the token bucket produces the same average rate).
package netem

import (
	"fmt"
	"time"

	"tunable/internal/metrics"
	"tunable/internal/vtime"
)

// FrameSize is the serialization granularity of simulated links. Bandwidth
// changes apply from the next frame boundary.
const FrameSize = 4096

// Message is a unit of delivery on a simulated link.
type Message struct {
	Payload []byte
	SentAt  time.Duration // virtual time the last frame left the sender
}

// Counters accumulates per-direction traffic statistics; the monitoring
// agent derives observed bandwidth from them.
type Counters struct {
	BytesSent     int64
	MsgsSent      int64
	BytesDropped  int64
	MsgsDropped   int64
	SendBusy      time.Duration // cumulative time senders spent serializing/queueing
	BytesReceived int64
	MsgsReceived  int64
	RecvWait      time.Duration // cumulative time receivers spent blocked
}

// direction is one half of a duplex link.
type direction struct {
	sim       *vtime.Sim
	name      string
	bandwidth float64 // bytes per second
	latency   time.Duration
	lossRate  float64
	rng       *splitmix
	busyUntil time.Duration
	inbox     *vtime.Chan[Message]
	ctr       Counters

	// telemetry instruments; nil (no-op) unless Link.EnableMetrics ran
	mBytesShaped  *metrics.Counter
	mBytesDropped *metrics.Counter
	mMsgsDropped  *metrics.Counter
	mQueueDelay   *metrics.Histogram
	mBandwidth    *metrics.Gauge
}

// Link is a duplex point-to-point link between two endpoints, A and B.
type Link struct {
	name string
	ab   *direction // A→B
	ba   *direction // B→A
}

// LinkOption customizes link construction.
type LinkOption func(*Link)

// WithLatency sets one-way latency for both directions (default 500 µs,
// a switched-LAN figure comparable to the paper's 100 Mbps Ethernet).
func WithLatency(d time.Duration) LinkOption {
	return func(l *Link) { l.ab.latency, l.ba.latency = d, d }
}

// WithLoss sets a message loss probability for both directions (default 0).
func WithLoss(p float64) LinkOption {
	return func(l *Link) { l.ab.lossRate, l.ba.lossRate = p, p }
}

// NewLink creates a duplex link with the given bandwidth in bytes/second
// applied to each direction independently. A zero or negative bandwidth is
// a programming error (serialization delay would be infinite and the
// simulation would hang) and panics.
func NewLink(sim *vtime.Sim, name string, bandwidth float64, opts ...LinkOption) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netem: link %s: invalid bandwidth %g (must be > 0)", name, bandwidth))
	}
	mk := func(dir string) *direction {
		return &direction{
			sim:       sim,
			name:      name + "/" + dir,
			bandwidth: bandwidth,
			latency:   500 * time.Microsecond,
			rng:       newSplitmix(hash64(name + dir)),
			inbox:     vtime.NewNamedChan[Message](sim, 1<<20, name+"/"+dir),
		}
	}
	l := &Link{name: name, ab: mk("ab"), ba: mk("ba")}
	for _, o := range opts {
		o(l)
	}
	return l
}

// EnableMetrics instruments both directions of the link. Metric families:
// netem_bytes_shaped_total (bytes serialized onto the wire, including
// later-dropped ones), netem_bytes_dropped_total, netem_msgs_dropped_total,
// netem_queue_delay_seconds (time a sender spent serializing and queueing
// behind earlier traffic per message), and netem_bandwidth_bytes_per_sec,
// all labelled by link direction.
func (l *Link) EnableMetrics(reg *metrics.Registry) {
	for _, d := range []*direction{l.ab, l.ba} {
		lbl := metrics.L("dir", d.name)
		d.mBytesShaped = reg.Counter("netem_bytes_shaped_total",
			"Bytes serialized onto the link.", lbl)
		d.mBytesDropped = reg.Counter("netem_bytes_dropped_total",
			"Bytes lost to link loss or a closed peer.", lbl)
		d.mMsgsDropped = reg.Counter("netem_msgs_dropped_total",
			"Messages lost to link loss or a closed peer.", lbl)
		d.mQueueDelay = reg.Histogram("netem_queue_delay_seconds",
			"Per-message time spent serializing and queueing.", lbl)
		d.mBandwidth = reg.Gauge("netem_bandwidth_bytes_per_sec",
			"Configured link bandwidth.", lbl)
		d.mBandwidth.Set(d.bandwidth)
	}
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// A returns the endpoint on the A side (sends A→B, receives B→A).
func (l *Link) A() *Endpoint { return &Endpoint{out: l.ab, in: l.ba, link: l} }

// B returns the endpoint on the B side.
func (l *Link) B() *Endpoint { return &Endpoint{out: l.ba, in: l.ab, link: l} }

// SetBandwidth reconfigures both directions; it takes effect at the next
// frame boundary.
func (l *Link) SetBandwidth(bps float64) error {
	if bps <= 0 {
		return fmt.Errorf("netem: invalid bandwidth %g", bps)
	}
	l.ab.bandwidth = bps
	l.ba.bandwidth = bps
	l.ab.mBandwidth.Set(bps)
	l.ba.mBandwidth.Set(bps)
	return nil
}

// Bandwidth returns the current A→B bandwidth in bytes/second.
func (l *Link) Bandwidth() float64 { return l.ab.bandwidth }

// SetLatency reconfigures one-way latency for both directions.
func (l *Link) SetLatency(d time.Duration) {
	l.ab.latency = d
	l.ba.latency = d
}

// Latency returns the current A→B one-way latency.
func (l *Link) Latency() time.Duration { return l.ab.latency }

// SetLoss reconfigures the message loss probability for both directions;
// it applies to messages sent after the call. Loss 1 black-holes the link
// (a full partition): every message is serialized and then dropped.
func (l *Link) SetLoss(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("netem: invalid loss rate %g", p)
	}
	l.ab.lossRate = p
	l.ba.lossRate = p
	return nil
}

// SetLossAtoB reconfigures loss for the A→B direction only; together with
// SetLossBtoA it expresses asymmetric partitions (A's messages vanish
// while B's still arrive).
func (l *Link) SetLossAtoB(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("netem: invalid loss rate %g", p)
	}
	l.ab.lossRate = p
	return nil
}

// SetLossBtoA reconfigures loss for the B→A direction only.
func (l *Link) SetLossBtoA(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("netem: invalid loss rate %g", p)
	}
	l.ba.lossRate = p
	return nil
}

// Loss returns the current A→B loss probability.
func (l *Link) Loss() float64 { return l.ab.lossRate }

// Endpoint is one side of a duplex link.
type Endpoint struct {
	link *Link
	out  *direction
	in   *direction
}

// Link returns the underlying link.
func (e *Endpoint) Link() *Link { return e.link }

// Send transmits payload, blocking the calling process for the
// serialization time (len/bandwidth) plus any queueing behind earlier
// messages in the same direction; delivery into the peer's inbox happens
// one latency later. Lost messages still consume serialization time (the
// bits were sent) but never arrive.
func (e *Endpoint) Send(p *vtime.Proc, payload []byte) {
	d := e.out
	start := p.Now()
	remaining := len(payload)
	for remaining > 0 {
		frame := remaining
		if frame > FrameSize {
			frame = FrameSize
		}
		bw := d.bandwidth
		ser := time.Duration(float64(frame) / bw * float64(time.Second))
		if d.busyUntil < p.Now() {
			d.busyUntil = p.Now()
		}
		d.busyUntil += ser
		p.SleepUntil(d.busyUntil)
		remaining -= frame
	}
	d.ctr.SendBusy += p.Now() - start
	d.ctr.BytesSent += int64(len(payload))
	d.ctr.MsgsSent++
	d.mBytesShaped.Add(float64(len(payload)))
	d.mQueueDelay.Observe((p.Now() - start).Seconds())
	if d.lossRate > 0 && d.rng.float64() < d.lossRate {
		d.ctr.BytesDropped += int64(len(payload))
		d.ctr.MsgsDropped++
		d.mBytesDropped.Add(float64(len(payload)))
		d.mMsgsDropped.Inc()
		return
	}
	msg := Message{Payload: payload, SentAt: p.Now()}
	deliver := func() {
		// Frames still in flight when the connection closes are dropped,
		// as on a real network.
		if d.inbox.Closed() {
			d.ctr.BytesDropped += int64(len(msg.Payload))
			d.ctr.MsgsDropped++
			d.mBytesDropped.Add(float64(len(msg.Payload)))
			d.mMsgsDropped.Inc()
			return
		}
		if !d.inbox.TrySend(msg) {
			panic("netem: inbox overflow on " + d.name)
		}
	}
	lat := d.latency
	if lat <= 0 {
		deliver()
		return
	}
	d.sim.After(lat, deliver)
}

// Recv blocks until a message arrives and returns its payload.
func (e *Endpoint) Recv(p *vtime.Proc) ([]byte, bool) {
	start := p.Now()
	msg, ok := e.in.inbox.Recv(p)
	e.in.ctr.RecvWait += p.Now() - start
	if ok {
		e.in.ctr.BytesReceived += int64(len(msg.Payload))
		e.in.ctr.MsgsReceived++
	}
	return msg.Payload, ok
}

// RecvTimeout is Recv with a deadline; ready=false on timeout.
func (e *Endpoint) RecvTimeout(p *vtime.Proc, d time.Duration) (payload []byte, ok, ready bool) {
	start := p.Now()
	msg, ok, ready := e.in.inbox.RecvTimeout(p, d)
	e.in.ctr.RecvWait += p.Now() - start
	if ready && ok {
		e.in.ctr.BytesReceived += int64(len(msg.Payload))
		e.in.ctr.MsgsReceived++
	}
	return msg.Payload, ok, ready
}

// Close closes the incoming direction's inbox, waking blocked receivers on
// the *peer* side of subsequent Recv calls with ok=false.
func (e *Endpoint) Close() { e.out.inbox.Close() }

// OutCounters returns a snapshot of the outgoing direction's counters.
func (e *Endpoint) OutCounters() Counters { return e.out.ctr }

// InCounters returns a snapshot of the incoming direction's counters.
func (e *Endpoint) InCounters() Counters { return e.in.ctr }

// splitmix is a deterministic PRNG for loss decisions.
type splitmix struct{ state uint64 }

func newSplitmix(seed uint64) *splitmix { return &splitmix{state: seed} }

func (r *splitmix) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitmix) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

func hash64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
