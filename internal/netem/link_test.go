package netem

import (
	"math"
	"net"
	"testing"
	"time"

	"tunable/internal/vtime"
)

func TestSendSerializationTime(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 100_000, WithLatency(0)) // 100 KB/s
	var sendTook time.Duration
	sim.Spawn("sender", func(p *vtime.Proc) {
		start := p.Now()
		l.A().Send(p, make([]byte, 50_000))
		sendTook = p.Now() - start
	})
	sim.Spawn("receiver", func(p *vtime.Proc) {
		if _, ok := l.B().Recv(p); !ok {
			t.Error("recv failed")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sendTook.Seconds()-0.5) > 0.01 {
		t.Fatalf("50 KB at 100 KB/s took %v, want ~0.5s", sendTook)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "wan", 1e9, WithLatency(80*time.Millisecond))
	var deliveredAt time.Duration
	sim.Spawn("sender", func(p *vtime.Proc) {
		l.A().Send(p, []byte("x"))
	})
	sim.Spawn("receiver", func(p *vtime.Proc) {
		l.B().Recv(p)
		deliveredAt = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveredAt < 80*time.Millisecond || deliveredAt > 81*time.Millisecond {
		t.Fatalf("delivered at %v, want ~80ms", deliveredAt)
	}
}

func TestBandwidthChangeMidTransfer(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 100_000, WithLatency(0))
	// Halve the bandwidth after the first second: 100 KB sent as
	// 1 s × 100 KB/s = 100 KB? No — change at t=1s to 50 KB/s. Send 150 KB:
	// first 100 KB in 1 s, remaining 50 KB at 50 KB/s in 1 s → 2 s total.
	sim.After(time.Second, func() {
		if err := l.SetBandwidth(50_000); err != nil {
			t.Error(err)
		}
	})
	var took time.Duration
	sim.Spawn("sender", func(p *vtime.Proc) {
		start := p.Now()
		l.A().Send(p, make([]byte, 150_000))
		took = p.Now() - start
	})
	sim.Spawn("receiver", func(p *vtime.Proc) { l.B().Recv(p) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(took.Seconds()-2.0) > 0.05 {
		t.Fatalf("took %v, want ~2s with mid-transfer bandwidth drop", took)
	}
}

func TestQueueingBehindEarlierMessages(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 100_000, WithLatency(0))
	var secondTook time.Duration
	sim.Spawn("s1", func(p *vtime.Proc) {
		l.A().Send(p, make([]byte, 100_000)) // occupies the wire 1 s
	})
	sim.Spawn("s2", func(p *vtime.Proc) {
		start := p.Now()
		l.A().Send(p, make([]byte, 100_000))
		secondTook = p.Now() - start
	})
	sim.Spawn("r", func(p *vtime.Proc) {
		l.B().Recv(p)
		l.B().Recv(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// The two senders interleave frames; both finish by 2 s, and the second
	// sender observed queueing (its send took more than its own 1 s of
	// serialization).
	if secondTook <= time.Second {
		t.Fatalf("second send took %v; expected queueing delay", secondTook)
	}
}

func TestDuplexDirectionsIndependent(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 100_000, WithLatency(0))
	var aTook, bTook time.Duration
	sim.Spawn("a", func(p *vtime.Proc) {
		start := p.Now()
		l.A().Send(p, make([]byte, 100_000))
		aTook = p.Now() - start
	})
	sim.Spawn("b", func(p *vtime.Proc) {
		start := p.Now()
		l.B().Send(p, make([]byte, 100_000))
		bTook = p.Now() - start
	})
	sim.Spawn("ra", func(p *vtime.Proc) { l.A().Recv(p) })
	sim.Spawn("rb", func(p *vtime.Proc) { l.B().Recv(p) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Full duplex: each direction gets the whole bandwidth.
	if math.Abs(aTook.Seconds()-1.0) > 0.02 || math.Abs(bTook.Seconds()-1.0) > 0.02 {
		t.Fatalf("aTook=%v bTook=%v, want ~1s each", aTook, bTook)
	}
}

func TestLossDropsMessages(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lossy", 1e9, WithLatency(0), WithLoss(0.5))
	const n = 200
	sim.Spawn("sender", func(p *vtime.Proc) {
		for i := 0; i < n; i++ {
			l.A().Send(p, []byte{byte(i)})
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	c := l.A().OutCounters()
	if c.MsgsSent != n {
		t.Fatalf("sent %d", c.MsgsSent)
	}
	if c.MsgsDropped < n/4 || c.MsgsDropped > 3*n/4 {
		t.Fatalf("dropped %d of %d at 50%% loss", c.MsgsDropped, n)
	}
}

func TestCountersTrackTraffic(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 100_000, WithLatency(0))
	sim.Spawn("sender", func(p *vtime.Proc) {
		l.A().Send(p, make([]byte, 25_000))
		l.A().Send(p, make([]byte, 25_000))
	})
	sim.Spawn("receiver", func(p *vtime.Proc) {
		l.B().Recv(p)
		l.B().Recv(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	out := l.A().OutCounters()
	if out.BytesSent != 50_000 || out.MsgsSent != 2 {
		t.Fatalf("out counters %+v", out)
	}
	// Observed bandwidth from the sender's perspective: bytes / busy time.
	obs := float64(out.BytesSent) / out.SendBusy.Seconds()
	if math.Abs(obs-100_000)/100_000 > 0.02 {
		t.Fatalf("observed bandwidth %.0f, want ~100000", obs)
	}
	in := l.B().InCounters()
	if in.BytesReceived != 50_000 || in.MsgsReceived != 2 {
		t.Fatalf("in counters %+v", in)
	}
}

func TestRecvTimeout(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e6, WithLatency(0))
	var ready bool
	sim.Spawn("receiver", func(p *vtime.Proc) {
		_, _, ready = l.B().RecvTimeout(p, 50*time.Millisecond)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if ready {
		t.Fatal("expected timeout on silent link")
	}
}

func TestCloseWakesPeer(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e6, WithLatency(0))
	var ok = true
	sim.Spawn("receiver", func(p *vtime.Proc) {
		_, ok = l.B().Recv(p)
	})
	sim.Spawn("closer", func(p *vtime.Proc) {
		p.Sleep(time.Millisecond)
		l.A().Close()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("receiver not woken by close")
	}
}

func TestInvalidBandwidthRejected(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e6)
	if err := l.SetBandwidth(0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if err := l.SetBandwidth(-5); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestShapedConnLimitsRate(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	shaped := NewShapedConn(a, 1<<20) // 1 MiB/s
	const total = 256 << 10           // 256 KiB → ~0.25 s minus burst credit
	done := make(chan time.Duration, 1)
	go func() {
		buf := make([]byte, 32<<10)
		var n int
		for n < total {
			m, err := b.Read(buf)
			if err != nil {
				t.Error(err)
				return
			}
			n += m
		}
	}()
	start := time.Now()
	if _, err := shaped.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	done <- elapsed
	// Burst credit is 128 KiB; remaining 128 KiB at 1 MiB/s ≈ 125 ms.
	if elapsed < 80*time.Millisecond {
		t.Fatalf("write finished in %v; shaping ineffective", elapsed)
	}
}

func TestShapedConnSetBandwidth(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	shaped := NewShapedConn(a, 1e6)
	if shaped.Bandwidth() != 1e6 {
		t.Fatal("initial rate")
	}
	shaped.SetBandwidth(5e5)
	if shaped.Bandwidth() != 5e5 {
		t.Fatal("rate after set")
	}
}

func TestLossDeterministicPerLink(t *testing.T) {
	run := func() int64 {
		sim := vtime.NewSim()
		l := NewLink(sim, "lossy", 1e9, WithLatency(0), WithLoss(0.3))
		sim.Spawn("sender", func(p *vtime.Proc) {
			for i := 0; i < 100; i++ {
				l.A().Send(p, []byte{byte(i)})
			}
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return l.A().OutCounters().MsgsDropped
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("loss not deterministic: %d vs %d", a, b)
	}
}

func TestLatencyReconfigurable(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e9, WithLatency(10*time.Millisecond))
	var first, second time.Duration
	sim.Spawn("sender", func(p *vtime.Proc) {
		l.A().Send(p, []byte{1})
		p.Sleep(time.Second)
		l.SetLatency(100 * time.Millisecond)
		l.A().Send(p, []byte{2})
	})
	sim.Spawn("receiver", func(p *vtime.Proc) {
		start := p.Now()
		l.B().Recv(p)
		first = p.Now() - start
		start2 := p.Now()
		l.B().Recv(p)
		second = p.Now() - start2
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if first > 11*time.Millisecond {
		t.Fatalf("first delivery %v", first)
	}
	if second < 100*time.Millisecond {
		t.Fatalf("second delivery %v ignored new latency", second)
	}
}

func TestSmallMessagesNotBatched(t *testing.T) {
	// Many tiny messages keep their individual identities (one Recv each).
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e6, WithLatency(0))
	const n = 50
	sim.Spawn("sender", func(p *vtime.Proc) {
		for i := 0; i < n; i++ {
			l.A().Send(p, []byte{byte(i)})
		}
	})
	got := 0
	sim.Spawn("receiver", func(p *vtime.Proc) {
		for i := 0; i < n; i++ {
			msg, ok := l.B().Recv(p)
			if !ok || len(msg) != 1 || msg[0] != byte(i) {
				t.Errorf("message %d: %v %v", i, msg, ok)
				return
			}
			got++
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("received %d of %d", got, n)
	}
}
