package netem

import (
	"testing"
	"time"

	"tunable/internal/vtime"
)

func TestNewLinkInvalidBandwidthPanics(t *testing.T) {
	for _, bw := range []float64{0, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink with bandwidth %g did not panic", bw)
				}
			}()
			NewLink(vtime.NewSim(), "bad", bw)
		}()
	}
}

func TestSendToClosedLinkDropsInFlight(t *testing.T) {
	sim := vtime.NewSim()
	// Nonzero latency so the frame is still in flight when the link closes.
	l := NewLink(sim, "lan", 1e6, WithLatency(10*time.Millisecond))
	sim.Spawn("sender", func(p *vtime.Proc) {
		l.A().Send(p, make([]byte, 1000))
		// Close A→B before the latency timer delivers the message, then
		// stay alive past the delivery instant (the sim ends when the last
		// process exits, and the drop happens at delivery time).
		l.A().Close()
		p.Sleep(50 * time.Millisecond)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	out := l.A().OutCounters()
	if out.MsgsSent != 1 || out.MsgsDropped != 1 || out.BytesDropped != 1000 {
		t.Fatalf("closed-link send counters: %+v, want the in-flight message dropped", out)
	}
}

func TestSendAfterCloseNeverDelivers(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e6, WithLatency(time.Millisecond))
	var got bool
	sim.Spawn("sender", func(p *vtime.Proc) {
		l.A().Close()
		l.A().Send(p, []byte("ghost"))
		p.Sleep(50 * time.Millisecond) // outlive the delivery instant
	})
	sim.Spawn("receiver", func(p *vtime.Proc) {
		_, ok := l.B().Recv(p)
		got = ok
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("message delivered through a closed link")
	}
	if d := l.A().OutCounters().MsgsDropped; d != 1 {
		t.Fatalf("MsgsDropped = %d, want 1", d)
	}
}

func TestRecvOnClosedLinkReturnsNotOK(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e6)
	var ok bool
	sim.Spawn("receiver", func(p *vtime.Proc) {
		_, ok = l.B().Recv(p)
	})
	sim.Spawn("closer", func(p *vtime.Proc) {
		p.Sleep(time.Millisecond)
		l.A().Close()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Recv on a closed link reported ok")
	}
}

func TestSetLossValidation(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e6)
	if err := l.SetLoss(-0.1); err == nil {
		t.Error("SetLoss(-0.1) accepted")
	}
	if err := l.SetLoss(1.1); err == nil {
		t.Error("SetLoss(1.1) accepted")
	}
	if err := l.SetLossAtoB(0.3); err != nil {
		t.Fatal(err)
	}
	if got := l.Loss(); got != 0.3 {
		t.Fatalf("Loss() = %v after SetLossAtoB(0.3)", got)
	}
	if err := l.SetBandwidth(-5); err == nil {
		t.Error("SetBandwidth(-5) accepted")
	}
}

func TestAsymmetricLossPartitionsOneDirection(t *testing.T) {
	sim := vtime.NewSim()
	l := NewLink(sim, "lan", 1e6, WithLatency(0))
	if err := l.SetLossAtoB(1); err != nil { // A cannot reach B; B can reach A
		t.Fatal(err)
	}
	var fromA, fromB bool
	sim.Spawn("a", func(p *vtime.Proc) {
		l.A().Send(p, []byte("a→b"))
		_, ok, _ := l.A().RecvTimeout(p, 100*time.Millisecond)
		fromB = ok
	})
	sim.Spawn("b", func(p *vtime.Proc) {
		l.B().Send(p, []byte("b→a"))
		_, ok, _ := l.B().RecvTimeout(p, 100*time.Millisecond)
		fromA = ok
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fromA {
		t.Fatal("A→B delivered through a full-loss direction")
	}
	if !fromB {
		t.Fatal("B→A should still deliver in an asymmetric partition")
	}
}
