package netem

import (
	"net"
	"sync"
	"time"

	"tunable/internal/metrics"
)

// ShapedConn wraps a real net.Conn with token-bucket bandwidth shaping, the
// real-network analogue of the paper's delayed sends and receives. It is
// used by the cmd/ tools when the visualization application runs over
// actual TCP; the simulated experiments use Link instead.
type ShapedConn struct {
	net.Conn

	mu     sync.Mutex
	rate   float64 // bytes per second; 0 disables shaping
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   time.Time

	// telemetry instruments; nil (no-op) unless EnableMetrics ran
	mBytesShaped   *metrics.Counter
	mThrottleWaits *metrics.Counter
}

// EnableMetrics instruments the connection: netem_conn_bytes_shaped_total
// counts bytes admitted through the token bucket and
// netem_conn_throttle_waits_total counts the sleeps the bucket imposed.
func (c *ShapedConn) EnableMetrics(reg *metrics.Registry) {
	c.mBytesShaped = reg.Counter("netem_conn_bytes_shaped_total",
		"Bytes written through the token-bucket shaper.")
	c.mThrottleWaits = reg.Counter("netem_conn_throttle_waits_total",
		"Times a write slept waiting for shaping tokens.")
}

// NewShapedConn wraps conn with a bandwidth limit in bytes/second. A zero
// or negative rate disables shaping.
func NewShapedConn(conn net.Conn, bytesPerSec float64) *ShapedConn {
	burst := bytesPerSec / 8
	if burst < FrameSize {
		burst = FrameSize
	}
	return &ShapedConn{
		Conn:   conn,
		rate:   bytesPerSec,
		burst:  burst,
		tokens: burst,
		last:   time.Now(),
	}
}

// SetBandwidth changes the shaping rate; safe for concurrent use.
func (c *ShapedConn) SetBandwidth(bytesPerSec float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refillLocked(time.Now())
	c.rate = bytesPerSec
	burst := bytesPerSec / 8
	if burst < FrameSize {
		burst = FrameSize
	}
	c.burst = burst
	if c.tokens > burst {
		c.tokens = burst
	}
}

// Bandwidth returns the current shaping rate.
func (c *ShapedConn) Bandwidth() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rate
}

func (c *ShapedConn) refillLocked(now time.Time) {
	dt := now.Sub(c.last).Seconds()
	if dt > 0 {
		c.tokens += dt * c.rate
		if c.tokens > c.burst {
			c.tokens = c.burst
		}
		c.last = now
	}
}

// take blocks until n tokens are available and consumes them.
func (c *ShapedConn) take(n int) {
	for n > 0 {
		c.mu.Lock()
		if c.rate <= 0 {
			c.mu.Unlock()
			return
		}
		now := time.Now()
		c.refillLocked(now)
		chunk := float64(n)
		if chunk > c.burst {
			chunk = c.burst
		}
		if c.tokens >= chunk {
			c.tokens -= chunk
			n -= int(chunk)
			c.mu.Unlock()
			continue
		}
		deficit := chunk - c.tokens
		wait := time.Duration(deficit / c.rate * float64(time.Second))
		c.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		c.mThrottleWaits.Inc()
		time.Sleep(wait)
	}
}

// Write shapes outgoing traffic to the configured rate.
func (c *ShapedConn) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		end := written + FrameSize
		if end > len(b) {
			end = len(b)
		}
		c.take(end - written)
		n, err := c.Conn.Write(b[written:end])
		written += n
		c.mBytesShaped.Add(float64(n))
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
