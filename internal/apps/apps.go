// Package apps is the first-class workload layer: it promotes the
// applications the framework tunes from throwaway examples into
// production implementations behind one interface — a tunability spec, a
// profiled performance database, a session driver that runs in virtual
// time on shared sandbox hosts, and a QoS verdict — so experiments can
// mix application classes on one resource pool and let the scheduler
// arbitrate between them.
//
// Two applications are implemented: Video, a frame-rate/quality-adaptive
// stream (the motivating example from the paper's introduction), and
// Foveal, the paper's active visualization session (internal/avis). The
// Harness runs a seeded mix of both classes under admission control
// (scheduler.Admission for host CPU, scheduler.Arbiter for cross-class
// shares of the link pool), with per-class tuning agents re-planning each
// session through the scheduler as contention and injected faults move
// the resources underneath it.
package apps

import (
	"fmt"
	"time"

	"tunable/internal/netem"
	"tunable/internal/perfdb"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/steering"
	"tunable/internal/vtime"
)

// QoS is an application's judgement of one finished session.
type QoS struct {
	// Pass reports whether the session met the class's service objective.
	Pass bool
	// Score is the session's headline quality number (higher is better
	// regardless of the underlying metric's direction), used for ranking.
	Score float64
	// Reason names the violated objective when Pass is false.
	Reason string
}

// SessionEnv is the execution environment the harness hands a session:
// the admitted sandboxes, the session's (pool-backed) link, a steering
// agent carrying the tuning agent's decisions, and the session's virtual
// deadline budget.
type SessionEnv struct {
	Sim    *vtime.Sim
	Link   *netem.Link
	Client *sandbox.Sandbox
	Server *sandbox.Sandbox
	// Steer carries configuration switches from the class's tuning agent;
	// sessions apply them at their transition points.
	Steer *steering.Agent
	// Seed is the session's deterministic stream for any internal jitter.
	Seed uint64
}

// Application is one first-class tunable workload.
type Application interface {
	// Class names the application class ("video", "foveal"); it doubles as
	// the arbitration class and the fault-injection target label prefix.
	Class() string
	// Spec returns the application's tunability specification.
	Spec() *spec.App
	// DefaultConfig is the configuration a session starts in before its
	// tuning agent has made a decision (and the fallback when the
	// scheduler finds nothing feasible).
	DefaultConfig() spec.Config
	// DB returns the profiled performance database (built once, cached).
	DB() (*perfdb.DB, error)
	// Preferences is the ordered preference list for the class's
	// scheduler.
	Preferences() []scheduler.Preference
	// Demand is the per-component CPU demand (component → resource vector)
	// one session reserves through admission control. Components must be
	// "client" and/or "server".
	Demand() map[string]resource.Vector
	// LinkDemand is one session's nominal link bandwidth reservation in
	// bytes/second — the amount the arbiter debits from the class's share
	// of the link pool.
	LinkDemand() float64
	// Run drives one session to completion in virtual time and returns
	// its observed QoS metrics (keys must be declared in Spec).
	Run(p *vtime.Proc, env *SessionEnv) (spec.Metrics, error)
	// Verdict judges a finished session's metrics against the class's
	// service objective.
	Verdict(m spec.Metrics) QoS
}

// clientShare extracts the client-component CPU share from an
// application's demand map (the share its tuning agent plans against).
func clientShare(app Application) float64 {
	if d, ok := app.Demand()["client"]; ok {
		return d.Get(resource.CPU, 1.0)
	}
	return 1.0
}

// sessionResources is the resource vector a session's tuning agent plans
// with: the session link's current bandwidth (which injected faults and
// pool retuning move) and the client's admitted CPU share.
func sessionResources(env *SessionEnv, share float64) resource.Vector {
	return resource.Vector{
		resource.Bandwidth: env.Link.Bandwidth(),
		resource.CPU:       share,
	}
}

// meanDuration is a shared helper for averaging per-round durations.
func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// validateMetrics checks that an application's Run returned exactly the
// declared QoS metrics — the contract the report and verdict code rely
// on.
func validateMetrics(app Application, m spec.Metrics) error {
	for name := range m {
		if app.Spec().Metric(name) == nil {
			return fmt.Errorf("apps: %s session yielded undeclared metric %q", app.Class(), name)
		}
	}
	for _, d := range app.Spec().Metrics {
		if _, ok := m[d.Name]; !ok {
			return fmt.Errorf("apps: %s session missing declared metric %q", app.Class(), d.Name)
		}
	}
	return nil
}
