package apps

import (
	"testing"
	"time"

	"tunable/internal/resource"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
)

// BenchmarkAppsMix measures the mixed-workload harness end to end: a
// seeded video+foveal mix per iteration, reporting wall-clock session
// throughput and the per-class p95 QoS scores of the last run (the
// numbers BENCH_apps.json gates).
func BenchmarkAppsMix(b *testing.B) {
	video, foveal := NewVideo(), NewFoveal()
	// Build both profile databases outside the timed region.
	if _, err := video.DB(); err != nil {
		b.Fatal(err)
	}
	if _, err := foveal.DB(); err != nil {
		b.Fatal(err)
	}
	const sessions = 6 // 4 video + 2 foveal
	var last *MixReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := RunMix(HarnessConfig{
			Seed:     42,
			LinkPool: 1.2e6,
			Classes: []ClassConfig{
				{App: video, Sessions: 4, ArrivalEvery: 300 * time.Millisecond},
				{App: foveal, Sessions: 2, ArrivalEvery: 500 * time.Millisecond},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(sessions*b.N)/secs, "sessions/sec")
	}
	for _, c := range last.Classes {
		b.ReportMetric(c.ScoreP95, c.Class+"-p95-qos")
	}
}

// BenchmarkAppsArbiter measures one acquire/release round trip through
// the cross-class arbiter — the admission hot path every session pays.
func BenchmarkAppsArbiter(b *testing.B) {
	arb, err := scheduler.NewArbiter(
		resource.Vector{resource.Bandwidth: 10e6, resource.CPU: 16},
		[]scheduler.ClassShare{
			{Class: "video", Weight: 1},
			{Class: "foveal", Weight: 1},
		})
	if err != nil {
		b.Fatal(err)
	}
	want := resource.Vector{resource.Bandwidth: 128e3, resource.CPU: 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := arb.Acquire("video", want)
		if err != nil {
			b.Fatal(err)
		}
		arb.Release(g)
	}
}

// BenchmarkAppsVideoSession measures one fixed-configuration video
// stream in a fresh virtual world — the per-session cost of the promoted
// video application without harness overhead.
func BenchmarkAppsVideoSession(b *testing.B) {
	v := NewVideo()
	cfg := spec.Config{"fps": spec.Int(30), "q": spec.Enum("high")}
	res := resource.Vector{resource.Bandwidth: 384e3, resource.CPU: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := v.profileRun(cfg, res)
		if err != nil {
			b.Fatal(err)
		}
		if m["frame_rate"] <= 0 {
			b.Fatal("no frames delivered")
		}
	}
}
