package apps

import (
	"fmt"
	"sync"
	"time"

	"tunable/internal/netem"
	"tunable/internal/perfdb"
	"tunable/internal/profiler"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/vtime"
)

// VideoSpecSource is the video stream's tunability specification — the
// motivating example from the paper's introduction ("a distributed
// application conveying a video stream ... can respond to network
// bandwidth reduction by compressing the stream or selectively dropping
// frames"), promoted to a first-class application.
const VideoSpecSource = `
app videostream;

control_parameters {
    int fps in {10, 15, 30};    // frame rate: drop frames under pressure
    enum q in {low, high};      // per-frame quality: compress harder
}

execution_env {
    host client;
    host server;
    link net from client to server;
}

qos_metric {
    scalar frame_rate maximize; // delivered frames per second
    duration lag minimize;      // stream time behind real time at the end
}

task stream {
    params { fps, q }
    uses { client.cpu, server.cpu, net.bandwidth }
    yields { frame_rate, lag }
    guard ( fps >= 10 )
}

transition {
    guard ( new.q != cur.q )
    action reencode;
}
`

// Video stream cost constants: encoded frame sizes and the processor work
// the stream charges to its sandboxes. The numbers are chosen so that on
// the harness's 450 MHz hosts both knobs bind: a high-quality 30 fps
// stream saturates a 0.05 CPU share on either end, and its wire rate
// (360 KB/s) dwarfs a low-quality 10 fps stream (40 KB/s).
const (
	videoFrameBytesHigh   = 12_000
	videoFrameBytesLow    = 4_000
	videoEncodeCyclesByte = 60    // server-side, per encoded byte
	videoDecodeCyclesByte = 40    // client-side, per encoded byte
	videoDisplayCycles    = 1.0e6 // client-side, per frame
)

// videoFrameBytes returns the encoded size of one frame at quality q.
func videoFrameBytes(q string) int {
	if q == "high" {
		return videoFrameBytesHigh
	}
	return videoFrameBytesLow
}

// Video is the frame-rate/quality-adaptive streaming application.
type Video struct {
	// StreamSeconds is the virtual length of one session (default 5).
	StreamSeconds int

	once sync.Once
	db   *perfdb.DB
	err  error
}

// NewVideo returns the video application with default session length.
func NewVideo() *Video { return &Video{StreamSeconds: 5} }

// Class implements Application.
func (v *Video) Class() string { return "video" }

// Spec implements Application.
func (v *Video) Spec() *spec.App { return spec.MustParse(VideoSpecSource) }

// DefaultConfig implements Application: a mid-rate low-quality stream
// until the tuning agent has spoken.
func (v *Video) DefaultConfig() spec.Config {
	return spec.Config{"fps": spec.Int(15), "q": spec.Enum("low")}
}

// Preferences implements Application: keep the stream inside its lag
// budget and maximize frame rate; fall back to best-effort frame rate.
func (v *Video) Preferences() []scheduler.Preference {
	return []scheduler.Preference{
		{
			Name:        "smooth",
			Constraints: []scheduler.Constraint{scheduler.AtMost("lag", 0.25)},
			Objective:   "frame_rate",
		},
		{Name: "best-effort", Objective: "frame_rate"},
	}
}

// Demand implements Application: one modest CPU slice per end.
func (v *Video) Demand() map[string]resource.Vector {
	return map[string]resource.Vector{
		"client": {resource.CPU: 0.10},
		"server": {resource.CPU: 0.10},
	}
}

// LinkDemand implements Application: the per-session bandwidth
// reservation, enough for a mid-quality stream; the tuning agent plans
// the configuration that fits whatever the session actually observes.
func (v *Video) LinkDemand() float64 { return 128e3 }

// DB implements Application: profile every configuration across the
// bandwidth/CPU grid in the virtual testbed, once per process.
func (v *Video) DB() (*perfdb.DB, error) {
	v.once.Do(func() {
		db := perfdb.New(v.Spec())
		grid := resource.NewGrid(
			resource.Axis{Kind: resource.Bandwidth,
				Points: []float64{24e3, 48e3, 96e3, 192e3, 384e3}},
			resource.Axis{Kind: resource.CPU, Points: []float64{0.05, 0.10, 0.20}},
		)
		driver, err := profiler.New(db, grid, v.profileRun)
		if err != nil {
			v.err = err
			return
		}
		v.err = driver.Populate()
		v.db = db
	})
	return v.db, v.err
}

// profileRun is one testbed sample: a fixed-configuration stream in a
// fresh world at the given resources.
func (v *Video) profileRun(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
	sim := vtime.NewSim()
	share := res.Get(resource.CPU, 1.0)
	ch := sandbox.NewHost(sim, "client-host", 450e6)
	sh := sandbox.NewHost(sim, "server-host", 450e6)
	csb, err := ch.NewSandbox("client", share, 0)
	if err != nil {
		return nil, err
	}
	ssb, err := sh.NewSandbox("server", share, 0)
	if err != nil {
		return nil, err
	}
	link := netem.NewLink(sim, "net", res.Get(resource.Bandwidth, v.LinkDemand()))
	var m spec.Metrics
	sim.Spawn("video-profile", func(p *vtime.Proc) {
		m = v.stream(p, link, csb, ssb, func(*vtime.Proc) spec.Config { return cfg })
	})
	if err := sim.Run(); err != nil {
		return nil, err
	}
	return m, nil
}

// Run implements Application: an adaptive stream whose configuration
// follows the steering agent.
func (v *Video) Run(p *vtime.Proc, env *SessionEnv) (spec.Metrics, error) {
	m := v.stream(p, env.Link, env.Client, env.Server, func(p *vtime.Proc) spec.Config {
		cfg, _ := env.Steer.MaybeApply(p)
		return cfg
	})
	return m, nil
}

// stream pushes StreamSeconds of paced frames through the link, charging
// encode work to the server sandbox and decode+display work to the client
// sandbox, and measures delivered frame rate and end-of-stream lag. The
// next configuration is re-read from cfgFn before every frame, so steering
// switches take effect at frame boundaries (the application's transition
// points).
func (v *Video) stream(p *vtime.Proc, link *netem.Link, csb, ssb *sandbox.Sandbox,
	cfgFn func(*vtime.Proc) spec.Config) spec.Metrics {

	seconds := v.StreamSeconds
	if seconds <= 0 {
		seconds = 5
	}
	horizon := time.Duration(seconds) * time.Second
	start := p.Now()

	var delivered int
	var lastDone time.Duration
	done := vtime.NewChan[struct{}](p.Sim(), 1)
	p.Spawn("video-recv", func(p *vtime.Proc) {
		defer done.TrySend(struct{}{})
		for {
			payload, ok := link.B().Recv(p)
			if !ok {
				return
			}
			csb.Compute(p, float64(len(payload))*videoDecodeCyclesByte+videoDisplayCycles)
			delivered++
			lastDone = p.Now() - start
		}
	})
	// Frames are captured on an absolute schedule — next advances by the
	// current frame interval regardless of how long the encode+send of the
	// previous frame took. When the link (or a sandbox) is slower than the
	// offered rate, the sender falls behind the schedule and the stream's
	// lag accumulates; that, not sender backpressure, is what the lag
	// metric measures and what the scheduler trades frame rate against.
	for next := time.Duration(0); next < horizon; {
		p.SleepUntil(start + next)
		cfg := cfgFn(p)
		fps, q := cfg["fps"].I, cfg["q"].S
		payload := make([]byte, videoFrameBytes(q))
		ssb.Compute(p, float64(len(payload))*videoEncodeCyclesByte)
		link.A().Send(p, payload)
		next += time.Second / time.Duration(fps)
	}
	link.A().Close()
	done.Recv(p)

	lag := lastDone - horizon
	if lag < 0 {
		lag = 0
	}
	return spec.Metrics{
		"frame_rate": float64(delivered) / float64(seconds),
		"lag":        lag.Seconds(),
	}
}

// Verdict implements Application: a session passes when the stream stayed
// within half a second of real time and delivered at least a watchable
// frame rate.
func (v *Video) Verdict(m spec.Metrics) QoS {
	const (
		maxLag  = 0.5
		minRate = 8.0
	)
	if lag := m["lag"]; lag > maxLag {
		return QoS{Score: m["frame_rate"], Reason: fmt.Sprintf("lag %.2fs > %.2fs", lag, maxLag)}
	}
	if fr := m["frame_rate"]; fr < minRate {
		return QoS{Score: fr, Reason: fmt.Sprintf("frame_rate %.1f < %.1f", fr, minRate)}
	}
	return QoS{Pass: true, Score: m["frame_rate"]}
}
