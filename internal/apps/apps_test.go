package apps

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"tunable/internal/spec"
)

// TestPromotedSpecsRoundTrip: both promoted application specs survive a
// parse → format → parse round trip with structure intact.
func TestPromotedSpecsRoundTrip(t *testing.T) {
	for _, app := range []Application{NewVideo(), NewFoveal()} {
		a := app.Spec()
		formatted := a.Format()
		b, err := spec.Parse(formatted)
		if err != nil {
			t.Fatalf("%s: reparsing formatted spec: %v\n%s", app.Class(), err, formatted)
		}
		if got := b.Format(); got != formatted {
			t.Errorf("%s: format not a fixed point:\nfirst:\n%s\nsecond:\n%s", app.Class(), formatted, got)
		}
		if a.Name != b.Name {
			t.Errorf("%s: app name %q -> %q", app.Class(), a.Name, b.Name)
		}
		if len(a.Params) != len(b.Params) {
			t.Errorf("%s: %d params -> %d", app.Class(), len(a.Params), len(b.Params))
		}
		if len(a.Metrics) != len(b.Metrics) {
			t.Errorf("%s: %d metrics -> %d", app.Class(), len(a.Metrics), len(b.Metrics))
		}
		if len(a.Tasks) != len(b.Tasks) {
			t.Errorf("%s: %d tasks -> %d", app.Class(), len(a.Tasks), len(b.Tasks))
		}
		if len(a.Transitions) != len(b.Transitions) {
			t.Errorf("%s: %d transitions -> %d", app.Class(), len(a.Transitions), len(b.Transitions))
		}
		// The declared default configuration must validate against its
		// own spec — the harness starts every session there.
		if err := a.ValidateConfig(app.DefaultConfig()); err != nil {
			t.Errorf("%s: default config invalid: %v", app.Class(), err)
		}
	}
}

func TestVideoVerdict(t *testing.T) {
	v := NewVideo()
	cases := []struct {
		m    spec.Metrics
		pass bool
	}{
		{spec.Metrics{"frame_rate": 15, "lag": 0.1}, true},
		{spec.Metrics{"frame_rate": 15, "lag": 0.9}, false},
		{spec.Metrics{"frame_rate": 5, "lag": 0.1}, false},
	}
	for i, c := range cases {
		if got := v.Verdict(c.m); got.Pass != c.pass {
			t.Errorf("case %d: pass = %v, want %v (%s)", i, got.Pass, c.pass, got.Reason)
		}
	}
	if q := v.Verdict(spec.Metrics{"frame_rate": 15, "lag": 0.9}); q.Reason == "" {
		t.Error("failing verdict carries no reason")
	}
}

func TestFovealVerdict(t *testing.T) {
	f := NewFoveal()
	cases := []struct {
		m    spec.Metrics
		pass bool
	}{
		{spec.Metrics{"transmit_time": 5, "response_time": 0.5, "resolution": 4}, true},
		{spec.Metrics{"transmit_time": 12, "response_time": 0.5, "resolution": 4}, false},
		{spec.Metrics{"transmit_time": 5, "response_time": 1.5, "resolution": 4}, false},
	}
	for i, c := range cases {
		if got := f.Verdict(c.m); got.Pass != c.pass {
			t.Errorf("case %d: pass = %v, want %v (%s)", i, got.Pass, c.pass, got.Reason)
		}
	}
}

func TestValidateMetrics(t *testing.T) {
	v := NewVideo()
	if err := validateMetrics(v, spec.Metrics{"frame_rate": 1, "lag": 0}); err != nil {
		t.Errorf("declared metrics rejected: %v", err)
	}
	if err := validateMetrics(v, spec.Metrics{"frame_rate": 1}); err == nil {
		t.Error("missing declared metric accepted")
	}
	if err := validateMetrics(v, spec.Metrics{"frame_rate": 1, "lag": 0, "bogus": 3}); err == nil {
		t.Error("undeclared metric accepted")
	}
}

// TestMixVideoCannotStarveFoveal floods the pool with video sessions and
// checks the arbitration guarantee end to end: every foveal session whose
// demand fits the class guarantee is admitted and completes, no matter how
// greedy the video class is.
func TestMixVideoCannotStarveFoveal(t *testing.T) {
	rep, err := RunMix(HarnessConfig{
		Seed:  3,
		Hosts: 8,
		// Pool 1.6 MB/s, equal weights: foveal is guaranteed 800 KB/s —
		// room for its 4 sessions at 192 KB/s each. Video requests 16
		// sessions at 128 KB/s = 2 MB/s, more than the whole pool.
		LinkPool: 1.6e6,
		Classes: []ClassConfig{
			{App: NewVideo(), Sessions: 16, ArrivalEvery: 100 * time.Millisecond},
			{App: NewFoveal(), Sessions: 4, ArrivalEvery: 400 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var video, foveal *ClassReport
	for i := range rep.Classes {
		switch rep.Classes[i].Class {
		case "video":
			video = &rep.Classes[i]
		case "foveal":
			foveal = &rep.Classes[i]
		}
	}
	if video == nil || foveal == nil {
		t.Fatalf("report missing a class: %+v", rep.Classes)
	}
	if foveal.Rejected != 0 {
		t.Errorf("foveal sessions rejected under video flood: %d (reasons %v)", foveal.Rejected, foveal.Reasons)
	}
	if foveal.Completed != foveal.Requested {
		t.Errorf("foveal completed %d/%d", foveal.Completed, foveal.Requested)
	}
	if video.Rejected == 0 {
		t.Error("video flood was never refused — the pool cannot have been contended")
	}
	if !rep.Contended {
		t.Error("mix never observed contention")
	}
}

// TestMixDeterministicUnderChaos is the acceptance-criteria e2e: the same
// seed and shape produce byte-identical per-class QoS JSON, including with
// a replayed chaos schedule, and a different seed produces a different
// report.
func TestMixDeterministicUnderChaos(t *testing.T) {
	video, foveal := NewVideo(), NewFoveal()
	run := func(seed uint64) []byte {
		sched := MixChaos(seed, 10*time.Second)
		rep, err := RunMix(HarnessConfig{
			Seed:     seed,
			LinkPool: 1.2e6,
			Classes: []ClassConfig{
				{App: video, Sessions: 4, ArrivalEvery: 300 * time.Millisecond},
				{App: foveal, Sessions: 2, ArrivalEvery: 500 * time.Millisecond},
			},
			Chaos: &sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Errorf("same seed, different reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if c := run(43); bytes.Equal(a, c) {
		t.Error("different seeds produced identical reports — seed is not wired through")
	}
	// The chaos schedule must actually have fired.
	var rep MixReport
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) == 0 {
		t.Error("chaos run injected no faults")
	}
}

// TestMixRejectsBadConfig covers the harness validation edges.
func TestMixRejectsBadConfig(t *testing.T) {
	if _, err := RunMix(HarnessConfig{}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := RunMix(HarnessConfig{Classes: []ClassConfig{
		{App: NewVideo(), Sessions: 0, ArrivalEvery: time.Second},
	}}); err == nil {
		t.Error("zero sessions accepted")
	}
	if _, err := RunMix(HarnessConfig{Classes: []ClassConfig{
		{App: NewVideo(), Sessions: 1},
	}}); err == nil {
		t.Error("zero arrival gap accepted")
	}
}
