package apps

import (
	"fmt"
	"sync"
	"time"

	"tunable/internal/avis"
	"tunable/internal/perfdb"
	"tunable/internal/profiler"
	"tunable/internal/resource"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/vtime"
)

// Foveal promotes the paper's active visualization session (internal/avis)
// into the workload layer: each session connects a real avis client to a
// real avis server over the session's link, downloads Images foveally
// grown images through the real wavelet/compression pipeline, and is
// judged against the paper's Experiment 2/3 service bounds.
type Foveal struct {
	// Images is the number of images fetched per session (default 2).
	Images int
	// Side and Levels size the pyramid (defaults 256 and 4 — small enough
	// that profiling the class stays cheap, large enough that all three
	// control parameters bind).
	Side, Levels int

	storeOnce sync.Once
	store     *avis.ImageStore

	once sync.Once
	db   *perfdb.DB
	err  error
}

// NewFoveal returns the foveal application with default session shape.
func NewFoveal() *Foveal { return &Foveal{Images: 2, Side: 256, Levels: 4} }

// Class implements Application.
func (f *Foveal) Class() string { return "foveal" }

// Spec implements Application.
func (f *Foveal) Spec() *spec.App { return avis.Spec() }

// DefaultConfig implements Application: the configuration a session starts
// in before its tuning agent has spoken.
func (f *Foveal) DefaultConfig() spec.Config {
	return avis.Params{DR: 160, Codec: "lzw", Level: 3}.Config()
}

// Preferences implements Application, mirroring the paper's experiments:
// keep rounds interactive (Experiment 3's 1 s response bound) at the best
// resolution, then keep whole images inside Experiment 2's 10 s deadline,
// then just finish as fast as possible.
func (f *Foveal) Preferences() []scheduler.Preference {
	return []scheduler.Preference{
		{
			Name: "interactive",
			Constraints: []scheduler.Constraint{
				scheduler.AtMost("response_time", 1.0),
				scheduler.AtMost("transmit_time", 10.0),
			},
			Objective: "resolution",
		},
		{
			Name:        "deadline",
			Constraints: []scheduler.Constraint{scheduler.AtMost("transmit_time", 10.0)},
			Objective:   "resolution",
		},
		{Name: "best-effort", Objective: "transmit_time"},
	}
}

// Demand implements Application: the foveal client decodes and displays
// (the dominant cost), the server extracts and encodes.
func (f *Foveal) Demand() map[string]resource.Vector {
	return map[string]resource.Vector{
		"client": {resource.CPU: 0.15},
		"server": {resource.CPU: 0.10},
	}
}

// LinkDemand implements Application: per-session link reservation.
func (f *Foveal) LinkDemand() float64 { return 192e3 }

func (f *Foveal) side() int {
	if f.Side > 0 {
		return f.Side
	}
	return 256
}

func (f *Foveal) levels() int {
	if f.Levels > 0 {
		return f.Levels
	}
	return 4
}

func (f *Foveal) images() int {
	if f.Images > 0 {
		return f.Images
	}
	return 2
}

// seeds returns the image seeds; one image, shared by every session
// through the single-flight store.
func (f *Foveal) seeds() []int64 { return []int64{11} }

// imageStore returns the class-wide image store so the pyramid is built
// once per process, not once per session or per profiling sample.
func (f *Foveal) imageStore() *avis.ImageStore {
	f.storeOnce.Do(func() { f.store = avis.NewImageStore() })
	return f.store
}

// profileConfigs is the candidate set profiled for the class: both codecs
// at every level, small and large fovea increments.
func (f *Foveal) profileConfigs() []spec.Config {
	var cfgs []spec.Config
	for _, dr := range []int{80, 320} {
		for _, c := range []string{"lzw", "bzw"} {
			for _, l := range []int{2, 3, 4} {
				cfgs = append(cfgs, avis.Params{DR: dr, Codec: c, Level: l}.Config())
			}
		}
	}
	return cfgs
}

// DB implements Application: profile the candidate configurations over a
// bandwidth/CPU grid spanning the arbiter's per-session operating range,
// once per process.
func (f *Foveal) DB() (*perfdb.DB, error) {
	f.once.Do(func() {
		db := perfdb.New(f.Spec())
		grid := resource.NewGrid(
			resource.Axis{Kind: resource.Bandwidth,
				Points: []float64{24e3, 96e3, 192e3, 384e3}},
			resource.Axis{Kind: resource.CPU, Points: []float64{0.05, 0.10, 0.20}},
		)
		driver, err := profiler.New(db, grid, f.profileRun,
			profiler.WithConfigs(f.profileConfigs()))
		if err != nil {
			f.err = err
			return
		}
		f.err = driver.Populate()
		f.db = db
	})
	return f.db, f.err
}

// profileRun is one testbed sample: one image download in a fresh world at
// the given configuration and resources.
func (f *Foveal) profileRun(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
	params, err := avis.ParamsFromConfig(cfg)
	if err != nil {
		return nil, err
	}
	w, err := avis.NewWorld(avis.WorldConfig{
		Bandwidth:   res.Get(resource.Bandwidth, f.LinkDemand()),
		ClientShare: res.Get(resource.CPU, 1.0),
		ServerShare: res.Get(resource.CPU, 1.0),
		Params:      params,
		Side:        f.side(),
		Levels:      f.levels(),
		Seeds:       f.seeds(),
		Store:       f.imageStore(),
	})
	if err != nil {
		return nil, err
	}
	stats, err := w.RunSequence(1)
	if err != nil {
		return nil, err
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("apps: foveal profiling produced no stats")
	}
	return stats[0].Metrics(), nil
}

// Run implements Application: one interactive session — a real avis
// server and client on the admitted sandboxes, steered at round
// boundaries by the class's tuning agent.
func (f *Foveal) Run(p *vtime.Proc, env *SessionEnv) (spec.Metrics, error) {
	params, err := avis.ParamsFromConfig(env.Steer.Current())
	if err != nil {
		return nil, err
	}
	srv, err := avis.NewServer(env.Server, env.Link.B(), f.side(), f.levels(), f.seeds(),
		avis.WithStore(f.imageStore()))
	if err != nil {
		return nil, err
	}
	srvDone := vtime.NewChan[error](p.Sim(), 1)
	p.Spawn("foveal-server", func(sp *vtime.Proc) {
		srvDone.TrySend(srv.Run(sp))
	})
	cl, err := avis.NewClient(env.Client, env.Link.A(), params)
	if err != nil {
		return nil, err
	}
	cl.AttachSteering(env.Steer)
	if err := cl.Connect(p); err != nil {
		return nil, err
	}
	var stats []avis.ImageStat
	for i := 0; i < f.images(); i++ {
		st, err := cl.FetchImage(p, i%len(f.seeds()))
		if err != nil {
			cl.Close(p)
			return nil, err
		}
		stats = append(stats, st)
	}
	cl.Close(p)
	if srvErr, ok := srvDone.Recv(p); ok && srvErr != nil {
		return nil, fmt.Errorf("apps: foveal server: %w", srvErr)
	}

	// Aggregate per-image stats into the session's QoS metrics: worst
	// transmit time (the deadline is per image), mean response time, and
	// the resolution of the last image (where steering has settled).
	var worstTransmit time.Duration
	var responses []time.Duration
	for _, st := range stats {
		if st.TransmitTime > worstTransmit {
			worstTransmit = st.TransmitTime
		}
		responses = append(responses, st.AvgResponse)
	}
	return spec.Metrics{
		"transmit_time": worstTransmit.Seconds(),
		"response_time": meanDuration(responses).Seconds(),
		"resolution":    float64(stats[len(stats)-1].Level),
	}, nil
}

// Verdict implements Application: the session passes when rounds stayed
// interactive (Experiment 3's 1 s bound) and every image met Experiment
// 2's 10 s deadline; the score is the delivered resolution level.
func (f *Foveal) Verdict(m spec.Metrics) QoS {
	const (
		maxResponse = 1.0
		maxTransmit = 10.0
	)
	if rt := m["response_time"]; rt > maxResponse {
		return QoS{Score: m["resolution"], Reason: fmt.Sprintf("response_time %.2fs > %.2fs", rt, maxResponse)}
	}
	if tt := m["transmit_time"]; tt > maxTransmit {
		return QoS{Score: m["resolution"], Reason: fmt.Sprintf("transmit_time %.2fs > %.2fs", tt, maxTransmit)}
	}
	return QoS{Pass: true, Score: m["resolution"]}
}
