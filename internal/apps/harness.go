package apps

import (
	"fmt"
	"sort"
	"time"

	"tunable/internal/faults"
	"tunable/internal/netem"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/steering"
	"tunable/internal/vtime"
)

// ClassConfig describes one application class's slice of the mix.
type ClassConfig struct {
	App Application
	// Sessions is how many sessions of the class arrive.
	Sessions int
	// ArrivalEvery is the mean inter-arrival gap (seeded jitter on top).
	ArrivalEvery time.Duration
	// Weight is the class's arbitration weight (default 1).
	Weight float64
}

// HarnessConfig shapes one mixed-workload run. The whole run executes on a
// single virtual-time simulation, so a (Seed, config) pair is fully
// deterministic — byte-identical reports, chaos or not.
type HarnessConfig struct {
	// Seed drives arrival jitter and per-session seeds.
	Seed uint64
	// Hosts is the number of sandbox hosts in the pool (default 4).
	Hosts int
	// HostSpeed is each host's clock in cycles/s (default 450e6).
	HostSpeed float64
	// LinkPool is the total link bandwidth (bytes/s) the arbiter divides
	// between classes (default 1.5e6).
	LinkPool float64
	// Classes is the workload mix.
	Classes []ClassConfig
	// Chaos, when non-nil, is replayed against the per-session links.
	Chaos *faults.Schedule
	// RetunePeriod is how often the per-class tuning agents re-plan active
	// sessions (default 500ms).
	RetunePeriod time.Duration
	// DeratedMargin is the planning margin applied while classes contend
	// (default 0.2).
	DeratedMargin float64
}

func (c HarnessConfig) withDefaults() HarnessConfig {
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.HostSpeed == 0 {
		c.HostSpeed = 450e6
	}
	if c.LinkPool == 0 {
		c.LinkPool = 1.5e6
	}
	if c.RetunePeriod == 0 {
		c.RetunePeriod = 500 * time.Millisecond
	}
	if c.DeratedMargin == 0 {
		c.DeratedMargin = 0.2
	}
	return c
}

// MetricSummary aggregates one QoS metric across a class's completed
// sessions.
type MetricSummary struct {
	Mean float64 `json:"mean"`
	P95  float64 `json:"p95"`
}

// ClassReport is one class's outcome.
type ClassReport struct {
	Class        string                   `json:"class"`
	Requested    int                      `json:"requested"`
	Admitted     int                      `json:"admitted"`
	Rejected     int                      `json:"rejected"`
	Completed    int                      `json:"completed"`
	Failed       int                      `json:"failed"`
	Passed       int                      `json:"passed"`
	PassRate     float64                  `json:"pass_rate"`
	Switches     int64                    `json:"switches"`
	DeratedPlans int                      `json:"derated_plans"`
	ScoreP50     float64                  `json:"score_p50"`
	ScoreP95     float64                  `json:"score_p95"`
	Metrics      map[string]MetricSummary `json:"metrics"`
	Reasons      map[string]int           `json:"reasons,omitempty"`
}

// MixReport is the harness's deterministic output.
type MixReport struct {
	Seed           uint64        `json:"seed"`
	VirtualSeconds float64       `json:"virtual_seconds"`
	Contended      bool          `json:"contended"`
	Classes        []ClassReport `json:"classes"`
	Faults         []string      `json:"faults,omitempty"`
}

// classRun is one class's live state inside a run.
type classRun struct {
	cfg   ClassConfig
	sched *scheduler.Scheduler

	rejected int
	failed   int
	passed   int
	derated  int
	switches int64
	scores   []float64
	observed map[string][]float64
	reasons  map[string]int
}

// session is one admitted-or-not workload instance; the retuner walks
// these in creation order, which is deterministic.
type session struct {
	id      string
	class   *classRun
	link    *netem.Link
	env     *SessionEnv
	steer   *steering.Agent
	lastCfg spec.Config
	share   float64
	active  bool
}

// harness wires admission, arbitration, steering, and fault injection
// around the application sessions.
type harness struct {
	cfg       HarnessConfig
	sim       *vtime.Sim
	adm       *scheduler.Admission
	arb       *scheduler.Arbiter
	hostNames []string
	classes   []*classRun
	sessions  []*session
	remaining int
	contended bool
	seq       int64
}

// RunMix executes one seeded mixed workload to completion in virtual time
// and returns the per-class QoS report.
func RunMix(cfg HarnessConfig) (*MixReport, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("apps: mix needs at least one class")
	}
	h := &harness{cfg: cfg, sim: vtime.NewSim()}

	// Host pool under admission control.
	h.adm = scheduler.NewAdmission()
	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("h%02d", i)
		if err := h.adm.AddHost(sandbox.NewHost(h.sim, name, cfg.HostSpeed)); err != nil {
			return nil, err
		}
		h.hostNames = append(h.hostNames, name)
	}
	sort.Strings(h.hostNames)

	// Cross-class arbiter over the shared CPU and link pools.
	var shares []scheduler.ClassShare
	for _, cc := range cfg.Classes {
		w := cc.Weight
		if w == 0 {
			w = 1
		}
		shares = append(shares, scheduler.ClassShare{Class: cc.App.Class(), Weight: w})
	}
	arb, err := scheduler.NewArbiter(resource.Vector{
		resource.CPU:       float64(cfg.Hosts) * sandbox.MaxReservable,
		resource.Bandwidth: cfg.LinkPool,
	}, shares)
	if err != nil {
		return nil, err
	}
	h.arb = arb

	// Per-class scheduler over the class's profiled database.
	for _, cc := range cfg.Classes {
		if cc.Sessions <= 0 {
			return nil, fmt.Errorf("apps: class %q needs sessions > 0", cc.App.Class())
		}
		if cc.ArrivalEvery <= 0 {
			return nil, fmt.Errorf("apps: class %q needs a positive arrival gap", cc.App.Class())
		}
		db, err := cc.App.DB()
		if err != nil {
			return nil, fmt.Errorf("apps: profiling %s: %w", cc.App.Class(), err)
		}
		sched, err := scheduler.New(cc.App.Spec(), db, cc.App.Preferences())
		if err != nil {
			return nil, err
		}
		h.classes = append(h.classes, &classRun{
			cfg:      cc,
			sched:    sched,
			observed: map[string][]float64{},
			reasons:  map[string]int{},
		})
	}

	// Pre-create every session's link at t=0 so the chaos driver can arm
	// its events over a static label set, then spawn the sessions.
	links := map[string]*netem.Link{}
	for _, cr := range h.classes {
		rng := newMixRNG(cfg.Seed, cr.cfg.App.Class())
		var arrive time.Duration
		for i := 0; i < cr.cfg.Sessions; i++ {
			id := fmt.Sprintf("%s:s-%04d", cr.cfg.App.Class(), i)
			link := netem.NewLink(h.sim, "data:"+id, cr.cfg.App.LinkDemand())
			links["data:"+id] = link
			s := &session{id: id, class: cr, link: link, share: clientShare(cr.cfg.App)}
			h.sessions = append(h.sessions, s)
			h.remaining++
			// Seeded jitter on top of the nominal gap keeps arrivals from
			// phase-locking while staying a pure function of the seed.
			gap := cr.cfg.ArrivalEvery
			arrive += gap/2 + time.Duration(rng.float64()*float64(gap))
			at, seed := arrive, rng.next()
			h.sim.Spawn(id, func(p *vtime.Proc) { h.runSession(p, s, at, seed) })
		}
	}

	var drv *faults.Driver
	if cfg.Chaos != nil {
		drv, err = faults.NewDriver(h.sim, links, *cfg.Chaos)
		if err != nil {
			return nil, err
		}
		drv.Install()
	}
	h.sim.Spawn("mix-retuner", func(p *vtime.Proc) { h.retune(p) })
	if err := h.sim.Run(); err != nil {
		return nil, err
	}
	var log []faults.Injected
	if drv != nil {
		log = drv.Log()
	}
	return h.report(log), nil
}

// runSession is one session's lifecycle: arrive, pass cross-class
// arbitration then host admission, run under steering, judge, release.
func (h *harness) runSession(p *vtime.Proc, s *session, arrive time.Duration, seed uint64) {
	defer func() { h.remaining-- }()
	p.SleepUntil(arrive)
	app := s.class.cfg.App

	var cpu float64
	for _, want := range app.Demand() {
		cpu += want.Get(resource.CPU, 0)
	}
	grant, err := h.arb.Acquire(app.Class(), resource.Vector{
		resource.CPU:       cpu,
		resource.Bandwidth: app.LinkDemand(),
	})
	if err != nil {
		s.class.rejected++
		s.class.reasons["rejected:arbiter"]++
		return
	}
	defer h.arb.Release(grant)
	if h.arb.Contended() {
		h.contended = true
	}

	resv, err := h.adm.ReservePlaced(s.id, h.place(app.Demand()))
	if err != nil {
		s.class.rejected++
		s.class.reasons["rejected:admission"]++
		return
	}
	defer resv.Release()

	client, ok := resv.Sandbox("client")
	if !ok {
		s.class.failed++
		s.class.reasons["failed:no-client-sandbox"]++
		return
	}
	server, ok := resv.Sandbox("server")
	if !ok {
		s.class.failed++
		s.class.reasons["failed:no-server-sandbox"]++
		return
	}

	steer, err := steering.New(h.sim, app.Spec(), app.DefaultConfig())
	if err != nil {
		s.class.failed++
		s.class.reasons["failed:steering"]++
		return
	}
	s.steer = steer
	s.env = &SessionEnv{
		Sim: h.sim, Link: s.link,
		Client: client, Server: server,
		Steer: steer, Seed: seed,
	}
	s.active = true
	h.plan(p, s) // initial decision before the first transition point
	m, err := app.Run(p, s.env)
	s.active = false
	s.class.switches += steer.Switches()
	if err == nil {
		err = validateMetrics(app, m)
	}
	if err != nil {
		s.class.failed++
		s.class.reasons["failed:"+truncateReason(err.Error())]++
		return
	}
	for name, v := range m {
		s.class.observed[name] = append(s.class.observed[name], v)
	}
	q := app.Verdict(m)
	s.class.scores = append(s.class.scores, q.Score)
	if q.Pass {
		s.class.passed++
	} else {
		s.class.reasons["qos:"+q.Reason]++
	}
}

// place assigns each component to the host with the most unreserved CPU
// (ties broken by name), accounting for components placed earlier in the
// same reservation.
func (h *harness) place(demand map[string]resource.Vector) []scheduler.Placement {
	comps := make([]string, 0, len(demand))
	for c := range demand {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	taken := map[string]float64{}
	pls := make([]scheduler.Placement, 0, len(comps))
	for _, c := range comps {
		best, bestAvail := "", -1.0
		for _, hn := range h.hostNames {
			av, err := h.adm.Available(hn)
			if err != nil {
				continue
			}
			if avail := av.Get(resource.CPU, 0) - taken[hn]; avail > bestAvail+1e-12 {
				best, bestAvail = hn, avail
			}
		}
		taken[best] += demand[c].Get(resource.CPU, 0)
		pls = append(pls, scheduler.Placement{Component: c, Host: best, Want: demand[c]})
	}
	return pls
}

// plan runs one scheduling decision for the session and, if it changes the
// configuration, pushes a control message for the session's steering agent
// to apply at its next transition point. While classes contend the plan is
// derated on top of the arbiter's guarantee clamp.
func (h *harness) plan(p *vtime.Proc, s *session) {
	app := s.class.cfg.App
	res := h.arb.PlanningCapacity(app.Class(), sessionResources(s.env, s.share))
	var d scheduler.Decision
	var err error
	if h.arb.Contended() {
		s.class.derated++
		d, err = s.class.sched.SelectDerated(res, h.cfg.DeratedMargin)
	} else {
		d, err = s.class.sched.Select(res)
	}
	if err != nil {
		return // nothing feasible: hold the current configuration
	}
	if s.lastCfg != nil && d.Config.Equal(s.lastCfg) {
		return
	}
	h.seq++
	s.steer.Control().TrySend(steering.ControlMsg{
		Seq:         h.seq,
		Config:      d.Config,
		ValidRanges: d.ValidRanges,
		Reason:      d.PrefName,
		At:          p.Now(),
	})
	s.lastCfg = d.Config
}

// retune periodically re-plans every active session, in creation order,
// so injected faults and cross-class contention feed back into running
// configurations.
func (h *harness) retune(p *vtime.Proc) {
	for h.remaining > 0 {
		p.Sleep(h.cfg.RetunePeriod)
		for _, s := range h.sessions {
			if s.active {
				h.plan(p, s)
			}
		}
	}
}

// report freezes the run into its deterministic JSON-ready form.
func (h *harness) report(injected []faults.Injected) *MixReport {
	rep := &MixReport{
		Seed:           h.cfg.Seed,
		VirtualSeconds: h.sim.Now().Seconds(),
		Contended:      h.contended,
	}
	for _, cr := range h.classes {
		completed := len(cr.scores)
		c := ClassReport{
			Class:        cr.cfg.App.Class(),
			Requested:    cr.cfg.Sessions,
			Admitted:     cr.cfg.Sessions - cr.rejected,
			Rejected:     cr.rejected,
			Completed:    completed,
			Failed:       cr.failed,
			Passed:       cr.passed,
			Switches:     cr.switches,
			DeratedPlans: cr.derated,
			ScoreP50:     percentile(cr.scores, 0.50),
			ScoreP95:     percentile(cr.scores, 0.95),
			Metrics:      map[string]MetricSummary{},
		}
		if completed > 0 {
			c.PassRate = float64(cr.passed) / float64(completed)
		}
		for name, vs := range cr.observed {
			c.Metrics[name] = MetricSummary{Mean: mean(vs), P95: percentile(vs, 0.95)}
		}
		if len(cr.reasons) > 0 {
			c.Reasons = cr.reasons
		}
		rep.Classes = append(rep.Classes, c)
	}
	sort.Slice(rep.Classes, func(i, j int) bool { return rep.Classes[i].Class < rep.Classes[j].Class })
	for _, inj := range injected {
		rep.Faults = append(rep.Faults, inj.String())
	}
	return rep
}

// MixChaos generates a chaos schedule safe for the mix: message drops and
// partitions hit only video links (frame loss degrades the stream but
// cannot wedge it), while bandwidth dips and latency spikes — which the
// foveal request/reply protocol rides out — hit every session link.
func MixChaos(seed uint64, horizon time.Duration) faults.Schedule {
	drops := faults.Generate(seed, horizon, []string{"data:video"}, faults.GenProfile{
		Drops: 2, DropRate: 0.25, Partitions: 1,
	})
	sweeps := faults.Generate(seed^0x9E3779B97F4A7C15, horizon, nil, faults.GenProfile{
		Latencies: 2, MaxDelay: 20 * time.Millisecond,
		Dips: 2, DipFloor: 48e3,
	})
	return faults.NewSchedule(seed, append(drops.Events, sweeps.Events...)...)
}

// percentile returns the q-quantile of vs by rank (nearest-rank method);
// 0 when empty.
func percentile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// truncateReason bounds failure-reason map keys so one exotic error can't
// bloat the report.
func truncateReason(s string) string {
	if len(s) > 80 {
		return s[:80]
	}
	return s
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// mixRNG is the harness's deterministic stream (splitmix64 seeded per
// class), used for arrival jitter and per-session seeds.
type mixRNG struct{ state uint64 }

func newMixRNG(seed uint64, label string) *mixRNG {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return &mixRNG{state: seed ^ h}
}

func (r *mixRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *mixRNG) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }
