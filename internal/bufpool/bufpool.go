// Package bufpool provides size-classed, sync.Pool-backed byte buffers
// shared by the compression codecs and the wavelet chunk codec. The data
// plane (extract → encode → compress → frame) runs the same buffer sizes
// request after request, so recycling them removes per-request garbage on
// the avis server/client hot paths without threading explicit arenas
// through every API.
//
// Discipline: Get(n) returns a slice with len n and at least that
// capacity; Put recycles a buffer previously obtained from Get (or any
// buffer whose capacity is worth keeping). Buffers must not be used after
// Put. Contents are NOT zeroed — callers own initialization.
package bufpool

import (
	"math/bits"
	"sync"
)

// Size classes are powers of two from 1<<minShift to 1<<maxShift. Requests
// above the largest class fall through to plain make and Put drops them,
// so pathological giants never pin pool memory.
const (
	minShift = 6  // 64 B
	maxShift = 24 // 16 MiB
)

var classes [maxShift - minShift + 1]sync.Pool

// classFor returns the index of the smallest class holding n bytes, or -1
// when n exceeds every class.
func classFor(n int) int {
	if n <= 1<<minShift {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c > maxShift {
		return -1
	}
	return c - minShift
}

// Get returns a buffer of length n. The contents are unspecified.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := classes[c].Get(); v != nil {
		b := v.(*[]byte)
		return (*b)[:n]
	}
	return make([]byte, n, 1<<(c+minShift))
}

// Put recycles a buffer for a future Get. Buffers with capacities that fit
// no size class (too small or too large) are dropped.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minShift || c > 1<<maxShift {
		return
	}
	// File the buffer under the largest class it can fully satisfy.
	cl := bits.Len(uint(c)) - 1 - minShift
	if cl < 0 {
		return
	}
	if cl > maxShift-minShift {
		cl = maxShift - minShift
	}
	b = b[:cap(b)]
	classes[cl].Put(&b)
}
