package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a fully deterministic registry covering every
// instrument kind, labels, family grouping, and histogram expansion.
func goldenRegistry() *Registry {
	r := New(WithNow(func() time.Duration { return 90 * time.Second }))
	c1 := r.Counter("avis_rounds_total", "Request/response rounds completed.", L("client", "c1"))
	g := r.Gauge("sandbox_cpu_share", "Reserved CPU share.", L("host", "h0"), L("sandbox", "viz"))
	// Second series of an existing family, registered out of order: the
	// exposition must still group it under the avis_rounds_total header.
	c2 := r.Counter("avis_rounds_total", "Request/response rounds completed.", L("client", "c2"))
	h := r.Histogram("avis_fetch_seconds", "Per-image fetch latency.")
	plain := r.Counter("sched_selects_total", "Scheduler selections.")

	c1.Add(7)
	c2.Add(3)
	g.Set(0.25)
	plain.Inc()
	for _, v := range []float64{0, -1, 0.0009, 0.004, 0.0041, 0.25, 1.5, 1e9} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusFamilyContiguity enforces the exposition-spec rule that
// all samples of one metric family are contiguous, whatever the
// registration interleaving.
func TestPrometheusFamilyContiguity(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	last := ""
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		if name != last {
			if seen[name] {
				t.Fatalf("family %q appears in two separate runs", name)
			}
			seen[name] = true
			last = name
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap JSONSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if snap.AtSeconds != 90 {
		t.Errorf("at_seconds = %g, want 90 (injected clock)", snap.AtSeconds)
	}
	byName := map[string][]JSONMetric{}
	for _, m := range snap.Metrics {
		byName[m.Name] = append(byName[m.Name], m)
	}
	if n := len(byName["avis_rounds_total"]); n != 2 {
		t.Errorf("avis_rounds_total series = %d, want 2", n)
	}
	hs := byName["avis_fetch_seconds"]
	if len(hs) != 1 {
		t.Fatalf("avis_fetch_seconds series = %d, want 1", len(hs))
	}
	h := hs[0]
	if h.Kind != "histogram" || h.Count != 8 {
		t.Errorf("histogram export = %+v, want kind=histogram count=8", h)
	}
	if !(h.P50 <= h.P95 && h.P95 <= h.P99) {
		t.Errorf("quantiles not monotone: %+v", h)
	}
}
