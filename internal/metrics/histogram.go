package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram bucket geometry: values are bucketed logarithmically with
// subBuckets buckets per power of two, spanning 2^histMinExp (≈1 µs when
// observations are in seconds) to 2^histMaxExp (≈1 Mi-seconds). Values at
// or below zero land in the dedicated zero bucket (negative observations
// are clamped — latencies cannot be negative, but a skewed clock can
// produce one); values beyond the top land in the overflow bucket, whose
// upper bound exports as +Inf.
const (
	histMinExp = -20
	histMaxExp = 20
	subBuckets = 4
	// numBuckets = zero bucket + log buckets + overflow bucket.
	numBuckets = (histMaxExp-histMinExp)*subBuckets + 2
)

// Histogram is a fixed-geometry log-bucketed histogram. Observe is
// lock-free and allocation-free; Snapshot and quantile estimation walk the
// bucket array.
type Histogram struct {
	d       desc
	counts  [numBuckets]atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
	count   atomic.Uint64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return numBuckets - 1
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac ∈ [0.5, 1)
	oct := exp - 1 - histMinExp
	if oct < 0 {
		return 1 // underflow clamps into the smallest log bucket
	}
	sub := int((frac - 0.5) * 2 * subBuckets)
	if sub >= subBuckets { // guard frac rounding up to 1.0
		sub = subBuckets - 1
	}
	idx := oct*subBuckets + sub + 1
	if idx > numBuckets-2 {
		return numBuckets - 1 // overflow bucket
	}
	return idx
}

// bucketUpper returns the upper bound of bucket idx; +Inf for the
// overflow bucket, 0 for the zero bucket. Log buckets are half-open
// [upper(idx-1), upper(idx)): a value exactly at a bucket boundary counts
// in the higher bucket, the usual convention for exponential histograms.
func bucketUpper(idx int) float64 {
	switch {
	case idx <= 0:
		return 0
	case idx >= numBuckets-1:
		return math.Inf(1)
	}
	oct := (idx - 1) / subBuckets
	sub := (idx - 1) % subBuckets
	return math.Ldexp(0.5+float64(sub+1)/(2*subBuckets), histMinExp+oct+1)
}

// Observe records one value. Negative and NaN values are clamped into the
// zero bucket (and contribute 0 to the sum).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Name returns the metric name (without labels).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.d.name
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Upper float64 // inclusive upper bound; +Inf for overflow
	Count uint64  // observations in this bucket (not cumulative)
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets []Bucket // non-empty buckets in ascending bound order
}

// Snapshot copies the current state. The copy is not atomic with respect
// to concurrent Observe calls, but every recorded observation appears in
// at most one snapshot bucket.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	for i := 0; i < numBuckets; i++ {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: n})
		}
	}
	return s
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the snapshot by
// locating the bucket containing the target rank and returning its upper
// bound (the overflow bucket reports the largest finite bound, so p99 of a
// pathological distribution stays finite). Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			if math.IsInf(b.Upper, 1) && i > 0 {
				return s.Buckets[i-1].Upper
			}
			return b.Upper
		}
	}
	last := s.Buckets[len(s.Buckets)-1]
	return last.Upper
}

// Quantile is a convenience for Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}
