package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeMetricsAndHealthz(t *testing.T) {
	r := New(WithNow(func() time.Duration { return 5 * time.Second }))
	r.Counter("avis_images_total", "Images fetched.").Add(2)
	r.Histogram("avis_fetch_seconds", "Fetch latency.").Observe(0.125)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE avis_images_total counter",
		"avis_images_total 2",
		"# TYPE avis_fetch_seconds histogram",
		`avis_fetch_seconds_bucket{le="+Inf"} 1`,
		"avis_fetch_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	jsonBody, jsonType := get("/metrics?format=json")
	if !strings.Contains(jsonType, "application/json") {
		t.Errorf("json content type = %q", jsonType)
	}
	if !strings.Contains(jsonBody, `"at_seconds": 5`) {
		t.Errorf("json export missing injected timestamp:\n%s", jsonBody)
	}

	health, _ := get("/healthz")
	if strings.TrimSpace(health) != "ok" {
		t.Errorf("/healthz = %q, want ok", health)
	}
}

func TestServeBadAddrFailsFast(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", New()); err == nil {
		t.Fatal("Serve on a bogus address must fail synchronously")
	}
}
