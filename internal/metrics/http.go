package metrics

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler serving the registry in Prometheus text
// exposition format; append ?format=json for the JSON snapshot.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Serve exposes the registry at addr with two routes: /metrics (scrapeable
// exposition) and /healthz (liveness). It binds synchronously — so a bad
// address fails fast — then serves in a background goroutine. The returned
// server's Close/Shutdown stops it.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{
		Addr:              ln.Addr().String(),
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
