package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Series sharing a metric name are
// grouped into one family under a single HELP/TYPE header (the exposition
// spec requires family samples to be contiguous); histograms expand into
// cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	families := map[string][]metric{}
	var order []string
	r.each(func(m metric) {
		name := m.describe().name
		if _, ok := families[name]; !ok {
			order = append(order, name)
		}
		families[name] = append(families[name], m)
	})
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range order {
		fam := families[name]
		d0 := fam[0].describe()
		if d0.help != "" {
			emit("# HELP %s %s\n", name, sanitizeHelp(d0.help))
		}
		emit("# TYPE %s %s\n", name, fam[0].kind())
		for _, m := range fam {
			d := m.describe()
			switch v := m.(type) {
			case *Counter:
				emit("%s%s %s\n", name, d.labelString(), formatValue(v.Value()))
			case *Gauge:
				emit("%s%s %s\n", name, d.labelString(), formatValue(v.Value()))
			case *Histogram:
				s := v.Snapshot()
				var cum uint64
				for _, b := range s.Buckets {
					cum += b.Count
					emit("%s_bucket%s %d\n", name, labelsWithLE(d, b.Upper), cum)
				}
				emit("%s_bucket%s %d\n", name, labelsWithLE(d, math.Inf(1)), s.Count)
				emit("%s_sum%s %s\n", name, d.labelString(), formatValue(s.Sum))
				emit("%s_count%s %d\n", name, d.labelString(), s.Count)
			}
		}
	}
	return err
}

// sanitizeHelp escapes newlines and backslashes per the exposition spec.
func sanitizeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelsWithLE renders the label set plus the le bound of a bucket series.
func labelsWithLE(d *desc, upper float64) string {
	le := formatValue(upper)
	base := d.labelString()
	if base == "" {
		return `{le="` + le + `"}`
	}
	return base[:len(base)-1] + `,le="` + le + `"}`
}

// JSONMetric is one metric in the JSON snapshot.
type JSONMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"` // counters and gauges
	Count  uint64            `json:"count,omitempty"` // histograms
	Sum    float64           `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P95    float64           `json:"p95,omitempty"`
	P99    float64           `json:"p99,omitempty"`
}

// JSONSnapshot is the full JSON export.
type JSONSnapshot struct {
	AtSeconds float64      `json:"at_seconds"`
	Metrics   []JSONMetric `json:"metrics"`
}

// SnapshotJSON captures every metric, with p50/p95/p99 summaries for
// histograms, timestamped by the registry clock.
func (r *Registry) SnapshotJSON() JSONSnapshot {
	snap := JSONSnapshot{AtSeconds: r.Now().Seconds()}
	r.each(func(m metric) {
		d := m.describe()
		jm := JSONMetric{Name: d.name, Kind: m.kind()}
		if len(d.labels) > 0 {
			jm.Labels = make(map[string]string, len(d.labels))
			for _, l := range d.labels {
				jm.Labels[l.Key] = l.Value
			}
		}
		switch v := m.(type) {
		case *Counter:
			jm.Value = v.Value()
		case *Gauge:
			jm.Value = v.Value()
		case *Histogram:
			s := v.Snapshot()
			jm.Count = s.Count
			jm.Sum = s.Sum
			jm.P50 = s.Quantile(0.50)
			jm.P95 = s.Quantile(0.95)
			jm.P99 = s.Quantile(0.99)
		}
		snap.Metrics = append(snap.Metrics, jm)
	})
	return snap
}

// WriteJSON renders the JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"metrics":[]}`)
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.SnapshotJSON())
}
