package metrics

import (
	"math"
	"testing"
)

func TestBucketIndexEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want int
	}{
		{"zero", 0, 0},
		{"negative", -3.5, 0},
		{"neg-inf", math.Inf(-1), 0},
		{"nan", math.NaN(), 0},
		{"underflow clamps to smallest log bucket", 1e-12, 1},
		{"tiny but above floor", math.Ldexp(0.75, histMinExp), 1},
		{"overflow", 1e12, numBuckets - 1},
		{"pos-inf", math.Inf(1), numBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("%s: bucketIndex(%v) = %d, want %d", tc.name, tc.v, got, tc.want)
		}
	}
}

// TestBucketBoundsInvariant sweeps the representable range and checks that
// every value lands in a bucket whose half-open bounds contain it:
// upper(idx-1) <= v < upper(idx) (boundary values count upward).
func TestBucketBoundsInvariant(t *testing.T) {
	for exp := histMinExp; exp < histMaxExp; exp++ {
		for _, frac := range []float64{0.5, 0.56, 0.625, 0.74, 0.875, 0.9, 0.999} {
			v := math.Ldexp(frac, exp+1)
			idx := bucketIndex(v)
			if idx <= 0 || idx >= numBuckets-1 {
				t.Fatalf("bucketIndex(%g) = %d escaped the log range", v, idx)
			}
			if up := bucketUpper(idx); v >= up {
				t.Errorf("value %g at or above its bucket upper %g (idx %d)", v, up, idx)
			}
			if lo := bucketUpper(idx - 1); idx > 1 && v < lo {
				t.Errorf("value %g below previous bound %g (idx %d)", v, lo, idx)
			}
		}
	}
}

func TestBucketUpperMonotonic(t *testing.T) {
	prev := math.Inf(-1)
	for i := 0; i < numBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucketUpper(%d) = %g not above bucketUpper(%d) = %g", i, up, i-1, prev)
		}
		prev = up
	}
	if !math.IsInf(bucketUpper(numBuckets-1), 1) {
		t.Fatalf("overflow bucket upper = %g, want +Inf", bucketUpper(numBuckets-1))
	}
}

func TestHistogramObserveClamping(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.NaN())
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("Sum = %g, want 0 (clamped observations contribute nothing)", got)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Upper != 0 || s.Buckets[0].Count != 3 {
		t.Fatalf("snapshot = %+v, want all 3 in the zero bucket", s.Buckets)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(1.0)
	}
	h.Observe(1e12) // beyond 2^20: overflow
	s := h.Snapshot()
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.Upper, 1) || last.Count != 1 {
		t.Fatalf("overflow bucket = %+v, want {+Inf 1}", last)
	}
	// p50 must resolve to the bucket containing 1.0 (bound within one
	// sub-bucket of the true value)...
	if p50 := s.Quantile(0.50); p50 < 1.0 || p50 > 1.25 {
		t.Errorf("p50 = %g, want within (1.0, 1.25]", p50)
	}
	// ...and the top quantile, which lands in the overflow bucket, must
	// stay finite by reporting the largest finite bound.
	if p100 := s.Quantile(1.0); math.IsInf(p100, 1) {
		t.Errorf("p100 = +Inf, want largest finite bound")
	}
}

func TestQuantileEmptyAndClamp(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("quantile of empty histogram = %g, want 0", got)
	}
	h.Observe(2.0)
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo != hi {
		t.Fatalf("out-of-range q not clamped: q=-1 → %g, q=2 → %g", lo, hi)
	}
}

func TestQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 10.0
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	// Log bucketing with 4 sub-buckets per octave bounds relative error
	// by ~25%: the reported bound brackets the true quantile from above.
	if p50 < 5.0 || p50 > 6.3 {
		t.Errorf("p50 = %g, want ≈5 within one bucket width", p50)
	}
	if p99 < 9.9 || p99 > 12.5 {
		t.Errorf("p99 = %g, want ≈9.9 within one bucket width", p99)
	}
}

func TestNilHistogramIsNoOp(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Fatal("nil histogram accessors must return zero values")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
}
