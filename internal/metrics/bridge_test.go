package metrics

import (
	"math"
	"sync"
	"testing"
	"time"

	"tunable/internal/trace"
)

func TestBridgeRecordsAllKinds(t *testing.T) {
	r := New()
	c := r.Counter("netem_bytes_shaped_total", "Bytes shaped.", L("dir", "fwd"))
	g := r.Gauge("sandbox_cpu_share", "Share.")
	h := r.Histogram("avis_fetch_seconds", "Fetch latency.")
	c.Add(128)
	g.Set(0.5)
	h.Observe(0.25)
	h.Observe(0.30)

	rec := trace.NewRecorder()
	b := NewBridge(r, rec)
	b.Record(3 * time.Second)
	b.Record(4 * time.Second)

	cs, ok := rec.Get(`netem_bytes_shaped_total{dir="fwd"}`)
	if !ok || cs.Len() != 2 {
		t.Fatalf("counter series missing or wrong length: ok=%v", ok)
	}
	if pt, _ := cs.Last(); pt.V != 128 {
		t.Errorf("counter bridged value = %g, want 128", pt.V)
	}
	gs, ok := rec.Get("sandbox_cpu_share")
	if !ok {
		t.Fatal("gauge series missing")
	}
	if pt, _ := gs.Last(); pt.V != 0.5 {
		t.Errorf("gauge bridged value = %g, want 0.5", pt.V)
	}
	for _, name := range []string{
		"avis_fetch_seconds.p50",
		"avis_fetch_seconds.p95",
		"avis_fetch_seconds.p99",
		"avis_fetch_seconds.count",
	} {
		s, ok := rec.Get(name)
		if !ok || s.Len() != 2 {
			t.Fatalf("histogram series %q missing or wrong length", name)
		}
	}
	cnt, _ := rec.Get("avis_fetch_seconds.count")
	if pt, _ := cnt.Last(); pt.V != 2 {
		t.Errorf("bridged histogram count = %g, want 2", pt.V)
	}
	p50, _ := rec.Get("avis_fetch_seconds.p50")
	if pt, _ := p50.Last(); pt.V < 0.25 || math.IsInf(pt.V, 0) {
		t.Errorf("bridged p50 = %g, want finite ≥ 0.25", pt.V)
	}
}

func TestBridgeNilSafety(t *testing.T) {
	var b *Bridge
	b.Record(time.Second) // must not panic
	NewBridge(nil, nil).Record(time.Second)
	NewBridge(New(), nil).Record(time.Second)
}

// TestBridgeConcurrentWithInstruments drives the metrics→trace bridge from
// one goroutine while others hammer the instruments — the -race proof that
// trace.Series/Recorder Add and the bridge's snapshot reads are safe
// together.
func TestBridgeConcurrentWithInstruments(t *testing.T) {
	r := New()
	rec := trace.NewRecorder()
	b := NewBridge(r, rec)

	const (
		writers = 4
		iters   = 500
		ticks   = 50
	)
	c := r.Counter("race_total", "Race counter.")
	h := r.Histogram("race_seconds", "Race histogram.")
	g := r.Gauge("race_gauge", "Race gauge.")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				g.Set(float64(i))
				// Concurrent direct trace writes alongside bridge writes
				// to the same recorder.
				rec.Series("direct", "count").Add(time.Duration(i), float64(w))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ticks; i++ {
			b.Record(time.Duration(i) * time.Millisecond)
			rec.Names() // concurrent reader
			if s, ok := rec.Get("race_total"); ok {
				s.Samples()
			}
		}
	}()
	wg.Wait()
	b.Record(time.Second) // final quiescent snapshot

	s, ok := rec.Get("race_total")
	if !ok || s.Len() != ticks+1 {
		l := -1
		if s != nil {
			l = s.Len()
		}
		t.Fatalf("race_total series: ok=%v len=%d, want %d ticks", ok, l, ticks+1)
	}
	if pt, _ := s.Last(); pt.V != writers*iters {
		t.Errorf("final bridged counter = %g, want %d", pt.V, writers*iters)
	}
	direct, _ := rec.Get("direct")
	if direct.Len() != writers*iters {
		t.Errorf("direct series len = %d, want %d", direct.Len(), writers*iters)
	}
}
