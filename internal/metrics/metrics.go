// Package metrics is the live telemetry layer of the adaptation stack: a
// metric registry holding sharded lock-free counters, gauges, and
// log-bucketed latency histograms, with snapshot/export in Prometheus text
// exposition format and JSON, an HTTP /metrics + /healthz endpoint for
// real-network deployments, and a bridge that down-converts snapshots into
// trace.Series so the existing figure tooling keeps working.
//
// The package is clock-agnostic: a Registry carries an injected
// now() time.Duration source instead of reading time.Now directly, so the
// same instruments run under the deterministic vtime kernel (now =
// sim.Now) and under wall-clock real mode (now = time.Since(start)).
//
// Instrument handles are nil-safe: every method on a nil *Counter,
// *Gauge, or *Histogram is a no-op, so instrumented packages keep nil
// fields until EnableMetrics is called and pay only a nil check when
// telemetry is off. The hot paths (Counter.Add, Gauge.Set,
// Histogram.Observe) are allocation-free and lock-free.
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the stripe count of a sharded counter. Adds pick a stripe
// with a per-call fast random so concurrent writers on different cores
// rarely collide on a cache line; reads sum all stripes.
const numShards = 16

// shard is one cache-line-padded counter stripe.
type shard struct {
	bits atomic.Uint64
	_    [7]uint64 // pad to a 64-byte cache line
}

// shardIdx picks a stripe. rand/v2's top-level generator is per-core,
// lock-free, and allocation-free, so this costs a few nanoseconds and
// never serializes writers.
func shardIdx() int { return int(rand.Uint32() & (numShards - 1)) }

// Label is one name=value pair attached to a metric at registration time.
type Label struct{ Key, Value string }

// L constructs a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// desc is the identity of a registered metric.
type desc struct {
	name   string
	help   string
	labels []Label
}

// id returns the registry key: name plus canonically ordered labels.
func (d *desc) id() string {
	if len(d.labels) == 0 {
		return d.name
	}
	return d.name + d.labelString()
}

// labelString renders {k1="v1",k2="v2"} with keys sorted.
func (d *desc) labelString() string {
	if len(d.labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), d.labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value, striped across padded
// atomic cells. Values are float64 so fractional quantities (CPU-seconds)
// accumulate exactly like integer counts (exact up to 2^53).
type Counter struct {
	d      desc
	shards [numShards]shard
}

// Add increments the counter. Negative deltas are ignored (counters are
// monotonic). Safe for concurrent use; allocation-free.
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	s := &c.shards[shardIdx()]
	for {
		old := s.bits.Load()
		if s.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	var sum float64
	for i := range c.shards {
		sum += math.Float64frombits(c.shards[i].bits.Load())
	}
	return sum
}

// Name returns the metric name (without labels).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.d.name
}

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	d    desc
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the metric name (without labels).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.d.name
}

// metric is the union of registered instrument kinds.
type metric interface {
	describe() *desc
	kind() string
}

func (c *Counter) describe() *desc   { return &c.d }
func (c *Counter) kind() string      { return "counter" }
func (g *Gauge) describe() *desc     { return &g.d }
func (g *Gauge) kind() string        { return "gauge" }
func (h *Histogram) describe() *desc { return &h.d }
func (h *Histogram) kind() string    { return "histogram" }

// Registry is a namespace of metrics. The zero value is not usable;
// construct with New. A nil *Registry is a valid "telemetry off" registry:
// every lookup returns a nil instrument whose methods are no-ops.
type Registry struct {
	mu    sync.Mutex
	now   func() time.Duration
	byID  map[string]metric
	order []string // registration order of ids
}

// Option customizes a Registry.
type Option func(*Registry)

// WithNow injects the time source used to timestamp snapshots (sim.Now for
// virtual time, time.Since(start) for wall clock). The default reports
// time since registry creation in wall-clock terms.
func WithNow(fn func() time.Duration) Option {
	return func(r *Registry) {
		if fn != nil {
			r.now = fn
		}
	}
}

// New creates an empty registry.
func New(opts ...Option) *Registry {
	start := time.Now()
	r := &Registry{
		now:  func() time.Duration { return time.Since(start) },
		byID: make(map[string]metric),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Now reports the registry's current time.
func (r *Registry) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.now()
}

// register returns the existing metric under id or installs m. It panics
// on a kind clash: re-registering a name as a different instrument type is
// a programming error that would silently corrupt the exposition.
func (r *Registry) register(id string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byID[id]; ok {
		if old.kind() != m.kind() {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", id, m.kind(), old.kind()))
		}
		return old
	}
	r.byID[id] = m
	r.order = append(r.order, id)
	return m
}

// Counter returns (creating if needed) the counter with the given name and
// labels. A nil registry returns nil, whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{d: desc{name: name, help: help, labels: labels}}
	return r.register(c.d.id(), c).(*Counter)
}

// Gauge returns (creating if needed) the gauge with the given name/labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{d: desc{name: name, help: help, labels: labels}}
	return r.register(g.d.id(), g).(*Gauge)
}

// Histogram returns (creating if needed) the histogram with the given
// name/labels.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{d: desc{name: name, help: help, labels: labels}}
	return r.register(h.d.id(), h).(*Histogram)
}

// each calls fn for every metric in registration order.
func (r *Registry) each(fn func(metric)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	ms := make([]metric, len(ids))
	for i, id := range ids {
		ms[i] = r.byID[id]
	}
	r.mu.Unlock()
	for _, m := range ms {
		fn(m)
	}
}
