package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAddAndValue(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(2.5)
	c.Add(-7) // negative deltas ignored: counters are monotonic
	c.Add(0)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value = %g, want 3.5", got)
	}
	if c.Name() != "requests_total" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestGaugeSetAddValue(t *testing.T) {
	r := New()
	g := r.Gauge("share", "CPU share.")
	g.Set(0.5)
	g.Add(0.25)
	g.Add(-0.5)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("Value = %g, want 0.25", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "X.", L("host", "h1"))
	b := r.Counter("x_total", "X.", L("host", "h1"))
	if a != b {
		t.Fatal("same name+labels must return the same instrument")
	}
	c := r.Counter("x_total", "X.", L("host", "h2"))
	if a == c {
		t.Fatal("different labels must create a distinct series")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Fatalf("series not isolated: b=%g c=%g", b.Value(), c.Value())
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := New()
	r.Counter("thing", "A counter.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("thing", "Now a gauge?!")
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "A.")
	g := r.Gauge("b", "B.")
	h := r.Histogram("c_seconds", "C.")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1) // none may panic
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Now() != 0 {
		t.Fatal("nil registry Now must be 0")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestWithNowInjectedClock(t *testing.T) {
	var virtual time.Duration = 42 * time.Second
	r := New(WithNow(func() time.Duration { return virtual }))
	if r.Now() != 42*time.Second {
		t.Fatalf("Now = %v, want 42s", r.Now())
	}
	virtual = time.Minute
	if r.Now() != time.Minute {
		t.Fatalf("Now = %v, want 1m after clock advance", r.Now())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines doing
// mixed register-and-update work; run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total", "Shared counter.").Inc()
				r.Gauge("shared_gauge", "Shared gauge.").Set(float64(i))
				r.Histogram("shared_seconds", "Shared histogram.").Observe(float64(i) * 1e-3)
				// A per-worker series exercises concurrent registration.
				r.Counter("worker_total", "Per-worker.", L("w", string(rune('a'+w)))).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != workers*iters {
		t.Fatalf("shared_total = %g, want %d", got, workers*iters)
	}
	if got := r.Histogram("shared_seconds", "").Count(); got != workers*iters {
		t.Fatalf("shared_seconds count = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		c := r.Counter("worker_total", "", L("w", string(rune('a'+w))))
		if c.Value() != iters {
			t.Fatalf("worker %d counter = %g, want %d", w, c.Value(), iters)
		}
	}
}

// TestHotPathAllocationFree pins the acceptance criterion that the
// instrument hot paths allocate nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := New()
	c := r.Counter("allocs_total", "A.")
	g := r.Gauge("allocs_gauge", "A.")
	h := r.Histogram("allocs_seconds", "A.")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1.5) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(2) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := New()
	c := r.Counter("bench_total", "B.")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench_seconds", "B.")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}
