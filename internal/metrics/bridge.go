package metrics

import (
	"strings"
	"time"

	"tunable/internal/trace"
)

// Bridge down-converts a stream of registry snapshots into trace.Series so
// the existing figure tooling (tables, summaries, cmd/avis-figures) keeps
// working on top of live telemetry. Each Record call appends one point per
// scalar metric: counters and gauges record their current value, and each
// histogram expands into <name>.p50/.p95/.p99/.count series.
//
// The bridge carries no clock of its own: Record stamps points with the
// instant it is given (sim time in virtual mode, time.Since(start) in real
// mode), so a simulation process and a wall-clock ticker drive it the same
// way.
type Bridge struct {
	reg *Registry
	rec *trace.Recorder
}

// NewBridge connects a registry to a recorder.
func NewBridge(reg *Registry, rec *trace.Recorder) *Bridge {
	return &Bridge{reg: reg, rec: rec}
}

// seriesUnit guesses a display unit from metric naming conventions.
func seriesUnit(name string) string {
	switch {
	case strings.Contains(name, "seconds"):
		return "s"
	case strings.Contains(name, "bytes"):
		return "B"
	case strings.HasSuffix(name, "_total"):
		return "count"
	}
	return ""
}

// Record appends one sample per metric at the given instant.
func (b *Bridge) Record(at time.Duration) {
	if b == nil || b.reg == nil || b.rec == nil {
		return
	}
	b.reg.each(func(m metric) {
		id := m.describe().id()
		unit := seriesUnit(m.describe().name)
		switch v := m.(type) {
		case *Counter:
			b.rec.Series(id, unit).Add(at, v.Value())
		case *Gauge:
			b.rec.Series(id, unit).Add(at, v.Value())
		case *Histogram:
			s := v.Snapshot()
			b.rec.Series(id+".p50", unit).Add(at, s.Quantile(0.50))
			b.rec.Series(id+".p95", unit).Add(at, s.Quantile(0.95))
			b.rec.Series(id+".p99", unit).Add(at, s.Quantile(0.99))
			b.rec.Series(id+".count", "count").Add(at, float64(s.Count))
		}
	})
}

// Recorder returns the underlying trace recorder.
func (b *Bridge) Recorder() *trace.Recorder { return b.rec }
