package imagery

import (
	"math"
	"testing"
)

func TestNewAtSet(t *testing.T) {
	im := New(16)
	im.Set(3, 5, 42)
	if im.At(3, 5) != 42 {
		t.Fatal("At/Set")
	}
	if im.At(0, 0) != 0 {
		t.Fatal("zero init")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Generate(32, 1)
	b := a.Clone()
	b.Set(0, 0, -999)
	if a.At(0, 0) == -999 {
		t.Fatal("Clone aliases")
	}
}

func TestClampAndBytes(t *testing.T) {
	im := New(2)
	im.Pix = []float64{-5, 300, 127.6, 0}
	b := im.Bytes()
	if b[0] != 0 || b[1] != 255 || b[2] != 128 || b[3] != 0 {
		t.Fatalf("bytes %v", b)
	}
	im.Clamp()
	if im.Pix[0] != 0 || im.Pix[1] != 255 {
		t.Fatalf("clamp %v", im.Pix)
	}
}

func TestMSEAndPSNR(t *testing.T) {
	a := Generate(32, 1)
	if _, err := MSE(a, New(16)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	p, err := PSNR(a, a.Clone())
	if err != nil || !math.IsInf(p, 1) {
		t.Fatalf("identical PSNR %v %v", p, err)
	}
	b := a.Clone()
	for i := range b.Pix {
		b.Pix[i] += 10
	}
	mse, _ := MSE(a, b)
	if math.Abs(mse-100) > 1e-9 {
		t.Fatalf("mse %v", mse)
	}
	p, _ = PSNR(a, b)
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("psnr %v want %v", p, want)
	}
}

func TestDownsampleAverages(t *testing.T) {
	im := New(4)
	for i := range im.Pix {
		im.Pix[i] = float64(i)
	}
	d := im.Downsample(1)
	if d.Side != 2 {
		t.Fatalf("side %d", d.Side)
	}
	// Top-left 2×2 block of the original: 0,1,4,5 → mean 2.5.
	if d.At(0, 0) != 2.5 {
		t.Fatalf("downsample %v", d.At(0, 0))
	}
	if im.Downsample(0).Side != 4 {
		t.Fatal("k=0 should be identity")
	}
}

func TestGenerateDeterministicAndDistinct(t *testing.T) {
	a1 := Generate(64, 7)
	a2 := Generate(64, 7)
	for i := range a1.Pix {
		if a1.Pix[i] != a2.Pix[i] {
			t.Fatal("same seed differs")
		}
	}
	b := Generate(64, 8)
	same := true
	for i := range a1.Pix {
		if a1.Pix[i] != b.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
	// All pixels within valid range.
	for _, v := range a1.Pix {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %v out of range", v)
		}
	}
}
