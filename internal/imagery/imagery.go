// Package imagery provides the image substrate for the active
// visualization application: square grayscale images, deterministic
// synthetic image generation (standing in for the paper's stored image
// corpus), and quality metrics. Synthetic images mix smooth gradients,
// Gaussian blobs, and textured regions so that wavelet coefficients show
// the compressibility contrast between the LZW and BZW codecs that drives
// the Figure 6(a) crossover.
package imagery

import (
	"fmt"
	"math"
)

// Image is a square grayscale image with float64 samples nominally in
// [0, 255].
type Image struct {
	Side int
	Pix  []float64
}

// New allocates a zero image of the given side length.
func New(side int) *Image {
	return &Image{Side: side, Pix: make([]float64, side*side)}
}

// At returns the sample at (x, y).
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.Side+x] }

// Set stores a sample at (x, y).
func (im *Image) Set(x, y int, v float64) { im.Pix[y*im.Side+x] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := New(im.Side)
	copy(out.Pix, im.Pix)
	return out
}

// Clamp limits all samples to [0, 255].
func (im *Image) Clamp() {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 255 {
			im.Pix[i] = 255
		}
	}
}

// Bytes quantizes the image to one byte per pixel.
func (im *Image) Bytes() []byte {
	out := make([]byte, len(im.Pix))
	for i, v := range im.Pix {
		switch {
		case v <= 0:
			out[i] = 0
		case v >= 255:
			out[i] = 255
		default:
			out[i] = byte(v + 0.5)
		}
	}
	return out
}

// MSE computes the mean squared error between two images.
func MSE(a, b *Image) (float64, error) {
	if a.Side != b.Side {
		return 0, fmt.Errorf("imagery: size mismatch %d vs %d", a.Side, b.Side)
	}
	var sum float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		sum += d * d
	}
	return sum / float64(len(a.Pix)), nil
}

// PSNR computes peak signal-to-noise ratio in dB against a peak of 255.
// Identical images report +Inf.
func PSNR(a, b *Image) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// Downsample halves the image k times by 2×2 box averaging, producing the
// reference image at a lower resolution level.
func (im *Image) Downsample(k int) *Image {
	out := im
	for ; k > 0; k-- {
		half := New(out.Side / 2)
		for y := 0; y < half.Side; y++ {
			for x := 0; x < half.Side; x++ {
				v := out.At(2*x, 2*y) + out.At(2*x+1, 2*y) + out.At(2*x, 2*y+1) + out.At(2*x+1, 2*y+1)
				half.Set(x, y, v/4)
			}
		}
		out = half
	}
	return out
}

// Generate produces a deterministic synthetic image: a diagonal gradient
// base, several Gaussian blobs, a high-frequency textured quadrant, and a
// few hard edges. seed varies the composition so a set of distinct images
// can emulate the paper's ten-image download experiments.
func Generate(side int, seed int64) *Image {
	im := New(side)
	rng := newSplitmix(uint64(seed)*2654435761 + 12345)
	// Smooth diagonal gradient base.
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			im.Set(x, y, 40+120*float64(x+y)/float64(2*side))
		}
	}
	// Gaussian blobs.
	nBlobs := 4 + int(rng.next()%5)
	for b := 0; b < nBlobs; b++ {
		cx := float64(rng.next() % uint64(side))
		cy := float64(rng.next() % uint64(side))
		amp := 30 + 60*rng.float64()
		sigma := float64(side) * (0.03 + 0.12*rng.float64())
		inv := 1 / (2 * sigma * sigma)
		// Only touch a bounded window around the blob.
		r := int(3 * sigma)
		x0, x1 := clampInt(int(cx)-r, 0, side), clampInt(int(cx)+r, 0, side)
		y0, y1 := clampInt(int(cy)-r, 0, side), clampInt(int(cy)+r, 0, side)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				dx, dy := float64(x)-cx, float64(y)-cy
				im.Pix[y*side+x] += amp * math.Exp(-(dx*dx+dy*dy)*inv)
			}
		}
	}
	// Textured patch: deterministic pseudo-noise over a side/4 square
	// (dense high-frequency content, hard for every codec).
	qx, qy := side/2, side/2
	for y := qy; y < qy+side/4; y++ {
		for x := qx; x < qx+side/4; x++ {
			h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xBF58476D1CE4E5B9 ^ uint64(seed)
			h ^= h >> 29
			h *= 0x94D049BB133111EB
			im.Pix[y*side+x] += float64(h%37) - 18
		}
	}
	// Textured surface built from a library of 32×32 motifs, one chosen
	// per tile by hash. The same motif recurs only at long range (tens of
	// tiles apart), so its wavelet coefficients form exact repeated
	// strings separated by more than a kilobyte of other data: the
	// BWT-based codec, which models a whole 64 KiB block at once, exploits
	// them, while the bounded-window streaming LZW cannot. This recreates
	// the compression-ratio contrast between the paper's LZW and Bzip2
	// (Figure 6(a)) with an honest mechanism — long-range context
	// modeling — rather than tuned constants.
	const motifSide = 32
	const motifCount = 64
	motif := func(id, mx, my int) float64 {
		h := uint64(id)*0x9E3779B97F4A7C15 ^ uint64(mx)*0xD6E8FEB86659FD93 ^ uint64(my)*0xA0761D6478BD642F
		h ^= h >> 31
		h *= 0x8EBC6AF09C88C6E3
		h ^= h >> 29
		// Motifs are sparse line work (~8% coverage) over a flat ground,
		// so smooth-area zeros still dominate the coefficient stream.
		if h%25 >= 2 {
			return 0
		}
		v := float64(h>>8%11) + 4
		if h>>20%2 == 0 {
			v = -v
		}
		return v
	}
	for ty := 0; ty < side/motifSide; ty++ {
		for tx := 0; tx < side/motifSide; tx++ {
			h := (uint64(tx)+31)*0xE7037ED1A0B428DB ^ (uint64(ty)+97)*0xA0761D6478BD642F ^ uint64(seed)*0xBF58476D1CE4E5B9
			h ^= h >> 33
			h *= 0x94D049BB133111EB
			id := int(h % motifCount)
			for my := 0; my < motifSide; my++ {
				for mx := 0; mx < motifSide; mx++ {
					im.Pix[(ty*motifSide+my)*side+(tx*motifSide+mx)] += motif(id, mx, my)
				}
			}
		}
	}
	// Hard edges: two bright bars.
	for y := side / 8; y < side/8*2; y++ {
		for x := 0; x < side/2; x++ {
			im.Pix[y*side+x] = 230
		}
	}
	for y := 0; y < side; y++ {
		x := side * 3 / 4
		im.Pix[y*side+x] = 10
	}
	im.Clamp()
	return im
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

type splitmix struct{ state uint64 }

func newSplitmix(seed uint64) *splitmix { return &splitmix{state: seed} }

func (r *splitmix) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitmix) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }
