package perfdb

import (
	"bytes"
	"math"
	"testing"

	"tunable/internal/resource"
	"tunable/internal/spec"
)

// testApp declares one int parameter and two metrics with opposite
// preference directions.
func testApp() *spec.App {
	return spec.MustParse(`
app test;
control_parameters {
    int n in {1, 2, 3};
}
qos_metric {
    duration t minimize;
    scalar q maximize;
}
`)
}

func cfgN(n int) spec.Config { return spec.Config{"n": spec.Int(n)} }

func res(cpu float64) resource.Vector { return resource.Vector{resource.CPU: cpu} }

func TestAddAndLookup(t *testing.T) {
	db := New(testApp())
	if err := db.Add(cfgN(1), res(0.5), spec.Metrics{"t": 2.0, "q": 3.0}); err != nil {
		t.Fatal(err)
	}
	rec, ok := db.Lookup(cfgN(1), res(0.5))
	if !ok || rec.Metrics["t"] != 2.0 {
		t.Fatalf("lookup %+v %v", rec, ok)
	}
	if _, ok := db.Lookup(cfgN(1), res(0.6)); ok {
		t.Fatal("phantom record")
	}
	if _, ok := db.Lookup(cfgN(2), res(0.5)); ok {
		t.Fatal("phantom config")
	}
	if db.Len() != 1 {
		t.Fatalf("len %d", db.Len())
	}
}

func TestAddValidates(t *testing.T) {
	db := New(testApp())
	if err := db.Add(spec.Config{"n": spec.Int(99)}, res(0.5), spec.Metrics{"t": 1}); err == nil {
		t.Fatal("out-of-domain config accepted")
	}
	if err := db.Add(cfgN(1), res(0.5), spec.Metrics{"bogus": 1}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestRepeatedSamplesAveraged(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(1), res(0.5), spec.Metrics{"t": 2.0})
	db.Add(cfgN(1), res(0.5), spec.Metrics{"t": 4.0})
	db.Add(cfgN(1), res(0.5), spec.Metrics{"t": 6.0})
	rec, _ := db.Lookup(cfgN(1), res(0.5))
	if math.Abs(rec.Metrics["t"]-4.0) > 1e-12 {
		t.Fatalf("averaged %v", rec.Metrics["t"])
	}
	if rec.Samples != 3 {
		t.Fatalf("samples %d", rec.Samples)
	}
}

func TestInterpolation1D(t *testing.T) {
	db := New(testApp())
	// t decreases linearly with CPU share: t = 10 - 8·cpu.
	for _, cpu := range []float64{0.2, 0.4, 0.6, 0.8} {
		db.Add(cfgN(1), res(cpu), spec.Metrics{"t": 10 - 8*cpu})
	}
	m, err := db.Predict(cfgN(1), res(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m["t"]-6.0) > 1e-9 {
		t.Fatalf("interpolated t=%v, want 6", m["t"])
	}
	// Exactly on a lattice point.
	m, _ = db.Predict(cfgN(1), res(0.4))
	if math.Abs(m["t"]-6.8) > 1e-9 {
		t.Fatalf("lattice t=%v, want 6.8", m["t"])
	}
	// Outside the lattice: clamped (nearest-edge extrapolation).
	m, _ = db.Predict(cfgN(1), res(0.05))
	if math.Abs(m["t"]-8.4) > 1e-9 {
		t.Fatalf("clamped t=%v, want 8.4", m["t"])
	}
}

func TestInterpolation2D(t *testing.T) {
	db := New(testApp())
	// t = cpu + 10·bw on a 2×2 lattice.
	for _, cpu := range []float64{0, 1} {
		for _, bw := range []float64{0, 1} {
			v := resource.Vector{resource.CPU: cpu, resource.Bandwidth: bw}
			db.Add(cfgN(1), v, spec.Metrics{"t": cpu + 10*bw})
		}
	}
	q := resource.Vector{resource.CPU: 0.25, resource.Bandwidth: 0.5}
	m, err := db.Predict(cfgN(1), q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m["t"]-5.25) > 1e-9 {
		t.Fatalf("bilinear t=%v, want 5.25", m["t"])
	}
}

func TestIncompleteLatticeFallsBackToNearest(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(1), resource.Vector{resource.CPU: 0, resource.Bandwidth: 0}, spec.Metrics{"t": 1})
	db.Add(cfgN(1), resource.Vector{resource.CPU: 1, resource.Bandwidth: 1}, spec.Metrics{"t": 9})
	// The (0,1) and (1,0) corners are missing; Predict must still answer.
	q := resource.Vector{resource.CPU: 0.1, resource.Bandwidth: 0.1}
	m, err := db.Predict(cfgN(1), q)
	if err != nil {
		t.Fatal(err)
	}
	if m["t"] != 1 {
		t.Fatalf("fallback t=%v, want nearest (1)", m["t"])
	}
}

func TestNearestOnlyMode(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(1), res(0.2), spec.Metrics{"t": 2})
	db.Add(cfgN(1), res(0.8), spec.Metrics{"t": 8})
	db.SetMode(NearestOnly)
	m, err := db.Predict(cfgN(1), res(0.45))
	if err != nil {
		t.Fatal(err)
	}
	if m["t"] != 2 {
		t.Fatalf("nearest t=%v, want 2", m["t"])
	}
	db.SetMode(Interpolate)
	m, _ = db.Predict(cfgN(1), res(0.45))
	if math.Abs(m["t"]-4.5) > 1e-9 {
		t.Fatalf("interpolated t=%v, want 4.5", m["t"])
	}
}

func TestPredictUnknownConfig(t *testing.T) {
	db := New(testApp())
	if _, err := db.Predict(cfgN(1), res(0.5)); err == nil {
		t.Fatal("predict on empty profile succeeded")
	}
}

func TestPruneRemovesDominated(t *testing.T) {
	db := New(testApp())
	for _, cpu := range []float64{0.2, 0.8} {
		// n=1 strictly better on both metrics everywhere.
		db.Add(cfgN(1), res(cpu), spec.Metrics{"t": 1, "q": 10})
		db.Add(cfgN(2), res(cpu), spec.Metrics{"t": 5, "q": 2})
		// n=3 wins on q, loses on t → not dominated.
		db.Add(cfgN(3), res(cpu), spec.Metrics{"t": 9, "q": 50})
	}
	removed := db.Prune()
	if len(removed) != 1 || removed[0] != "n=2" {
		t.Fatalf("removed %v", removed)
	}
	if len(db.Configs()) != 2 {
		t.Fatalf("configs left %d", len(db.Configs()))
	}
}

func TestDominatedRespectsDirections(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(1), res(0.5), spec.Metrics{"t": 1, "q": 10})
	db.Add(cfgN(2), res(0.5), spec.Metrics{"t": 1, "q": 5})
	if !db.Dominated(cfgN(2), cfgN(1)) {
		t.Fatal("higher q should dominate")
	}
	if db.Dominated(cfgN(1), cfgN(2)) {
		t.Fatal("domination inverted")
	}
	// Identical profiles: neither dominates (no strict improvement).
	db2 := New(testApp())
	db2.Add(cfgN(1), res(0.5), spec.Metrics{"t": 1})
	db2.Add(cfgN(2), res(0.5), spec.Metrics{"t": 1})
	if db2.Dominated(cfgN(1), cfgN(2)) || db2.Dominated(cfgN(2), cfgN(1)) {
		t.Fatal("equal profiles should not dominate")
	}
}

func TestMergeSimilar(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(1), res(0.5), spec.Metrics{"t": 1.00})
	db.Add(cfgN(2), res(0.5), spec.Metrics{"t": 1.01}) // within 2%
	db.Add(cfgN(3), res(0.5), spec.Metrics{"t": 2.00}) // far
	removed := db.MergeSimilar(0.02)
	if len(removed) != 1 || removed[0] != "n=2" {
		t.Fatalf("removed %v", removed)
	}
	if len(db.Configs()) != 2 {
		t.Fatalf("%d configs left", len(db.Configs()))
	}
}

func TestSensitivityAnalysis(t *testing.T) {
	db := New(testApp())
	// Steep change between 0.4 and 0.6, flat elsewhere.
	db.Add(cfgN(1), res(0.2), spec.Metrics{"t": 10})
	db.Add(cfgN(1), res(0.4), spec.Metrics{"t": 10})
	db.Add(cfgN(1), res(0.6), spec.Metrics{"t": 2})
	db.Add(cfgN(1), res(0.8), spec.Metrics{"t": 2})
	sugg := db.SensitivityAnalysis(0.3)
	if len(sugg) != 1 {
		t.Fatalf("suggestions %+v", sugg)
	}
	s := sugg[0]
	if s.Kind != resource.CPU || math.Abs(s.At[resource.CPU]-0.5) > 1e-12 {
		t.Fatalf("suggestion %+v", s)
	}
	if s.RelDelta < 0.7 {
		t.Fatalf("rel delta %v", s.RelDelta)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(1), res(0.2), spec.Metrics{"t": 2, "q": 1})
	db.Add(cfgN(1), res(0.8), spec.Metrics{"t": 8, "q": 2})
	db.Add(cfgN(2), res(0.2), spec.Metrics{"t": 3, "q": 4})
	db.Add(cfgN(2), res(0.2), spec.Metrics{"t": 5, "q": 6}) // averaged, samples=2
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New(testApp())
	if err := db2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("len %d vs %d", db2.Len(), db.Len())
	}
	rec, ok := db2.Lookup(cfgN(2), res(0.2))
	if !ok || math.Abs(rec.Metrics["t"]-4) > 1e-12 || rec.Samples != 2 {
		t.Fatalf("record %+v", rec)
	}
	// Save must be deterministic.
	var buf2 bytes.Buffer
	db.Save(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Save output not deterministic")
	}
}

func TestLoadRejectsWrongApp(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(1), res(0.2), spec.Metrics{"t": 2})
	var buf bytes.Buffer
	db.Save(&buf)
	other := spec.MustParse("app other;\ncontrol_parameters { int n in {1}; }\nqos_metric { duration t minimize; }")
	db2 := New(other)
	if err := db2.Load(&buf); err == nil {
		t.Fatal("cross-application load accepted")
	}
}

func TestConfigsSorted(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(3), res(0.5), spec.Metrics{"t": 1})
	db.Add(cfgN(1), res(0.5), spec.Metrics{"t": 1})
	db.Add(cfgN(2), res(0.5), spec.Metrics{"t": 1})
	cfgs := db.Configs()
	if cfgs[0].Key() != "n=1" || cfgs[2].Key() != "n=3" {
		t.Fatalf("order %v %v %v", cfgs[0].Key(), cfgs[1].Key(), cfgs[2].Key())
	}
}

func TestNearest(t *testing.T) {
	db := New(testApp())
	db.Add(cfgN(1), res(0.2), spec.Metrics{"t": 2})
	db.Add(cfgN(1), res(0.9), spec.Metrics{"t": 9})
	rec, ok := db.Nearest(cfgN(1), res(0.3))
	if !ok || rec.Metrics["t"] != 2 {
		t.Fatalf("nearest %+v", rec)
	}
	if _, ok := db.Nearest(cfgN(3), res(0.3)); ok {
		t.Fatal("nearest on empty profile")
	}
}
