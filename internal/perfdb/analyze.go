package perfdb

import (
	"math"
	"sort"

	"tunable/internal/resource"
	"tunable/internal/spec"
)

// Dominated reports whether configuration a is dominated by configuration
// b: at every resource point sampled for both, b's metrics are at least as
// good as a's (respecting each metric's preference direction) and strictly
// better at one or more points. Dominated configurations can be dropped
// from the database without losing scheduling power — the database then
// stores the "maximal subset" of configurations (footnote 1 of the paper).
func (db *DB) Dominated(a, b spec.Config) bool {
	pa, oka := db.profiles[a.Key()]
	pb, okb := db.profiles[b.Key()]
	if !oka || !okb {
		return false
	}
	shared := 0
	strictly := false
	for rk, ra := range pa.records {
		rb, ok := pb.records[rk]
		if !ok {
			continue
		}
		shared++
		for name, va := range ra.Metrics {
			vb, ok := rb.Metrics[name]
			if !ok {
				return false
			}
			cmp := db.betterOrEqual(name, vb, va)
			if !cmp {
				return false
			}
			if db.strictlyBetter(name, vb, va) {
				strictly = true
			}
		}
	}
	return shared > 0 && strictly
}

func (db *DB) betterOrEqual(metric string, x, y float64) bool {
	m := db.app.Metric(metric)
	if m != nil && m.Better == spec.HigherIsBetter {
		return x >= y-1e-12
	}
	return x <= y+1e-12
}

func (db *DB) strictlyBetter(metric string, x, y float64) bool {
	m := db.app.Metric(metric)
	if m != nil && m.Better == spec.HigherIsBetter {
		return x > y*(1+1e-9)+1e-12
	}
	return x < y*(1-1e-9)-1e-12
}

// Prune removes every configuration dominated by another, returning the
// keys of the removed configurations in deterministic order.
func (db *DB) Prune() []string {
	cfgs := db.Configs()
	removed := []string{}
	for _, a := range cfgs {
		if _, still := db.profiles[a.Key()]; !still {
			continue
		}
		for _, b := range cfgs {
			if a.Key() == b.Key() {
				continue
			}
			if _, still := db.profiles[b.Key()]; !still {
				continue
			}
			if db.Dominated(a, b) {
				delete(db.profiles, a.Key())
				removed = append(removed, a.Key())
				break
			}
		}
	}
	sort.Strings(removed)
	return removed
}

// Similar reports whether two configurations exhibit metric values within
// relative tolerance eps at every shared resource point (and share at
// least one point). The paper merges such configurations, storing only one.
func (db *DB) Similar(a, b spec.Config, eps float64) bool {
	pa, oka := db.profiles[a.Key()]
	pb, okb := db.profiles[b.Key()]
	if !oka || !okb {
		return false
	}
	shared := 0
	for rk, ra := range pa.records {
		rb, ok := pb.records[rk]
		if !ok {
			continue
		}
		shared++
		for name, va := range ra.Metrics {
			vb, ok := rb.Metrics[name]
			if !ok {
				return false
			}
			denom := math.Max(math.Abs(va), math.Abs(vb))
			if denom == 0 {
				continue
			}
			if math.Abs(va-vb)/denom > eps {
				return false
			}
		}
	}
	return shared > 0
}

// MergeSimilar removes configurations whose behaviour is within eps of an
// earlier (in canonical order) configuration, returning removed keys.
func (db *DB) MergeSimilar(eps float64) []string {
	cfgs := db.Configs()
	removed := []string{}
	for i := 0; i < len(cfgs); i++ {
		ki := cfgs[i].Key()
		if _, still := db.profiles[ki]; !still {
			continue
		}
		for j := i + 1; j < len(cfgs); j++ {
			kj := cfgs[j].Key()
			if _, still := db.profiles[kj]; !still {
				continue
			}
			if db.Similar(cfgs[i], cfgs[j], eps) {
				delete(db.profiles, kj)
				removed = append(removed, kj)
			}
		}
	}
	sort.Strings(removed)
	return removed
}

// Suggestion asks the profiling driver for an additional sample: the
// sensitivity analysis found that metric values change steeply between two
// adjacent lattice points along one axis, so the region should be sampled
// more densely (Section 5's sensitivity analysis tool).
type Suggestion struct {
	Config   spec.Config
	Kind     resource.Kind
	At       resource.Vector // suggested new sample point (midpoint)
	Metric   string
	RelDelta float64 // relative metric change across the interval
}

// SensitivityAnalysis scans every configuration's lattice for adjacent
// sample pairs along each axis whose metric values differ by more than
// threshold (relative), returning midpoint suggestions sorted by
// decreasing steepness.
func (db *DB) SensitivityAnalysis(threshold float64) []Suggestion {
	var out []Suggestion
	for _, cfg := range db.Configs() {
		p := db.profiles[cfg.Key()]
		g := p.grid()
		for _, ax := range g.Axes {
			for i := 0; i+1 < len(ax.Points); i++ {
				lo, hi := ax.Points[i], ax.Points[i+1]
				// Compare records matching on all other dimensions.
				for _, ra := range db.Records(cfg) {
					if v, ok := ra.Resources[ax.Kind]; !ok || v != lo {
						continue
					}
					peer := ra.Resources.With(ax.Kind, hi)
					rb, ok := p.records[peer.Key()]
					if !ok {
						continue
					}
					for name, va := range ra.Metrics {
						vb, ok := rb.Metrics[name]
						if !ok {
							continue
						}
						denom := math.Max(math.Abs(va), math.Abs(vb))
						if denom == 0 {
							continue
						}
						rel := math.Abs(va-vb) / denom
						if rel > threshold {
							mid := ra.Resources.With(ax.Kind, (lo+hi)/2)
							out = append(out, Suggestion{
								Config:   cfg,
								Kind:     ax.Kind,
								At:       mid,
								Metric:   name,
								RelDelta: rel,
							})
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RelDelta != out[j].RelDelta {
			return out[i].RelDelta > out[j].RelDelta
		}
		if ki, kj := out[i].Config.Key(), out[j].Config.Key(); ki != kj {
			return ki < kj
		}
		return out[i].At.Key() < out[j].At.Key()
	})
	return out
}
