// Package perfdb implements the paper's performance database (Section 5.2):
// a profile-based model of application behaviour mapping (configuration,
// resource conditions) → quality metrics. Records are produced by the
// profiling driver sweeping each configuration through the virtual testbed;
// at run time the resource scheduler queries the database — with
// multilinear interpolation between sample points, or discrete best-match
// lookup as the paper's early implementation did (Section 7.1) — to predict
// how each candidate configuration would perform under observed resource
// conditions.
package perfdb

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tunable/internal/resource"
	"tunable/internal/spec"
)

// ErrNoProfile reports that a database holds no records for a requested
// configuration. Predict wraps it with the configuration key, so callers
// test with errors.Is and degrade gracefully (the scheduler skips the
// candidate) instead of string-matching an ad-hoc error.
var ErrNoProfile = errors.New("perfdb: no profile for configuration")

// Model is the read side of a performance model: what the resource
// scheduler needs to evaluate candidate configurations. *DB is the static,
// testbed-profiled implementation; perfstore's live store implements the
// same interface over refined, persisted profiles.
type Model interface {
	// App returns the application specification the model describes.
	App() *spec.App
	// Configs lists the configurations with at least one record.
	Configs() []spec.Config
	// Records returns all records for a configuration in deterministic
	// order (used to reconstruct validity-range lattices).
	Records(cfg spec.Config) []*Record
	// Predict estimates the metrics cfg would achieve under res. A
	// configuration with no profile reports an error wrapping ErrNoProfile.
	Predict(cfg spec.Config, res resource.Vector) (spec.Metrics, error)
}

// Record is one profiled sample: the quality metrics a configuration
// achieved under specific resource conditions in the testbed.
type Record struct {
	Config    spec.Config
	Resources resource.Vector
	Metrics   spec.Metrics
	Samples   int // number of runs averaged into Metrics
}

// PredictMode selects the lookup strategy.
type PredictMode int

const (
	// Interpolate performs multilinear interpolation between lattice
	// points, falling back to nearest-neighbour where the lattice is
	// incomplete (the paper's general mechanism, Section 5).
	Interpolate PredictMode = iota
	// NearestOnly reproduces the paper's implemented scheduler, which
	// "does not do any interpolation on the performance profiles; a new
	// configuration is selected by examining discrete points ... that
	// provide the best match" (Section 7.1).
	NearestOnly
)

// DB is an in-memory performance database for one application.
type DB struct {
	app      *spec.App
	profiles map[string]*configProfile
	mode     PredictMode
}

// configProfile holds all samples for one configuration.
type configProfile struct {
	config  spec.Config
	records map[string]*Record // keyed by resource vector Key
	dims    map[resource.Kind]bool
}

var _ Model = (*DB)(nil)

// New creates an empty database for app.
func New(app *spec.App) *DB {
	return &DB{app: app, profiles: make(map[string]*configProfile)}
}

// App returns the application specification the database models.
func (db *DB) App() *spec.App { return db.app }

// SetMode selects the prediction strategy (default Interpolate).
func (db *DB) SetMode(m PredictMode) { db.mode = m }

// Mode returns the current prediction strategy.
func (db *DB) Mode() PredictMode { return db.mode }

// Add inserts a sample. Repeated samples at the same (config, resources)
// point are averaged, mirroring the driver's repeated executions.
func (db *DB) Add(cfg spec.Config, res resource.Vector, m spec.Metrics) error {
	if err := db.app.ValidateConfig(cfg); err != nil {
		return err
	}
	for name := range m {
		if db.app.Metric(name) == nil {
			return fmt.Errorf("perfdb: unknown metric %q", name)
		}
	}
	key := cfg.Key()
	p, ok := db.profiles[key]
	if !ok {
		p = &configProfile{
			config:  cfg.Clone(),
			records: make(map[string]*Record),
			dims:    make(map[resource.Kind]bool),
		}
		db.profiles[key] = p
	}
	for k := range res {
		p.dims[k] = true
	}
	rk := res.Key()
	if rec, dup := p.records[rk]; dup {
		// Incremental mean of each metric.
		n := float64(rec.Samples)
		for name, v := range m {
			rec.Metrics[name] = (rec.Metrics[name]*n + v) / (n + 1)
		}
		rec.Samples++
		return nil
	}
	p.records[rk] = &Record{
		Config:    cfg.Clone(),
		Resources: res.Clone(),
		Metrics:   m.Clone(),
		Samples:   1,
	}
	return nil
}

// Configs returns the configurations with at least one record, sorted by
// canonical key.
func (db *DB) Configs() []spec.Config {
	keys := make([]string, 0, len(db.profiles))
	for k := range db.profiles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]spec.Config, len(keys))
	for i, k := range keys {
		out[i] = db.profiles[k].config
	}
	return out
}

// Records returns all records for a configuration in deterministic order.
func (db *DB) Records(cfg spec.Config) []*Record {
	p, ok := db.profiles[cfg.Key()]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(p.records))
	for k := range p.records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Record, len(keys))
	for i, k := range keys {
		out[i] = p.records[k]
	}
	return out
}

// Len returns the total number of records.
func (db *DB) Len() int {
	n := 0
	for _, p := range db.profiles {
		n += len(p.records)
	}
	return n
}

// Lookup returns the exact record at (cfg, res) if one exists.
func (db *DB) Lookup(cfg spec.Config, res resource.Vector) (*Record, bool) {
	p, ok := db.profiles[cfg.Key()]
	if !ok {
		return nil, false
	}
	rec, ok := p.records[res.Key()]
	return rec, ok
}

// grid reconstructs the sample lattice for a configuration: the sorted
// unique values observed along each resource dimension.
func (p *configProfile) grid() *resource.Grid {
	kinds := make([]resource.Kind, 0, len(p.dims))
	for k := range p.dims {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	axes := make([]resource.Axis, 0, len(kinds))
	for _, k := range kinds {
		var pts []float64
		for _, rec := range p.records {
			if v, ok := rec.Resources[k]; ok {
				pts = append(pts, v)
			}
		}
		axes = append(axes, resource.Axis{Kind: k, Points: pts})
	}
	return resource.NewGrid(axes...)
}

// scale returns a normalization vector (axis spans) for distance
// computations.
func (p *configProfile) scale() resource.Vector {
	g := p.grid()
	s := resource.Vector{}
	for _, ax := range g.Axes {
		if len(ax.Points) == 0 {
			continue
		}
		span := ax.Points[len(ax.Points)-1] - ax.Points[0]
		if span <= 0 {
			span = math.Abs(ax.Points[0])
			if span == 0 {
				span = 1
			}
		}
		s[ax.Kind] = span
	}
	return s
}

// Nearest returns the record whose resource point is closest to res.
func (db *DB) Nearest(cfg spec.Config, res resource.Vector) (*Record, bool) {
	p, ok := db.profiles[cfg.Key()]
	if !ok || len(p.records) == 0 {
		return nil, false
	}
	scale := p.scale()
	var best *Record
	bestD := math.Inf(1)
	for _, rec := range db.Records(cfg) {
		d := rec.Resources.Distance(res, scale)
		if d < bestD {
			bestD = d
			best = rec
		}
	}
	return best, best != nil
}

// Predict estimates the metrics cfg would achieve under resource
// conditions res. In Interpolate mode it performs multilinear
// interpolation over the sample lattice (clamping to the lattice boundary,
// which extrapolates by nearest edge); where lattice corners are missing,
// or in NearestOnly mode, it falls back to the nearest sampled point.
func (db *DB) Predict(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
	p, ok := db.profiles[cfg.Key()]
	if !ok || len(p.records) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoProfile, cfg.Key())
	}
	if db.mode == NearestOnly {
		rec, _ := db.Nearest(cfg, res)
		return rec.Metrics.Clone(), nil
	}
	m, err := db.interpolate(p, res)
	if err != nil {
		rec, _ := db.Nearest(cfg, res)
		return rec.Metrics.Clone(), nil
	}
	return m, nil
}

// interpolate performs multilinear interpolation at res over the profile's
// lattice. It fails if any required lattice corner has no record.
func (db *DB) interpolate(p *configProfile, res resource.Vector) (spec.Metrics, error) {
	g := p.grid()
	if len(g.Axes) == 0 {
		return nil, fmt.Errorf("perfdb: profile has no resource dimensions")
	}
	lo, hi, err := g.Neighbors(res)
	if err != nil {
		return nil, err
	}
	// Determine the varying dimensions and interpolation weights.
	type dim struct {
		kind resource.Kind
		lo   float64
		hi   float64
		w    float64 // weight of the hi end
	}
	var dims []dim
	base := resource.Vector{}
	for _, ax := range g.Axes {
		l, h := lo[ax.Kind], hi[ax.Kind]
		if l == h {
			base[ax.Kind] = l
			continue
		}
		w := (res[ax.Kind] - l) / (h - l)
		dims = append(dims, dim{kind: ax.Kind, lo: l, hi: h, w: w})
	}
	// Accumulate the 2^d corner records.
	out := spec.Metrics{}
	var walk func(i int, pt resource.Vector, weight float64) error
	walk = func(i int, pt resource.Vector, weight float64) error {
		if i == len(dims) {
			rec, ok := p.records[pt.Key()]
			if !ok {
				return fmt.Errorf("perfdb: lattice corner %s missing", pt.Key())
			}
			for name, v := range rec.Metrics {
				out[name] += weight * v
			}
			return nil
		}
		d := dims[i]
		if err := walk(i+1, pt.With(d.kind, d.lo), weight*(1-d.w)); err != nil {
			return err
		}
		return walk(i+1, pt.With(d.kind, d.hi), weight*d.w)
	}
	if err := walk(0, base, 1.0); err != nil {
		return nil, err
	}
	return out, nil
}
