package perfdb

import (
	"bytes"
	"strings"
	"testing"

	"tunable/internal/resource"
	"tunable/internal/spec"
)

// fuzzApp is a small but representative specification: an int parameter,
// an enum parameter, and two metrics — enough shape that config keys,
// resource vectors, and metric names in fuzz input all have something real
// to resolve (or fail to resolve) against.
const fuzzAppSource = `
app fuzzapp;
control_parameters {
    int n in {1, 2, 4};
    enum mode in {fast, small};
}
execution_env {
    host h;
}
qos_metric {
    duration time minimize;
    scalar quality maximize;
}
task t {
    params { n, mode }
    uses { h.cpu }
    yields { time, quality }
}
`

// FuzzDBLoad feeds arbitrary bytes to (*DB).Load, mirroring the compress
// fuzz idiom: persisted input may be malformed, truncated, or hostile, and
// Load must either succeed or return an error — never panic, and never
// leave the database half-validated (every record that made it in must
// pass the same checks Add applies).
func FuzzDBLoad(f *testing.F) {
	app := spec.MustParse(fuzzAppSource)

	// Seed with a real Save round trip, truncations of it, and structured
	// near-misses (wrong app, unknown parameter, unknown metric, non-JSON).
	seedDB := New(app)
	cfg := spec.Config{"n": spec.Int(2), "mode": spec.Enum("fast")}
	res := resource.Vector{resource.CPU: 0.5}
	if err := seedDB.Add(cfg, res, spec.Metrics{"time": 1.5, "quality": 0.9}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := seedDB.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	f.Add([]byte{})
	f.Add([]byte(`{"app":"otherapp","records":[]}`))
	f.Add([]byte(`{"app":"fuzzapp","records":[{"config":"zz=9","resources":{"cpu":1},"metrics":{"time":1},"samples":1}]}`))
	f.Add([]byte(`{"app":"fuzzapp","records":[{"config":"n=1,mode=fast","resources":{"cpu":1},"metrics":{"bogus":1},"samples":1}]}`))
	f.Add([]byte(`{"app":"fuzzapp","records":[{"config":"n=1,mode=fast","resources":{},"metrics":{},"samples":-7}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(strings.Repeat(`[`, 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		db := New(spec.MustParse(fuzzAppSource))
		if err := db.Load(bytes.NewReader(data)); err != nil {
			return // malformed input must error, and did
		}
		// Whatever loaded must be internally consistent: every surviving
		// record revalidates, and a Save/Load round trip reproduces it.
		for _, c := range db.Configs() {
			if err := db.App().ValidateConfig(c); err != nil {
				t.Fatalf("loaded config fails validation: %v", err)
			}
			for _, rec := range db.Records(c) {
				if rec.Samples < 1 {
					t.Fatalf("loaded record has %d samples", rec.Samples)
				}
			}
		}
		var out bytes.Buffer
		if err := db.Save(&out); err != nil {
			t.Fatalf("save after successful load: %v", err)
		}
		again := New(spec.MustParse(fuzzAppSource))
		if err := again.Load(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if again.Len() != db.Len() {
			t.Fatalf("round trip changed record count: %d != %d", again.Len(), db.Len())
		}
	})
}
