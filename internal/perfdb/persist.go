package perfdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tunable/internal/resource"
)

// fileFormat is the on-disk JSON representation.
type fileFormat struct {
	App     string       `json:"app"`
	Records []fileRecord `json:"records"`
}

type fileRecord struct {
	Config    string             `json:"config"` // canonical config key
	Resources map[string]float64 `json:"resources"`
	Metrics   map[string]float64 `json:"metrics"`
	Samples   int                `json:"samples"`
}

// Save writes the database as JSON. Output is deterministic: records are
// sorted by (config key, resource key).
func (db *DB) Save(w io.Writer) error {
	ff := fileFormat{App: db.app.Name}
	for _, cfg := range db.Configs() {
		for _, rec := range db.Records(cfg) {
			fr := fileRecord{
				Config:    rec.Config.Key(),
				Resources: map[string]float64{},
				Metrics:   map[string]float64(rec.Metrics),
				Samples:   rec.Samples,
			}
			for k, v := range rec.Resources {
				fr.Resources[string(k)] = v
			}
			ff.Records = append(ff.Records, fr)
		}
	}
	sort.Slice(ff.Records, func(i, j int) bool {
		if ff.Records[i].Config != ff.Records[j].Config {
			return ff.Records[i].Config < ff.Records[j].Config
		}
		return fmt.Sprint(ff.Records[i].Resources) < fmt.Sprint(ff.Records[j].Resources)
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// Load reads a database previously written by Save. The receiver's
// application specification resolves configuration keys; a mismatched
// application name is an error.
func (db *DB) Load(r io.Reader) error {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return fmt.Errorf("perfdb: decode: %w", err)
	}
	if ff.App != db.app.Name {
		return fmt.Errorf("perfdb: file is for application %q, database for %q", ff.App, db.app.Name)
	}
	for _, fr := range ff.Records {
		cfg, err := db.app.ParseConfigKey(fr.Config)
		if err != nil {
			return err
		}
		res := resource.Vector{}
		for k, v := range fr.Resources {
			res[resource.Kind(k)] = v
		}
		if err := db.Add(cfg, res, fr.Metrics); err != nil {
			return err
		}
		// Preserve the sample count from the file.
		if rec, ok := db.Lookup(cfg, res); ok && fr.Samples > 1 {
			rec.Samples = fr.Samples
		}
	}
	return nil
}
