package perfdb

import (
	"math"
	"testing"
	"testing/quick"

	"tunable/internal/resource"
	"tunable/internal/spec"
)

// Property: multilinear interpolation of a multilinear function is exact.
func TestInterpolationExactOnMultilinear(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ka := 0.5 + float64(a)/64 // cpu coefficient
		kb := 10 + float64(b)     // bandwidth coefficient
		kc := float64(c) / 16     // cross term
		db := New(testApp())
		for _, cpu := range []float64{0.2, 0.6, 1.0} {
			for _, bw := range []float64{1, 5, 9} {
				v := resource.Vector{resource.CPU: cpu, resource.Bandwidth: bw}
				val := ka*cpu + kb*bw + kc*cpu*bw
				if err := db.Add(cfgN(1), v, spec.Metrics{"t": val}); err != nil {
					return false
				}
			}
		}
		// Query strictly inside one cell.
		q := resource.Vector{resource.CPU: 0.45, resource.Bandwidth: 3.3}
		m, err := db.Predict(cfgN(1), q)
		if err != nil {
			return false
		}
		want := ka*0.45 + kb*3.3 + kc*0.45*3.3
		return math.Abs(m["t"]-want) < 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: prediction at a sampled lattice point returns the sample.
func TestPredictIdentityOnLattice(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) < 2 {
			return true
		}
		if len(vals) > 12 {
			vals = vals[:12]
		}
		db := New(testApp())
		pts := map[float64]float64{}
		for i, v := range vals {
			cpu := 0.1 + float64(i)*0.05
			val := float64(v)
			pts[cpu] = val
			if err := db.Add(cfgN(1), res(cpu), spec.Metrics{"t": val}); err != nil {
				return false
			}
		}
		for cpu, want := range pts {
			m, err := db.Predict(cfgN(1), res(cpu))
			if err != nil || math.Abs(m["t"]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolation is bounded by the surrounding lattice values
// (no overshoot) in one dimension.
func TestInterpolationBounded(t *testing.T) {
	f := func(lo, hi uint8, fracQ uint8) bool {
		db := New(testApp())
		vLo, vHi := float64(lo), float64(hi)
		db.Add(cfgN(1), res(0.2), spec.Metrics{"t": vLo})
		db.Add(cfgN(1), res(0.8), spec.Metrics{"t": vHi})
		q := 0.2 + 0.6*float64(fracQ)/255
		m, err := db.Predict(cfgN(1), res(q))
		if err != nil {
			return false
		}
		min, max := math.Min(vLo, vHi), math.Max(vLo, vHi)
		return m["t"] >= min-1e-9 && m["t"] <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: pruning never removes a configuration that is uniquely best
// somewhere on the lattice.
func TestPruneKeepsLatticeWinners(t *testing.T) {
	app := testApp()
	db := New(app)
	// n=1 best at low cpu, n=3 best at high cpu, n=2 dominated.
	for _, cpu := range []float64{0.2, 0.5, 0.8} {
		db.Add(cfgN(1), res(cpu), spec.Metrics{"t": 1 + cpu})     // rises
		db.Add(cfgN(2), res(cpu), spec.Metrics{"t": 3 + cpu})     // always worst
		db.Add(cfgN(3), res(cpu), spec.Metrics{"t": 2.5 - 2*cpu}) // falls
	}
	removed := db.Prune()
	for _, k := range removed {
		if k == "n=1" || k == "n=3" {
			t.Fatalf("pruned lattice winner %s", k)
		}
	}
	if len(removed) != 1 || removed[0] != "n=2" {
		t.Fatalf("removed %v", removed)
	}
}
