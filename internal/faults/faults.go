// Package faults is a deterministic, seeded fault-injection layer for the
// adaptation framework's two deployment planes:
//
//   - the simulated plane, where a Driver applies a scripted Schedule to
//     netem.Links in virtual time (loss, latency spikes, bandwidth dips,
//     partitions) so chaos experiments replay exactly;
//   - the real-TCP plane, where an Injector wraps net.Conn connections and
//     dial calls (drop-to-blackhole, latency, bandwidth dips, connection
//     resets, partitions, paused/slow nodes) so the cluster control plane
//     and the avis data plane can be exercised against the failures their
//     retry and failover paths exist for.
//
// Everything is driven by a Schedule: a sorted list of timed fault events,
// either written explicitly or generated from a seed. Per-message drop
// decisions come from per-connection splitmix streams derived from the
// schedule seed, so the same seed yields the same injected-fault sequence.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind names one class of injected fault; the value doubles as the metric
// label on faults_injected_total.
type Kind string

// Fault kinds.
const (
	// Drop loses messages with probability Rate on matching connections or
	// links. On a real TCP connection a hit black-holes the connection (the
	// bytes and everything after them vanish until the peer's progress
	// deadline kills the conn) — the stream analogue of packet loss.
	Drop Kind = "drop"
	// Latency adds Delay (plus up to Jitter, deterministically jittered) to
	// every delivery on matching connections or links.
	Latency Kind = "latency"
	// Bandwidth caps matching connections or links to Rate bytes/second
	// for the event's duration (a bandwidth dip).
	Bandwidth Kind = "bandwidth"
	// Reset closes matching connections at the event instant (TCP RST).
	Reset Kind = "reset"
	// Partition makes matching targets unreachable for the duration: new
	// dials fail, established connections stall. Scoping the target label
	// expresses asymmetric partitions (e.g. the coordinator cannot see a
	// node while clients still can).
	Partition Kind = "partition"
	// Pause stalls all I/O on matching targets for the duration, then
	// releases it — a paused (SIGSTOP'd or GC-wedged) node. Recovery needs
	// no reconnect, unlike Drop.
	Pause Kind = "pause"
)

// Event is one scripted fault: a window [At, At+Duration) during which the
// fault is active on targets matching Target.
type Event struct {
	At       time.Duration // offset from schedule start
	Duration time.Duration // 0 for instantaneous kinds (Reset)
	Kind     Kind
	// Target selects which labels the event applies to: a connection or
	// link whose label contains Target as a substring matches; the empty
	// string matches everything. Labels follow a "plane:node" convention
	// ("data:node-b", "ctrl:node-a"), so "node-b" hits both planes of one
	// node and "ctrl:" hits the whole control plane.
	Target string
	Rate   float64       // Drop: loss probability; Bandwidth: bytes/second
	Delay  time.Duration // Latency: fixed added delay
	Jitter time.Duration // Latency: max extra deterministic jitter per delivery
}

// Matches reports whether the event applies to the given label.
func (e Event) Matches(label string) bool {
	return e.Target == "" || strings.Contains(label, e.Target)
}

// ActiveAt reports whether the event's window covers instant t. Reset
// events are instantaneous and never "active"; they fire exactly once per
// connection (see Injector).
func (e Event) ActiveAt(t time.Duration) bool {
	return e.Kind != Reset && t >= e.At && t < e.At+e.Duration
}

func (e Event) String() string {
	tgt := e.Target
	if tgt == "" {
		tgt = "*"
	}
	switch e.Kind {
	case Drop:
		return fmt.Sprintf("%v+%v drop(%s) p=%.2f", e.At, e.Duration, tgt, e.Rate)
	case Latency:
		return fmt.Sprintf("%v+%v latency(%s) +%v~%v", e.At, e.Duration, tgt, e.Delay, e.Jitter)
	case Bandwidth:
		return fmt.Sprintf("%v+%v bandwidth(%s) %.0fB/s", e.At, e.Duration, tgt, e.Rate)
	case Reset:
		return fmt.Sprintf("%v reset(%s)", e.At, tgt)
	case Partition:
		return fmt.Sprintf("%v+%v partition(%s)", e.At, e.Duration, tgt)
	case Pause:
		return fmt.Sprintf("%v+%v pause(%s)", e.At, e.Duration, tgt)
	}
	return fmt.Sprintf("%v+%v %s(%s)", e.At, e.Duration, e.Kind, tgt)
}

// Schedule is a scripted chaos run: a seed (feeding the per-connection
// drop-decision streams) plus a time-sorted list of events.
type Schedule struct {
	Seed   uint64
	Events []Event
}

// NewSchedule sorts events into canonical order (by At, then by the order
// given) and returns the schedule.
func NewSchedule(seed uint64, events ...Event) Schedule {
	s := Schedule{Seed: seed, Events: append([]Event(nil), events...)}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}

// Validate rejects malformed events (negative times, out-of-range rates).
func (s Schedule) Validate() error {
	for i, e := range s.Events {
		if e.At < 0 || e.Duration < 0 || e.Delay < 0 || e.Jitter < 0 {
			return fmt.Errorf("faults: event %d (%s): negative time", i, e)
		}
		switch e.Kind {
		case Drop:
			if e.Rate < 0 || e.Rate > 1 {
				return fmt.Errorf("faults: event %d: drop rate %g outside [0,1]", i, e.Rate)
			}
		case Bandwidth:
			if e.Rate <= 0 {
				return fmt.Errorf("faults: event %d: bandwidth %g must be > 0", i, e.Rate)
			}
		case Latency, Reset, Partition, Pause:
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// Horizon returns the end of the last event window.
func (s Schedule) Horizon() time.Duration {
	var h time.Duration
	for _, e := range s.Events {
		if end := e.At + e.Duration; end > h {
			h = end
		}
	}
	return h
}

func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return fmt.Sprintf("seed=%d [%s]", s.Seed, strings.Join(parts, "; "))
}

// GenProfile tunes Generate: how many events of each kind to script across
// the horizon and their magnitudes.
type GenProfile struct {
	Drops      int           // drop windows
	DropRate   float64       // loss probability per window (default 0.1)
	Latencies  int           // latency-spike windows
	MaxDelay   time.Duration // spike magnitude bound (default 50ms)
	Dips       int           // bandwidth-dip windows
	DipFloor   float64       // lowest dip bandwidth in bytes/sec (default 64 KiB/s)
	Resets     int           // instantaneous connection resets
	Partitions int           // partition windows
	Pauses     int           // pause windows
}

// DefaultGenProfile is a moderate chaos mix.
func DefaultGenProfile() GenProfile {
	return GenProfile{Drops: 2, Latencies: 2, Dips: 1, Resets: 1, Partitions: 1, Pauses: 1}
}

// Generate builds a reproducible random schedule: the same (seed, horizon,
// targets, profile) always yields the same events. Targets scope the
// events; an empty list scripts everything against the match-all target.
func Generate(seed uint64, horizon time.Duration, targets []string, prof GenProfile) Schedule {
	if len(targets) == 0 {
		targets = []string{""}
	}
	if prof.DropRate <= 0 {
		prof.DropRate = 0.1
	}
	if prof.MaxDelay <= 0 {
		prof.MaxDelay = 50 * time.Millisecond
	}
	if prof.DipFloor <= 0 {
		prof.DipFloor = 64 << 10
	}
	rng := newSplitmix(seed)
	pick := func() string { return targets[int(rng.next()%uint64(len(targets)))] }
	at := func() time.Duration { return time.Duration(rng.float64() * float64(horizon) * 0.8) }
	dur := func() time.Duration {
		return time.Duration((0.05 + 0.15*rng.float64()) * float64(horizon))
	}
	var evs []Event
	for i := 0; i < prof.Drops; i++ {
		evs = append(evs, Event{At: at(), Duration: dur(), Kind: Drop, Target: pick(), Rate: prof.DropRate})
	}
	for i := 0; i < prof.Latencies; i++ {
		d := time.Duration(rng.float64() * float64(prof.MaxDelay))
		evs = append(evs, Event{At: at(), Duration: dur(), Kind: Latency, Target: pick(), Delay: d, Jitter: d / 2})
	}
	for i := 0; i < prof.Dips; i++ {
		bw := prof.DipFloor * (1 + 3*rng.float64())
		evs = append(evs, Event{At: at(), Duration: dur(), Kind: Bandwidth, Target: pick(), Rate: bw})
	}
	for i := 0; i < prof.Resets; i++ {
		evs = append(evs, Event{At: at(), Kind: Reset, Target: pick()})
	}
	for i := 0; i < prof.Partitions; i++ {
		evs = append(evs, Event{At: at(), Duration: dur(), Kind: Partition, Target: pick()})
	}
	for i := 0; i < prof.Pauses; i++ {
		evs = append(evs, Event{At: at(), Duration: dur(), Kind: Pause, Target: pick()})
	}
	return NewSchedule(seed, evs...)
}

// Injected is one fault actually applied to a target: the reproducible
// fault log entry exposed via Injector.Log and Driver.Log.
type Injected struct {
	At     time.Duration
	Kind   Kind
	Target string
	Detail string
}

func (i Injected) String() string {
	return fmt.Sprintf("%v %s(%s) %s", i.At, i.Kind, i.Target, i.Detail)
}

// splitmix is the deterministic PRNG seeding every decision stream
// (splitmix64; the same generator netem uses for link loss).
type splitmix struct{ state uint64 }

func newSplitmix(seed uint64) *splitmix { return &splitmix{state: seed} }

func (r *splitmix) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitmix) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

// hash64 is FNV-1a, used to derive per-label decision streams from the
// schedule seed.
func hash64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
