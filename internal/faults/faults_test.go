package faults

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"tunable/internal/metrics"
)

// fakeClock is an injectable elapsed-time source for Injector tests: fault
// state becomes a pure function of the value set here.
type fakeClock struct {
	mu sync.Mutex
	t  time.Duration
}

func (f *fakeClock) now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) set(d time.Duration) {
	f.mu.Lock()
	f.t = d
	f.mu.Unlock()
}

func TestGenerateDeterministic(t *testing.T) {
	prof := DefaultGenProfile()
	targets := []string{"data:node-a", "data:node-b", "ctrl:"}
	a := Generate(42, 10*time.Second, targets, prof)
	b := Generate(42, 10*time.Second, targets, prof)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%s\n%s", a, b)
	}
	c := Generate(43, 10*time.Second, targets, prof)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical schedules: %s", c)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	if n := len(a.Events); n != prof.Drops+prof.Latencies+prof.Dips+prof.Resets+prof.Partitions+prof.Pauses {
		t.Fatalf("generated %d events, want %d", n, 8)
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		NewSchedule(1, Event{At: -time.Second, Kind: Drop, Rate: 0.1}),
		NewSchedule(1, Event{Kind: Drop, Rate: 1.5}),
		NewSchedule(1, Event{Kind: Bandwidth, Rate: 0}),
		NewSchedule(1, Event{Kind: Kind("meteor")}),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d validated but should not: %s", i, s)
		}
	}
	ok := NewSchedule(1,
		Event{At: time.Second, Duration: time.Second, Kind: Drop, Rate: 0.5},
		Event{Kind: Reset, Target: "ctrl:"},
	)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if ok.Events[0].Kind != Reset {
		t.Fatalf("NewSchedule did not sort by At: %s", ok)
	}
}

func TestScheduleHorizonAndMatching(t *testing.T) {
	s := NewSchedule(1,
		Event{At: time.Second, Duration: 2 * time.Second, Kind: Drop, Target: "node-b", Rate: 0.1},
		Event{At: 500 * time.Millisecond, Duration: time.Second, Kind: Pause},
	)
	if h := s.Horizon(); h != 3*time.Second {
		t.Fatalf("horizon %v, want 3s", h)
	}
	e := s.Events[1] // the node-b drop after sorting
	if !e.Matches("data:node-b") || e.Matches("data:node-a") {
		t.Fatalf("target matching wrong for %s", e)
	}
	if !s.Events[0].Matches("anything") {
		t.Fatal("empty target should match everything")
	}
	if e.ActiveAt(999*time.Millisecond) || !e.ActiveAt(time.Second) || e.ActiveAt(3*time.Second) {
		t.Fatalf("window arithmetic wrong for %s", e)
	}
}

// pipePair wires a faultConn over one end of a net.Pipe.
func pipePair(t *testing.T, in *Injector, label string) (wrapped net.Conn, peer net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return in.Conn(label, a), b
}

func TestInjectorDropBlackholesConn(t *testing.T) {
	clk := &fakeClock{}
	sched := NewSchedule(7, Event{Duration: time.Minute, Kind: Drop, Target: "data:", Rate: 1})
	reg := metrics.New()
	in, err := New(sched, WithClock(clk.now))
	if err != nil {
		t.Fatal(err)
	}
	in.EnableMetrics(reg)
	clk.set(time.Second) // inside the drop window

	conn, peer := pipePair(t, in, "data:node-a")
	go peer.Write([]byte("hello"))

	if err := conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err = conn.Read(make([]byte, 16))
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("read error %v, want *faults.Error", err)
	}
	if !fe.Timeout() {
		t.Fatalf("blackhole stall should be a timeout, got %+v", fe)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("fault error must satisfy net.Error with Timeout()=true: %v", err)
	}
	log := in.Log()
	if len(log) == 0 || log[0].Kind != Drop {
		t.Fatalf("fault log %v, want a drop entry", log)
	}
	// Writes into a black-holed conn are swallowed, not errors.
	if n, err := conn.Write([]byte("x")); n != 1 || err != nil {
		t.Fatalf("write into blackhole: n=%d err=%v", n, err)
	}
}

func TestInjectorLatencyDelaysRead(t *testing.T) {
	clk := &fakeClock{}
	sched := NewSchedule(7, Event{Duration: time.Minute, Kind: Latency, Delay: 30 * time.Millisecond})
	in, err := New(sched, WithClock(clk.now))
	if err != nil {
		t.Fatal(err)
	}
	clk.set(time.Second)

	conn, peer := pipePair(t, in, "data:node-a")
	go peer.Write([]byte("hi"))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("read took %v, want ≥ 30ms injected latency", took)
	}
}

func TestInjectorDialRefusedDuringPartition(t *testing.T) {
	clk := &fakeClock{}
	sched := NewSchedule(7, Event{Duration: time.Minute, Kind: Partition, Target: "ctrl:node-b"})
	in, err := New(sched, WithClock(clk.now))
	if err != nil {
		t.Fatal(err)
	}
	clk.set(time.Second)

	if !in.Partitioned("ctrl:node-b") {
		t.Fatal("ctrl:node-b should be partitioned")
	}
	if in.Partitioned("ctrl:node-a") {
		t.Fatal("partition leaked to an unmatched label")
	}
	_, err = in.Dial("ctrl:node-b", "tcp", "127.0.0.1:1", 50*time.Millisecond)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != Partition || !fe.Timeout() {
		t.Fatalf("partitioned dial returned %v, want partition timeout", err)
	}
	if log := in.Log(); len(log) != 1 || log[0].Kind != Partition {
		t.Fatalf("fault log %v, want one partition entry", log)
	}
}

func TestInjectorResetClosesConn(t *testing.T) {
	clk := &fakeClock{}
	sched := NewSchedule(7, Event{At: 10 * time.Millisecond, Kind: Reset, Target: "data:"})
	in, err := New(sched, WithClock(clk.now))
	if err != nil {
		t.Fatal(err)
	}
	conn, _ := pipePair(t, in, "data:node-a") // opened at elapsed 0
	clk.set(20 * time.Millisecond)            // reset instant has passed

	_, err = conn.Read(make([]byte, 4))
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != Reset {
		t.Fatalf("read after reset returned %v, want reset fault", err)
	}
	if fe.Timeout() {
		t.Fatal("a reset is a dead connection, not a timeout")
	}
	// The reset fires once; afterwards the conn behaves closed.
	if _, err := conn.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after reset returned %v, want net.ErrClosed", err)
	}
}

func TestInjectorPauseReleases(t *testing.T) {
	clk := &fakeClock{}
	sched := NewSchedule(7, Event{Duration: 50 * time.Millisecond, Kind: Pause})
	in, err := New(sched, WithClock(clk.now))
	if err != nil {
		t.Fatal(err)
	}
	clk.set(time.Millisecond) // inside the pause window
	conn, peer := pipePair(t, in, "data:node-a")
	go peer.Write([]byte("later"))
	// Release the pause shortly after the read begins stalling.
	go func() {
		time.Sleep(20 * time.Millisecond)
		clk.set(time.Second) // past the window
	}()
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, err := conn.Read(make([]byte, 16))
	if err != nil || n == 0 {
		t.Fatalf("read after pause release: n=%d err=%v, want delivery", n, err)
	}
}

func TestInjectorSameSeedSameFaultSequence(t *testing.T) {
	run := func() (reads int, log []Injected) {
		clk := &fakeClock{}
		sched := NewSchedule(99, Event{Duration: time.Minute, Kind: Drop, Target: "data:", Rate: 0.3})
		in, err := New(sched, WithClock(clk.now))
		if err != nil {
			t.Fatal(err)
		}
		clk.set(time.Second)
		conn, peer := pipePair(t, in, "data:node-a")
		go func() {
			for {
				if _, err := peer.Write([]byte("m")); err != nil {
					return
				}
			}
		}()
		for {
			if err := conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Read(make([]byte, 4)); err != nil {
				break // black-holed: the drop stream decided
			}
			reads++
			if reads > 10000 {
				t.Fatal("drop with rate 0.3 never hit")
			}
		}
		conn.Close()
		return reads, in.Log()
	}
	r1, l1 := run()
	r2, l2 := run()
	if r1 != r2 {
		t.Fatalf("same seed delivered %d then %d messages before the drop", r1, r2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("same seed produced different fault logs:\n%v\n%v", l1, l2)
	}
}

func TestInjectorInertBeforeStart(t *testing.T) {
	sched := NewSchedule(7, Event{Duration: time.Minute, Kind: Drop, Rate: 1})
	in, err := New(sched)
	if err != nil {
		t.Fatal(err)
	}
	// No Start, no injected clock: every window is closed.
	conn, peer := pipePair(t, in, "data:node-a")
	go peer.Write([]byte("clean"))
	n, err := conn.Read(make([]byte, 16))
	if err != nil || n != 5 {
		t.Fatalf("pre-start read: n=%d err=%v, want clean delivery", n, err)
	}
	if in.Partitioned("anything") {
		t.Fatal("nothing is partitioned before Start")
	}
}

func TestInjectorRejectsInvalidSchedule(t *testing.T) {
	if _, err := New(NewSchedule(1, Event{Kind: Drop, Rate: 2})); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}
