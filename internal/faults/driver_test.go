package faults

import (
	"reflect"
	"testing"
	"time"

	"tunable/internal/metrics"
	"tunable/internal/netem"
	"tunable/internal/vtime"
)

func TestDriverAppliesAndRevertsLinkFaults(t *testing.T) {
	sim := vtime.NewSim()
	link := netem.NewLink(sim, "client-server", 100_000, netem.WithLatency(time.Millisecond))
	sched := NewSchedule(5,
		Event{At: 10 * time.Millisecond, Duration: 20 * time.Millisecond, Kind: Bandwidth, Rate: 10_000},
		Event{At: 20 * time.Millisecond, Duration: 20 * time.Millisecond, Kind: Drop, Rate: 0.5},
		Event{At: 50 * time.Millisecond, Duration: 10 * time.Millisecond, Kind: Partition},
		Event{At: 70 * time.Millisecond, Duration: 10 * time.Millisecond, Kind: Latency, Delay: 5 * time.Millisecond},
	)
	d, err := NewDriver(sim, map[string]*netem.Link{"link:client-server": link}, sched)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	d.EnableMetrics(reg)
	d.Install()

	check := func(at time.Duration, fn func()) { sim.At(at, fn) }
	check(15*time.Millisecond, func() {
		if bw := link.Bandwidth(); bw != 10_000 {
			t.Errorf("t=15ms bandwidth %v, want dip to 10000", bw)
		}
	})
	check(25*time.Millisecond, func() {
		if bw, loss := link.Bandwidth(), link.Loss(); bw != 10_000 || loss != 0.5 {
			t.Errorf("t=25ms bw=%v loss=%v, want 10000 and 0.5 (overlap)", bw, loss)
		}
	})
	check(35*time.Millisecond, func() {
		if bw, loss := link.Bandwidth(), link.Loss(); bw != 100_000 || loss != 0.5 {
			t.Errorf("t=35ms bw=%v loss=%v, want dip reverted, drop still on", bw, loss)
		}
	})
	check(45*time.Millisecond, func() {
		if loss := link.Loss(); loss != 0 {
			t.Errorf("t=45ms loss %v, want fully reverted", loss)
		}
	})
	check(55*time.Millisecond, func() {
		if loss := link.Loss(); loss != 1 {
			t.Errorf("t=55ms loss %v, want 1 (partition)", loss)
		}
	})
	check(75*time.Millisecond, func() {
		if lat := link.Latency(); lat != 6*time.Millisecond {
			t.Errorf("t=75ms latency %v, want baseline+5ms", lat)
		}
	})
	check(85*time.Millisecond, func() {
		if bw, loss, lat := link.Bandwidth(), link.Loss(), link.Latency(); bw != 100_000 || loss != 0 || lat != time.Millisecond {
			t.Errorf("t=85ms bw=%v loss=%v lat=%v, want all baselines restored", bw, loss, lat)
		}
	})
	if err := sim.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n := len(d.Log()); n != 4 {
		t.Fatalf("fault log has %d entries, want 4: %v", n, d.Log())
	}
}

func TestDriverDeterministicAcrossRuns(t *testing.T) {
	sched := Generate(11, time.Second, []string{"link:a", "link:b"}, GenProfile{Drops: 2, Dips: 1, Partitions: 1, Latencies: 1})
	run := func() []Injected {
		sim := vtime.NewSim()
		links := map[string]*netem.Link{
			"link:a": netem.NewLink(sim, "a", 1e6),
			"link:b": netem.NewLink(sim, "b", 1e6),
		}
		d, err := NewDriver(sim, links, sched)
		if err != nil {
			t.Fatal(err)
		}
		d.Install()
		if err := sim.RunUntil(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return d.Log()
	}
	l1, l2 := run(), run()
	if len(l1) == 0 {
		t.Fatal("generated schedule injected nothing")
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("same schedule replayed differently:\n%v\n%v", l1, l2)
	}
}

func TestDriverSkipsKindsWithoutSimAnalogue(t *testing.T) {
	sim := vtime.NewSim()
	link := netem.NewLink(sim, "l", 1e6)
	sched := NewSchedule(1,
		Event{At: time.Millisecond, Kind: Reset},
		Event{At: time.Millisecond, Duration: time.Millisecond, Kind: Pause},
	)
	d, err := NewDriver(sim, map[string]*netem.Link{"link:l": link}, sched)
	if err != nil {
		t.Fatal(err)
	}
	d.Install()
	if err := sim.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n := len(d.Log()); n != 0 {
		t.Fatalf("Reset/Pause should be skipped on the sim plane, logged %v", d.Log())
	}
}
