package faults

import (
	"fmt"
	"net"
	"sync"
	"time"

	"tunable/internal/metrics"
)

// pollSlice is the granularity at which stalled connections re-check
// injector state and their deadlines.
const pollSlice = 2 * time.Millisecond

// Error is the error surfaced by injected faults on the real-TCP plane.
// It implements net.Error so the cluster retry layer classifies it exactly
// like a genuine network failure: stalls and partitions report
// Timeout()=true (the peer made no progress), resets report false (the
// connection died).
type Error struct {
	Kind    Kind
	Label   string
	IsStall bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s on %s", e.Kind, e.Label)
}

// Timeout reports whether the fault manifests as missed progress.
func (e *Error) Timeout() bool { return e.IsStall }

// Temporary reports true: retrying against a replacement peer can succeed.
func (e *Error) Temporary() bool { return true }

// Injector applies a Schedule to real net.Conn traffic on the wall clock.
// Construct with New, wire connections through Conn or Dial, then Start
// the clock. Fault state is a pure function of elapsed time and the
// schedule; per-message drop decisions come from per-connection splitmix
// streams seeded by (schedule seed, label, connection ordinal), so one
// seed always produces one fault sequence.
type Injector struct {
	sched Schedule
	now   func() time.Duration // elapsed time since Start; injectable for tests

	mu      sync.Mutex
	started bool
	epoch   time.Time
	connSeq map[string]uint64
	log     []Injected

	reg       *metrics.Registry
	mInjected map[Kind]*metrics.Counter
}

// InjectorOption customizes an Injector.
type InjectorOption func(*Injector)

// WithClock replaces the wall clock with an elapsed-time function (tests
// use this to make real-plane fault state deterministic).
func WithClock(fn func() time.Duration) InjectorOption {
	return func(in *Injector) { in.now = fn }
}

// New creates an injector for the schedule. The schedule must validate.
func New(sched Schedule, opts ...InjectorOption) (*Injector, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{sched: sched, connSeq: make(map[string]uint64)}
	for _, o := range opts {
		o(in)
	}
	return in, nil
}

// EnableMetrics instruments the injector: faults_injected_total, labelled
// by fault kind, counts every fault actually applied to a target.
func (in *Injector) EnableMetrics(reg *metrics.Registry) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.reg = reg
	in.mInjected = make(map[Kind]*metrics.Counter)
}

// Start fixes the schedule's epoch at the current instant. Events are
// offsets from this moment. Calling Start twice is an error.
func (in *Injector) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.started {
		panic("faults: injector started twice")
	}
	in.started = true
	in.epoch = time.Now()
}

// Started reports whether the schedule clock is running.
func (in *Injector) Started() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.started
}

// elapsed returns time since Start; before Start the schedule is inert
// (no event window has opened).
func (in *Injector) elapsed() time.Duration {
	if in.now != nil {
		return in.now()
	}
	in.mu.Lock()
	started, epoch := in.started, in.epoch
	in.mu.Unlock()
	if !started {
		return -1
	}
	return time.Since(epoch)
}

// Log returns the fault log: every fault applied so far, in order.
func (in *Injector) Log() []Injected {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Injected(nil), in.log...)
}

// Schedule returns the injector's schedule.
func (in *Injector) Schedule() Schedule { return in.sched }

// record appends one entry to the fault log and bumps the counter.
func (in *Injector) record(kind Kind, target, detail string, at time.Duration) {
	in.mu.Lock()
	in.log = append(in.log, Injected{At: at, Kind: kind, Target: target, Detail: detail})
	ctr := in.counterLocked(kind)
	in.mu.Unlock()
	ctr.Inc() // nil-safe when metrics are disabled
}

func (in *Injector) counterLocked(kind Kind) *metrics.Counter {
	if in.reg == nil {
		return nil
	}
	if c, ok := in.mInjected[kind]; ok {
		return c
	}
	c := in.reg.Counter("faults_injected_total",
		"Faults actually applied to a target, by kind.", metrics.L("kind", string(kind)))
	in.mInjected[kind] = c
	return c
}

// condition is the aggregate fault state for one label at one instant.
type condition struct {
	dropRate float64
	delay    time.Duration
	jitter   time.Duration
	bw       float64 // 0 = uncapped
	stalled  bool    // partition or pause active
	stallEnd time.Duration
	partit   bool // the stall is a partition (dials fail too)
}

// conditionAt folds every active matching event into one condition.
func (in *Injector) conditionAt(label string, t time.Duration) condition {
	var c condition
	if t < 0 {
		return c
	}
	for _, e := range in.sched.Events {
		if !e.Matches(label) || !e.ActiveAt(t) {
			continue
		}
		switch e.Kind {
		case Drop:
			if e.Rate > c.dropRate {
				c.dropRate = e.Rate
			}
		case Latency:
			c.delay += e.Delay
			c.jitter += e.Jitter
		case Bandwidth:
			if c.bw == 0 || e.Rate < c.bw {
				c.bw = e.Rate
			}
		case Partition, Pause:
			c.stalled = true
			c.partit = c.partit || e.Kind == Partition
			if end := e.At + e.Duration; end > c.stallEnd {
				c.stallEnd = end
			}
		}
	}
	return c
}

// resetDue returns the index of an unfired Reset event for this label
// whose instant has passed since the connection opened, or -1.
func (in *Injector) resetDue(label string, openedAt, t time.Duration, fired map[int]bool) int {
	for i, e := range in.sched.Events {
		if e.Kind != Reset || fired[i] || !e.Matches(label) {
			continue
		}
		if e.At > openedAt && e.At <= t {
			return i
		}
	}
	return -1
}

// Partitioned reports whether a partition currently covers the label.
func (in *Injector) Partitioned(label string) bool {
	c := in.conditionAt(label, in.elapsed())
	return c.stalled && c.partit
}

// Conn wraps a connection so the schedule's faults apply to its traffic.
// The label scopes which events hit it (see Event.Target).
func (in *Injector) Conn(label string, c net.Conn) net.Conn {
	in.mu.Lock()
	seq := in.connSeq[label]
	in.connSeq[label]++
	in.mu.Unlock()
	return &faultConn{
		Conn:     c,
		in:       in,
		label:    label,
		rng:      newSplitmix(in.sched.Seed ^ hash64(label) ^ (seq * 0x9E3779B97F4A7C15)),
		openedAt: in.elapsed(),
		resets:   make(map[int]bool),
	}
}

// Dial dials through the injector: while a partition covers the label the
// dial fails with a timeout-flavored *Error, and successful dials return a
// fault-wrapped connection.
func (in *Injector) Dial(label, network, addr string, timeout time.Duration) (net.Conn, error) {
	if in.Partitioned(label) {
		in.record(Partition, label, "dial refused", in.elapsed())
		return nil, &Error{Kind: Partition, Label: label, IsStall: true}
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return in.Conn(label, conn), nil
}

// faultConn is one fault-injected connection. It intercepts deadlines so
// injected stalls still honor the progress-deadline discipline the avis
// frame layer arms: a stalled read returns a timeout net.Error when the
// caller's deadline expires, exactly like a dead peer.
type faultConn struct {
	net.Conn
	in       *Injector
	label    string
	openedAt time.Duration

	mu         sync.Mutex
	rng        *splitmix
	blackholed bool
	closed     bool
	resets     map[int]bool
	readDL     time.Time
	writeDL    time.Time
}

// SetDeadline records and forwards both deadlines.
func (c *faultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline records and forwards the read deadline.
func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetWriteDeadline records and forwards the write deadline.
func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// Close closes the underlying connection and releases stalled I/O.
func (c *faultConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}

// checkReset fires a due Reset event at most once per connection: the
// underlying conn is closed and the fault is logged.
func (c *faultConn) checkReset(now time.Duration) error {
	c.mu.Lock()
	idx := c.in.resetDue(c.label, c.openedAt, now, c.resets)
	if idx < 0 {
		c.mu.Unlock()
		return nil
	}
	c.resets[idx] = true
	c.closed = true
	c.mu.Unlock()
	c.in.record(Reset, c.label, "connection reset", now)
	_ = c.Conn.Close()
	return &Error{Kind: Reset, Label: c.label}
}

// stall blocks while the label is stalled (partition/pause) or the conn is
// black-holed, returning a timeout error if the deadline passes first.
// isRead selects which recorded deadline applies.
func (c *faultConn) stall(kind Kind, isRead bool) error {
	for {
		c.mu.Lock()
		closed := c.closed
		dl := c.writeDL
		if isRead {
			dl = c.readDL
		}
		c.mu.Unlock()
		if closed {
			return net.ErrClosed
		}
		if !dl.IsZero() && !time.Now().Before(dl) {
			return &Error{Kind: kind, Label: c.label, IsStall: true}
		}
		now := c.in.elapsed()
		cond := c.in.conditionAt(c.label, now)
		c.mu.Lock()
		bh := c.blackholed
		c.mu.Unlock()
		if !bh && !cond.stalled {
			return nil
		}
		time.Sleep(pollSlice)
	}
}

// Read applies resets, stalls, latency, and drop decisions, in that order.
func (c *faultConn) Read(p []byte) (int, error) {
	for {
		now := c.in.elapsed()
		if err := c.checkReset(now); err != nil {
			return 0, err
		}
		cond := c.in.conditionAt(c.label, now)
		c.mu.Lock()
		bh := c.blackholed
		c.mu.Unlock()
		if bh || cond.stalled {
			kind := Drop
			if cond.stalled {
				kind = Partition
				if !cond.partit {
					kind = Pause
				}
			}
			if err := c.stall(kind, true); err != nil {
				return 0, err
			}
			continue // stall cleared (pause window ended): retry
		}
		if cond.delay > 0 || cond.jitter > 0 {
			c.mu.Lock()
			j := time.Duration(c.rng.float64() * float64(cond.jitter))
			c.mu.Unlock()
			time.Sleep(cond.delay + j)
		}
		n, err := c.Conn.Read(p)
		if n > 0 && cond.dropRate > 0 {
			c.mu.Lock()
			hit := c.rng.float64() < cond.dropRate
			if hit {
				c.blackholed = true
			}
			c.mu.Unlock()
			if hit {
				// The message is lost and, this being a byte stream, nothing
				// after it can be delivered either: black-hole the connection
				// and let the caller's progress deadline kill it.
				c.in.record(Drop, c.label, fmt.Sprintf("dropped %dB, conn black-holed", n), now)
				continue
			}
		}
		if cond.bw > 0 && n > 0 {
			time.Sleep(time.Duration(float64(n) / cond.bw * float64(time.Second)))
		}
		return n, err
	}
}

// Write swallows traffic into stalled or black-holed connections (the
// local TCP buffer accepts it; the network eats it) and otherwise shapes
// and forwards it.
func (c *faultConn) Write(p []byte) (int, error) {
	now := c.in.elapsed()
	if err := c.checkReset(now); err != nil {
		return 0, err
	}
	cond := c.in.conditionAt(c.label, now)
	c.mu.Lock()
	bh := c.blackholed
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	if bh || cond.stalled {
		return len(p), nil
	}
	if cond.bw > 0 && len(p) > 0 {
		time.Sleep(time.Duration(float64(len(p)) / cond.bw * float64(time.Second)))
	}
	return c.Conn.Write(p)
}
