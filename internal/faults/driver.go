package faults

import (
	"fmt"
	"sort"
	"time"

	"tunable/internal/metrics"
	"tunable/internal/netem"
	"tunable/internal/vtime"
)

// Driver applies a Schedule to simulated netem.Links in virtual time.
// Because the vtime kernel is deterministic, the same schedule against the
// same simulation replays the exact same fault sequence — virtual
// timestamps included.
//
// Supported kinds: Drop (link loss rate), Latency (added one-way delay),
// Bandwidth (link rate dip), Partition (loss 1.0 — every frame serialized
// then dropped). Reset and Pause have no simulated-link analogue and are
// skipped.
type Driver struct {
	sim   *vtime.Sim
	links map[string]*netem.Link
	sched Schedule
	log   []Injected

	// baselines captured at Install time; refresh folds active windows on
	// top of these at every event boundary.
	baseBW   map[string]float64
	baseLat  map[string]time.Duration
	baseLoss map[string]float64

	reg       *metrics.Registry
	mInjected map[Kind]*metrics.Counter
}

// NewDriver prepares a driver over the given labelled links. The schedule
// must validate. Call Install to arm the events on the simulation clock
// (offsets are relative to the simulation's current time).
func NewDriver(sim *vtime.Sim, links map[string]*netem.Link, sched Schedule) (*Driver, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return &Driver{
		sim:      sim,
		links:    links,
		sched:    sched,
		baseBW:   make(map[string]float64),
		baseLat:  make(map[string]time.Duration),
		baseLoss: make(map[string]float64),
	}, nil
}

// EnableMetrics instruments the driver with the same faults_injected_total
// family the Injector exports.
func (d *Driver) EnableMetrics(reg *metrics.Registry) {
	d.reg = reg
	d.mInjected = make(map[Kind]*metrics.Counter)
}

// Log returns the fault log so far (virtual timestamps).
func (d *Driver) Log() []Injected { return append([]Injected(nil), d.log...) }

func (d *Driver) record(kind Kind, target, detail string) {
	d.log = append(d.log, Injected{At: d.sim.Now(), Kind: kind, Target: target, Detail: detail})
	if d.reg != nil {
		c, ok := d.mInjected[kind]
		if !ok {
			c = d.reg.Counter("faults_injected_total",
				"Faults actually applied to a target, by kind.", metrics.L("kind", string(kind)))
			d.mInjected[kind] = c
		}
		c.Inc()
	}
}

// Install captures baselines and schedules a state refresh at every event
// boundary on the simulation clock. Fault state is recomputed from the
// whole schedule at each boundary, so overlapping windows of one kind
// compose correctly (worst value wins while both are open).
func (d *Driver) Install() {
	labels := make([]string, 0, len(d.links))
	for label, l := range d.links {
		d.baseBW[label] = l.Bandwidth()
		d.baseLat[label] = l.Latency()
		d.baseLoss[label] = l.Loss()
		labels = append(labels, label)
	}
	sort.Strings(labels) // deterministic arming order
	for _, ev := range d.sched.Events {
		ev := ev
		switch ev.Kind {
		case Drop, Latency, Bandwidth, Partition:
		default:
			continue // no simulated-link analogue
		}
		for _, label := range labels {
			if !ev.Matches(label) {
				continue
			}
			label := label
			d.sim.After(ev.At, func() { d.refresh(label, &ev) })
			d.sim.After(ev.At+ev.Duration, func() { d.refresh(label, nil) })
		}
	}
}

// refresh folds every window active at the current virtual instant onto
// the label's baseline and drives the link knobs to match. opening, when
// non-nil, is the event whose window just opened (it is logged).
func (d *Driver) refresh(label string, opening *Event) {
	l := d.links[label]
	now := d.sim.Now()
	loss := d.baseLoss[label]
	lat := d.baseLat[label]
	bw := d.baseBW[label]
	for _, e := range d.sched.Events {
		if !e.Matches(label) || !e.ActiveAt(now) {
			continue
		}
		switch e.Kind {
		case Drop:
			if e.Rate > loss {
				loss = e.Rate
			}
		case Partition:
			loss = 1
		case Latency:
			lat += e.Delay
		case Bandwidth:
			if e.Rate < bw {
				bw = e.Rate
			}
		}
	}
	_ = l.SetLoss(loss)
	l.SetLatency(lat)
	_ = l.SetBandwidth(bw)
	if opening != nil {
		switch opening.Kind {
		case Drop:
			d.record(Drop, label, fmt.Sprintf("loss=%.2f", opening.Rate))
		case Partition:
			d.record(Partition, label, "loss=1.00")
		case Latency:
			d.record(Latency, label, fmt.Sprintf("+%v", opening.Delay))
		case Bandwidth:
			d.record(Bandwidth, label, fmt.Sprintf("%.0fB/s", opening.Rate))
		}
	}
}
