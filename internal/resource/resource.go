// Package resource defines the resource vocabulary shared by the sandbox,
// the performance database, the monitoring agent, and the scheduler:
// resource kinds, capacity/availability vectors, requests, and sweepable
// grids over the multidimensional resource space (Sections 5 and 6 of the
// paper).
package resource

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind identifies a resource dimension.
type Kind string

// The resource dimensions the paper's testbed controls (Section 5.1).
const (
	CPU       Kind = "cpu"       // fractional share of a host's processor, 0..1
	Bandwidth Kind = "bandwidth" // network bandwidth, bytes/second
	Memory    Kind = "memory"    // physical memory, bytes
	Latency   Kind = "latency"   // one-way network latency, seconds
)

// AllKinds lists the defined dimensions in canonical order.
var AllKinds = []Kind{CPU, Bandwidth, Memory, Latency}

// Vector is a point in resource space: a value for each dimension that
// matters to the component using it. Missing dimensions mean "don't care".
type Vector map[Kind]float64

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for k, x := range v {
		c[k] = x
	}
	return c
}

// Get returns the value of k, or def if the dimension is absent.
func (v Vector) Get(k Kind, def float64) float64 {
	if x, ok := v[k]; ok {
		return x
	}
	return def
}

// With returns a copy of v with dimension k set to x.
func (v Vector) With(k Kind, x float64) Vector {
	c := v.Clone()
	c[k] = x
	return c
}

// Kinds returns the dimensions present in v, sorted canonically.
func (v Vector) Kinds() []Kind {
	ks := make([]Kind, 0, len(v))
	for k := range v {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Equal reports whether v and w contain the same dimensions with values
// within a relative tolerance of 1e-9.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for k, x := range v {
		y, ok := w[k]
		if !ok {
			return false
		}
		if !approxEqual(x, y) {
			return false
		}
	}
	return true
}

func approxEqual(x, y float64) bool {
	if x == y {
		return true
	}
	d := math.Abs(x - y)
	m := math.Max(math.Abs(x), math.Abs(y))
	return d <= 1e-9*m
}

// Dominates reports whether v offers at least as much of every dimension in
// w (more bandwidth/CPU/memory, less latency). Dimensions absent from w are
// ignored; a dimension present in w but absent from v fails the test.
func (v Vector) Dominates(w Vector) bool {
	for k, need := range w {
		have, ok := v[k]
		if !ok {
			return false
		}
		if k == Latency {
			if have > need+1e-12 {
				return false
			}
		} else if have < need-1e-12 {
			return false
		}
	}
	return true
}

// Distance returns a normalized Euclidean distance between v and w over the
// union of their dimensions, using scale to normalize each dimension (zero
// or absent scales default to the larger magnitude of the two values).
func (v Vector) Distance(w Vector, scale Vector) float64 {
	dims := map[Kind]bool{}
	for k := range v {
		dims[k] = true
	}
	for k := range w {
		dims[k] = true
	}
	var sum float64
	for k := range dims {
		a, b := v[k], w[k]
		s := scale.Get(k, math.Max(math.Abs(a), math.Abs(b)))
		if s == 0 {
			continue
		}
		d := (a - b) / s
		sum += d * d
	}
	return math.Sqrt(sum)
}

// String renders the vector deterministically, e.g. "bandwidth=512000 cpu=0.4".
func (v Vector) String() string {
	parts := make([]string, 0, len(v))
	for _, k := range v.Kinds() {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v[k]))
	}
	return strings.Join(parts, " ")
}

// Key renders a canonical map key for the vector, quantizing values to
// avoid float jitter splitting identical sample points.
func (v Vector) Key() string {
	parts := make([]string, 0, len(v))
	for _, k := range v.Kinds() {
		parts = append(parts, fmt.Sprintf("%s=%.6g", k, v[k]))
	}
	return strings.Join(parts, ",")
}

// Request is a desired allocation of resources on a named host or link,
// used by the scheduler's admission control (Section 6.2).
type Request struct {
	Component string // host or link name from the execution environment
	Wants     Vector
}

// Capacity describes the maximum resources a system component offers, as
// reported by the system-wide monitor (Section 6.1).
type Capacity struct {
	Component string
	Limits    Vector
}

// Fits reports whether the request fits within the capacity.
func (c Capacity) Fits(r Request) bool {
	if r.Component != c.Component {
		return false
	}
	return c.Limits.Dominates(r.Wants)
}
