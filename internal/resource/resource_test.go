package resource

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorGetWithClone(t *testing.T) {
	v := Vector{CPU: 0.5}
	if v.Get(CPU, 0) != 0.5 {
		t.Fatal("Get present")
	}
	if v.Get(Bandwidth, 123) != 123 {
		t.Fatal("Get default")
	}
	w := v.With(Bandwidth, 1e6)
	if _, ok := v[Bandwidth]; ok {
		t.Fatal("With mutated the original")
	}
	if w[Bandwidth] != 1e6 || w[CPU] != 0.5 {
		t.Fatal("With result wrong")
	}
	c := v.Clone()
	c[CPU] = 0.9
	if v[CPU] != 0.5 {
		t.Fatal("Clone aliases original")
	}
}

func TestVectorEqual(t *testing.T) {
	a := Vector{CPU: 0.4, Bandwidth: 50000}
	b := Vector{CPU: 0.4, Bandwidth: 50000}
	if !a.Equal(b) {
		t.Fatal("identical vectors unequal")
	}
	if a.Equal(Vector{CPU: 0.4}) {
		t.Fatal("different dimension counts compare equal")
	}
	if a.Equal(Vector{CPU: 0.4, Memory: 50000}) {
		t.Fatal("different dimensions compare equal")
	}
	if !a.Equal(Vector{CPU: 0.4 * (1 + 1e-12), Bandwidth: 50000}) {
		t.Fatal("tolerance not applied")
	}
}

func TestDominates(t *testing.T) {
	have := Vector{CPU: 0.8, Bandwidth: 1e6, Latency: 0.001}
	if !have.Dominates(Vector{CPU: 0.5, Bandwidth: 5e5}) {
		t.Fatal("should dominate smaller needs")
	}
	if have.Dominates(Vector{CPU: 0.9}) {
		t.Fatal("should not dominate larger CPU need")
	}
	// Latency inverts: lower is better.
	if !have.Dominates(Vector{Latency: 0.01}) {
		t.Fatal("lower latency should dominate higher latency bound")
	}
	if have.Dominates(Vector{Latency: 0.0001}) {
		t.Fatal("higher latency should not dominate tighter bound")
	}
	if have.Dominates(Vector{Memory: 1}) {
		t.Fatal("missing dimension should fail domination")
	}
}

func TestDistance(t *testing.T) {
	a := Vector{CPU: 0.4}
	b := Vector{CPU: 0.8}
	d := a.Distance(b, Vector{CPU: 1})
	if math.Abs(d-0.4) > 1e-12 {
		t.Fatalf("distance %v", d)
	}
	if a.Distance(a, Vector{CPU: 1}) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestStringDeterministic(t *testing.T) {
	v := Vector{Bandwidth: 512000, CPU: 0.4}
	if got := v.String(); got != "bandwidth=512000 cpu=0.4" {
		t.Fatalf("String() = %q", got)
	}
	if got := v.Key(); got != "bandwidth=512000,cpu=0.4" {
		t.Fatalf("Key() = %q", got)
	}
}

func TestLinspace(t *testing.T) {
	pts := Linspace(0.1, 1.0, 10)
	if len(pts) != 10 {
		t.Fatalf("len %d", len(pts))
	}
	if math.Abs(pts[0]-0.1) > 1e-12 || math.Abs(pts[9]-1.0) > 1e-12 {
		t.Fatalf("endpoints %v %v", pts[0], pts[9])
	}
	if math.Abs(pts[1]-0.2) > 1e-12 {
		t.Fatalf("step %v", pts[1])
	}
	if got := Linspace(5, 9, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("n=1 case %v", got)
	}
	if Linspace(0, 1, 0) != nil {
		t.Fatal("n=0 case")
	}
}

func TestLogspace(t *testing.T) {
	pts := Logspace(10, 1000, 3)
	want := []float64{10, 100, 1000}
	for i := range want {
		if math.Abs(pts[i]-want[i])/want[i] > 1e-9 {
			t.Fatalf("pts %v", pts)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nonpositive bound")
		}
	}()
	Logspace(0, 1, 3)
}

func TestGridPointsOrderAndSize(t *testing.T) {
	g := NewGrid(
		Axis{Kind: CPU, Points: []float64{0.5, 0.1, 0.9}},
		Axis{Kind: Bandwidth, Points: []float64{100, 200}},
	)
	if g.Size() != 6 {
		t.Fatalf("size %d", g.Size())
	}
	pts := g.Points()
	if len(pts) != 6 {
		t.Fatalf("points %d", len(pts))
	}
	// Axis points sorted ascending, last axis fastest.
	if pts[0][CPU] != 0.1 || pts[0][Bandwidth] != 100 {
		t.Fatalf("first point %v", pts[0])
	}
	if pts[1][CPU] != 0.1 || pts[1][Bandwidth] != 200 {
		t.Fatalf("second point %v", pts[1])
	}
	if pts[5][CPU] != 0.9 || pts[5][Bandwidth] != 200 {
		t.Fatalf("last point %v", pts[5])
	}
}

func TestGridDeduplicates(t *testing.T) {
	g := NewGrid(Axis{Kind: CPU, Points: []float64{0.5, 0.5, 0.5}})
	if g.Size() != 1 {
		t.Fatalf("size %d after dedup", g.Size())
	}
}

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(Axis{Kind: CPU, Points: []float64{0.2, 0.4, 0.8}})
	lo, hi, err := g.Neighbors(Vector{CPU: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if lo[CPU] != 0.4 || hi[CPU] != 0.8 {
		t.Fatalf("bracket %v %v", lo, hi)
	}
	// On a lattice point.
	lo, hi, _ = g.Neighbors(Vector{CPU: 0.4})
	if lo[CPU] != 0.4 || hi[CPU] != 0.4 {
		t.Fatalf("exact bracket %v %v", lo, hi)
	}
	// Clamped below and above.
	lo, hi, _ = g.Neighbors(Vector{CPU: 0.05})
	if lo[CPU] != 0.2 || hi[CPU] != 0.2 {
		t.Fatalf("low clamp %v %v", lo, hi)
	}
	lo, hi, _ = g.Neighbors(Vector{CPU: 2})
	if lo[CPU] != 0.8 || hi[CPU] != 0.8 {
		t.Fatalf("high clamp %v %v", lo, hi)
	}
	if _, _, err := g.Neighbors(Vector{}); err == nil {
		t.Fatal("missing dimension should error")
	}
}

func TestGridContains(t *testing.T) {
	g := NewGrid(Axis{Kind: CPU, Points: []float64{0.2, 0.8}})
	if !g.Contains(Vector{CPU: 0.5}) {
		t.Fatal("interior point")
	}
	if g.Contains(Vector{CPU: 0.9}) {
		t.Fatal("exterior point")
	}
	if g.Contains(Vector{Bandwidth: 1}) {
		t.Fatal("missing dimension")
	}
}

func TestCapacityFits(t *testing.T) {
	c := Capacity{Component: "client", Limits: Vector{CPU: 1.0, Memory: 128 << 20}}
	if !c.Fits(Request{Component: "client", Wants: Vector{CPU: 0.4}}) {
		t.Fatal("fitting request rejected")
	}
	if c.Fits(Request{Component: "server", Wants: Vector{CPU: 0.4}}) {
		t.Fatal("wrong component accepted")
	}
	if c.Fits(Request{Component: "client", Wants: Vector{CPU: 1.5}}) {
		t.Fatal("oversized request accepted")
	}
}

// Property: domination is reflexive and antisymmetric-ish over positive kinds.
func TestDominatesProperties(t *testing.T) {
	f := func(a, b uint8) bool {
		x := Vector{CPU: float64(a) / 255, Bandwidth: float64(b) * 1000}
		return x.Dominates(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(a1, a2, b1, b2 uint8) bool {
		x := Vector{CPU: float64(a1), Bandwidth: float64(b1)}
		y := Vector{CPU: float64(a2), Bandwidth: float64(b2)}
		if x.Dominates(y) && y.Dominates(x) {
			// mutual domination implies equality on these monotone kinds
			return x[CPU] == y[CPU] && x[Bandwidth] == y[Bandwidth]
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every grid point is contained in the grid and brackets to itself.
func TestGridPointsBracketThemselves(t *testing.T) {
	g := NewGrid(
		Axis{Kind: CPU, Points: Linspace(0.1, 1, 7)},
		Axis{Kind: Bandwidth, Points: Logspace(1e4, 1e6, 5)},
	)
	for _, p := range g.Points() {
		if !g.Contains(p) {
			t.Fatalf("point %v not contained", p)
		}
		lo, hi, err := g.Neighbors(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range p.Kinds() {
			if !approxEqual(lo[k], p[k]) || !approxEqual(hi[k], p[k]) {
				t.Fatalf("point %v brackets to %v..%v on %s", p, lo, hi, k)
			}
		}
	}
}
