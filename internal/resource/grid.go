package resource

import (
	"fmt"
	"math"
	"sort"
)

// Axis is one sweepable dimension of a resource grid: the sample points the
// profiling driver will visit along a single resource kind (Section 5).
type Axis struct {
	Kind   Kind
	Points []float64
}

// Linspace returns n evenly spaced points in [lo, hi] inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	pts := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range pts {
		pts[i] = lo + float64(i)*step
	}
	return pts
}

// Logspace returns n logarithmically spaced points in [lo, hi] inclusive.
// lo and hi must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("resource: Logspace requires positive bounds")
	}
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	pts := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	step := (lhi - llo) / float64(n-1)
	for i := range pts {
		pts[i] = math.Exp(llo + float64(i)*step)
	}
	return pts
}

// Grid is a cartesian product of axes: the lattice of resource conditions
// at which each configuration is sampled in the virtual testbed.
type Grid struct {
	Axes []Axis
}

// NewGrid builds a grid from axes, sorting each axis's points ascending and
// removing duplicates.
func NewGrid(axes ...Axis) *Grid {
	g := &Grid{Axes: make([]Axis, len(axes))}
	for i, ax := range axes {
		pts := append([]float64(nil), ax.Points...)
		sort.Float64s(pts)
		uniq := pts[:0]
		for _, p := range pts {
			if len(uniq) == 0 || !approxEqual(uniq[len(uniq)-1], p) {
				uniq = append(uniq, p)
			}
		}
		g.Axes[i] = Axis{Kind: ax.Kind, Points: uniq}
	}
	return g
}

// Size returns the number of lattice points.
func (g *Grid) Size() int {
	n := 1
	for _, ax := range g.Axes {
		n *= len(ax.Points)
	}
	if len(g.Axes) == 0 {
		return 0
	}
	return n
}

// Points enumerates every lattice point in deterministic order (last axis
// varies fastest).
func (g *Grid) Points() []Vector {
	if len(g.Axes) == 0 {
		return nil
	}
	out := make([]Vector, 0, g.Size())
	idx := make([]int, len(g.Axes))
	for {
		v := make(Vector, len(g.Axes))
		for i, ax := range g.Axes {
			v[ax.Kind] = ax.Points[idx[i]]
		}
		out = append(out, v)
		// odometer increment, last axis fastest
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g.Axes[i].Points) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}

// Neighbors returns, for each dimension of q present in the grid, the two
// lattice values bracketing q (equal if q sits on a lattice point or
// outside the range). Used for multilinear interpolation.
func (g *Grid) Neighbors(q Vector) (lo, hi Vector, err error) {
	lo, hi = Vector{}, Vector{}
	for _, ax := range g.Axes {
		x, ok := q[ax.Kind]
		if !ok {
			return nil, nil, fmt.Errorf("resource: query missing dimension %s", ax.Kind)
		}
		l, h := bracket(ax.Points, x)
		lo[ax.Kind], hi[ax.Kind] = l, h
	}
	return lo, hi, nil
}

// bracket returns the nearest lattice values below and above x (clamped to
// the ends of the axis).
func bracket(pts []float64, x float64) (lo, hi float64) {
	if len(pts) == 0 {
		return x, x
	}
	i := sort.SearchFloat64s(pts, x)
	switch {
	case i == 0:
		return pts[0], pts[0]
	case i == len(pts):
		return pts[len(pts)-1], pts[len(pts)-1]
	case approxEqual(pts[i], x):
		return pts[i], pts[i]
	default:
		return pts[i-1], pts[i]
	}
}

// Contains reports whether q lies within the grid's bounding box on every
// grid dimension.
func (g *Grid) Contains(q Vector) bool {
	for _, ax := range g.Axes {
		x, ok := q[ax.Kind]
		if !ok {
			return false
		}
		if len(ax.Points) == 0 {
			return false
		}
		if x < ax.Points[0]-1e-12 || x > ax.Points[len(ax.Points)-1]+1e-12 {
			return false
		}
	}
	return true
}
