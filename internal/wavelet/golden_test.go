package wavelet

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tunable/internal/imagery"
)

var updateGolden = flag.Bool("update", false, "rewrite golden testdata files")

// goldenChunks builds a fixed set of chunks from a deterministic synthetic
// image, covering the full-level, mid-level, and incremental-refinement
// paths of the chunk codec.
func goldenChunks(t *testing.T) []struct {
	name string
	ch   *Chunk
} {
	t.Helper()
	im := imagery.Generate(64, 7)
	pyr, err := Decompose(im, 3)
	if err != nil {
		t.Fatal(err)
	}
	extract := func(l, x, y, r, prevR int) *Chunk {
		ch, err := pyr.ExtractRegion(l, x, y, r, prevR)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	return []struct {
		name string
		ch   *Chunk
	}{
		{"full", extract(3, 32, 32, 32, 0)},
		{"mid", extract(2, 32, 32, 16, 0)},
		{"increment", extract(3, 32, 32, 24, 8)},
		{"offcentre", extract(3, 10, 50, 12, 0)},
		{"coarse", extract(0, 32, 32, 8, 0)},
	}
}

// TestGoldenChunkBytes pins the exact Chunk.Encode wire bytes: the kernel
// rewrite must keep the serialized format bit-identical. Run with -update
// to regenerate after an intentional format change.
func TestGoldenChunkBytes(t *testing.T) {
	for _, g := range goldenChunks(t) {
		path := filepath.Join("testdata", "golden_chunk_"+g.name+".hex")
		got := hex.EncodeToString(g.ch.Encode())
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		wantHex, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run go test -run Golden -update): %v", g.name, err)
		}
		want := string(bytes.TrimSpace(wantHex))
		if got != want {
			t.Errorf("%s: chunk bytes differ from golden (wire format changed)", g.name)
		}
		// Old-format bytes must still decode and apply.
		wantBytes, err := hex.DecodeString(want)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeChunk(wantBytes)
		if err != nil {
			t.Fatalf("%s: golden bytes no longer decode: %v", g.name, err)
		}
		canvas, err := NewCanvas(64, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := canvas.Apply(dec); err != nil {
			t.Fatalf("%s: golden chunk no longer applies: %v", g.name, err)
		}
	}
}
