package wavelet

import (
	"encoding/binary"
	"fmt"
	"math"

	"tunable/internal/imagery"
)

// Pyramid is the server-side store: an image held as Mallat wavelet
// coefficients, from which quantized coefficient chunks for arbitrary
// foveal regions and resolution levels can be extracted.
type Pyramid struct {
	Side   int // full-resolution side S
	Levels int // decomposition depth L
	coeff  []float64
}

// Decompose builds a pyramid from an image.
func Decompose(im *imagery.Image, levels int) (*Pyramid, error) {
	coeff, err := Forward(im, levels)
	if err != nil {
		return nil, err
	}
	return &Pyramid{Side: im.Side, Levels: levels, coeff: coeff}, nil
}

// CoarseSide returns the side of the coarsest approximation.
func (p *Pyramid) CoarseSide() int { return p.Side >> p.Levels }

// LevelSide returns the image side at resolution level l.
func (p *Pyramid) LevelSide(l int) int { return p.CoarseSide() << l }

// band identifies one coefficient band: the approximation (k=0) or the
// H/V/D details at decomposition step k (1..L).
type band struct {
	k   int // 0 = approx, else detail level
	dir int // 0 H (top-right), 1 V (bottom-left), 2 D (bottom-right); unused for approx
}

// bandsForLevel lists the bands needed to reconstruct resolution level l:
// the approximation plus detail triples for k = 1..l.
func bandsForLevel(l int) []band {
	bs := []band{{k: 0}}
	for k := 1; k <= l; k++ {
		for d := 0; d < 3; d++ {
			bs = append(bs, band{k: k, dir: d})
		}
	}
	return bs
}

// bandGeometry returns the band's side length and its (row, col) origin in
// the Mallat layout.
func (p *Pyramid) bandGeometry(b band) (side, row0, col0 int) {
	c := p.CoarseSide()
	if b.k == 0 {
		return c, 0, 0
	}
	s := c << (b.k - 1)
	switch b.dir {
	case 0: // H: top-right
		return s, 0, s
	case 1: // V: bottom-left
		return s, s, 0
	default: // D: bottom-right
		return s, s, s
	}
}

// cellsInDiff enumerates, in deterministic row-major order, the cells of a
// side-s band grid inside the square of radius rNew centred at (cx, cy)
// but outside the square of radius rOld (same centre). Radii and centre
// are in band coordinates; the square is clipped to the grid.
func cellsInDiff(s, cx, cy, rNew, rOld int, visit func(x, y int)) {
	y0, y1 := clamp(cy-rNew, 0, s), clamp(cy+rNew, 0, s)
	x0, x1 := clamp(cx-rNew, 0, s), clamp(cx+rNew, 0, s)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			if rOld > 0 && x >= cx-rOld && x < cx+rOld && y >= cy-rOld && y < cy+rOld {
				continue
			}
			visit(x, y)
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// scaleToBand converts a full-resolution coordinate or radius to band
// coordinates (band side s, full side S), rounding radii up so coverage is
// monotone in r.
func scaleToBand(v, s, S int) int { return (v*s + S - 1) / S }

// Chunk is the unit of progressive transmission: the quantized
// coefficients refining one foveal increment at one resolution level. The
// receiver reconstructs cell positions from the header, so only values are
// carried.
type Chunk struct {
	Level  int
	X, Y   int // fovea centre, full-resolution coordinates
	R      int // new fovea radius
	PrevR  int // previously transmitted radius (0 = first increment)
	scales []float32
	values [][]int8 // per band, in bandsForLevel order
}

// ExtractRegion builds the chunk refining the square of radius r centred
// at (x, y) — full-resolution coordinates — at resolution level l,
// excluding the already-sent square of radius prevR (same centre; pass 0
// after a fovea move).
func (p *Pyramid) ExtractRegion(l, x, y, r, prevR int) (*Chunk, error) {
	if l < 0 || l > p.Levels {
		return nil, fmt.Errorf("wavelet: level %d outside [0,%d]", l, p.Levels)
	}
	if r <= prevR {
		return nil, fmt.Errorf("wavelet: radius %d must exceed previous %d", r, prevR)
	}
	ch := &Chunk{Level: l, X: x, Y: y, R: r, PrevR: prevR}
	for _, b := range bandsForLevel(l) {
		side, row0, col0 := p.bandGeometry(b)
		cx, cy := x*side/p.Side, y*side/p.Side
		rNew := scaleToBand(r, side, p.Side)
		rOld := scaleToBand(prevR, side, p.Side)
		var vals []float64
		cellsInDiff(side, cx, cy, rNew, rOld, func(bx, by int) {
			vals = append(vals, p.coeff[(row0+by)*p.Side+(col0+bx)])
		})
		// Quantize to int8 with a per-band scale.
		var maxAbs float64
		for _, v := range vals {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := float32(maxAbs / 127)
		if scale == 0 {
			scale = 1
		}
		q := make([]int8, len(vals))
		for i, v := range vals {
			q[i] = int8(math.Round(v / float64(scale)))
		}
		ch.scales = append(ch.scales, scale)
		ch.values = append(ch.values, q)
	}
	return ch, nil
}

// Encode serializes the chunk for transmission.
func (ch *Chunk) Encode() []byte {
	n := 1 + 1 + 4*4
	for i := range ch.values {
		n += 4 + 4 + len(ch.values[i])
	}
	out := make([]byte, 0, n)
	out = append(out, 'W', byte(ch.Level))
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(ch.X))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ch.Y))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(ch.R))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(ch.PrevR))
	out = append(out, hdr[:]...)
	for i := range ch.values {
		var b [8]byte
		binary.LittleEndian.PutUint32(b[0:], math.Float32bits(ch.scales[i]))
		binary.LittleEndian.PutUint32(b[4:], uint32(len(ch.values[i])))
		out = append(out, b[:]...)
		for _, v := range ch.values[i] {
			out = append(out, byte(v))
		}
	}
	return out
}

// DecodeChunk parses a serialized chunk.
func DecodeChunk(data []byte) (*Chunk, error) {
	if len(data) < 18 || data[0] != 'W' {
		return nil, fmt.Errorf("wavelet: malformed chunk header")
	}
	ch := &Chunk{Level: int(data[1])}
	ch.X = int(int32(binary.LittleEndian.Uint32(data[2:])))
	ch.Y = int(int32(binary.LittleEndian.Uint32(data[6:])))
	ch.R = int(int32(binary.LittleEndian.Uint32(data[10:])))
	ch.PrevR = int(int32(binary.LittleEndian.Uint32(data[14:])))
	off := 18
	for _, wantBand := range bandsForLevel(ch.Level) {
		_ = wantBand
		if off+8 > len(data) {
			return nil, fmt.Errorf("wavelet: truncated chunk band header")
		}
		scale := math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		cnt := int(binary.LittleEndian.Uint32(data[off+4:]))
		off += 8
		if off+cnt > len(data) {
			return nil, fmt.Errorf("wavelet: truncated chunk band data")
		}
		vals := make([]int8, cnt)
		for i := 0; i < cnt; i++ {
			vals[i] = int8(data[off+i])
		}
		off += cnt
		ch.scales = append(ch.scales, scale)
		ch.values = append(ch.values, vals)
	}
	if off != len(data) {
		return nil, fmt.Errorf("wavelet: %d trailing bytes in chunk", len(data)-off)
	}
	return ch, nil
}

// Size returns the encoded size in bytes.
func (ch *Chunk) Size() int {
	n := 18
	for _, v := range ch.values {
		n += 8 + len(v)
	}
	return n
}

// Canvas is the client-side accumulator: received chunks are dequantized
// into a coefficient array mirroring the server's pyramid, from which the
// display image at any covered level can be reconstructed.
type Canvas struct {
	Side   int
	Levels int
	coeff  []float64
}

// NewCanvas creates an empty canvas matching a pyramid's geometry.
func NewCanvas(side, levels int) (*Canvas, error) {
	if err := checkDims(side, levels); err != nil {
		return nil, err
	}
	return &Canvas{Side: side, Levels: levels, coeff: make([]float64, side*side)}, nil
}

// Apply dequantizes a chunk into the canvas.
func (c *Canvas) Apply(ch *Chunk) error {
	if ch.Level > c.Levels {
		return fmt.Errorf("wavelet: chunk level %d exceeds canvas levels %d", ch.Level, c.Levels)
	}
	p := Pyramid{Side: c.Side, Levels: c.Levels}
	for i, b := range bandsForLevel(ch.Level) {
		if i >= len(ch.values) {
			return fmt.Errorf("wavelet: chunk missing band %d", i)
		}
		side, row0, col0 := p.bandGeometry(b)
		cx, cy := ch.X*side/c.Side, ch.Y*side/c.Side
		rNew := scaleToBand(ch.R, side, c.Side)
		rOld := scaleToBand(ch.PrevR, side, c.Side)
		vals := ch.values[i]
		scale := float64(ch.scales[i])
		j := 0
		var applyErr error
		cellsInDiff(side, cx, cy, rNew, rOld, func(bx, by int) {
			if j >= len(vals) {
				applyErr = fmt.Errorf("wavelet: band %d value underrun", i)
				return
			}
			c.coeff[(row0+by)*c.Side+(col0+bx)] = float64(vals[j]) * scale
			j++
		})
		if applyErr != nil {
			return applyErr
		}
		if j != len(vals) {
			return fmt.Errorf("wavelet: band %d has %d extra values", i, len(vals)-j)
		}
	}
	return nil
}

// Reconstruct renders the canvas at resolution level l.
func (c *Canvas) Reconstruct(l int) (*imagery.Image, error) {
	return InverseLevel(c.coeff, c.Side, c.Levels, l)
}
