package wavelet

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"tunable/internal/imagery"
)

// Pyramid is the server-side store: an image held as Mallat wavelet
// coefficients, from which quantized coefficient chunks for arbitrary
// foveal regions and resolution levels can be extracted.
type Pyramid struct {
	Side   int // full-resolution side S
	Levels int // decomposition depth L
	coeff  []float64
}

// Decompose builds a pyramid from an image.
func Decompose(im *imagery.Image, levels int) (*Pyramid, error) {
	coeff, err := Forward(im, levels)
	if err != nil {
		return nil, err
	}
	return &Pyramid{Side: im.Side, Levels: levels, coeff: coeff}, nil
}

// CoarseSide returns the side of the coarsest approximation.
func (p *Pyramid) CoarseSide() int { return p.Side >> p.Levels }

// LevelSide returns the image side at resolution level l.
func (p *Pyramid) LevelSide(l int) int { return p.CoarseSide() << l }

// band identifies one coefficient band: the approximation (k=0) or the
// H/V/D details at decomposition step k (1..L).
type band struct {
	k   int // 0 = approx, else detail level
	dir int // 0 H (top-right), 1 V (bottom-left), 2 D (bottom-right); unused for approx
}

// buildBands constructs the band list for resolution level l: the
// approximation plus detail triples for k = 1..l.
func buildBands(l int) []band {
	bs := make([]band, 0, 1+3*l)
	bs = append(bs, band{k: 0})
	for k := 1; k <= l; k++ {
		for d := 0; d < 3; d++ {
			bs = append(bs, band{k: k, dir: d})
		}
	}
	return bs
}

// bandTable caches the band lists for the levels any realistic pyramid
// uses, so the hot extract/apply/decode paths never allocate them.
var bandTable [33][]band

func init() {
	for l := range bandTable {
		bandTable[l] = buildBands(l)
	}
}

// bandsForLevel lists the bands needed to reconstruct resolution level l.
func bandsForLevel(l int) []band {
	if l >= 0 && l < len(bandTable) {
		return bandTable[l]
	}
	return buildBands(l)
}

// bandGeometry returns the band's side length and its (row, col) origin in
// the Mallat layout.
func (p *Pyramid) bandGeometry(b band) (side, row0, col0 int) {
	c := p.CoarseSide()
	if b.k == 0 {
		return c, 0, 0
	}
	s := c << (b.k - 1)
	switch b.dir {
	case 0: // H: top-right
		return s, 0, s
	case 1: // V: bottom-left
		return s, s, 0
	default: // D: bottom-right
		return s, s, s
	}
}

// diffRect describes the cells of a side-s band grid inside the square of
// radius rNew centred at (cx, cy) but outside the square of radius rOld
// (same centre), clipped to the grid. Rows y0..y1 are enumerated top to
// bottom; a row intersecting the inner square splits into a left run
// [x0, lx1) and a right run [rx0, x1), preserving the row-major cell order
// of the original closure-based enumeration.
type diffRect struct {
	y0, y1, x0, x1 int // outer clip
	iy0, iy1       int // rows where the inner square applies (raw, unclamped test)
	lx1, rx0       int // per-row runs when inside [iy0, iy1)
	hasInner       bool
}

func makeDiffRect(s, cx, cy, rNew, rOld int) diffRect {
	d := diffRect{
		y0: clamp(cy-rNew, 0, s), y1: clamp(cy+rNew, 0, s),
		x0: clamp(cx-rNew, 0, s), x1: clamp(cx+rNew, 0, s),
	}
	if rOld > 0 {
		d.hasInner = true
		d.iy0, d.iy1 = cy-rOld, cy+rOld
		d.lx1 = cx - rOld
		if d.lx1 > d.x1 {
			d.lx1 = d.x1
		}
		if d.lx1 < d.x0 {
			d.lx1 = d.x0
		}
		d.rx0 = cx + rOld
		if d.rx0 < d.x0 {
			d.rx0 = d.x0
		}
		if d.rx0 > d.x1 {
			d.rx0 = d.x1
		}
	}
	return d
}

// count returns the number of cells, computed from the rectangle
// difference instead of enumeration.
func (d diffRect) count() int {
	n := (d.x1 - d.x0) * (d.y1 - d.y0)
	if d.hasInner {
		ih := min(d.iy1, d.y1) - max(d.iy0, d.y0)
		iw := d.rx0 - d.lx1
		if ih > 0 && iw > 0 {
			n -= ih * iw
		}
	}
	return n
}

// rowRuns returns the x-runs [a0,a1) and [b0,b1) of row y.
func (d diffRect) rowRuns(y int) (a0, a1, b0, b1 int) {
	if d.hasInner && y >= d.iy0 && y < d.iy1 {
		return d.x0, d.lx1, d.rx0, d.x1
	}
	return d.x0, d.x1, 0, 0
}

// cellsInDiff enumerates, in deterministic row-major order, the cells of a
// side-s band grid inside the square of radius rNew centred at (cx, cy)
// but outside the square of radius rOld (same centre). Radii and centre
// are in band coordinates; the square is clipped to the grid. Retained for
// tests and reference — the hot paths use diffRect runs directly.
func cellsInDiff(s, cx, cy, rNew, rOld int, visit func(x, y int)) {
	d := makeDiffRect(s, cx, cy, rNew, rOld)
	for y := d.y0; y < d.y1; y++ {
		a0, a1, b0, b1 := d.rowRuns(y)
		for x := a0; x < a1; x++ {
			visit(x, y)
		}
		for x := b0; x < b1; x++ {
			visit(x, y)
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// scaleToBand converts a full-resolution coordinate or radius to band
// coordinates (band side s, full side S), rounding radii up so coverage is
// monotone in r.
func scaleToBand(v, s, S int) int { return (v*s + S - 1) / S }

// Chunk is the unit of progressive transmission: the quantized
// coefficients refining one foveal increment at one resolution level. The
// receiver reconstructs cell positions from the header, so only values are
// carried. Band values are stored as raw bytes (two's-complement int8) so
// serialization is a bulk copy; all bands share one backing buffer.
//
// Chunks are pooled: ExtractRegion and DecodeChunk draw from a shared
// sync.Pool, and callers on the steady path should Release a chunk once
// its contents are consumed. Releasing is optional — an unreleased chunk
// is simply garbage-collected.
type Chunk struct {
	Level  int
	X, Y   int // fovea centre, full-resolution coordinates
	R      int // new fovea radius
	PrevR  int // previously transmitted radius (0 = first increment)
	scales []float32
	values [][]byte // per band, in bandsForLevel order; aliases buf
	buf    []byte   // shared backing storage of all band values
}

var chunkPool = sync.Pool{New: func() any { return &Chunk{} }}

// getChunk returns a cleared chunk, reusing pooled storage.
func getChunk() *Chunk {
	ch := chunkPool.Get().(*Chunk)
	ch.scales = ch.scales[:0]
	ch.values = ch.values[:0]
	ch.buf = ch.buf[:0]
	return ch
}

// Release returns the chunk's storage to the shared pool. The chunk (and
// any values obtained from it) must not be used afterwards.
func (ch *Chunk) Release() {
	if ch == nil {
		return
	}
	chunkPool.Put(ch)
}

// growBuf extends ch.buf by n bytes and returns the new segment.
func (ch *Chunk) growBuf(n int) []byte {
	l := len(ch.buf)
	if cap(ch.buf)-l < n {
		nb := make([]byte, l, 2*(l+n))
		copy(nb, ch.buf)
		// Re-point existing band slices at the new backing array.
		off := 0
		for i := range ch.values {
			w := len(ch.values[i])
			ch.values[i] = nb[off : off+w]
			off += w
		}
		ch.buf = nb
	}
	ch.buf = ch.buf[:l+n]
	return ch.buf[l : l+n]
}

// ExtractRegion builds the chunk refining the square of radius r centred
// at (x, y) — full-resolution coordinates — at resolution level l,
// excluding the already-sent square of radius prevR (same centre; pass 0
// after a fovea move). The returned chunk comes from the shared pool;
// Release it when done to keep the steady path allocation-free.
func (p *Pyramid) ExtractRegion(l, x, y, r, prevR int) (*Chunk, error) {
	if l < 0 || l > p.Levels {
		return nil, fmt.Errorf("wavelet: level %d outside [0,%d]", l, p.Levels)
	}
	if r <= prevR {
		return nil, fmt.Errorf("wavelet: radius %d must exceed previous %d", r, prevR)
	}
	ch := getChunk()
	ch.Level, ch.X, ch.Y, ch.R, ch.PrevR = l, x, y, r, prevR
	for _, b := range bandsForLevel(l) {
		side, row0, col0 := p.bandGeometry(b)
		cx, cy := x*side/p.Side, y*side/p.Side
		rNew := scaleToBand(r, side, p.Side)
		rOld := scaleToBand(prevR, side, p.Side)
		d := makeDiffRect(side, cx, cy, rNew, rOld)
		cnt := d.count()
		seg := ch.growBuf(cnt)
		// Pass 1: max |v| over the region, reading coefficients in place.
		var maxAbs float64
		for yy := d.y0; yy < d.y1; yy++ {
			rowBase := (row0+yy)*p.Side + col0
			a0, a1, b0, b1 := d.rowRuns(yy)
			for _, v := range p.coeff[rowBase+a0 : rowBase+a1] {
				if v < 0 {
					v = -v
				}
				if v > maxAbs {
					maxAbs = v
				}
			}
			for _, v := range p.coeff[rowBase+b0 : rowBase+b1] {
				if v < 0 {
					v = -v
				}
				if v > maxAbs {
					maxAbs = v
				}
			}
		}
		scale := float32(maxAbs / 127)
		if scale == 0 {
			scale = 1
		}
		// Pass 2: quantize straight into the chunk's backing buffer.
		s64 := float64(scale)
		j := 0
		for yy := d.y0; yy < d.y1; yy++ {
			rowBase := (row0+yy)*p.Side + col0
			a0, a1, b0, b1 := d.rowRuns(yy)
			for _, v := range p.coeff[rowBase+a0 : rowBase+a1] {
				seg[j] = byte(int8(math.Round(v / s64)))
				j++
			}
			for _, v := range p.coeff[rowBase+b0 : rowBase+b1] {
				seg[j] = byte(int8(math.Round(v / s64)))
				j++
			}
		}
		ch.scales = append(ch.scales, scale)
		ch.values = append(ch.values, seg)
	}
	return ch, nil
}

// Encode serializes the chunk for transmission.
func (ch *Chunk) Encode() []byte {
	return ch.AppendEncode(make([]byte, 0, ch.Size()))
}

// AppendEncode appends the serialized chunk to dst and returns the
// extended slice, allocating only if dst lacks capacity.
func (ch *Chunk) AppendEncode(dst []byte) []byte {
	dst = append(dst, 'W', byte(ch.Level))
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(ch.X))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ch.Y))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(ch.R))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(ch.PrevR))
	dst = append(dst, hdr[:]...)
	for i := range ch.values {
		var b [8]byte
		binary.LittleEndian.PutUint32(b[0:], math.Float32bits(ch.scales[i]))
		binary.LittleEndian.PutUint32(b[4:], uint32(len(ch.values[i])))
		dst = append(dst, b[:]...)
		dst = append(dst, ch.values[i]...)
	}
	return dst
}

// DecodeChunk parses a serialized chunk. The returned chunk comes from the
// shared pool; Release it when done to keep the steady path
// allocation-free.
func DecodeChunk(data []byte) (*Chunk, error) {
	if len(data) < 18 || data[0] != 'W' {
		return nil, fmt.Errorf("wavelet: malformed chunk header")
	}
	ch := getChunk()
	ch.Level = int(data[1])
	ch.X = int(int32(binary.LittleEndian.Uint32(data[2:])))
	ch.Y = int(int32(binary.LittleEndian.Uint32(data[6:])))
	ch.R = int(int32(binary.LittleEndian.Uint32(data[10:])))
	ch.PrevR = int(int32(binary.LittleEndian.Uint32(data[14:])))
	off := 18
	for range bandsForLevel(ch.Level) {
		if off+8 > len(data) {
			ch.Release()
			return nil, fmt.Errorf("wavelet: truncated chunk band header")
		}
		scale := math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		cnt := int(binary.LittleEndian.Uint32(data[off+4:]))
		off += 8
		if cnt < 0 || off+cnt > len(data) || off+cnt < off {
			ch.Release()
			return nil, fmt.Errorf("wavelet: truncated chunk band data")
		}
		vals := ch.growBuf(cnt)
		copy(vals, data[off:off+cnt])
		off += cnt
		ch.scales = append(ch.scales, scale)
		ch.values = append(ch.values, vals)
	}
	if off != len(data) {
		ch.Release()
		return nil, fmt.Errorf("wavelet: %d trailing bytes in chunk", len(data)-off)
	}
	return ch, nil
}

// Size returns the encoded size in bytes.
func (ch *Chunk) Size() int {
	n := 18
	for _, v := range ch.values {
		n += 8 + len(v)
	}
	return n
}

// Canvas is the client-side accumulator: received chunks are dequantized
// into a coefficient array mirroring the server's pyramid, from which the
// display image at any covered level can be reconstructed.
type Canvas struct {
	Side   int
	Levels int
	coeff  []float64
}

// NewCanvas creates an empty canvas matching a pyramid's geometry.
func NewCanvas(side, levels int) (*Canvas, error) {
	if err := checkDims(side, levels); err != nil {
		return nil, err
	}
	return &Canvas{Side: side, Levels: levels, coeff: make([]float64, side*side)}, nil
}

// Apply dequantizes a chunk into the canvas.
func (c *Canvas) Apply(ch *Chunk) error {
	if ch.Level > c.Levels {
		return fmt.Errorf("wavelet: chunk level %d exceeds canvas levels %d", ch.Level, c.Levels)
	}
	p := Pyramid{Side: c.Side, Levels: c.Levels}
	for i, b := range bandsForLevel(ch.Level) {
		if i >= len(ch.values) {
			return fmt.Errorf("wavelet: chunk missing band %d", i)
		}
		side, row0, col0 := p.bandGeometry(b)
		cx, cy := ch.X*side/c.Side, ch.Y*side/c.Side
		rNew := scaleToBand(ch.R, side, c.Side)
		rOld := scaleToBand(ch.PrevR, side, c.Side)
		vals := ch.values[i]
		scale := float64(ch.scales[i])
		d := makeDiffRect(side, cx, cy, rNew, rOld)
		cnt := d.count()
		if cnt > len(vals) {
			return fmt.Errorf("wavelet: band %d value underrun", i)
		}
		if cnt < len(vals) {
			return fmt.Errorf("wavelet: band %d has %d extra values", i, len(vals)-cnt)
		}
		j := 0
		for yy := d.y0; yy < d.y1; yy++ {
			rowBase := (row0+yy)*c.Side + col0
			a0, a1, b0, b1 := d.rowRuns(yy)
			row := c.coeff[rowBase+a0 : rowBase+a1]
			for k := range row {
				row[k] = float64(int8(vals[j])) * scale
				j++
			}
			row = c.coeff[rowBase+b0 : rowBase+b1]
			for k := range row {
				row[k] = float64(int8(vals[j])) * scale
				j++
			}
		}
	}
	return nil
}

// Reconstruct renders the canvas at resolution level l.
func (c *Canvas) Reconstruct(l int) (*imagery.Image, error) {
	return InverseLevel(c.coeff, c.Side, c.Levels, l)
}
