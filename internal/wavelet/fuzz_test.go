package wavelet

import (
	"bytes"
	"testing"

	"tunable/internal/imagery"
)

// FuzzDecodeChunk feeds arbitrary bytes to the chunk decoder. Malformed
// input must be rejected without panicking or over-allocating, and any
// input the decoder accepts must re-encode to exactly the same bytes (the
// wire format has no redundancy, so decode∘encode is the identity on
// valid streams).
func FuzzDecodeChunk(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{'W'})
	f.Add([]byte{'W', 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	// Real encodings from a small pyramid seed the interesting paths.
	pyr, err := Decompose(imagery.Generate(64, 11), 3)
	if err != nil {
		f.Fatal(err)
	}
	for _, rc := range [][5]int{{3, 32, 32, 16, 0}, {2, 32, 32, 16, 8}, {0, 32, 32, 8, 0}} {
		ch, err := pyr.ExtractRegion(rc[0], rc[1], rc[2], rc[3], rc[4])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(ch.Encode())
		ch.Release()
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := DecodeChunk(data)
		if err != nil {
			return
		}
		re := ch.AppendEncode(make([]byte, 0, ch.Size()))
		ch.Release()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted chunk re-encodes to %d bytes, input was %d", len(re), len(data))
		}
	})
}
