package wavelet

import (
	"math"
	"testing"

	"tunable/internal/imagery"
)

func TestForwardInverseRoundTrip(t *testing.T) {
	im := imagery.Generate(128, 1)
	coeff, err := Forward(im, 3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := InverseLevel(coeff, 128, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := imagery.PSNR(im, back)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 100 { // lossless up to float rounding
		t.Fatalf("round-trip PSNR %.1f dB", psnr)
	}
}

func TestInverseLowerLevelMatchesBoxDownsample(t *testing.T) {
	im := imagery.Generate(128, 2)
	coeff, _ := Forward(im, 3)
	// Haar average cascade equals 2×2 box averaging, so the level-2
	// reconstruction must match Downsample(1) exactly.
	lvl2, err := InverseLevel(coeff, 128, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := im.Downsample(1)
	psnr, _ := imagery.PSNR(lvl2, ref)
	if psnr < 100 {
		t.Fatalf("level-2 vs box-downsample PSNR %.1f dB", psnr)
	}
	if lvl2.Side != 64 {
		t.Fatalf("level-2 side %d", lvl2.Side)
	}
}

func TestForwardValidation(t *testing.T) {
	im := imagery.New(100) // not divisible by 2^3
	if _, err := Forward(im, 3); err == nil {
		t.Fatal("bad dimensions accepted")
	}
	if _, err := Forward(imagery.New(64), 0); err == nil {
		t.Fatal("zero levels accepted")
	}
	coeff := make([]float64, 64*64)
	if _, err := InverseLevel(coeff, 64, 3, 4); err == nil {
		t.Fatal("out-of-range level accepted")
	}
}

func TestPyramidGeometry(t *testing.T) {
	im := imagery.Generate(256, 3)
	p, err := Decompose(im, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.CoarseSide() != 16 {
		t.Fatalf("coarse side %d", p.CoarseSide())
	}
	if p.LevelSide(4) != 256 || p.LevelSide(2) != 64 {
		t.Fatalf("level sides %d %d", p.LevelSide(4), p.LevelSide(2))
	}
}

func TestFullImageChunkSizeMatchesPixelCount(t *testing.T) {
	side := 128
	im := imagery.Generate(side, 4)
	p, _ := Decompose(im, 3)
	// Fetch the whole image at full level in one chunk: coefficient count
	// must equal side².
	ch, err := p.ExtractRegion(3, side/2, side/2, side/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range ch.values {
		total += len(v)
	}
	if total != side*side {
		t.Fatalf("full chunk carries %d coefficients, want %d", total, side*side)
	}
}

func TestProgressiveTransmissionReconstructs(t *testing.T) {
	side := 128
	im := imagery.Generate(side, 5)
	p, _ := Decompose(im, 3)
	canvas, err := NewCanvas(side, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Fetch in four increments of growing radius, as the client loop does.
	cx, cy := side/2, side/2
	prev := 0
	for _, r := range []int{16, 32, 48, 64} {
		ch, err := p.ExtractRegion(3, cx, cy, r, prev)
		if err != nil {
			t.Fatal(err)
		}
		// Serialize / deserialize as the wire would.
		dec, err := DecodeChunk(ch.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if err := canvas.Apply(dec); err != nil {
			t.Fatal(err)
		}
		prev = r
	}
	got, err := canvas.Reconstruct(3)
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := imagery.PSNR(im, got)
	// Quantization-limited but must be a faithful image.
	if psnr < 30 {
		t.Fatalf("progressive reconstruction PSNR %.1f dB", psnr)
	}
}

func TestIncrementsDoNotOverlap(t *testing.T) {
	side := 64
	im := imagery.Generate(side, 6)
	p, _ := Decompose(im, 2)
	ch1, _ := p.ExtractRegion(2, 32, 32, 16, 0)
	ch2, _ := p.ExtractRegion(2, 32, 32, 32, 16)
	full, _ := p.ExtractRegion(2, 32, 32, 32, 0)
	n1, n2, nf := 0, 0, 0
	for _, v := range ch1.values {
		n1 += len(v)
	}
	for _, v := range ch2.values {
		n2 += len(v)
	}
	for _, v := range full.values {
		nf += len(v)
	}
	if n1+n2 != nf {
		t.Fatalf("increments %d + %d != full %d", n1, n2, nf)
	}
}

func TestChunkEncodeDecodeRoundTrip(t *testing.T) {
	side := 64
	im := imagery.Generate(side, 7)
	p, _ := Decompose(im, 2)
	ch, _ := p.ExtractRegion(1, 20, 24, 10, 4)
	enc := ch.Encode()
	if len(enc) != ch.Size() {
		t.Fatalf("Size %d, encoded %d", ch.Size(), len(enc))
	}
	dec, err := DecodeChunk(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Level != ch.Level || dec.X != ch.X || dec.Y != ch.Y || dec.R != ch.R || dec.PrevR != ch.PrevR {
		t.Fatalf("header mismatch %+v vs %+v", dec, ch)
	}
	for i := range ch.values {
		if len(dec.values[i]) != len(ch.values[i]) {
			t.Fatalf("band %d count", i)
		}
		for j := range ch.values[i] {
			if dec.values[i][j] != ch.values[i][j] {
				t.Fatalf("band %d value %d", i, j)
			}
		}
	}
}

func TestDecodeChunkRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{'W'},
		{'X', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for _, c := range cases {
		if _, err := DecodeChunk(c); err == nil {
			t.Fatalf("garbage %v accepted", c)
		}
	}
	// Truncated band data.
	im := imagery.Generate(64, 8)
	p, _ := Decompose(im, 2)
	ch, _ := p.ExtractRegion(2, 32, 32, 16, 0)
	enc := ch.Encode()
	if _, err := DecodeChunk(enc[:len(enc)-5]); err == nil {
		t.Fatal("truncated chunk accepted")
	}
	// Trailing garbage.
	if _, err := DecodeChunk(append(enc, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestExtractRegionValidation(t *testing.T) {
	im := imagery.Generate(64, 9)
	p, _ := Decompose(im, 2)
	if _, err := p.ExtractRegion(3, 32, 32, 16, 0); err == nil {
		t.Fatal("level beyond pyramid accepted")
	}
	if _, err := p.ExtractRegion(2, 32, 32, 8, 8); err == nil {
		t.Fatal("non-growing radius accepted")
	}
}

func TestOffCenterFoveaClipped(t *testing.T) {
	side := 64
	im := imagery.Generate(side, 10)
	p, _ := Decompose(im, 2)
	canvas, _ := NewCanvas(side, 2)
	// Fovea in the corner: regions clip to the image without error.
	ch, err := p.ExtractRegion(2, 4, 4, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := canvas.Apply(ch); err != nil {
		t.Fatal(err)
	}
	got, err := canvas.Reconstruct(2)
	if err != nil {
		t.Fatal(err)
	}
	// The covered corner must resemble the original there.
	var se, n float64
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			d := got.At(x, y) - im.At(x, y)
			se += d * d
			n++
		}
	}
	rmse := math.Sqrt(se / n)
	if rmse > 20 {
		t.Fatalf("corner RMSE %.1f", rmse)
	}
}

func TestCanvasApplyValidation(t *testing.T) {
	canvas, _ := NewCanvas(64, 2)
	im := imagery.Generate(64, 11)
	p, _ := Decompose(im, 3) // deeper pyramid than canvas
	ch, _ := p.ExtractRegion(3, 32, 32, 16, 0)
	if err := canvas.Apply(ch); err == nil {
		t.Fatal("chunk with excess level accepted")
	}
	if _, err := NewCanvas(100, 3); err == nil {
		t.Fatal("bad canvas dims accepted")
	}
}
