// Package wavelet implements the 2-D Haar wavelet machinery the active
// visualization application stores its images in (Section 2.1 of the
// paper): a multi-level Mallat decomposition, a multi-resolution pyramid
// supporting per-region extraction of quantized coefficients (the unit of
// progressive foveal transmission), and the client-side canvas that
// accumulates received coefficients and reconstructs the image at any
// resolution level.
package wavelet

import (
	"fmt"

	"tunable/internal/imagery"
)

// analyzeStep performs one level of 2-D Haar analysis in place on the
// top-left square of side n within a row-major array of stride, writing
// averages into the first half and details into the second half of each
// row/column.
func analyzeStep(data []float64, stride, n int, tmp []float64) {
	half := n / 2
	// Rows.
	for y := 0; y < n; y++ {
		row := data[y*stride:]
		for i := 0; i < half; i++ {
			a, b := row[2*i], row[2*i+1]
			tmp[i] = (a + b) / 2
			tmp[half+i] = (a - b) / 2
		}
		copy(row[:n], tmp[:n])
	}
	// Columns.
	for x := 0; x < n; x++ {
		for i := 0; i < half; i++ {
			a, b := data[(2*i)*stride+x], data[(2*i+1)*stride+x]
			tmp[i] = (a + b) / 2
			tmp[half+i] = (a - b) / 2
		}
		for i := 0; i < n; i++ {
			data[i*stride+x] = tmp[i]
		}
	}
}

// synthesizeStep inverts analyzeStep.
func synthesizeStep(data []float64, stride, n int, tmp []float64) {
	half := n / 2
	// Columns.
	for x := 0; x < n; x++ {
		for i := 0; i < half; i++ {
			a, d := data[i*stride+x], data[(half+i)*stride+x]
			tmp[2*i] = a + d
			tmp[2*i+1] = a - d
		}
		for i := 0; i < n; i++ {
			data[i*stride+x] = tmp[i]
		}
	}
	// Rows.
	for y := 0; y < n; y++ {
		row := data[y*stride:]
		for i := 0; i < half; i++ {
			a, d := row[i], row[half+i]
			tmp[2*i] = a + d
			tmp[2*i+1] = a - d
		}
		copy(row[:n], tmp[:n])
	}
}

// Forward computes an L-level Mallat decomposition of a side-S image
// (S must be divisible by 2^L). The result layout: the top-left
// (S>>L)-square holds the coarsest approximation; for k = 1..L the detail
// bands H/V/D of side (S>>L)<<(k-1) sit in the standard Mallat positions
// within the top-left square of side (S>>L)<<k.
func Forward(im *imagery.Image, levels int) ([]float64, error) {
	if err := checkDims(im.Side, levels); err != nil {
		return nil, err
	}
	coeff := make([]float64, len(im.Pix))
	copy(coeff, im.Pix)
	tmp := make([]float64, im.Side)
	for n := im.Side; n > im.Side>>levels; n /= 2 {
		analyzeStep(coeff, im.Side, n, tmp)
	}
	return coeff, nil
}

// InverseLevel reconstructs the approximation image at resolution level l
// (side (S>>L)<<l) from Mallat coefficients with full side S and L levels.
func InverseLevel(coeff []float64, side, levels, l int) (*imagery.Image, error) {
	if err := checkDims(side, levels); err != nil {
		return nil, err
	}
	if l < 0 || l > levels {
		return nil, fmt.Errorf("wavelet: level %d outside [0,%d]", l, levels)
	}
	coarse := side >> levels
	target := coarse << l
	out := imagery.New(target)
	// Copy the top-left target-square of coefficients, then run l
	// synthesis steps.
	for y := 0; y < target; y++ {
		copy(out.Pix[y*target:(y+1)*target], coeff[y*side:y*side+target])
	}
	tmp := make([]float64, target)
	for n := coarse * 2; n <= target; n *= 2 {
		synthesizeStep(out.Pix, target, n, tmp)
	}
	return out, nil
}

func checkDims(side, levels int) error {
	if side <= 0 || levels <= 0 {
		return fmt.Errorf("wavelet: invalid side %d / levels %d", side, levels)
	}
	if side%(1<<levels) != 0 {
		return fmt.Errorf("wavelet: side %d not divisible by 2^%d", side, levels)
	}
	return nil
}
