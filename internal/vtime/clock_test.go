package vtime

import (
	"testing"
	"time"
)

func TestProcClock(t *testing.T) {
	s := NewSim()
	s.Spawn("p", func(p *Proc) {
		c := ProcClock{P: p}
		if c.Now() != 0 {
			t.Errorf("initial %v", c.Now())
		}
		c.Sleep(3 * time.Second)
		if c.Now() != 3*time.Second {
			t.Errorf("after sleep %v", c.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	c.Sleep(10 * time.Millisecond)
	b := c.Now()
	if b-a < 5*time.Millisecond {
		t.Fatalf("real clock advanced only %v", b-a)
	}
}
