package vtime

import (
	"fmt"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := NewSim()
	var woke time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("sim clock %v, want 5s", s.Now())
	}
}

func TestSleepOrderingDeterministic(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		s := NewSim()
		var order []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			d := time.Duration(5-i) * time.Second
			s.Spawn(name, func(p *Proc) {
				p.Sleep(d)
				order = append(order, p.Name())
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		want := []string{"p4", "p3", "p2", "p1", "p0"}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("trial %d: order %v, want %v", trial, order, want)
			}
		}
	}
}

func TestSameInstantTieBreakBySeq(t *testing.T) {
	s := NewSim()
	var order []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("p%d", i)
		s.Spawn(name, func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, p.Name())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"p0", "p1", "p2", "p3"} {
		if order[i] != want {
			t.Fatalf("order %v", order)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	s := NewSim()
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if s.Now() != 0 {
		t.Fatalf("clock advanced to %v on zero sleep", s.Now())
	}
}

func TestUnbufferedChannelRendezvous(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 0)
	var got int
	var recvAt, sendDone time.Duration
	s.Spawn("sender", func(p *Proc) {
		p.Sleep(2 * time.Second)
		ch.Send(p, 42)
		sendDone = p.Now()
	})
	s.Spawn("receiver", func(p *Proc) {
		got, _ = ch.Recv(p)
		recvAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d", got)
	}
	if recvAt != 2*time.Second || sendDone != 2*time.Second {
		t.Fatalf("recvAt=%v sendDone=%v", recvAt, sendDone)
	}
}

func TestBufferedChannelDoesNotBlockSender(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 3)
	var sendDone time.Duration = -1
	s.Spawn("sender", func(p *Proc) {
		for i := 0; i < 3; i++ {
			ch.Send(p, i)
		}
		sendDone = p.Now()
	})
	s.Spawn("receiver", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 3; i++ {
			v, ok := ch.Recv(p)
			if !ok || v != i {
				t.Errorf("recv %d %v", v, ok)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 0 {
		t.Fatalf("buffered sends blocked until %v", sendDone)
	}
}

func TestChannelBlocksWhenFull(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 1)
	var sendDone time.Duration
	s.Spawn("sender", func(p *Proc) {
		ch.Send(p, 1) // buffered
		ch.Send(p, 2) // blocks until receiver drains
		sendDone = p.Now()
	})
	s.Spawn("receiver", func(p *Proc) {
		p.Sleep(3 * time.Second)
		ch.Recv(p)
		ch.Recv(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 3*time.Second {
		t.Fatalf("second send completed at %v, want 3s", sendDone)
	}
}

func TestChannelFIFOAcrossManySenders(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 0)
	var got []int
	for i := 0; i < 8; i++ {
		v := i
		s.Spawn(fmt.Sprintf("s%d", i), func(p *Proc) {
			p.Sleep(time.Duration(v) * time.Millisecond)
			ch.Send(p, v)
		})
	}
	s.Spawn("r", func(p *Proc) {
		for i := 0; i < 8; i++ {
			v, _ := ch.Recv(p)
			got = append(got, v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got[i] != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestCloseWakesReceivers(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 0)
	var ok bool = true
	s.Spawn("r", func(p *Proc) {
		_, ok = ch.Recv(p)
	})
	s.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Second)
		ch.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("receiver did not observe close")
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 0)
	var ready bool
	var at time.Duration
	s.Spawn("r", func(p *Proc) {
		_, _, ready = ch.RecvTimeout(p, 100*time.Millisecond)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ready {
		t.Fatal("expected timeout")
	}
	if at != 100*time.Millisecond {
		t.Fatalf("timed out at %v", at)
	}
}

func TestRecvTimeoutDelivery(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 0)
	var v int
	var ready bool
	s.Spawn("r", func(p *Proc) {
		v, _, ready = ch.RecvTimeout(p, time.Hour)
	})
	s.Spawn("s", func(p *Proc) {
		p.Sleep(time.Second)
		ch.Send(p, 7)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ready || v != 7 {
		t.Fatalf("ready=%v v=%d", ready, v)
	}
}

func TestRecvTimeoutExpiredWaiterSkippedBySender(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 1)
	s.Spawn("r", func(p *Proc) {
		if _, _, ready := ch.RecvTimeout(p, time.Second); ready {
			t.Error("first recv should time out")
		}
		// Second receive must get the value the sender posted after expiry.
		v, ok := ch.Recv(p)
		if !ok || v != 9 {
			t.Errorf("second recv got %d %v", v, ok)
		}
	})
	s.Spawn("s", func(p *Proc) {
		p.Sleep(2 * time.Second)
		ch.Send(p, 9)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 0)
	s.Spawn("stuck", func(p *Proc) {
		ch.Recv(p)
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestRunUntilSuspends(t *testing.T) {
	s := NewSim()
	var ticks int
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks=%d at horizon, want 10", ticks)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 100 {
		t.Fatalf("ticks=%d after resume, want 100", ticks)
	}
}

func TestAfterCallback(t *testing.T) {
	s := NewSim()
	var fired time.Duration = -1
	s.Spawn("main", func(p *Proc) {
		s.After(3*time.Second, func() { fired = s.Now() })
		p.Sleep(10 * time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3*time.Second {
		t.Fatalf("callback fired at %v", fired)
	}
}

func TestAfterCancel(t *testing.T) {
	s := NewSim()
	fired := false
	s.Spawn("main", func(p *Proc) {
		cancel := s.After(3*time.Second, func() { fired = true })
		cancel()
		p.Sleep(10 * time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled callback fired")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := NewSim()
	var childRan bool
	s.Spawn("parent", func(p *Proc) {
		p.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
		})
		p.Sleep(2 * time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child did not run")
	}
}

func TestEventBroadcast(t *testing.T) {
	s := NewSim()
	ev := NewEvent(s, "go")
	var wokeAt []time.Duration
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			wokeAt = append(wokeAt, p.Now())
		})
	}
	s.Spawn("setter", func(p *Proc) {
		p.Sleep(4 * time.Second)
		ev.Set()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wokeAt) != 3 {
		t.Fatalf("woke %d waiters", len(wokeAt))
	}
	for _, at := range wokeAt {
		if at != 4*time.Second {
			t.Fatalf("waiter woke at %v", at)
		}
	}
}

func TestWaitGroup(t *testing.T) {
	s := NewSim()
	wg := NewWaitGroup(s)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		d := time.Duration(i) * time.Second
		s.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Second {
		t.Fatalf("waitgroup released at %v", doneAt)
	}
}

func TestStop(t *testing.T) {
	s := NewSim()
	s.Spawn("forever", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			if p.Now() >= 5*time.Second {
				s.Stop()
				// The process must still yield so the kernel regains control.
				p.Sleep(time.Second)
			}
		}
	})
	err := s.Run()
	if err != ErrStopped {
		t.Fatalf("err=%v, want ErrStopped", err)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("stopped at %v", s.Now())
	}
}

func TestManyProcessesStress(t *testing.T) {
	s := NewSim()
	const n = 200
	ch := NewChan[int](s, 16)
	sum := 0
	for i := 0; i < n; i++ {
		v := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Duration(v%7) * time.Millisecond)
			ch.Send(p, v)
		})
	}
	s.Spawn("collector", func(p *Proc) {
		for i := 0; i < n; i++ {
			v, _ := ch.Recv(p)
			sum += v
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != n*(n-1)/2 {
		t.Fatalf("sum=%d", sum)
	}
}

func TestTrySendTryRecv(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 1)
	s.Spawn("main", func(p *Proc) {
		if _, _, ready := ch.TryRecv(); ready {
			t.Error("TryRecv on empty should not be ready")
		}
		if !ch.TrySend(5) {
			t.Error("TrySend to empty buffer failed")
		}
		if ch.TrySend(6) {
			t.Error("TrySend to full buffer succeeded")
		}
		v, ok, ready := ch.TryRecv()
		if !ready || !ok || v != 5 {
			t.Errorf("TryRecv got %d %v %v", v, ok, ready)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAtSchedulesAbsolute(t *testing.T) {
	s := NewSim()
	var at time.Duration = -1
	s.Spawn("main", func(p *Proc) {
		p.Sleep(2 * time.Second)
		s.At(7*time.Second, func() { at = s.Now() })
		p.Sleep(10 * time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7*time.Second {
		t.Fatalf("At callback fired at %v", at)
	}
}
