// Package vtime implements a deterministic discrete-event virtual-time
// kernel. It is the execution substrate for the resource-constrained
// "testbed" environment of Chang & Karamcheti's adaptation framework:
// every profiled or adapted application in this repository runs as a set
// of cooperating processes whose notion of time is the simulation clock,
// so experiments replay deterministically and complete in milliseconds of
// wall-clock time regardless of how many virtual seconds they span.
//
// The kernel uses a sequential hand-off discipline: although each process
// is a real goroutine, exactly one process executes at any moment. A
// process runs until it performs a blocking kernel operation (Sleep, a
// channel Send/Recv that cannot complete, Wait on an event); the kernel
// then selects the next runnable process, or, if none is runnable,
// advances the clock to the earliest pending timer. Ties at the same
// timestamp are broken by ascending sequence number, so a given program
// always produces the same schedule.
package vtime

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrDeadlock is returned by Run when live processes remain but none is
// runnable and no timer is pending.
var ErrDeadlock = errors.New("vtime: deadlock: all processes blocked with no pending timers")

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop before all processes finished.
var ErrStopped = errors.New("vtime: simulation stopped")

// Sim is a discrete-event simulation kernel. The zero value is not usable;
// construct with NewSim.
type Sim struct {
	now     time.Duration
	seq     uint64
	runq    []*Proc
	timers  timerHeap
	procs   map[int64]*Proc
	nextID  int64
	sched   chan schedMsg // processes hand the execution token back here
	stopped bool
	limit   time.Duration // 0 means no limit
	cur     *Proc
}

type schedMsg struct {
	p      *Proc
	exited bool
}

// NewSim returns a fresh simulation whose clock starts at zero.
func NewSim() *Sim {
	return &Sim{
		procs: make(map[int64]*Proc),
		sched: make(chan schedMsg),
	}
}

// Now reports the current virtual time. It may be called from within a
// running process or between Run calls; during Run it must only be called
// by the currently executing process.
func (s *Sim) Now() time.Duration { return s.now }

// Proc is the handle a process uses to interact with the kernel. Every
// kernel operation takes the Proc of the calling process; using another
// process's handle corrupts the schedule and is a programming error.
type Proc struct {
	sim    *Sim
	id     int64
	name   string
	resume chan struct{}
	// wake bookkeeping for channel operations
	waitSlot   any  // value delivered directly to a blocked receiver
	waitOK     bool // whether the delivered value is valid (vs channel closed)
	timer      *timer
	blockedOn  string
	exited     bool
	interrupts []func()
}

// ID returns the process's unique id (assigned in spawn order).
func (p *Proc) ID() int64 { return p.id }

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now reports current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Spawn registers fn as a new process. It may be called before Run or from
// within a running process. The new process becomes runnable immediately
// (it is appended to the run queue) but does not preempt the caller.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	s.nextID++
	p := &Proc{
		sim:    s,
		id:     s.nextID,
		name:   name,
		resume: make(chan struct{}),
	}
	s.procs[p.id] = p
	s.runq = append(s.runq, p)
	go func() {
		<-p.resume // wait until first scheduled
		fn(p)
		p.exited = true
		s.sched <- schedMsg{p: p, exited: true}
	}()
	return p
}

// Spawn creates a child process from within a running process.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.sim.Spawn(name, fn)
}

// timer is a pending wake-up.
type timer struct {
	at      time.Duration
	seq     uint64
	p       *Proc
	fired   bool
	stopped bool
	fn      func() // if non-nil, a callback timer rather than a proc wake
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) push(t *timer) { *h = append(*h, t); h.up(len(*h) - 1) }
func (h *timerHeap) pop() *timer {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	if len(*h) > 0 {
		h.down(0)
	}
	return top
}
func (h timerHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(i, parent) {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}
func (h timerHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.Less(l, smallest) {
			smallest = l
		}
		if r < n && h.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.Swap(i, smallest)
		i = smallest
	}
}

// addTimer schedules a wake-up for proc p (or callback fn) at absolute time at.
func (s *Sim) addTimer(p *Proc, at time.Duration, fn func()) *timer {
	s.seq++
	t := &timer{at: at, seq: s.seq, p: p, fn: fn}
	s.timers.push(t)
	return t
}

// Run executes the simulation until every process has exited, the optional
// limit set by RunUntil is reached, or no progress is possible. It returns
// nil on normal completion, ErrDeadlock if live processes remain blocked
// forever, and ErrStopped after Stop.
func (s *Sim) Run() error {
	for {
		if s.stopped {
			return ErrStopped
		}
		if len(s.runq) == 0 {
			// Advance the clock to the next timer batch.
			if !s.advance() {
				if len(s.procs) == 0 {
					return nil
				}
				return fmt.Errorf("%w: %s", ErrDeadlock, s.blockedSummary())
			}
			continue
		}
		p := s.runq[0]
		copy(s.runq, s.runq[1:])
		s.runq = s.runq[:len(s.runq)-1]
		s.cur = p
		p.resume <- struct{}{}
		msg := <-s.sched
		s.cur = nil
		if msg.exited {
			delete(s.procs, msg.p.id)
		}
		if len(s.procs) == 0 && len(s.runq) == 0 {
			return nil
		}
	}
}

// RunUntil runs the simulation but stops (successfully) once virtual time
// would pass t. Processes still alive at that point remain suspended; Run
// or RunUntil may be invoked again to continue.
func (s *Sim) RunUntil(t time.Duration) error {
	s.limit = t
	defer func() { s.limit = 0 }()
	for {
		if s.stopped {
			return ErrStopped
		}
		if len(s.runq) == 0 {
			if len(s.timers) > 0 && s.nextTimerAt() > t {
				return nil // reached the horizon
			}
			if !s.advance() {
				if len(s.procs) == 0 {
					return nil
				}
				return fmt.Errorf("%w: %s", ErrDeadlock, s.blockedSummary())
			}
			continue
		}
		p := s.runq[0]
		copy(s.runq, s.runq[1:])
		s.runq = s.runq[:len(s.runq)-1]
		s.cur = p
		p.resume <- struct{}{}
		msg := <-s.sched
		s.cur = nil
		if msg.exited {
			delete(s.procs, msg.p.id)
		}
		if len(s.procs) == 0 && len(s.runq) == 0 {
			return nil
		}
	}
}

func (s *Sim) nextTimerAt() time.Duration {
	for len(s.timers) > 0 && s.timers[0].stopped {
		s.timers.pop()
	}
	if len(s.timers) == 0 {
		return -1
	}
	return s.timers[0].at
}

// advance moves the clock to the earliest pending timer and makes every
// timer due at that instant runnable. It reports whether any timer fired.
func (s *Sim) advance() bool {
	for len(s.timers) > 0 && s.timers[0].stopped {
		s.timers.pop()
	}
	if len(s.timers) == 0 {
		return false
	}
	at := s.timers[0].at
	if at > s.now {
		s.now = at
	}
	for len(s.timers) > 0 {
		top := s.timers[0]
		if top.stopped {
			s.timers.pop()
			continue
		}
		if top.at != at {
			break
		}
		s.timers.pop()
		top.fired = true
		if top.fn != nil {
			top.fn()
			continue
		}
		s.runq = append(s.runq, top.p)
	}
	return true
}

// Stop aborts the simulation; the current and subsequent Run calls return
// ErrStopped. Must be called from within a running process or a timer
// callback.
func (s *Sim) Stop() { s.stopped = true }

func (s *Sim) blockedSummary() string {
	var names []string
	for _, p := range s.procs {
		names = append(names, fmt.Sprintf("%s(%s)", p.name, p.blockedOn))
	}
	sort.Strings(names)
	if len(names) > 8 {
		names = names[:8]
	}
	return fmt.Sprint(names)
}

// yield hands the execution token back to the kernel and waits to be
// resumed. The caller must already have arranged its wake-up condition
// (timer or channel waiter registration).
func (p *Proc) yield() {
	p.sim.sched <- schedMsg{p: p}
	<-p.resume
}

// makeRunnable appends q to the run queue.
func (s *Sim) makeRunnable(q *Proc) { s.runq = append(s.runq, q) }

// Sleep suspends the calling process for d of virtual time. Negative or
// zero durations yield the processor without advancing time (the process
// is re-queued behind currently runnable processes).
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		p.blockedOn = "yield"
		p.sim.makeRunnable(p)
		p.yield()
		p.blockedOn = ""
		return
	}
	p.blockedOn = "sleep"
	p.timer = p.sim.addTimer(p, p.sim.now+d, nil)
	p.yield()
	p.timer = nil
	p.blockedOn = ""
}

// SleepUntil suspends the calling process until absolute virtual time t.
func (p *Proc) SleepUntil(t time.Duration) {
	if t <= p.sim.now {
		p.Sleep(0)
		return
	}
	p.Sleep(t - p.sim.now)
}

// After schedules fn to run at now+d in kernel context (not as a process).
// fn must not block; it may spawn processes, send on channels with waiting
// receivers, or adjust state. It returns a cancel function.
func (s *Sim) After(d time.Duration, fn func()) (cancel func()) {
	t := s.addTimer(nil, s.now+d, fn)
	return func() { t.stopped = true }
}

// At schedules fn at absolute virtual time t (see After).
func (s *Sim) At(at time.Duration, fn func()) (cancel func()) {
	if at < s.now {
		at = s.now
	}
	t := s.addTimer(nil, at, fn)
	return func() { t.stopped = true }
}
