package vtime

import "time"

// Clock abstracts the passage of time so components (monitors, shapers,
// transports) can run identically on the simulation kernel and on the real
// system clock. Virtual-time code paths use *Proc directly; Clock exists
// for the real-TCP deployment mode of the tools in cmd/.
type Clock interface {
	// Now reports elapsed time since the clock's epoch.
	Now() time.Duration
	// Sleep suspends the caller for d.
	Sleep(d time.Duration)
}

// RealClock is a Clock over the operating-system clock.
type RealClock struct {
	epoch time.Time
}

// NewRealClock returns a RealClock whose epoch is the moment of the call.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now reports wall-clock time since the epoch.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

// Sleep suspends the calling goroutine for d of wall-clock time.
func (c *RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// ProcClock adapts a simulation process to the Clock interface. It must
// only be used by that process.
type ProcClock struct {
	P *Proc
}

// Now reports current virtual time.
func (c ProcClock) Now() time.Duration { return c.P.Now() }

// Sleep suspends the process for d of virtual time.
func (c ProcClock) Sleep(d time.Duration) { c.P.Sleep(d) }

var (
	_ Clock = (*RealClock)(nil)
	_ Clock = ProcClock{}
)
