package vtime

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts the passage of time so components (monitors, shapers,
// transports) can run identically on the simulation kernel and on the real
// system clock. Virtual-time code paths use *Proc directly; Clock exists
// for the real-TCP deployment mode of the tools in cmd/.
type Clock interface {
	// Now reports elapsed time since the clock's epoch.
	Now() time.Duration
	// Sleep suspends the caller for d.
	Sleep(d time.Duration)
}

// RealClock is a Clock over the operating-system clock.
type RealClock struct {
	epoch time.Time
}

// NewRealClock returns a RealClock whose epoch is the moment of the call.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now reports wall-clock time since the epoch.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

// Sleep suspends the calling goroutine for d of wall-clock time.
func (c *RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// ProcClock adapts a simulation process to the Clock interface. It must
// only be used by that process.
type ProcClock struct {
	P *Proc
}

// Now reports current virtual time.
func (c ProcClock) Now() time.Duration { return c.P.Now() }

// Sleep suspends the process for d of virtual time.
func (c ProcClock) Sleep(d time.Duration) { c.P.Sleep(d) }

// SharedClock is a manually-advanced virtual clock safe for concurrent
// use: any number of goroutines may read Now while a driver advances it.
// Unlike the simulation kernel (one runnable process at a time), a
// SharedClock lets truly parallel workers share one virtual timeline —
// the timebase cmd/avis-load drives its session swarm on. The zero value
// is ready at epoch 0.
type SharedClock struct {
	now atomic.Int64 // nanoseconds since epoch

	mu      sync.Mutex
	sleeper *sync.Cond
}

// Now reports the current virtual time.
func (c *SharedClock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d (never backward; d ≤ 0 is a no-op)
// and wakes sleepers whose deadline has passed.
func (c *SharedClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.now.Add(int64(d))
	c.mu.Lock()
	if c.sleeper != nil {
		c.sleeper.Broadcast()
	}
	c.mu.Unlock()
}

// Sleep suspends the caller until another goroutine advances the clock
// past now+d.
func (c *SharedClock) Sleep(d time.Duration) {
	deadline := c.Now() + d
	c.mu.Lock()
	if c.sleeper == nil {
		c.sleeper = sync.NewCond(&c.mu)
	}
	for c.Now() < deadline {
		c.sleeper.Wait()
	}
	c.mu.Unlock()
}

var (
	_ Clock = (*RealClock)(nil)
	_ Clock = ProcClock{}
	_ Clock = (*SharedClock)(nil)
)
