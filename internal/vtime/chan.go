package vtime

import "time"

// Chan is a virtual-time-aware channel. Unlike native Go channels, blocking
// on a Chan suspends the process in the simulation kernel, allowing the
// clock to advance past the wait. Semantics mirror Go channels: a Chan has
// a fixed buffer capacity (possibly zero for rendezvous), Send blocks when
// the buffer is full, Recv blocks when it is empty, and Close wakes all
// blocked receivers with ok=false.
//
// Operations take the calling process's Proc handle; the kernel's
// one-process-at-a-time discipline means no internal locking is required.
type Chan[T any] struct {
	sim    *Sim
	cap    int
	buf    []T
	recvq  []*chanWaiter[T]
	sendq  []*chanWaiter[T]
	closed bool
	name   string
}

type chanWaiter[T any] struct {
	p       *Proc
	val     T    // for senders: the value being sent; for receivers: delivery slot
	ok      bool // delivery status for receivers
	done    bool // set when the waiter has been satisfied (vs. timed out)
	expired bool // set when a timed wait gave up
}

// NewChan creates a channel with the given buffer capacity.
func NewChan[T any](s *Sim, capacity int) *Chan[T] {
	return &Chan[T]{sim: s, cap: capacity}
}

// NewNamedChan creates a channel with a name that appears in deadlock reports.
func NewNamedChan[T any](s *Sim, capacity int, name string) *Chan[T] {
	return &Chan[T]{sim: s, cap: capacity, name: name}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Cap reports the buffer capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Send delivers v, blocking the calling process until a receiver or buffer
// slot is available. Sending on a closed channel panics, as with native
// channels.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.closed {
		panic("vtime: send on closed channel " + c.name)
	}
	// Direct hand-off to a waiting receiver.
	for len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		if w.expired {
			continue
		}
		w.val, w.ok, w.done = v, true, true
		c.sim.makeRunnable(w.p)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	// Block until a receiver drains us.
	w := &chanWaiter[T]{p: p, val: v}
	c.sendq = append(c.sendq, w)
	p.blockedOn = "send " + c.name
	p.yield()
	p.blockedOn = ""
	if !w.done {
		panic("vtime: sender woken without completion on " + c.name)
	}
}

// TrySend delivers v without blocking; it reports whether the value was
// accepted (by a waiting receiver or free buffer slot).
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		panic("vtime: send on closed channel " + c.name)
	}
	for len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		if w.expired {
			continue
		}
		w.val, w.ok, w.done = v, true, true
		c.sim.makeRunnable(w.p)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv blocks the calling process until a value is available. The second
// result is false if the channel was closed and drained.
func (c *Chan[T]) Recv(p *Proc) (T, bool) {
	if v, ok, ready := c.tryRecvLocked(); ready {
		return v, ok
	}
	w := &chanWaiter[T]{p: p}
	c.recvq = append(c.recvq, w)
	p.blockedOn = "recv " + c.name
	p.yield()
	p.blockedOn = ""
	return w.val, w.ok
}

// TryRecv receives without blocking; the third result reports whether a
// value (or close notification) was ready.
func (c *Chan[T]) TryRecv() (T, bool, bool) {
	return c.tryRecvLocked()
}

func (c *Chan[T]) tryRecvLocked() (v T, ok bool, ready bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		copy(c.buf, c.buf[1:])
		c.buf = c.buf[:len(c.buf)-1]
		// A blocked sender can now use the freed slot.
		c.promoteSender()
		return v, true, true
	}
	// Rendezvous with a blocked sender (cap 0, or drained buffer).
	for len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		if w.expired {
			continue
		}
		w.done = true
		c.sim.makeRunnable(w.p)
		return w.val, true, true
	}
	if c.closed {
		return v, false, true
	}
	return v, false, false
}

func (c *Chan[T]) promoteSender() {
	for len(c.sendq) > 0 && len(c.buf) < c.cap {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		if w.expired {
			continue
		}
		c.buf = append(c.buf, w.val)
		w.done = true
		c.sim.makeRunnable(w.p)
	}
}

// RecvTimeout behaves like Recv but gives up after d, returning ready=false.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (v T, ok bool, ready bool) {
	if v, ok, ready := c.tryRecvLocked(); ready {
		return v, ok, true
	}
	if d <= 0 {
		return v, false, false
	}
	w := &chanWaiter[T]{p: p}
	c.recvq = append(c.recvq, w)
	// The timeout is a kernel callback, not a process wake-up: whichever of
	// {delivery, expiry} runs first claims the waiter, so the process is
	// woken exactly once.
	t := p.sim.addTimer(nil, p.sim.now+d, nil)
	t.fn = func() {
		if w.done || w.expired {
			return
		}
		w.expired = true
		p.sim.makeRunnable(p)
	}
	p.blockedOn = "recv-timeout " + c.name
	p.yield()
	p.blockedOn = ""
	if w.done {
		t.stopped = true
		return w.val, w.ok, true
	}
	return v, false, false
}

// Close closes the channel. Blocked receivers wake with ok=false. Closing a
// channel with blocked senders panics (as sending on a closed channel would).
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.recvq {
		if w.expired {
			continue
		}
		w.done = true
		w.ok = false
		c.sim.makeRunnable(w.p)
	}
	c.recvq = nil
	if len(c.sendq) > 0 {
		panic("vtime: close of channel with blocked senders " + c.name)
	}
}

// Event is a broadcast synchronization point: processes Wait until another
// process (or timer callback) calls Set, which wakes all current and future
// waiters. Reset re-arms the event.
type Event struct {
	sim     *Sim
	set     bool
	waiters []*Proc
	name    string
}

// NewEvent creates an un-set event.
func NewEvent(s *Sim, name string) *Event {
	return &Event{sim: s, name: name}
}

// Set fires the event, waking all waiters.
func (e *Event) Set() {
	if e.set {
		return
	}
	e.set = true
	for _, p := range e.waiters {
		e.sim.makeRunnable(p)
	}
	e.waiters = nil
}

// Reset re-arms a fired event.
func (e *Event) Reset() { e.set = false }

// IsSet reports whether the event has fired.
func (e *Event) IsSet() bool { return e.set }

// Wait blocks the calling process until the event fires (returns
// immediately if it already has).
func (e *Event) Wait(p *Proc) {
	if e.set {
		return
	}
	e.waiters = append(e.waiters, p)
	p.blockedOn = "event " + e.name
	p.yield()
	p.blockedOn = ""
}

// WaitGroup counts outstanding work items in virtual time.
type WaitGroup struct {
	sim     *Sim
	n       int
	waiters []*Proc
}

// NewWaitGroup creates an empty wait group.
func NewWaitGroup(s *Sim) *WaitGroup { return &WaitGroup{sim: s} }

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("vtime: negative WaitGroup counter")
	}
	if wg.n == 0 {
		for _, p := range wg.waiters {
			wg.sim.makeRunnable(p)
		}
		wg.waiters = nil
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks the calling process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.n == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.blockedOn = "waitgroup"
	p.yield()
	p.blockedOn = ""
}
