package vtime

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestCloseDrainsBufferedValuesFirst(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 4)
	var got []int
	var closedOK bool
	s.Spawn("main", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Close()
		for {
			v, ok := ch.Recv(p)
			if !ok {
				closedOK = true
				return
			}
			got = append(got, v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v", got)
	}
	if !closedOK {
		t.Fatal("close not observed after drain")
	}
}

func TestSendOnClosedPanics(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 1)
	var recovered any
	s.Spawn("main", func(p *Proc) {
		defer func() { recovered = recover() }()
		ch.Close()
		ch.Send(p, 1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered == nil {
		t.Fatal("send on closed channel did not panic")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 0)
	ch.Close()
	ch.Close() // must not panic
	if !ch.Closed() {
		t.Fatal("Closed")
	}
}

func TestRecvTimeoutZeroDuration(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 1)
	s.Spawn("main", func(p *Proc) {
		if _, _, ready := ch.RecvTimeout(p, 0); ready {
			t.Error("zero timeout on empty channel reported ready")
		}
		ch.Send(p, 5)
		v, ok, ready := ch.RecvTimeout(p, 0)
		if !ready || !ok || v != 5 {
			t.Errorf("zero timeout with buffered value: %v %v %v", v, ok, ready)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0 {
		t.Fatalf("zero-timeout ops advanced the clock to %v", s.Now())
	}
}

func TestLenAndCap(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, 3)
	if ch.Cap() != 3 || ch.Len() != 0 {
		t.Fatal("initial len/cap")
	}
	s.Spawn("main", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		if ch.Len() != 2 {
			t.Errorf("len %d", ch.Len())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedSpawnRunsBreadthFirst(t *testing.T) {
	s := NewSim()
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a")
		p.Spawn("a1", func(q *Proc) { order = append(order, "a1") })
	})
	s.Spawn("b", func(p *Proc) { order = append(order, "b") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestProcIdentity(t *testing.T) {
	s := NewSim()
	p1 := s.Spawn("one", func(p *Proc) {
		if p.Name() != "one" {
			t.Errorf("name %q", p.Name())
		}
		if p.Sim() != s {
			t.Error("Sim()")
		}
	})
	p2 := s.Spawn("two", func(p *Proc) {})
	if p1.ID() == p2.ID() {
		t.Fatal("duplicate ids")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventResetRearm(t *testing.T) {
	s := NewSim()
	ev := NewEvent(s, "e")
	hits := 0
	s.Spawn("waiter", func(p *Proc) {
		ev.Wait(p)
		hits++
		ev.Reset()
		ev.Wait(p)
		hits++
	})
	s.Spawn("setter", func(p *Proc) {
		p.Sleep(time.Second)
		ev.Set()
		p.Sleep(time.Second)
		ev.Set()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Fatalf("hits %d", hits)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	s := NewSim()
	wg := NewWaitGroup(s)
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter did not panic")
		}
	}()
	wg.Done()
}

// Property: for any set of sleep durations, processes wake in sorted order
// of duration (ties by spawn order).
func TestSleepOrderProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 64 {
			return true
		}
		s := NewSim()
		type wake struct {
			d   time.Duration
			idx int
		}
		var wakes []wake
		for i, d := range durs {
			i, d := i, time.Duration(d)*time.Millisecond
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				wakes = append(wakes, wake{d: d, idx: i})
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(wakes); i++ {
			prev, cur := wakes[i-1], wakes[i]
			if prev.d > cur.d {
				return false
			}
			if prev.d == cur.d && prev.idx > cur.idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a pipeline through two vtime channels preserves order and
// content for any payload sequence.
func TestPipelineOrderProperty(t *testing.T) {
	f := func(vals []int32) bool {
		s := NewSim()
		a := NewChan[int32](s, 2)
		bc := NewChan[int32](s, 2)
		s.Spawn("source", func(p *Proc) {
			for _, v := range vals {
				a.Send(p, v)
			}
			a.Close()
		})
		s.Spawn("relay", func(p *Proc) {
			for {
				v, ok := a.Recv(p)
				if !ok {
					bc.Close()
					return
				}
				p.Sleep(time.Microsecond)
				bc.Send(p, v)
			}
		})
		var got []int32
		s.Spawn("sink", func(p *Proc) {
			for {
				v, ok := bc.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAfterCompletionIsNoop(t *testing.T) {
	s := NewSim()
	s.Spawn("p", func(p *Proc) { p.Sleep(time.Second) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Running again with no processes must return immediately.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock moved to %v", s.Now())
	}
}

func TestSleepUntilPast(t *testing.T) {
	s := NewSim()
	s.Spawn("p", func(p *Proc) {
		p.Sleep(time.Second)
		p.SleepUntil(500 * time.Millisecond) // already past: yields only
		if p.Now() != time.Second {
			t.Errorf("clock %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
