// Package trace records time series of application quality metrics and
// resource usage during experiments and renders them as the textual
// equivalent of the paper's figures: one (t, value) series per plotted
// line, plus aligned tables for easy comparison against the published
// curves.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Point is one sample of a series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named sequence of samples in time order. All methods are
// safe for concurrent use: the metrics→trace bridge appends points from a
// wall-clock scrape goroutine while experiment code reads summaries.
// Points is exported for figure tooling that ranges over raw samples; such
// readers must either finish recording first (the experiment drivers all
// do) or take a stable copy via Samples.
type Series struct {
	Name string
	Unit string

	mu     sync.Mutex
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.mu.Lock()
	s.Points = append(s.Points, Point{T: t, V: v})
	s.mu.Unlock()
}

// Samples returns a stable copy of the recorded points.
func (s *Series) Samples() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.Points...)
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.Points)
}

// Last returns the most recent sample.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// Sum returns the sum of all values.
func (s *Series) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sumLocked()
}

func (s *Series) sumLocked() float64 {
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum
}

// Mean returns the mean value, or 0 for an empty series.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.Points) == 0 {
		return 0
	}
	return s.sumLocked() / float64(len(s.Points))
}

// Max returns the maximum value, or -Inf for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Min returns the minimum value, or +Inf for an empty series.
func (s *Series) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := math.Inf(1)
	for _, p := range s.Points {
		if p.V < min {
			min = p.V
		}
	}
	return min
}

// Recorder collects named series. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	series map[string]*Series
	order  []string
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns (creating if needed) the series with the given name.
func (r *Recorder) Series(name, unit string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[name]; ok {
		return s
	}
	s := &Series{Name: name, Unit: unit}
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Get returns an existing series.
func (r *Recorder) Get(name string) (*Series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	return s, ok
}

// Names returns series names in creation order.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// WriteTable renders all series as an aligned table: one row per sample
// index, one column per series (series of different lengths pad with
// blanks). The header carries names and units.
func (r *Recorder) WriteTable(w io.Writer) error {
	names := r.Names()
	if len(names) == 0 {
		return nil
	}
	cols := make([]*Series, len(names))
	pts := make([][]Point, len(names))
	rows := 0
	for i, n := range names {
		cols[i], _ = r.Get(n)
		pts[i] = cols[i].Samples()
		if len(pts[i]) > rows {
			rows = len(pts[i])
		}
	}
	// Header.
	header := make([]string, 0, 2*len(names))
	for _, c := range cols {
		unit := c.Unit
		if unit == "" {
			unit = "-"
		}
		header = append(header, fmt.Sprintf("t(%s)", c.Name), fmt.Sprintf("%s(%s)", c.Name, unit))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		fields := make([]string, 0, 2*len(cols))
		for _, col := range pts {
			if i < len(col) {
				p := col[i]
				fields = append(fields, fmt.Sprintf("%.3f", p.T.Seconds()), fmt.Sprintf("%.4g", p.V))
			} else {
				fields = append(fields, "", "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders one line per series with count/mean/min/max/sum.
func (r *Recorder) WriteSummary(w io.Writer) error {
	names := r.Names()
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		s, _ := r.Get(n)
		if s.Len() == 0 {
			if _, err := fmt.Fprintf(w, "%-40s empty\n", n); err != nil {
				return err
			}
			continue
		}
		_, err := fmt.Fprintf(w, "%-40s n=%-4d mean=%-10.4g min=%-10.4g max=%-10.4g sum=%-10.4g\n",
			n, s.Len(), s.Mean(), s.Min(), s.Max(), s.Sum())
		if err != nil {
			return err
		}
	}
	return nil
}
