package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "x"}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty")
	}
	if s.Mean() != 0 {
		t.Fatal("Mean on empty")
	}
	s.Add(time.Second, 1)
	s.Add(2*time.Second, 3)
	s.Add(3*time.Second, 2)
	if s.Len() != 3 || s.Sum() != 6 || s.Mean() != 2 {
		t.Fatalf("stats %v %v %v", s.Len(), s.Sum(), s.Mean())
	}
	if s.Max() != 3 || s.Min() != 1 {
		t.Fatalf("minmax %v %v", s.Min(), s.Max())
	}
	last, ok := s.Last()
	if !ok || last.V != 2 || last.T != 3*time.Second {
		t.Fatalf("last %+v", last)
	}
	if !math.IsInf((&Series{}).Max(), -1) {
		t.Fatal("empty Max")
	}
}

func TestRecorderSeriesIdentity(t *testing.T) {
	r := NewRecorder()
	a := r.Series("a", "s")
	b := r.Series("a", "s")
	if a != b {
		t.Fatal("Series not idempotent")
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("Get")
	}
	if _, ok := r.Get("zz"); ok {
		t.Fatal("phantom series")
	}
	r.Series("b", "")
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
}

func TestWriteTable(t *testing.T) {
	r := NewRecorder()
	a := r.Series("adaptive", "s")
	a.Add(time.Second, 1.5)
	a.Add(2*time.Second, 2.5)
	b := r.Series("static", "s")
	b.Add(time.Second, 9)
	var buf bytes.Buffer
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("table:\n%s", out)
	}
	if !strings.Contains(lines[0], "adaptive") || !strings.Contains(lines[0], "static") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.5") || !strings.Contains(lines[1], "9") {
		t.Fatalf("row %q", lines[1])
	}
	// Ragged row: static has no second sample, so its two columns are
	// blank but present.
	if got := len(strings.Split(lines[2], "\t")); got != 4 {
		t.Fatalf("ragged row %q has %d fields, want 4", lines[2], got)
	}
	// Empty recorder writes nothing.
	var empty bytes.Buffer
	if err := NewRecorder().WriteTable(&empty); err != nil || empty.Len() != 0 {
		t.Fatal("empty recorder")
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRecorder()
	r.Series("z", "s").Add(0, 5)
	r.Series("a", "s")
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "empty") {
		t.Fatalf("summary missing empty marker:\n%s", out)
	}
	// Sorted: "a" line before "z".
	if strings.Index(out, "a ") > strings.Index(out, "z ") {
		t.Fatalf("summary not sorted:\n%s", out)
	}
}
