package spec

import (
	"fmt"
	"strings"
)

// Format renders the application back into the annotation language
// accepted by Parse. The output round-trips: Parse(Format(app)) yields an
// equivalent specification. Guards are emitted from their original source
// text when available, otherwise from the normalized form.
func (a *App) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "app %s;\n", a.Name)
	if len(a.Params) > 0 {
		sb.WriteString("\ncontrol_parameters {\n")
		for _, p := range a.Params {
			vals := make([]string, len(p.Domain))
			for i, v := range p.Domain {
				vals[i] = v.String()
			}
			fmt.Fprintf(&sb, "    %s %s in {%s};\n", p.Kind, p.Name, strings.Join(vals, ", "))
		}
		sb.WriteString("}\n")
	}
	if len(a.Env.Hosts) > 0 || len(a.Env.Links) > 0 {
		sb.WriteString("\nexecution_env {\n")
		for _, h := range a.Env.Hosts {
			fmt.Fprintf(&sb, "    host %s;\n", h.Name)
		}
		for _, l := range a.Env.Links {
			fmt.Fprintf(&sb, "    link %s from %s to %s;\n", l.Name, l.From, l.To)
		}
		sb.WriteString("}\n")
	}
	if len(a.Metrics) > 0 {
		sb.WriteString("\nqos_metric {\n")
		for _, m := range a.Metrics {
			unit := "scalar"
			switch m.Unit {
			case "s":
				unit = "duration"
			case "B":
				unit = "bytes"
			}
			fmt.Fprintf(&sb, "    %s %s %s;\n", unit, m.Name, m.Better)
		}
		sb.WriteString("}\n")
	}
	for _, t := range a.Tasks {
		fmt.Fprintf(&sb, "\ntask %s {\n", t.Name)
		if len(t.Params) > 0 {
			fmt.Fprintf(&sb, "    params { %s }\n", strings.Join(t.Params, ", "))
		}
		if len(t.Uses) > 0 {
			refs := make([]string, len(t.Uses))
			for i, u := range t.Uses {
				refs[i] = u.String()
			}
			fmt.Fprintf(&sb, "    uses { %s }\n", strings.Join(refs, ", "))
		}
		if len(t.Yields) > 0 {
			fmt.Fprintf(&sb, "    yields { %s }\n", strings.Join(t.Yields, ", "))
		}
		if len(t.Next) > 0 {
			fmt.Fprintf(&sb, "    next { %s }\n", strings.Join(t.Next, ", "))
		}
		if t.Guard != nil {
			fmt.Fprintf(&sb, "    guard ( %s )\n", guardSource(t.Guard))
		}
		sb.WriteString("}\n")
	}
	for _, tr := range a.Transitions {
		sb.WriteString("\ntransition {\n")
		if tr.Guard != nil {
			fmt.Fprintf(&sb, "    guard ( %s )\n", guardSource(tr.Guard))
		}
		if tr.Action != "" {
			fmt.Fprintf(&sb, "    action %s;\n", tr.Action)
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func guardSource(e *Expr) string {
	if src := strings.TrimSpace(e.Source()); src != "" {
		return src
	}
	return e.String()
}
