package spec

import (
	"strings"
	"testing"
)

const avisSrc = `
app active_visualization;

control_parameters {
    int dR in {80, 160, 320};   // incremental fovea size
    enum c in {lzw, bzw};       // compression type
    int l in {2, 3, 4};         /* resolution level */
}

execution_env {
    host client;
    host server;
    link net from client to server;
}

qos_metric {
    duration transmit_time minimize;
    duration response_time minimize;
    scalar resolution maximize;
}

task module1 {
    params { dR, c, l }
    uses { client.cpu, client.bandwidth, server.cpu }
    yields { transmit_time, response_time, resolution }
    guard ( l >= 2 )
}

transition {
    guard ( new.c != cur.c )
    action notify_server;
}
`

func TestParseAvis(t *testing.T) {
	app, err := Parse(avisSrc)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "active_visualization" {
		t.Fatalf("name %q", app.Name)
	}
	if len(app.Params) != 3 {
		t.Fatalf("%d params", len(app.Params))
	}
	dR := app.Param("dR")
	if dR == nil || dR.Kind != IntValue || len(dR.Domain) != 3 || dR.Domain[2].I != 320 {
		t.Fatalf("dR param %+v", dR)
	}
	c := app.Param("c")
	if c == nil || c.Kind != EnumValue || c.Domain[1].S != "bzw" {
		t.Fatalf("c param %+v", c)
	}
	if len(app.Env.Hosts) != 2 || len(app.Env.Links) != 1 {
		t.Fatalf("env %+v", app.Env)
	}
	if app.Env.Links[0].From != "client" || app.Env.Links[0].To != "server" {
		t.Fatalf("link %+v", app.Env.Links[0])
	}
	if len(app.Metrics) != 3 {
		t.Fatalf("%d metrics", len(app.Metrics))
	}
	if m := app.Metric("transmit_time"); m.Unit != "s" || m.Better != LowerIsBetter {
		t.Fatalf("transmit_time %+v", m)
	}
	if m := app.Metric("resolution"); m.Unit != "" || m.Better != HigherIsBetter {
		t.Fatalf("resolution %+v", m)
	}
	task := app.Task("module1")
	if task == nil {
		t.Fatal("no task")
	}
	if len(task.Params) != 3 || len(task.Uses) != 3 || len(task.Yields) != 3 {
		t.Fatalf("task %+v", task)
	}
	if task.Uses[0].Component != "client" || string(task.Uses[0].Kind) != "cpu" {
		t.Fatalf("uses %+v", task.Uses)
	}
	if task.Guard == nil || task.Guard.Source() != " l >= 2 " {
		t.Fatalf("guard %v", task.Guard)
	}
	if len(app.Transitions) != 1 || app.Transitions[0].Action != "notify_server" {
		t.Fatalf("transitions %+v", app.Transitions)
	}
	// The parsed app behaves like the programmatic one.
	if got := len(app.Enumerate()); got != 18 {
		t.Fatalf("enumerate %d", got)
	}
	next := Config{"dR": Int(80), "c": Enum("bzw"), "l": Int(4)}
	cur := next.With("c", Enum("lzw"))
	if acts := app.TransitionAllowed(cur, next); len(acts) != 1 {
		t.Fatalf("actions %v", acts)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		name string
		src  string
	}{
		{"missing app", "control_parameters { }"},
		{"missing semicolon", "app x\ncontrol_parameters { }"},
		{"bad section", "app x;\nwidgets { }"},
		{"bad param type", "app x;\ncontrol_parameters { float f in {1}; }"},
		{"unterminated domain", "app x;\ncontrol_parameters { int a in {1, ; }"},
		{"bad env component", "app x;\nexecution_env { router r; }"},
		{"link bad host", "app x;\nexecution_env { host a; link l from a to b; }"},
		{"bad metric unit", "app x;\nqos_metric { feet d minimize; }"},
		{"bad direction", "app x;\nqos_metric { duration d sideways; }"},
		{"bad guard", "app x;\ncontrol_parameters { int a in {1}; }\ntask t { params { a } guard ( a + ) }"},
		{"unterminated guard", "app x;\ncontrol_parameters { int a in {1}; }\ntask t { params { a } guard ( a"},
		{"unknown task clause", "app x;\ntask t { wobble { a } }"},
		{"guard unknown ident", "app x;\ncontrol_parameters { int a in {1}; }\ntask t { params { a } guard ( b > 1 ) }"},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: Parse accepted", c.name)
		}
	}
}

func TestParseErrorReportsLine(t *testing.T) {
	_, err := Parse("app x;\n\ncontrol_parameters {\n  float f in {1};\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %q lacks line number", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParse("nonsense")
}

func TestParseMinimalApp(t *testing.T) {
	app, err := Parse("app tiny;\ncontrol_parameters { int n in {1, 2}; }")
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Enumerate()) != 2 {
		t.Fatal("enumerate")
	}
}

func TestParsedGuardMatchesProgrammatic(t *testing.T) {
	parsed := MustParse(avisSrc)
	prog := avisApp()
	for _, cfg := range prog.Enumerate() {
		pg, err := parsed.Tasks[0].Guard.EvalBool(GuardEnv(cfg))
		if err != nil {
			t.Fatal(err)
		}
		gg, err := prog.Tasks[0].Guard.EvalBool(GuardEnv(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if pg != gg {
			t.Fatalf("guard divergence at %s", cfg.Key())
		}
	}
}
