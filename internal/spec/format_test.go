package spec

import (
	"strings"
	"testing"
)

func TestFormatRoundTrip(t *testing.T) {
	orig := MustParse(avisSrc)
	formatted := orig.Format()
	back, err := Parse(formatted)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, formatted)
	}
	if back.Name != orig.Name {
		t.Fatalf("name %q", back.Name)
	}
	if len(back.Params) != len(orig.Params) {
		t.Fatalf("params %d vs %d", len(back.Params), len(orig.Params))
	}
	for i := range orig.Params {
		if back.Params[i].Name != orig.Params[i].Name || back.Params[i].Kind != orig.Params[i].Kind {
			t.Fatalf("param %d differs", i)
		}
		for j := range orig.Params[i].Domain {
			if !back.Params[i].Domain[j].Equal(orig.Params[i].Domain[j]) {
				t.Fatalf("param %d domain %d differs", i, j)
			}
		}
	}
	if len(back.Env.Hosts) != 2 || len(back.Env.Links) != 1 {
		t.Fatalf("env %+v", back.Env)
	}
	if len(back.Metrics) != 3 || len(back.Tasks) != 1 || len(back.Transitions) != 1 {
		t.Fatalf("sections %d %d %d", len(back.Metrics), len(back.Tasks), len(back.Transitions))
	}
	// Guard semantics preserved across the round trip.
	for _, cfg := range orig.Enumerate() {
		g1, err1 := orig.Tasks[0].Guard.EvalBool(GuardEnv(cfg))
		g2, err2 := back.Tasks[0].Guard.EvalBool(GuardEnv(cfg))
		if err1 != nil || err2 != nil || g1 != g2 {
			t.Fatalf("guard diverges at %s", cfg.Key())
		}
	}
	// Transition guard too.
	cur := Config{"dR": Int(80), "c": Enum("lzw"), "l": Int(4)}
	next := cur.With("c", Enum("bzw"))
	if len(back.TransitionAllowed(cur, next)) != 1 {
		t.Fatal("transition guard lost")
	}
	// Format is stable (idempotent).
	if back.Format() != formatted {
		t.Fatal("Format not idempotent")
	}
}

func TestFormatMinimal(t *testing.T) {
	app := MustParse("app tiny;\ncontrol_parameters { int n in {1}; }")
	out := app.Format()
	if !strings.Contains(out, "app tiny;") || !strings.Contains(out, "int n in {1};") {
		t.Fatalf("format:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatal(err)
	}
}

func TestFormatNormalizedGuard(t *testing.T) {
	app := avisApp() // programmatic: guards built by MustParseExpr have sources
	out := app.Format()
	if !strings.Contains(out, "guard ( l >= 2 )") {
		t.Fatalf("guard source lost:\n%s", out)
	}
}
