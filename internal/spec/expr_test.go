package spec

import (
	"testing"
)

func evalNum(t *testing.T, src string, env EvalEnv) float64 {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	r, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	f, ok := r.Num()
	if !ok {
		t.Fatalf("eval %q: not numeric", src)
	}
	return f
}

func evalBool(t *testing.T, src string, env EvalEnv) bool {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	b, err := e.EvalBool(env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return b
}

func emptyEnv(string) (Value, bool) { return Value{}, false }

func TestExprArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2", 3},
		{"2 * 3 + 4", 10},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 / 4", 2.5},
		{"10 % 3", 1},
		{"-5 + 3", -2},
		{"--5", 5},
		{"2 * -3", -6},
		{"1e3 + 1", 1001},
	}
	for _, c := range cases {
		if got := evalNum(t, c.src, emptyEnv); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"4 >= 4", true},
		{"1 == 1", true},
		{"1 != 1", false},
		{"1 + 1 == 2", true},
		{"1 < 2 && 2 < 3", true},
		{"1 < 2 && 2 > 3", false},
		{"1 > 2 || 2 < 3", true},
		{"!(1 < 2)", false},
		{"!0", true},
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, emptyEnv); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprIdentifiers(t *testing.T) {
	cfg := Config{"dR": Int(320), "c": Enum("lzw"), "l": Int(4)}
	env := GuardEnv(cfg)
	if !evalBool(t, "l >= 2 && dR <= 320", env) {
		t.Error("guard should hold")
	}
	if !evalBool(t, "c == lzw", env) {
		t.Error("enum equality with unquoted literal")
	}
	if !evalBool(t, `c == "lzw"`, env) {
		t.Error("enum equality with quoted literal")
	}
	if evalBool(t, "c == bzw", env) {
		t.Error("enum inequality")
	}
	if evalBool(t, "c == 5", env) {
		t.Error("string vs number must be unequal")
	}
	if got := evalNum(t, "dR * 2", env); got != 640 {
		t.Errorf("dR*2 = %v", got)
	}
}

func TestTransitionEnv(t *testing.T) {
	cur := Config{"c": Enum("lzw"), "l": Int(4)}
	next := Config{"c": Enum("bzw"), "l": Int(4)}
	env := TransitionEnv(cur, next)
	if !evalBool(t, "new.c != cur.c", env) {
		t.Error("codec change should fire")
	}
	if evalBool(t, "new.l != cur.l", env) {
		t.Error("level did not change")
	}
	// Bare identifiers resolve against the current configuration.
	if !evalBool(t, "l == 4", env) {
		t.Error("bare ident in transition env")
	}
}

func TestExprErrors(t *testing.T) {
	bad := []string{
		"1 +",
		"(1 + 2",
		"1 ~ 2",
		`"unterminated`,
		"",
		"1 2",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded", src)
		}
	}
	// Runtime errors.
	for _, src := range []string{"1 / 0", "1 % 0", "lzw + 1", "-lzw"} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := e.Eval(emptyEnv); err == nil {
			t.Errorf("Eval(%q) succeeded", src)
		}
	}
}

func TestExprShortCircuit(t *testing.T) {
	// Short-circuiting skips the erroneous right operand.
	e := MustParseExpr("0 && (1/0)")
	r, err := e.Eval(emptyEnv)
	if err != nil || r.Bool() {
		t.Fatalf("short-circuit && failed: %v %v", r, err)
	}
	e = MustParseExpr("1 || (1/0)")
	r, err = e.Eval(emptyEnv)
	if err != nil || !r.Bool() {
		t.Fatalf("short-circuit || failed: %v %v", r, err)
	}
}

func TestExprIdents(t *testing.T) {
	e := MustParseExpr("new.c != cur.c && dR > 2 || l == 3")
	got := e.Idents()
	want := []string{"cur.c", "dR", "l", "new.c"}
	if len(got) != len(want) {
		t.Fatalf("idents %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("idents %v, want %v", got, want)
		}
	}
}

func TestExprString(t *testing.T) {
	e := MustParseExpr("l >= 2 && dR <= 320")
	if e.Source() != "l >= 2 && dR <= 320" {
		t.Fatalf("source %q", e.Source())
	}
	if e.String() != "((l >= 2) && (dR <= 320))" {
		t.Fatalf("normalized %q", e.String())
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseExpr("((")
}
