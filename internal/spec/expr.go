package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// Expr is a parsed guard expression, e.g. "new.c != cur.c" or
// "l >= 2 && dR <= 320". Expressions operate over control-parameter values
// (integers and enumeration symbols), support arithmetic, comparisons, and
// boolean connectives, and are evaluated against an EvalEnv that resolves
// identifiers.
//
// Identifiers that do not resolve in the environment evaluate to
// enumeration literals of their own name, so guards can be written in the
// natural Figure-2 style (c == lzw) without quoting; Validate still checks
// that every identifier is either a parameter or a symbol of some enum
// domain.
type Expr struct {
	root node
	src  string
}

// EvalEnv resolves an identifier to a control-parameter value.
type EvalEnv func(ident string) (Value, bool)

// GuardEnv builds an EvalEnv over a single configuration (task guards).
func GuardEnv(cfg Config) EvalEnv {
	return func(id string) (Value, bool) {
		v, ok := cfg[id]
		return v, ok
	}
}

// TransitionEnv builds an EvalEnv for transition guards: bare identifiers
// and cur.X resolve in the current configuration, new.X in the next.
func TransitionEnv(cur, next Config) EvalEnv {
	return func(id string) (Value, bool) {
		switch {
		case strings.HasPrefix(id, "cur."):
			v, ok := cur[id[4:]]
			return v, ok
		case strings.HasPrefix(id, "new."):
			v, ok := next[id[4:]]
			return v, ok
		default:
			v, ok := cur[id]
			return v, ok
		}
	}
}

// Result is the value of an evaluated expression.
type Result struct {
	isBool bool
	isStr  bool
	b      bool
	f      float64
	s      string
}

func boolResult(b bool) Result   { return Result{isBool: true, b: b} }
func numResult(f float64) Result { return Result{f: f} }
func strResult(s string) Result  { return Result{isStr: true, s: s} }

// Bool interprets the result as a truth value: booleans directly, numbers
// as non-zero, strings as non-empty.
func (r Result) Bool() bool {
	switch {
	case r.isBool:
		return r.b
	case r.isStr:
		return r.s != ""
	default:
		return r.f != 0
	}
}

// Num returns the numeric value (booleans as 0/1; strings report ok=false).
func (r Result) Num() (float64, bool) {
	switch {
	case r.isBool:
		if r.b {
			return 1, true
		}
		return 0, true
	case r.isStr:
		return 0, false
	default:
		return r.f, true
	}
}

// Str returns the string value if the result is a string.
func (r Result) Str() (string, bool) { return r.s, r.isStr }

// ---- AST ----

type node interface {
	eval(env EvalEnv) (Result, error)
	idents(set map[string]bool)
	render(sb *strings.Builder)
}

type litNum struct{ v float64 }

func (n litNum) eval(EvalEnv) (Result, error) { return numResult(n.v), nil }
func (n litNum) idents(map[string]bool)       {}
func (n litNum) render(sb *strings.Builder)   { fmt.Fprintf(sb, "%g", n.v) }

type litStr struct{ v string }

func (n litStr) eval(EvalEnv) (Result, error) { return strResult(n.v), nil }
func (n litStr) idents(map[string]bool)       {}
func (n litStr) render(sb *strings.Builder)   { fmt.Fprintf(sb, "%q", n.v) }

type identNode struct{ name string }

func (n identNode) eval(env EvalEnv) (Result, error) {
	if v, ok := env(n.name); ok {
		if f, isNum := v.Float(); isNum {
			return numResult(f), nil
		}
		return strResult(v.S), nil
	}
	// Unresolved identifier: an enumeration literal.
	return strResult(n.name), nil
}
func (n identNode) idents(set map[string]bool) { set[n.name] = true }
func (n identNode) render(sb *strings.Builder) { sb.WriteString(n.name) }

type unaryNode struct {
	op string
	x  node
}

func (n unaryNode) eval(env EvalEnv) (Result, error) {
	v, err := n.x.eval(env)
	if err != nil {
		return Result{}, err
	}
	switch n.op {
	case "!":
		return boolResult(!v.Bool()), nil
	case "-":
		f, ok := v.Num()
		if !ok {
			return Result{}, fmt.Errorf("spec: unary - applied to string")
		}
		return numResult(-f), nil
	}
	return Result{}, fmt.Errorf("spec: unknown unary operator %q", n.op)
}
func (n unaryNode) idents(set map[string]bool) { n.x.idents(set) }
func (n unaryNode) render(sb *strings.Builder) {
	sb.WriteString(n.op)
	n.x.render(sb)
}

type binaryNode struct {
	op   string
	l, r node
}

func (n binaryNode) idents(set map[string]bool) {
	n.l.idents(set)
	n.r.idents(set)
}

func (n binaryNode) render(sb *strings.Builder) {
	sb.WriteByte('(')
	n.l.render(sb)
	sb.WriteByte(' ')
	sb.WriteString(n.op)
	sb.WriteByte(' ')
	n.r.render(sb)
	sb.WriteByte(')')
}

func (n binaryNode) eval(env EvalEnv) (Result, error) {
	// Short-circuit boolean connectives.
	switch n.op {
	case "&&":
		l, err := n.l.eval(env)
		if err != nil {
			return Result{}, err
		}
		if !l.Bool() {
			return boolResult(false), nil
		}
		r, err := n.r.eval(env)
		if err != nil {
			return Result{}, err
		}
		return boolResult(r.Bool()), nil
	case "||":
		l, err := n.l.eval(env)
		if err != nil {
			return Result{}, err
		}
		if l.Bool() {
			return boolResult(true), nil
		}
		r, err := n.r.eval(env)
		if err != nil {
			return Result{}, err
		}
		return boolResult(r.Bool()), nil
	}
	l, err := n.l.eval(env)
	if err != nil {
		return Result{}, err
	}
	r, err := n.r.eval(env)
	if err != nil {
		return Result{}, err
	}
	switch n.op {
	case "==", "!=":
		eq, err := equalResults(l, r)
		if err != nil {
			return Result{}, err
		}
		if n.op == "!=" {
			eq = !eq
		}
		return boolResult(eq), nil
	}
	lf, lok := l.Num()
	rf, rok := r.Num()
	if !lok || !rok {
		return Result{}, fmt.Errorf("spec: operator %s requires numeric operands", n.op)
	}
	switch n.op {
	case "<":
		return boolResult(lf < rf), nil
	case "<=":
		return boolResult(lf <= rf), nil
	case ">":
		return boolResult(lf > rf), nil
	case ">=":
		return boolResult(lf >= rf), nil
	case "+":
		return numResult(lf + rf), nil
	case "-":
		return numResult(lf - rf), nil
	case "*":
		return numResult(lf * rf), nil
	case "/":
		if rf == 0 {
			return Result{}, fmt.Errorf("spec: division by zero")
		}
		return numResult(lf / rf), nil
	case "%":
		if rf == 0 {
			return Result{}, fmt.Errorf("spec: modulo by zero")
		}
		return numResult(float64(int64(lf) % int64(rf))), nil
	}
	return Result{}, fmt.Errorf("spec: unknown operator %q", n.op)
}

func equalResults(l, r Result) (bool, error) {
	ls, lIsStr := l.Str()
	rs, rIsStr := r.Str()
	if lIsStr && rIsStr {
		return ls == rs, nil
	}
	if lIsStr != rIsStr {
		return false, nil // string never equals number
	}
	lf, _ := l.Num()
	rf, _ := r.Num()
	return lf == rf, nil
}

// ---- Lexer & parser ----

type exprToken struct {
	kind string // "ident", "num", "str", "op", "eof"
	text string
	num  float64
	pos  int
}

type exprLexer struct {
	src  string
	pos  int
	toks []exprToken
}

func lexExpr(src string) ([]exprToken, error) {
	l := &exprLexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && (isDigitByte(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
				((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
				l.pos++
			}
			f, err := strconv.ParseFloat(l.src[start:l.pos], 64)
			if err != nil {
				return nil, fmt.Errorf("spec: bad number at %d: %v", start, err)
			}
			l.toks = append(l.toks, exprToken{kind: "num", num: f, text: l.src[start:l.pos], pos: start})
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
				l.pos++
			}
			// Dotted identifiers: cur.c, new.dR, client.cpu
			for l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isIdentStart(l.src[l.pos+1]) {
				l.pos++
				for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
					l.pos++
				}
			}
			l.toks = append(l.toks, exprToken{kind: "ident", text: l.src[start:l.pos], pos: start})
		case c == '"':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("spec: unterminated string at %d", start-1)
			}
			l.toks = append(l.toks, exprToken{kind: "str", text: l.src[start:l.pos], pos: start})
			l.pos++
		default:
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "&&", "||", "==", "!=", "<=", ">=":
				l.toks = append(l.toks, exprToken{kind: "op", text: two, pos: l.pos})
				l.pos += 2
				continue
			}
			switch c {
			case '!', '<', '>', '+', '-', '*', '/', '%', '(', ')':
				l.toks = append(l.toks, exprToken{kind: "op", text: string(c), pos: l.pos})
				l.pos++
			default:
				return nil, fmt.Errorf("spec: unexpected character %q at %d", c, l.pos)
			}
		}
	}
	l.toks = append(l.toks, exprToken{kind: "eof", pos: len(src)})
	return l.toks, nil
}

func isDigitByte(c byte) bool  { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentByte(c byte) bool  { return c == '_' || unicode.IsLetter(rune(c)) || isDigitByte(c) }

type exprParser struct {
	toks []exprToken
	i    int
}

func (p *exprParser) peek() exprToken { return p.toks[p.i] }
func (p *exprParser) next() exprToken { t := p.toks[p.i]; p.i++; return t }

func (p *exprParser) accept(op string) bool {
	if p.peek().kind == "op" && p.peek().text == op {
		p.i++
		return true
	}
	return false
}

// ParseExpr parses a guard expression.
func ParseExpr(src string) (*Expr, error) {
	toks, err := lexExpr(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != "eof" {
		return nil, fmt.Errorf("spec: trailing input at %d: %q", p.peek().pos, p.peek().text)
	}
	return &Expr{root: n, src: src}, nil
}

// MustParseExpr is ParseExpr that panics on error, for declaring guards in
// code.
func MustParseExpr(src string) *Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *exprParser) parseOr() (node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binaryNode{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) parseAnd() (node, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = binaryNode{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) parseComparison() (node, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			r, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return binaryNode{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *exprParser) parseSum() (node, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = binaryNode{op: "+", l: l, r: r}
		case p.accept("-"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = binaryNode{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseTerm() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binaryNode{op: "*", l: l, r: r}
		case p.accept("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binaryNode{op: "/", l: l, r: r}
		case p.accept("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binaryNode{op: "%", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseUnary() (node, error) {
	if p.accept("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: "!", x: x}, nil
	}
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: "-", x: x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (node, error) {
	t := p.peek()
	switch t.kind {
	case "num":
		p.next()
		return litNum{v: t.num}, nil
	case "str":
		p.next()
		return litStr{v: t.text}, nil
	case "ident":
		p.next()
		return identNode{name: t.text}, nil
	case "op":
		if t.text == "(" {
			p.next()
			n, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.accept(")") {
				return nil, fmt.Errorf("spec: missing ) at %d", p.peek().pos)
			}
			return n, nil
		}
	}
	return nil, fmt.Errorf("spec: unexpected token %q at %d", t.text, t.pos)
}

// Eval evaluates the expression in the given environment.
func (e *Expr) Eval(env EvalEnv) (Result, error) { return e.root.eval(env) }

// EvalBool evaluates and coerces to a truth value.
func (e *Expr) EvalBool(env EvalEnv) (bool, error) {
	r, err := e.root.eval(env)
	if err != nil {
		return false, err
	}
	return r.Bool(), nil
}

// Idents returns the sorted set of identifiers referenced by the
// expression.
func (e *Expr) Idents() []string {
	set := map[string]bool{}
	e.root.idents(set)
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// String renders a normalized (fully parenthesized) form.
func (e *Expr) String() string {
	var sb strings.Builder
	e.root.render(&sb)
	return sb.String()
}
