package spec

import (
	"testing"

	"tunable/internal/resource"
)

// avisApp builds the active-visualization specification programmatically.
func avisApp() *App {
	return &App{
		Name: "active_visualization",
		Params: []Param{
			{Name: "dR", Kind: IntValue, Domain: []Value{Int(80), Int(160), Int(320)}},
			{Name: "c", Kind: EnumValue, Domain: []Value{Enum("lzw"), Enum("bzw")}},
			{Name: "l", Kind: IntValue, Domain: []Value{Int(2), Int(3), Int(4)}},
		},
		Env: Env{
			Hosts: []HostDecl{{Name: "client"}, {Name: "server"}},
			Links: []LinkDecl{{Name: "net", From: "client", To: "server"}},
		},
		Metrics: []MetricDecl{
			{Name: "transmit_time", Unit: "s", Better: LowerIsBetter},
			{Name: "response_time", Unit: "s", Better: LowerIsBetter},
			{Name: "resolution", Better: HigherIsBetter},
		},
		Tasks: []Task{{
			Name:   "module1",
			Params: []string{"dR", "c", "l"},
			Uses: []ResourceRef{
				{Component: "client", Kind: resource.CPU},
				{Component: "client", Kind: resource.Bandwidth},
			},
			Yields: []string{"transmit_time", "response_time", "resolution"},
			Guard:  MustParseExpr("l >= 2"),
		}},
		Transitions: []Transition{{
			Guard:  MustParseExpr("new.c != cur.c"),
			Action: "notify_server",
		}},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := avisApp().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*App)
	}{
		{"no name", func(a *App) { a.Name = "" }},
		{"dup param", func(a *App) { a.Params = append(a.Params, a.Params[0]) }},
		{"empty domain", func(a *App) { a.Params[0].Domain = nil }},
		{"kind mismatch", func(a *App) { a.Params[0].Domain = []Value{Enum("x")} }},
		{"dup host", func(a *App) { a.Env.Hosts = append(a.Env.Hosts, HostDecl{Name: "client"}) }},
		{"bad link", func(a *App) { a.Env.Links[0].To = "nowhere" }},
		{"dup metric", func(a *App) { a.Metrics = append(a.Metrics, a.Metrics[0]) }},
		{"dup task", func(a *App) { a.Tasks = append(a.Tasks, a.Tasks[0]) }},
		{"unknown task param", func(a *App) { a.Tasks[0].Params = []string{"nope"} }},
		{"unknown component", func(a *App) { a.Tasks[0].Uses[0].Component = "mars" }},
		{"unknown metric", func(a *App) { a.Tasks[0].Yields = []string{"nope"} }},
		{"bad task guard ident", func(a *App) { a.Tasks[0].Guard = MustParseExpr("zz > 1") }},
		{"cur in task guard", func(a *App) { a.Tasks[0].Guard = MustParseExpr("cur.l > 1") }},
		{"bad transition ident", func(a *App) { a.Transitions[0].Guard = MustParseExpr("new.zz != 1") }},
	}
	for _, m := range mutations {
		a := avisApp()
		m.mut(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", m.name)
		}
	}
}

func TestEnumerate(t *testing.T) {
	a := avisApp()
	cfgs := a.Enumerate()
	if len(cfgs) != 3*2*3 {
		t.Fatalf("enumerated %d configs, want 18", len(cfgs))
	}
	// Deterministic order: last parameter varies fastest.
	if cfgs[0].Key() != "c=lzw,dR=80,l=2" {
		t.Fatalf("first config %s", cfgs[0].Key())
	}
	if cfgs[1].Key() != "c=lzw,dR=80,l=3" {
		t.Fatalf("second config %s", cfgs[1].Key())
	}
	if cfgs[17].Key() != "c=bzw,dR=320,l=4" {
		t.Fatalf("last config %s", cfgs[17].Key())
	}
	// All distinct.
	seen := map[string]bool{}
	for _, c := range cfgs {
		k := c.Key()
		if seen[k] {
			t.Fatalf("duplicate config %s", k)
		}
		seen[k] = true
	}
}

func TestRunnableConfigsFiltersGuards(t *testing.T) {
	a := avisApp()
	a.Tasks[0].Guard = MustParseExpr("l >= 3")
	got := a.RunnableConfigs()
	if len(got) != 3*2*2 {
		t.Fatalf("runnable %d, want 12", len(got))
	}
	for _, c := range got {
		if c["l"].I < 3 {
			t.Fatalf("config %s violates guard", c.Key())
		}
	}
}

func TestTransitionAllowed(t *testing.T) {
	a := avisApp()
	cur := Config{"dR": Int(80), "c": Enum("lzw"), "l": Int(4)}
	next := cur.With("c", Enum("bzw"))
	actions := a.TransitionAllowed(cur, next)
	if len(actions) != 1 || actions[0] != "notify_server" {
		t.Fatalf("actions %v", actions)
	}
	// No codec change → no action.
	if acts := a.TransitionAllowed(cur, cur.With("l", Int(3))); len(acts) != 0 {
		t.Fatalf("unexpected actions %v", acts)
	}
	// Guard-less transitions always fire.
	a.Transitions = append(a.Transitions, Transition{Action: "always"})
	if acts := a.TransitionAllowed(cur, cur); len(acts) != 1 || acts[0] != "always" {
		t.Fatalf("actions %v", acts)
	}
}

func TestValidateConfig(t *testing.T) {
	a := avisApp()
	good := Config{"dR": Int(80), "c": Enum("lzw"), "l": Int(4)}
	if err := a.ValidateConfig(good); err != nil {
		t.Fatal(err)
	}
	if err := a.ValidateConfig(good.With("l", Int(99))); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
	missing := good.Clone()
	delete(missing, "c")
	if err := a.ValidateConfig(missing); err == nil {
		t.Fatal("missing parameter accepted")
	}
	if err := a.ValidateConfig(good.With("extra", Int(1))); err == nil {
		t.Fatal("extra parameter accepted")
	}
}

func TestConfigKeyRoundTrip(t *testing.T) {
	a := avisApp()
	for _, cfg := range a.Enumerate() {
		parsed, err := a.ParseConfigKey(cfg.Key())
		if err != nil {
			t.Fatal(err)
		}
		if !parsed.Equal(cfg) {
			t.Fatalf("round trip %s → %s", cfg.Key(), parsed.Key())
		}
	}
	if _, err := a.ParseConfigKey("bogus"); err == nil {
		t.Fatal("malformed key accepted")
	}
	if _, err := a.ParseConfigKey("zz=1"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := a.ParseConfigKey("dR=abc"); err == nil {
		t.Fatal("non-integer for int parameter accepted")
	}
}

func TestConfigOps(t *testing.T) {
	c := Config{"a": Int(1)}
	d := c.With("b", Enum("x"))
	if len(c) != 1 {
		t.Fatal("With mutated original")
	}
	if !d.Equal(Config{"a": Int(1), "b": Enum("x")}) {
		t.Fatal("With result")
	}
	if c.Equal(d) {
		t.Fatal("different sizes equal")
	}
	if c.Equal(Config{"a": Int(2)}) {
		t.Fatal("different values equal")
	}
	if c.Equal(Config{"z": Int(1)}) {
		t.Fatal("different keys equal")
	}
	cl := d.Clone()
	cl["a"] = Int(9)
	if d["a"].I != 1 {
		t.Fatal("Clone aliases")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(5).String() != "5" || Enum("x").String() != "x" {
		t.Fatal("String")
	}
	if f, ok := Int(5).Float(); !ok || f != 5 {
		t.Fatal("Float of int")
	}
	if _, ok := Enum("x").Float(); ok {
		t.Fatal("Float of enum")
	}
	if IntValue.String() != "int" || EnumValue.String() != "enum" {
		t.Fatal("kind names")
	}
	if LowerIsBetter.String() != "minimize" || HigherIsBetter.String() != "maximize" {
		t.Fatal("direction names")
	}
}

func TestMetricsClone(t *testing.T) {
	m := Metrics{"a": 1}
	c := m.Clone()
	c["a"] = 2
	if m["a"] != 1 {
		t.Fatal("Clone aliases")
	}
}

func TestLookupHelpers(t *testing.T) {
	a := avisApp()
	if a.Param("dR") == nil || a.Param("zz") != nil {
		t.Fatal("Param lookup")
	}
	if a.Metric("resolution") == nil || a.Metric("zz") != nil {
		t.Fatal("Metric lookup")
	}
	if a.Task("module1") == nil || a.Task("zz") != nil {
		t.Fatal("Task lookup")
	}
	if a.Env.Host("client") == nil || a.Env.Host("zz") != nil {
		t.Fatal("Host lookup")
	}
	if a.Env.Link("net") == nil || a.Env.Link("zz") != nil {
		t.Fatal("Link lookup")
	}
	names := a.ParamNames()
	if len(names) != 3 || names[0] != "dR" {
		t.Fatalf("ParamNames %v", names)
	}
	mnames := a.MetricNames()
	if len(mnames) != 3 || mnames[0] != "resolution" {
		t.Fatalf("MetricNames %v", mnames)
	}
}

func TestTaskDAG(t *testing.T) {
	dag := MustParse(`
app pipeline;
control_parameters { int n in {1}; }
execution_env { host h; }
qos_metric { duration t minimize; }
task fetch { params { n } next { decode, log } }
task decode { next { display } }
task display { }
task log { }
`)
	order, err := dag.TaskOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != 4 {
		t.Fatalf("order %v", order)
	}
	if !(pos["fetch"] < pos["decode"] && pos["decode"] < pos["display"] && pos["fetch"] < pos["log"]) {
		t.Fatalf("topological order violated: %v", order)
	}
}

func TestTaskDAGRejectsCycles(t *testing.T) {
	bad := []string{
		// direct cycle
		`app x; task a { next { b } } task b { next { a } }`,
		// self loop
		`app x; task a { next { a } }`,
		// unknown successor
		`app x; task a { next { ghost } }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestTaskDAGFormatRoundTrip(t *testing.T) {
	src := `
app pipeline;
task fetch { next { decode } }
task decode { }
`
	app := MustParse(src)
	back, err := Parse(app.Format())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Task("fetch").Next) != 1 || back.Task("fetch").Next[0] != "decode" {
		t.Fatalf("next lost: %+v", back.Task("fetch"))
	}
}
