package spec

import (
	"fmt"
	"sort"

	"tunable/internal/resource"
)

// Param declares a control parameter ("knob") and its finite domain.
type Param struct {
	Name   string
	Kind   ValueKind
	Domain []Value // candidate values in declaration order
}

// Contains reports whether v belongs to the parameter's domain.
func (p *Param) Contains(v Value) bool {
	for _, d := range p.Domain {
		if d.Equal(v) {
			return true
		}
	}
	return false
}

// Direction states whether larger or smaller metric values are preferable.
type Direction int

// Metric preference directions.
const (
	LowerIsBetter Direction = iota
	HigherIsBetter
)

func (d Direction) String() string {
	if d == HigherIsBetter {
		return "maximize"
	}
	return "minimize"
}

// MetricDecl declares an application-specific QoS metric (the QoS_metric
// construct of Figure 2).
type MetricDecl struct {
	Name   string
	Unit   string // "s" for durations, "" for dimensionless
	Better Direction
}

// HostDecl declares a host in the execution environment.
type HostDecl struct {
	Name string
}

// LinkDecl declares a network link between two hosts.
type LinkDecl struct {
	Name string
	From string
	To   string
}

// Env is the execution environment: the system components the application
// runs on (the execution_env construct).
type Env struct {
	Hosts []HostDecl
	Links []LinkDecl
}

// Host looks up a host declaration by name.
func (e *Env) Host(name string) *HostDecl {
	for i := range e.Hosts {
		if e.Hosts[i].Name == name {
			return &e.Hosts[i]
		}
	}
	return nil
}

// Link looks up a link declaration by name.
func (e *Env) Link(name string) *LinkDecl {
	for i := range e.Links {
		if e.Links[i].Name == name {
			return &e.Links[i]
		}
	}
	return nil
}

// ResourceRef names a resource of an environment component, e.g.
// client.cpu or net.bandwidth (the [client.CPU, client.network] clause of
// the task construct).
type ResourceRef struct {
	Component string
	Kind      resource.Kind
}

func (r ResourceRef) String() string { return r.Component + "." + string(r.Kind) }

// Task declares a tunable application module (the task construct): the
// parameters that shape it, the resources it consumes, the metrics it
// yields, a guard restricting which configurations may run it, and the
// successor tasks control may flow to — the paper models a tunable
// application as "a family of DAGs built up from individual modules".
type Task struct {
	Name   string
	Params []string
	Uses   []ResourceRef
	Yields []string
	Guard  *Expr    // nil means always runnable
	Next   []string // successor tasks (must form a DAG)
}

// Transition declares a reconfiguration point (the transition construct):
// a guard over the current and next configuration (identifiers cur.X and
// new.X) and a named application-specific action executed when the
// transition fires.
type Transition struct {
	Guard  *Expr // nil means always applicable
	Action string
}

// App is a complete tunability specification.
type App struct {
	Name        string
	Params      []Param
	Env         Env
	Metrics     []MetricDecl
	Tasks       []Task
	Transitions []Transition
}

// Param looks up a parameter declaration by name.
func (a *App) Param(name string) *Param {
	for i := range a.Params {
		if a.Params[i].Name == name {
			return &a.Params[i]
		}
	}
	return nil
}

// Metric looks up a metric declaration by name.
func (a *App) Metric(name string) *MetricDecl {
	for i := range a.Metrics {
		if a.Metrics[i].Name == name {
			return &a.Metrics[i]
		}
	}
	return nil
}

// Task looks up a task declaration by name.
func (a *App) Task(name string) *Task {
	for i := range a.Tasks {
		if a.Tasks[i].Name == name {
			return &a.Tasks[i]
		}
	}
	return nil
}

// Validate checks internal consistency: domains non-empty, task references
// resolve, guards type-check against the parameter environment.
func (a *App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("spec: application has no name")
	}
	seen := map[string]bool{}
	for _, p := range a.Params {
		if seen[p.Name] {
			return fmt.Errorf("spec: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Domain) == 0 {
			return fmt.Errorf("spec: parameter %q has empty domain", p.Name)
		}
		for _, v := range p.Domain {
			if v.Kind != p.Kind {
				return fmt.Errorf("spec: parameter %q: domain value %s has kind %s, want %s",
					p.Name, v, v.Kind, p.Kind)
			}
		}
	}
	hostSeen := map[string]bool{}
	for _, h := range a.Env.Hosts {
		if hostSeen[h.Name] {
			return fmt.Errorf("spec: duplicate host %q", h.Name)
		}
		hostSeen[h.Name] = true
	}
	for _, l := range a.Env.Links {
		if a.Env.Host(l.From) == nil || a.Env.Host(l.To) == nil {
			return fmt.Errorf("spec: link %q references unknown host", l.Name)
		}
	}
	metricSeen := map[string]bool{}
	for _, m := range a.Metrics {
		if metricSeen[m.Name] {
			return fmt.Errorf("spec: duplicate metric %q", m.Name)
		}
		metricSeen[m.Name] = true
	}
	taskSeen := map[string]bool{}
	for _, t := range a.Tasks {
		if taskSeen[t.Name] {
			return fmt.Errorf("spec: duplicate task %q", t.Name)
		}
		taskSeen[t.Name] = true
		for _, pn := range t.Params {
			if a.Param(pn) == nil {
				return fmt.Errorf("spec: task %q references unknown parameter %q", t.Name, pn)
			}
		}
		for _, u := range t.Uses {
			if a.Env.Host(u.Component) == nil && a.Env.Link(u.Component) == nil {
				return fmt.Errorf("spec: task %q uses unknown component %q", t.Name, u.Component)
			}
		}
		for _, y := range t.Yields {
			if a.Metric(y) == nil {
				return fmt.Errorf("spec: task %q yields unknown metric %q", t.Name, y)
			}
		}
		if t.Guard != nil {
			if err := a.checkGuardIdents(t.Guard, false); err != nil {
				return fmt.Errorf("spec: task %q guard: %v", t.Name, err)
			}
		}
		for _, nxt := range t.Next {
			if nxt == t.Name {
				return fmt.Errorf("spec: task %q lists itself as successor", t.Name)
			}
		}
	}
	// Control flow must reference declared tasks and form a DAG.
	for _, t := range a.Tasks {
		for _, nxt := range t.Next {
			if a.Task(nxt) == nil {
				return fmt.Errorf("spec: task %q flows to unknown task %q", t.Name, nxt)
			}
		}
	}
	if _, err := a.TaskOrder(); err != nil {
		return err
	}
	for i, tr := range a.Transitions {
		if tr.Guard != nil {
			if err := a.checkGuardIdents(tr.Guard, true); err != nil {
				return fmt.Errorf("spec: transition %d guard: %v", i, err)
			}
		}
	}
	return nil
}

// checkGuardIdents verifies every identifier in the guard resolves to a
// parameter; transition guards may use the cur./new. prefixes.
func (a *App) checkGuardIdents(e *Expr, allowCurNew bool) error {
	for _, id := range e.Idents() {
		name := id
		switch {
		case len(id) > 4 && id[:4] == "cur.":
			if !allowCurNew {
				return fmt.Errorf("cur. prefix only valid in transition guards (%s)", id)
			}
			name = id[4:]
		case len(id) > 4 && id[:4] == "new.":
			if !allowCurNew {
				return fmt.Errorf("new. prefix only valid in transition guards (%s)", id)
			}
			name = id[4:]
		}
		if a.Param(name) == nil && !a.isEnumSymbol(name) {
			return fmt.Errorf("unknown parameter or enum symbol %q", name)
		}
	}
	return nil
}

// isEnumSymbol reports whether name appears in any enum parameter's domain
// (guards may reference enum literals unquoted, e.g. c == lzw).
func (a *App) isEnumSymbol(name string) bool {
	for _, p := range a.Params {
		if p.Kind != EnumValue {
			continue
		}
		for _, v := range p.Domain {
			if v.S == name {
				return true
			}
		}
	}
	return false
}

// Enumerate returns the full cartesian product of parameter domains in
// deterministic order (parameters in declaration order, last parameter
// varying fastest).
func (a *App) Enumerate() []Config {
	if len(a.Params) == 0 {
		return nil
	}
	out := []Config{}
	idx := make([]int, len(a.Params))
	for {
		cfg := make(Config, len(a.Params))
		for i, p := range a.Params {
			cfg[p.Name] = p.Domain[idx[i]]
		}
		out = append(out, cfg)
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(a.Params[i].Domain) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}

// RunnableConfigs returns the configurations for which every task guard in
// the application evaluates true.
func (a *App) RunnableConfigs() []Config {
	var out []Config
	for _, cfg := range a.Enumerate() {
		ok := true
		for _, t := range a.Tasks {
			if t.Guard == nil {
				continue
			}
			v, err := t.Guard.Eval(GuardEnv(cfg))
			if err != nil || !v.Bool() {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cfg)
		}
	}
	return out
}

// TransitionAllowed evaluates all transition guards for a cur→next change
// and returns the actions whose guards fire. An error from a guard is
// treated as "does not fire".
func (a *App) TransitionAllowed(cur, next Config) (actions []string) {
	env := TransitionEnv(cur, next)
	for _, tr := range a.Transitions {
		if tr.Guard == nil {
			actions = append(actions, tr.Action)
			continue
		}
		v, err := tr.Guard.Eval(env)
		if err == nil && v.Bool() {
			actions = append(actions, tr.Action)
		}
	}
	return actions
}

// ValidateConfig checks that cfg assigns an in-domain value to every
// declared parameter.
func (a *App) ValidateConfig(cfg Config) error {
	if len(cfg) != len(a.Params) {
		return fmt.Errorf("spec: config has %d parameters, app declares %d", len(cfg), len(a.Params))
	}
	for _, p := range a.Params {
		v, ok := cfg[p.Name]
		if !ok {
			return fmt.Errorf("spec: config missing parameter %q", p.Name)
		}
		if !p.Contains(v) {
			return fmt.Errorf("spec: parameter %q: value %s outside domain", p.Name, v)
		}
	}
	return nil
}

// TaskOrder returns a deterministic topological ordering of the task DAG
// (declaration order among tasks whose predecessors are all scheduled),
// or an error if the control flow contains a cycle.
func (a *App) TaskOrder() ([]string, error) {
	if len(a.Tasks) == 0 {
		return nil, nil
	}
	indeg := map[string]int{}
	for _, t := range a.Tasks {
		if _, ok := indeg[t.Name]; !ok {
			indeg[t.Name] = 0
		}
		for _, nxt := range t.Next {
			indeg[nxt]++
		}
	}
	var order []string
	scheduled := map[string]bool{}
	for len(order) < len(a.Tasks) {
		progressed := false
		for _, t := range a.Tasks {
			if scheduled[t.Name] || indeg[t.Name] != 0 {
				continue
			}
			scheduled[t.Name] = true
			order = append(order, t.Name)
			for _, nxt := range t.Next {
				indeg[nxt]--
			}
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("spec: task control flow contains a cycle")
		}
	}
	return order, nil
}

// ParamNames returns parameter names in declaration order.
func (a *App) ParamNames() []string {
	names := make([]string, len(a.Params))
	for i, p := range a.Params {
		names[i] = p.Name
	}
	return names
}

// MetricNames returns declared metric names sorted alphabetically.
func (a *App) MetricNames() []string {
	names := make([]string, len(a.Metrics))
	for i, m := range a.Metrics {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}
