package spec

import (
	"fmt"
	"strconv"
	"strings"

	"tunable/internal/resource"
)

// Parse reads a tunability specification in the textual annotation
// language modeled on Figure 2 of the paper. Example:
//
//	app active_visualization;
//
//	control_parameters {
//	    int dR in {80, 160, 320};   // incremental fovea size
//	    enum c in {lzw, bzw};       // compression type
//	    int l in {2, 3, 4};         // resolution level
//	}
//
//	execution_env {
//	    host client;
//	    host server;
//	    link net from client to server;
//	}
//
//	qos_metric {
//	    duration transmit_time minimize;
//	    duration response_time minimize;
//	    scalar resolution maximize;
//	}
//
//	task module1 {
//	    params { dR, c, l }
//	    uses { client.cpu, client.bandwidth, server.cpu }
//	    yields { transmit_time, response_time, resolution }
//	    guard ( l >= 2 )
//	}
//
//	transition {
//	    guard ( new.c != cur.c )
//	    action notify_server;
//	}
//
// Line comments (//) and block comments (/* */) are permitted anywhere.
func Parse(src string) (*App, error) {
	s := &scanner{src: src}
	app := &App{}
	if err := s.expectIdent("app"); err != nil {
		return nil, err
	}
	name, err := s.ident()
	if err != nil {
		return nil, err
	}
	app.Name = name
	if err := s.expect(";"); err != nil {
		return nil, err
	}
	for {
		s.skipSpace()
		if s.eof() {
			break
		}
		kw, err := s.ident()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "control_parameters":
			if err := s.parseParams(app); err != nil {
				return nil, err
			}
		case "execution_env":
			if err := s.parseEnv(app); err != nil {
				return nil, err
			}
		case "qos_metric":
			if err := s.parseMetrics(app); err != nil {
				return nil, err
			}
		case "task":
			if err := s.parseTask(app); err != nil {
				return nil, err
			}
		case "transition":
			if err := s.parseTransition(app); err != nil {
				return nil, err
			}
		default:
			return nil, s.errorf("unknown section %q", kw)
		}
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// MustParse is Parse that panics on error, for embedding specifications in
// code and tests.
func MustParse(src string) *App {
	app, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return app
}

type scanner struct {
	src string
	pos int
}

func (s *scanner) eof() bool { return s.pos >= len(s.src) }

func (s *scanner) errorf(format string, args ...any) error {
	line := 1 + strings.Count(s.src[:s.pos], "\n")
	return fmt.Errorf("spec: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (s *scanner) skipSpace() {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			s.pos++
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '/':
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.pos++
			}
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '*':
			s.pos += 2
			for s.pos+1 < len(s.src) && !(s.src[s.pos] == '*' && s.src[s.pos+1] == '/') {
				s.pos++
			}
			s.pos += 2
		default:
			return
		}
	}
}

func (s *scanner) ident() (string, error) {
	s.skipSpace()
	if s.eof() || !isIdentStart(s.src[s.pos]) {
		return "", s.errorf("expected identifier")
	}
	start := s.pos
	for s.pos < len(s.src) && isIdentByte(s.src[s.pos]) {
		s.pos++
	}
	return s.src[start:s.pos], nil
}

// dottedIdent reads name or name.name.
func (s *scanner) dottedIdent() (string, error) {
	first, err := s.ident()
	if err != nil {
		return "", err
	}
	if s.pos < len(s.src) && s.src[s.pos] == '.' {
		s.pos++
		second, err := s.ident()
		if err != nil {
			return "", err
		}
		return first + "." + second, nil
	}
	return first, nil
}

func (s *scanner) expect(tok string) error {
	s.skipSpace()
	if strings.HasPrefix(s.src[s.pos:], tok) {
		s.pos += len(tok)
		return nil
	}
	got := s.src[s.pos:]
	if len(got) > 12 {
		got = got[:12]
	}
	return s.errorf("expected %q, found %q", tok, got)
}

func (s *scanner) expectIdent(want string) error {
	got, err := s.ident()
	if err != nil {
		return err
	}
	if got != want {
		return s.errorf("expected %q, found %q", want, got)
	}
	return nil
}

func (s *scanner) peekIs(tok string) bool {
	s.skipSpace()
	return strings.HasPrefix(s.src[s.pos:], tok)
}

func (s *scanner) int() (int, error) {
	s.skipSpace()
	start := s.pos
	if s.pos < len(s.src) && (s.src[s.pos] == '-' || s.src[s.pos] == '+') {
		s.pos++
	}
	for s.pos < len(s.src) && isDigitByte(s.src[s.pos]) {
		s.pos++
	}
	if start == s.pos {
		return 0, s.errorf("expected integer")
	}
	return strconv.Atoi(s.src[start:s.pos])
}

// balancedParen consumes "( ... )" with nesting and returns the interior.
func (s *scanner) balancedParen() (string, error) {
	if err := s.expect("("); err != nil {
		return "", err
	}
	depth := 1
	start := s.pos
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				inner := s.src[start:s.pos]
				s.pos++
				return inner, nil
			}
		}
		s.pos++
	}
	return "", s.errorf("unterminated parenthesis")
}

func (s *scanner) parseParams(app *App) error {
	if err := s.expect("{"); err != nil {
		return err
	}
	for !s.peekIs("}") {
		kindName, err := s.ident()
		if err != nil {
			return err
		}
		var kind ValueKind
		switch kindName {
		case "int":
			kind = IntValue
		case "enum":
			kind = EnumValue
		default:
			return s.errorf("unknown parameter type %q", kindName)
		}
		name, err := s.ident()
		if err != nil {
			return err
		}
		if err := s.expectIdent("in"); err != nil {
			return err
		}
		if err := s.expect("{"); err != nil {
			return err
		}
		var domain []Value
		for {
			if kind == IntValue {
				n, err := s.int()
				if err != nil {
					return err
				}
				domain = append(domain, Int(n))
			} else {
				sym, err := s.ident()
				if err != nil {
					return err
				}
				domain = append(domain, Enum(sym))
			}
			if s.peekIs(",") {
				s.expect(",")
				continue
			}
			break
		}
		if err := s.expect("}"); err != nil {
			return err
		}
		if err := s.expect(";"); err != nil {
			return err
		}
		app.Params = append(app.Params, Param{Name: name, Kind: kind, Domain: domain})
	}
	return s.expect("}")
}

func (s *scanner) parseEnv(app *App) error {
	if err := s.expect("{"); err != nil {
		return err
	}
	for !s.peekIs("}") {
		kw, err := s.ident()
		if err != nil {
			return err
		}
		switch kw {
		case "host":
			name, err := s.ident()
			if err != nil {
				return err
			}
			app.Env.Hosts = append(app.Env.Hosts, HostDecl{Name: name})
		case "link":
			name, err := s.ident()
			if err != nil {
				return err
			}
			if err := s.expectIdent("from"); err != nil {
				return err
			}
			from, err := s.ident()
			if err != nil {
				return err
			}
			if err := s.expectIdent("to"); err != nil {
				return err
			}
			to, err := s.ident()
			if err != nil {
				return err
			}
			app.Env.Links = append(app.Env.Links, LinkDecl{Name: name, From: from, To: to})
		default:
			return s.errorf("unknown environment component %q", kw)
		}
		if err := s.expect(";"); err != nil {
			return err
		}
	}
	return s.expect("}")
}

func (s *scanner) parseMetrics(app *App) error {
	if err := s.expect("{"); err != nil {
		return err
	}
	for !s.peekIs("}") {
		unitName, err := s.ident()
		if err != nil {
			return err
		}
		var unit string
		switch unitName {
		case "duration":
			unit = "s"
		case "scalar":
			unit = ""
		case "bytes":
			unit = "B"
		default:
			return s.errorf("unknown metric unit %q (want duration, scalar, or bytes)", unitName)
		}
		name, err := s.ident()
		if err != nil {
			return err
		}
		dirName, err := s.ident()
		if err != nil {
			return err
		}
		var dir Direction
		switch dirName {
		case "minimize":
			dir = LowerIsBetter
		case "maximize":
			dir = HigherIsBetter
		default:
			return s.errorf("unknown direction %q (want minimize or maximize)", dirName)
		}
		if err := s.expect(";"); err != nil {
			return err
		}
		app.Metrics = append(app.Metrics, MetricDecl{Name: name, Unit: unit, Better: dir})
	}
	return s.expect("}")
}

func (s *scanner) parseTask(app *App) error {
	name, err := s.ident()
	if err != nil {
		return err
	}
	t := Task{Name: name}
	if err := s.expect("{"); err != nil {
		return err
	}
	for !s.peekIs("}") {
		kw, err := s.ident()
		if err != nil {
			return err
		}
		switch kw {
		case "params":
			names, err := s.identList()
			if err != nil {
				return err
			}
			t.Params = names
		case "uses":
			names, err := s.identList()
			if err != nil {
				return err
			}
			for _, n := range names {
				parts := strings.SplitN(n, ".", 2)
				if len(parts) != 2 {
					return s.errorf("resource reference %q must be component.resource", n)
				}
				t.Uses = append(t.Uses, ResourceRef{Component: parts[0], Kind: resource.Kind(parts[1])})
			}
		case "yields":
			names, err := s.identList()
			if err != nil {
				return err
			}
			t.Yields = names
		case "next":
			names, err := s.identList()
			if err != nil {
				return err
			}
			t.Next = names
		case "guard":
			src, err := s.balancedParen()
			if err != nil {
				return err
			}
			expr, err := ParseExpr(src)
			if err != nil {
				return err
			}
			t.Guard = expr
		default:
			return s.errorf("unknown task clause %q", kw)
		}
	}
	if err := s.expect("}"); err != nil {
		return err
	}
	app.Tasks = append(app.Tasks, t)
	return nil
}

// identList parses "{ a, b.c, d }" and returns the (possibly dotted)
// identifiers.
func (s *scanner) identList() ([]string, error) {
	if err := s.expect("{"); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := s.dottedIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if s.peekIs(",") {
			s.expect(",")
			continue
		}
		break
	}
	if err := s.expect("}"); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *scanner) parseTransition(app *App) error {
	tr := Transition{}
	if err := s.expect("{"); err != nil {
		return err
	}
	for !s.peekIs("}") {
		kw, err := s.ident()
		if err != nil {
			return err
		}
		switch kw {
		case "guard":
			src, err := s.balancedParen()
			if err != nil {
				return err
			}
			expr, err := ParseExpr(src)
			if err != nil {
				return err
			}
			tr.Guard = expr
		case "action":
			name, err := s.ident()
			if err != nil {
				return err
			}
			if err := s.expect(";"); err != nil {
				return err
			}
			tr.Action = name
		default:
			return s.errorf("unknown transition clause %q", kw)
		}
	}
	if err := s.expect("}"); err != nil {
		return err
	}
	app.Transitions = append(app.Transitions, tr)
	return nil
}
