// Package spec implements the paper's tunability specification (Section 4):
// control parameters and their domains, the execution environment, QoS
// metrics, tunable task modules, and configuration transitions with guard
// expressions. Applications can be described either programmatically
// through the builder API or in the textual annotation language that
// mirrors Figure 2 of the paper (see Parse).
package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ValueKind discriminates control-parameter value types.
type ValueKind int

// Value kinds.
const (
	IntValue ValueKind = iota
	EnumValue
)

func (k ValueKind) String() string {
	switch k {
	case IntValue:
		return "int"
	case EnumValue:
		return "enum"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// Value is a control-parameter value: an integer or an enumeration symbol.
type Value struct {
	Kind ValueKind
	I    int
	S    string
}

// Int returns an integer value.
func Int(i int) Value { return Value{Kind: IntValue, I: i} }

// Enum returns an enumeration value.
func Enum(s string) Value { return Value{Kind: EnumValue, S: s} }

// String renders the value.
func (v Value) String() string {
	if v.Kind == IntValue {
		return strconv.Itoa(v.I)
	}
	return v.S
}

// Equal reports whether two values are identical in kind and content.
func (v Value) Equal(w Value) bool { return v.Kind == w.Kind && v.I == w.I && v.S == w.S }

// Float returns the numeric interpretation of the value (enums have no
// numeric interpretation and report ok=false).
func (v Value) Float() (float64, bool) {
	if v.Kind == IntValue {
		return float64(v.I), true
	}
	return 0, false
}

// Config is an assignment of values to control parameters — one point in
// the application's configuration space. The paper refers to a Config plus
// the code path it selects as an "application configuration".
type Config map[string]Value

// Clone returns a copy of c.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// With returns a copy of c with parameter name set to v.
func (c Config) With(name string, v Value) Config {
	out := c.Clone()
	out[name] = v
	return out
}

// Equal reports whether two configurations assign identical values to the
// same parameters.
func (c Config) Equal(d Config) bool {
	if len(c) != len(d) {
		return false
	}
	for k, v := range c {
		w, ok := d[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// Key renders a canonical, deterministic identifier such as
// "c=lzw,dR=320,l=4"; it is used as the database key and as the task
// instantiation handle (the paper's module[l][dR][c] name-value notation).
func (c Config) Key() string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + c[n].String()
	}
	return strings.Join(parts, ",")
}

// ParseConfigKey parses a Key back into a Config, resolving each
// parameter's kind against the application's parameter declarations.
func (a *App) ParseConfigKey(key string) (Config, error) {
	cfg := Config{}
	if key == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(key, ",") {
		nv := strings.SplitN(part, "=", 2)
		if len(nv) != 2 {
			return nil, fmt.Errorf("spec: malformed config key segment %q", part)
		}
		p := a.Param(nv[0])
		if p == nil {
			return nil, fmt.Errorf("spec: unknown parameter %q in config key", nv[0])
		}
		switch p.Kind {
		case IntValue:
			i, err := strconv.Atoi(nv[1])
			if err != nil {
				return nil, fmt.Errorf("spec: parameter %s: %v", nv[0], err)
			}
			cfg[nv[0]] = Int(i)
		case EnumValue:
			cfg[nv[0]] = Enum(nv[1])
		}
	}
	return cfg, nil
}

// Metrics is a measured or predicted set of QoS metric values keyed by
// metric name. Units are seconds for durations and dimensionless for
// levels/ratios; the App's metric declarations record intent.
type Metrics map[string]float64

// Clone returns a copy of m.
func (m Metrics) Clone() Metrics {
	out := make(Metrics, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
