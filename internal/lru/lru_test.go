package lru

import (
	"testing"
	"time"
)

func TestEntryBoundEvictsLeastRecent(t *testing.T) {
	var evicted []string
	p := New[string, int](Config{MaxEntries: 2}, func(k string, _ int, why Reason) {
		if why == Capacity {
			evicted = append(evicted, k)
		}
	})
	p.Put("a", 1, 1)
	p.Put("b", 2, 1)
	if _, ok := p.Get("a"); !ok { // bump a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	p.Put("c", 3, 1)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, ok := p.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := p.Get("a"); !ok {
		t.Fatal("a (recently used) should survive")
	}
	if p.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", p.Evictions())
	}
}

func TestCostBound(t *testing.T) {
	p := New[string, string](Config{MaxCost: 100}, nil)
	p.Put("a", "x", 60)
	p.Put("b", "y", 30)
	p.Put("c", "z", 40) // cost 130 > 100: a (LRU) goes
	if _, ok := p.Get("a"); ok {
		t.Fatal("a should have been evicted on cost pressure")
	}
	if p.Cost() != 70 {
		t.Fatalf("Cost = %d, want 70", p.Cost())
	}
	// An oversized entry is admitted and evicts everything else.
	p.Put("huge", "H", 500)
	if _, ok := p.Get("huge"); !ok {
		t.Fatal("oversized entry must still be admitted")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d after oversized insert, want 1", p.Len())
	}
}

func TestReplaceSameKey(t *testing.T) {
	replaced := 0
	p := New[string, int](Config{MaxEntries: 4}, func(_ string, _ int, why Reason) {
		if why == Replaced {
			replaced++
		}
	})
	p.Put("k", 1, 10)
	p.Put("k", 2, 20)
	if v, ok := p.Get("k"); !ok || v != 2 {
		t.Fatalf("Get(k) = %d,%v, want 2,true", v, ok)
	}
	if p.Cost() != 20 || p.Len() != 1 || replaced != 1 {
		t.Fatalf("cost=%d len=%d replaced=%d, want 20,1,1", p.Cost(), p.Len(), replaced)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Duration(0)
	expired := 0
	p := New[string, int](Config{TTL: 100 * time.Millisecond, Now: func() time.Duration { return now }},
		func(_ string, _ int, why Reason) {
			if why == Expired {
				expired++
			}
		})
	p.Put("a", 1, 1)
	now = 50 * time.Millisecond
	if _, ok := p.Get("a"); !ok {
		t.Fatal("a expired too early")
	}
	now = 200 * time.Millisecond
	if _, ok := p.Get("a"); ok {
		t.Fatal("a should have expired")
	}
	if expired != 1 || p.Len() != 0 {
		t.Fatalf("expired=%d len=%d, want 1,0", expired, p.Len())
	}
	// Sweep drops expired entries without a Get.
	p.Put("b", 2, 1)
	p.Put("c", 3, 1)
	now += 300 * time.Millisecond
	if n := p.ExpireSweep(); n != 2 {
		t.Fatalf("ExpireSweep = %d, want 2", n)
	}
}

func TestPeekDoesNotBump(t *testing.T) {
	p := New[string, int](Config{MaxEntries: 2}, nil)
	p.Put("a", 1, 1)
	p.Put("b", 2, 1)
	if _, ok := p.Peek("a"); !ok { // peek must NOT rescue a from LRU
		t.Fatal("a missing")
	}
	p.Put("c", 3, 1)
	if _, ok := p.Peek("a"); ok {
		t.Fatal("a should have been evicted despite the Peek")
	}
}

func TestRemove(t *testing.T) {
	p := New[string, int](Config{}, nil)
	p.Put("a", 1, 5)
	if !p.Remove("a") || p.Remove("a") {
		t.Fatal("Remove should report presence exactly once")
	}
	if p.Len() != 0 || p.Cost() != 0 || p.Evictions() != 0 {
		t.Fatalf("len=%d cost=%d evictions=%d after Remove, want zeros", p.Len(), p.Cost(), p.Evictions())
	}
}
