// Package lru is the shared cache-replacement policy core of the repo's
// bounded caches: a recency list with optional TTL expiry, bounded by
// entry count and by total cost (bytes, usually). It is deliberately
// unsynchronized — every consumer (the edge chunk cache, the avis image
// store) already owns a mutex that guards its map plus its single-flight
// bookkeeping, and sharing that lock with the policy avoids a second
// layer of locking on the hot path. The clock is injected so the same
// policy runs under wall time and under the deterministic test clocks.
package lru

import (
	"container/list"
	"time"
)

// Reason says why an entry left the cache; eviction callbacks receive it
// so consumers can count capacity pressure separately from TTL expiry.
type Reason uint8

// Eviction reasons.
const (
	Capacity Reason = iota // evicted to make room (LRU victim)
	Expired                // TTL elapsed
	Replaced               // overwritten by a Put of the same key
	Removed                // explicitly removed by the caller
)

// String renders the reason for logs and metric labels (a closed set:
// capacity, expired, replaced, removed).
func (r Reason) String() string {
	switch r {
	case Capacity:
		return "capacity"
	case Expired:
		return "expired"
	case Replaced:
		return "replaced"
	case Removed:
		return "removed"
	}
	return "unknown"
}

// Config bounds a Policy. Zero values disable the corresponding bound.
type Config struct {
	MaxEntries int           // maximum live entries (0 = unlimited)
	MaxCost    int64         // maximum summed entry cost (0 = unlimited)
	TTL        time.Duration // per-entry lifetime from Put (0 = no expiry)
	// Now is the clock TTL expiry reads (monotone duration on any epoch).
	// Required when TTL > 0; ignored otherwise.
	Now func() time.Duration
}

// entry is one cache slot on the recency list.
type entry[K comparable, V any] struct {
	key      K
	val      V
	cost     int64
	storedAt time.Duration
}

// Policy is the LRU+TTL replacement core. Not safe for concurrent use;
// callers hold their own lock across every method.
type Policy[K comparable, V any] struct {
	cfg     Config
	onEvict func(K, V, Reason)
	ll      *list.List // front = most recent
	idx     map[K]*list.Element
	cost    int64
	evicted int64
}

// New creates an empty policy. onEvict (may be nil) runs synchronously
// for every entry that leaves the cache, with the reason.
func New[K comparable, V any](cfg Config, onEvict func(K, V, Reason)) *Policy[K, V] {
	if cfg.TTL > 0 && cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	return &Policy[K, V]{
		cfg:     cfg,
		onEvict: onEvict,
		ll:      list.New(),
		idx:     make(map[K]*list.Element),
	}
}

// Len reports the number of live entries.
func (p *Policy[K, V]) Len() int { return p.ll.Len() }

// Cost reports the summed cost of live entries.
func (p *Policy[K, V]) Cost() int64 { return p.cost }

// Evictions reports how many entries have left the cache for any reason
// other than an explicit Remove.
func (p *Policy[K, V]) Evictions() int64 { return p.evicted }

// expired reports whether e has outlived the TTL.
func (p *Policy[K, V]) expired(e *entry[K, V]) bool {
	return p.cfg.TTL > 0 && p.cfg.Now()-e.storedAt > p.cfg.TTL
}

// drop unlinks el and fires the eviction callback.
func (p *Policy[K, V]) drop(el *list.Element, why Reason) {
	e := el.Value.(*entry[K, V])
	p.ll.Remove(el)
	delete(p.idx, e.key)
	p.cost -= e.cost
	if why != Removed {
		p.evicted++
	}
	if p.onEvict != nil {
		p.onEvict(e.key, e.val, why)
	}
}

// Get returns the value under k, bumping its recency. A TTL-expired
// entry is dropped and reported as absent.
func (p *Policy[K, V]) Get(k K) (V, bool) {
	var zero V
	el, ok := p.idx[k]
	if !ok {
		return zero, false
	}
	e := el.Value.(*entry[K, V])
	if p.expired(e) {
		p.drop(el, Expired)
		return zero, false
	}
	p.ll.MoveToFront(el)
	return e.val, true
}

// Peek returns the value under k without bumping recency (used by
// prewarm probes that must not distort the replacement order).
func (p *Policy[K, V]) Peek(k K) (V, bool) {
	var zero V
	el, ok := p.idx[k]
	if !ok {
		return zero, false
	}
	e := el.Value.(*entry[K, V])
	if p.expired(e) {
		p.drop(el, Expired)
		return zero, false
	}
	return e.val, true
}

// Put inserts (or replaces) the value under k with the given cost, then
// evicts least-recent entries until both bounds hold again. An entry
// larger than MaxCost by itself is still admitted — it just evicts
// everything else — so a pathological bound never silently refuses work.
func (p *Policy[K, V]) Put(k K, v V, cost int64) {
	if el, ok := p.idx[k]; ok {
		p.drop(el, Replaced)
	}
	e := &entry[K, V]{key: k, val: v, cost: cost}
	if p.cfg.TTL > 0 {
		e.storedAt = p.cfg.Now()
	}
	p.idx[k] = p.ll.PushFront(e)
	p.cost += cost
	for p.overfullLocked() {
		back := p.ll.Back()
		if back == nil || back == p.ll.Front() {
			break // never evict the entry just inserted
		}
		p.drop(back, Capacity)
	}
}

// overfullLocked reports whether either bound is exceeded.
func (p *Policy[K, V]) overfullLocked() bool {
	if p.cfg.MaxEntries > 0 && p.ll.Len() > p.cfg.MaxEntries {
		return true
	}
	if p.cfg.MaxCost > 0 && p.cost > p.cfg.MaxCost {
		return true
	}
	return false
}

// Remove deletes k if present, reporting whether it was.
func (p *Policy[K, V]) Remove(k K) bool {
	el, ok := p.idx[k]
	if !ok {
		return false
	}
	p.drop(el, Removed)
	return true
}

// ExpireSweep drops every TTL-expired entry now and returns how many it
// dropped; callers with idle periods use it to bound memory between hits.
func (p *Policy[K, V]) ExpireSweep() int {
	if p.cfg.TTL <= 0 {
		return 0
	}
	n := 0
	for el := p.ll.Back(); el != nil; {
		prev := el.Prev()
		if e := el.Value.(*entry[K, V]); p.expired(e) {
			p.drop(el, Expired)
			n++
		}
		el = prev
	}
	return n
}
