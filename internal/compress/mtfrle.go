package compress

import "fmt"

// rle1Encode performs the Bzip2-style pre-transform run-length encoding:
// runs of 4–259 equal bytes become the four bytes followed by a count
// byte (run length − 4). It bounds the cost of the suffix sort on highly
// repetitive input.
func rle1Encode(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(src)/4)
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 259 {
			run++
		}
		if run >= 4 {
			out = append(out, b, b, b, b, byte(run-4))
		} else {
			for k := 0; k < run; k++ {
				out = append(out, b)
			}
		}
		i += run
	}
	return out
}

// rle1Decode inverts rle1Encode.
func rle1Decode(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)*2)
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for run < 4 && i+run < len(src) && src[i+run] == b {
			run++
		}
		if run == 4 {
			if i+4 >= len(src) {
				return nil, fmt.Errorf("compress: rle1 truncated run")
			}
			extra := int(src[i+4])
			for k := 0; k < 4+extra; k++ {
				out = append(out, b)
			}
			i += 5
			continue
		}
		for k := 0; k < run; k++ {
			out = append(out, b)
		}
		i += run
	}
	return out, nil
}

// mtfEncode applies the move-to-front transform.
func mtfEncode(src []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, b := range src {
		var j int
		for table[j] != b {
			j++
		}
		out[i] = byte(j)
		copy(table[1:j+1], table[:j])
		table[0] = b
	}
	return out
}

// mtfDecode inverts mtfEncode.
func mtfDecode(src []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, j := range src {
		b := table[j]
		out[i] = b
		copy(table[1:int(j)+1], table[:j])
		table[0] = b
	}
	return out
}

// zrleEncode run-length-codes the zero bytes that dominate MTF output:
// each zero run becomes a 0x00 marker followed by length bytes (255 means
// "255 and continue"). Non-zero bytes pass through.
func zrleEncode(src []byte) []byte {
	out := make([]byte, 0, len(src))
	i := 0
	for i < len(src) {
		if src[i] != 0 {
			out = append(out, src[i])
			i++
			continue
		}
		run := 0
		for i+run < len(src) && src[i+run] == 0 {
			run++
		}
		i += run
		out = append(out, 0)
		for run >= 255 {
			out = append(out, 255)
			run -= 255
		}
		out = append(out, byte(run))
	}
	return out
}

// zrleDecode inverts zrleEncode.
func zrleDecode(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)*2)
	i := 0
	for i < len(src) {
		b := src[i]
		i++
		if b != 0 {
			out = append(out, b)
			continue
		}
		run := 0
		for {
			if i >= len(src) {
				return nil, fmt.Errorf("compress: zrle truncated run length")
			}
			c := src[i]
			i++
			run += int(c)
			if c != 255 {
				break
			}
		}
		for k := 0; k < run; k++ {
			out = append(out, 0)
		}
	}
	return out, nil
}
