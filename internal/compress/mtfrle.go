package compress

import "fmt"

// rle1Encode performs the Bzip2-style pre-transform run-length encoding:
// runs of 4–259 equal bytes become the four bytes followed by a count
// byte (run length − 4). It bounds the cost of the suffix sort on highly
// repetitive input.
func rle1Encode(src []byte) []byte {
	return rle1AppendEncode(make([]byte, 0, len(src)+len(src)/4), src)
}

func rle1AppendEncode(dst, src []byte) []byte {
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 259 {
			run++
		}
		if run >= 4 {
			dst = append(dst, b, b, b, b, byte(run-4))
		} else {
			for k := 0; k < run; k++ {
				dst = append(dst, b)
			}
		}
		i += run
	}
	return dst
}

// rle1Decode inverts rle1Encode.
func rle1Decode(src []byte) ([]byte, error) {
	return rle1AppendDecode(make([]byte, 0, len(src)*2), src)
}

func rle1AppendDecode(dst, src []byte) ([]byte, error) {
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for run < 4 && i+run < len(src) && src[i+run] == b {
			run++
		}
		if run == 4 {
			if i+4 >= len(src) {
				return nil, fmt.Errorf("compress: rle1 truncated run")
			}
			extra := int(src[i+4])
			base := len(dst)
			dst = growBytes(dst, 4+extra)
			fill := dst[base:]
			for k := range fill {
				fill[k] = b
			}
			i += 5
			continue
		}
		for k := 0; k < run; k++ {
			dst = append(dst, b)
		}
		i += run
	}
	return dst, nil
}

// mtfEncode applies the move-to-front transform.
func mtfEncode(src []byte) []byte {
	out := make([]byte, len(src))
	mtfEncodeInto(out, src)
	return out
}

// mtfEncodeInto writes the transform of src into dst (len(dst) ≥ len(src)).
func mtfEncodeInto(dst, src []byte) {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	for i, b := range src {
		var j int
		for table[j] != b {
			j++
		}
		dst[i] = byte(j)
		copy(table[1:j+1], table[:j])
		table[0] = b
	}
}

// mtfDecode inverts mtfEncode.
func mtfDecode(src []byte) []byte {
	out := make([]byte, len(src))
	mtfDecodeInto(out, src)
	return out
}

// mtfDecodeInto writes the inverse transform of src into dst.
func mtfDecodeInto(dst, src []byte) {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	for i, j := range src {
		b := table[j]
		dst[i] = b
		copy(table[1:int(j)+1], table[:j])
		table[0] = b
	}
}

// zrleEncode run-length-codes the zero bytes that dominate MTF output:
// each zero run becomes a 0x00 marker followed by length bytes (255 means
// "255 and continue"). Non-zero bytes pass through.
func zrleEncode(src []byte) []byte {
	return zrleAppendEncode(make([]byte, 0, len(src)), src)
}

func zrleAppendEncode(dst, src []byte) []byte {
	i := 0
	for i < len(src) {
		if src[i] != 0 {
			dst = append(dst, src[i])
			i++
			continue
		}
		run := 0
		for i+run < len(src) && src[i+run] == 0 {
			run++
		}
		i += run
		dst = append(dst, 0)
		for run >= 255 {
			dst = append(dst, 255)
			run -= 255
		}
		dst = append(dst, byte(run))
	}
	return dst
}

// zrleDecode inverts zrleEncode.
func zrleDecode(src []byte) ([]byte, error) {
	return zrleAppendDecode(make([]byte, 0, len(src)*2), src)
}

func zrleAppendDecode(dst, src []byte) ([]byte, error) {
	i := 0
	for i < len(src) {
		b := src[i]
		i++
		if b != 0 {
			dst = append(dst, b)
			continue
		}
		run := 0
		for {
			if i >= len(src) {
				return nil, fmt.Errorf("compress: zrle truncated run length")
			}
			c := src[i]
			i++
			run += int(c)
			if c != 255 {
				break
			}
		}
		base := len(dst)
		dst = growBytes(dst, run)
		zero := dst[base:]
		for k := range zero {
			zero[k] = 0
		}
	}
	return dst, nil
}
