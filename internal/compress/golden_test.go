package compress

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden testdata files")

// goldenInputs are fixed, deterministic payloads with the character of the
// wavelet coefficient streams the codecs carry in production: zero runs,
// small signed values, repetitive structure, and noise. The encoded bytes
// for each (codec, input) pair are pinned in testdata/ so kernel rewrites
// cannot drift the wire format.
func goldenInputs() []struct {
	name string
	data []byte
} {
	mk := func(n int, f func(i int) byte) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = f(i)
		}
		return out
	}
	return []struct {
		name string
		data []byte
	}{
		{"empty", []byte{}},
		{"one", []byte{42}},
		{"zeros4k", make([]byte, 4096)},
		{"ramp", mk(2048, func(i int) byte { return byte(i) })},
		{"coeffs", mk(6000, func(i int) byte {
			// Quantized-coefficient texture: mostly zeros, occasional
			// small signed values, deterministic.
			h := uint64(i) * 0x9E3779B97F4A7C15
			if h>>61 != 0 {
				return 0
			}
			return byte(int8(h >> 33 & 0x1F))
		})},
		{"text", bytes.Repeat([]byte("wavelets all the way down. "), 80)},
		{"noise", mk(5000, func(i int) byte {
			h := uint64(i)*6364136223846793005 + 1442695040888963407
			return byte(h >> 57)
		})},
		{"lzwblocks", mk(3*lzwBlock+17, func(i int) byte { return byte(i % 23) })},
	}
}

// TestGoldenEncodedBytes pins the exact encoder output for every codec:
// any wire-format change (however subtle) fails here. Run with -update to
// regenerate after an intentional format change.
func TestGoldenEncodedBytes(t *testing.T) {
	for _, name := range Names() {
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range goldenInputs() {
			path := filepath.Join("testdata", "golden_"+name+"_"+in.name+".hex")
			enc := codec.Encode(in.data)
			got := hex.EncodeToString(enc)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			wantHex, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s/%s: missing golden file (run go test -run Golden -update): %v",
					name, in.name, err)
			}
			want := string(bytes.TrimSpace(wantHex))
			if got != want {
				t.Errorf("%s/%s: encoded bytes differ from golden (wire format changed)",
					name, in.name)
			}
			// The pinned old-format bytes must still decode to the input.
			wantBytes, err := hex.DecodeString(want)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := codec.Decode(wantBytes)
			if err != nil {
				t.Fatalf("%s/%s: golden bytes no longer decode: %v", name, in.name, err)
			}
			if !bytes.Equal(dec, in.data) {
				t.Fatalf("%s/%s: golden bytes decode to wrong payload", name, in.name)
			}
		}
	}
}
