package compress

import (
	"container/heap"
	"fmt"
	"sort"
)

// Canonical Huffman coding over the byte alphabet. The encoded form is:
// 256 code lengths (one byte each), a 4-byte little-endian symbol count,
// then the LSB-first bitstream.

type huffNode struct {
	freq        int
	sym         int // -1 for internal nodes
	left, right *huffNode
	order       int // tie-break for determinism
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h huffHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)     { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// huffLengths computes code lengths from symbol frequencies.
func huffLengths(freq [256]int) [256]byte {
	var lengths [256]byte
	h := &huffHeap{}
	order := 0
	for s, f := range freq {
		if f > 0 {
			heap.Push(h, &huffNode{freq: f, sym: s, order: order})
			order++
		}
	}
	switch h.Len() {
	case 0:
		return lengths
	case 1:
		lengths[(*h)[0].sym] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b, order: order})
		order++
	}
	root := (*h)[0]
	var walk func(n *huffNode, depth byte)
	walk = func(n *huffNode, depth byte) {
		if n.sym >= 0 {
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical codes from lengths (shorter codes
// first, ties by symbol value).
func canonicalCodes(lengths [256]byte) [256]uint32 {
	type sl struct {
		sym int
		l   byte
	}
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{sym: s, l: l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	var codes [256]uint32
	code := uint32(0)
	prevLen := byte(0)
	for _, s := range syms {
		code <<= (s.l - prevLen)
		codes[s.sym] = code
		code++
		prevLen = s.l
	}
	return codes
}

// huffEncode compresses src.
func huffEncode(src []byte) []byte {
	var freq [256]int
	for _, b := range src {
		freq[b]++
	}
	lengths := huffLengths(freq)
	codes := canonicalCodes(lengths)
	out := make([]byte, 0, 260+len(src)/2)
	out = append(out, lengths[:]...)
	out = append(out,
		byte(len(src)), byte(len(src)>>8), byte(len(src)>>16), byte(len(src)>>24))
	var w bitWriter
	for _, b := range src {
		// Canonical codes are MSB-first by construction; emit bits
		// individually so the reader can walk them in order.
		l := lengths[b]
		code := codes[b]
		for i := int(l) - 1; i >= 0; i-- {
			w.write(uint32(code>>uint(i))&1, 1)
		}
	}
	w.flush()
	return append(out, w.buf...)
}

// huffDecode decompresses data produced by huffEncode.
func huffDecode(src []byte) ([]byte, error) {
	if len(src) < 260 {
		return nil, fmt.Errorf("compress: huffman header truncated")
	}
	var lengths [256]byte
	copy(lengths[:], src[:256])
	n := int(src[256]) | int(src[257])<<8 | int(src[258])<<16 | int(src[259])<<24
	if n == 0 {
		return []byte{}, nil
	}
	codes := canonicalCodes(lengths)
	// Build a decoding map from (length, code) to symbol.
	type lc struct {
		l byte
		c uint32
	}
	decode := make(map[lc]byte)
	maxLen := byte(0)
	for s := 0; s < 256; s++ {
		if lengths[s] > 0 {
			decode[lc{l: lengths[s], c: codes[s]}] = byte(s)
			if lengths[s] > maxLen {
				maxLen = lengths[s]
			}
		}
	}
	if maxLen == 0 {
		return nil, fmt.Errorf("compress: huffman table empty with %d symbols expected", n)
	}
	r := bitReader{data: src[260:]}
	out := make([]byte, 0, n)
	for len(out) < n {
		var code uint32
		var l byte
		for {
			bit, err := r.read(1)
			if err != nil {
				return nil, err
			}
			code = code<<1 | bit
			l++
			if sym, ok := decode[lc{l: l, c: code}]; ok {
				out = append(out, sym)
				break
			}
			if l > maxLen {
				return nil, fmt.Errorf("compress: huffman bad code")
			}
		}
	}
	return out, nil
}
