package compress

import (
	"fmt"
	"sync"
)

// Canonical Huffman coding over the byte alphabet. The encoded form is:
// 256 code lengths (one byte each), a 4-byte little-endian symbol count,
// then the LSB-first bitstream.

// huffNode lives in a flat arena (at most 2·256−1 nodes); left/right are
// arena indices, -1 for leaves' children.
type huffNode struct {
	freq        int
	sym         int // -1 for internal nodes
	left, right int32
	order       int // tie-break for determinism
}

// huffBuilder is the tree-construction state: a node arena plus an index
// min-heap over it. The heap is hand-rolled (sift up/down on an []int32)
// rather than container/heap so no index is ever boxed into an interface;
// the whole builder is pooled, making per-block Huffman coding
// allocation-free.
type huffBuilder struct {
	nodes []huffNode
	idx   []int32
}

func (b *huffBuilder) less(x, y int32) bool {
	a, c := &b.nodes[x], &b.nodes[y]
	if a.freq != c.freq {
		return a.freq < c.freq
	}
	return a.order < c.order
}

func (b *huffBuilder) push(n int32) {
	b.idx = append(b.idx, n)
	i := len(b.idx) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !b.less(b.idx[i], b.idx[parent]) {
			break
		}
		b.idx[i], b.idx[parent] = b.idx[parent], b.idx[i]
		i = parent
	}
}

func (b *huffBuilder) pop() int32 {
	top := b.idx[0]
	n := len(b.idx) - 1
	b.idx[0] = b.idx[n]
	b.idx = b.idx[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		m := l
		if r < n && b.less(b.idx[r], b.idx[l]) {
			m = r
		}
		if !b.less(b.idx[m], b.idx[i]) {
			break
		}
		b.idx[i], b.idx[m] = b.idx[m], b.idx[i]
		i = m
	}
	return top
}

var huffPool = sync.Pool{New: func() any {
	return &huffBuilder{nodes: make([]huffNode, 0, 511), idx: make([]int32, 0, 256)}
}}

// huffLengths computes code lengths from symbol frequencies. The
// construction is the classic binary heap merge with deterministic
// (frequency, creation order) tie-breaking; only the node storage differs
// from a pointer-based tree.
func huffLengths(freq [256]int) [256]byte {
	var lengths [256]byte
	b := huffPool.Get().(*huffBuilder)
	defer huffPool.Put(b)
	b.nodes = b.nodes[:0]
	b.idx = b.idx[:0]
	order := 0
	for s, f := range freq {
		if f > 0 {
			b.nodes = append(b.nodes, huffNode{freq: f, sym: s, left: -1, right: -1, order: order})
			b.push(int32(len(b.nodes) - 1))
			order++
		}
	}
	switch len(b.idx) {
	case 0:
		return lengths
	case 1:
		lengths[b.nodes[b.idx[0]].sym] = 1
		return lengths
	}
	for len(b.idx) > 1 {
		l := b.pop()
		r := b.pop()
		b.nodes = append(b.nodes, huffNode{
			freq: b.nodes[l].freq + b.nodes[r].freq,
			sym:  -1, left: l, right: r, order: order,
		})
		order++
		b.push(int32(len(b.nodes) - 1))
	}
	// Depth-first walk with an explicit stack (node index, depth).
	type frame struct {
		n     int32
		depth byte
	}
	var stack [256]frame
	sp := 0
	stack[0] = frame{n: b.idx[0]}
	sp = 1
	for sp > 0 {
		sp--
		f := stack[sp]
		nd := &b.nodes[f.n]
		if nd.sym >= 0 {
			lengths[nd.sym] = f.depth
			continue
		}
		stack[sp] = frame{n: nd.right, depth: f.depth + 1}
		sp++
		stack[sp] = frame{n: nd.left, depth: f.depth + 1}
		sp++
	}
	return lengths
}

// canonicalCodes assigns canonical codes from lengths (shorter codes
// first, ties by symbol value). Symbols of equal length are visited in
// ascending symbol order, so a counting pass per length replaces the
// old sort.
func canonicalCodes(lengths [256]byte) [256]uint32 {
	var count [huffMaxLen + 1]int
	maxLen := 0
	for _, l := range lengths {
		if l > 0 {
			count[l]++
			if int(l) > maxLen {
				maxLen = int(l)
			}
		}
	}
	var codes [256]uint32
	// next[l] is the first canonical code of length l.
	var next [huffMaxLen + 2]uint32
	code := uint32(0)
	for l := 1; l <= maxLen; l++ {
		next[l] = code
		code = (code + uint32(count[l])) << 1
	}
	for s := 0; s < 256; s++ {
		if l := lengths[s]; l > 0 {
			codes[s] = next[l]
			next[l]++
		}
	}
	return codes
}

// huffMaxLen bounds the code length: lengths are produced by a Huffman
// tree over ≤256 symbols whose total frequency is a block of ≤64 KiB plus
// headroom, which caps depth well below 64; the wire format stores a byte.
const huffMaxLen = 255

// huffEncode compresses src.
func huffEncode(src []byte) []byte {
	return huffAppendEncode(nil, src)
}

// huffAppendEncode appends the encoded form of src to dst.
func huffAppendEncode(dst, src []byte) []byte {
	var freq [256]int
	for _, b := range src {
		freq[b]++
	}
	lengths := huffLengths(freq)
	codes := canonicalCodes(lengths)
	if cap(dst)-len(dst) < 260 {
		dst = append(dst, make([]byte, 0, 260+len(src)/2)...)
	}
	dst = append(dst, lengths[:]...)
	dst = append(dst,
		byte(len(src)), byte(len(src)>>8), byte(len(src)>>16), byte(len(src)>>24))
	// Canonical codes are MSB-first by construction, while the bit writer
	// packs LSB-first; emitting the bit-reversed code in one call produces
	// the same bit sequence as the old per-bit loop.
	var rev [256]uint32
	for s := 0; s < 256; s++ {
		if l := lengths[s]; l > 0 {
			c := codes[s]
			var r uint32
			for i := byte(0); i < l; i++ {
				r = r<<1 | c&1
				c >>= 1
			}
			rev[s] = r
		}
	}
	w := bitWriter{buf: dst}
	for _, b := range src {
		w.write(rev[b], uint(lengths[b]))
	}
	w.flush()
	return w.buf
}

// huffDecode decompresses data produced by huffEncode.
func huffDecode(src []byte) ([]byte, error) {
	return huffAppendDecode(nil, src)
}

// huffAppendDecode appends the decoded payload to dst. The decoder is
// table-driven: per code length it holds the first canonical code, the
// symbol count, and an offset into a symbol array sorted by (length,
// symbol); one compare per bit replaces the old (length, code) map.
func huffAppendDecode(dst, src []byte) ([]byte, error) {
	if len(src) < 260 {
		return nil, fmt.Errorf("compress: huffman header truncated")
	}
	var lengths [256]byte
	copy(lengths[:], src[:256])
	n := int(src[256]) | int(src[257])<<8 | int(src[258])<<16 | int(src[259])<<24
	if n == 0 {
		if dst == nil {
			return []byte{}, nil
		}
		return dst, nil
	}
	var count [huffMaxLen + 1]int32
	maxLen := 0
	nsyms := 0
	for _, l := range lengths {
		if l > 0 {
			count[l]++
			nsyms++
			if int(l) > maxLen {
				maxLen = int(l)
			}
		}
	}
	if maxLen == 0 {
		return nil, fmt.Errorf("compress: huffman table empty with %d symbols expected", n)
	}
	// first[l]: first canonical code of length l; offset[l]: index of its
	// first symbol in syms (symbols in canonical (length, symbol) order).
	var first [huffMaxLen + 2]uint32
	var offset [huffMaxLen + 2]int32
	var syms [256]byte
	{
		code := uint32(0)
		off := int32(0)
		for l := 1; l <= maxLen; l++ {
			first[l] = code
			offset[l] = off
			code = (code + uint32(count[l])) << 1
			off += count[l]
		}
		var next [huffMaxLen + 1]int32
		copy(next[:], offset[:huffMaxLen+1])
		for s := 0; s < 256; s++ {
			if l := lengths[s]; l > 0 {
				syms[next[l]] = byte(s)
				next[l]++
			}
		}
	}
	base := len(dst)
	dst = growBytes(dst, n)
	out := dst[base:]
	// Local bit-reader state: bits are consumed LSB-first from the stream
	// and accumulated MSB-first into the running code.
	data := src[260:]
	pos := 0
	var acc uint64
	var bits uint
	for i := 0; i < n; i++ {
		var code uint32
		l := 0
		for {
			if bits == 0 {
				if pos >= len(data) {
					return nil, fmt.Errorf("compress: lzw stream truncated")
				}
				acc = uint64(data[pos])
				pos++
				bits = 8
			}
			code = code<<1 | uint32(acc&1)
			acc >>= 1
			bits--
			l++
			if l > maxLen {
				return nil, fmt.Errorf("compress: huffman bad code")
			}
			if d := int32(code) - int32(first[l]); d >= 0 && d < count[l] {
				out[i] = syms[offset[l]+d]
				break
			}
		}
	}
	return dst, nil
}
