package compress

import (
	"bytes"
	"testing"
)

// fuzzRoundTrip drives one codec with fuzz input in both directions: the
// input must survive an encode/decode round trip bit-exactly, and feeding
// the raw input straight to the decoder (as a hostile peer would) must
// return an error or a result — never panic or over-allocate.
func fuzzRoundTrip(f *testing.F, name string) {
	codec, err := Lookup(name)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add(bytes.Repeat([]byte{0}, 4096))
	f.Add(bytes.Repeat([]byte("ab"), 1000))
	// A run crossing the LZW block boundary and a BZW RLE1 run edge.
	f.Add(append(bytes.Repeat([]byte{7}, 1100), 1, 2, 3, 4, 5))
	// An encoded stream as raw input exercises the adversarial decode path
	// with structurally plausible bytes.
	f.Add(codec.Encode([]byte("seed payload for the decoder path")))
	f.Fuzz(func(t *testing.T, data []byte) {
		enc := codec.Encode(data)
		dec, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode of own encoding failed: %v", name, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("%s: round trip mismatch: %d in, %d out", name, len(data), len(dec))
		}
		// The decoder must reject or accept arbitrary bytes gracefully.
		_, _ = codec.Decode(data)
	})
}

func FuzzLZWRoundTrip(f *testing.F) { fuzzRoundTrip(f, "lzw") }

func FuzzBZWRoundTrip(f *testing.F) { fuzzRoundTrip(f, "bzw") }
