package compress

import (
	"fmt"
	"sync"
)

// Suffix-array scratch: the prefix-doubling sort needs five integer arrays
// of length n+1 (plus a counting array). BZW calls it once per 64 KiB
// block, so the arrays are recycled through a sync.Pool instead of being
// reallocated for every block.
type saScratch struct {
	sa, rank, tmp, tmp2 []int32
	cnt                 []int32
}

var saPool = sync.Pool{New: func() any { return &saScratch{} }}

func (s *saScratch) grow(n int) {
	if cap(s.sa) < n {
		s.sa = make([]int32, n)
		s.rank = make([]int32, n)
		s.tmp = make([]int32, n)
		s.tmp2 = make([]int32, n)
	}
	s.sa = s.sa[:n]
	s.rank = s.rank[:n]
	s.tmp = s.tmp[:n]
	s.tmp2 = s.tmp2[:n]
	// The counting array must cover the initial alphabet (257 symbols plus
	// the sentinel rank 0) and every later rank value (< n).
	cn := n + 1
	if cn < 258 {
		cn = 258
	}
	if cap(s.cnt) < cn {
		s.cnt = make([]int32, cn)
	}
	s.cnt = s.cnt[:cn]
}

// suffixArray computes the suffix array of data plus a virtual sentinel
// smaller than every byte, using radix-sort prefix doubling (O(n log n):
// each round is two linear passes — a bucket placement by the second key
// and a stable counting sort by the first). The returned array has length
// len(data)+1 and its first entry is always the sentinel suffix. The
// caller must copy the result if it outlives the next call; here it is
// consumed immediately by bwtForward.
func suffixArray(data []byte) []int32 {
	sc := saPool.Get().(*saScratch)
	defer saPool.Put(sc)
	sa := suffixArrayInto(sc, data)
	out := make([]int32, len(sa))
	copy(out, sa)
	return out
}

// suffixArrayInto computes the suffix array into sc.sa and returns it. The
// slice is only valid until sc is reused.
func suffixArrayInto(sc *saScratch, data []byte) []int32 {
	n := len(data) + 1
	sc.grow(n)
	sa, rank, tmp, newRank, cnt := sc.sa, sc.rank, sc.tmp, sc.tmp2, sc.cnt

	// Initial ranks: byte value + 1, sentinel 0. Counting sort by rank.
	for i := 0; i < n-1; i++ {
		rank[i] = int32(data[i]) + 1
	}
	rank[n-1] = 0
	for i := range cnt {
		cnt[i] = 0
	}
	for i := 0; i < n; i++ {
		cnt[rank[i]]++
	}
	for i := 1; i < 258; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := n - 1; i >= 0; i-- {
		cnt[rank[i]]--
		sa[cnt[rank[i]]] = int32(i)
	}

	for k := 1; ; k *= 2 {
		// Order by the second key (rank[i+k], absent = smallest): suffixes
		// whose second half starts past the end come first, in index order;
		// the rest inherit the previous round's order shifted by k.
		p := 0
		for i := n - k; i < n; i++ {
			tmp[p] = int32(i)
			p++
		}
		for i := 0; i < n; i++ {
			if int(sa[i]) >= k {
				tmp[p] = sa[i] - int32(k)
				p++
			}
		}
		// Stable counting sort by the first key (rank). Rank values are in
		// [0, n); reuse cnt (only the first maxRank+1 entries matter, but
		// clearing n+1 is a linear pass either way).
		for i := 0; i <= n; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[i]]++
		}
		for i := 1; i <= n; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			s := tmp[i]
			cnt[rank[s]]--
			sa[cnt[rank[s]]] = s
		}
		// Re-rank: adjacent suffixes get the same rank iff both halves
		// match.
		newRank[sa[0]] = 0
		maxRank := int32(0)
		for i := 1; i < n; i++ {
			cur, prev := sa[i], sa[i-1]
			r := newRank[prev]
			if rank[cur] != rank[prev] {
				r++
			} else {
				c2, p2 := int32(-1), int32(-1)
				if int(cur)+k < n {
					c2 = rank[int(cur)+k]
				}
				if int(prev)+k < n {
					p2 = rank[int(prev)+k]
				}
				if c2 != p2 {
					r++
				}
			}
			newRank[cur] = r
			maxRank = r
		}
		rank, newRank = newRank, rank
		if maxRank == int32(n-1) {
			break
		}
	}
	sc.rank, sc.tmp2 = rank, newRank
	return sa
}

// bwtForward computes the Burrows–Wheeler transform of data with an
// implicit sentinel, appending the output (same length as the input) to
// dst. primary is the row at which the (omitted) sentinel character sits.
func bwtForward(data []byte) (out []byte, primary int) {
	return bwtAppendForward(nil, data)
}

func bwtAppendForward(dst, data []byte) (out []byte, primary int) {
	sc := saPool.Get().(*saScratch)
	defer saPool.Put(sc)
	sa := suffixArrayInto(sc, data)
	out = dst
	for i, p := range sa {
		if p == 0 {
			primary = i
			continue
		}
		out = append(out, data[p-1])
	}
	return out, primary
}

// bwtInverse scratch: the LF-mapping array.
type bwtInvScratch struct {
	lf []int32
}

var bwtInvPool = sync.Pool{New: func() any { return &bwtInvScratch{} }}

// bwtInverse inverts bwtForward.
func bwtInverse(bwt []byte, primary int) ([]byte, error) {
	return bwtAppendInverse(nil, bwt, primary)
}

// bwtAppendInverse appends the inverse transform to dst.
func bwtAppendInverse(dst, bwt []byte, primary int) ([]byte, error) {
	n := len(bwt)
	if n == 0 {
		if dst == nil {
			return []byte{}, nil
		}
		return dst, nil
	}
	if primary < 1 || primary > n {
		return nil, fmt.Errorf("compress: bwt primary index %d out of range", primary)
	}
	// F-column starts: row 0 is the sentinel; byte b's rows start after all
	// smaller bytes.
	var cnt [256]int32
	for _, b := range bwt {
		cnt[b]++
	}
	var start [256]int32
	s := int32(1)
	for b := 0; b < 256; b++ {
		start[b] = s
		s += cnt[b]
	}
	// LF mapping over the n+1 rows (sentinel row maps to row 0).
	sc := bwtInvPool.Get().(*bwtInvScratch)
	defer bwtInvPool.Put(sc)
	if cap(sc.lf) < n+1 {
		sc.lf = make([]int32, n+1)
	}
	lf := sc.lf[:n+1]
	var occ [256]int32
	for i := 0; i < primary; i++ {
		b := bwt[i]
		lf[i] = start[b] + occ[b]
		occ[b]++
	}
	lf[primary] = 0
	for i := primary + 1; i <= n; i++ {
		b := bwt[i-1]
		lf[i] = start[b] + occ[b]
		occ[b]++
	}
	// Row 0 is the sentinel-only suffix; L[0] = last byte of the text.
	base := len(dst)
	dst = growBytes(dst, n)
	out := dst[base:]
	r := 0
	for k := n - 1; k >= 0; k-- {
		if r == primary {
			return nil, fmt.Errorf("compress: bwt cycle hit sentinel early")
		}
		j := r
		if r > primary {
			j = r - 1
		}
		out[k] = bwt[j]
		r = int(lf[r])
	}
	if r != primary {
		return nil, fmt.Errorf("compress: bwt cycle did not close")
	}
	return dst, nil
}
