package compress

import (
	"fmt"
	"sort"
)

// suffixArray computes the suffix array of data plus a virtual sentinel
// smaller than every byte, using prefix doubling (O(n log² n), robust to
// highly repetitive input). The returned array has length len(data)+1 and
// its first entry is always the sentinel suffix.
func suffixArray(data []byte) []int32 {
	n := len(data) + 1
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := 0; i < n-1; i++ {
		rank[i] = int32(data[i]) + 1
		sa[i] = int32(i)
	}
	rank[n-1] = 0 // sentinel
	sa[n-1] = int32(n - 1)
	for k := 1; ; k *= 2 {
		key := func(i int32) (int32, int32) {
			second := int32(-1)
			if int(i)+k < n {
				second = rank[int(i)+k]
			}
			return rank[i], second
		}
		sort.Slice(sa, func(a, b int) bool {
			a1, a2 := key(sa[a])
			b1, b2 := key(sa[b])
			if a1 != b1 {
				return a1 < b1
			}
			return a2 < b2
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			tmp[sa[i]] = tmp[sa[i-1]]
			c1, c2 := key(sa[i])
			p1, p2 := key(sa[i-1])
			if c1 != p1 || c2 != p2 {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if rank[sa[n-1]] == int32(n-1) {
			break
		}
	}
	return sa
}

// bwtForward computes the Burrows–Wheeler transform of data with an
// implicit sentinel. The output has the same length as the input; primary
// is the row at which the (omitted) sentinel character sits.
func bwtForward(data []byte) (out []byte, primary int) {
	sa := suffixArray(data)
	out = make([]byte, 0, len(data))
	for i, p := range sa {
		if p == 0 {
			primary = i
			continue
		}
		out = append(out, data[p-1])
	}
	return out, primary
}

// bwtInverse inverts bwtForward.
func bwtInverse(bwt []byte, primary int) ([]byte, error) {
	n := len(bwt)
	if n == 0 {
		return []byte{}, nil
	}
	if primary < 1 || primary > n {
		return nil, fmt.Errorf("compress: bwt primary index %d out of range", primary)
	}
	// F-column starts: row 0 is the sentinel; byte b's rows start after all
	// smaller bytes.
	var cnt [256]int
	for _, b := range bwt {
		cnt[b]++
	}
	var start [256]int
	s := 1
	for b := 0; b < 256; b++ {
		start[b] = s
		s += cnt[b]
	}
	// LF mapping over the n+1 rows (sentinel row maps to row 0).
	lf := make([]int32, n+1)
	var occ [256]int
	for i := 0; i <= n; i++ {
		if i == primary {
			lf[i] = 0
			continue
		}
		j := i
		if i > primary {
			j = i - 1
		}
		b := bwt[j]
		lf[i] = int32(start[b] + occ[b])
		occ[b]++
	}
	// Row 0 is the sentinel-only suffix; L[0] = last byte of the text.
	out := make([]byte, n)
	r := 0
	for k := n - 1; k >= 0; k-- {
		if r == primary {
			return nil, fmt.Errorf("compress: bwt cycle hit sentinel early")
		}
		j := r
		if r > primary {
			j = r - 1
		}
		out[k] = bwt[j]
		r = int(lf[r])
	}
	if r != primary {
		return nil, fmt.Errorf("compress: bwt cycle did not close")
	}
	return out, nil
}
