package compress

import (
	"encoding/binary"
	"fmt"
	"sync"

	"tunable/internal/bufpool"
)

// BZW is compression method B: a Bzip2-style block compressor chaining
// run-length coding, the Burrows–Wheeler transform, move-to-front, zero
// run-length coding, and canonical Huffman coding — all implemented from
// scratch. It trades substantially more CPU work than LZW for a better
// compression ratio, recreating the tradeoff the paper exploits in
// Experiment 1.
type BZW struct{}

// NewBZW returns the BZW codec.
func NewBZW() BZW { return BZW{} }

// Name implements Codec.
func (BZW) Name() string { return "bzw" }

// EncodeCost implements Codec.
func (BZW) EncodeCost() float64 { return 5.0 }

// DecodeCost implements Codec.
func (BZW) DecodeCost() float64 { return 2.0 }

// bzwBlock bounds the suffix-sort working set.
const bzwBlock = 64 << 10

// bzwScratch holds the per-stage intermediate buffers of the BZW chain,
// recycled across blocks and calls through a sync.Pool so the steady
// state allocates only the returned output.
type bzwScratch struct {
	a, b, c []byte
}

var bzwPool = sync.Pool{New: func() any { return &bzwScratch{} }}

// Encode implements Codec. Layout: a 4-byte input length, then per block:
// 4-byte primary index, 4-byte payload length, payload (RLE1 → BWT → MTF →
// ZRLE → Huffman of one ≤64 KiB input block).
// The returned buffer is drawn from the shared bufpool; callers that are
// done with it may bufpool.Put it back.
func (BZW) Encode(src []byte) []byte {
	return bzwAppendEncode(bufpool.Get(len(src)/2+64)[:0], src)
}

// bzwAppendEncode appends the encoded form of src to dst.
func bzwAppendEncode(dst, src []byte) []byte {
	base := len(dst)
	dst = growBytes(dst, 4)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(src)))
	sc := bzwPool.Get().(*bzwScratch)
	defer bzwPool.Put(sc)
	for off := 0; off < len(src); off += bzwBlock {
		end := off + bzwBlock
		if end > len(src) {
			end = len(src)
		}
		block := src[off:end]
		r1 := rle1AppendEncode(sc.a[:0], block)
		sc.a = r1[:0]
		bwt, primary := bwtAppendForward(sc.b[:0], r1)
		sc.b = bwt[:0]
		if cap(sc.c) < len(bwt) {
			sc.c = make([]byte, len(bwt), len(bwt)+len(bwt)/4)
		}
		mtf := sc.c[:len(bwt)]
		mtfEncodeInto(mtf, bwt)
		zr := zrleAppendEncode(sc.a[:0], mtf)
		sc.a = zr[:0]
		// Reserve the block header, then Huffman-code straight into dst.
		hdrAt := len(dst)
		dst = growBytes(dst, 8)
		dst = huffAppendEncode(dst, zr)
		binary.LittleEndian.PutUint32(dst[hdrAt:], uint32(primary))
		binary.LittleEndian.PutUint32(dst[hdrAt+4:], uint32(len(dst)-hdrAt-8))
	}
	return dst
}

// Decode implements Codec.
func (BZW) Decode(src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("compress: bzw header truncated")
	}
	total := int(binary.LittleEndian.Uint32(src))
	// Cap the speculative preallocation against malformed headers claiming
	// absurd lengths; the chain's worst-case expansion is bounded, so a
	// genuine stream grows on demand and the final length check rejects
	// anything else.
	pre := total
	if limit := 1024 * len(src); pre > limit+64 {
		pre = limit + 64
	}
	out := bufpool.Get(pre)[:0]
	off := 4
	sc := bzwPool.Get().(*bzwScratch)
	defer bzwPool.Put(sc)
	for len(out) < total {
		if off+8 > len(src) {
			return nil, fmt.Errorf("compress: bzw block header truncated")
		}
		primary := int(binary.LittleEndian.Uint32(src[off:]))
		plen := int(binary.LittleEndian.Uint32(src[off+4:]))
		off += 8
		if plen < 0 || off+plen > len(src) {
			return nil, fmt.Errorf("compress: bzw block payload truncated")
		}
		zr, err := huffAppendDecode(sc.a[:0], src[off:off+plen])
		if err != nil {
			return nil, err
		}
		sc.a = zr[:0]
		off += plen
		mtf, err := zrleAppendDecode(sc.b[:0], zr)
		if err != nil {
			return nil, err
		}
		sc.b = mtf[:0]
		if cap(sc.c) < len(mtf) {
			sc.c = make([]byte, len(mtf), len(mtf)+len(mtf)/4)
		}
		bwt := sc.c[:len(mtf)]
		mtfDecodeInto(bwt, mtf)
		r1, err := bwtAppendInverse(sc.a[:0], bwt, primary)
		if err != nil {
			return nil, err
		}
		sc.a = r1[:0]
		block, err := rle1AppendDecode(out, r1)
		if err != nil {
			return nil, err
		}
		out = block
	}
	if len(out) != total {
		return nil, fmt.Errorf("compress: bzw length mismatch %d != %d", len(out), total)
	}
	if off != len(src) {
		return nil, fmt.Errorf("compress: bzw trailing bytes")
	}
	return out, nil
}
