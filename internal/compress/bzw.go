package compress

import (
	"encoding/binary"
	"fmt"
)

// BZW is compression method B: a Bzip2-style block compressor chaining
// run-length coding, the Burrows–Wheeler transform, move-to-front, zero
// run-length coding, and canonical Huffman coding — all implemented from
// scratch. It trades substantially more CPU work than LZW for a better
// compression ratio, recreating the tradeoff the paper exploits in
// Experiment 1.
type BZW struct{}

// NewBZW returns the BZW codec.
func NewBZW() BZW { return BZW{} }

// Name implements Codec.
func (BZW) Name() string { return "bzw" }

// EncodeCost implements Codec.
func (BZW) EncodeCost() float64 { return 5.0 }

// DecodeCost implements Codec.
func (BZW) DecodeCost() float64 { return 2.0 }

// bzwBlock bounds the suffix-sort working set.
const bzwBlock = 64 << 10

// Encode implements Codec. Layout: a 4-byte input length, then per block:
// 4-byte primary index, 4-byte payload length, payload (RLE1 → BWT → MTF →
// ZRLE → Huffman of one ≤64 KiB input block).
func (BZW) Encode(src []byte) []byte {
	out := make([]byte, 4, len(src)/2+64)
	binary.LittleEndian.PutUint32(out, uint32(len(src)))
	for off := 0; off < len(src); off += bzwBlock {
		end := off + bzwBlock
		if end > len(src) {
			end = len(src)
		}
		block := src[off:end]
		r1 := rle1Encode(block)
		bwt, primary := bwtForward(r1)
		mtf := mtfEncode(bwt)
		zr := zrleEncode(mtf)
		hf := huffEncode(zr)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(primary))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(hf)))
		out = append(out, hdr[:]...)
		out = append(out, hf...)
	}
	return out
}

// Decode implements Codec.
func (BZW) Decode(src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("compress: bzw header truncated")
	}
	total := int(binary.LittleEndian.Uint32(src))
	out := make([]byte, 0, total)
	off := 4
	for len(out) < total {
		if off+8 > len(src) {
			return nil, fmt.Errorf("compress: bzw block header truncated")
		}
		primary := int(binary.LittleEndian.Uint32(src[off:]))
		plen := int(binary.LittleEndian.Uint32(src[off+4:]))
		off += 8
		if off+plen > len(src) {
			return nil, fmt.Errorf("compress: bzw block payload truncated")
		}
		zr, err := huffDecode(src[off : off+plen])
		if err != nil {
			return nil, err
		}
		off += plen
		mtf, err := zrleDecode(zr)
		if err != nil {
			return nil, err
		}
		bwt := mtfDecode(mtf)
		r1, err := bwtInverse(bwt, primary)
		if err != nil {
			return nil, err
		}
		block, err := rle1Decode(r1)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
	}
	if len(out) != total {
		return nil, fmt.Errorf("compress: bzw length mismatch %d != %d", len(out), total)
	}
	if off != len(src) {
		return nil, fmt.Errorf("compress: bzw trailing bytes")
	}
	return out, nil
}
