// Package compress implements the two compression methods of the active
// visualization application from scratch: method A, an LZW coder (fast,
// moderate ratio), and method B, a Bzip2-style chain of run-length coding,
// Burrows–Wheeler transform, move-to-front, zero-run coding, and Huffman
// coding (slow, better ratio). The CPU-cost/ratio contrast between the two
// is what produces the crossover of Figure 6(a).
//
// Codecs also carry a CostFactor: the relative processor work per input
// byte charged to the sandbox when the virtual-time experiments compress
// or decompress data. The factors are calibrated in package avis.
//
// # Kernel design
//
// The hot paths are written for throughput and zero steady-state
// allocation; the wire formats are pinned bit-for-bit by the golden tests
// in golden_test.go, so every rewrite below is observable only as speed.
//
// Suffix sorting (bwt.go): the Burrows–Wheeler transform sorts the
// rotations of each 64 KiB block via a suffix array built by radix-sort
// prefix doubling. Each doubling round is two linear passes — a bucket
// placement ordering suffixes by their second key (the rank k positions
// ahead), then a stable counting sort by first key — so the sort is
// O(n log n) with no comparator calls. The five working arrays live in a
// pooled saScratch and are reused across blocks.
//
// LZW dictionary (lzw.go): the encoder dictionary is a flat array of
// lzwMaxCodes×256 slots indexed by (prefix code << 8 | next byte), each
// slot packing a 16-bit generation tag with the assigned code. Dictionary
// resets — every 1 KiB block and at each 12-bit width ceiling — bump the
// generation instead of clearing 4 MiB; the array is wiped only when the
// tag wraps. The decoder keeps parent/suffix/length arrays and
// materializes each code's string back-to-front directly into the output
// buffer, so neither direction allocates per code.
//
// Huffman coding (huffman.go): code lengths come from a pooled builder
// whose node arena and index min-heap are plain slices (the heap is
// hand-rolled so no element is boxed through an interface). Codes are
// canonical, assigned by a counting pass per length; the decoder is
// table-driven — per length it stores the first canonical code, symbol
// count, and an offset into a (length, symbol)-sorted symbol array, so
// each decoded symbol costs one compare per code bit instead of a map
// lookup.
//
// Buffer discipline: every stage has an append-style variant
// (xxxAppendEncode/Decode) writing into caller-supplied buffers; the BZW
// chain rotates three pooled scratch buffers through its five stages, and
// codec entry points draw their output from the size-classed
// internal/bufpool, which callers may return with bufpool.Put when the
// result has been consumed. Decoder preallocations from
// attacker-controlled length headers are capped by the maximum expansion
// a genuine stream can achieve, so malformed input fails cleanly instead
// of allocating gigabytes.
package compress
