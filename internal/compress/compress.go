// Package compress implements the two compression methods of the active
// visualization application from scratch: method A, an LZW coder (fast,
// moderate ratio), and method B, a Bzip2-style chain of run-length coding,
// Burrows–Wheeler transform, move-to-front, zero-run coding, and Huffman
// coding (slow, better ratio). The CPU-cost/ratio contrast between the two
// is what produces the crossover of Figure 6(a).
//
// Codecs also carry a CostFactor: the relative processor work per input
// byte charged to the sandbox when the virtual-time experiments compress
// or decompress data. The factors are calibrated in package avis.
package compress

import (
	"fmt"
	"sort"
)

// Codec is a lossless byte-stream compressor.
type Codec interface {
	// Name is the registry key ("lzw", "bzw", "raw").
	Name() string
	// Encode compresses src into a fresh buffer.
	Encode(src []byte) []byte
	// Decode decompresses data produced by Encode.
	Decode(src []byte) ([]byte, error)
	// EncodeCost is the relative CPU work per input byte of Encode.
	EncodeCost() float64
	// DecodeCost is the relative CPU work per output byte of Decode.
	DecodeCost() float64
}

var registry = map[string]Codec{}

// Register adds a codec to the registry; duplicate names panic.
func Register(c Codec) {
	if _, dup := registry[c.Name()]; dup {
		panic("compress: duplicate codec " + c.Name())
	}
	registry[c.Name()] = c
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names lists registered codecs in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Raw is the identity codec (compression disabled).
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Encode implements Codec.
func (Raw) Encode(src []byte) []byte { return append([]byte(nil), src...) }

// Decode implements Codec.
func (Raw) Decode(src []byte) ([]byte, error) { return append([]byte(nil), src...), nil }

// EncodeCost implements Codec.
func (Raw) EncodeCost() float64 { return 0.05 }

// DecodeCost implements Codec.
func (Raw) DecodeCost() float64 { return 0.05 }

func init() {
	Register(Raw{})
	Register(NewLZW())
	Register(NewBZW())
}
