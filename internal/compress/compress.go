package compress

import (
	"fmt"
	"sort"

	"tunable/internal/bufpool"
)

// Codec is a lossless byte-stream compressor.
type Codec interface {
	// Name is the registry key ("lzw", "bzw", "raw").
	Name() string
	// Encode compresses src into a fresh buffer. The buffer is drawn from
	// the shared bufpool: callers that are done with it may return it with
	// bufpool.Put.
	Encode(src []byte) []byte
	// Decode decompresses data produced by Encode. On success the returned
	// buffer is drawn from the shared bufpool, like Encode's.
	Decode(src []byte) ([]byte, error)
	// EncodeCost is the relative CPU work per input byte of Encode.
	EncodeCost() float64
	// DecodeCost is the relative CPU work per output byte of Decode.
	DecodeCost() float64
}

var registry = map[string]Codec{}

// Register adds a codec to the registry; duplicate names panic.
func Register(c Codec) {
	if _, dup := registry[c.Name()]; dup {
		panic("compress: duplicate codec " + c.Name())
	}
	registry[c.Name()] = c
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names lists registered codecs in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Raw is the identity codec (compression disabled).
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Encode implements Codec.
func (Raw) Encode(src []byte) []byte { return append(bufpool.Get(len(src))[:0], src...) }

// Decode implements Codec.
func (Raw) Decode(src []byte) ([]byte, error) {
	return append(bufpool.Get(len(src))[:0], src...), nil
}

// EncodeCost implements Codec.
func (Raw) EncodeCost() float64 { return 0.05 }

// DecodeCost implements Codec.
func (Raw) DecodeCost() float64 { return 0.05 }

func init() {
	Register(Raw{})
	Register(NewLZW())
	Register(NewBZW())
}
