package compress

import (
	"bytes"
	"testing"
	"testing/quick"
)

// corpus builds inputs with the character of wavelet coefficient streams:
// long zero runs, small signed values, some noise.
func corpus() map[string][]byte {
	mk := func(n int, f func(i int) byte) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = f(i)
		}
		return out
	}
	return map[string][]byte{
		"empty": {},
		"one":   {42},
		"zeros": make([]byte, 10000),
		"ramp":  mk(4096, func(i int) byte { return byte(i) }),
		"runs":  mk(5000, func(i int) byte { return byte(i / 100) }),
		"noise": mk(8192, func(i int) byte { h := uint64(i) * 0x9E3779B97F4A7C15; return byte(h >> 33) }),
		"sparse": mk(20000, func(i int) byte {
			if i%97 == 0 {
				return byte(i % 251)
			}
			return 0
		}),
		"text":      bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200),
		"alternate": mk(3000, func(i int) byte { return byte(i % 2 * 255) }),
		"block+1":   make([]byte, bzwBlock+1),
		"twoblocks": mk(2*bzwBlock+100, func(i int) byte { return byte(i % 7) }),
	}
}

func TestCodecsRoundTrip(t *testing.T) {
	for _, name := range Names() {
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for cname, data := range corpus() {
			enc := codec.Encode(data)
			dec, err := codec.Decode(enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", name, cname, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s/%s: round trip mismatch (%d vs %d bytes)", name, cname, len(dec), len(data))
			}
		}
	}
}

func TestBZWCompressesBetterThanLZWOnSparseData(t *testing.T) {
	data := corpus()["sparse"]
	lzw, _ := Lookup("lzw")
	bzw, _ := Lookup("bzw")
	ls, bs := len(lzw.Encode(data)), len(bzw.Encode(data))
	if bs >= ls {
		t.Fatalf("bzw %d bytes not smaller than lzw %d on sparse data", bs, ls)
	}
	if bs >= len(data) {
		t.Fatalf("bzw failed to compress: %d >= %d", bs, len(data))
	}
}

func TestTextCompressesWell(t *testing.T) {
	data := corpus()["text"]
	for _, name := range []string{"lzw", "bzw"} {
		c, _ := Lookup(name)
		if r := float64(len(data)) / float64(len(c.Encode(data))); r < 2 {
			t.Fatalf("%s ratio %.2f on repetitive text", name, r)
		}
	}
}

func TestCostOrdering(t *testing.T) {
	lzw, _ := Lookup("lzw")
	bzw, _ := Lookup("bzw")
	raw, _ := Lookup("raw")
	if !(bzw.EncodeCost() > lzw.EncodeCost() && lzw.EncodeCost() > raw.EncodeCost()) {
		t.Fatal("encode cost ordering broken")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("zip9000"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	want := map[string]bool{"lzw": true, "bzw": true, "raw": true}
	if len(names) != 3 {
		t.Fatalf("names %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected codec %q", n)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, name := range []string{"lzw", "bzw"} {
		c, _ := Lookup(name)
		for _, g := range [][]byte{{1, 2}, {255, 255, 255, 255, 9, 9, 9}} {
			if _, err := c.Decode(g); err == nil {
				t.Fatalf("%s accepted garbage %v", name, g)
			}
		}
	}
}

// quick-check properties on the individual BZW stages.

func TestBWTRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		bwt, primary := bwtForward(data)
		back, err := bwtInverse(bwt, primary)
		if err != nil {
			// Empty input is the only case without a valid primary range.
			return len(data) == 0 && len(back) == 0
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBWTKnownVector(t *testing.T) {
	// "banana": sorted rotations of banana$ give BWT annb$aa → without
	// sentinel: annbaa with primary at the sentinel row.
	bwt, primary := bwtForward([]byte("banana"))
	back, err := bwtInverse(bwt, primary)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "banana" {
		t.Fatalf("got %q", back)
	}
	if string(bwt) != "annbaa" {
		t.Fatalf("bwt %q, want annbaa", bwt)
	}
}

func TestMTFRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(mtfDecode(mtfEncode(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMTFFrontLoading(t *testing.T) {
	// Repeated bytes become zeros after the first occurrence.
	out := mtfEncode([]byte{7, 7, 7, 7})
	if out[1] != 0 || out[2] != 0 || out[3] != 0 {
		t.Fatalf("mtf %v", out)
	}
}

func TestRLE1RoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := rle1Decode(rle1Encode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Long runs specifically.
	for _, n := range []int{3, 4, 5, 258, 259, 260, 600, 10000} {
		data := bytes.Repeat([]byte{9}, n)
		dec, err := rle1Decode(rle1Encode(data))
		if err != nil || !bytes.Equal(dec, data) {
			t.Fatalf("run %d: %v", n, err)
		}
	}
}

func TestZRLERoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := zrleDecode(zrleEncode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{254, 255, 256, 510, 511} {
		data := make([]byte, n)
		dec, err := zrleDecode(zrleEncode(data))
		if err != nil || !bytes.Equal(dec, data) {
			t.Fatalf("zero run %d: %v", n, err)
		}
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := huffDecode(huffEncode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Single-symbol input (degenerate tree).
	data := bytes.Repeat([]byte{200}, 1000)
	dec, err := huffDecode(huffEncode(data))
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("degenerate: %v", err)
	}
}

func TestSuffixArraySorted(t *testing.T) {
	data := []byte("mississippi")
	sa := suffixArray(data)
	if len(sa) != len(data)+1 {
		t.Fatalf("len %d", len(sa))
	}
	if sa[0] != int32(len(data)) {
		t.Fatal("sentinel suffix not first")
	}
	suffix := func(i int32) string {
		if int(i) == len(data) {
			return ""
		}
		return string(data[i:])
	}
	for i := 1; i < len(sa); i++ {
		if suffix(sa[i-1]) >= suffix(sa[i]) {
			t.Fatalf("suffixes out of order at %d: %q vs %q", i, suffix(sa[i-1]), suffix(sa[i]))
		}
	}
}

func TestLZWDictionaryResetPath(t *testing.T) {
	// Enough distinct digraphs to overflow 16-bit codes and force a reset.
	n := 1 << 21
	data := make([]byte, n)
	h := uint64(1)
	for i := range data {
		h = h*6364136223846793005 + 1442695040888963407
		data[i] = byte(h >> 57)
	}
	lzw, _ := Lookup("lzw")
	enc := lzw.Encode(data)
	dec, err := lzw.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("round trip across dictionary reset failed")
	}
}

// Property: every registered codec round-trips arbitrary byte strings.
func TestCodecsRoundTripProperty(t *testing.T) {
	for _, name := range Names() {
		codec, _ := Lookup(name)
		f := func(data []byte) bool {
			dec, err := codec.Decode(codec.Encode(data))
			return err == nil && bytes.Equal(dec, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Property: the canonical Huffman code is prefix-free.
func TestCanonicalCodesPrefixFree(t *testing.T) {
	f := func(data []byte) bool {
		var freq [256]int
		for _, b := range data {
			freq[b]++
		}
		lengths := huffLengths(freq)
		codes := canonicalCodes(lengths)
		type lc struct {
			l byte
			c uint32
		}
		var syms []lc
		for s := 0; s < 256; s++ {
			if lengths[s] > 0 {
				syms = append(syms, lc{l: lengths[s], c: codes[s]})
			}
		}
		for i := range syms {
			for j := range syms {
				if i == j {
					continue
				}
				a, b := syms[i], syms[j]
				if a.l > b.l {
					continue
				}
				// a must not be a prefix of b.
				if b.c>>(b.l-a.l) == a.c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Kraft inequality: sum 2^-len over all symbols ≤ 1 (equality for >1 sym).
func TestHuffmanKraft(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		var freq [256]int
		for _, b := range data {
			freq[b]++
		}
		lengths := huffLengths(freq)
		var sum float64
		syms := 0
		for _, l := range lengths {
			if l > 0 {
				syms++
				sum += 1 / float64(uint64(1)<<l)
			}
		}
		if syms <= 1 {
			return sum <= 1
		}
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
