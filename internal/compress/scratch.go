package compress

// growBytes extends b by n bytes (contents unspecified) without the
// temporary that append(b, make([]byte, n)...) would allocate when the
// capacity already suffices.
func growBytes(b []byte, n int) []byte {
	l := len(b)
	if cap(b)-l >= n {
		return b[:l+n]
	}
	nb := make([]byte, l+n, 2*(l+n))
	copy(nb, b)
	return nb
}
