package compress

import (
	"encoding/binary"
	"fmt"
)

// LZW is compression method A: a from-scratch Lempel–Ziv–Welch coder with
// variable-width codes (9–12 bits, as in the GIF/compress-era coders contemporary with the paper) and dictionary reset on overflow,
// equivalent in spirit to the LZW the paper's application used.
type LZW struct{}

// NewLZW returns the LZW codec.
func NewLZW() LZW { return LZW{} }

// Name implements Codec.
func (LZW) Name() string { return "lzw" }

// EncodeCost implements Codec.
func (LZW) EncodeCost() float64 { return 1.0 }

// DecodeCost implements Codec.
func (LZW) DecodeCost() float64 { return 0.6 }

const (
	lzwMinWidth  = 9
	lzwMaxWidth  = 12
	lzwClearCode = 256
	lzwFirstCode = 257
	// lzwBlock bounds the streaming latency and memory of the coder: the
	// dictionary is reset every lzwBlock input bytes, as interactive
	// streaming implementations do. This keeps method A cheap and
	// low-latency at the price of compression ratio — the tradeoff against
	// method B that Experiment 1 adapts across.
	lzwBlock = 1 << 10
)

// bitWriter packs codes LSB-first.
type bitWriter struct {
	buf  []byte
	acc  uint64
	bits uint
}

func (w *bitWriter) write(code uint32, width uint) {
	w.acc |= uint64(code) << w.bits
	w.bits += width
	for w.bits >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.bits -= 8
	}
}

func (w *bitWriter) flush() {
	if w.bits > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc, w.bits = 0, 0
	}
}

// bitReader unpacks codes LSB-first.
type bitReader struct {
	data []byte
	pos  int
	acc  uint64
	bits uint
}

func (r *bitReader) read(width uint) (uint32, error) {
	for r.bits < width {
		if r.pos >= len(r.data) {
			return 0, fmt.Errorf("compress: lzw stream truncated")
		}
		r.acc |= uint64(r.data[r.pos]) << r.bits
		r.pos++
		r.bits += 8
	}
	code := uint32(r.acc & ((1 << width) - 1))
	r.acc >>= width
	r.bits -= width
	return code, nil
}

// Encode implements Codec.
func (LZW) Encode(src []byte) []byte {
	var w bitWriter
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(src)))
	w.buf = append(w.buf, hdr[:]...)
	if len(src) == 0 {
		return w.buf
	}
	// Dictionary: map from (prefix code, next byte) to code.
	type entry struct {
		prefix uint32
		b      byte
	}
	for off := 0; off < len(src); off += lzwBlock {
		end := off + lzwBlock
		if end > len(src) {
			end = len(src)
		}
		block := src[off:end]
		dict := make(map[entry]uint32, 4096)
		next := uint32(lzwFirstCode)
		width := uint(lzwMinWidth)
		cur := uint32(block[0])
		for i := 1; i < len(block); i++ {
			b := block[i]
			key := entry{prefix: cur, b: b}
			if code, ok := dict[key]; ok {
				cur = code
				continue
			}
			w.write(cur, width)
			dict[key] = next
			next++
			// Grow the code width when the next code no longer fits; reset
			// the dictionary at the width ceiling.
			if next == 1<<width {
				if width < lzwMaxWidth {
					width++
				} else {
					w.write(lzwClearCode, width)
					dict = make(map[entry]uint32, 4096)
					next = lzwFirstCode
					width = lzwMinWidth
				}
			}
			cur = uint32(b)
		}
		w.write(cur, width)
		if end < len(src) {
			// Block boundary: a clear code tells the decoder to reset,
			// exactly as the mid-stream overflow reset does. The decoder
			// adds one more dictionary entry after the final code of the
			// block and may widen at that point; mirror it so the clear
			// code is written at the width the decoder will read with.
			next++
			if next == 1<<width && width < lzwMaxWidth {
				width++
			}
			w.write(lzwClearCode, width)
		}
	}
	w.flush()
	return w.buf
}

// Decode implements Codec.
func (LZW) Decode(src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("compress: lzw header truncated")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n == 0 {
		return []byte{}, nil
	}
	r := bitReader{data: src[4:]}
	// Dictionary of byte strings; indices < 256 are implicit single bytes.
	dict := make([][]byte, lzwFirstCode, 4096)
	for i := 0; i < 256; i++ {
		dict[i] = []byte{byte(i)}
	}
	width := uint(lzwMinWidth)
	out := make([]byte, 0, n)
	prevValid := false
	var prev []byte
	for len(out) < n {
		code, err := r.read(width)
		if err != nil {
			return nil, err
		}
		if code == lzwClearCode {
			dict = dict[:lzwFirstCode]
			width = lzwMinWidth
			prevValid = false
			continue
		}
		var cur []byte
		switch {
		case int(code) < len(dict) && dict[code] != nil:
			cur = dict[code]
		case int(code) == len(dict) && prevValid:
			// The KwKwK case.
			cur = append(append([]byte{}, prev...), prev[0])
		default:
			return nil, fmt.Errorf("compress: lzw bad code %d", code)
		}
		out = append(out, cur...)
		if prevValid {
			dict = append(dict, append(append([]byte{}, prev...), cur[0]))
		}
		prev = cur
		prevValid = true
		// Width growth must track the encoder: the encoder widens after
		// assigning code (1<<width)-1, which the decoder observes one step
		// later (it has one fewer entry at the same point in the stream).
		if len(dict) == 1<<width-1 && width < lzwMaxWidth {
			width++
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("compress: lzw length mismatch %d != %d", len(out), n)
	}
	return out, nil
}
