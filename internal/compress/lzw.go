package compress

import (
	"encoding/binary"
	"fmt"
	"sync"

	"tunable/internal/bufpool"
)

// LZW is compression method A: a from-scratch Lempel–Ziv–Welch coder with
// variable-width codes (9–12 bits, as in the GIF/compress-era coders contemporary with the paper) and dictionary reset on overflow,
// equivalent in spirit to the LZW the paper's application used.
type LZW struct{}

// NewLZW returns the LZW codec.
func NewLZW() LZW { return LZW{} }

// Name implements Codec.
func (LZW) Name() string { return "lzw" }

// EncodeCost implements Codec.
func (LZW) EncodeCost() float64 { return 1.0 }

// DecodeCost implements Codec.
func (LZW) DecodeCost() float64 { return 0.6 }

const (
	lzwMinWidth  = 9
	lzwMaxWidth  = 12
	lzwClearCode = 256
	lzwFirstCode = 257
	lzwMaxCodes  = 1 << lzwMaxWidth
	// lzwBlock bounds the streaming latency and memory of the coder: the
	// dictionary is reset every lzwBlock input bytes, as interactive
	// streaming implementations do. This keeps method A cheap and
	// low-latency at the price of compression ratio — the tradeoff against
	// method B that Experiment 1 adapts across.
	lzwBlock = 1 << 10
)

// bitWriter packs codes LSB-first.
type bitWriter struct {
	buf  []byte
	acc  uint64
	bits uint
}

func (w *bitWriter) write(code uint32, width uint) {
	w.acc |= uint64(code) << w.bits
	w.bits += width
	for w.bits >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.bits -= 8
	}
}

func (w *bitWriter) flush() {
	if w.bits > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc, w.bits = 0, 0
	}
}

// bitReader unpacks codes LSB-first.
type bitReader struct {
	data []byte
	pos  int
	acc  uint64
	bits uint
}

func (r *bitReader) read(width uint) (uint32, error) {
	for r.bits < width {
		if r.pos >= len(r.data) {
			return 0, fmt.Errorf("compress: lzw stream truncated")
		}
		r.acc |= uint64(r.data[r.pos]) << r.bits
		r.pos++
		r.bits += 8
	}
	code := uint32(r.acc & ((1 << width) - 1))
	r.acc >>= width
	r.bits -= width
	return code, nil
}

// lzwEncTable is the encoder dictionary: a flat array indexed by
// (prefix code << 8 | next byte). Each entry packs a 16-bit generation tag
// with the 12-bit assigned code, so resetting the dictionary (every block
// and at every width-ceiling overflow) is a single generation increment
// instead of reallocating a 4096-entry map. The array is 4 MiB and lives
// in a sync.Pool shared by all encoders.
type lzwEncTable struct {
	slots []uint32 // lzwMaxCodes * 256 entries: generation<<16 | code
	gen   uint32
}

var lzwEncPool = sync.Pool{New: func() any {
	return &lzwEncTable{slots: make([]uint32, lzwMaxCodes*256)}
}}

// reset starts a new dictionary generation in O(1); the backing array is
// wiped only when the 16-bit generation counter wraps.
func (t *lzwEncTable) reset() {
	t.gen++
	if t.gen == 1<<16 {
		for i := range t.slots {
			t.slots[i] = 0
		}
		t.gen = 1
	}
}

// Encode implements Codec. The returned buffer is drawn from the shared
// bufpool; callers that are done with it may bufpool.Put it back.
func (LZW) Encode(src []byte) []byte {
	return lzwAppendEncode(bufpool.Get(4+len(src)+len(src)/2+16)[:0], src)
}

// lzwAppendEncode appends the encoded form of src to dst.
func lzwAppendEncode(dst, src []byte) []byte {
	var w bitWriter
	if cap(dst)-len(dst) < 4+len(src)+len(src)/2 {
		// Worst case: one ≤12-bit code per input byte plus clear codes —
		// under 1.5 bytes per byte; reserving it up front keeps the bit
		// writer from reallocating mid-stream.
		grown := make([]byte, len(dst), len(dst)+4+len(src)+len(src)/2+16)
		copy(grown, dst)
		dst = grown
	}
	w.buf = dst
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(src)))
	w.buf = append(w.buf, hdr[:]...)
	if len(src) == 0 {
		return w.buf
	}
	t := lzwEncPool.Get().(*lzwEncTable)
	defer lzwEncPool.Put(t)
	for off := 0; off < len(src); off += lzwBlock {
		end := off + lzwBlock
		if end > len(src) {
			end = len(src)
		}
		block := src[off:end]
		t.reset()
		gen := t.gen << 16
		next := uint32(lzwFirstCode)
		width := uint(lzwMinWidth)
		cur := uint32(block[0])
		for i := 1; i < len(block); i++ {
			b := block[i]
			slot := cur<<8 | uint32(b)
			if e := t.slots[slot]; e&0xFFFF0000 == gen {
				cur = e & 0xFFFF
				continue
			}
			w.write(cur, width)
			t.slots[slot] = gen | next
			next++
			// Grow the code width when the next code no longer fits; reset
			// the dictionary at the width ceiling.
			if next == 1<<width {
				if width < lzwMaxWidth {
					width++
				} else {
					w.write(lzwClearCode, width)
					t.reset()
					gen = t.gen << 16
					next = lzwFirstCode
					width = lzwMinWidth
				}
			}
			cur = uint32(b)
		}
		w.write(cur, width)
		if end < len(src) {
			// Block boundary: a clear code tells the decoder to reset,
			// exactly as the mid-stream overflow reset does. The decoder
			// adds one more dictionary entry after the final code of the
			// block and may widen at that point; mirror it so the clear
			// code is written at the width the decoder will read with.
			next++
			if next == 1<<width && width < lzwMaxWidth {
				width++
			}
			w.write(lzwClearCode, width)
		}
	}
	w.flush()
	return w.buf
}

// lzwDecTable is the decoder dictionary in parent/suffix form: entry c
// (≥ lzwFirstCode) is the string of entry prefix[c] followed by byte
// suffix[c]; strLen[c] caches its expanded length so output space can be
// reserved up front and the string materialized back-to-front in place.
type lzwDecTable struct {
	prefix [lzwMaxCodes]uint16
	suffix [lzwMaxCodes]byte
	strLen [lzwMaxCodes]uint16
}

var lzwDecPool = sync.Pool{New: func() any { return new(lzwDecTable) }}

// Decode implements Codec.
func (LZW) Decode(src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("compress: lzw header truncated")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n == 0 {
		return []byte{}, nil
	}
	r := bitReader{data: src[4:]}
	t := lzwDecPool.Get().(*lzwDecTable)
	defer lzwDecPool.Put(t)
	next := uint32(lzwFirstCode)
	width := uint(lzwMinWidth)
	// Cap the speculative preallocation: a malformed header can claim an
	// absurd length, but a genuine LZW stream expands each code (≥ 9 bits)
	// to at most ~4 KiB of output, so anything beyond that bound grows on
	// demand and the length check below rejects the stream.
	pre := n
	if limit := 4096 * (len(src) - 4) * 8 / lzwMinWidth; pre > limit+64 {
		pre = limit + 64
	}
	out := bufpool.Get(pre)[:0]
	prevValid := false
	var prevCode uint32
	for len(out) < n {
		code, err := r.read(width)
		if err != nil {
			return nil, err
		}
		if code == lzwClearCode {
			next = lzwFirstCode
			width = lzwMinWidth
			prevValid = false
			continue
		}
		// Expand the code's string directly into out. The string length is
		// known (1 for literals, cached for dictionary entries), so the
		// bytes are written back-to-front following the prefix chain.
		var sLen int
		start := len(out)
		switch {
		case code < 256:
			sLen = 1
			out = append(out, byte(code))
		case code < next:
			sLen = int(t.strLen[code])
			out = growBytes(out, sLen)
			c := code
			for i := start + sLen - 1; i >= start; i-- {
				if c < 256 {
					out[i] = byte(c)
					continue
				}
				out[i] = t.suffix[c]
				c = uint32(t.prefix[c])
			}
		case code == next && prevValid:
			// The KwKwK case: prev + first byte of prev.
			var pLen int
			if prevCode < 256 {
				pLen = 1
			} else {
				pLen = int(t.strLen[prevCode])
			}
			sLen = pLen + 1
			out = growBytes(out, sLen)
			c := prevCode
			for i := start + pLen - 1; i >= start; i-- {
				if c < 256 {
					out[i] = byte(c)
					continue
				}
				out[i] = t.suffix[c]
				c = uint32(t.prefix[c])
			}
			out[start+sLen-1] = out[start]
		default:
			return nil, fmt.Errorf("compress: lzw bad code %d", code)
		}
		if prevValid && next < lzwMaxCodes {
			t.prefix[next] = uint16(prevCode)
			t.suffix[next] = out[start]
			var pLen uint16
			if prevCode < 256 {
				pLen = 1
			} else {
				pLen = t.strLen[prevCode]
			}
			t.strLen[next] = pLen + 1
			next++
		}
		prevCode = code
		prevValid = true
		// Width growth must track the encoder: the encoder widens after
		// assigning code (1<<width)-1, which the decoder observes one step
		// later (it has one fewer entry at the same point in the stream).
		if next == 1<<width-1 && width < lzwMaxWidth {
			width++
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("compress: lzw length mismatch %d != %d", len(out), n)
	}
	return out, nil
}
