package monitor

import (
	"math"
	"testing"
	"time"

	"tunable/internal/netem"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
	"tunable/internal/vtime"
)

func TestCPUProbeEstimatesShare(t *testing.T) {
	sim := vtime.NewSim()
	h := sandbox.NewHost(sim, "h", 100e6, sandbox.WithOSLoad(0))
	sb, _ := h.NewSandbox("app", 0.4, 0)
	probe := NewCPUProbe("client", sb)
	var est float64
	var ok bool
	sim.Spawn("app", func(p *vtime.Proc) {
		sb.Compute(p, 40e6) // 1 s of wall time at 40% share
	})
	sim.Spawn("sampler", func(p *vtime.Proc) {
		p.Sleep(time.Second)
		est, ok = probe.Sample(p.Now())
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no observation")
	}
	if math.Abs(est-0.4) > 0.01 {
		t.Fatalf("estimated share %.3f, want ~0.4", est)
	}
}

func TestCPUProbeIdleReportsNotOK(t *testing.T) {
	sim := vtime.NewSim()
	h := sandbox.NewHost(sim, "h", 100e6)
	sb, _ := h.NewSandbox("app", 0.4, 0)
	probe := NewCPUProbe("client", sb)
	if _, ok := probe.Sample(0); ok {
		t.Fatal("idle app produced an observation")
	}
}

func TestBandwidthProbe(t *testing.T) {
	sim := vtime.NewSim()
	l := netem.NewLink(sim, "lan", 200_000, netem.WithLatency(0))
	probe := NewBandwidthProbe("client", l.A())
	var est float64
	var ok bool
	sim.Spawn("sender", func(p *vtime.Proc) {
		l.A().Send(p, make([]byte, 100_000))
		est, ok = probe.Sample(p.Now())
	})
	sim.Spawn("receiver", func(p *vtime.Proc) { l.B().Recv(p) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no observation")
	}
	if math.Abs(est-200_000)/200_000 > 0.02 {
		t.Fatalf("estimated bandwidth %.0f, want ~200000", est)
	}
}

func TestMemoryProbe(t *testing.T) {
	sim := vtime.NewSim()
	h := sandbox.NewHost(sim, "h", 100e6)
	sb, _ := h.NewSandbox("app", 0.4, 10<<20)
	probe := NewMemoryProbe("client", sb)
	v, ok := probe.Sample(0)
	if !ok || v != float64(10<<20) {
		t.Fatalf("free %v %v", v, ok)
	}
	sb.Alloc(4 << 20)
	v, _ = probe.Sample(0)
	if v != float64(6<<20) {
		t.Fatalf("free after alloc %v", v)
	}
	sb.Alloc(20 << 20)
	v, _ = probe.Sample(0)
	if v != 0 {
		t.Fatalf("negative headroom clamped: %v", v)
	}
}

func TestAgentWindowedEstimate(t *testing.T) {
	sim := vtime.NewSim()
	a := New(sim, "mon", WithPeriod(10*time.Millisecond), WithWindow(100*time.Millisecond))
	val := 0.8
	a.AddProbe(&OracleProbe{Comp: "client", K: resource.CPU, Fn: func(time.Duration) (float64, bool) {
		return val, true
	}})
	a.Start()
	sim.Spawn("driver", func(p *vtime.Proc) {
		p.Sleep(200 * time.Millisecond)
		snap := a.Snapshot()
		if math.Abs(snap[resource.CPU]-0.8) > 1e-9 {
			t.Errorf("estimate %v", snap[resource.CPU])
		}
		// Step the ground truth; windowed mean takes ~window to converge.
		val = 0.4
		p.Sleep(50 * time.Millisecond)
		mid := a.Snapshot()[resource.CPU]
		if mid <= 0.4 || mid >= 0.8 {
			t.Errorf("mid-window estimate %v not between old and new", mid)
		}
		p.Sleep(150 * time.Millisecond)
		if got := a.Snapshot()[resource.CPU]; math.Abs(got-0.4) > 1e-9 {
			t.Errorf("converged estimate %v", got)
		}
		a.Stop()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if a.SampleCount() == 0 {
		t.Fatal("no samples")
	}
}

func TestAgentTriggersOnRangeViolation(t *testing.T) {
	sim := vtime.NewSim()
	a := New(sim, "mon", WithPeriod(10*time.Millisecond), WithWindow(50*time.Millisecond), WithHysteresis(3))
	val := 0.9
	a.AddProbe(&OracleProbe{Comp: "client", K: resource.CPU, Fn: func(time.Duration) (float64, bool) {
		return val, true
	}})
	a.SetValidRange("client", resource.CPU, 0.7, 1.0)
	a.Start()
	var trig Trigger
	var fired bool
	sim.Spawn("listener", func(p *vtime.Proc) {
		tr, ok, ready := a.Triggers().RecvTimeout(p, 2*time.Second)
		fired = ok && ready
		trig = tr
		a.Stop()
	})
	sim.Spawn("perturber", func(p *vtime.Proc) {
		p.Sleep(300 * time.Millisecond)
		val = 0.3
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("no trigger")
	}
	if trig.Component != "client" || trig.Kind != resource.CPU {
		t.Fatalf("trigger %+v", trig)
	}
	if trig.At < 300*time.Millisecond {
		t.Fatalf("trigger fired before the perturbation at %v", trig.At)
	}
	if trig.Value > 0.7 {
		t.Fatalf("trigger value %v inside range", trig.Value)
	}
}

func TestAgentHysteresisSuppressesBlips(t *testing.T) {
	sim := vtime.NewSim()
	a := New(sim, "mon", WithPeriod(10*time.Millisecond), WithWindow(10*time.Millisecond), WithHysteresis(5))
	tick := 0
	a.AddProbe(&OracleProbe{Comp: "client", K: resource.CPU, Fn: func(time.Duration) (float64, bool) {
		tick++
		if tick%7 == 0 { // a single-sample blip every 7 samples
			return 0.1, true
		}
		return 0.9, true
	}})
	a.SetValidRange("client", resource.CPU, 0.5, 1.0)
	a.Start()
	sim.Spawn("driver", func(p *vtime.Proc) {
		p.Sleep(2 * time.Second)
		a.Stop()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, _, ready := a.Triggers().TryRecv(); ready {
		t.Fatal("hysteresis failed to suppress blips")
	}
}

func TestAgentRangeManagement(t *testing.T) {
	sim := vtime.NewSim()
	a := New(sim, "mon", WithHysteresis(1), WithPeriod(10*time.Millisecond), WithWindow(10*time.Millisecond))
	a.AddProbe(&OracleProbe{Comp: "c", K: resource.CPU, Fn: func(time.Duration) (float64, bool) { return 0.2, true }})
	a.SetValidRange("c", resource.CPU, 0.5, 1.0)
	a.SetValidRange("c", resource.CPU, 1, 0) // lo > hi removes
	a.RunOnce(time.Millisecond)
	if _, _, ready := a.Triggers().TryRecv(); ready {
		t.Fatal("removed range still triggers")
	}
	a.SetValidRange("c", resource.CPU, 0.5, 1.0)
	a.RunOnce(2 * time.Millisecond)
	if _, _, ready := a.Triggers().TryRecv(); !ready {
		t.Fatal("restored range did not trigger")
	}
	a.ClearRanges()
	a.RunOnce(3 * time.Millisecond)
	if _, _, ready := a.Triggers().TryRecv(); ready {
		t.Fatal("cleared ranges still trigger")
	}
}

func TestPeerEstimatePropagation(t *testing.T) {
	sim := vtime.NewSim()
	client := New(sim, "client-mon", WithPeriod(10*time.Millisecond), WithWindow(20*time.Millisecond), WithHysteresis(1))
	server := New(sim, "server-mon", WithPeriod(10*time.Millisecond), WithWindow(20*time.Millisecond))
	client.AddProbe(&OracleProbe{Comp: "client", K: resource.CPU, Fn: func(time.Duration) (float64, bool) { return 0.3, true }})
	client.SetValidRange("client", resource.CPU, 0.7, 1.0)
	client.AddPeer(server.Inbox())
	client.Start()
	server.Start()
	sim.Spawn("driver", func(p *vtime.Proc) {
		p.Sleep(500 * time.Millisecond)
		est := server.Estimates()
		v, ok := est["client"]
		if !ok {
			t.Error("server agent has no remote estimate for client")
		} else if math.Abs(v[resource.CPU]-0.3) > 1e-9 {
			t.Errorf("remote estimate %v", v[resource.CPU])
		}
		client.Stop()
		server.Stop()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemMonitor(t *testing.T) {
	sim := vtime.NewSim()
	h := sandbox.NewHost(sim, "client", 450e6)
	m := NewSystemMonitor()
	m.RegisterHost(h)
	c, ok := m.Capacity("client")
	if !ok || c.Limits[resource.CPU] != 1.0 {
		t.Fatalf("capacity %+v %v", c, ok)
	}
	if c.Limits[resource.Memory] != float64(128<<20) {
		t.Fatalf("memory capacity %v", c.Limits[resource.Memory])
	}
	if _, ok := m.Capacity("nowhere"); ok {
		t.Fatal("phantom capacity")
	}
	if len(m.Components()) != 1 {
		t.Fatal("components")
	}
}

func TestTriggerString(t *testing.T) {
	tr := Trigger{At: time.Second, Component: "client", Kind: resource.CPU, Value: 0.3, Lo: 0.7, Hi: 1.0}
	if tr.String() == "" {
		t.Fatal("empty trigger string")
	}
}

// End-to-end: a sandboxed computation whose share is cut mid-run must be
// detected by the CPU probe + agent combination without reading settings.
func TestEndToEndShareDropDetection(t *testing.T) {
	sim := vtime.NewSim()
	h := sandbox.NewHost(sim, "h", 100e6, sandbox.WithOSLoad(0))
	sb, _ := h.NewSandbox("app", 0.9, 0)
	a := New(sim, "mon", WithPeriod(10*time.Millisecond), WithWindow(100*time.Millisecond), WithHysteresis(3))
	a.AddProbe(NewCPUProbe("client", sb))
	a.SetValidRange("client", resource.CPU, 0.6, 1.0)
	a.Start()
	sim.Spawn("app", func(p *vtime.Proc) {
		sb.Compute(p, 500e6) // long-running computation
	})
	sim.After(2*time.Second, func() {
		if err := sb.SetCPUShare(0.4); err != nil {
			t.Error(err)
		}
	})
	var trig Trigger
	var fired bool
	sim.Spawn("listener", func(p *vtime.Proc) {
		tr, ok, ready := a.Triggers().RecvTimeout(p, 10*time.Second)
		fired = ok && ready
		trig = tr
		a.Stop()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("share drop not detected")
	}
	if trig.At < 2*time.Second {
		t.Fatalf("detected at %v, before the drop", trig.At)
	}
	if trig.At > 2*time.Second+500*time.Millisecond {
		t.Fatalf("detection latency too high: %v", trig.At)
	}
	if math.Abs(trig.Value-0.4) > 0.15 {
		t.Fatalf("estimated dropped share %v, want ~0.4", trig.Value)
	}
}

func TestEWMASmoothing(t *testing.T) {
	sim := vtime.NewSim()
	a := New(sim, "mon", WithPeriod(10*time.Millisecond), WithSmoothing(EWMA, 0.5))
	val := 1.0
	a.AddProbe(&OracleProbe{Comp: "c", K: resource.CPU, Fn: func(time.Duration) (float64, bool) {
		return val, true
	}})
	// First sample initializes the EWMA directly.
	a.RunOnce(10 * time.Millisecond)
	if got := a.Snapshot()[resource.CPU]; got != 1.0 {
		t.Fatalf("initial EWMA %v", got)
	}
	// A step decays geometrically: 1.0 → 0.5·0+0.5·1.0 = 0.5 → 0.25.
	val = 0
	a.RunOnce(20 * time.Millisecond)
	if got := a.Snapshot()[resource.CPU]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("EWMA after one step %v", got)
	}
	a.RunOnce(30 * time.Millisecond)
	if got := a.Snapshot()[resource.CPU]; math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("EWMA after two steps %v", got)
	}
}

func TestSmoothingModesConvergeEqually(t *testing.T) {
	for _, mode := range []Smoothing{WindowMean, EWMA} {
		sim := vtime.NewSim()
		a := New(sim, "mon", WithPeriod(10*time.Millisecond),
			WithWindow(100*time.Millisecond), WithSmoothing(mode, 0.2))
		a.AddProbe(&OracleProbe{Comp: "c", K: resource.CPU, Fn: func(time.Duration) (float64, bool) {
			return 0.7, true
		}})
		a.Start()
		sim.Spawn("driver", func(p *vtime.Proc) {
			p.Sleep(2 * time.Second)
			if got := a.Snapshot()[resource.CPU]; math.Abs(got-0.7) > 1e-6 {
				t.Errorf("mode %d: converged to %v", mode, got)
			}
			a.Stop()
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecvBandwidthProbe(t *testing.T) {
	sim := vtime.NewSim()
	l := netem.NewLink(sim, "lan", 100_000, netem.WithLatency(0))
	probe := NewRecvBandwidthProbe("client", l.A())
	// First sample only initializes.
	if _, ok := probe.Sample(0); ok {
		t.Fatal("first sample should not be ready")
	}
	var est float64
	var ok bool
	sim.Spawn("sender", func(p *vtime.Proc) {
		l.B().Send(p, make([]byte, 100_000)) // 1 s at 100 KB/s
	})
	sim.Spawn("receiver", func(p *vtime.Proc) {
		l.A().Recv(p)
		est, ok = probe.Sample(p.Now())
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no observation")
	}
	// Receiver-side estimate conflates elapsed time; expect the right
	// magnitude, not precision.
	if est < 50_000 || est > 200_000 {
		t.Fatalf("estimated bandwidth %.0f", est)
	}
}
