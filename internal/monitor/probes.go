package monitor

import (
	"time"

	"tunable/internal/netem"
	"tunable/internal/resource"
	"tunable/internal/sandbox"
)

// SystemMonitor is the system-wide monitor of Section 6.1: it reports the
// maximum capacities of system resources (CPU speed, physical memory,
// nominal network bandwidth) that agents normalize their observations
// against.
type SystemMonitor struct {
	caps map[string]resource.Capacity
}

// NewSystemMonitor creates an empty capacity registry.
func NewSystemMonitor() *SystemMonitor {
	return &SystemMonitor{caps: make(map[string]resource.Capacity)}
}

// Register records the capacities of a component.
func (m *SystemMonitor) Register(c resource.Capacity) { m.caps[c.Component] = c }

// RegisterHost records a sandbox host's capacities.
func (m *SystemMonitor) RegisterHost(h *sandbox.Host) {
	m.Register(resource.Capacity{
		Component: h.Name(),
		Limits: resource.Vector{
			resource.CPU:    1.0,
			resource.Memory: float64(h.MemTotal()),
		},
	})
}

// Capacity returns the registered capacity of a component.
func (m *SystemMonitor) Capacity(component string) (resource.Capacity, bool) {
	c, ok := m.caps[component]
	return c, ok
}

// Components lists registered component names.
func (m *SystemMonitor) Components() []string {
	out := make([]string, 0, len(m.caps))
	for k := range m.caps {
		out = append(out, k)
	}
	return out
}

// CPUProbe estimates the CPU share a sandboxed application actually
// receives by comparing allotted CPU time against wall-clock time,
// factoring out periods where the application was blocked — exactly the
// computation the paper's monitor performs. It never reads the sandbox's
// configured share.
type CPUProbe struct {
	component  string
	sb         *sandbox.Sandbox
	lastCPU    time.Duration
	lastActive time.Duration
}

// NewCPUProbe creates a CPU probe for a sandboxed component.
func NewCPUProbe(component string, sb *sandbox.Sandbox) *CPUProbe {
	return &CPUProbe{component: component, sb: sb}
}

// Component implements Probe.
func (p *CPUProbe) Component() string { return p.component }

// Kind implements Probe.
func (p *CPUProbe) Kind() resource.Kind { return resource.CPU }

// Sample implements Probe: achieved share = ΔCPU-time / Δactive-time.
func (p *CPUProbe) Sample(time.Duration) (float64, bool) {
	cpu, active := p.sb.CPUTime(), p.sb.ActiveTime()
	dCPU, dActive := cpu-p.lastCPU, active-p.lastActive
	p.lastCPU, p.lastActive = cpu, active
	if dActive <= 0 {
		return 0, false // application idle; nothing observed
	}
	return float64(dCPU) / float64(dActive), true
}

// BandwidthProbe estimates available network bandwidth from the sending
// side of a link endpoint: bytes pushed divided by the time the sender
// spent blocked serializing them ("a message send incurs more delay than
// would be expected").
type BandwidthProbe struct {
	component string
	ep        *netem.Endpoint
	lastBytes int64
	lastBusy  time.Duration
}

// NewBandwidthProbe creates a bandwidth probe over an endpoint's outgoing
// direction.
func NewBandwidthProbe(component string, ep *netem.Endpoint) *BandwidthProbe {
	return &BandwidthProbe{component: component, ep: ep}
}

// Component implements Probe.
func (p *BandwidthProbe) Component() string { return p.component }

// Kind implements Probe.
func (p *BandwidthProbe) Kind() resource.Kind { return resource.Bandwidth }

// Sample implements Probe.
func (p *BandwidthProbe) Sample(time.Duration) (float64, bool) {
	c := p.ep.OutCounters()
	dBytes := c.BytesSent - p.lastBytes
	dBusy := c.SendBusy - p.lastBusy
	p.lastBytes, p.lastBusy = c.BytesSent, c.SendBusy
	if dBusy <= 0 || dBytes <= 0 {
		return 0, false
	}
	return float64(dBytes) / dBusy.Seconds(), true
}

// RecvBandwidthProbe estimates bandwidth from the receiving side: bytes
// delivered per unit of elapsed time while waiting. It is noisier than the
// sender-side probe (it conflates sender think-time with link time) and
// exists mainly for components that only consume data.
type RecvBandwidthProbe struct {
	component string
	ep        *netem.Endpoint
	lastBytes int64
	lastAt    time.Duration
	started   bool
}

// NewRecvBandwidthProbe creates a receiver-side bandwidth probe.
func NewRecvBandwidthProbe(component string, ep *netem.Endpoint) *RecvBandwidthProbe {
	return &RecvBandwidthProbe{component: component, ep: ep}
}

// Component implements Probe.
func (p *RecvBandwidthProbe) Component() string { return p.component }

// Kind implements Probe.
func (p *RecvBandwidthProbe) Kind() resource.Kind { return resource.Bandwidth }

// Sample implements Probe.
func (p *RecvBandwidthProbe) Sample(now time.Duration) (float64, bool) {
	c := p.ep.InCounters()
	if !p.started {
		p.started = true
		p.lastBytes, p.lastAt = c.BytesReceived, now
		return 0, false
	}
	dBytes := c.BytesReceived - p.lastBytes
	dT := now - p.lastAt
	if dBytes <= 0 || dT <= 0 {
		return 0, false
	}
	p.lastBytes, p.lastAt = c.BytesReceived, now
	return float64(dBytes) / dT.Seconds(), true
}

// MemoryProbe reports the memory headroom of a sandbox: physical limit
// minus resident set (compare "physical memory usage with virtual memory
// size").
type MemoryProbe struct {
	component string
	sb        *sandbox.Sandbox
}

// NewMemoryProbe creates a memory probe.
func NewMemoryProbe(component string, sb *sandbox.Sandbox) *MemoryProbe {
	return &MemoryProbe{component: component, sb: sb}
}

// Component implements Probe.
func (p *MemoryProbe) Component() string { return p.component }

// Kind implements Probe.
func (p *MemoryProbe) Kind() resource.Kind { return resource.Memory }

// Sample implements Probe.
func (p *MemoryProbe) Sample(time.Duration) (float64, bool) {
	free := p.sb.MemLimit() - p.sb.MemUsed()
	if free < 0 {
		free = 0
	}
	return float64(free), true
}

// OracleProbe returns values from a closure; it is the "oracle monitor"
// used by the ablation benchmarks (reading ground truth instead of
// estimating it) and a convenient stub in tests.
type OracleProbe struct {
	Comp string
	K    resource.Kind
	Fn   func(now time.Duration) (float64, bool)
}

// Component implements Probe.
func (p *OracleProbe) Component() string { return p.Comp }

// Kind implements Probe.
func (p *OracleProbe) Kind() resource.Kind { return p.K }

// Sample implements Probe.
func (p *OracleProbe) Sample(now time.Duration) (float64, bool) { return p.Fn(now) }

var (
	_ Probe = (*CPUProbe)(nil)
	_ Probe = (*BandwidthProbe)(nil)
	_ Probe = (*RecvBandwidthProbe)(nil)
	_ Probe = (*MemoryProbe)(nil)
	_ Probe = (*OracleProbe)(nil)
)
