// Package monitor implements the paper's monitoring infrastructure
// (Section 6.1): an application-specific monitoring agent that runs
// periodically (every 10 ms), processes raw observations within a history
// window, and estimates the fraction of each resource actually available
// to the application — without ever reading the allocation settings
// directly. Upon detecting that an estimate has left the validity range of
// the currently active configuration, it notifies the resource scheduler
// (and peer agents in remote instances of the application).
package monitor

import (
	"fmt"
	"math"
	"time"

	"tunable/internal/metrics"
	"tunable/internal/resource"
	"tunable/internal/vtime"
)

// DefaultPeriod is the sampling period ("runs periodically, every 10 ms").
const DefaultPeriod = 10 * time.Millisecond

// DefaultWindow is the history window over which raw samples are averaged.
const DefaultWindow = 500 * time.Millisecond

// DefaultHysteresis is the number of consecutive out-of-range windowed
// estimates required before a trigger fires; it suppresses the useless
// reconfigurations Section 7.5 warns about.
const DefaultHysteresis = 3

// Smoothing selects how raw probe samples become estimates.
type Smoothing int

// Smoothing modes.
const (
	// WindowMean averages all samples inside the history window (the
	// paper's "processes raw data within a history window").
	WindowMean Smoothing = iota
	// EWMA applies an exponentially weighted moving average; cheaper and
	// more responsive, but with a long noise tail (used by the smoothing
	// ablation).
	EWMA
)

// Probe produces instantaneous observations of one resource on one
// component by watching application activity. Sample reports ok=false when
// there was no activity to observe in the interval (the agent then retains
// its previous estimate).
type Probe interface {
	Component() string
	Kind() resource.Kind
	Sample(now time.Duration) (value float64, ok bool)
}

// sample is one windowed observation.
type sample struct {
	at time.Duration
	v  float64
}

// Trigger reports that a windowed estimate left its validity range.
type Trigger struct {
	At        time.Duration
	Component string
	Kind      resource.Kind
	Value     float64
	Lo, Hi    float64
}

func (t Trigger) String() string {
	return fmt.Sprintf("t=%v %s.%s=%.4g outside [%.4g,%.4g]",
		t.At, t.Component, t.Kind, t.Value, t.Lo, t.Hi)
}

// EstimateMsg carries one agent's resource estimates to peer agents in
// remote instances of the application.
type EstimateMsg struct {
	From      string
	At        time.Duration
	Estimates map[string]resource.Vector // component → estimates
}

// validRange is the band within which the current configuration remains
// appropriate.
type validRange struct {
	lo, hi float64
	count  int // consecutive violations observed
}

// Agent is the application-specific monitoring agent.
type Agent struct {
	name       string
	sim        *vtime.Sim
	period     time.Duration
	window     time.Duration
	hysteresis int
	tolerance  float64
	smoothing  Smoothing
	alpha      float64

	// stale-sample degradation (disabled unless WithStaleAfter ran): when a
	// probe stops producing samples — the fault layer's partitions and
	// paused nodes do exactly this — the agent must not stall on, or keep
	// trusting, its last optimistic estimate forever.
	staleAfter    time.Duration
	degradeFactor float64
	degradeFloor  float64

	probes    []Probe
	history   map[string][]sample
	ewma      map[string]float64
	estimates map[string]resource.Vector // component → smoothed estimates
	ranges    map[string]*validRange
	lastSeen  map[string]time.Duration // key → instant of last real sample
	lastGood  map[string]float64       // key → last estimate backed by a real sample
	degraded  map[string]bool          // keys currently in degraded mode

	triggers *vtime.Chan[Trigger]
	peers    []*vtime.Chan[EstimateMsg]
	inbox    *vtime.Chan[EstimateMsg]
	remote   map[string]resource.Vector // estimates received from peers

	stop    *vtime.Event
	samples int64
	onRound func(now time.Duration, est resource.Vector)

	// telemetry instruments; nil (no-op) unless EnableMetrics ran
	reg         *metrics.Registry
	mSamples    *metrics.Counter
	mTriggers   *metrics.Counter
	mOutOfBand  *metrics.Histogram
	mStaleRound *metrics.Counter
	mDegraded   *metrics.Gauge
	mEstimates  map[string]*metrics.Gauge
}

// Option customizes an Agent.
type Option func(*Agent)

// WithPeriod overrides the sampling period.
func WithPeriod(d time.Duration) Option { return func(a *Agent) { a.period = d } }

// WithWindow overrides the history window.
func WithWindow(d time.Duration) Option { return func(a *Agent) { a.window = d } }

// WithTolerance sets the relative slack applied to validity-range edges
// (default 0.02): estimates within tolerance of a band edge are treated as
// inside it.
func WithTolerance(f float64) Option {
	return func(a *Agent) {
		if f >= 0 {
			a.tolerance = f
		}
	}
}

// WithSmoothing selects the estimator; alpha is the EWMA weight of the
// newest sample (ignored for WindowMean).
func WithSmoothing(mode Smoothing, alpha float64) Option {
	return func(a *Agent) {
		a.smoothing = mode
		if alpha > 0 && alpha <= 1 {
			a.alpha = alpha
		}
	}
}

// WithStaleAfter enables degraded mode: when a probe produces no sample
// for longer than d, its estimate is decayed conservatively each round
// (assume the silent resource is short, not fine) instead of being
// trusted indefinitely, and validity-range checks keep running against
// the decayed value so the scheduler still reacts. Zero disables.
func WithStaleAfter(d time.Duration) Option {
	return func(a *Agent) { a.staleAfter = d }
}

// WithDegrade tunes degraded mode: each stale round multiplies the
// estimate by factor (default 0.9), never dropping below floor × the last
// sample-backed estimate (default 0.25).
func WithDegrade(factor, floor float64) Option {
	return func(a *Agent) {
		if factor > 0 && factor < 1 {
			a.degradeFactor = factor
		}
		if floor >= 0 && floor <= 1 {
			a.degradeFloor = floor
		}
	}
}

// WithOnRound registers a hook invoked at the end of every sampling round
// with the round's flattened resource snapshot. The live performance
// store's ingest path hangs off this: the application pairs the snapshot
// with its achieved metrics to emit telemetry samples.
func WithOnRound(fn func(now time.Duration, est resource.Vector)) Option {
	return func(a *Agent) { a.onRound = fn }
}

// WithHysteresis overrides the consecutive-violation count needed to fire
// a trigger (1 fires immediately; larger values damp reconfiguration
// thrashing).
func WithHysteresis(n int) Option {
	return func(a *Agent) {
		if n < 1 {
			n = 1
		}
		a.hysteresis = n
	}
}

// New creates an agent. Triggers are delivered on Triggers(); the caller
// (normally the resource scheduler's run loop) drains that channel.
func New(sim *vtime.Sim, name string, opts ...Option) *Agent {
	a := &Agent{
		name:          name,
		sim:           sim,
		period:        DefaultPeriod,
		window:        DefaultWindow,
		hysteresis:    DefaultHysteresis,
		tolerance:     0.02,
		alpha:         0.1,
		degradeFactor: 0.9,
		degradeFloor:  0.25,
		history:       make(map[string][]sample),
		ewma:          make(map[string]float64),
		estimates:     make(map[string]resource.Vector),
		ranges:        make(map[string]*validRange),
		lastSeen:      make(map[string]time.Duration),
		lastGood:      make(map[string]float64),
		degraded:      make(map[string]bool),
		remote:        make(map[string]resource.Vector),
		triggers:      vtime.NewNamedChan[Trigger](sim, 64, name+".triggers"),
		inbox:         vtime.NewNamedChan[EstimateMsg](sim, 64, name+".inbox"),
		stop:          vtime.NewEvent(sim, name+".stop"),
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// EnableMetrics instruments the agent. Metric families (all labelled by
// agent): monitor_samples_total, monitor_triggers_total,
// monitor_out_of_band_error (distance of a triggering estimate beyond its
// validity band, i.e. how wrong the active configuration's assumption had
// become before detection), and monitor_estimate gauges per probed
// component.resource key.
func (a *Agent) EnableMetrics(reg *metrics.Registry) {
	a.reg = reg
	lbl := metrics.L("agent", a.name)
	a.mSamples = reg.Counter("monitor_samples_total", "Sampling rounds completed.", lbl)
	a.mTriggers = reg.Counter("monitor_triggers_total", "Out-of-range triggers fired.", lbl)
	a.mOutOfBand = reg.Histogram("monitor_out_of_band_error",
		"Distance of a triggering estimate beyond its validity band.", lbl)
	a.mStaleRound = reg.Counter("monitor_stale_rounds_total",
		"Sampling rounds in which a probe's estimate was decayed for staleness.", lbl)
	a.mDegraded = reg.Gauge("monitor_degraded",
		"Probe keys currently in degraded (stale-sample) mode.", lbl)
	a.mEstimates = make(map[string]*metrics.Gauge)
}

// estimateGauge returns (lazily creating) the gauge for one probe key.
func (a *Agent) estimateGauge(key string) *metrics.Gauge {
	if a.reg == nil {
		return nil
	}
	if g, ok := a.mEstimates[key]; ok {
		return g
	}
	g := a.reg.Gauge("monitor_estimate", "Smoothed resource-availability estimate.",
		metrics.L("agent", a.name), metrics.L("key", key))
	a.mEstimates[key] = g
	return g
}

// Name returns the agent name.
func (a *Agent) Name() string { return a.name }

// AddProbe registers a probe. Probes are sampled in registration order.
func (a *Agent) AddProbe(p Probe) { a.probes = append(a.probes, p) }

// Triggers returns the channel on which out-of-range notifications are
// delivered.
func (a *Agent) Triggers() *vtime.Chan[Trigger] { return a.triggers }

// Inbox returns the channel on which this agent receives peer estimates.
func (a *Agent) Inbox() *vtime.Chan[EstimateMsg] { return a.inbox }

// AddPeer registers a remote agent's inbox; estimates are pushed to peers
// whenever a trigger fires (the paper communicates "only when resource
// availability falls out of a range").
func (a *Agent) AddPeer(ch *vtime.Chan[EstimateMsg]) { a.peers = append(a.peers, ch) }

// SetValidRange declares the band of resource values within which the
// active configuration remains appropriate; estimates outside it fire a
// trigger. Passing lo > hi removes the range.
func (a *Agent) SetValidRange(component string, kind resource.Kind, lo, hi float64) {
	k := component + "." + string(kind)
	if lo > hi {
		delete(a.ranges, k)
		return
	}
	a.ranges[k] = &validRange{lo: lo, hi: hi}
}

// ClearRanges removes all validity ranges (used while a reconfiguration is
// in flight).
func (a *Agent) ClearRanges() {
	a.ranges = make(map[string]*validRange)
}

// Estimates returns the current smoothed estimates per component,
// including estimates received from peers for components this agent does
// not probe locally.
func (a *Agent) Estimates() map[string]resource.Vector {
	out := make(map[string]resource.Vector, len(a.estimates)+len(a.remote))
	for c, v := range a.remote {
		out[c] = v.Clone()
	}
	for c, v := range a.estimates {
		merged, ok := out[c]
		if !ok {
			out[c] = v.Clone()
			continue
		}
		for k, x := range v {
			merged[k] = x
		}
	}
	return out
}

// Snapshot flattens the estimates into a single resource vector, assuming
// at most one probed component per resource kind (the shape the
// performance database is indexed by: client CPU share, link bandwidth).
func (a *Agent) Snapshot() resource.Vector {
	out := resource.Vector{}
	for _, v := range a.Estimates() {
		for k, x := range v {
			out[k] = x
		}
	}
	return out
}

// SampleCount returns the number of sampling rounds completed.
func (a *Agent) SampleCount() int64 { return a.samples }

// Stop terminates the agent's process after the current round.
func (a *Agent) Stop() { a.stop.Set() }

// Start spawns the agent's periodic sampling process.
func (a *Agent) Start() {
	a.sim.Spawn(a.name, func(p *vtime.Proc) {
		for !a.stop.IsSet() {
			p.Sleep(a.period)
			a.round(p.Now())
			a.drainInbox(p.Now())
		}
	})
}

// RunOnce performs a single sampling round at the given instant; exposed
// for tests and for embedding the agent in an existing process loop.
func (a *Agent) RunOnce(now time.Duration) { a.round(now) }

func (a *Agent) round(now time.Duration) {
	a.samples++
	a.mSamples.Inc()
	for _, pr := range a.probes {
		key := pr.Component() + "." + string(pr.Kind())
		v, ok := pr.Sample(now)
		if !ok {
			a.maybeDegrade(now, pr, key)
			continue
		}
		a.lastSeen[key] = now
		if a.degraded[key] {
			delete(a.degraded, key)
			a.mDegraded.Set(float64(len(a.degraded)))
		}
		var est float64
		if a.smoothing == EWMA {
			if prev, ok := a.ewma[key]; ok {
				est = a.alpha*v + (1-a.alpha)*prev
			} else {
				est = v
			}
			a.ewma[key] = est
		} else {
			h := append(a.history[key], sample{at: now, v: v})
			// Discard samples older than the window.
			cut := 0
			for cut < len(h) && h[cut].at < now-a.window {
				cut++
			}
			h = h[cut:]
			a.history[key] = h
			// Windowed mean is the smoothed estimate.
			var sum float64
			for _, s := range h {
				sum += s.v
			}
			est = sum / float64(len(h))
		}
		comp := pr.Component()
		if a.estimates[comp] == nil {
			a.estimates[comp] = resource.Vector{}
		}
		a.estimates[comp][pr.Kind()] = est
		a.lastGood[key] = est
		a.estimateGauge(key).Set(est)
		a.checkRange(now, comp, pr.Kind(), est)
	}
	if a.onRound != nil {
		a.onRound(now, a.Snapshot())
	}
}

// maybeDegrade handles a probe that produced no sample this round. With
// staleness detection off (the default) the previous estimate is simply
// retained, as before. With it on, once the silence exceeds staleAfter
// the estimate is decayed geometrically toward a floor — the conservative
// reading of silence is "the resource is short", because every failure the
// fault layer injects (partition, paused node, black-holed link) looks
// like silence — and validity-range checks keep running on the decayed
// value so the scheduler reconfigures instead of waiting on a dead probe.
func (a *Agent) maybeDegrade(now time.Duration, pr Probe, key string) {
	if a.staleAfter <= 0 {
		return
	}
	seen, sampled := a.lastSeen[key]
	if !sampled || now-seen <= a.staleAfter {
		return
	}
	comp := pr.Component()
	est, ok := a.estimates[comp][pr.Kind()]
	if !ok {
		return
	}
	if !a.degraded[key] {
		a.degraded[key] = true
		a.mDegraded.Set(float64(len(a.degraded)))
	}
	a.mStaleRound.Inc()
	est *= a.degradeFactor
	if floor := a.degradeFloor * a.lastGood[key]; est < floor {
		est = floor
	}
	a.estimates[comp][pr.Kind()] = est
	if a.smoothing == EWMA {
		// Seed the EWMA with the decayed value so recovery does not snap
		// back from the pre-outage level.
		a.ewma[key] = est
	}
	a.estimateGauge(key).Set(est)
	a.checkRange(now, comp, pr.Kind(), est)
}

// Degraded reports whether any probe is currently in degraded
// (stale-sample) mode, and how many.
func (a *Agent) Degraded() int { return len(a.degraded) }

func (a *Agent) checkRange(now time.Duration, comp string, kind resource.Kind, est float64) {
	key := comp + "." + string(kind)
	r, ok := a.ranges[key]
	if !ok {
		return
	}
	// A small relative tolerance keeps estimates sitting exactly on a
	// band edge (within measurement noise) from producing trigger storms.
	slack := a.tolerance * math.Max(math.Abs(est), 1e-12)
	if est >= r.lo-slack && est <= r.hi+slack {
		r.count = 0
		return
	}
	r.count++
	if r.count < a.hysteresis {
		return
	}
	r.count = 0
	trig := Trigger{At: now, Component: comp, Kind: kind, Value: est, Lo: r.lo, Hi: r.hi}
	a.mTriggers.Inc()
	if a.mOutOfBand != nil {
		switch {
		case est < r.lo:
			a.mOutOfBand.Observe(r.lo - est)
		case est > r.hi:
			a.mOutOfBand.Observe(est - r.hi)
		}
	}
	// Non-blocking: if the scheduler is behind, the newest trigger matters
	// no more than the one already queued.
	a.triggers.TrySend(trig)
	a.pushToPeers(now)
}

func (a *Agent) pushToPeers(now time.Duration) {
	if len(a.peers) == 0 {
		return
	}
	msg := EstimateMsg{From: a.name, At: now, Estimates: a.Estimates()}
	for _, peer := range a.peers {
		peer.TrySend(msg)
	}
}

func (a *Agent) drainInbox(now time.Duration) {
	for {
		msg, ok, ready := a.inbox.TryRecv()
		if !ready || !ok {
			return
		}
		for comp, v := range msg.Estimates {
			if _, local := a.estimates[comp]; local {
				continue // local observations win
			}
			a.remote[comp] = v.Clone()
			// Remote estimates participate in this agent's validity-range
			// checks, so a peer's observation of a degraded resource can
			// trigger this agent's scheduler.
			for kind, est := range v {
				a.checkRange(now, comp, kind, est)
			}
		}
	}
}
