package monitor

import "testing"

func TestTrajectoryEmptyHistory(t *testing.T) {
	tr := NewTrajectory(8, 100)
	if x, y, ok := tr.Predict(); ok || x != 0 || y != 0 {
		t.Fatalf("empty history predicted (%d,%d,%v), want (0,0,false)", x, y, ok)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestTrajectorySingleSample(t *testing.T) {
	tr := NewTrajectory(8, 100)
	tr.Observe(40, 60)
	if _, _, ok := tr.Predict(); ok {
		t.Fatal("a single sample must not produce a prediction (no velocity)")
	}
}

func TestTrajectoryLinearMotion(t *testing.T) {
	tr := NewTrajectory(8, 1000)
	for i := 0; i < 5; i++ {
		tr.Observe(100+16*i, 200-8*i)
	}
	x, y, ok := tr.Predict()
	if !ok {
		t.Fatal("linear history should predict")
	}
	if x != 100+16*5 || y != 200-8*5 {
		t.Fatalf("predicted (%d,%d), want (%d,%d)", x, y, 100+16*5, 200-8*5)
	}
}

// TestTrajectoryTeleportResets is the prewarm-garbage guard: a fovea jump
// beyond the discontinuity threshold must reset the extrapolation — the
// next Predict reports no prediction instead of a point interpolated
// between the two unrelated fixations.
func TestTrajectoryTeleportResets(t *testing.T) {
	tr := NewTrajectory(8, 50)
	tr.Observe(0, 0)
	tr.Observe(10, 0)
	tr.Observe(20, 0)
	if x, _, ok := tr.Predict(); !ok || x != 30 {
		t.Fatalf("pre-teleport predict = (%d, ok=%v), want (30, true)", x, ok)
	}
	tr.Observe(500, 500) // teleport: distance ≫ 50
	if tr.Len() != 1 {
		t.Fatalf("window holds %d samples after teleport, want 1 (the landing point)", tr.Len())
	}
	if _, _, ok := tr.Predict(); ok {
		t.Fatal("predict after teleport must report no prediction, not extrapolate the jump")
	}
	// Motion re-accumulates from the landing point.
	tr.Observe(510, 500)
	if x, y, ok := tr.Predict(); !ok || x != 520 || y != 500 {
		t.Fatalf("post-teleport predict = (%d,%d,%v), want (520,500,true)", x, y, ok)
	}
}

// A jump exactly at the threshold is not a teleport; just beyond it is.
func TestTrajectoryTeleportThresholdEdge(t *testing.T) {
	tr := NewTrajectory(8, 10)
	tr.Observe(0, 0)
	tr.Observe(10, 0) // distance exactly 10: kept
	if tr.Len() != 2 {
		t.Fatalf("Len = %d after at-threshold move, want 2", tr.Len())
	}
	tr.Observe(21, 0) // distance 11 > 10: reset
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after beyond-threshold move, want 1", tr.Len())
	}
}

func TestTrajectoryWindowBound(t *testing.T) {
	tr := NewTrajectory(3, 0) // teleport detection off
	for i := 0; i < 10; i++ {
		tr.Observe(i*100, 0) // huge jumps, but teleport is disabled
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want window bound 3", tr.Len())
	}
	// Mean velocity over the 3 newest samples (700,800,900) is 100/round.
	if x, _, ok := tr.Predict(); !ok || x != 1000 {
		t.Fatalf("predict = %d, want 1000", x)
	}
}
