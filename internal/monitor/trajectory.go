package monitor

import "math"

// Trajectory predicts the next foveal center from a bounded history
// window of observed centers — the monitor-side prediction API the edge
// tier's prewarmer consumes. Prediction is linear extrapolation of the
// mean velocity across the window: smooth pans and drifts (the common
// interaction pattern between fovea teleports) extrapolate exactly, and
// anything the window cannot support (no history, a single sample, a
// just-reset window) reports no prediction rather than a guess.
//
// A teleport — a jump farther than the discontinuity threshold — resets
// the window to the landing point: extrapolating across a teleport would
// prewarm garbage half-way between two unrelated fixations, which costs
// origin bandwidth exactly when the cache most needs refilling.
//
// Trajectory is not synchronized; each proxy connection owns its own.
type Trajectory struct {
	window   int     // samples kept (≥ 2)
	teleport float64 // jump distance that resets the window (0 = never)
	xs, ys   []int   // oldest first
}

// DefaultTrajectoryWindow is how many recent fovea centers inform the
// extrapolation; long enough to average out jitter, short enough that an
// old direction change washes out within a few rounds.
const DefaultTrajectoryWindow = 8

// NewTrajectory creates an empty predictor. window is clamped to ≥ 2 (one
// velocity needs two samples); teleportDist ≤ 0 disables discontinuity
// detection.
func NewTrajectory(window int, teleportDist float64) *Trajectory {
	if window < 2 {
		window = 2
	}
	if teleportDist < 0 {
		teleportDist = 0
	}
	return &Trajectory{window: window, teleport: teleportDist}
}

// Len reports how many centers the window currently holds.
func (t *Trajectory) Len() int { return len(t.xs) }

// Reset empties the history window.
func (t *Trajectory) Reset() { t.xs, t.ys = t.xs[:0], t.ys[:0] }

// Observe appends one fovea center. A jump farther than the teleport
// threshold resets the window first, so the discontinuity never feeds the
// extrapolation.
func (t *Trajectory) Observe(x, y int) {
	if n := len(t.xs); n > 0 && t.teleport > 0 {
		dx, dy := float64(x-t.xs[n-1]), float64(y-t.ys[n-1])
		if math.Hypot(dx, dy) > t.teleport {
			t.Reset()
		}
	}
	t.xs = append(t.xs, x)
	t.ys = append(t.ys, y)
	if len(t.xs) > t.window {
		t.xs = t.xs[1:]
		t.ys = t.ys[1:]
	}
}

// Predict extrapolates the next center from the window's mean velocity.
// ok is false when the window holds fewer than two samples — empty
// history, a single observation, or a window just reset by a teleport —
// in which case x, y are zero and must not be used.
func (t *Trajectory) Predict() (x, y int, ok bool) {
	n := len(t.xs)
	if n < 2 {
		return 0, 0, false
	}
	// Mean velocity over the window: (last − first) / (n − 1). Summing the
	// consecutive deltas telescopes to the same value, so jitter inside
	// the window cancels instead of compounding.
	vx := float64(t.xs[n-1]-t.xs[0]) / float64(n-1)
	vy := float64(t.ys[n-1]-t.ys[0]) / float64(n-1)
	return t.xs[n-1] + int(math.Round(vx)), t.ys[n-1] + int(math.Round(vy)), true
}
