package monitor

import (
	"math"
	"testing"
	"time"

	"tunable/internal/resource"
	"tunable/internal/vtime"
)

// silencingProbe reports a constant value until a cutoff instant, then
// goes silent (ok=false) until an optional resume instant — the signature
// of a partitioned or paused node seen from the monitoring side.
type silencingProbe struct {
	val      float64
	silentAt time.Duration
	resumeAt time.Duration // 0 = never
}

func (s *silencingProbe) Component() string   { return "client" }
func (s *silencingProbe) Kind() resource.Kind { return resource.CPU }
func (s *silencingProbe) Sample(now time.Duration) (float64, bool) {
	if now >= s.silentAt && (s.resumeAt == 0 || now < s.resumeAt) {
		return 0, false
	}
	return s.val, true
}

func TestStaleProbeDecaysEstimateAndTriggers(t *testing.T) {
	sim := vtime.NewSim()
	a := New(sim, "mon",
		WithPeriod(10*time.Millisecond), WithWindow(50*time.Millisecond),
		WithHysteresis(1),
		WithStaleAfter(50*time.Millisecond), WithDegrade(0.8, 0.25))
	a.AddProbe(&silencingProbe{val: 0.9, silentAt: 100 * time.Millisecond})
	a.SetValidRange("client", resource.CPU, 0.7, 1.0)
	a.Start()
	var trig Trigger
	var fired bool
	sim.Spawn("listener", func(p *vtime.Proc) {
		tr, ok, ready := a.Triggers().RecvTimeout(p, 2*time.Second)
		fired = ok && ready
		trig = tr
		p.Sleep(500 * time.Millisecond) // let decay reach the floor
		a.Stop()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale decay never left the validity range")
	}
	if trig.At < 150*time.Millisecond {
		t.Fatalf("trigger at %v, before the staleness deadline", trig.At)
	}
	if a.Degraded() != 1 {
		t.Fatalf("Degraded() = %d, want 1", a.Degraded())
	}
	// Decay bottoms out at floor × last good estimate, not zero.
	got := a.Snapshot()[resource.CPU]
	want := 0.25 * 0.9
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("decayed estimate %v, want floor %v", got, want)
	}
}

func TestStaleDetectionOffRetainsEstimate(t *testing.T) {
	sim := vtime.NewSim()
	a := New(sim, "mon", WithPeriod(10*time.Millisecond), WithWindow(50*time.Millisecond))
	a.AddProbe(&silencingProbe{val: 0.9, silentAt: 100 * time.Millisecond})
	a.Start()
	sim.Spawn("driver", func(p *vtime.Proc) {
		p.Sleep(time.Second)
		a.Stop()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := a.Snapshot()[resource.CPU]; math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("estimate %v changed with staleness detection off, want 0.9 retained", got)
	}
	if a.Degraded() != 0 {
		t.Fatalf("Degraded() = %d with detection off", a.Degraded())
	}
}

func TestDegradedModeRecoversOnFreshSamples(t *testing.T) {
	sim := vtime.NewSim()
	a := New(sim, "mon",
		WithPeriod(10*time.Millisecond), WithWindow(50*time.Millisecond),
		WithStaleAfter(30*time.Millisecond), WithDegrade(0.8, 0.1))
	a.AddProbe(&silencingProbe{val: 0.9, silentAt: 100 * time.Millisecond, resumeAt: 400 * time.Millisecond})
	a.Start()
	var duringOutage float64
	sim.Spawn("driver", func(p *vtime.Proc) {
		p.Sleep(300 * time.Millisecond)
		duringOutage = a.Snapshot()[resource.CPU]
		p.Sleep(300 * time.Millisecond) // probe resumed at 400ms
		a.Stop()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if duringOutage >= 0.9 {
		t.Fatalf("estimate %v did not decay during the outage", duringOutage)
	}
	if a.Degraded() != 0 {
		t.Fatalf("Degraded() = %d after recovery, want 0", a.Degraded())
	}
	if got := a.Snapshot()[resource.CPU]; math.Abs(got-0.9) > 0.05 {
		t.Fatalf("estimate %v after recovery, want back near 0.9", got)
	}
}
