// Package profiler implements the paper's performance-database driver
// (Section 5): it repeatedly executes every application configuration in
// the virtual testbed at each point of a multidimensional resource grid,
// recording the achieved quality metrics. Samples are independent
// simulations, so the driver fans them out across a worker pool of OS
// threads; database insertion stays serialized in the collector. A
// sensitivity-analysis refinement loop adds samples where metrics change
// steeply between adjacent grid points.
package profiler

import (
	"fmt"
	"runtime"
	"sync"

	"tunable/internal/perfdb"
	"tunable/internal/resource"
	"tunable/internal/spec"
)

// RunFunc executes one testbed sample: the application under
// configuration cfg with the resources res, returning its quality
// metrics. Implementations must be safe for concurrent calls (each call
// builds its own simulated world).
type RunFunc func(cfg spec.Config, res resource.Vector) (spec.Metrics, error)

// Driver populates a performance database.
type Driver struct {
	app     *spec.App
	db      *perfdb.DB
	run     RunFunc
	grid    *resource.Grid
	configs []spec.Config
	reps    int
	workers int

	// Progress, if set, is called after each completed sample.
	Progress func(done, total int)
}

// Option customizes a driver.
type Option func(*Driver)

// WithConfigs overrides the configurations to sample (default: all
// guard-satisfying configurations of the application).
func WithConfigs(cfgs []spec.Config) Option {
	return func(d *Driver) { d.configs = cfgs }
}

// WithRepetitions sets how many times each sample point is executed
// (repeated runs are averaged by the database).
func WithRepetitions(n int) Option {
	return func(d *Driver) {
		if n > 0 {
			d.reps = n
		}
	}
}

// WithWorkers sets the worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(d *Driver) {
		if n > 0 {
			d.workers = n
		}
	}
}

// New creates a driver sweeping the given grid.
func New(db *perfdb.DB, grid *resource.Grid, run RunFunc, opts ...Option) (*Driver, error) {
	if db == nil || grid == nil || run == nil {
		return nil, fmt.Errorf("profiler: db, grid, and run function are required")
	}
	d := &Driver{
		app:     db.App(),
		db:      db,
		run:     run,
		grid:    grid,
		reps:    1,
		workers: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(d)
	}
	if d.configs == nil {
		d.configs = d.app.RunnableConfigs()
	}
	return d, nil
}

// job is one testbed execution.
type job struct {
	cfg spec.Config
	res resource.Vector
}

// result carries a finished sample to the collector.
type result struct {
	job job
	m   spec.Metrics
	err error
}

// Populate sweeps every configuration across every grid point, reps times
// each, and inserts the measurements into the database. The first
// execution error aborts the sweep (after in-flight samples drain).
func (d *Driver) Populate() error {
	jobs := make([]job, 0, len(d.configs)*d.grid.Size()*d.reps)
	for _, cfg := range d.configs {
		for _, pt := range d.grid.Points() {
			for r := 0; r < d.reps; r++ {
				jobs = append(jobs, job{cfg: cfg, res: pt})
			}
		}
	}
	return d.runJobs(jobs)
}

// runJobs fans jobs across the worker pool and collects results into the
// database in deterministic order (results are buffered per job index).
func (d *Driver) runJobs(jobs []job) error {
	if len(jobs) == 0 {
		return nil
	}
	type indexed struct {
		i int
		r result
	}
	jobCh := make(chan indexed, len(jobs))
	for i, j := range jobs {
		jobCh <- indexed{i: i, r: result{job: j}}
	}
	close(jobCh)
	out := make([]result, len(jobs))
	var wg sync.WaitGroup
	workers := d.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var doneMu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range jobCh {
				m, err := d.run(item.r.job.cfg, item.r.job.res)
				out[item.i] = result{job: item.r.job, m: m, err: err}
				if d.Progress != nil {
					doneMu.Lock()
					done++
					n := done
					doneMu.Unlock()
					d.Progress(n, len(jobs))
				}
			}
		}()
	}
	wg.Wait()
	// Insert in job order so the database contents are deterministic.
	for _, r := range out {
		if r.err != nil {
			return fmt.Errorf("profiler: %s at %s: %w", r.job.cfg.Key(), r.job.res, r.err)
		}
		if err := d.db.Add(r.job.cfg, r.job.res, r.m); err != nil {
			return err
		}
	}
	return nil
}

// Refine runs sensitivity-guided refinement: up to maxRounds times, it
// asks the database for regions where metrics change by more than
// threshold (relative) between adjacent samples, executes the suggested
// midpoints (capped at maxPerRound), and inserts them. It returns the
// number of samples added.
func (d *Driver) Refine(threshold float64, maxRounds, maxPerRound int) (int, error) {
	added := 0
	for round := 0; round < maxRounds; round++ {
		suggestions := d.db.SensitivityAnalysis(threshold)
		if len(suggestions) == 0 {
			break
		}
		var jobs []job
		seen := map[string]bool{}
		for _, s := range suggestions {
			key := s.Config.Key() + "|" + s.At.Key()
			if seen[key] {
				continue
			}
			// Skip points already sampled.
			if _, ok := d.db.Lookup(s.Config, s.At); ok {
				continue
			}
			seen[key] = true
			jobs = append(jobs, job{cfg: s.Config, res: s.At})
			if maxPerRound > 0 && len(jobs) >= maxPerRound {
				break
			}
		}
		if len(jobs) == 0 {
			break
		}
		if err := d.runJobs(jobs); err != nil {
			return added, err
		}
		added += len(jobs)
	}
	return added, nil
}
