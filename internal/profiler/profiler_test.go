package profiler

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"tunable/internal/perfdb"
	"tunable/internal/resource"
	"tunable/internal/spec"
)

func testApp() *spec.App {
	return spec.MustParse(`
app prof;
control_parameters { int n in {1, 2}; }
qos_metric { duration t minimize; }
`)
}

// analyticRun computes t = n / cpu, a deterministic stand-in for a testbed
// execution.
func analyticRun(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
	n := float64(cfg["n"].I)
	cpu := res[resource.CPU]
	if cpu <= 0 {
		return nil, fmt.Errorf("bad cpu %v", cpu)
	}
	return spec.Metrics{"t": n / cpu}, nil
}

func TestPopulateFillsGrid(t *testing.T) {
	app := testApp()
	db := perfdb.New(app)
	grid := resource.NewGrid(resource.Axis{Kind: resource.CPU, Points: resource.Linspace(0.2, 1.0, 5)})
	d, err := New(db, grid, analyticRun)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Populate(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2*5 {
		t.Fatalf("db has %d records, want 10", db.Len())
	}
	rec, ok := db.Lookup(spec.Config{"n": spec.Int(2)}, resource.Vector{resource.CPU: 0.4})
	if !ok {
		t.Fatal("missing record")
	}
	if math.Abs(rec.Metrics["t"]-5.0) > 1e-9 {
		t.Fatalf("t=%v", rec.Metrics["t"])
	}
}

func TestPopulateParallelMatchesSerial(t *testing.T) {
	grid := resource.NewGrid(resource.Axis{Kind: resource.CPU, Points: resource.Linspace(0.1, 1.0, 12)})
	build := func(workers int) *perfdb.DB {
		db := perfdb.New(testApp())
		d, err := New(db, grid, analyticRun, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Populate(); err != nil {
			t.Fatal(err)
		}
		return db
	}
	serial, parallel := build(1), build(8)
	for _, cfg := range serial.Configs() {
		for _, rec := range serial.Records(cfg) {
			p, ok := parallel.Lookup(cfg, rec.Resources)
			if !ok || p.Metrics["t"] != rec.Metrics["t"] {
				t.Fatalf("parallel/serial divergence at %s %s", cfg.Key(), rec.Resources)
			}
		}
	}
}

func TestRepetitionsAveraged(t *testing.T) {
	var calls atomic.Int64
	run := func(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
		k := calls.Add(1)
		return spec.Metrics{"t": float64(k)}, nil // varies per call
	}
	db := perfdb.New(testApp())
	grid := resource.NewGrid(resource.Axis{Kind: resource.CPU, Points: []float64{0.5}})
	d, _ := New(db, grid, run, WithRepetitions(3), WithConfigs([]spec.Config{{"n": spec.Int(1)}}))
	if err := d.Populate(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls", calls.Load())
	}
	rec, _ := db.Lookup(spec.Config{"n": spec.Int(1)}, resource.Vector{resource.CPU: 0.5})
	if rec.Samples != 3 {
		t.Fatalf("samples %d", rec.Samples)
	}
	if rec.Metrics["t"] != 2.0 { // mean of 1,2,3
		t.Fatalf("averaged t=%v", rec.Metrics["t"])
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	run := func(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
		return nil, fmt.Errorf("boom")
	}
	db := perfdb.New(testApp())
	grid := resource.NewGrid(resource.Axis{Kind: resource.CPU, Points: []float64{0.5}})
	d, _ := New(db, grid, run)
	if err := d.Populate(); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestRefineAddsSamplesInSteepRegions(t *testing.T) {
	// Step function: steep between 0.4 and 0.6.
	run := func(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
		if res[resource.CPU] < 0.5 {
			return spec.Metrics{"t": 10}, nil
		}
		return spec.Metrics{"t": 1}, nil
	}
	db := perfdb.New(testApp())
	grid := resource.NewGrid(resource.Axis{Kind: resource.CPU, Points: []float64{0.2, 0.4, 0.6, 0.8}})
	d, _ := New(db, grid, run, WithConfigs([]spec.Config{{"n": spec.Int(1)}}))
	if err := d.Populate(); err != nil {
		t.Fatal(err)
	}
	before := db.Len()
	added, err := d.Refine(0.5, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("refinement added nothing despite a step")
	}
	if db.Len() != before+added {
		t.Fatalf("db %d, want %d", db.Len(), before+added)
	}
	// The midpoint of the steep interval must now exist.
	if _, ok := db.Lookup(spec.Config{"n": spec.Int(1)}, resource.Vector{resource.CPU: 0.5}); !ok {
		t.Fatal("midpoint 0.5 not sampled")
	}
}

func TestRefineStopsOnFlatProfile(t *testing.T) {
	run := func(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
		return spec.Metrics{"t": 1}, nil
	}
	db := perfdb.New(testApp())
	grid := resource.NewGrid(resource.Axis{Kind: resource.CPU, Points: resource.Linspace(0.2, 1, 5)})
	d, _ := New(db, grid, run)
	if err := d.Populate(); err != nil {
		t.Fatal(err)
	}
	added, err := d.Refine(0.1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("flat profile refined %d times", added)
	}
}

func TestProgressCallback(t *testing.T) {
	db := perfdb.New(testApp())
	grid := resource.NewGrid(resource.Axis{Kind: resource.CPU, Points: resource.Linspace(0.2, 1, 4)})
	d, _ := New(db, grid, analyticRun)
	var last atomic.Int64
	d.Progress = func(done, total int) {
		last.Store(int64(done))
		if total != 8 {
			t.Errorf("total %d", total)
		}
	}
	if err := d.Populate(); err != nil {
		t.Fatal(err)
	}
	if last.Load() != 8 {
		t.Fatalf("last progress %d", last.Load())
	}
}

func TestNewValidation(t *testing.T) {
	db := perfdb.New(testApp())
	grid := resource.NewGrid()
	if _, err := New(nil, grid, analyticRun); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := New(db, nil, analyticRun); err == nil {
		t.Fatal("nil grid accepted")
	}
	if _, err := New(db, grid, nil); err == nil {
		t.Fatal("nil run accepted")
	}
}
