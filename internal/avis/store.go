package avis

import (
	"fmt"
	"sync"

	"tunable/internal/imagery"
	"tunable/internal/lru"
	"tunable/internal/wavelet"
)

// DefaultStoreEntries bounds the shared pyramid cache: a 1024²/4-level
// pyramid costs ~10 MiB of coefficients, so 64 entries keep the
// worst-case footprint well under a gigabyte while still covering every
// image set the experiments sweep.
const DefaultStoreEntries = 64

// ImageStore caches decomposed pyramids under an LRU bound. Building a
// 1024² pyramid costs real milliseconds and tens of megabytes, and
// profiling sweeps run the same images through hundreds of simulated
// worlds, so pyramids are shared (they are read-only after construction).
// Cache misses are single-flight per key: the mutex only guards the
// replacement policy, and each entry carries its own sync.Once, so the
// profiler's parallel workers can build pyramids for different images
// concurrently while duplicate requests for the same image wait on the
// one in-flight build. Eviction drops the cache's reference only —
// builders holding an evicted entry finish (and callers use) its pyramid
// unharmed; the next request for that key simply rebuilds.
type ImageStore struct {
	mu    sync.Mutex
	cache *lru.Policy[string, *storeEntry]
}

// storeEntry is one single-flight cache slot.
type storeEntry struct {
	once sync.Once
	p    *wavelet.Pyramid
	err  error
}

// NewImageStore creates an empty cache bounded at DefaultStoreEntries.
func NewImageStore() *ImageStore { return NewImageStoreCap(DefaultStoreEntries) }

// NewImageStoreCap creates an empty cache bounded at maxEntries pyramids
// (0 = unlimited, the pre-LRU behavior).
func NewImageStoreCap(maxEntries int) *ImageStore {
	return &ImageStore{cache: lru.New[string, *storeEntry](lru.Config{MaxEntries: maxEntries}, nil)}
}

// sharedStore serves all worlds that do not supply their own store.
var sharedStore = NewImageStore()

// SharedStore returns the process-wide pyramid cache.
func SharedStore() *ImageStore { return sharedStore }

// Len reports the number of cached pyramids (including in-flight builds).
func (s *ImageStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Len()
}

// Evictions reports how many pyramids the LRU bound has pushed out.
func (s *ImageStore) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Evictions()
}

// Pyramid returns the pyramid for a synthetic image identified by
// (side, levels, seed), generating and decomposing it on first use.
func (s *ImageStore) Pyramid(side, levels int, seed int64) (*wavelet.Pyramid, error) {
	key := fmt.Sprintf("%d/%d/%d", side, levels, seed)
	s.mu.Lock()
	e, ok := s.cache.Get(key)
	if !ok {
		e = &storeEntry{}
		s.cache.Put(key, e, 1)
	}
	s.mu.Unlock()
	e.once.Do(func() {
		im := imagery.Generate(side, seed)
		e.p, e.err = wavelet.Decompose(im, levels)
	})
	return e.p, e.err
}

// Image regenerates the source image for verification (PSNR checks).
func (s *ImageStore) Image(side int, seed int64) *imagery.Image {
	return imagery.Generate(side, seed)
}

// RandomInteraction builds a deterministic user-interaction model for the
// client: at each round, with probability prob (in 1/256ths), the fovea
// jumps to a pseudo-random position in the image, restarting the
// progressive transmission there — the check_for_user_interaction effect
// of Figure 2. side is the full-resolution image side.
func RandomInteraction(seed int64, side int, prob256 int) func(img, round int) (int, int, bool) {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0xD6E8FEB86659FD93
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	return func(img, round int) (int, int, bool) {
		h := next()
		if int(h&0xFF) >= prob256 {
			return 0, 0, false
		}
		margin := side / 8
		span := uint64(side - 2*margin)
		x := margin + int((h>>8)%span)
		y := margin + int((h>>32)%span)
		return x, y, true
	}
}
