package avis

import (
	"errors"
	"net"
	"testing"
	"time"

	"tunable/internal/metrics"
	"tunable/internal/wavelet"
)

// startRealServer launches a real server on a loopback listener.
func startRealServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	srv, err := NewRealServer(256, 4, []int64{1, 2}, testStore)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), func() { l.Close() }
}

func dialReal(t *testing.T, addr string, p Params) *RealClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRealClient(conn, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRealTCPFetch(t *testing.T) {
	addr, stop := startRealServer(t)
	defer stop()
	c := dialReal(t, addr, Params{DR: 64, Codec: "lzw", Level: 4})
	defer c.Close()
	if c.Geometry().Side != 256 || c.Geometry().NumImages != 2 {
		t.Fatalf("geometry %+v", c.Geometry())
	}
	st, err := c.FetchImage(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 4 {
		t.Fatalf("rounds %d", st.Rounds)
	}
	if st.RawBytes < 256*256 {
		t.Fatalf("raw bytes %d", st.RawBytes)
	}
	if st.WireBytes >= st.RawBytes {
		t.Fatalf("compression ineffective: wire %d raw %d", st.WireBytes, st.RawBytes)
	}
	if len(c.Stats()) != 1 {
		t.Fatal("stats not recorded")
	}
}

func TestRealTCPReconstruction(t *testing.T) {
	addr, stop := startRealServer(t)
	defer stop()
	c := dialReal(t, addr, Params{DR: 64, Codec: "bzw", Level: 4})
	defer c.Close()
	canvas, err := wavelet.NewCanvas(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchImage(1, canvas); err != nil {
		t.Fatal(err)
	}
	recon, err := canvas.Reconstruct(4)
	if err != nil {
		t.Fatal(err)
	}
	ref := testStore.Image(256, 2)
	psnr, err := refPSNR(ref, recon)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 30 {
		t.Fatalf("PSNR over real TCP %.1f dB", psnr)
	}
}

func TestRealTCPCodecSwitch(t *testing.T) {
	addr, stop := startRealServer(t)
	defer stop()
	c := dialReal(t, addr, Params{DR: 128, Codec: "lzw", Level: 3})
	defer c.Close()
	st1, err := c.FetchImage(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetParams(Params{DR: 128, Codec: "bzw", Level: 3}); err != nil {
		t.Fatal(err)
	}
	st2, err := c.FetchImage(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st1.RawBytes != st2.RawBytes {
		t.Fatalf("raw bytes differ: %d vs %d", st1.RawBytes, st2.RawBytes)
	}
	if st2.WireBytes >= st1.WireBytes {
		t.Fatalf("bzw (%d) not smaller than lzw (%d) on the wire", st2.WireBytes, st1.WireBytes)
	}
}

func TestRealTCPErrors(t *testing.T) {
	addr, stop := startRealServer(t)
	defer stop()
	c := dialReal(t, addr, Params{DR: 64, Codec: "lzw", Level: 4})
	defer c.Close()
	if _, err := c.FetchImage(99, nil); err == nil {
		t.Fatal("out-of-range image succeeded")
	}
	if err := c.SetCodec("zip9000"); err == nil {
		t.Fatal("unknown codec accepted locally")
	}
	// A fresh client that never connected cannot fetch.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c2, err := NewRealClient(conn, Params{DR: 64, Codec: "lzw", Level: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.FetchImage(0, nil); err == nil {
		t.Fatal("fetch before connect succeeded")
	}
}

func TestRealTCPShapedLink(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time shaping test")
	}
	addr, stop := startRealServer(t)
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Shaping the client's uplink affects only requests (tiny); this test
	// just exercises the Shape path end to end.
	c, err := NewRealClient(Shape(conn, 1<<20), Params{DR: 128, Codec: "lzw", Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchImage(0, nil); err != nil {
		t.Fatal(err)
	}
	if Shape(nil, 0) != nil {
		t.Fatal("Shape(0) must pass through")
	}
}

// TestRealTCPIOTimeout connects to a listener that accepts and then never
// speaks: the handshake read must fail with the typed timeout error rather
// than hang.
func TestRealTCPIOTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept, then say nothing
		}
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRealClient(conn, Params{DR: 64, Codec: "lzw", Level: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIOTimeout(100 * time.Millisecond)

	start := time.Now()
	err = c.Connect()
	if err == nil {
		t.Fatal("Connect against a mute peer succeeded")
	}
	if !errors.Is(err, ErrIOTimeout) {
		t.Fatalf("error %v does not match ErrIOTimeout", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a *TimeoutError", err)
	}
	if !te.Timeout() {
		t.Fatal("TimeoutError.Timeout() must report true")
	}
	if te.After != 100*time.Millisecond {
		t.Fatalf("TimeoutError.After = %v, want 100ms", te.After)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not armed", elapsed)
	}
}

// TestRealTCPTimeoutAllowsProgress sets a short per-operation timeout and
// verifies a full multi-round fetch still succeeds: the deadline is a
// progress watchdog, re-armed on every read/write, not a whole-transfer cap.
func TestRealTCPTimeoutAllowsProgress(t *testing.T) {
	addr, stop := startRealServer(t)
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRealClient(conn, Params{DR: 64, Codec: "lzw", Level: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIOTimeout(2 * time.Second)
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchImage(0, nil); err != nil {
		t.Fatalf("fetch with progress deadline: %v", err)
	}
}

// TestRealTCPMetrics runs an instrumented server/client pair through a
// fetch and checks the avis_* families fill in on both sides.
func TestRealTCPMetrics(t *testing.T) {
	srv, err := NewRealServer(256, 4, []int64{1}, testStore)
	if err != nil {
		t.Fatal(err)
	}
	sreg := metrics.New()
	srv.EnableMetrics(sreg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRealClient(conn, Params{DR: 64, Codec: "lzw", Level: 4})
	if err != nil {
		t.Fatal(err)
	}
	creg := metrics.New()
	c.EnableMetrics(creg)
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := c.FetchImage(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	if got := creg.Counter("avis_images_total", "").Value(); got != 1 {
		t.Errorf("client avis_images_total = %g, want 1", got)
	}
	if got := creg.Counter("avis_rounds_total", "").Value(); got != float64(st.Rounds) {
		t.Errorf("client avis_rounds_total = %g, want %d", got, st.Rounds)
	}
	if got := creg.Counter("avis_wire_bytes_total", "").Value(); got != float64(st.WireBytes) {
		t.Errorf("client avis_wire_bytes_total = %g, want %d", got, st.WireBytes)
	}
	if got := creg.Histogram("avis_fetch_seconds", "").Count(); got != 1 {
		t.Errorf("client avis_fetch_seconds count = %d, want 1", got)
	}
	if got := sreg.Counter("avis_connections_total", "").Value(); got != 1 {
		t.Errorf("server avis_connections_total = %g, want 1", got)
	}
	if got := sreg.Counter("avis_requests_total", "").Value(); got < float64(st.Rounds) {
		t.Errorf("server avis_requests_total = %g, want ≥ %d", got, st.Rounds)
	}
	if got := sreg.Histogram("avis_request_seconds", "").Count(); got == 0 {
		t.Error("server avis_request_seconds histogram empty")
	}
}
