package avis

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// startTrackedServer is like startRealServer but also hands back the
// server, for tests that drive Shutdown and ActiveSessions.
func startTrackedServer(t *testing.T) (*RealServer, net.Listener) {
	t.Helper()
	srv, err := NewRealServer(256, 4, []int64{1, 2}, testStore)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	return srv, l
}

// TestRealServerConcurrentClients hammers one server with parallel
// sessions. Run under -race it proves the per-server counters
// (serverCounters atomics) and the connection registry tolerate
// concurrent mutation from every handler goroutine.
func TestRealServerConcurrentClients(t *testing.T) {
	srv, l := startTrackedServer(t)
	defer srv.Shutdown(time.Second)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			c, err := NewRealClient(conn, Params{DR: 64, Codec: "lzw", Level: 4})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := c.Connect(); err != nil {
				errs <- err
				return
			}
			if _, err := c.FetchImage(i%2, nil); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	// 8 sessions × 4 rounds each; exact equality proves no lost updates.
	if st.Requests != clients*4 {
		t.Fatalf("requests %d, want %d", st.Requests, clients*4)
	}
	if st.Errors != 0 {
		t.Fatalf("errors %d", st.Errors)
	}

	// Handlers unwind after the clients hang up.
	deadline := time.Now().Add(2 * time.Second)
	for srv.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions still active: %d", srv.ActiveSessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRealServerShutdownDrain checks graceful shutdown semantics: Serve
// returns net.ErrClosed, an idle session is force-cut once the drain
// bound expires, and a shut-down server accepts nothing new.
func TestRealServerShutdownDrain(t *testing.T) {
	srv, err := NewRealServer(256, 4, []int64{1}, testStore)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	// An idle client that never hangs up.
	c := dialReal(t, l.Addr().String(), Params{DR: 64, Codec: "lzw", Level: 4})
	defer c.Close()
	if srv.ActiveSessions() != 1 {
		t.Fatalf("active %d", srv.ActiveSessions())
	}

	forced := srv.Shutdown(50 * time.Millisecond)
	if forced != 1 {
		t.Fatalf("forced %d sessions, want 1", forced)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if srv.ActiveSessions() != 0 {
		t.Fatalf("active %d after shutdown", srv.ActiveSessions())
	}
	if _, err := net.Dial("tcp", l.Addr().String()); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestRealServerShutdownWaitsForDrain checks the happy path: sessions
// that finish within the bound are not cut.
func TestRealServerShutdownWaitsForDrain(t *testing.T) {
	srv, l := startTrackedServer(t)
	c := dialReal(t, l.Addr().String(), Params{DR: 64, Codec: "lzw", Level: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.FetchImage(0, nil)
		c.Close()
	}()
	<-done
	if forced := srv.Shutdown(time.Second); forced != 0 {
		t.Fatalf("cut %d sessions that had already finished", forced)
	}
}
