package avis

import (
	"bytes"
	"testing"
	"testing/quick"

	"tunable/internal/vtime"
)

func TestGeomRoundTrip(t *testing.T) {
	g := Geometry{Side: 1024, Levels: 4, NumImages: 10}
	got, err := decodeGeom(encodeGeom(g))
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("round trip %+v", got)
	}
	if _, err := decodeGeom([]byte{tagGeom, 1}); err == nil {
		t.Fatal("short geometry accepted")
	}
	if _, err := decodeGeom(encodeHello()); err == nil {
		t.Fatal("wrong tag accepted")
	}
}

func TestNotifyRoundTrip(t *testing.T) {
	for _, name := range []string{"lzw", "bzw", "raw", ""} {
		got, err := decodeNotify(encodeNotify(name))
		if err != nil {
			t.Fatal(err)
		}
		if got != name {
			t.Fatalf("round trip %q", got)
		}
	}
	if _, err := decodeNotify([]byte{tagNotify, 5, 'a'}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(img, x, y, r, prev uint16, level uint8) bool {
		req := Request{
			Image: int(img), X: int(x), Y: int(y),
			R: int(r), PrevR: int(prev), Level: int(level % 8),
		}
		got, err := decodeRequest(encodeRequest(req))
		return err == nil && got == req
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRequest([]byte{tagRequest, 0}); err == nil {
		t.Fatal("short request accepted")
	}
}

func TestSegmentRoundTripProperty(t *testing.T) {
	f := func(img uint16, raw uint16, last bool, payload []byte) bool {
		seg := Segment{Image: int(img), Raw: int(raw), Last: last, Payload: payload}
		got, err := decodeSegment(encodeSegment(seg))
		if err != nil {
			return false
		}
		if got.Image != seg.Image || got.Raw != seg.Raw || got.Last != seg.Last {
			return false
		}
		return bytes.Equal(got.Payload, seg.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSegment([]byte{tagSegment}); err == nil {
		t.Fatal("short segment accepted")
	}
}

// Decoders must reject (never panic on) arbitrary input bytes.
func TestDecodersRejectFuzz(t *testing.T) {
	f := func(data []byte) bool {
		// None of these may panic; errors are expected.
		decodeGeom(data)
		decodeNotify(data)
		decodeRequest(data)
		decodeSegment(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The simulated server must answer garbage messages with errors, not die.
func TestServerSurvivesGarbage(t *testing.T) {
	w := testWorld(t, WorldConfig{Params: Params{DR: 64, Codec: "lzw", Level: 4}})
	w.Sim.Spawn("fuzzer", func(p *vtime.Proc) {
		for _, msg := range [][]byte{
			{0xFF, 1, 2, 3},
			{tagRequest},
			{tagNotify, 200},
			{tagGeom},
		} {
			w.Link.A().Send(p, msg)
			reply, ok := w.Link.A().Recv(p)
			if !ok || len(reply) == 0 || reply[0] != tagError {
				t.Errorf("message %v: reply %v %v", msg, reply, ok)
			}
		}
		w.Link.A().Send(p, encodeClose())
	})
	if err := w.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}
