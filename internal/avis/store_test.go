package avis

import (
	"fmt"
	"sync"
	"testing"
)

// TestImageStoreEviction drives a store bounded at 2 pyramids through 6
// distinct keys from concurrent single-flight builders: the bound must
// hold, every caller must still get a correct pyramid (evicted or not),
// and re-requesting an evicted key must rebuild rather than fail.
func TestImageStoreEviction(t *testing.T) {
	const (
		cap     = 2
		keys    = 6
		workers = 4
		side    = 64
		levels  = 3
	)
	s := NewImageStoreCap(cap)
	var wg sync.WaitGroup
	errs := make(chan error, keys*workers)
	for k := 0; k < keys; k++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				p, err := s.Pyramid(side, levels, seed)
				if err != nil {
					errs <- fmt.Errorf("seed %d: %v", seed, err)
					return
				}
				if p.Side != side || p.Levels != levels {
					errs <- fmt.Errorf("seed %d: got %dx%d/%d", seed, p.Side, p.Side, p.Levels)
				}
			}(int64(k + 1))
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := s.Len(); n > cap {
		t.Fatalf("store holds %d entries, bound is %d", n, cap)
	}
	if s.Evictions() == 0 {
		t.Fatal("expected evictions after inserting more keys than the bound")
	}

	// An evicted key rebuilds: the store was just churned through 6 keys
	// with capacity 2, so seed 1 is long gone; it must come back healthy
	// and identical to a fresh decomposition.
	p, err := s.Pyramid(side, levels, 1)
	if err != nil {
		t.Fatalf("rebuild after eviction: %v", err)
	}
	fresh, err := NewImageStoreCap(1).Pyramid(side, levels, 1)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := p.ExtractRegion(levels, side/2, side/2, side/4, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := fresh.ExtractRegion(levels, side/2, side/2, side/4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := c1.Encode(), c2.Encode()
	c1.Release()
	c2.Release()
	if string(b1) != string(b2) {
		t.Fatal("rebuilt pyramid differs from a fresh decomposition")
	}
}

// TestImageStoreSingleFlightUnderEviction hammers ONE key from many
// goroutines while other goroutines churn the cache past its bound: every
// caller of the hot key must observe the same (or an equivalent rebuilt)
// pyramid with no error, even when its entry is evicted mid-build.
func TestImageStoreSingleFlightUnderEviction(t *testing.T) {
	const side, levels = 32, 2
	s := NewImageStoreCap(2)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() { // hot key
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if _, err := s.Pyramid(side, levels, 42); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func(i int) { // churn: distinct keys force evictions
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if _, err := s.Pyramid(side, levels, int64(100+i*8+j)); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := s.Len(); n > 2 {
		t.Fatalf("store holds %d entries, bound is 2", n)
	}
}
