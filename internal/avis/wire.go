package avis

import (
	"fmt"
	"io"

	"tunable/internal/bufpool"
	"tunable/internal/wire"
)

// Exported wire-protocol codecs. The edge tier (internal/edge) terminates
// the same frame protocol on its client-facing side and re-speaks it on
// its origin-facing side, so the message encoders and the reply
// segmentation discipline must be shared, not re-derived: a proxy that
// segments replies differently from the origin would still reconstruct
// identical images, but its wire traces would diverge from the server's
// and the golden-format tests could no longer pin both.

// Exported message-tag bytes (see the unexported tag* constants for the
// protocol map).
const (
	TagHello   = tagHello
	TagGeom    = tagGeom
	TagNotify  = tagNotify
	TagRequest = tagRequest
	TagSegment = tagSegment
	TagClose   = tagClose
	TagError   = tagError
)

// EncodeHello renders the client handshake request.
func EncodeHello() []byte { return encodeHello() }

// EncodeGeom renders a server geometry announcement.
func EncodeGeom(g Geometry) []byte { return encodeGeom(g) }

// DecodeGeom parses a geometry announcement.
func DecodeGeom(b []byte) (Geometry, error) { return decodeGeom(b) }

// EncodeNotify renders a codec-change announcement.
func EncodeNotify(codec string) []byte { return encodeNotify(codec) }

// DecodeNotify parses a codec-change announcement.
func DecodeNotify(b []byte) (string, error) { return decodeNotify(b) }

// EncodeRequest renders a foveal increment request.
func EncodeRequest(r Request) []byte { return encodeRequest(r) }

// DecodeRequest parses a foveal increment request.
func DecodeRequest(b []byte) (Request, error) { return decodeRequest(b) }

// EncodeSegment renders one reply segment.
func EncodeSegment(s Segment) []byte { return encodeSegment(s) }

// DecodeSegment parses one reply segment.
func DecodeSegment(b []byte) (Segment, error) { return decodeSegment(b) }

// EncodeError renders a server-side failure notice.
func EncodeError(msg string) []byte { return encodeError(msg) }

// EncodeClose renders the end-of-session notice.
func EncodeClose() []byte { return encodeClose() }

// WriteSegments slices one encoded reply into pipelined segment frames —
// the server side of a round. rawLen is the reply's pre-compression size;
// each segment is charged a proportional share of it so the client's
// decode/display cost model stays exact under any segmentation. An empty
// reply still produces one (empty, Last) segment so the round always
// terminates. onSeg, when non-nil, observes each segment's payload size
// (the telemetry hook). segBytes ≤ 0 takes DefaultSegmentBytes.
func WriteSegments(w io.Writer, image, seq, rawLen int, enc []byte, segBytes int, onSeg func(wireBytes int)) error {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	total := len(enc)
	for off := 0; off < total || off == 0; off += segBytes {
		end := off + segBytes
		if end > total {
			end = total
		}
		rawShare := rawLen
		if total > 0 {
			rawShare = rawLen * (end - off) / total
		}
		seg := Segment{Image: image, Seq: seq, Raw: rawShare, Last: end == total, Payload: enc[off:end]}
		if err := writeFrame(w, encodeSegment(seg)); err != nil {
			return err
		}
		if onSeg != nil {
			onSeg(end - off)
		}
		if end == total {
			break
		}
	}
	return nil
}

// WriteSegmentsWire is WriteSegments over a wire.Conn: the same
// segmentation discipline, but every segment header is rendered into one
// pooled arena and gathered with its payload slice by scatter-gather
// framing, so the whole reply — all segments, headers and payloads — goes
// out in a single vectored write with zero payload copies.
func WriteSegmentsWire(c *wire.Conn, image, seq, rawLen int, enc []byte, segBytes int, onSeg func(wireBytes int)) error {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	total := len(enc)
	nseg := (total + segBytes - 1) / segBytes
	if nseg == 0 {
		nseg = 1
	}
	// One arena for every header; capacity is reserved up front so the
	// slices handed to AppendFrame2 stay valid until the flush.
	heads := bufpool.Get(nseg * segmentHeadLen)[:0]
	defer bufpool.Put(heads)
	for off := 0; off < total || off == 0; off += segBytes {
		end := off + segBytes
		if end > total {
			end = total
		}
		rawShare := rawLen
		if total > 0 {
			rawShare = rawLen * (end - off) / total
		}
		hstart := len(heads)
		heads = appendSegmentHead(heads, Segment{Image: image, Seq: seq, Raw: rawShare, Last: end == total})
		if err := c.AppendFrame2(heads[hstart:], enc[off:end]); err != nil {
			return err
		}
		if onSeg != nil {
			onSeg(end - off)
		}
		if end == total {
			break
		}
	}
	return c.Flush()
}

// ReadReply gathers the segments of one round into dst (append-style),
// returning the reassembled compressed payload — the client side of a
// round, shared by the real client and the edge proxy's origin leg. A
// tagError frame surfaces as an error; any other unexpected frame is a
// protocol violation.
func ReadReply(r io.Reader, dst []byte) ([]byte, error) {
	for {
		msg, err := readFrame(r)
		if err != nil {
			return dst, err
		}
		if len(msg) > 0 && msg[0] == tagError {
			return dst, fmt.Errorf("avis: server error: %s", msg[1:])
		}
		seg, err := decodeSegment(msg)
		if err != nil {
			return dst, err
		}
		dst = append(dst, seg.Payload...)
		if seg.Last {
			return dst, nil
		}
	}
}
