package avis

import (
	"encoding/binary"
	"fmt"
)

// Wire protocol. Each link message carries exactly one protocol message;
// the first byte is the type tag.
const (
	tagHello   = 'H' // client → server: request geometry
	tagGeom    = 'G' // server → client: side, levels, image count
	tagNotify  = 'N' // client → server: compression type (Figure 2's notify)
	tagRequest = 'R' // client → server: foveal increment request
	tagSegment = 'S' // server → client: one reply segment
	tagClose   = 'C' // client → server: end of session
	tagError   = 'E' // server → client: request failed
)

// Geometry describes the served image set.
type Geometry struct {
	Side      int
	Levels    int
	NumImages int
}

// Request asks for the coefficients refining the square of radius R
// centred at (X, Y) at resolution Level, excluding the already-sent
// radius PrevR (Figure 2's send_request(x, y, r, l)). Seq identifies the
// round attempt: replies carry it back so a client that timed out and
// retransmitted can discard stale segments from the aborted attempt.
type Request struct {
	Image          int
	Seq            int
	X, Y, R, PrevR int
	Level          int
}

// Segment is one pipelined slice of a reply. Raw is the number of
// pre-compression bytes this slice accounts for (the client charges its
// decode and display cost from it); Last marks the end of the round; Seq
// echoes the request's attempt number.
type Segment struct {
	Image   int
	Seq     int
	Raw     int
	Last    bool
	Payload []byte
}

func encodeHello() []byte { return []byte{tagHello} }

func encodeGeom(g Geometry) []byte {
	out := make([]byte, 13)
	out[0] = tagGeom
	binary.LittleEndian.PutUint32(out[1:], uint32(g.Side))
	binary.LittleEndian.PutUint32(out[5:], uint32(g.Levels))
	binary.LittleEndian.PutUint32(out[9:], uint32(g.NumImages))
	return out
}

func decodeGeom(b []byte) (Geometry, error) {
	if len(b) != 13 || b[0] != tagGeom {
		return Geometry{}, fmt.Errorf("avis: malformed geometry message")
	}
	return Geometry{
		Side:      int(binary.LittleEndian.Uint32(b[1:])),
		Levels:    int(binary.LittleEndian.Uint32(b[5:])),
		NumImages: int(binary.LittleEndian.Uint32(b[9:])),
	}, nil
}

func encodeNotify(codec string) []byte {
	out := make([]byte, 2+len(codec))
	out[0] = tagNotify
	out[1] = byte(len(codec))
	copy(out[2:], codec)
	return out
}

func decodeNotify(b []byte) (string, error) {
	if len(b) < 2 || b[0] != tagNotify || len(b) != 2+int(b[1]) {
		return "", fmt.Errorf("avis: malformed notify message")
	}
	return string(b[2:]), nil
}

func encodeRequest(r Request) []byte {
	out := make([]byte, 26)
	out[0] = tagRequest
	binary.LittleEndian.PutUint32(out[1:], uint32(r.Image))
	binary.LittleEndian.PutUint32(out[5:], uint32(r.X))
	binary.LittleEndian.PutUint32(out[9:], uint32(r.Y))
	binary.LittleEndian.PutUint32(out[13:], uint32(r.R))
	binary.LittleEndian.PutUint32(out[17:], uint32(r.PrevR))
	binary.LittleEndian.PutUint32(out[21:], uint32(r.Seq))
	out[25] = byte(r.Level)
	return out
}

func decodeRequest(b []byte) (Request, error) {
	if len(b) != 26 || b[0] != tagRequest {
		return Request{}, fmt.Errorf("avis: malformed request message")
	}
	return Request{
		Image: int(binary.LittleEndian.Uint32(b[1:])),
		X:     int(binary.LittleEndian.Uint32(b[5:])),
		Y:     int(binary.LittleEndian.Uint32(b[9:])),
		R:     int(binary.LittleEndian.Uint32(b[13:])),
		PrevR: int(binary.LittleEndian.Uint32(b[17:])),
		Seq:   int(binary.LittleEndian.Uint32(b[21:])),
		Level: int(b[25]),
	}, nil
}

// segmentHeadLen is the fixed size of a segment message before its
// payload: tag(1) + image(4) + raw(4) + seq(4) + last(1).
const segmentHeadLen = 14

// appendSegmentHead renders a segment message's header (everything but
// the payload) into dst — the scatter-gather half of encodeSegment, for
// framing a segment around its payload without gluing them together.
func appendSegmentHead(dst []byte, s Segment) []byte {
	var out [segmentHeadLen]byte
	out[0] = tagSegment
	binary.LittleEndian.PutUint32(out[1:], uint32(s.Image))
	binary.LittleEndian.PutUint32(out[5:], uint32(s.Raw))
	binary.LittleEndian.PutUint32(out[9:], uint32(s.Seq))
	if s.Last {
		out[13] = 1
	}
	return append(dst, out[:]...)
}

func encodeSegment(s Segment) []byte {
	out := appendSegmentHead(make([]byte, 0, segmentHeadLen+len(s.Payload)), s)
	return append(out, s.Payload...)
}

func decodeSegment(b []byte) (Segment, error) {
	if len(b) < 14 || b[0] != tagSegment {
		return Segment{}, fmt.Errorf("avis: malformed segment message")
	}
	return Segment{
		Image:   int(binary.LittleEndian.Uint32(b[1:])),
		Raw:     int(binary.LittleEndian.Uint32(b[5:])),
		Seq:     int(binary.LittleEndian.Uint32(b[9:])),
		Last:    b[13] == 1,
		Payload: b[14:],
	}, nil
}

func encodeError(msg string) []byte {
	return append([]byte{tagError}, msg...)
}

func encodeClose() []byte { return []byte{tagClose} }
