// Package avis implements the paper's evaluation workload: the active
// visualization application (Section 2.1), a client/server viewer for
// large images stored as wavelet coefficients. The client progressively
// fetches a growing foveal region (increment dR per round) at a requested
// resolution level l, optionally compressed with codec c — the three
// control parameters of Figure 2. Real image data flows through the real
// wavelet and compression code; processor demand is charged to the
// sandboxes through a calibrated cost model so the virtual-time
// experiments reproduce the time scales of the paper's figures.
package avis

import (
	"fmt"

	"tunable/internal/spec"
)

// CostModel maps application work to processor cycles charged to the
// sandboxes. The default values are calibrated (see DESIGN.md §6) so that
// on a 450 MHz host the figures reproduce the paper's shapes: the
// Figure 6(a) codec crossover falls between 50 and 500 KB/s, the
// Experiment 2 deadline of 10 s separates resolution levels 3 and 4 at a
// 40% CPU share, and the Experiment 3 response-time bound of 1 s separates
// fovea sizes 80 and 320.
type CostModel struct {
	// DisplayCyclesPerPixel is the client cost of updating the display,
	// per region pixel.
	DisplayCyclesPerPixel float64
	// DecodeCyclesPerByte is the client decompression cost per raw byte,
	// scaled by the codec's DecodeCost factor.
	DecodeCyclesPerByte float64
	// EncodeCyclesPerByte is the server compression cost per raw byte,
	// scaled by the codec's EncodeCost factor.
	EncodeCyclesPerByte float64
	// ExtractCyclesPerCoeff is the server cost of extracting one
	// coefficient from the pyramid.
	ExtractCyclesPerCoeff float64
	// RequestOverheadCycles is the fixed server cost per request round.
	RequestOverheadCycles float64
	// RoundOverheadCycles is the fixed client cost per request round
	// (user-interaction check, bookkeeping).
	RoundOverheadCycles float64
}

// DefaultCostModel returns the calibrated model.
func DefaultCostModel() CostModel {
	return CostModel{
		DisplayCyclesPerPixel: 950,
		DecodeCyclesPerByte:   400,
		EncodeCyclesPerByte:   240,
		ExtractCyclesPerCoeff: 20,
		RequestOverheadCycles: 22e6,
		RoundOverheadCycles:   9e6,
	}
}

// Params are the application's control parameters (Figure 2).
type Params struct {
	DR    int    // incremental fovea size, full-resolution pixels per round
	Codec string // compression type: "lzw", "bzw", or "raw"
	Level int    // requested resolution level
}

// ParamsFromConfig extracts Params from a specification configuration
// with parameters dR, c, and l.
func ParamsFromConfig(cfg spec.Config) (Params, error) {
	p := Params{}
	dr, ok := cfg["dR"]
	if !ok || dr.Kind != spec.IntValue {
		return p, fmt.Errorf("avis: config missing int parameter dR")
	}
	c, ok := cfg["c"]
	if !ok || c.Kind != spec.EnumValue {
		return p, fmt.Errorf("avis: config missing enum parameter c")
	}
	l, ok := cfg["l"]
	if !ok || l.Kind != spec.IntValue {
		return p, fmt.Errorf("avis: config missing int parameter l")
	}
	p.DR, p.Codec, p.Level = dr.I, c.S, l.I
	if p.DR <= 0 {
		return p, fmt.Errorf("avis: dR must be positive")
	}
	return p, nil
}

// Config renders Params as a specification configuration.
func (p Params) Config() spec.Config {
	return spec.Config{
		"dR": spec.Int(p.DR),
		"c":  spec.Enum(p.Codec),
		"l":  spec.Int(p.Level),
	}
}

// SpecSource is the tunability specification of the application in the
// annotation language, mirroring Figure 2 of the paper.
const SpecSource = `
app active_visualization;

control_parameters {
    int dR in {80, 160, 320};   // incremental fovea size
    enum c in {lzw, bzw};       // compression type
    int l in {2, 3, 4};         // level of image resolution
}

execution_env {
    host client;
    host server;
    link net from client to server;
}

qos_metric {
    duration transmit_time minimize;  // total image transmission time
    duration response_time minimize;  // average response time of a round
    scalar resolution maximize;       // delivered image resolution
}

task module1 {
    params { dR, c, l }
    uses { client.cpu, client.bandwidth, server.cpu }
    yields { transmit_time, response_time, resolution }
    guard ( l >= 2 )
}

transition {
    guard ( new.c != cur.c )
    action notify_server;
}
`

// Spec parses SpecSource.
func Spec() *spec.App { return spec.MustParse(SpecSource) }
