package avis

import (
	"errors"
	"fmt"
	"time"

	"tunable/internal/bufpool"
	"tunable/internal/compress"
	"tunable/internal/metrics"
	"tunable/internal/netem"
	"tunable/internal/sandbox"
	"tunable/internal/spec"
	"tunable/internal/steering"
	"tunable/internal/vtime"
	"tunable/internal/wavelet"
)

// RoundStat records one request/reply round (one trip of Figure 2's loop
// body, timed by its QoS_monitor blocks).
type RoundStat struct {
	Image    int
	Round    int
	Start    time.Duration
	Response time.Duration // t1 - t0
	RawBytes int
	Level    int
}

// ImageStat records one complete image download.
type ImageStat struct {
	Image        int
	Level        int
	Codec        string
	DR           int
	Start        time.Duration
	TransmitTime time.Duration // total image transmission time
	AvgResponse  time.Duration // mean round response time
	Rounds       int
	RawBytes     int64
	WireBytes    int64
	PSNR         float64 // only when verification is enabled; else 0
}

// Metrics renders the stat as the application's QoS metrics (seconds).
func (s ImageStat) Metrics() spec.Metrics {
	return spec.Metrics{
		"transmit_time": s.TransmitTime.Seconds(),
		"response_time": s.AvgResponse.Seconds(),
		"resolution":    float64(s.Level),
	}
}

// Client is the client-side component of the application, annotated per
// Figure 2: its FetchImage loop requests growing foveal regions,
// decompresses and displays them, and reports the three QoS metrics. A
// steering agent may be attached; configuration changes apply at round
// boundaries (the task's transition points), with resolution-level changes
// deferred to the next image.
type Client struct {
	sb     *sandbox.Sandbox
	ep     *netem.Endpoint
	cost   CostModel
	params Params
	geom   Geometry
	codec  compress.Codec

	steer  *steering.Agent
	verify bool
	store  *ImageStore
	seeds  []int64

	seq          int
	retryTimeout time.Duration // 0 disables loss recovery
	maxRetries   int
	retries      int64

	// telemetry instruments; nil (no-op) unless EnableMetrics ran
	mFetchSeconds *metrics.Histogram
	mRoundSeconds *metrics.Histogram
	mRawBytes     *metrics.Counter
	mWireBytes    *metrics.Counter
	mRounds       *metrics.Counter
	mRetransmits  *metrics.Counter
	mImages       *metrics.Counter

	OnRound func(RoundStat)
	OnImage func(ImageStat)

	// interaction simulates check_for_user_interaction: invoked each
	// round, it may move the fovea (returning a new centre resets the
	// incremental transmission) — nil keeps the fovea fixed.
	interaction func(img, round int) (moveX, moveY int, moved bool)

	stats []ImageStat
}

// ClientOption customizes a client.
type ClientOption func(*Client)

// WithClientCost overrides the cost model.
func WithClientCost(c CostModel) ClientOption { return func(cl *Client) { cl.cost = c } }

// WithVerification enables canvas reconstruction and PSNR measurement
// against the source images (costly in real time; off by default).
func WithVerification(store *ImageStore, seeds []int64) ClientOption {
	return func(cl *Client) {
		cl.verify = true
		cl.store = store
		cl.seeds = seeds
	}
}

// WithInteraction installs a fovea-movement model.
func WithInteraction(fn func(img, round int) (int, int, bool)) ClientOption {
	return func(cl *Client) { cl.interaction = fn }
}

// WithRetry enables loss recovery: a round whose reply stalls for longer
// than timeout is retransmitted (up to maxRetries times per round), with
// per-attempt sequence numbers so stale segments from the aborted attempt
// are discarded.
func WithRetry(timeout time.Duration, maxRetries int) ClientOption {
	return func(cl *Client) {
		cl.retryTimeout = timeout
		cl.maxRetries = maxRetries
	}
}

// NewClient creates a client with the given initial parameters, running in
// sandbox sb over endpoint ep.
func NewClient(sb *sandbox.Sandbox, ep *netem.Endpoint, params Params, opts ...ClientOption) (*Client, error) {
	codec, err := compress.Lookup(params.Codec)
	if err != nil {
		return nil, err
	}
	c := &Client{
		sb:     sb,
		ep:     ep,
		cost:   DefaultCostModel(),
		params: params,
		codec:  codec,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// EnableMetrics instruments the client. Metric families:
// avis_fetch_seconds (per-image download latency histogram),
// avis_round_seconds (per-round response time), avis_raw_bytes_total,
// avis_wire_bytes_total, avis_rounds_total, avis_retransmits_total, and
// avis_images_total. Durations are virtual-time in simulated mode.
func (c *Client) EnableMetrics(reg *metrics.Registry) {
	c.mFetchSeconds = reg.Histogram("avis_fetch_seconds", "Per-image download latency.")
	c.mRoundSeconds = reg.Histogram("avis_round_seconds", "Per-round response time.")
	c.mRawBytes = reg.Counter("avis_raw_bytes_total", "Uncompressed payload bytes received.")
	c.mWireBytes = reg.Counter("avis_wire_bytes_total", "Compressed bytes on the wire.")
	c.mRounds = reg.Counter("avis_rounds_total", "Request/reply rounds completed.")
	c.mRetransmits = reg.Counter("avis_retransmits_total", "Round retransmissions after stalls.")
	c.mImages = reg.Counter("avis_images_total", "Images fully downloaded.")
}

// Params returns the currently active parameters.
func (c *Client) Params() Params { return c.params }

// Stats returns per-image statistics collected so far.
func (c *Client) Stats() []ImageStat { return c.stats }

// Retries returns the number of round retransmissions performed.
func (c *Client) Retries() int64 { return c.retries }

// AttachSteering connects a steering agent: the client polls it at round
// boundaries and registers the notify_server transition action, which
// sends the codec announcement to the server exactly as the annotated
// transition block of Figure 2 does.
func (c *Client) AttachSteering(agent *steering.Agent) {
	c.steer = agent
	agent.OnAction("notify_server", func(p *vtime.Proc, cur, next spec.Config) {
		if v, ok := next["c"]; ok {
			c.notify(p, v.S)
		}
	})
}

// Connect performs the geometry handshake and announces the initial
// compression type.
func (c *Client) Connect(p *vtime.Proc) error {
	c.ep.Send(p, encodeHello())
	raw, ok := c.ep.Recv(p)
	if !ok {
		return fmt.Errorf("avis: connection closed during handshake")
	}
	geom, err := decodeGeom(raw)
	if err != nil {
		return err
	}
	c.geom = geom
	c.notify(p, c.params.Codec)
	return nil
}

// Close ends the session.
func (c *Client) Close(p *vtime.Proc) {
	c.ep.Send(p, encodeClose())
	c.ep.Close()
}

// Geometry returns the server-announced image geometry.
func (c *Client) Geometry() Geometry { return c.geom }

func (c *Client) notify(p *vtime.Proc, codecName string) {
	codec, err := compress.Lookup(codecName)
	if err != nil {
		return
	}
	c.codec = codec
	c.ep.Send(p, encodeNotify(codecName))
}

// maybeSteer polls the steering agent at a transition point. Level changes
// are deferred to the next image (the resolution of an in-flight image is
// fixed); dR and codec changes take effect on the next round.
func (c *Client) maybeSteer(p *vtime.Proc, activeLevel int) int {
	if c.steer == nil {
		return activeLevel
	}
	cfg, switched := c.steer.MaybeApply(p)
	if !switched {
		return activeLevel
	}
	np, err := ParamsFromConfig(cfg)
	if err != nil {
		return activeLevel
	}
	// The notify_server action already ran inside MaybeApply; mirror the
	// parameter values locally.
	c.params = np
	if codec, err := compress.Lookup(np.Codec); err == nil {
		c.codec = codec
	}
	return activeLevel // level latched until the next image
}

// levelSize returns image.size(l): the image side at level l.
func (c *Client) levelSize(l int) int {
	return (c.geom.Side >> c.geom.Levels) << l
}

// FetchImage downloads one image: the annotated while-loop of Figure 2.
func (c *Client) FetchImage(p *vtime.Proc, img int) (ImageStat, error) {
	if c.geom.Side == 0 {
		return ImageStat{}, fmt.Errorf("avis: not connected")
	}
	if img < 0 || img >= c.geom.NumImages {
		return ImageStat{}, fmt.Errorf("avis: image %d out of range", img)
	}
	activeLevel := c.params.Level
	activeLevel = c.maybeSteer(p, activeLevel)
	if activeLevel != c.params.Level {
		activeLevel = c.params.Level // a pre-image switch takes effect now
	}
	size := c.levelSize(activeLevel)
	scale := c.geom.Side / size // level-l units → full-resolution units
	x, y := c.geom.Side/2, c.geom.Side/2
	var canvas *wavelet.Canvas
	if c.verify {
		var err error
		canvas, err = wavelet.NewCanvas(c.geom.Side, c.geom.Levels)
		if err != nil {
			return ImageStat{}, err
		}
	}

	stat := ImageStat{
		Image: img,
		Level: activeLevel,
		Codec: c.params.Codec,
		DR:    c.params.DR,
		Start: p.Now(),
	}
	var respSum time.Duration
	r, prevR := 0, 0
	round := 0
	for r < size {
		t0 := p.Now() // QoS_monitor { t0 = clock(); }
		r += c.params.DR
		if r > size {
			r = size
		}
		// Radii in full-resolution half-side units for extraction.
		fullR := r * scale / 2
		fullPrev := prevR * scale / 2
		if fullR <= fullPrev {
			// Degenerate increment (dR smaller than one full-res pixel at
			// this level); skip ahead.
			prevR = r
			continue
		}
		var rawBytes, wireBytes int
		var err error
		for attempt := 0; ; attempt++ {
			c.seq++
			req := Request{
				Image: img, Seq: c.seq,
				X: x, Y: y, R: fullR, PrevR: fullPrev, Level: activeLevel,
			}
			c.ep.Send(p, encodeRequest(req))
			rawBytes, wireBytes, err = c.receiveRound(p, img, c.seq, canvas)
			if errors.Is(err, errRoundStalled) && attempt < c.maxRetries {
				c.retries++
				c.mRetransmits.Inc()
				continue
			}
			break
		}
		if err != nil {
			return ImageStat{}, err
		}
		stat.WireBytes += int64(wireBytes)
		// check_for_user_interaction(&x, &y, &r, &dR)
		c.sb.Compute(p, c.cost.RoundOverheadCycles)
		if c.interaction != nil {
			if nx, ny, moved := c.interaction(img, round); moved {
				x, y = nx, ny
				r, prevR = 0, 0
			} else {
				prevR = r
			}
		} else {
			prevR = r
		}
		t1 := p.Now() // QoS_monitor { t1 = clock(); ... }
		respSum += t1 - t0
		stat.RawBytes += int64(rawBytes)
		round++
		c.mRoundSeconds.Observe((t1 - t0).Seconds())
		c.mRounds.Inc()
		c.mRawBytes.Add(float64(rawBytes))
		c.mWireBytes.Add(float64(wireBytes))
		if c.OnRound != nil {
			c.OnRound(RoundStat{
				Image: img, Round: round, Start: t0,
				Response: t1 - t0, RawBytes: rawBytes, Level: activeLevel,
			})
		}
		// transition (new_control) { ... } — the annotated transition
		// point at the bottom of the loop body.
		activeLevel = c.maybeSteer(p, activeLevel)
	}
	stat.TransmitTime = p.Now() - stat.Start
	stat.Rounds = round
	if round > 0 {
		stat.AvgResponse = respSum / time.Duration(round)
	}
	if c.verify && canvas != nil {
		img0 := c.store.Image(c.geom.Side, c.seeds[img])
		recon, err := canvas.Reconstruct(activeLevel)
		if err != nil {
			return ImageStat{}, err
		}
		ref := img0.Downsample(c.geom.Levels - activeLevel)
		psnr, err := refPSNR(ref, recon)
		if err != nil {
			return ImageStat{}, err
		}
		stat.PSNR = psnr
	}
	c.mFetchSeconds.Observe(stat.TransmitTime.Seconds())
	c.mImages.Inc()
	c.stats = append(c.stats, stat)
	if c.OnImage != nil {
		c.OnImage(stat)
	}
	return stat, nil
}

// errRoundStalled reports a reply that stopped arriving within the retry
// timeout (a lost request or segment on a lossy link).
var errRoundStalled = errors.New("avis: round stalled")

// receiveRound drains reply segments until the final one, charging decode
// and display cost per segment (so client computation overlaps the
// arrival of later segments), then performs the real decompression and
// optional canvas update. Segments whose sequence number does not match
// the current attempt are stale retransmission leftovers and are dropped.
func (c *Client) receiveRound(p *vtime.Proc, img, seq int, canvas *wavelet.Canvas) (raw, wire int, err error) {
	compressed := bufpool.Get(1 << 12)[:0]
	defer func() { bufpool.Put(compressed) }()
	rawTotal := 0
	decCost := c.cost.DecodeCyclesPerByte * c.codec.DecodeCost()
	for {
		var msg []byte
		var ok bool
		if c.retryTimeout > 0 {
			var ready bool
			msg, ok, ready = c.ep.RecvTimeout(p, c.retryTimeout)
			if !ready {
				return 0, 0, errRoundStalled
			}
		} else {
			msg, ok = c.ep.Recv(p)
		}
		if !ok {
			return 0, 0, fmt.Errorf("avis: connection closed mid-round")
		}
		if len(msg) == 0 {
			continue
		}
		if msg[0] == tagError {
			return 0, 0, fmt.Errorf("avis: server error: %s", msg[1:])
		}
		seg, err := decodeSegment(msg)
		if err != nil {
			return 0, 0, err
		}
		if seg.Seq != seq {
			continue // stale segment from an aborted attempt
		}
		if seg.Image != img {
			return 0, 0, fmt.Errorf("avis: segment for image %d during image %d", seg.Image, img)
		}
		// decompress(c, &data); update_display(...) — cost charged per
		// segment.
		c.sb.Compute(p, decCost*float64(seg.Raw)+c.cost.DisplayCyclesPerPixel*float64(seg.Raw))
		compressed = append(compressed, seg.Payload...)
		rawTotal += seg.Raw
		if seg.Last {
			break
		}
	}
	// Real decompression and reconstruction (already charged above).
	data, err := c.codec.Decode(compressed)
	if err != nil {
		return 0, 0, fmt.Errorf("avis: decode: %w", err)
	}
	defer bufpool.Put(data)
	if canvas != nil {
		chunk, err := wavelet.DecodeChunk(data)
		if err != nil {
			return 0, 0, err
		}
		err = canvas.Apply(chunk)
		chunk.Release()
		if err != nil {
			return 0, 0, err
		}
	}
	return len(data), len(compressed), nil
}
