package avis

import (
	"fmt"
	"time"

	"tunable/internal/imagery"
	"tunable/internal/netem"
	"tunable/internal/sandbox"
	"tunable/internal/vtime"
)

// refPSNR compares a reconstruction against its reference image.
func refPSNR(ref, got *imagery.Image) (float64, error) {
	return imagery.PSNR(ref, got)
}

// WorldConfig describes one simulated deployment of the application: two
// hosts (client, server), a link, sandboxes with given resource
// allocations, and the application parameters. It is the unit the
// profiling driver executes per testbed sample and the experiments perturb
// at run time.
type WorldConfig struct {
	ClientSpeed float64 // cycles/s; default 450e6 (PII 450)
	ServerSpeed float64 // default 450e6
	ClientShare float64 // default 1.0
	ServerShare float64 // default 1.0
	Bandwidth   float64 // bytes/s; default 1e6
	Latency     time.Duration
	Loss        float64 // message loss probability per direction; default 0
	Params      Params
	Side        int // default 1024
	Levels      int // default 4
	Seeds       []int64
	Cost        CostModel
	Verify      bool
	Store       *ImageStore
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.ClientSpeed == 0 {
		c.ClientSpeed = 450e6
	}
	if c.ServerSpeed == 0 {
		c.ServerSpeed = 450e6
	}
	if c.ClientShare == 0 {
		c.ClientShare = 1.0
	}
	if c.ServerShare == 0 {
		c.ServerShare = 1.0
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 1e6
	}
	if c.Latency == 0 {
		c.Latency = 500 * time.Microsecond
	}
	if c.Side == 0 {
		c.Side = 1024
	}
	if c.Levels == 0 {
		c.Levels = 4
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1}
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	if c.Store == nil {
		c.Store = sharedStore
	}
	if c.Params.Codec == "" {
		c.Params = Params{DR: 320, Codec: "lzw", Level: c.Levels}
	}
	return c
}

// World is a constructed simulated deployment.
type World struct {
	Cfg        WorldConfig
	Sim        *vtime.Sim
	ClientHost *sandbox.Host
	ServerHost *sandbox.Host
	ClientSB   *sandbox.Sandbox
	ServerSB   *sandbox.Sandbox
	Link       *netem.Link
	Server     *Server
	Client     *Client
}

// NewWorld builds a world and spawns the server process; the caller drives
// the client (directly or via RunSequence).
func NewWorld(cfg WorldConfig, clientOpts ...ClientOption) (*World, error) {
	cfg = cfg.withDefaults()
	sim := vtime.NewSim()
	ch := sandbox.NewHost(sim, "client-host", cfg.ClientSpeed)
	sh := sandbox.NewHost(sim, "server-host", cfg.ServerSpeed)
	csb, err := ch.NewSandbox("client", cfg.ClientShare, 0)
	if err != nil {
		return nil, err
	}
	ssb, err := sh.NewSandbox("server", cfg.ServerShare, 0)
	if err != nil {
		return nil, err
	}
	link := netem.NewLink(sim, "net", cfg.Bandwidth,
		netem.WithLatency(cfg.Latency), netem.WithLoss(cfg.Loss))
	server, err := NewServer(ssb, link.B(), cfg.Side, cfg.Levels, cfg.Seeds,
		WithServerCost(cfg.Cost), WithStore(cfg.Store))
	if err != nil {
		return nil, err
	}
	opts := append([]ClientOption{WithClientCost(cfg.Cost)}, clientOpts...)
	if cfg.Verify {
		opts = append(opts, WithVerification(cfg.Store, cfg.Seeds))
	}
	client, err := NewClient(csb, link.A(), cfg.Params, opts...)
	if err != nil {
		return nil, err
	}
	w := &World{
		Cfg: cfg, Sim: sim,
		ClientHost: ch, ServerHost: sh,
		ClientSB: csb, ServerSB: ssb,
		Link: link, Server: server, Client: client,
	}
	sim.Spawn("avis-server", func(p *vtime.Proc) {
		if err := server.Run(p); err != nil {
			panic(fmt.Sprintf("avis server: %v", err))
		}
	})
	return w, nil
}

// RunSequence spawns a client process that connects, downloads n images
// (cycling through the configured seeds), and closes, then runs the
// simulation to completion and returns the per-image statistics.
func (w *World) RunSequence(n int) ([]ImageStat, error) {
	var stats []ImageStat
	var ferr error
	w.Sim.Spawn("avis-client", func(p *vtime.Proc) {
		if err := w.Client.Connect(p); err != nil {
			ferr = err
			return
		}
		for i := 0; i < n; i++ {
			st, err := w.Client.FetchImage(p, i%len(w.Cfg.Seeds))
			if err != nil {
				ferr = err
				break
			}
			stats = append(stats, st)
		}
		w.Client.Close(p)
	})
	if err := w.Sim.Run(); err != nil {
		return stats, err
	}
	return stats, ferr
}
