package avis

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tunable/internal/bufpool"
	"tunable/internal/compress"
	"tunable/internal/metrics"
	"tunable/internal/netem"
	"tunable/internal/wavelet"
	"tunable/internal/wire"
)

// Real-network deployment mode: the same wire protocol, wavelet pyramid,
// and codecs as the simulated experiments, but spoken over actual TCP with
// wall-clock timing. Compute costs are the real costs of the real work, so
// no sandbox metering applies; optional token-bucket shaping (package
// netem) stands in for constrained links. Used by cmd/avis-server and
// cmd/avis-client.

// frameLimit bounds a single protocol frame (a frame carries at most one
// reply segment plus headers). It equals wire.FrameLimit: both framings
// share one bound.
const frameLimit = wire.FrameLimit

// ErrIOTimeout is the sentinel matched by errors.Is for frame I/O that
// missed its deadline; the concrete error is always a *TimeoutError.
var ErrIOTimeout = errors.New("avis: i/o timeout")

// TimeoutError reports that a frame read or write made no progress within
// the configured I/O timeout — the peer is dead, wedged, or unreachable.
// It implements net.Error's Timeout contract and matches ErrIOTimeout
// under errors.Is.
type TimeoutError struct {
	Op    string        // "read" or "write"
	After time.Duration // the deadline that expired
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("avis: %s frame: no progress within %v (dead peer?)", e.Op, e.After)
}

// Timeout reports true, satisfying the net.Error convention.
func (e *TimeoutError) Timeout() bool { return true }

// Is matches ErrIOTimeout.
func (e *TimeoutError) Is(target error) bool { return target == ErrIOTimeout }

// wrapTimeout converts a deadline-exceeded network error into a
// *TimeoutError; other errors (including nil) pass through.
func wrapTimeout(op string, after time.Duration, err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &TimeoutError{Op: op, After: after}
	}
	return err
}

// deadlineRW adapts a net.Conn so every underlying read and write first
// arms a fresh deadline: the connection must keep making progress at
// timeout granularity, but an arbitrarily large transfer never trips the
// limit as long as bytes keep flowing. A zero timeout disables arming.
type deadlineRW struct {
	conn    net.Conn
	timeout time.Duration
}

func (d *deadlineRW) Read(p []byte) (int, error) {
	if d.timeout > 0 {
		if err := d.conn.SetReadDeadline(time.Now().Add(d.timeout)); err != nil {
			return 0, fmt.Errorf("avis: arm read deadline: %w", err)
		}
	}
	return d.conn.Read(p)
}

func (d *deadlineRW) Write(p []byte) (int, error) {
	if d.timeout > 0 {
		if err := d.conn.SetWriteDeadline(time.Now().Add(d.timeout)); err != nil {
			return 0, fmt.Errorf("avis: arm write deadline: %w", err)
		}
	}
	return d.conn.Write(p)
}

// writeFrame sends one length-prefixed protocol message. The frame is
// emitted as a single Write — header and body coalesced — so two
// goroutines sharing an unbuffered conn can never interleave a header
// into another writer's body. Oversize messages fail before any byte
// escapes, with a *wire.FrameSizeError matching wire.ErrFrameTooLarge
// (the uint32 length field would otherwise silently truncate them).
func writeFrame(w io.Writer, msg []byte) error {
	if len(msg) > frameLimit {
		return &wire.FrameSizeError{N: len(msg), Limit: frameLimit}
	}
	buf := bufpool.Get(4 + len(msg))
	binary.LittleEndian.PutUint32(buf, uint32(len(msg)))
	copy(buf[4:], msg)
	_, err := w.Write(buf)
	bufpool.Put(buf)
	return err
}

// readFrame receives one length-prefixed protocol message.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > frameLimit {
		return nil, fmt.Errorf("avis: frame of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// codecInstruments carries the per-codec data-plane telemetry of one
// direction (encode on the server, decode on the client). All methods are
// nil-safe so uninstrumented deployments pay only a map lookup.
type codecInstruments struct {
	seconds  *metrics.Histogram
	inBytes  *metrics.Counter
	outBytes *metrics.Counter
}

func (ci *codecInstruments) observe(sec float64, in, out int) {
	if ci == nil {
		return
	}
	ci.seconds.Observe(sec)
	ci.inBytes.Add(float64(in))
	ci.outBytes.Add(float64(out))
}

// newCodecInstruments registers one instrument set per registered codec,
// labeled codec="<name>", under the given metric-family prefix
// (avis_codec_encode or avis_codec_decode).
func newCodecInstruments(reg *metrics.Registry, dir string) map[string]*codecInstruments {
	m := make(map[string]*codecInstruments, 4)
	for _, name := range compress.Names() {
		l := metrics.L("codec", name)
		m[name] = &codecInstruments{
			seconds: reg.Histogram("avis_codec_"+dir+"_seconds",
				"Wall-clock time of one codec "+dir+" call.", l),
			inBytes: reg.Counter("avis_codec_"+dir+"_in_bytes_total",
				"Bytes fed into the codec "+dir+" path.", l),
			outBytes: reg.Counter("avis_codec_"+dir+"_out_bytes_total",
				"Bytes produced by the codec "+dir+" path.", l),
		}
	}
	return m
}

// RealServer serves the visualization protocol over net.Conn connections.
type RealServer struct {
	geom      Geometry
	seeds     []int64
	store     *ImageStore
	segBytes  int
	ioTimeout time.Duration
	wireV1    bool

	// connection accounting for load reporting and graceful drain; conns
	// and listeners are guarded by connMu, active is read lock-free by
	// heartbeat load callbacks.
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	listeners []net.Listener
	draining  bool
	wg        sync.WaitGroup
	active    atomic.Int64

	// stats are lock-free atomics: every handler goroutine bumps them.
	stats serverCounters

	// telemetry instruments; nil (no-op) unless EnableMetrics ran
	mConns       *metrics.Counter
	mRequests    *metrics.Counter
	mReqSeconds  *metrics.Histogram
	mSentBytes   *metrics.Counter
	mSegments    *metrics.Counter
	mErrors      *metrics.Counter
	mIOTimeouts  *metrics.Counter
	mCodecSwitch *metrics.Counter
	mCodec       map[string]*codecInstruments
	wInst        wire.Instruments
}

// SetIOTimeout bounds how long a frame read or write on a connection may
// go without progress before the connection is dropped with a
// *TimeoutError (0, the default, waits forever). It applies to
// connections accepted after the call.
func (s *RealServer) SetIOTimeout(d time.Duration) { s.ioTimeout = d }

// SetWireV1 pins the server to v1 framing: negotiation probes get the
// old server's "unknown message" refusal, so clients fall back. Used to
// stand in for a pre-v2 build in mixed-version conformance tests and
// staged rollouts.
func (s *RealServer) SetWireV1(v bool) { s.wireV1 = v }

// EnableMetrics instruments the server. Metric families:
// avis_connections_total, avis_requests_total, avis_request_seconds
// (per-request serve latency), avis_sent_bytes_total (compressed bytes
// written), avis_segments_total, avis_codec_switches_total,
// avis_errors_total, avis_io_timeouts_total, and — labeled per codec —
// avis_codec_encode_seconds, avis_codec_encode_in_bytes_total, and
// avis_codec_encode_out_bytes_total.
func (s *RealServer) EnableMetrics(reg *metrics.Registry) {
	s.mConns = reg.Counter("avis_connections_total", "Client connections accepted.")
	s.mRequests = reg.Counter("avis_requests_total", "Foveal region requests served.")
	s.mReqSeconds = reg.Histogram("avis_request_seconds",
		"Wall-clock latency of serving one region request (extract, encode, write).")
	s.mSentBytes = reg.Counter("avis_sent_bytes_total", "Compressed reply bytes written.")
	s.mSegments = reg.Counter("avis_segments_total", "Reply segments written.")
	s.mCodecSwitch = reg.Counter("avis_codec_switches_total", "Codec change notifications honored.")
	s.mErrors = reg.Counter("avis_errors_total", "Protocol or serve errors returned to clients.")
	s.mIOTimeouts = reg.Counter("avis_io_timeouts_total", "Connections dropped on frame I/O timeout.")
	s.mCodec = newCodecInstruments(reg, "encode")
	s.wInst = wire.NewInstruments(reg)
}

// NewRealServer creates a server for the given synthetic image set.
func NewRealServer(side, levels int, seeds []int64, store *ImageStore) (*RealServer, error) {
	if side <= 0 || levels <= 0 || len(seeds) == 0 {
		return nil, fmt.Errorf("avis: invalid real-server geometry")
	}
	if store == nil {
		store = sharedStore
	}
	return &RealServer{
		geom:     Geometry{Side: side, Levels: levels, NumImages: len(seeds)},
		seeds:    seeds,
		store:    store,
		segBytes: DefaultSegmentBytes,
	}, nil
}

// Serve accepts connections until the listener closes, handling each in
// its own goroutine. After Shutdown it returns net.ErrClosed.
func (s *RealServer) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.draining {
		s.connMu.Unlock()
		return net.ErrClosed
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.listeners = append(s.listeners, l)
	s.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.connMu.Lock()
		if s.draining {
			s.connMu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.active.Add(1)
		s.wg.Add(1)
		s.connMu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				s.active.Add(-1)
				s.wg.Done()
			}()
			_ = s.handle(conn)
		}()
	}
}

// ActiveSessions reports the number of client connections currently being
// served; node agents feed it into cluster heartbeats as the load signal.
func (s *RealServer) ActiveSessions() int { return int(s.active.Load()) }

// Stats returns a consistent snapshot of the cumulative serving counters.
// Safe to call concurrently with live sessions.
func (s *RealServer) Stats() ServerStats { return s.stats.snapshot() }

// Shutdown drains the server: it stops accepting (closing every listener
// passed to Serve), waits up to timeout for in-flight sessions to finish,
// then force-closes the stragglers. It returns the number of connections
// that had to be force-closed. Safe to call once; Serve calls unblock with
// net.ErrClosed.
func (s *RealServer) Shutdown(timeout time.Duration) int {
	s.connMu.Lock()
	s.draining = true
	for _, l := range s.listeners {
		_ = l.Close()
	}
	s.listeners = nil
	s.connMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	forced := 0
	select {
	case <-done:
	case <-time.After(timeout):
		s.connMu.Lock()
		forced = len(s.conns)
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.connMu.Unlock()
		<-done
	}
	return forced
}

// handle services one connection.
func (s *RealServer) handle(conn net.Conn) error {
	s.mConns.Inc()
	wc := wire.NewConn(conn, s.ioTimeout)
	wc.SetInstruments(s.wInst)
	codec, _ := compress.Lookup("raw")
	for {
		msg, err := wc.ReadMsg()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			err = wrapTimeout("read", s.ioTimeout, err)
			if errors.Is(err, ErrIOTimeout) {
				s.mIOTimeouts.Inc()
			}
			return err
		}
		if len(msg) == 0 {
			bufpool.Put(msg)
			continue
		}
		if wire.IsNegotiate(msg) && !s.wireV1 {
			// A v2 client probes before anything else; answer and upgrade.
			// When pinned to v1 (SetWireV1) the probe instead falls into the
			// default arm below — the exact refusal an old build sends, which
			// is what the client's fallback path keys on.
			err := wc.AcceptV2(msg, 0)
			bufpool.Put(msg)
			if err != nil {
				return wrapTimeout("write", s.ioTimeout, err)
			}
			continue
		}
		werr := error(nil)
		switch msg[0] {
		case tagHello:
			werr = wc.WriteMsg(encodeGeom(s.geom))
		case tagNotify:
			name, err := decodeNotify(msg)
			var c compress.Codec
			if err == nil {
				c, err = compress.Lookup(name)
			}
			if err != nil {
				s.mErrors.Inc()
				s.stats.errors.Add(1)
				werr = wc.WriteMsg(encodeError(err.Error()))
				break
			}
			codec = c
			s.mCodecSwitch.Inc()
			s.stats.notifies.Add(1)
		case tagRequest:
			req, err := decodeRequest(msg)
			if err == nil {
				err = s.serveReal(wc, codec, req)
			}
			if err != nil {
				if errors.Is(err, ErrIOTimeout) {
					s.mIOTimeouts.Inc()
					bufpool.Put(msg)
					return err
				}
				s.mErrors.Inc()
				s.stats.errors.Add(1)
				werr = wc.WriteMsg(encodeError(err.Error()))
			}
		case tagClose:
			bufpool.Put(msg)
			return nil
		default:
			s.mErrors.Inc()
			s.stats.errors.Add(1)
			werr = wc.WriteMsg(encodeError("unknown message"))
		}
		bufpool.Put(msg)
		if werr != nil {
			werr = wrapTimeout("write", s.ioTimeout, werr)
			if errors.Is(werr, ErrIOTimeout) {
				s.mIOTimeouts.Inc()
			}
			return werr
		}
	}
}

func (s *RealServer) serveReal(wc *wire.Conn, codec compress.Codec, req Request) error {
	start := time.Now()
	s.mRequests.Inc()
	s.stats.requests.Add(1)
	if req.Image < 0 || req.Image >= len(s.seeds) {
		return fmt.Errorf("image %d out of range", req.Image)
	}
	pyr, err := s.store.Pyramid(s.geom.Side, s.geom.Levels, s.seeds[req.Image])
	if err != nil {
		return err
	}
	chunk, err := pyr.ExtractRegion(req.Level, req.X, req.Y, req.R, req.PrevR)
	if err != nil {
		return err
	}
	raw := chunk.AppendEncode(bufpool.Get(chunk.Size())[:0])
	chunk.Release()
	rawLen := len(raw)
	s.stats.rawBytes.Add(int64(rawLen))
	encStart := time.Now()
	enc := codec.Encode(raw)
	s.mCodec[codec.Name()].observe(time.Since(encStart).Seconds(), rawLen, len(enc))
	bufpool.Put(raw)
	defer bufpool.Put(enc)
	s.stats.compressedBytes.Add(int64(len(enc)))
	err = WriteSegmentsWire(wc, req.Image, req.Seq, rawLen, enc, s.segBytes, func(wireBytes int) {
		s.mSegments.Inc()
		s.mSentBytes.Add(float64(wireBytes))
	})
	if err != nil {
		return wrapTimeout("write", s.ioTimeout, err)
	}
	s.mReqSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// RealClient fetches images over a net.Conn using wall-clock timing.
type RealClient struct {
	conn      net.Conn
	wc        *wire.Conn
	ioTimeout time.Duration
	wireV1    bool
	geom      Geometry
	params    Params
	codec     compress.Codec
	stats     []ImageStat
	epoch     time.Time

	// telemetry instruments; nil (no-op) unless EnableMetrics ran
	mFetchSeconds *metrics.Histogram
	mRoundSeconds *metrics.Histogram
	mRawBytes     *metrics.Counter
	mWireBytes    *metrics.Counter
	mRounds       *metrics.Counter
	mImages       *metrics.Counter
	mIOTimeouts   *metrics.Counter
	mCodec        map[string]*codecInstruments
}

// NewRealClient wraps an established connection. Wrap conn in
// netem.NewShapedConn first to emulate a constrained link.
func NewRealClient(conn net.Conn, params Params) (*RealClient, error) {
	codec, err := compress.Lookup(params.Codec)
	if err != nil {
		return nil, err
	}
	return &RealClient{
		conn:   conn,
		wc:     wire.NewConn(conn, 0),
		params: params,
		codec:  codec,
		epoch:  time.Now(),
	}, nil
}

// SetIOTimeout bounds how long any frame read or write may go without
// progress before the call fails with a *TimeoutError instead of blocking
// forever on a dead peer (0, the default, waits forever).
func (c *RealClient) SetIOTimeout(d time.Duration) {
	c.ioTimeout = d
	c.wc.SetTimeout(d)
}

// SetWireV1 pins the client to v1 framing: Connect skips the version
// probe entirely, speaking to the server exactly as a pre-v2 build
// would. Used by mixed-version conformance tests and staged rollouts.
func (c *RealClient) SetWireV1(v bool) { c.wireV1 = v }

// WireVersion reports the framing version negotiated by Connect.
func (c *RealClient) WireVersion() int { return int(c.wc.Version()) }

// EnableMetrics instruments the client. Metric families: avis_fetch_seconds
// (per-image download latency), avis_round_seconds (per-round response
// time), avis_raw_bytes_total, avis_wire_bytes_total, avis_rounds_total,
// avis_images_total, avis_io_timeouts_total, and — labeled per codec —
// avis_codec_decode_seconds, avis_codec_decode_in_bytes_total, and
// avis_codec_decode_out_bytes_total.
func (c *RealClient) EnableMetrics(reg *metrics.Registry) {
	c.mFetchSeconds = reg.Histogram("avis_fetch_seconds", "Per-image download latency.")
	c.mRoundSeconds = reg.Histogram("avis_round_seconds", "Per-round response time.")
	c.mRawBytes = reg.Counter("avis_raw_bytes_total", "Uncompressed payload bytes received.")
	c.mWireBytes = reg.Counter("avis_wire_bytes_total", "Compressed bytes on the wire.")
	c.mRounds = reg.Counter("avis_rounds_total", "Request/reply rounds completed.")
	c.mImages = reg.Counter("avis_images_total", "Images fully downloaded.")
	c.mIOTimeouts = reg.Counter("avis_io_timeouts_total", "Frame reads/writes that missed the I/O deadline.")
	c.mCodec = newCodecInstruments(reg, "decode")
	c.wc.SetInstruments(wire.NewInstruments(reg))
}

// readFrameT reads one frame into a pooled buffer (callers return it with
// bufpool.Put), converting a missed deadline into a typed *TimeoutError.
func (c *RealClient) readFrameT() ([]byte, error) {
	msg, err := c.wc.ReadMsg()
	err = wrapTimeout("read", c.ioTimeout, err)
	if errors.Is(err, ErrIOTimeout) {
		c.mIOTimeouts.Inc()
	}
	return msg, err
}

// writeFrameT writes one frame, converting a missed deadline into a typed
// *TimeoutError.
func (c *RealClient) writeFrameT(msg []byte) error {
	err := wrapTimeout("write", c.ioTimeout, c.wc.WriteMsg(msg))
	if errors.Is(err, ErrIOTimeout) {
		c.mIOTimeouts.Inc()
	}
	return err
}

// Connect negotiates the wire version, then performs the handshake and
// codec announcement. Against an old server the version probe is answered
// with a refusal and the session proceeds in v1 framing.
func (c *RealClient) Connect() error {
	if !c.wireV1 {
		if err := wrapTimeout("negotiate", c.ioTimeout, c.wc.StartClient(0)); err != nil {
			if errors.Is(err, ErrIOTimeout) {
				c.mIOTimeouts.Inc()
			}
			return err
		}
	}
	if err := c.writeFrameT(encodeHello()); err != nil {
		return err
	}
	msg, err := c.readFrameT()
	if err != nil {
		return err
	}
	geom, err := decodeGeom(msg)
	bufpool.Put(msg)
	if err != nil {
		return err
	}
	c.geom = geom
	return c.SetCodec(c.params.Codec)
}

// Geometry returns the server's announced geometry.
func (c *RealClient) Geometry() Geometry { return c.geom }

// SetCodec switches the compression method (the notify_server action).
func (c *RealClient) SetCodec(name string) error {
	codec, err := compress.Lookup(name)
	if err != nil {
		return err
	}
	if err := c.writeFrameT(encodeNotify(name)); err != nil {
		return err
	}
	c.codec = codec
	c.params.Codec = name
	return nil
}

// SetParams updates dR and level for subsequent fetches.
func (c *RealClient) SetParams(p Params) error {
	if p.Codec != c.params.Codec {
		if err := c.SetCodec(p.Codec); err != nil {
			return err
		}
	}
	c.params.DR = p.DR
	c.params.Level = p.Level
	return nil
}

// Stats returns per-image statistics.
func (c *RealClient) Stats() []ImageStat { return c.stats }

// Close ends the session.
func (c *RealClient) Close() error {
	_ = c.writeFrameT(encodeClose())
	return c.conn.Close()
}

// PlanRounds enumerates the request sequence of one progressive image
// fetch under geometry g and params p — Figure 2's loop body, precomputed.
// fromR resumes a partially delivered image: it is the level-resolution
// radius already on the client's canvas (0 starts fresh), which is how a
// failover client replays its fovea state onto a replacement server
// without re-fetching delivered increments. Rounds whose full-resolution
// increment would be empty are skipped, mirroring FetchImage.
func PlanRounds(g Geometry, p Params, img, fromR int) []Request {
	if g.Side == 0 {
		return nil
	}
	level := p.Level
	size := (g.Side >> g.Levels) << level
	scale := g.Side / size
	x, y := g.Side/2, g.Side/2
	var reqs []Request
	r, prevR := fromR, fromR
	for r < size {
		r += p.DR
		if r > size {
			r = size
		}
		fullR := r * scale / 2
		fullPrev := prevR * scale / 2
		prevR = r
		if fullR <= fullPrev {
			continue
		}
		reqs = append(reqs, Request{Image: img, X: x, Y: y, R: fullR, PrevR: fullPrev, Level: level})
	}
	return reqs
}

// FetchRoundRaw performs one request/reply round and returns the decoded
// (pre-compression) chunk payload instead of applying it to a canvas —
// the shape the edge proxy's origin leg needs, where the payload is
// cached and re-encoded per client rather than rendered. The returned
// buffer is drawn from the shared bufpool; callers that are done with it
// may return it with bufpool.Put. wireN is the round's on-the-wire byte
// count.
func (c *RealClient) FetchRoundRaw(req Request) (data []byte, wireN int, err error) {
	if c.geom.Side == 0 {
		return nil, 0, fmt.Errorf("avis: not connected")
	}
	t0 := time.Now()
	if err := c.writeFrameT(encodeRequest(req)); err != nil {
		return nil, 0, err
	}
	compressed := bufpool.Get(1 << 12)[:0]
	for {
		msg, err := c.readFrameT()
		if err != nil {
			bufpool.Put(compressed)
			return nil, 0, err
		}
		if len(msg) > 0 && msg[0] == tagError {
			bufpool.Put(compressed)
			err := fmt.Errorf("avis: server error: %s", msg[1:])
			bufpool.Put(msg)
			return nil, 0, err
		}
		seg, err := decodeSegment(msg)
		if err != nil {
			bufpool.Put(compressed)
			bufpool.Put(msg)
			return nil, 0, err
		}
		compressed = append(compressed, seg.Payload...)
		last := seg.Last
		bufpool.Put(msg)
		if last {
			break
		}
	}
	decStart := time.Now()
	data, err = c.codec.Decode(compressed)
	if err != nil {
		bufpool.Put(compressed)
		return nil, 0, err
	}
	c.mCodec[c.codec.Name()].observe(time.Since(decStart).Seconds(), len(compressed), len(data))
	wireN = len(compressed)
	c.mRawBytes.Add(float64(len(data)))
	c.mWireBytes.Add(float64(wireN))
	bufpool.Put(compressed)
	c.mRounds.Inc()
	c.mRoundSeconds.Observe(time.Since(t0).Seconds())
	return data, wireN, nil
}

// FetchRound performs one request/reply round: it sends req, gathers the
// reply segments, decodes them with the current codec, and, when canvas is
// non-nil, applies the chunk. It returns the round's pre-compression and
// on-the-wire byte counts. Round-level granularity is what cluster
// failover needs: a failed round applies nothing to the canvas (segments
// are buffered and decoded only once complete), so the same request can be
// replayed verbatim against a replacement server.
func (c *RealClient) FetchRound(req Request, canvas *wavelet.Canvas) (rawN, wireN int, err error) {
	data, wireN, err := c.FetchRoundRaw(req)
	if err != nil {
		return 0, 0, err
	}
	if canvas != nil {
		chunk, err := wavelet.DecodeChunk(data)
		if err == nil {
			err = canvas.Apply(chunk)
			chunk.Release()
		}
		if err != nil {
			bufpool.Put(data)
			return 0, 0, err
		}
	}
	rawN = len(data)
	bufpool.Put(data)
	return rawN, wireN, nil
}

// FetchImage downloads one image progressively, measuring wall-clock QoS.
func (c *RealClient) FetchImage(img int, canvas *wavelet.Canvas) (ImageStat, error) {
	if c.geom.Side == 0 {
		return ImageStat{}, fmt.Errorf("avis: not connected")
	}
	stat := ImageStat{
		Image: img, Level: c.params.Level, Codec: c.params.Codec, DR: c.params.DR,
		Start: time.Since(c.epoch),
	}
	start := time.Now()
	var respSum time.Duration
	for _, req := range PlanRounds(c.geom, c.params, img, 0) {
		t0 := time.Now()
		raw, wire, err := c.FetchRound(req, canvas)
		if err != nil {
			return stat, err
		}
		stat.RawBytes += int64(raw)
		stat.WireBytes += int64(wire)
		stat.Rounds++
		respSum += time.Since(t0)
	}
	stat.TransmitTime = time.Since(start)
	if stat.Rounds > 0 {
		stat.AvgResponse = respSum / time.Duration(stat.Rounds)
	}
	c.mFetchSeconds.Observe(stat.TransmitTime.Seconds())
	c.mImages.Inc()
	c.stats = append(c.stats, stat)
	return stat, nil
}

// Shape wraps a dialed connection with a bandwidth limit; exported here so
// the cmd tools need not import netem directly.
func Shape(conn net.Conn, bytesPerSec float64) net.Conn {
	if bytesPerSec <= 0 {
		return conn
	}
	return netem.NewShapedConn(conn, bytesPerSec)
}
