package avis

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"tunable/internal/compress"
	"tunable/internal/netem"
	"tunable/internal/wavelet"
)

// Real-network deployment mode: the same wire protocol, wavelet pyramid,
// and codecs as the simulated experiments, but spoken over actual TCP with
// wall-clock timing. Compute costs are the real costs of the real work, so
// no sandbox metering applies; optional token-bucket shaping (package
// netem) stands in for constrained links. Used by cmd/avis-server and
// cmd/avis-client.

// frameLimit bounds a single protocol frame (a frame carries at most one
// reply segment plus headers).
const frameLimit = 1 << 22

// writeFrame sends one length-prefixed protocol message.
func writeFrame(w io.Writer, msg []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// readFrame receives one length-prefixed protocol message.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > frameLimit {
		return nil, fmt.Errorf("avis: frame of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// RealServer serves the visualization protocol over net.Conn connections.
type RealServer struct {
	geom     Geometry
	seeds    []int64
	store    *ImageStore
	segBytes int
}

// NewRealServer creates a server for the given synthetic image set.
func NewRealServer(side, levels int, seeds []int64, store *ImageStore) (*RealServer, error) {
	if side <= 0 || levels <= 0 || len(seeds) == 0 {
		return nil, fmt.Errorf("avis: invalid real-server geometry")
	}
	if store == nil {
		store = sharedStore
	}
	return &RealServer{
		geom:     Geometry{Side: side, Levels: levels, NumImages: len(seeds)},
		seeds:    seeds,
		store:    store,
		segBytes: DefaultSegmentBytes,
	}, nil
}

// Serve accepts connections until the listener closes, handling each in
// its own goroutine.
func (s *RealServer) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.handle(conn)
		}()
	}
}

// handle services one connection.
func (s *RealServer) handle(conn net.Conn) error {
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	codec, _ := compress.Lookup("raw")
	for {
		msg, err := readFrame(r)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if len(msg) == 0 {
			continue
		}
		switch msg[0] {
		case tagHello:
			if err := writeFrame(w, encodeGeom(s.geom)); err != nil {
				return err
			}
		case tagNotify:
			name, err := decodeNotify(msg)
			if err != nil {
				if werr := writeFrame(w, encodeError(err.Error())); werr != nil {
					return werr
				}
				break
			}
			c, err := compress.Lookup(name)
			if err != nil {
				if werr := writeFrame(w, encodeError(err.Error())); werr != nil {
					return werr
				}
				break
			}
			codec = c
		case tagRequest:
			req, err := decodeRequest(msg)
			if err == nil {
				err = s.serveReal(w, codec, req)
			}
			if err != nil {
				if werr := writeFrame(w, encodeError(err.Error())); werr != nil {
					return werr
				}
			}
		case tagClose:
			return w.Flush()
		default:
			if err := writeFrame(w, encodeError("unknown message")); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

func (s *RealServer) serveReal(w io.Writer, codec compress.Codec, req Request) error {
	if req.Image < 0 || req.Image >= len(s.seeds) {
		return fmt.Errorf("image %d out of range", req.Image)
	}
	pyr, err := s.store.Pyramid(s.geom.Side, s.geom.Levels, s.seeds[req.Image])
	if err != nil {
		return err
	}
	chunk, err := pyr.ExtractRegion(req.Level, req.X, req.Y, req.R, req.PrevR)
	if err != nil {
		return err
	}
	raw := chunk.Encode()
	enc := codec.Encode(raw)
	total := len(enc)
	for off := 0; off < total || off == 0; off += s.segBytes {
		end := off + s.segBytes
		if end > total {
			end = total
		}
		rawShare := len(raw)
		if total > 0 {
			rawShare = len(raw) * (end - off) / total
		}
		seg := Segment{Image: req.Image, Seq: req.Seq, Raw: rawShare, Last: end == total, Payload: enc[off:end]}
		if err := writeFrame(w, encodeSegment(seg)); err != nil {
			return err
		}
		if end == total {
			break
		}
	}
	return nil
}

// RealClient fetches images over a net.Conn using wall-clock timing.
type RealClient struct {
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	geom   Geometry
	params Params
	codec  compress.Codec
	stats  []ImageStat
	epoch  time.Time
}

// NewRealClient wraps an established connection. Wrap conn in
// netem.NewShapedConn first to emulate a constrained link.
func NewRealClient(conn net.Conn, params Params) (*RealClient, error) {
	codec, err := compress.Lookup(params.Codec)
	if err != nil {
		return nil, err
	}
	return &RealClient{
		conn:   conn,
		r:      bufio.NewReaderSize(conn, 64<<10),
		w:      bufio.NewWriterSize(conn, 64<<10),
		params: params,
		codec:  codec,
		epoch:  time.Now(),
	}, nil
}

// Connect performs the handshake and codec announcement.
func (c *RealClient) Connect() error {
	if err := writeFrame(c.w, encodeHello()); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	msg, err := readFrame(c.r)
	if err != nil {
		return err
	}
	geom, err := decodeGeom(msg)
	if err != nil {
		return err
	}
	c.geom = geom
	return c.SetCodec(c.params.Codec)
}

// Geometry returns the server's announced geometry.
func (c *RealClient) Geometry() Geometry { return c.geom }

// SetCodec switches the compression method (the notify_server action).
func (c *RealClient) SetCodec(name string) error {
	codec, err := compress.Lookup(name)
	if err != nil {
		return err
	}
	if err := writeFrame(c.w, encodeNotify(name)); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	c.codec = codec
	c.params.Codec = name
	return nil
}

// SetParams updates dR and level for subsequent fetches.
func (c *RealClient) SetParams(p Params) error {
	if p.Codec != c.params.Codec {
		if err := c.SetCodec(p.Codec); err != nil {
			return err
		}
	}
	c.params.DR = p.DR
	c.params.Level = p.Level
	return nil
}

// Stats returns per-image statistics.
func (c *RealClient) Stats() []ImageStat { return c.stats }

// Close ends the session.
func (c *RealClient) Close() error {
	if err := writeFrame(c.w, encodeClose()); err == nil {
		_ = c.w.Flush()
	}
	return c.conn.Close()
}

// FetchImage downloads one image progressively, measuring wall-clock QoS.
func (c *RealClient) FetchImage(img int, canvas *wavelet.Canvas) (ImageStat, error) {
	if c.geom.Side == 0 {
		return ImageStat{}, fmt.Errorf("avis: not connected")
	}
	level := c.params.Level
	size := (c.geom.Side >> c.geom.Levels) << level
	scale := c.geom.Side / size
	x, y := c.geom.Side/2, c.geom.Side/2
	stat := ImageStat{
		Image: img, Level: level, Codec: c.params.Codec, DR: c.params.DR,
		Start: time.Since(c.epoch),
	}
	start := time.Now()
	var respSum time.Duration
	r, prevR, rounds := 0, 0, 0
	for r < size {
		t0 := time.Now()
		r += c.params.DR
		if r > size {
			r = size
		}
		fullR := r * scale / 2
		fullPrev := prevR * scale / 2
		if fullR <= fullPrev {
			prevR = r
			continue
		}
		req := Request{Image: img, X: x, Y: y, R: fullR, PrevR: fullPrev, Level: level}
		if err := writeFrame(c.w, encodeRequest(req)); err != nil {
			return stat, err
		}
		if err := c.w.Flush(); err != nil {
			return stat, err
		}
		var compressed []byte
		for {
			msg, err := readFrame(c.r)
			if err != nil {
				return stat, err
			}
			if len(msg) > 0 && msg[0] == tagError {
				return stat, fmt.Errorf("avis: server error: %s", msg[1:])
			}
			seg, err := decodeSegment(msg)
			if err != nil {
				return stat, err
			}
			compressed = append(compressed, seg.Payload...)
			if seg.Last {
				break
			}
		}
		data, err := c.codec.Decode(compressed)
		if err != nil {
			return stat, err
		}
		if canvas != nil {
			chunk, err := wavelet.DecodeChunk(data)
			if err != nil {
				return stat, err
			}
			if err := canvas.Apply(chunk); err != nil {
				return stat, err
			}
		}
		stat.RawBytes += int64(len(data))
		stat.WireBytes += int64(len(compressed))
		prevR = r
		rounds++
		respSum += time.Since(t0)
	}
	stat.TransmitTime = time.Since(start)
	stat.Rounds = rounds
	if rounds > 0 {
		stat.AvgResponse = respSum / time.Duration(rounds)
	}
	c.stats = append(c.stats, stat)
	return stat, nil
}

// Shape wraps a dialed connection with a bandwidth limit; exported here so
// the cmd tools need not import netem directly.
func Shape(conn net.Conn, bytesPerSec float64) net.Conn {
	if bytesPerSec <= 0 {
		return conn
	}
	return netem.NewShapedConn(conn, bytesPerSec)
}
