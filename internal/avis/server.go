package avis

import (
	"fmt"
	"sync/atomic"

	"tunable/internal/bufpool"
	"tunable/internal/compress"
	"tunable/internal/netem"
	"tunable/internal/sandbox"
	"tunable/internal/vtime"
)

// DefaultSegmentBytes is the compressed-slice size of a pipelined reply:
// the server charges its compression cost, and the client its decode and
// display cost, per slice, so compression, transmission, and
// decompression of one round overlap as they do in the paper's streaming
// server.
const DefaultSegmentBytes = 8 << 10

// ServerStats is a point-in-time snapshot of the server-side counters.
type ServerStats struct {
	Requests        int64
	RawBytes        int64
	CompressedBytes int64
	Notifies        int64
	Errors          int64
}

// serverCounters is the live, concurrency-safe form of ServerStats. The
// sim server's sender runs as its own goroutine-backed vtime proc and
// shared servers can be observed (Stats) while serving, so the counters
// are atomics rather than bare int64s — same discipline as the metrics
// package's instruments.
type serverCounters struct {
	requests        atomic.Int64
	rawBytes        atomic.Int64
	compressedBytes atomic.Int64
	notifies        atomic.Int64
	errors          atomic.Int64
}

// snapshot materializes the exported stats view.
func (c *serverCounters) snapshot() ServerStats {
	return ServerStats{
		Requests:        c.requests.Load(),
		RawBytes:        c.rawBytes.Load(),
		CompressedBytes: c.compressedBytes.Load(),
		Notifies:        c.notifies.Load(),
		Errors:          c.errors.Load(),
	}
}

// Server is the server-side component: it holds images as wavelet
// pyramids and answers foveal increment requests, compressing replies with
// the codec the client last announced (Figure 2's
// notify_server_compression_type).
type Server struct {
	geom     Geometry
	seeds    []int64
	cost     CostModel
	store    *ImageStore
	segBytes int

	sb    *sandbox.Sandbox
	ep    *netem.Endpoint
	codec compress.Codec
	stats serverCounters
}

// ServerOption customizes a server.
type ServerOption func(*Server)

// WithServerCost overrides the cost model.
func WithServerCost(c CostModel) ServerOption { return func(s *Server) { s.cost = c } }

// WithStore overrides the pyramid cache.
func WithStore(st *ImageStore) ServerOption { return func(s *Server) { s.store = st } }

// WithSegmentBytes overrides the reply slice size.
func WithSegmentBytes(n int) ServerOption { return func(s *Server) { s.segBytes = n } }

// NewServer creates a server for a set of synthetic images (one per seed)
// of the given geometry, running inside sandbox sb and speaking over
// endpoint ep.
func NewServer(sb *sandbox.Sandbox, ep *netem.Endpoint, side, levels int, seeds []int64, opts ...ServerOption) (*Server, error) {
	if side <= 0 || levels <= 0 || len(seeds) == 0 {
		return nil, fmt.Errorf("avis: invalid server geometry")
	}
	s := &Server{
		geom:     Geometry{Side: side, Levels: levels, NumImages: len(seeds)},
		seeds:    seeds,
		cost:     DefaultCostModel(),
		store:    sharedStore,
		segBytes: DefaultSegmentBytes,
		sb:       sb,
		ep:       ep,
	}
	raw, _ := compress.Lookup("raw")
	s.codec = raw
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Stats returns a snapshot of the server counters. Safe to call while
// the server is running.
func (s *Server) Stats() ServerStats { return s.stats.snapshot() }

// Codec returns the currently announced compression method.
func (s *Server) Codec() string { return s.codec.Name() }

// Run services the connection until the client closes it. It spawns a
// dedicated sender process so compression of slice k+1 overlaps
// transmission of slice k.
func (s *Server) Run(p *vtime.Proc) error {
	sendQ := vtime.NewNamedChan[[]byte](p.Sim(), 4, "avis.server.sendq")
	senderDone := vtime.NewEvent(p.Sim(), "avis.server.sender.done")
	p.Spawn("avis-server-sender", func(sp *vtime.Proc) {
		for {
			msg, ok := sendQ.Recv(sp)
			if !ok {
				break
			}
			s.ep.Send(sp, msg)
		}
		senderDone.Set()
	})
	defer func() {
		sendQ.Close()
		senderDone.Wait(p)
	}()
	for {
		raw, ok := s.ep.Recv(p)
		if !ok {
			return nil
		}
		if len(raw) == 0 {
			continue
		}
		switch raw[0] {
		case tagHello:
			sendQ.Send(p, encodeGeom(s.geom))
		case tagNotify:
			name, err := decodeNotify(raw)
			if err != nil {
				s.fail(p, sendQ, err)
				continue
			}
			codec, err := compress.Lookup(name)
			if err != nil {
				s.fail(p, sendQ, err)
				continue
			}
			s.codec = codec
			s.stats.notifies.Add(1)
		case tagRequest:
			req, err := decodeRequest(raw)
			if err != nil {
				s.fail(p, sendQ, err)
				continue
			}
			if err := s.serveRequest(p, sendQ, req); err != nil {
				s.fail(p, sendQ, err)
			}
		case tagClose:
			return nil
		default:
			s.fail(p, sendQ, fmt.Errorf("avis: unknown message tag %q", raw[0]))
		}
	}
}

func (s *Server) fail(p *vtime.Proc, sendQ *vtime.Chan[[]byte], err error) {
	s.stats.errors.Add(1)
	sendQ.Send(p, encodeError(err.Error()))
}

// serveRequest extracts, compresses, and streams one foveal increment.
func (s *Server) serveRequest(p *vtime.Proc, sendQ *vtime.Chan[[]byte], req Request) error {
	s.stats.requests.Add(1)
	if req.Image < 0 || req.Image >= len(s.seeds) {
		return fmt.Errorf("avis: image %d out of range", req.Image)
	}
	if req.Level < 0 || req.Level > s.geom.Levels {
		return fmt.Errorf("avis: level %d out of range", req.Level)
	}
	pyr, err := s.store.Pyramid(s.geom.Side, s.geom.Levels, s.seeds[req.Image])
	if err != nil {
		return err
	}
	// Per-request processing overhead.
	s.sb.Compute(p, s.cost.RequestOverheadCycles)
	chunk, err := pyr.ExtractRegion(req.Level, req.X, req.Y, req.R, req.PrevR)
	if err != nil {
		return err
	}
	rawBytes := chunk.AppendEncode(bufpool.Get(chunk.Size())[:0])
	chunk.Release()
	rawLen := len(rawBytes)
	s.sb.Compute(p, s.cost.ExtractCyclesPerCoeff*float64(rawLen))
	enc := s.codec.Encode(rawBytes)
	s.stats.rawBytes.Add(int64(rawLen))
	s.stats.compressedBytes.Add(int64(len(enc)))
	bufpool.Put(rawBytes)
	// Stream the compressed bytes in slices, charging the compression cost
	// slice by slice so the sender can overlap transmission.
	encCost := s.cost.EncodeCyclesPerByte * s.codec.EncodeCost()
	total := len(enc)
	for off := 0; off < total || off == 0; off += s.segBytes {
		end := off + s.segBytes
		if end > total {
			end = total
		}
		rawShare := float64(rawLen)
		if total > 0 {
			rawShare = float64(rawLen) * float64(end-off) / float64(total)
		}
		s.sb.Compute(p, encCost*rawShare)
		seg := Segment{
			Image:   req.Image,
			Seq:     req.Seq,
			Raw:     int(rawShare + 0.5),
			Last:    end == total,
			Payload: enc[off:end],
		}
		sendQ.Send(p, encodeSegment(seg))
		if end == total {
			break
		}
	}
	// encodeSegment copies the payload, so the codec output can be recycled.
	bufpool.Put(enc)
	return nil
}
