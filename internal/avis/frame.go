package avis

import (
	"io"
	"net"
	"time"
)

// Exported frame-protocol plumbing. The cluster control plane
// (internal/cluster) speaks the same length-prefixed framing and the same
// progress-deadline semantics as the data plane, so the coordinator, node
// agents, and resolvers share one wire discipline — and one failure
// vocabulary: a dead peer always surfaces as a *TimeoutError matching
// ErrIOTimeout.

// WriteFrame sends one length-prefixed protocol message.
func WriteFrame(w io.Writer, msg []byte) error { return writeFrame(w, msg) }

// ReadFrame receives one length-prefixed protocol message.
func ReadFrame(r io.Reader) ([]byte, error) { return readFrame(r) }

// WrapTimeout converts a deadline-exceeded network error into a typed
// *TimeoutError (matching ErrIOTimeout under errors.Is); other errors,
// including nil, pass through unchanged.
func WrapTimeout(op string, after time.Duration, err error) error {
	return wrapTimeout(op, after, err)
}

// NewDeadlineRW wraps conn so every read and write first arms a fresh
// deadline of the given timeout: the connection must keep making progress,
// but an arbitrarily long transfer never trips the limit while bytes flow.
// A zero timeout disables arming.
func NewDeadlineRW(conn net.Conn, timeout time.Duration) io.ReadWriter {
	return &deadlineRW{conn: conn, timeout: timeout}
}
