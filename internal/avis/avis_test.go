package avis

import (
	"math"
	"testing"
	"time"

	"tunable/internal/spec"
	"tunable/internal/steering"
	"tunable/internal/vtime"
)

// testStore is shared across the package tests so pyramids build once.
var testStore = NewImageStore()

func testWorld(t *testing.T, cfg WorldConfig, opts ...ClientOption) *World {
	t.Helper()
	cfg.Store = testStore
	if cfg.Side == 0 {
		cfg.Side = 256 // small images keep unit tests fast
	}
	w, err := NewWorld(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFetchSingleImage(t *testing.T) {
	w := testWorld(t, WorldConfig{Params: Params{DR: 64, Codec: "lzw", Level: 4}})
	stats, err := w.RunSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("%d stats", len(stats))
	}
	s := stats[0]
	if s.TransmitTime <= 0 || s.AvgResponse <= 0 {
		t.Fatalf("degenerate stat %+v", s)
	}
	if s.Rounds != 4 { // size(4)=256, dR=64
		t.Fatalf("rounds %d, want 4", s.Rounds)
	}
	// Coefficients plus 4 chunk headers (18 B) with 13 band headers (8 B)
	// each.
	if s.RawBytes != 256*256+4*(18+13*8) {
		t.Fatalf("raw bytes %d", s.RawBytes)
	}
	if s.Level != 4 || s.Codec != "lzw" {
		t.Fatalf("stat %+v", s)
	}
}

func TestMetricsRendering(t *testing.T) {
	s := ImageStat{TransmitTime: 2 * time.Second, AvgResponse: 500 * time.Millisecond, Level: 3}
	m := s.Metrics()
	if m["transmit_time"] != 2.0 || m["response_time"] != 0.5 || m["resolution"] != 3 {
		t.Fatalf("metrics %v", m)
	}
}

func TestLowerLevelSendsLessData(t *testing.T) {
	var raw [2]int64
	for i, level := range []int{3, 4} {
		w := testWorld(t, WorldConfig{Params: Params{DR: 64, Codec: "raw", Level: level}})
		stats, err := w.RunSequence(1)
		if err != nil {
			t.Fatal(err)
		}
		raw[i] = stats[0].RawBytes
	}
	// Level 3 carries ~1/4 the coefficients of level 4.
	ratio := float64(raw[1]) / float64(raw[0])
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("level-4/level-3 data ratio %.2f, want ~4", ratio)
	}
}

func TestLargerFoveaFewerRounds(t *testing.T) {
	var rounds [2]int
	var resp [2]time.Duration
	for i, dr := range []int{32, 128} {
		w := testWorld(t, WorldConfig{Params: Params{DR: dr, Codec: "lzw", Level: 4}})
		stats, err := w.RunSequence(1)
		if err != nil {
			t.Fatal(err)
		}
		rounds[i] = stats[0].Rounds
		resp[i] = stats[0].AvgResponse
	}
	if rounds[0] <= rounds[1] {
		t.Fatalf("rounds %v: smaller dR must need more rounds", rounds)
	}
	if resp[0] >= resp[1] {
		t.Fatalf("responses %v: smaller dR must respond faster per round", resp)
	}
}

func TestVerifiedReconstruction(t *testing.T) {
	w := testWorld(t, WorldConfig{
		Params: Params{DR: 64, Codec: "bzw", Level: 4},
		Verify: true,
		Seeds:  []int64{3},
	})
	stats, err := w.RunSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].PSNR < 30 {
		t.Fatalf("PSNR %.1f dB: delivered image is not faithful", stats[0].PSNR)
	}
}

func TestVerifiedReconstructionLowerLevel(t *testing.T) {
	w := testWorld(t, WorldConfig{
		Params: Params{DR: 64, Codec: "lzw", Level: 2},
		Verify: true,
		Seeds:  []int64{4},
	})
	stats, err := w.RunSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].PSNR < 30 {
		t.Fatalf("level-2 PSNR %.1f dB", stats[0].PSNR)
	}
}

func TestCodecChangeMidSessionViaSteering(t *testing.T) {
	w := testWorld(t, WorldConfig{Params: Params{DR: 80, Codec: "lzw", Level: 4}})
	app := Spec()
	agent, err := steering.New(w.Sim, app, Params{DR: 80, Codec: "lzw", Level: 4}.Config())
	if err != nil {
		t.Fatal(err)
	}
	w.Client.AttachSteering(agent)
	var ferr error
	var codecs []string
	w.Sim.Spawn("client", func(p *vtime.Proc) {
		if ferr = w.Client.Connect(p); ferr != nil {
			return
		}
		for i := 0; i < 3; i++ {
			if i == 1 {
				agent.Control().Send(p, steering.ControlMsg{
					Seq:    1,
					Config: Params{DR: 80, Codec: "bzw", Level: 4}.Config(),
				})
			}
			st, err := w.Client.FetchImage(p, 0)
			if err != nil {
				ferr = err
				return
			}
			codecs = append(codecs, st.Codec)
		}
		w.Client.Close(p)
	})
	if err := w.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if ferr != nil {
		t.Fatal(ferr)
	}
	if codecs[0] != "lzw" {
		t.Fatalf("first image codec %s", codecs[0])
	}
	if codecs[2] != "bzw" {
		t.Fatalf("third image codec %s", codecs[2])
	}
	// The server must have been notified (the notify_server transition).
	if w.Server.Codec() != "bzw" {
		t.Fatalf("server codec %s", w.Server.Codec())
	}
	if w.Server.Stats().Notifies < 2 { // initial + switch
		t.Fatalf("notifies %d", w.Server.Stats().Notifies)
	}
}

func TestLevelChangeAppliesAtNextImage(t *testing.T) {
	w := testWorld(t, WorldConfig{Params: Params{DR: 80, Codec: "lzw", Level: 4}})
	app := Spec()
	agent, err := steering.New(w.Sim, app, Params{DR: 80, Codec: "lzw", Level: 4}.Config())
	if err != nil {
		t.Fatal(err)
	}
	w.Client.AttachSteering(agent)
	var levels []int
	var ferr error
	w.Sim.Spawn("client", func(p *vtime.Proc) {
		if ferr = w.Client.Connect(p); ferr != nil {
			return
		}
		// Queue the switch mid-image via a timer firing during image 0.
		w.Sim.After(time.Millisecond, func() {
			agent.Control().TrySend(steering.ControlMsg{
				Seq:    1,
				Config: Params{DR: 80, Codec: "lzw", Level: 3}.Config(),
			})
		})
		for i := 0; i < 2; i++ {
			st, err := w.Client.FetchImage(p, 0)
			if err != nil {
				ferr = err
				return
			}
			levels = append(levels, st.Level)
		}
		w.Client.Close(p)
	})
	if err := w.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if ferr != nil {
		t.Fatal(ferr)
	}
	if levels[0] != 4 {
		t.Fatalf("in-flight image changed level: %v", levels)
	}
	if levels[1] != 3 {
		t.Fatalf("next image kept old level: %v", levels)
	}
}

func TestInteractionResetsFovea(t *testing.T) {
	moved := false
	w := testWorld(t, WorldConfig{Params: Params{DR: 64, Codec: "raw", Level: 4}},
		WithInteraction(func(img, round int) (int, int, bool) {
			if round == 1 && !moved {
				moved = true
				return 40, 40, true
			}
			return 0, 0, false
		}))
	stats, err := w.RunSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	// A fovea move restarts the increments, so more rounds than the
	// undisturbed 4.
	if stats[0].Rounds <= 4 {
		t.Fatalf("rounds %d after fovea move", stats[0].Rounds)
	}
	if !moved {
		t.Fatal("interaction hook never ran")
	}
}

func TestFetchErrors(t *testing.T) {
	w := testWorld(t, WorldConfig{Params: Params{DR: 64, Codec: "lzw", Level: 4}})
	var errNoConnect, errBadImage error
	w.Sim.Spawn("client", func(p *vtime.Proc) {
		_, errNoConnect = w.Client.FetchImage(p, 0)
		if err := w.Client.Connect(p); err != nil {
			t.Error(err)
			return
		}
		_, errBadImage = w.Client.FetchImage(p, 99)
		w.Client.Close(p)
	})
	if err := w.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if errNoConnect == nil {
		t.Fatal("fetch before connect succeeded")
	}
	if errBadImage == nil {
		t.Fatal("out-of-range image succeeded")
	}
}

func TestParamsConfigRoundTrip(t *testing.T) {
	p := Params{DR: 160, Codec: "bzw", Level: 3}
	got, err := ParamsFromConfig(p.Config())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip %+v", got)
	}
	bad := []spec.Config{
		{},
		{"dR": spec.Int(0), "c": spec.Enum("lzw"), "l": spec.Int(4)},
		{"dR": spec.Enum("x"), "c": spec.Enum("lzw"), "l": spec.Int(4)},
		{"dR": spec.Int(80), "c": spec.Int(1), "l": spec.Int(4)},
		{"dR": spec.Int(80), "c": spec.Enum("lzw"), "l": spec.Enum("x")},
	}
	for _, cfg := range bad {
		if _, err := ParamsFromConfig(cfg); err == nil {
			t.Fatalf("config %v accepted", cfg)
		}
	}
}

func TestSpecParses(t *testing.T) {
	app := Spec()
	if app.Name != "active_visualization" {
		t.Fatalf("name %s", app.Name)
	}
	if got := len(app.Enumerate()); got != 18 {
		t.Fatalf("%d configurations", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	measure := func() time.Duration {
		w := testWorld(t, WorldConfig{Params: Params{DR: 64, Codec: "bzw", Level: 4}})
		stats, err := w.RunSequence(2)
		if err != nil {
			t.Fatal(err)
		}
		return stats[0].TransmitTime + stats[1].TransmitTime
	}
	if a, b := measure(), measure(); a != b {
		t.Fatalf("replay mismatch %v vs %v", a, b)
	}
}

func TestServerStatsAndProtocolErrors(t *testing.T) {
	w := testWorld(t, WorldConfig{Params: Params{DR: 64, Codec: "lzw", Level: 4}})
	var gotErr bool
	w.Sim.Spawn("client", func(p *vtime.Proc) {
		if err := w.Client.Connect(p); err != nil {
			t.Error(err)
			return
		}
		// Malformed request → server replies with an error message.
		w.Link.A().Send(p, []byte{tagRequest, 1, 2})
		raw, ok := w.Link.A().Recv(p)
		gotErr = ok && len(raw) > 0 && raw[0] == tagError
		// Unknown codec notify → error.
		w.Link.A().Send(p, encodeNotify("zip9000"))
		raw, ok = w.Link.A().Recv(p)
		gotErr = gotErr && ok && raw[0] == tagError
		w.Client.Close(p)
	})
	if err := w.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotErr {
		t.Fatal("server did not report protocol errors")
	}
	if w.Server.Stats().Errors != 2 {
		t.Fatalf("server errors %d", w.Server.Stats().Errors)
	}
}

// Calibration regression: the relationships every figure depends on. These
// run on full-size (1024²) images.
func TestCalibrationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size calibration check")
	}
	run := func(codec string, bw, share float64, level int) ImageStat {
		w := testWorld(t, WorldConfig{
			Side:        1024,
			Bandwidth:   bw,
			ClientShare: share,
			Params:      Params{DR: 320, Codec: codec, Level: level},
			Seeds:       []int64{1},
		})
		stats, err := w.RunSequence(1)
		if err != nil {
			t.Fatal(err)
		}
		return stats[0]
	}
	a500 := run("lzw", 500e3, 1.0, 4)
	b500 := run("bzw", 500e3, 1.0, 4)
	a50 := run("lzw", 50e3, 1.0, 4)
	b50 := run("bzw", 50e3, 1.0, 4)
	// Figure 6(a): crossover.
	if a500.TransmitTime >= b500.TransmitTime {
		t.Errorf("at 500 KB/s LZW (%v) must beat BZW (%v)", a500.TransmitTime, b500.TransmitTime)
	}
	if b50.TransmitTime >= a50.TransmitTime {
		t.Errorf("at 50 KB/s BZW (%v) must beat LZW (%v)", b50.TransmitTime, a50.TransmitTime)
	}
	// Experiment 2: deadline separation at 200 KB/s with BZW.
	l4fast := run("bzw", 200e3, 0.9, 4)
	l4slow := run("bzw", 200e3, 0.4, 4)
	l3slow := run("bzw", 200e3, 0.4, 3)
	if l4fast.TransmitTime.Seconds() >= 10 {
		t.Errorf("level 4 at 90%% share took %v, must be under the 10 s deadline", l4fast.TransmitTime)
	}
	if l4slow.TransmitTime.Seconds() <= 10 {
		t.Errorf("level 4 at 40%% share took %v, must violate the 10 s deadline", l4slow.TransmitTime)
	}
	if l3slow.TransmitTime.Seconds() >= 10 {
		t.Errorf("level 3 at 40%% share took %v, must meet the deadline", l3slow.TransmitTime)
	}
	// Experiment 3: response-time separation (LZW, 500 KB/s).
	r320fast := run("lzw", 500e3, 0.9, 4)
	r320slow := run("lzw", 500e3, 0.4, 4)
	w := testWorld(t, WorldConfig{
		Side: 1024, Bandwidth: 500e3, ClientShare: 0.4,
		Params: Params{DR: 80, Codec: "lzw", Level: 4}, Seeds: []int64{1},
	})
	stats, err := w.RunSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	r80slow := stats[0]
	if r320fast.AvgResponse.Seconds() >= 1.0 {
		t.Errorf("fovea 320 at 90%%: response %v, want < 1 s", r320fast.AvgResponse)
	}
	if r320slow.AvgResponse.Seconds() <= 1.0 {
		t.Errorf("fovea 320 at 40%%: response %v, want > 1 s", r320slow.AvgResponse)
	}
	if r80slow.AvgResponse.Seconds() >= 1.0 {
		t.Errorf("fovea 80 at 40%%: response %v, want < 1 s", r80slow.AvgResponse)
	}
	// Compression ratios stay in the calibrated regime.
	ra := float64(a500.RawBytes) / float64(a500.WireBytes)
	rb := float64(b500.RawBytes) / float64(b500.WireBytes)
	if math.IsNaN(ra) || math.IsNaN(rb) {
		t.Skip("wire bytes not tracked")
	}
	if rb <= ra {
		t.Errorf("BZW ratio %.2f must exceed LZW ratio %.2f", rb, ra)
	}
}

// A lossy link must not prevent a complete, faithful download when retry
// is enabled.
func TestLossyLinkRecovery(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Params: Params{DR: 64, Codec: "lzw", Level: 4},
		Verify: true,
		Seeds:  []int64{5},
		Store:  testStore,
		Side:   256,
		Loss:   0.03, // 3% message loss in both directions
	}, WithRetry(2*time.Second, 20))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.RunSequence(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("%d images", len(stats))
	}
	for _, st := range stats {
		if st.PSNR < 30 {
			t.Fatalf("image %d PSNR %.1f under loss", st.Image, st.PSNR)
		}
	}
	if w.Client.Retries() == 0 {
		t.Fatalf("3%% loss produced zero retries — loss not exercised")
	}
}

// Without retry, a lossy link eventually stalls a round forever; with a
// zero-retry budget the stall surfaces as an error instead of a hang.
func TestLossyLinkStallSurfacesError(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Params: Params{DR: 64, Codec: "raw", Level: 4},
		Seeds:  []int64{5},
		Store:  testStore,
		Side:   256,
		Loss:   0.2,
	}, WithRetry(time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.RunSequence(3)
	if err == nil {
		t.Skip("no message happened to be lost at this seed")
	}
	if err != nil && err.Error() == "" {
		t.Fatal("empty error")
	}
}

// A wandering fovea (the paper's user interaction) must still converge:
// every move restarts the increments, so rounds grow but the download
// still completes and remains faithful around the final fovea.
func TestRandomInteractionWorkload(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Params: Params{DR: 64, Codec: "lzw", Level: 4},
		Seeds:  []int64{6},
		Store:  testStore,
		Side:   256,
	}, WithInteraction(RandomInteraction(4, 256, 80)))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.RunSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Rounds <= 4 {
		t.Fatalf("rounds %d: interaction never moved the fovea", stats[0].Rounds)
	}
	// Determinism: same seed, same behaviour.
	w2, err := NewWorld(WorldConfig{
		Params: Params{DR: 64, Codec: "lzw", Level: 4},
		Seeds:  []int64{6},
		Store:  testStore,
		Side:   256,
	}, WithInteraction(RandomInteraction(4, 256, 80)))
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := w2.RunSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Rounds != stats2[0].Rounds || stats[0].TransmitTime != stats2[0].TransmitTime {
		t.Fatal("interaction workload not deterministic")
	}
}

// Reply segments' Raw fields must account for the whole chunk, so client
// cost accounting neither over- nor under-charges.
func TestSegmentRawAccounting(t *testing.T) {
	w := testWorld(t, WorldConfig{Params: Params{DR: 256, Codec: "bzw", Level: 4}})
	stats, err := w.RunSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	ss := w.Server.Stats()
	// Client-side accumulated raw bytes within 1% of the server's total
	// (integer rounding per segment).
	diff := float64(stats[0].RawBytes - ss.RawBytes)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(ss.RawBytes) > 0.01 {
		t.Fatalf("client raw %d vs server raw %d", stats[0].RawBytes, ss.RawBytes)
	}
	if ss.CompressedBytes >= ss.RawBytes {
		t.Fatalf("no compression: %d vs %d", ss.CompressedBytes, ss.RawBytes)
	}
	if stats[0].WireBytes != ss.CompressedBytes {
		t.Fatalf("wire bytes %d vs server compressed %d", stats[0].WireBytes, ss.CompressedBytes)
	}
}

// The pyramid store must build each image once and share it.
func TestImageStoreCaches(t *testing.T) {
	st := NewImageStore()
	a, err := st.Pyramid(128, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Pyramid(128, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same key rebuilt")
	}
	c, err := st.Pyramid(128, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds share a pyramid")
	}
}

// Codec switching costs must show on the wire: the same image fetched with
// bzw must ship fewer bytes than with lzw.
func TestWireBytesReflectCodec(t *testing.T) {
	var wire [2]int64
	for i, codec := range []string{"lzw", "bzw"} {
		w := testWorld(t, WorldConfig{Params: Params{DR: 256, Codec: codec, Level: 4}})
		stats, err := w.RunSequence(1)
		if err != nil {
			t.Fatal(err)
		}
		wire[i] = stats[0].WireBytes
	}
	if wire[1] >= wire[0] {
		t.Fatalf("bzw wire %d not smaller than lzw %d", wire[1], wire[0])
	}
}
