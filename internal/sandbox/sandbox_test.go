package sandbox

import (
	"math"
	"testing"
	"time"

	"tunable/internal/vtime"
)

// run executes fn as a single simulation process and returns the elapsed
// virtual time.
func run(t *testing.T, sim *vtime.Sim, fn func(p *vtime.Proc)) time.Duration {
	t.Helper()
	var elapsed time.Duration
	sim.Spawn("test", func(p *vtime.Proc) {
		start := p.Now()
		fn(p)
		elapsed = p.Now() - start
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func TestComputeDurationScalesWithShare(t *testing.T) {
	const cycles = 450e6 // one second of work at full speed on a 450 MHz host
	for _, share := range []float64{1.0, 0.5, 0.25, 0.1} {
		sim := vtime.NewSim()
		h := NewHost(sim, "pii450", 450e6, WithOSLoad(0))
		sb, err := h.NewSandbox("app", share, 0)
		if err != nil {
			t.Fatal(err)
		}
		elapsed := run(t, sim, func(p *vtime.Proc) { sb.Compute(p, cycles) })
		want := time.Duration(float64(time.Second) / share)
		ratio := float64(elapsed) / float64(want)
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("share %.2f: elapsed %v, want ~%v (ratio %.3f)", share, elapsed, want, ratio)
		}
	}
}

func TestComputeAccountsCPUTime(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6, WithOSLoad(0))
	sb, _ := h.NewSandbox("app", 0.4, 0)
	run(t, sim, func(p *vtime.Proc) { sb.Compute(p, 200e6) }) // 2 CPU-seconds of work
	cpu := sb.CPUTime().Seconds()
	if math.Abs(cpu-2.0) > 0.02 {
		t.Fatalf("CPUTime %.3fs, want ~2s", cpu)
	}
	active := sb.ActiveTime().Seconds()
	if math.Abs(active-5.0) > 0.1 { // 2 CPU-seconds at 40% share → 5s wall
		t.Fatalf("ActiveTime %.3fs, want ~5s", active)
	}
	// Achieved share = cpu/active ≈ the configured share.
	if got := cpu / active; math.Abs(got-0.4) > 0.01 {
		t.Fatalf("achieved share %.3f, want ~0.4", got)
	}
}

func TestDynamicShareChangeTakesEffect(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6, WithOSLoad(0))
	sb, _ := h.NewSandbox("app", 0.8, 0)
	// Halve the share after 1 second; work sized for 0.8 share × 1 s +
	// 0.4 share × 1 s = 1.2 CPU-seconds → 120e6 cycles.
	sim.After(time.Second, func() {
		if err := sb.SetCPUShare(0.4); err != nil {
			t.Error(err)
		}
	})
	elapsed := run(t, sim, func(p *vtime.Proc) { sb.Compute(p, 120e6) })
	if math.Abs(elapsed.Seconds()-2.0) > 0.05 {
		t.Fatalf("elapsed %v, want ~2s with mid-flight share change", elapsed)
	}
}

func TestOSLoadCapsFullShare(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6, WithOSLoad(0.05))
	sb, _ := h.NewSandbox("greedy", 0.97, 0)
	elapsed := run(t, sim, func(p *vtime.Proc) { sb.Compute(p, 100e6) })
	// Effective share capped at 0.95 → elapsed ≈ 1/0.95 s, definitely > 1 s.
	if elapsed <= time.Second {
		t.Fatalf("elapsed %v: OS load did not perturb full-share app", elapsed)
	}
	if elapsed > 1100*time.Millisecond {
		t.Fatalf("elapsed %v: perturbation too large", elapsed)
	}
}

func TestAdmissionControl(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6)
	if _, err := h.NewSandbox("a", 0.6, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewSandbox("b", 0.5, 0); err == nil {
		t.Fatal("oversubscription admitted")
	}
	sbC, err := h.NewSandbox("c", 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Reserved() < 0.89 || h.Reserved() > 0.91 {
		t.Fatalf("reserved %.2f", h.Reserved())
	}
	h.Release(sbC)
	if math.Abs(h.Reserved()-0.6) > 1e-9 {
		t.Fatalf("reserved after release %.2f", h.Reserved())
	}
	if _, err := h.NewSandbox("a", 0.1, 0); err == nil {
		t.Fatal("duplicate name admitted")
	}
	if _, err := h.NewSandbox("bad", 0, 0); err == nil {
		t.Fatal("zero share admitted")
	}
	if _, err := h.NewSandbox("bad2", 1.5, 0); err == nil {
		t.Fatal("share > 1 admitted")
	}
}

func TestMemoryAdmission(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6, WithMemory(100<<20))
	if _, err := h.NewSandbox("a", 0.3, 80<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewSandbox("b", 0.3, 40<<20); err == nil {
		t.Fatal("memory oversubscription admitted")
	}
}

// Two sandboxes sharing a host must each receive exactly their share —
// "several virtual machines on the same physical host, without them
// interfering with each other" (Section 5.1).
func TestSandboxesDoNotInterfere(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6, WithOSLoad(0))
	a, _ := h.NewSandbox("a", 0.5, 0)
	b, _ := h.NewSandbox("b", 0.25, 0)
	var aDone, bDone time.Duration
	sim.Spawn("a", func(p *vtime.Proc) {
		a.Compute(p, 50e6) // 0.5 CPU-s at 50% → 1 s
		aDone = p.Now()
	})
	sim.Spawn("b", func(p *vtime.Proc) {
		b.Compute(p, 50e6) // 0.5 CPU-s at 25% → 2 s
		bDone = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(aDone.Seconds()-1.0) > 0.02 {
		t.Fatalf("a finished at %v, want ~1s", aDone)
	}
	if math.Abs(bDone.Seconds()-2.0) > 0.04 {
		t.Fatalf("b finished at %v, want ~2s", bDone)
	}
}

func TestSetCPUShareValidation(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6)
	a, _ := h.NewSandbox("a", 0.5, 0)
	if _, err := h.NewSandbox("b", 0.4, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.SetCPUShare(0.7); err == nil {
		t.Fatal("growing past admission bound succeeded")
	}
	if err := a.SetCPUShare(0); err == nil {
		t.Fatal("zero share accepted")
	}
	if err := a.SetCPUShare(0.3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Reserved()-0.7) > 1e-9 {
		t.Fatalf("reserved %.2f after shrink", h.Reserved())
	}
}

func TestMemoryFaultsSlowTouch(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6, WithOSLoad(0))
	sb, _ := h.NewSandbox("app", 1.0, 10<<20)
	// Within the limit: Touch is free.
	el := run(t, sim, func(p *vtime.Proc) {
		sb.Alloc(8 << 20)
		sb.Touch(p, 8<<20)
	})
	if el != 0 {
		t.Fatalf("in-limit touch cost %v", el)
	}
	if sb.Faults() != 0 {
		t.Fatalf("in-limit faults %d", sb.Faults())
	}
	// Over the limit: faults burn CPU.
	sim2 := vtime.NewSim()
	h2 := NewHost(sim2, "h", 100e6, WithOSLoad(0))
	sb2, _ := h2.NewSandbox("app", 1.0, 10<<20)
	el2 := run(t, sim2, func(p *vtime.Proc) {
		sb2.Alloc(20 << 20)
		sb2.Touch(p, 20<<20)
	})
	if el2 == 0 {
		t.Fatal("over-limit touch was free")
	}
	if sb2.Faults() == 0 {
		t.Fatal("no faults recorded")
	}
}

func TestAllocFree(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6)
	sb, _ := h.NewSandbox("app", 0.5, 0)
	sb.Alloc(1000)
	sb.Alloc(500)
	if sb.MemUsed() != 1500 {
		t.Fatalf("MemUsed %d", sb.MemUsed())
	}
	sb.Free(2000)
	if sb.MemUsed() != 0 {
		t.Fatalf("MemUsed %d after over-free", sb.MemUsed())
	}
}

func TestDeterministicReplay(t *testing.T) {
	measure := func() time.Duration {
		sim := vtime.NewSim()
		h := NewHost(sim, "pii450", 450e6)
		sb, _ := h.NewSandbox("app", 0.8, 0)
		return run(t, sim, func(p *vtime.Proc) { sb.Compute(p, 1e9) })
	}
	a, b := measure(), measure()
	if a != b {
		t.Fatalf("replay mismatch: %v vs %v", a, b)
	}
}

func TestSetMemLimit(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6, WithMemory(64<<20))
	sb, _ := h.NewSandbox("app", 0.5, 32<<20)
	if err := sb.SetMemLimit(48 << 20); err != nil {
		t.Fatal(err)
	}
	if err := sb.SetMemLimit(128 << 20); err == nil {
		t.Fatal("over-memory growth accepted")
	}
	if err := sb.SetMemLimit(-1); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestTouchPartialOverLimit(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "h", 100e6, WithOSLoad(0))
	sb, _ := h.NewSandbox("app", 1.0, 10<<20)
	// 25% over the limit: roughly a quarter of touched pages fault.
	var el1, el2 time.Duration
	sim.Spawn("t", func(p *vtime.Proc) {
		sb.Alloc(int64(12.5 * float64(1<<20)))
		start := p.Now()
		sb.Touch(p, 4<<20)
		el1 = p.Now() - start
		// Going further over the limit faults more.
		sb.Alloc(10 << 20)
		start = p.Now()
		sb.Touch(p, 4<<20)
		el2 = p.Now() - start
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if el1 <= 0 {
		t.Fatal("over-limit touch was free")
	}
	if el2 <= el1 {
		t.Fatalf("worse overcommit not slower: %v vs %v", el2, el1)
	}
}

func TestHostAccessors(t *testing.T) {
	sim := vtime.NewSim()
	h := NewHost(sim, "box", 450e6, WithMemory(64<<20))
	if h.Name() != "box" || h.Speed() != 450e6 || h.MemTotal() != 64<<20 {
		t.Fatalf("accessors %s %v %v", h.Name(), h.Speed(), h.MemTotal())
	}
	sb, err := h.NewSandbox("a", 0.5, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Name() != "a" || sb.Host() != h {
		t.Fatal("sandbox accessors")
	}
	if h.MemReserved() != 16<<20 {
		t.Fatalf("mem reserved %d", h.MemReserved())
	}
}
