// Package sandbox implements the paper's virtual execution environment
// (Section 5.1): a resource-constrained sandbox that guarantees an
// application an average CPU share, memory limit, and — in combination with
// package netem — network bandwidth, over short metering periods.
//
// The paper realizes the sandbox with Win32 API interception and dynamic
// priority manipulation "every few milliseconds"; here the same contract is
// met by metering virtual time: an application expresses processor demand
// in cycles, and the sandbox converts cycles to virtual time at
// hostSpeed × share, re-reading the share every quantum so dynamic
// reconfiguration takes effect within one quantum, exactly as the paper's
// priority adjustments do. The sandbox doubles as the profiling testbed and
// as the run-time policing mechanism (Section 6.2), as in the paper.
package sandbox

import (
	"fmt"
	"time"

	"tunable/internal/metrics"
	"tunable/internal/vtime"
)

// Quantum is the metering period: the sandbox recomputes effective rates
// and accounts usage at this granularity (the paper adjusts priorities
// "every few milliseconds").
const Quantum = 10 * time.Millisecond

// MaxReservable caps the total CPU share a host will admit. Applications
// may ask for the whole machine, but non-controllable OS activity (daemons
// etc., footnote 2 of the paper) still claims its fraction at run time via
// the host's OS load.
const MaxReservable = 1.0

// Host models a physical machine: a processor with a given speed (cycles
// per second of virtual time) plus a small amount of background OS load
// that perturbs applications asking for a full share.
type Host struct {
	sim      *vtime.Sim
	name     string
	speed    float64 // cycles per second
	osLoad   float64 // fraction of CPU consumed by uncontrollable OS activity
	memTotal int64   // bytes of physical memory
	reserved float64
	memResv  int64
	boxes    map[string]*Sandbox
	rng      *prng

	reg           *metrics.Registry
	reservedGauge *metrics.Gauge
}

// HostOption customizes host construction.
type HostOption func(*Host)

// WithOSLoad sets the background OS activity fraction (default 0.03).
func WithOSLoad(f float64) HostOption { return func(h *Host) { h.osLoad = f } }

// WithMemory sets total physical memory in bytes (default 128 MiB, the
// machines in the paper).
func WithMemory(b int64) HostOption { return func(h *Host) { h.memTotal = b } }

// NewHost creates a host with the given processor speed in cycles/second.
// The paper's machines map to speeds 450e6, 333e6, and 200e6.
func NewHost(sim *vtime.Sim, name string, speedHz float64, opts ...HostOption) *Host {
	h := &Host{
		sim:      sim,
		name:     name,
		speed:    speedHz,
		osLoad:   0.03,
		memTotal: 128 << 20,
		boxes:    make(map[string]*Sandbox),
		rng:      newPRNG(hashString(name)),
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// EnableMetrics instruments the host and every sandbox subsequently
// created on it. Metric families: sandbox_cpu_seconds_total,
// sandbox_compute_ops_total, sandbox_throttle_quanta_total,
// sandbox_page_faults_total, sandbox_cpu_share, sandbox_mem_used_bytes,
// all labelled by sandbox (and host); plus sandbox_reserved_share per
// host. Call before NewSandbox; existing sandboxes stay uninstrumented.
func (h *Host) EnableMetrics(reg *metrics.Registry) {
	h.reg = reg
	h.reservedGauge = reg.Gauge("sandbox_reserved_share",
		"Aggregate CPU share reserved on the host.", metrics.L("host", h.name))
	h.reservedGauge.Set(h.reserved)
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Speed returns the processor speed in cycles per second.
func (h *Host) Speed() float64 { return h.speed }

// Reserved returns the total CPU share currently reserved by sandboxes.
func (h *Host) Reserved() float64 { return h.reserved }

// MemReserved returns total reserved memory in bytes.
func (h *Host) MemReserved() int64 { return h.memResv }

// MemTotal returns the host's physical memory in bytes.
func (h *Host) MemTotal() int64 { return h.memTotal }

// NewSandbox creates a resource-constrained execution environment on the
// host with the given CPU share (0 < share ≤ 1) and memory limit in bytes
// (0 means "no explicit limit": the host's full memory). It performs the
// simple admission control of Section 6.2: the request is rejected if the
// aggregate reserved share would exceed MaxReservable or memory would be
// oversubscribed.
func (h *Host) NewSandbox(name string, share float64, memLimit int64) (*Sandbox, error) {
	if share <= 0 || share > 1 {
		return nil, fmt.Errorf("sandbox: invalid CPU share %g for %q", share, name)
	}
	if _, dup := h.boxes[name]; dup {
		return nil, fmt.Errorf("sandbox: duplicate sandbox %q on host %s", name, h.name)
	}
	if h.reserved+share > MaxReservable+1e-9 {
		return nil, fmt.Errorf("sandbox: host %s cannot admit share %.2f (%.2f of %.2f already reserved)",
			h.name, share, h.reserved, MaxReservable)
	}
	memExplicit := memLimit > 0
	if !memExplicit {
		memLimit = h.memTotal
	}
	if memExplicit && h.memResv+memLimit > h.memTotal {
		return nil, fmt.Errorf("sandbox: host %s cannot admit %d bytes (%d of %d reserved)",
			h.name, memLimit, h.memResv, h.memTotal)
	}
	sb := &Sandbox{
		host:        h,
		name:        name,
		share:       share,
		memLimit:    memLimit,
		memExplicit: memExplicit,
	}
	if h.reg != nil {
		lbls := []metrics.Label{metrics.L("host", h.name), metrics.L("sandbox", name)}
		sb.mCPUSeconds = h.reg.Counter("sandbox_cpu_seconds_total",
			"CPU-seconds actually received (cycles at full machine speed).", lbls...)
		sb.mComputeOps = h.reg.Counter("sandbox_compute_ops_total",
			"Completed Compute calls.", lbls...)
		sb.mThrottleQuanta = h.reg.Counter("sandbox_throttle_quanta_total",
			"Full metering quanta consumed while demand exceeded the share.", lbls...)
		sb.mFaults = h.reg.Counter("sandbox_page_faults_total",
			"Simulated page faults beyond the physical memory limit.", lbls...)
		sb.mShare = h.reg.Gauge("sandbox_cpu_share",
			"Currently configured CPU share.", lbls...)
		sb.mMemUsed = h.reg.Gauge("sandbox_mem_used_bytes",
			"Currently allocated bytes.", lbls...)
		sb.mShare.Set(share)
	}
	h.reserved += share
	if memExplicit {
		h.memResv += memLimit
	}
	h.boxes[name] = sb
	h.reservedGauge.Set(h.reserved)
	return sb, nil
}

// Release removes a sandbox from the host, freeing its reservation.
func (h *Host) Release(sb *Sandbox) {
	if h.boxes[sb.name] != sb {
		return
	}
	delete(h.boxes, sb.name)
	h.reserved -= sb.share
	if sb.memExplicit {
		h.memResv -= sb.memLimit
	}
	h.reservedGauge.Set(h.reserved)
}

// Sandbox is a resource-constrained execution environment for one
// application component. All methods must be called from simulation
// process context.
type Sandbox struct {
	host        *Host
	name        string
	share       float64
	memLimit    int64
	memExplicit bool
	memUsed     int64

	// usage accounting, read by the monitoring agent
	cpuTime    time.Duration // CPU-seconds actually received (scaled by share)
	activeTime time.Duration // virtual time spent inside Compute
	faults     int64         // page faults simulated
	computeOps int64

	// telemetry instruments; nil (no-op) unless Host.EnableMetrics ran
	// before this sandbox was created
	mCPUSeconds     *metrics.Counter
	mComputeOps     *metrics.Counter
	mThrottleQuanta *metrics.Counter
	mFaults         *metrics.Counter
	mShare          *metrics.Gauge
	mMemUsed        *metrics.Gauge
}

// Name returns the sandbox name.
func (sb *Sandbox) Name() string { return sb.name }

// Host returns the host the sandbox runs on.
func (sb *Sandbox) Host() *Host { return sb.host }

// CPUShare returns the currently configured share.
func (sb *Sandbox) CPUShare() float64 { return sb.share }

// SetCPUShare reconfigures the share; it takes effect within one Quantum,
// mirroring the dynamic testbed reconfiguration used in Figure 3(a). The
// host's admission bound still applies.
func (sb *Sandbox) SetCPUShare(share float64) error {
	if share <= 0 || share > 1 {
		return fmt.Errorf("sandbox: invalid CPU share %g", share)
	}
	if sb.host.reserved-sb.share+share > MaxReservable+1e-9 {
		return fmt.Errorf("sandbox: host %s cannot grow share to %.2f", sb.host.name, share)
	}
	sb.host.reserved += share - sb.share
	sb.share = share
	sb.mShare.Set(share)
	sb.host.reservedGauge.Set(sb.host.reserved)
	return nil
}

// MemLimit returns the configured physical memory limit in bytes.
func (sb *Sandbox) MemLimit() int64 { return sb.memLimit }

// SetMemLimit reconfigures the memory limit (the paper switches protection
// bits of mapped pages; here the limit changes the fault model for
// subsequent Touch calls).
func (sb *Sandbox) SetMemLimit(b int64) error {
	if b <= 0 {
		return fmt.Errorf("sandbox: invalid memory limit %d", b)
	}
	prevResv := int64(0)
	if sb.memExplicit {
		prevResv = sb.memLimit
	}
	if sb.host.memResv-prevResv+b > sb.host.memTotal {
		return fmt.Errorf("sandbox: host %s cannot grow memory limit to %d", sb.host.name, b)
	}
	sb.host.memResv += b - prevResv
	sb.memLimit = b
	sb.memExplicit = true
	return nil
}

// effectiveRate returns the cycle rate the application receives right now:
// its share of the host speed, reduced by the host's background OS
// activity when the application asks for (nearly) the whole machine. A
// small deterministic jitter term models scheduling noise.
func (sb *Sandbox) effectiveRate() float64 {
	avail := 1.0 - sb.host.osLoad
	share := sb.share
	if share > avail {
		share = avail
	}
	// ±0.5% deterministic jitter.
	jitter := 1.0 + (sb.host.rng.float64()-0.5)*0.01
	return sb.host.speed * share * jitter
}

// Compute consumes the given number of processor cycles, blocking the
// calling process for cycles/(speed×share) of virtual time. The share is
// re-read every Quantum, so concurrent SetCPUShare calls take effect
// mid-computation — this is what makes Figure 3(a)'s step response sharp.
func (sb *Sandbox) Compute(p *vtime.Proc, cycles float64) {
	for cycles > 1e-9 {
		rate := sb.effectiveRate()
		if rate <= 0 {
			panic("sandbox: zero effective rate")
		}
		quantumCycles := rate * Quantum.Seconds()
		var dt time.Duration
		var used float64
		if cycles >= quantumCycles {
			dt = Quantum
			used = quantumCycles
		} else {
			dt = time.Duration(cycles / rate * float64(time.Second))
			if dt <= 0 {
				dt = time.Nanosecond
			}
			used = cycles
		}
		p.Sleep(dt)
		cycles -= used
		sb.activeTime += dt
		if dt == Quantum {
			sb.mThrottleQuanta.Inc()
		}
		// CPU-seconds received = cycles consumed at full machine speed.
		cpu := time.Duration(used / sb.host.speed * float64(time.Second))
		sb.cpuTime += cpu
		sb.mCPUSeconds.Add(cpu.Seconds())
	}
	sb.computeOps++
	sb.mComputeOps.Inc()
}

// CPUTime returns cumulative CPU-seconds received, the counter the paper's
// monitor compares against wall-clock time.
func (sb *Sandbox) CPUTime() time.Duration { return sb.cpuTime }

// ActiveTime returns cumulative virtual time spent computing (not blocked).
func (sb *Sandbox) ActiveTime() time.Duration { return sb.activeTime }

// ComputeOps returns the number of completed Compute calls.
func (sb *Sandbox) ComputeOps() int64 { return sb.computeOps }

// Faults returns the number of simulated page faults.
func (sb *Sandbox) Faults() int64 { return sb.faults }

// MemUsed returns current allocated bytes.
func (sb *Sandbox) MemUsed() int64 { return sb.memUsed }

// Alloc records an allocation of n bytes. Allocation never fails (virtual
// memory), but exceeding the physical limit makes subsequent Touch calls
// fault.
func (sb *Sandbox) Alloc(n int64) {
	if n < 0 {
		panic("sandbox: negative allocation")
	}
	sb.memUsed += n
	sb.mMemUsed.Set(float64(sb.memUsed))
}

// Free releases n bytes.
func (sb *Sandbox) Free(n int64) {
	sb.memUsed -= n
	if sb.memUsed < 0 {
		sb.memUsed = 0
	}
	sb.mMemUsed.Set(float64(sb.memUsed))
}

// pageSize is the fault-accounting granularity.
const pageSize = 4096

// faultCycles is the processor cost of servicing one page fault.
const faultCycles = 200_000

// Touch models accessing n bytes of the sandbox's working set. While the
// resident set fits the physical limit this is free; beyond the limit a
// proportional fraction of the touched pages fault, each costing
// faultCycles (the paper flips protection bits on mapped pages; the
// observable effect is the same slowdown).
func (sb *Sandbox) Touch(p *vtime.Proc, n int64) {
	if sb.memUsed <= sb.memLimit || n <= 0 {
		return
	}
	over := float64(sb.memUsed-sb.memLimit) / float64(sb.memUsed)
	pages := (n + pageSize - 1) / pageSize
	faulting := int64(float64(pages) * over)
	if faulting <= 0 {
		return
	}
	sb.faults += faulting
	sb.mFaults.Add(float64(faulting))
	sb.Compute(p, float64(faulting)*faultCycles)
}

// prng is a tiny deterministic splitmix64 generator so jitter is
// reproducible run to run.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng { return &prng{state: seed} }

func (r *prng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *prng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
