// Package expt reproduces every figure of the paper's evaluation:
//
//	Figure 3(a)  sandbox CPU-share step response
//	Figure 3(b)  measured vs expected runtime across shares
//	Figure 4(a)  testbed emulation of slower machines, simple app
//	Figure 4(b)  testbed emulation of slower machines, visualization app
//	Figure 5     transmission/response time vs CPU share per fovea size
//	Figure 6(a)  transmission time vs bandwidth per compression method
//	Figure 6(b)  transmission time vs CPU share per resolution level
//	Figure 7(a)  Experiment 1: codec adaptation to a bandwidth drop
//	Figure 7(b)  Experiment 2: resolution adaptation to a CPU drop
//	Figure 7(c,d) Experiment 3: fovea adaptation to a CPU drop
//
// Each figure function builds its world(s), runs them on the virtual-time
// kernel, and returns both a structured result and a renderable table so
// the cmd/avis-figures tool and the benchmark harness can print the same
// rows the paper plots. Performance databases are built once per process
// through the profiling driver and shared.
package expt

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"tunable/internal/avis"
	"tunable/internal/core"
	"tunable/internal/faults"
	"tunable/internal/monitor"
	"tunable/internal/netem"
	"tunable/internal/perfdb"
	"tunable/internal/profiler"
	"tunable/internal/resource"
	"tunable/internal/scheduler"
	"tunable/internal/spec"
	"tunable/internal/steering"
	"tunable/internal/trace"
	"tunable/internal/vtime"
)

// Fixed world parameters shared by the application experiments.
const (
	// ImageSide is the full-resolution image side (the paper's image
	// corpus is emulated at 1024², roughly a quarter of the data volume
	// implied by the paper's timings; EXPERIMENTS.md records the rescale).
	ImageSide = 1024
	// Levels is the wavelet decomposition depth; resolution levels 2–4
	// correspond to 256², 512², and 1024².
	Levels = 4
	// NumImages is the download count of the Section 7 experiments.
	NumImages = 10
)

// Seeds for the experiment image set (three distinct images cycled).
var expSeeds = []int64{1, 2, 3}

// store caches pyramids across all experiments in the process.
var store = avis.NewImageStore()

// FigResult is one reproduced figure.
type FigResult struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Rec     *trace.Recorder // time series, when the figure is a timeline
	Notes   []string
}

// Render writes the figure as text.
func (f *FigResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	if len(f.Headers) > 0 {
		if _, err := fmt.Fprintln(w, strings.Join(f.Headers, "\t")); err != nil {
			return err
		}
		for _, row := range f.Rows {
			if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
				return err
			}
		}
	}
	if f.Rec != nil {
		if err := f.Rec.WriteTable(w); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// AvisRunFunc exposes the profiling RunFunc used to build the figure
// databases, for tools (cmd/avis-profile) that drive additional sweeps or
// sensitivity refinement.
func AvisRunFunc(bandwidthIfUnswept float64) profiler.RunFunc {
	return avisRun(bandwidthIfUnswept)
}

// avisRun builds the profiling RunFunc: one testbed sample = one image
// download in a fresh world under the given configuration and resources.
func avisRun(bandwidthIfUnswept float64) profiler.RunFunc {
	return func(cfg spec.Config, res resource.Vector) (spec.Metrics, error) {
		params, err := avis.ParamsFromConfig(cfg)
		if err != nil {
			return nil, err
		}
		bw := res.Get(resource.Bandwidth, bandwidthIfUnswept)
		share := res.Get(resource.CPU, 1.0)
		w, err := avis.NewWorld(avis.WorldConfig{
			Side:        ImageSide,
			Levels:      Levels,
			Seeds:       []int64{1},
			Store:       store,
			Bandwidth:   bw,
			ClientShare: share,
			Params:      params,
		})
		if err != nil {
			return nil, err
		}
		stats, err := w.RunSequence(1)
		if err != nil {
			return nil, err
		}
		return stats[0].Metrics(), nil
	}
}

// buildDB populates a database for the given configurations over a grid.
func buildDB(cfgs []spec.Config, grid *resource.Grid, defaultBW float64) (*perfdb.DB, error) {
	db := perfdb.New(avis.Spec())
	d, err := profiler.New(db, grid, avisRun(defaultBW), profiler.WithConfigs(cfgs))
	if err != nil {
		return nil, err
	}
	if err := d.Populate(); err != nil {
		return nil, err
	}
	return db, nil
}

func cfg(dr int, codec string, level int) spec.Config {
	return avis.Params{DR: dr, Codec: codec, Level: level}.Config()
}

// Shared per-figure databases, built on first use.
var (
	fig5Once sync.Once
	fig5DB   *perfdb.DB
	fig5Err  error

	fig6aOnce sync.Once
	fig6aDB   *perfdb.DB
	fig6aErr  error

	fig6bOnce sync.Once
	fig6bDB   *perfdb.DB
	fig6bErr  error
)

// CPU-share and bandwidth sample points.
var (
	shareAxis = resource.Linspace(0.1, 1.0, 10)
	bwAxis    = []float64{25e3, 50e3, 100e3, 200e3, 350e3, 500e3, 750e3, 1000e3}
)

// Fig5DB: fovea sizes {80,160,320}, lzw level 4, CPU swept, bandwidth
// fixed at 500 KB/s (the Experiment 3 regime).
func Fig5DB() (*perfdb.DB, error) {
	fig5Once.Do(func() {
		grid := resource.NewGrid(
			resource.Axis{Kind: resource.CPU, Points: shareAxis},
			resource.Axis{Kind: resource.Bandwidth, Points: []float64{500e3}},
		)
		fig5DB, fig5Err = buildDB([]spec.Config{
			cfg(80, "lzw", 4), cfg(160, "lzw", 4), cfg(320, "lzw", 4),
		}, grid, 500e3)
	})
	return fig5DB, fig5Err
}

// Fig6aDB: codecs {lzw,bzw} at dR 320 level 4, bandwidth swept, CPU fixed
// at 1.0 (the Experiment 1 regime).
func Fig6aDB() (*perfdb.DB, error) {
	fig6aOnce.Do(func() {
		grid := resource.NewGrid(
			resource.Axis{Kind: resource.CPU, Points: []float64{1.0}},
			resource.Axis{Kind: resource.Bandwidth, Points: bwAxis},
		)
		fig6aDB, fig6aErr = buildDB([]spec.Config{
			cfg(320, "lzw", 4), cfg(320, "bzw", 4),
		}, grid, 500e3)
	})
	return fig6aDB, fig6aErr
}

// Fig6bDB: resolution levels {2,3,4} with bzw at dR 320, CPU swept,
// bandwidth fixed at 200 KB/s (the Experiment 2 regime).
func Fig6bDB() (*perfdb.DB, error) {
	fig6bOnce.Do(func() {
		grid := resource.NewGrid(
			resource.Axis{Kind: resource.CPU, Points: shareAxis},
			resource.Axis{Kind: resource.Bandwidth, Points: []float64{200e3}},
		)
		fig6bDB, fig6bErr = buildDB([]spec.Config{
			cfg(320, "bzw", 2), cfg(320, "bzw", 3), cfg(320, "bzw", 4),
		}, grid, 200e3)
	})
	return fig6bDB, fig6bErr
}

// RunResult is the outcome of one timeline run (adaptive or static).
type RunResult struct {
	Label    string
	Stats    []avis.ImageStat
	Total    time.Duration
	Switches int64
	Events   []core.Event
	Final    spec.Config
}

// completionSeries renders per-image transmission times against their
// completion instants.
func (r RunResult) completionSeries(rec *trace.Recorder, metric string) {
	s := rec.Series(r.Label, "s")
	for _, st := range r.Stats {
		switch metric {
		case "transmit_time":
			s.Add(st.Start+st.TransmitTime, st.TransmitTime.Seconds())
		case "response_time":
			s.Add(st.Start+st.TransmitTime, st.AvgResponse.Seconds())
		}
	}
}

// runStatic executes n image downloads under fixed parameters; perturb may
// install timers that change resources mid-run.
func runStatic(label string, base avis.WorldConfig, n int, perturb func(*avis.World)) (RunResult, error) {
	base.Store = store
	base.Side = ImageSide
	base.Levels = Levels
	base.Seeds = expSeeds
	w, err := avis.NewWorld(base)
	if err != nil {
		return RunResult{}, err
	}
	if perturb != nil {
		perturb(w)
	}
	stats, err := w.RunSequence(n)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Label: label, Stats: stats, Final: w.Client.Params().Config()}
	if len(stats) > 0 {
		last := stats[len(stats)-1]
		res.Total = last.Start + last.TransmitTime
	}
	return res, nil
}

// adaptCfg carries the optional knobs of an adaptive run.
type adaptCfg struct {
	// onStat receives every completed image download together with the
	// monitor's resource snapshot and the configuration it ran under —
	// the live-telemetry ingest point (perfstore.Offer hangs off it).
	onStat func(stat avis.ImageStat, res resource.Vector, cfg spec.Config)
	// faultSched, when non-nil, is installed on the world's data link
	// through the seeded fault driver before the run starts.
	faultSched *faults.Schedule
	// modelTrigger, when non-nil, is bound (once monitor and steering
	// exist) to a function that raises a synthetic monitoring trigger if
	// the named configuration is the active one — the model-drift path:
	// a refined profile invalidating the current choice must wake the
	// scheduler just as an out-of-range resource estimate does.
	modelTrigger *func(configKey string)
}

// adaptOpt customizes runAdaptiveOpts.
type adaptOpt func(*adaptCfg)

// withOnStat registers the per-image telemetry hook.
func withOnStat(fn func(avis.ImageStat, resource.Vector, spec.Config)) adaptOpt {
	return func(c *adaptCfg) { c.onStat = fn }
}

// withFaultSchedule arms a seeded fault schedule on the data link.
func withFaultSchedule(s faults.Schedule) adaptOpt {
	return func(c *adaptCfg) { c.faultSched = &s }
}

// runAdaptive executes n image downloads under the full adaptation
// framework: monitoring agent (CPU probe on the client sandbox, bandwidth
// probe on the server's sending side), resource scheduler over db with the
// given preferences, and steering agent attached to the client.
func runAdaptive(label string, db *perfdb.DB, prefs []scheduler.Preference,
	base avis.WorldConfig, n int, initRes resource.Vector, perturb func(*avis.World)) (RunResult, error) {
	return runAdaptiveOpts(label, db, prefs, base, n, initRes, perturb, false)
}

// runAdaptiveOpts additionally supports the distributed-monitoring
// deployment: a separate agent in the server instance observes the
// network and pushes its estimates to the client's agent, as the paper's
// inter-monitor communication does, instead of one agent probing both
// components directly. db is any perfdb.Model — the offline database or a
// live perfstore.
func runAdaptiveOpts(label string, db perfdb.Model, prefs []scheduler.Preference,
	base avis.WorldConfig, n int, initRes resource.Vector, perturb func(*avis.World),
	distributed bool, opts ...adaptOpt) (RunResult, error) {

	var ac adaptCfg
	for _, o := range opts {
		o(&ac)
	}

	app := db.App()
	// Provisional scheduler pass to learn the initial configuration the
	// framework will select, so the world starts in it.
	sched0, err := scheduler.New(app, db, prefs)
	if err != nil {
		return RunResult{}, err
	}
	d0, err := sched0.Select(initRes)
	if err != nil {
		return RunResult{}, err
	}
	params, err := avis.ParamsFromConfig(d0.Config)
	if err != nil {
		return RunResult{}, err
	}
	base.Store = store
	base.Side = ImageSide
	base.Levels = Levels
	base.Seeds = expSeeds
	base.Params = params
	w, err := avis.NewWorld(base)
	if err != nil {
		return RunResult{}, err
	}
	mon := monitor.New(w.Sim, "client-monitor",
		monitor.WithPeriod(10*time.Millisecond),
		monitor.WithWindow(500*time.Millisecond),
		monitor.WithHysteresis(5))
	mon.AddProbe(monitor.NewCPUProbe("client", w.ClientSB))
	var remotes []*monitor.Agent
	if distributed {
		srvMon := monitor.New(w.Sim, "server-monitor",
			monitor.WithPeriod(10*time.Millisecond),
			monitor.WithWindow(500*time.Millisecond),
			monitor.WithHysteresis(5))
		srvMon.AddProbe(monitor.NewBandwidthProbe("net", w.Link.B()))
		srvMon.AddPeer(mon.Inbox())
		remotes = append(remotes, srvMon)
	} else {
		mon.AddProbe(monitor.NewBandwidthProbe("net", w.Link.B()))
	}
	steer, err := steering.New(w.Sim, app, d0.Config)
	if err != nil {
		return RunResult{}, err
	}
	w.Client.AttachSteering(steer)
	if ac.modelTrigger != nil {
		sim := w.Sim
		*ac.modelTrigger = func(configKey string) {
			if steer.Current().Key() != configKey {
				return
			}
			mon.Triggers().TrySend(monitor.Trigger{
				At:        sim.Now(),
				Component: "model",
				Kind:      resource.Kind("drift"),
			})
		}
	}
	fw, err := core.New(w.Sim, core.Config{
		App:          app,
		DB:           db,
		Preferences:  prefs,
		Monitor:      mon,
		Steering:     steer,
		Components:   core.Components{resource.CPU: "client", resource.Bandwidth: "net"},
		RemoteAgents: remotes,
	})
	if err != nil {
		return RunResult{}, err
	}
	if _, err := fw.SelectInitial(initRes); err != nil {
		return RunResult{}, err
	}
	if perturb != nil {
		perturb(w)
	}
	if ac.faultSched != nil {
		drv, err := faults.NewDriver(w.Sim, map[string]*netem.Link{"data:avis": w.Link}, *ac.faultSched)
		if err != nil {
			return RunResult{}, err
		}
		drv.Install()
	}
	fw.Start()
	mon.Start()
	for _, rm := range remotes {
		rm.Start()
	}
	var stats []avis.ImageStat
	var ferr error
	w.Sim.Spawn("avis-client", func(p *vtime.Proc) {
		defer func() {
			fw.Stop()
			mon.Stop()
			for _, rm := range remotes {
				rm.Stop()
			}
		}()
		if ferr = w.Client.Connect(p); ferr != nil {
			return
		}
		for i := 0; i < n; i++ {
			st, err := w.Client.FetchImage(p, i%len(expSeeds))
			if err != nil {
				ferr = err
				return
			}
			stats = append(stats, st)
			if ac.onStat != nil {
				ac.onStat(st, mon.Snapshot(), steer.Current())
			}
		}
		w.Client.Close(p)
	})
	if err := w.Sim.Run(); err != nil {
		return RunResult{}, err
	}
	if ferr != nil {
		return RunResult{}, ferr
	}
	res := RunResult{
		Label:    label,
		Stats:    stats,
		Switches: steer.Switches(),
		Events:   fw.Events(),
		Final:    steer.Current(),
	}
	if len(stats) > 0 {
		last := stats[len(stats)-1]
		res.Total = last.Start + last.TransmitTime
	}
	return res, nil
}

func seconds(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
