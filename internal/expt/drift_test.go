package expt

import (
	"bytes"
	"testing"

	"tunable/internal/avis"
	"tunable/internal/perfstore"
	"tunable/internal/resource"
)

// TestDriftOnlineRecoversOfflineStuck is the closing-the-loop experiment:
// the prior database was profiled at a single bandwidth point, so when the
// seeded fault schedule dips the link the offline framework is
// structurally blind — its validity band on bandwidth is unbounded, no
// trigger fires, and it serves level 4 past the deadline until the run
// ends. The online run folds achieved image metrics back into a
// WAL-backed perfstore, the model-drift trigger wakes the scheduler, and
// the framework re-converges under the deadline. Afterwards the WAL is
// reopened as a restarted coordinator would and must recover the refined
// model byte-for-byte.
func TestDriftOnlineRecoversOfflineStuck(t *testing.T) {
	const seed = 42
	offline, err := RunDriftOffline(seed)
	if err != nil {
		t.Fatal(err)
	}
	// The offline framework must be stuck, not merely slow: zero switches,
	// still at the top resolution level, every post-dip image late.
	if offline.Switches != 0 {
		t.Fatalf("offline run switched %d times; the single-point prior should leave it blind", offline.Switches)
	}
	if offline.Final["l"].I != 4 {
		t.Fatalf("offline final %s, want level 4", offline.Final.Key())
	}
	offHits, offPost := DeadlineHits(offline)
	if offPost == 0 {
		t.Fatal("no post-dip images; dip timing is wrong")
	}
	if offHits != 0 {
		t.Fatalf("offline met the deadline %d/%d times post-dip; should be stuck past it", offHits, offPost)
	}

	dir := t.TempDir()
	wal, err := perfstore.OpenWAL(dir, perfstore.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	online, ps, err := RunDriftOnline(seed, wal)
	if err != nil {
		t.Fatal(err)
	}
	if online.Switches == 0 {
		t.Fatal("online run never adapted")
	}
	if online.Final["l"].I >= 4 {
		t.Fatalf("online final %s; should have backed off resolution", online.Final.Key())
	}
	onHits, _ := DeadlineHits(online)
	if onHits <= offHits {
		t.Fatalf("online deadline hits %d not better than offline %d", onHits, offHits)
	}
	if online.Total >= offline.Total {
		t.Fatalf("online total %v not better than offline %v", online.Total, offline.Total)
	}

	// The store must have learned the real cost of the configuration the
	// offline run stayed stuck on.
	dipRes := resource.Vector{resource.CPU: driftShare, resource.Bandwidth: driftDipBW}
	predBefore, err := ps.Predict(offline.Final, dipRes)
	if err != nil {
		t.Fatal(err)
	}
	if predBefore["transmit_time"] <= DriftDeadline {
		t.Fatalf("refined level-4 transmit %.2fs still under the %.0fs deadline; nothing was learned",
			predBefore["transmit_time"], DriftDeadline)
	}

	// Coordinator restart: snapshot, close, reopen from disk. The recovered
	// store must be byte-identical under Snapshot and predict identically.
	var before bytes.Buffer
	if err := wal.Snapshot(&before); err != nil {
		t.Fatal(err)
	}
	version := wal.Version()
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	wal2, err := perfstore.OpenWAL(dir, perfstore.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wal2.Version(); got != version {
		t.Fatalf("recovered version %d, want %d", got, version)
	}
	var after bytes.Buffer
	if err := wal2.Snapshot(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("snapshot not byte-stable across restart:\nbefore %d bytes\nafter  %d bytes", before.Len(), after.Len())
	}
	prior, err := Fig6bDB()
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := perfstore.New(avis.Spec(), prior, wal2, perfstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()
	predAfter, err := ps2.Predict(offline.Final, dipRes)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range predBefore {
		if predAfter[name] != v {
			t.Fatalf("recovered prediction %s=%v, want %v", name, predAfter[name], v)
		}
	}
}

// TestDriftFigure smoke-tests the rendered comparison figure.
func TestDriftFigure(t *testing.T) {
	fig, offline, online, err := Drift(7)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "drift" || fig.Rec == nil || len(fig.Notes) == 0 {
		t.Fatalf("malformed figure: %+v", fig)
	}
	if online.Total >= offline.Total {
		t.Fatalf("online %v !< offline %v at seed 7", online.Total, offline.Total)
	}
}
