package expt

import (
	"fmt"
	"time"

	"tunable/internal/avis"
	"tunable/internal/resource"
	"tunable/internal/scheduler"
	"tunable/internal/trace"
)

// Experiment timing. The paper's images are ~4× our data volume, so its
// wall-clock landmarks scale accordingly: the paper drops the bandwidth at
// t=25 s with ~5 s images; ours take ~3 s, so the drop lands at t=12 s to
// leave the same ~4 images completed before the change (Section 7.2).
const (
	exp1DropAt = 12 * time.Second
	exp2DropAt = 15 * time.Second
	exp3DropAt = 12 * time.Second
)

// ExperimentResult bundles the adaptive run and its static baselines.
type ExperimentResult struct {
	Fig      *FigResult
	Adaptive RunResult
	StaticA  RunResult
	StaticB  RunResult
}

// Experiment1 reproduces Section 7.2: the user preference is to minimize
// image transmission time; the bandwidth drops from 500 KB/s to 50 KB/s
// mid-run, and the framework must switch the compression method from LZW
// to BZW. The two static baselines hold each codec throughout.
func Experiment1() (*ExperimentResult, error) {
	db, err := Fig6aDB()
	if err != nil {
		return nil, err
	}
	prefs := []scheduler.Preference{{
		Name:      "min-transmit",
		Objective: "transmit_time",
	}}
	base := avis.WorldConfig{Bandwidth: 500e3, ClientShare: 1.0}
	perturb := func(w *avis.World) {
		w.Sim.After(exp1DropAt, func() { _ = w.Link.SetBandwidth(50e3) })
	}
	initRes := resource.Vector{resource.CPU: 1.0, resource.Bandwidth: 500e3}
	adaptive, err := runAdaptive("adaptive", db, prefs, base, NumImages, initRes, perturb)
	if err != nil {
		return nil, err
	}
	staticA, err := runStatic("lzw-only",
		withParams(base, avis.Params{DR: 320, Codec: "lzw", Level: 4}), NumImages, perturb)
	if err != nil {
		return nil, err
	}
	staticB, err := runStatic("bzw-only",
		withParams(base, avis.Params{DR: 320, Codec: "bzw", Level: 4}), NumImages, perturb)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	adaptive.completionSeries(rec, "transmit_time")
	staticA.completionSeries(rec, "transmit_time")
	staticB.completionSeries(rec, "transmit_time")
	fig := &FigResult{
		ID:    "fig7a",
		Title: "Experiment 1: adapting the compression method to a bandwidth drop",
		Rec:   rec,
		Notes: []string{
			fmt.Sprintf("bandwidth 500 KB/s -> 50 KB/s at t=%s", exp1DropAt),
			fmt.Sprintf("totals: adaptive %s, lzw-only %s, bzw-only %s",
				seconds(adaptive.Total), seconds(staticA.Total), seconds(staticB.Total)),
			fmt.Sprintf("adaptive switches: %d, final config %s", adaptive.Switches, adaptive.Final.Key()),
		},
	}
	return &ExperimentResult{Fig: fig, Adaptive: adaptive, StaticA: staticA, StaticB: staticB}, nil
}

// Experiment2 reproduces Section 7.3: image transmission must finish
// within 10 s while resolution is maximized; the client CPU share drops
// from 90% to 40% mid-run, and the framework must degrade the resolution
// from level 4 to level 3. Baselines hold level 4 and level 3.
func Experiment2() (*ExperimentResult, error) {
	db, err := Fig6bDB()
	if err != nil {
		return nil, err
	}
	prefs := []scheduler.Preference{
		{
			Name:        "deadline-10s",
			Constraints: []scheduler.Constraint{scheduler.AtMost("transmit_time", 10)},
			Objective:   "resolution",
		},
		{
			// Fallback when nothing meets the deadline: deliver fastest.
			Name:      "fastest",
			Objective: "transmit_time",
		},
	}
	base := avis.WorldConfig{Bandwidth: 200e3, ClientShare: 0.9}
	perturb := func(w *avis.World) {
		w.Sim.After(exp2DropAt, func() { _ = w.ClientSB.SetCPUShare(0.4) })
	}
	initRes := resource.Vector{resource.CPU: 0.9, resource.Bandwidth: 200e3}
	adaptive, err := runAdaptive("adaptive", db, prefs, base, NumImages, initRes, perturb)
	if err != nil {
		return nil, err
	}
	staticA, err := runStatic("level4-only",
		withParams(base, avis.Params{DR: 320, Codec: "bzw", Level: 4}), NumImages, perturb)
	if err != nil {
		return nil, err
	}
	staticB, err := runStatic("level3-only",
		withParams(base, avis.Params{DR: 320, Codec: "bzw", Level: 3}), NumImages, perturb)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	adaptive.completionSeries(rec, "transmit_time")
	staticA.completionSeries(rec, "transmit_time")
	staticB.completionSeries(rec, "transmit_time")
	fig := &FigResult{
		ID:    "fig7b",
		Title: "Experiment 2: degrading image resolution as the CPU share drops",
		Rec:   rec,
		Notes: []string{
			fmt.Sprintf("client CPU share 0.9 -> 0.4 at t=%s; deadline 10 s; maximize resolution", exp2DropAt),
			fmt.Sprintf("adaptive switches: %d, final config %s", adaptive.Switches, adaptive.Final.Key()),
			fmt.Sprintf("deadline violations: adaptive %d, level4-only %d, level3-only %d",
				violations(adaptive, 10), violations(staticA, 10), violations(staticB, 10)),
		},
	}
	return &ExperimentResult{Fig: fig, Adaptive: adaptive, StaticA: staticA, StaticB: staticB}, nil
}

// Experiment3 reproduces Section 7.4: round response time must stay below
// one second while overall transmission time is minimized; the client CPU
// share drops from 90% to 40% mid-run, and the framework must shrink the
// fovea size from 320 to 80. Baselines hold each fovea size.
func Experiment3() (*ExperimentResult, error) {
	db, err := Fig5DB()
	if err != nil {
		return nil, err
	}
	prefs := []scheduler.Preference{
		{
			Name:        "responsive",
			Constraints: []scheduler.Constraint{scheduler.AtMost("response_time", 1.0)},
			Objective:   "transmit_time",
		},
		{
			Name:      "fastest",
			Objective: "transmit_time",
		},
	}
	base := avis.WorldConfig{Bandwidth: 500e3, ClientShare: 0.9}
	perturb := func(w *avis.World) {
		w.Sim.After(exp3DropAt, func() { _ = w.ClientSB.SetCPUShare(0.4) })
	}
	initRes := resource.Vector{resource.CPU: 0.9, resource.Bandwidth: 500e3}
	adaptive, err := runAdaptive("adaptive", db, prefs, base, NumImages, initRes, perturb)
	if err != nil {
		return nil, err
	}
	staticA, err := runStatic("fovea320-only",
		withParams(base, avis.Params{DR: 320, Codec: "lzw", Level: 4}), NumImages, perturb)
	if err != nil {
		return nil, err
	}
	staticB, err := runStatic("fovea80-only",
		withParams(base, avis.Params{DR: 80, Codec: "lzw", Level: 4}), NumImages, perturb)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	adaptive.completionSeries(rec, "response_time")
	staticA.completionSeries(rec, "response_time")
	staticB.completionSeries(rec, "response_time")
	fig := &FigResult{
		ID:    "fig7c",
		Title: "Experiment 3: changing the fovea size as the CPU share drops (response time)",
		Rec:   rec,
		Notes: []string{
			fmt.Sprintf("client CPU share 0.9 -> 0.4 at t=%s; response bound 1 s; minimize transmit time", exp3DropAt),
			fmt.Sprintf("adaptive switches: %d, final config %s", adaptive.Switches, adaptive.Final.Key()),
		},
	}
	return &ExperimentResult{Fig: fig, Adaptive: adaptive, StaticA: staticA, StaticB: staticB}, nil
}

// Figure7d renders the transmission-time view of Experiment 3.
func Figure7d(e *ExperimentResult) *FigResult {
	rec := trace.NewRecorder()
	e.Adaptive.completionSeries(rec, "transmit_time")
	e.StaticA.completionSeries(rec, "transmit_time")
	e.StaticB.completionSeries(rec, "transmit_time")
	return &FigResult{
		ID:    "fig7d",
		Title: "Experiment 3: changing the fovea size as the CPU share drops (transmission time)",
		Rec:   rec,
		Notes: []string{fmt.Sprintf("totals: adaptive %s, fovea320-only %s, fovea80-only %s",
			seconds(e.Adaptive.Total), seconds(e.StaticA.Total), seconds(e.StaticB.Total))},
	}
}

// withParams copies the base world config with the given parameters.
func withParams(base avis.WorldConfig, p avis.Params) avis.WorldConfig {
	base.Params = p
	return base
}

// violations counts images whose transmission exceeded the deadline.
func violations(r RunResult, deadlineSeconds float64) int {
	n := 0
	for _, st := range r.Stats {
		if st.TransmitTime.Seconds() > deadlineSeconds {
			n++
		}
	}
	return n
}

// Experiment1Distributed repeats Experiment 1 with genuinely distributed
// monitoring: the bandwidth is observed by an agent in the server
// instance, whose out-of-range estimates travel to the client's agent as
// peer messages before triggering the scheduler — the deployment shape
// Section 6.1 describes.
func Experiment1Distributed() (*ExperimentResult, error) {
	db, err := Fig6aDB()
	if err != nil {
		return nil, err
	}
	prefs := []scheduler.Preference{{
		Name:      "min-transmit",
		Objective: "transmit_time",
	}}
	base := avis.WorldConfig{Bandwidth: 500e3, ClientShare: 1.0}
	perturb := func(w *avis.World) {
		w.Sim.After(exp1DropAt, func() { _ = w.Link.SetBandwidth(50e3) })
	}
	initRes := resource.Vector{resource.CPU: 1.0, resource.Bandwidth: 500e3}
	adaptive, err := runAdaptiveOpts("adaptive-distributed", db, prefs, base,
		NumImages, initRes, perturb, true)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	adaptive.completionSeries(rec, "transmit_time")
	fig := &FigResult{
		ID:    "fig7a-distributed",
		Title: "Experiment 1 with distributed monitoring agents",
		Rec:   rec,
		Notes: []string{fmt.Sprintf("total %s, switches %d, final %s",
			seconds(adaptive.Total), adaptive.Switches, adaptive.Final.Key())},
	}
	return &ExperimentResult{Fig: fig, Adaptive: adaptive}, nil
}
