package expt

import (
	"fmt"

	"tunable/internal/perfdb"
	"tunable/internal/resource"
	"tunable/internal/spec"
)

// dbSource supplies a lazily built per-figure database.
type dbSource = func() (*perfdb.DB, error)

// figureFromDB renders database slices as figure rows: one row per point
// on the swept axis, one column per configuration.
func figureFromDB(id, title string, db dbSource, metric string,
	sweep resource.Kind, sweepPoints []float64, fixed resource.Vector,
	cols []spec.Config, colNames []string, notes ...string) (*FigResult, error) {

	d, err := db()
	if err != nil {
		return nil, err
	}
	res := &FigResult{
		ID:      id,
		Title:   title,
		Headers: append([]string{string(sweep)}, colNames...),
		Notes:   notes,
	}
	for _, x := range sweepPoints {
		row := []string{fmt.Sprintf("%g", x)}
		for _, c := range cols {
			m, err := d.Predict(c, fixed.With(sweep, x))
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", m[metric]))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Figure5a reproduces image transmission time for fovea sizes 80/160/320
// as the client CPU share varies (LZW, level 4, 500 KB/s).
func Figure5a() (*FigResult, error) {
	return figureFromDB("fig5a",
		"image transmission time vs CPU share per fovea size",
		Fig5DB, "transmit_time",
		resource.CPU, shareAxis, resource.Vector{resource.Bandwidth: 500e3},
		[]spec.Config{cfg(80, "lzw", 4), cfg(160, "lzw", 4), cfg(320, "lzw", 4)},
		[]string{"fovea80(s)", "fovea160(s)", "fovea320(s)"},
		"larger fovea → fewer rounds → smaller total transmission time")
}

// Figure5b reproduces average response time for the same sweep.
func Figure5b() (*FigResult, error) {
	return figureFromDB("fig5b",
		"round response time vs CPU share per fovea size",
		Fig5DB, "response_time",
		resource.CPU, shareAxis, resource.Vector{resource.Bandwidth: 500e3},
		[]spec.Config{cfg(80, "lzw", 4), cfg(160, "lzw", 4), cfg(320, "lzw", 4)},
		[]string{"fovea80(s)", "fovea160(s)", "fovea320(s)"},
		"larger fovea → more data per round → larger response time")
}

// Figure6a reproduces transmission time for the two compression methods as
// bandwidth varies (level 4, dR 320, full CPU), showing the crossover.
func Figure6a() (*FigResult, error) {
	return figureFromDB("fig6a",
		"image transmission time vs bandwidth per compression method",
		Fig6aDB, "transmit_time",
		resource.Bandwidth, bwAxis, resource.Vector{resource.CPU: 1.0},
		[]spec.Config{cfg(320, "lzw", 4), cfg(320, "bzw", 4)},
		[]string{"lzw(s)", "bzw(s)"},
		"method A (LZW) wins at high bandwidth; method B (BZW) wins at low bandwidth")
}

// Figure6b reproduces transmission time for resolution levels 2/3/4 as the
// CPU share varies (BZW, dR 320, 200 KB/s).
func Figure6b() (*FigResult, error) {
	return figureFromDB("fig6b",
		"image transmission time vs CPU share per resolution level",
		Fig6bDB, "transmit_time",
		resource.CPU, shareAxis, resource.Vector{resource.Bandwidth: 200e3},
		[]spec.Config{cfg(320, "bzw", 2), cfg(320, "bzw", 3), cfg(320, "bzw", 4)},
		[]string{"level2(s)", "level3(s)", "level4(s)"},
		"lower resolution → less data → shorter transmission at any share")
}
